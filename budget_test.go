package wet_test

// Property tests for the byte-budgeted freeze (FreezeOptions.ByteBudget /
// wet.WithByteBudget): the lossless-boundary identity, the budget-sweep
// contracts (achieved ≤ budget, monotone non-increasing fidelity), the
// kept-query identity, the typed refusal on shed streams, and the fidelity
// section's save/load round trip.

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"

	"wet"
)

// budgetWorkloads are the acceptance benchmarks of the budget contracts.
var budgetWorkloads = []string{"li", "gzip", "mcf"}

// tryRunWorkload builds one workload at scale 1 and freezes it under the
// given options, returning the freeze error instead of failing the test.
func tryRunWorkload(tb testing.TB, name string, opts ...wet.RunOption) (*wet.Trace, error) {
	tb.Helper()
	wl, err := wet.WorkloadByName(name)
	if err != nil {
		tb.Fatal(err)
	}
	prog, in := wl.Build(1)
	tr, _, err := wet.Run(prog, append([]wet.RunOption{wet.WithInputs(in...)}, opts...)...)
	return tr, err
}

func runWorkload(tb testing.TB, name string, opts ...wet.RunOption) *wet.Trace {
	tb.Helper()
	tr, err := tryRunWorkload(tb, name, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	return tr
}

func saveBytes(tb testing.TB, tr *wet.Trace) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestBudgetAtOrAboveFloorByteIdentical pins the lossless boundary: a
// budget at or above the lossless floor must produce a container
// byte-identical to an unbudgeted freeze, across workloads and both
// container formats (single-epoch v3, segmented v4).
func TestBudgetAtOrAboveFloorByteIdentical(t *testing.T) {
	for _, name := range budgetWorkloads {
		for _, epochTS := range []uint32{0, 1 << 8} {
			t.Run(fmt.Sprintf("%s/epoch=%d", name, epochTS), func(t *testing.T) {
				base := saveBytes(t, runWorkload(t, name, wet.WithEpochTS(epochTS)))
				floor := uint64(len(base))
				for _, budget := range []uint64{floor, floor + 1, 1 << 40} {
					tr := runWorkload(t, name, wet.WithEpochTS(epochTS), wet.WithByteBudget(budget))
					fid := tr.Fidelity()
					if fid == nil || fid.Degraded() {
						t.Fatalf("budget %d ≥ floor %d: fidelity %v", budget, floor, fid)
					}
					if fid.FloorBytes != floor {
						t.Fatalf("fidelity floor %d, unbudgeted container %d bytes", fid.FloorBytes, floor)
					}
					if got := saveBytes(t, tr); !bytes.Equal(base, got) {
						t.Fatalf("budget %d: container differs from unbudgeted (%d vs %d bytes)", budget, len(got), len(base))
					}
				}
			})
		}
	}
}

// TestBudgetSweep descends each workload's budget ladder and checks every
// contract of the acceptance criteria: achieved size ≤ budget (on disk,
// not just reported), fidelity monotonically non-increasing as the budget
// tightens, kept-stream queries identical to the unbudgeted trace, shed
// streams refusing with a typed *query.CapabilityError, and the fidelity
// report surviving the container round trip.
func TestBudgetSweep(t *testing.T) {
	for _, name := range budgetWorkloads {
		t.Run(name, func(t *testing.T) {
			baseTr := runWorkload(t, name)
			base := saveBytes(t, baseTr)
			floor := uint64(len(base))

			prevGroups, prevEdges := math.MaxInt, math.MaxInt
			var prevStride uint32
			infeasible := false
			for _, frac := range []float64{0.9, 0.7, 0.5, 0.3, 0.15, 0.1} {
				budget := uint64(float64(floor) * frac)
				tr, err := tryRunWorkload(t, name, wet.WithByteBudget(budget))
				var be *wet.BudgetError
				if errors.As(err, &be) {
					if be.Floor != floor {
						t.Fatalf("budget %d: error floor %d, measured floor %d", budget, be.Floor, floor)
					}
					if be.Best <= budget {
						t.Fatalf("budget %d claimed unreachable but ladder best is %d", budget, be.Best)
					}
					infeasible = true
					continue
				}
				if err != nil {
					t.Fatalf("budget %d: %v", budget, err)
				}
				if infeasible {
					t.Fatalf("budget %d feasible after a larger budget was not", budget)
				}

				fid := tr.Fidelity()
				if fid == nil || !fid.Degraded() {
					t.Fatalf("budget %d < floor %d: fidelity %v", budget, floor, fid)
				}
				if fid.BudgetBytes != budget || fid.FloorBytes != floor {
					t.Fatalf("fidelity header %d/%d, want %d/%d", fid.BudgetBytes, fid.FloorBytes, budget, floor)
				}
				got := saveBytes(t, tr)
				if uint64(len(got)) != fid.AchievedBytes {
					t.Fatalf("budget %d: reported %d B, container is %d B", budget, fid.AchievedBytes, len(got))
				}
				if uint64(len(got)) > budget {
					t.Fatalf("budget %d exceeded: container is %d B", budget, len(got))
				}
				if fid.GroupsKept > prevGroups || fid.EdgesKept > prevEdges || fid.TSStride < prevStride {
					t.Fatalf("fidelity not monotone at budget %d: kept %d/%d stride %d after kept %d/%d stride %d",
						budget, fid.GroupsKept, fid.EdgesKept, fid.TSStride, prevGroups, prevEdges, prevStride)
				}
				prevGroups, prevEdges, prevStride = fid.GroupsKept, fid.EdgesKept, fid.TSStride

				checkBudgetQueries(t, baseTr, tr)
				checkBudgetRoundTrip(t, baseTr, tr, got)
			}
			if prevGroups == math.MaxInt {
				t.Fatal("sweep never produced a feasible degraded budget")
			}
		})
	}
}

// droppedSets indexes a fidelity report's shed streams.
func droppedSets(fid *wet.FidelityReport) (groups map[[2]int]bool, edges map[int]bool) {
	groups, edges = map[[2]int]bool{}, map[int]bool{}
	for _, d := range fid.DroppedGroups {
		groups[[2]int{d.Node, d.Group}] = true
	}
	for _, d := range fid.DroppedEdges {
		edges[d.Edge] = true
	}
	return groups, edges
}

// checkBudgetQueries verifies the two sides of the never-wrong-data
// contract on a degraded trace: every query whose streams survived answers
// identically to the unbudgeted trace, and every query needing a shed
// stream fails with a typed *query.CapabilityError.
func checkBudgetQueries(t *testing.T, baseTr, tr *wet.Trace) {
	t.Helper()
	fid := tr.Fidelity()
	w := tr.WET()
	droppedGroup, _ := droppedSets(fid)

	if fid.TSStride > 0 {
		// Widened timestamps take out every timestamp-ordered query —
		// quantized timestamps served as exact would be wrong data.
		var ce *wet.CapabilityError
		if _, err := tr.ExtractCFRange(1, tr.Time(), nil); !errors.As(err, &ce) {
			t.Fatalf("widened trace: ExtractCFRange err = %v, want *CapabilityError", err)
		} else if ce.Capability != wet.CapExactTS {
			t.Fatalf("widened trace refused with capability %q", ce.Capability)
		}
		return
	}

	// Exact timestamps intact: the control-flow walk is identical.
	var baseCF, gotCF uint64
	baseH, gotH := uint64(14695981039346656037), uint64(14695981039346656037)
	baseCF = baseTr.ExtractControlFlow(true, func(id int) { baseH = (baseH ^ uint64(id)) * 1099511628211 })
	gotCF = tr.ExtractControlFlow(true, func(id int) { gotH = (gotH ^ uint64(id)) * 1099511628211 })
	if baseCF != gotCF || baseH != gotH {
		t.Fatalf("control flow diverged: %d/%d statements, digest %x/%x", baseCF, gotCF, baseH, gotH)
	}

	// Per-statement value traces: identical where every group survived,
	// typed refusal where any occurrence's group was shed.
	for _, s := range w.Prog.Stmts {
		if !s.Op.HasDef() || s.Dest == wet.NoReg || len(w.StmtOcc[s.ID]) == 0 {
			continue
		}
		affected := false
		for _, occ := range w.StmtOcc[s.ID] {
			n := w.Nodes[occ.Node]
			if droppedGroup[[2]int{occ.Node, n.GroupOf[occ.Pos]}] {
				affected = true
				break
			}
		}
		if affected {
			var ce *wet.CapabilityError
			if _, err := tr.ValueTrace(s.ID, nil); !errors.As(err, &ce) {
				t.Fatalf("stmt %d (dropped group): ValueTrace err = %v, want *CapabilityError", s.ID, err)
			} else if ce.Capability != wet.CapValues {
				t.Fatalf("stmt %d refused with capability %q", s.ID, ce.Capability)
			}
			continue
		}
		var want, got []wet.Sample
		if _, err := baseTr.ValueTrace(s.ID, func(sm wet.Sample) { want = append(want, sm) }); err != nil {
			t.Fatalf("stmt %d: base ValueTrace: %v", s.ID, err)
		}
		if _, err := tr.ValueTrace(s.ID, func(sm wet.Sample) { got = append(got, sm) }); err != nil {
			t.Fatalf("stmt %d (kept): ValueTrace: %v", s.ID, err)
		}
		if len(want) != len(got) {
			t.Fatalf("stmt %d: %d vs %d samples", s.ID, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("stmt %d sample %d: %+v vs %+v", s.ID, i, want[i], got[i])
			}
		}
	}

	// Slicing through the dependence graph: either the walk avoided every
	// shed edge and matches the unbudgeted slice, or it refuses typed.
	last := w.Nodes[w.LastNode]
	inst := wet.Instance{Node: w.LastNode, Pos: 0, Ord: last.Execs - 1}
	wantSl, err := baseTr.Backward(inst, 0)
	if err != nil {
		t.Fatalf("base backward slice: %v", err)
	}
	gotSl, err := tr.Backward(inst, 0)
	if err != nil {
		var ce *wet.CapabilityError
		if !errors.As(err, &ce) {
			t.Fatalf("backward slice err = %v, want *CapabilityError", err)
		}
		if ce.Capability != wet.CapDependences {
			t.Fatalf("slice refused with capability %q", ce.Capability)
		}
		if len(fid.DroppedEdges) == 0 {
			t.Fatal("slice refused dependence labels but no edges were dropped")
		}
	} else if len(gotSl.Instances) != len(wantSl.Instances) {
		t.Fatalf("slice diverged: %d vs %d instances", len(gotSl.Instances), len(wantSl.Instances))
	}
}

// checkBudgetRoundTrip re-opens a degraded container and verifies the
// fidelity section round-trips and the typed-refusal contract holds on the
// loaded trace too — both on the strict path and under salvage.
func checkBudgetRoundTrip(t *testing.T, baseTr, tr *wet.Trace, data []byte) {
	t.Helper()
	fid := tr.Fidelity()
	for _, mode := range []string{"strict", "salvage"} {
		var opts []wet.OpenOption
		if mode == "salvage" {
			opts = append(opts, wet.WithSalvage())
		}
		got, rep, err := wet.Open(bytes.NewReader(data), opts...)
		if err != nil {
			t.Fatalf("%s open: %v", mode, err)
		}
		if mode == "salvage" && !rep.Salvage.Clean() {
			t.Fatalf("salvage open of intact degraded file lossy: %s", rep.Salvage)
		}
		lf := got.Fidelity()
		if lf == nil {
			t.Fatalf("%s open lost the fidelity report", mode)
		}
		if lf.BudgetBytes != fid.BudgetBytes || lf.FloorBytes != fid.FloorBytes ||
			lf.AchievedBytes != fid.AchievedBytes || lf.TSStride != fid.TSStride ||
			len(lf.DroppedGroups) != len(fid.DroppedGroups) || len(lf.DroppedEdges) != len(fid.DroppedEdges) {
			t.Fatalf("%s open fidelity mismatch:\n built %s\nloaded %s", mode, fid, lf)
		}
		checkBudgetQueries(t, baseTr, got)
	}
}
