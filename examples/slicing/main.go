// Slicing: use a backward WET slice to explain a wrong output.
//
// The program computes per-item prices with a bulk discount. A seeded bug
// (the discount table entry for tier 2 is wrong) corrupts some outputs. The
// example finds the first bad output and walks its backward WET slice —
// control flow, values, and dependences together — to the culprit store,
// exactly the paper's "WET slices carry all profile types" scenario.
package main

import (
	"fmt"
	"log"
	"sort"

	"wet"
)

const (
	discounts = 0  // discount table: 3 tiers
	items     = 16 // item quantities
	nItems    = 12
)

func buildShop() (*wet.Program, *wet.Stmt, *wet.Stmt) {
	p := wet.NewProgram(1 << 10)
	fb := p.NewFunc("main", 0)

	// Discount table per tier (percent). Tier 2 should be 20 but the "bug"
	// stores 200.
	fb.Store(wet.Imm(0), discounts, wet.Imm(0))
	fb.Store(wet.Imm(1), discounts, wet.Imm(10))
	fb.Store(wet.Imm(2), discounts, wet.Imm(200)) // <-- seeded bug
	buggyStore := fb.LastEmitted()

	// Quantities 1..12.
	fb.For(wet.Imm(0), wet.Imm(nItems), wet.Imm(1), func(i wet.Reg) {
		q := fb.NewReg()
		fb.Add(q, wet.R(i), wet.Imm(1))
		fb.Store(wet.R(i), items, wet.R(q))
	})

	// Price each item: tier = qty >= 10 ? 2 : qty >= 5 ? 1 : 0;
	// price = qty*7 * (100 - discount[tier]) / 100.
	qty := fb.NewReg()
	tier := fb.NewReg()
	disc := fb.NewReg()
	price := fb.NewReg()
	c := fb.NewReg()
	var outStmt *wet.Stmt
	fb.For(wet.Imm(0), wet.Imm(nItems), wet.Imm(1), func(i wet.Reg) {
		fb.Load(qty, wet.R(i), items)
		fb.Ge(c, wet.R(qty), wet.Imm(10))
		fb.If(wet.R(c), func() {
			fb.Const(tier, 2)
		}, func() {
			fb.Ge(c, wet.R(qty), wet.Imm(5))
			fb.If(wet.R(c), func() {
				fb.Const(tier, 1)
			}, func() {
				fb.Const(tier, 0)
			})
		})
		fb.Load(disc, wet.R(tier), discounts)
		fb.Mul(price, wet.R(qty), wet.Imm(7))
		pct := fb.NewReg()
		fb.Sub(pct, wet.Imm(100), wet.R(disc))
		fb.Mul(price, wet.R(price), wet.R(pct))
		fb.Div(price, wet.R(price), wet.Imm(100))
		fb.Output(wet.R(price))
		outStmt = fb.LastEmitted()
	})
	fb.Halt()
	p.MustFinalize()
	return p, outStmt, buggyStore
}

func main() {
	prog, outStmt, buggyStore := buildShop()

	outputs, err := wet.RunProgram(prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("prices:", outputs)

	// Detect the anomaly: prices must be non-negative.
	bad := -1
	for i, v := range outputs {
		if v < 0 {
			bad = i
			break
		}
	}
	if bad < 0 {
		log.Fatal("expected a corrupted price")
	}
	fmt.Printf("price #%d is %d — negative! slicing backwards from it...\n\n", bad, outputs[bad])

	// Build the WET of the same run and slice backward from the bad output
	// instance (the bad-th execution of the output statement).
	tr, _, err := wet.Run(prog)
	if err != nil {
		log.Fatal(err)
	}
	w := tr.WET()

	inst, err := nthInstance(w, outStmt.ID, bad)
	if err != nil {
		log.Fatal(err)
	}
	sl, err := tr.Backward(inst, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Report the slice in reverse time order with values — a dynamic
	// debugging trail.
	type row struct {
		ts   uint32
		desc string
	}
	var rows []row
	sawBug := false
	for _, in := range sl.Instances {
		n := w.Nodes[in.Node]
		s := n.Stmts[in.Pos]
		ts := n.TS[in.Ord]
		desc := s.String()
		if s.Op.HasDef() && s.Dest != wet.NoReg {
			if v, err := w.Value(n, in.Pos, in.Ord, wet.Tier2); err == nil {
				desc = fmt.Sprintf("%-28s = %d", s.String(), v)
			}
		}
		if s == buggyStore {
			desc += "   <== the seeded bug"
			sawBug = true
		}
		rows = append(rows, row{ts, desc})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ts > rows[j].ts })
	fmt.Printf("backward WET slice: %d instances; most recent first:\n", len(sl.Instances))
	limit := 14
	for i, r := range rows {
		if i >= limit {
			fmt.Printf("  ... %d more\n", len(rows)-limit)
			break
		}
		fmt.Printf("  t=%-4d %s\n", r.ts, r.desc)
	}
	if !sawBug {
		log.Fatal("slice did not reach the buggy store — dependence tracking broken")
	}
	fmt.Println("\nthe slice pinpoints the discount-table store of 200 as the root cause.")
}

// nthInstance returns the n-th dynamic instance (0-based, in time order) of
// a static statement.
func nthInstance(w *wet.WET, stmtID, n int) (wet.Instance, error) {
	type occ struct {
		ts uint32
		in wet.Instance
	}
	var all []occ
	for _, ref := range w.StmtOcc[stmtID] {
		node := w.Nodes[ref.Node]
		for ord := 0; ord < node.Execs; ord++ {
			all = append(all, occ{node.TS[ord], wet.Instance{Node: ref.Node, Pos: ref.Pos, Ord: ord}})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ts < all[j].ts })
	if n >= len(all) {
		return wet.Instance{}, fmt.Errorf("statement executed %d times, want instance %d", len(all), n)
	}
	return all[n].in, nil
}
