// Valueprofile: mine per-instruction value traces for invariance.
//
// The paper motivates WET with tools that analyze value profiles for code
// specialization (Calder et al.'s value profiling): an instruction whose
// result is almost always the same value is a specialization candidate.
// This example runs the `li` workload (a bytecode interpreter) and ranks
// instructions by value invariance, straight from the compressed WET.
package main

import (
	"fmt"
	"log"

	"wet"
)

func main() {
	wl, err := wet.WorkloadByName("li")
	if err != nil {
		log.Fatal(err)
	}
	prog, inputs := wl.Build(2)
	tr, res, err := wet.Run(prog, wet.WithInputs(inputs...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %s (%d statements)\n\n", wl.Name, res.Steps)

	invs, err := tr.ValueInvariance(50)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("value invariance (specialization candidates first):")
	fmt.Printf("%-30s %10s %10s %12s %9s\n", "instruction", "execs", "uniques", "top value", "invar %")
	shown := 0
	for _, inv := range invs {
		st := prog.Stmts[inv.StmtID]
		if st.Op != wet.OpLoad {
			continue // focus on loads, like the paper's Table 7 consumers
		}
		fmt.Printf("%-30s %10d %10d %12d %8.1f%%\n",
			st, inv.Execs, inv.Uniques, inv.TopValue, 100*inv.TopFraction)
		shown++
		if shown >= 10 {
			break
		}
	}
	if shown == 0 {
		log.Fatal("no hot loads found")
	}

	// The dispatch loop's opcode fetch is the classic interpreter
	// specialization target: confirm the top candidate is highly invariant.
	top := invs[0]
	fmt.Printf("\ntop candidate %q executes %d times with %d distinct values;\n",
		prog.Stmts[top.StmtID].String(), top.Execs, top.Uniques)
	fmt.Printf("specializing on value %d would cover %.1f%% of executions.\n",
		top.TopValue, 100*top.TopFraction)
}
