// Hotpaths: mine the WET's control-flow profile for hot Ball–Larus paths —
// the paper's first motivating consumer (Larus's whole program paths,
// path-sensitive optimization). Because WET nodes ARE Ball–Larus paths, the
// query is a direct read of node execution counts; the example then drills
// into the hottest path's statements and their value behaviour, something a
// separate path profile could not answer without a second profile run.
package main

import (
	"fmt"
	"log"

	"wet"
)

func main() {
	wl, err := wet.WorkloadByName("gcc")
	if err != nil {
		log.Fatal(err)
	}
	prog, in := wl.Build(2)
	tr, res, err := wet.Run(prog, wet.WithInputs(in...))
	if err != nil {
		log.Fatal(err)
	}
	w := tr.WET()
	fmt.Printf("profiled %s: %d statements over %d path executions of %d distinct paths\n\n",
		wl.Name, res.Steps, w.Raw.PathExecs, len(w.Nodes))

	hps := tr.HotPaths(8)
	fmt.Println("hot Ball-Larus paths:")
	fmt.Printf("%6s %10s %8s %8s %10s\n", "node", "path", "execs", "stmts", "coverage")
	var cum float64
	for _, hp := range hps {
		cum += hp.Coverage
		fmt.Printf("%6d %10d %8d %8d %9.1f%%\n", hp.Node, hp.PathID, hp.Execs, hp.Stmts, 100*hp.Coverage)
	}
	fmt.Printf("top %d paths cover %.1f%% of the execution\n\n", len(hps), 100*cum)

	// Drill into the hottest path: the unified representation immediately
	// gives per-statement value behaviour for exactly the statements on it.
	hot := w.Nodes[hps[0].Node]
	fmt.Printf("hottest path (node %d) blocks %v, %d executions — value behaviour:\n",
		hot.ID, hot.Blocks, hot.Execs)
	shown := 0
	for pos, s := range hot.Stmts {
		if !s.Op.HasDef() || s.Dest == wet.NoReg {
			continue
		}
		g := hot.Groups[hot.GroupOf[pos]]
		uniq := g.UniqueKeys()
		first, err := w.Value(hot, pos, 0, wet.Tier2)
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if uniq == 1 {
			note = "   <- invariant on this path"
		}
		fmt.Printf("  %-28s %6d distinct input tuples, first value %d%s\n", s, uniq, first, note)
		shown++
		if shown >= 10 {
			fmt.Printf("  ... %d more statements\n", len(hot.Stmts)-pos-1)
			break
		}
	}
	fmt.Println("\npath-invariant statements are hoisting/specialization candidates for")
	fmt.Println("a path-sensitive optimizer — identified from ONE unified profile.")
}
