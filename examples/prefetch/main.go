// Prefetch: mine per-instruction address traces for hot, predictable
// reference streams.
//
// The paper motivates WET with address-profile consumers such as hot data
// stream detection and prefetching (Chilimbi; Joseph & Grunwald). This
// example runs the `mcf` workload (pointer-chasing arc relaxation) and
// classifies each memory instruction's reference pattern — constant,
// strided (software-prefetchable), or irregular — from the compressed WET.
package main

import (
	"fmt"
	"log"

	"wet"
)

func main() {
	wl, err := wet.WorkloadByName("mcf")
	if err != nil {
		log.Fatal(err)
	}
	prog, inputs := wl.Build(1)
	tr, res, err := wet.Run(prog, wet.WithInputs(inputs...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %s (%d statements)\n\n", wl.Name, res.Steps)

	profiles, err := tr.StrideProfiles(64)
	if err != nil {
		log.Fatal(err)
	}
	if len(profiles) == 0 {
		log.Fatal("no hot memory instructions found")
	}

	fmt.Println("hot memory instructions and their reference patterns:")
	fmt.Printf("%-30s %10s %11s %8s %7s\n", "instruction", "accesses", "pattern", "stride", "conf")
	nStrided := 0
	for i, sp := range profiles {
		if i < 12 {
			fmt.Printf("%-30s %10d %11s %8d %6.0f%%\n",
				prog.Stmts[sp.StmtID], sp.Accesses, sp.Pattern, sp.Stride, 100*sp.Confidence)
		}
		if sp.Pattern == wet.RefStrided {
			nStrided++
		}
	}
	fmt.Printf("\n%d of %d hot memory instructions are strided streams — software\n", nStrided, len(profiles))
	fmt.Println("prefetch candidates; the irregular ones are mcf's pointer chasing,")
	fmt.Println("which would need Markov/correlation prefetching instead.")
}
