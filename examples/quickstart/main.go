// Quickstart: build a tiny program, construct its Whole Execution Trace,
// print the two-tier compression report, and run one query of each class.
package main

import (
	"fmt"
	"log"

	"wet"
)

func main() {
	// A small program: sum the squares of the odd numbers below 100,
	// journaling the running sum to memory.
	prog := wet.NewProgram(1 << 12)
	fb := prog.NewFunc("main", 0)
	sum := fb.ConstReg(0)
	par := fb.NewReg()
	sq := fb.NewReg()
	fb.For(wet.Imm(0), wet.Imm(100), wet.Imm(1), func(i wet.Reg) {
		fb.Mod(par, wet.R(i), wet.Imm(2))
		fb.If(wet.R(par), func() {
			fb.Mul(sq, wet.R(i), wet.R(i))
			fb.Add(sum, wet.R(sum), wet.R(sq))
		}, nil)
		fb.Store(wet.R(i), 0, wet.R(sum))
	})
	final := fb.NewReg()
	fb.Load(final, wet.Imm(99), 0)
	loadS := fb.LastEmitted()
	fb.Output(wet.R(final))
	outS := fb.LastEmitted()
	fb.Halt()
	prog.MustFinalize()

	// Run it under the profiler and build the WET.
	tr, res, err := wet.Run(prog)
	if err != nil {
		log.Fatal(err)
	}
	w := tr.WET()
	fmt.Printf("executed %d intermediate statements in %d Ball-Larus path executions\n",
		res.Steps, w.Raw.PathExecs)
	fmt.Printf("WET: %d nodes, %d dependence edges\n\n", len(w.Nodes), len(w.Edges))
	fmt.Println(tr.Report())

	// Query 1: the whole control flow trace, forward, from the compressed
	// representation.
	n := tr.ExtractControlFlow(true, nil)
	fmt.Printf("control flow trace: %d statements reconstructed\n", n)

	// Query 2: the final load's value trace.
	var vals []int64
	if _, err := tr.ValueTrace(loadS.ID, func(s wet.Sample) {
		vals = append(vals, s.Value)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final load executed %d time(s), value %v (= sum of odd squares below 100)\n",
		len(vals), vals)

	// Query 3: its address trace (resolved through the dependence edges).
	if _, err := tr.AddressTrace(loadS.ID, func(s wet.Sample) {
		fmt.Printf("final load address: %d (at time %d)\n", s.Value, s.TS)
	}); err != nil {
		log.Fatal(err)
	}

	// Query 4: a backward WET slice of the output — everything that fed it.
	ref := w.StmtOcc[outS.ID][0]
	sl, err := tr.Backward(wet.Instance{Node: ref.Node, Pos: ref.Pos, Ord: 0}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backward slice of the output: %d dynamic instances across %d edge instances\n",
		len(sl.Instances), sl.Edges)
}
