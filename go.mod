module wet

go 1.22
