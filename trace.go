package wet

import (
	"context"
	"io"

	"wet/internal/core"
	"wet/internal/interp"
	"wet/internal/query"
	"wet/internal/racecheck"
	"wet/internal/wetio"
)

// Trace is the handle-based entry point to a whole execution trace: one
// value that carries the WET together with the tier queries read, so call
// sites stop threading a (w, tier) pair through every query. Obtain one
// from Run (build + freeze in one step), Open (from a saved file), or
// NewTrace (wrapping a *WET built through the lower-level API).
//
// A Trace is immutable and cheap to copy; AtTier returns a sibling handle
// over the same WET at a different tier. All query methods are safe for
// concurrent use on a frozen trace — every query gets its own detached
// cursors.
type Trace struct {
	w    *WET
	tier Tier
	open *OpenReport // set by Open; surfaces salvage/degradation in Report
}

// NewTrace wraps an already-built WET in a handle. The tier defaults to
// Tier2 when the WET is frozen and Tier1 otherwise; override with AtTier.
// A frozen WET without seek accounting gets a fresh per-trace counter set
// attached here (read it with SeekStats).
func NewTrace(w *WET) *Trace {
	t := &Trace{w: w, tier: Tier1}
	if w.Frozen() {
		t.tier = Tier2
		if w.SeekCounters() == nil {
			w.AttachSeekCounters(new(SeekCounters))
		}
	}
	return t
}

// Run executes the (finalized) program and returns its frozen trace in one
// call, configured by functional options mirroring Open:
//
//	tr, res, err := wet.Run(prog, wet.WithInputs(7), wet.WithEpochTS(1<<12))
//
// With WithEpochTS(n) the dynamic profile is sealed and tier-2 compressed
// in epochs of n timestamps while the interpreter runs (the streaming
// pipeline), bounding peak memory by the epoch size; without it the profile
// is built fully and then frozen, producing output byte-identical to
// BuildWET followed by Freeze. With WithByteBudget(n) the freeze lands the
// serialized container at or under n bytes, trading query capabilities in
// a fixed order and reporting exactly what it shed (Trace.Fidelity).
func Run(p *Program, opts ...RunOption) (*Trace, *RunResult, error) {
	var cfg runConfig
	for _, o := range opts {
		o.applyRun(&cfg)
	}
	return RunWithOptions(p, cfg.run, cfg.frz)
}

// RunWithOptions is the struct-form Run.
//
// Deprecated: use Run with functional options (WithInputs, WithEpochTS,
// WithByteBudget, ...); this wrapper exists for call sites predating the
// options facade and pins the old three-argument signature.
func RunWithOptions(p *Program, ropts RunOptions, fopts FreezeOptions) (*Trace, *RunResult, error) {
	st, err := interp.Analyze(p)
	if err != nil {
		return nil, nil, err
	}
	iopts := interp.Options{Ctx: ropts.Ctx, Inputs: ropts.Inputs, MaxSteps: ropts.MaxSteps, Arch: ropts.Arch, Seed: ropts.Seed}
	build := core.BuildStreaming
	if ropts.CheckDeterminism {
		build = core.BuildStreamingChecked
	}
	w, _, res, err := build(st, iopts, fopts)
	if err != nil {
		return nil, res, err
	}
	return NewTrace(w), res, nil
}

// WET returns the underlying whole execution trace for use with the
// lower-level free-function API.
func (t *Trace) WET() *WET { return t.w }

// Tier returns the tier this handle's queries read.
func (t *Trace) Tier() Tier { return t.tier }

// AtTier returns a handle over the same WET that queries at the given tier.
func (t *Trace) AtTier(tier Tier) *Trace { return &Trace{w: t.w, tier: tier} }

// Report bundles every machine-readable account a trace carries, with
// consistent snake_case JSON casing across the family: the compression
// size report, the fidelity report of a byte-budgeted freeze, the
// degradation rungs a memory budget took, and the salvage report of a
// damaged-file open. Fields not applicable to how this trace was produced
// are nil (and omitted from JSON).
type Report struct {
	Size        *SizeReport        `json:"size,omitempty"`
	Fidelity    *FidelityReport    `json:"fidelity,omitempty"`
	Degradation *DegradationReport `json:"degradation,omitempty"`
	Salvage     *SalvageReport     `json:"salvage,omitempty"`
}

func (r *Report) String() string {
	if r == nil {
		return "no report"
	}
	s := ""
	if r.Size != nil {
		s += r.Size.String()
	}
	if r.Fidelity.Degraded() {
		s += r.Fidelity.String() + "\n"
	}
	return s
}

// Report returns the trace's report bundle. The Size field is nil before
// Freeze; Fidelity is non-nil only for byte-budgeted traces; Salvage and
// Degradation carry over from Open when it reported them.
func (t *Trace) Report() *Report {
	r := &Report{Size: t.w.Report(), Fidelity: t.w.Fidelity}
	if r.Size != nil {
		r.Degradation = r.Size.Degradation
	}
	if t.open != nil {
		r.Salvage = t.open.Salvage
		if r.Degradation == nil {
			r.Degradation = t.open.Degradation
		}
	}
	return r
}

// Fidelity returns the machine-readable account of the byte-budgeted
// freeze that produced this trace: budget, lossless floor, achieved size,
// and exactly which streams were kept, degraded, or dropped. Nil when the
// trace was built without WithByteBudget; Degraded() false when the budget
// sat at or above the lossless floor (the container is then byte-identical
// to an unbudgeted freeze). Loaded traces recover the report from the
// container's fidelity section.
func (t *Trace) Fidelity() *FidelityReport { return t.w.Fidelity }

// SeekStats returns this trace's cumulative cursor seek statistics (seeks
// issued, checkpoint restores used, steps walked) — the per-trace
// replacement for the deprecated process-wide ReadSeekStats. Zero when the
// trace carries no counter set (an unfrozen WET wrapped by NewTrace).
func (t *Trace) SeekStats() SeekStats {
	if c := t.w.SeekCounters(); c != nil {
		return c.Read()
	}
	return SeekStats{}
}

// Segmented reports whether the trace was built epoch-segmented.
func (t *Trace) Segmented() bool { return t.w.Segmented() }

// EpochTS returns the epoch size in timestamps (0 = single-epoch).
func (t *Trace) EpochTS() uint32 { return t.w.EpochTS }

// Epochs returns the number of sealed epochs (0 for single-epoch traces).
func (t *Trace) Epochs() int { return t.w.Epochs }

// Time returns the trace length: the timestamp of the last statement.
func (t *Trace) Time() uint32 { return t.w.Time }

// Validate checks the structural invariants of the trace.
func (t *Trace) Validate() error { return t.w.Validate() }

// Save writes the frozen trace to w (format v3, or v4 when segmented).
func (t *Trace) Save(w io.Writer) error { return wetio.Save(w, t.w) }

// SaveFile writes the frozen trace to path atomically (temp file + fsync +
// rename): a crash or failure mid-save leaves any previous file intact.
func (t *Trace) SaveFile(path string) error { return wetio.SaveFile(path, t.w) }

// SaveFileCtx is SaveFile with cooperative cancellation; a cancelled save
// removes its temp file and returns context.Cause.
func (t *Trace) SaveFileCtx(ctx context.Context, path string) error {
	return wetio.SaveFileCtx(ctx, path, t.w)
}

// Walker returns a bidirectional control-flow walker at the handle's tier.
func (t *Trace) Walker() *Walker { return query.NewWalker(t.w, t.tier) }

// ExtractControlFlow walks the entire control-flow trace (forward or
// backward), calling emit per executed statement; it returns the count.
func (t *Trace) ExtractControlFlow(forward bool, emit func(stmtID int)) uint64 {
	return query.ExtractCF(t.w, t.tier, forward, emit)
}

// ExtractCFRange walks the control-flow trace between two timestamps
// (inclusive). An inverted range returns a *RangeError; a range merely
// clipped by the ends of the trace is extracted as far as it exists.
func (t *Trace) ExtractCFRange(fromTS, toTS uint32, emit func(stmtID int)) (uint64, error) {
	return query.ExtractCFRange(t.w, t.tier, fromTS, toTS, emit)
}

// ValueTrace extracts the per-instruction value trace of one statement.
func (t *Trace) ValueTrace(stmtID int, emit func(Sample)) (uint64, error) {
	return query.ValueTrace(t.w, t.tier, stmtID, emit)
}

// AddressTrace extracts the per-instruction address trace of a load/store.
func (t *Trace) AddressTrace(stmtID int, emit func(Sample)) (uint64, error) {
	return query.AddressTrace(t.w, t.tier, stmtID, emit)
}

// InstanceOfTS locates a statement's instance at a given timestamp.
func (t *Trace) InstanceOfTS(stmtID int, ts uint32) (Instance, error) {
	return query.InstanceOfTS(t.w, t.tier, stmtID, ts)
}

// Backward computes the backward WET slice of an instance.
func (t *Trace) Backward(from Instance, maxInstances int) (*SliceResult, error) {
	return query.BackwardSlice(t.w, t.tier, from, maxInstances)
}

// Forward computes the forward WET slice of an instance.
func (t *Trace) Forward(from Instance, maxInstances int) (*SliceResult, error) {
	return query.ForwardSlice(t.w, t.tier, from, maxInstances)
}

// Chop computes the slice intersection: the instances through which `from`
// influenced `to`.
func (t *Trace) Chop(from, to Instance, maxInstances int) (*SliceResult, error) {
	return query.Chop(t.w, t.tier, from, to, maxInstances)
}

// DependenceChain follows one backward data-dependence chain from an
// instance, up to maxLen links.
func (t *Trace) DependenceChain(from Instance, opIdx, maxLen int) ([]Instance, error) {
	return query.DependenceChain(t.w, t.tier, from, opIdx, maxLen)
}

// HotPaths ranks path nodes by dynamic statement coverage.
func (t *Trace) HotPaths(n int) []HotPath { return query.HotPaths(t.w, n) }

// WriteDOT renders a slice as a Graphviz digraph of dynamic instances and
// their dependences.
func (t *Trace) WriteDOT(res *SliceResult, out io.Writer) error {
	return query.WriteDOT(t.w, t.tier, res, out)
}

// ValueInvariance profiles value predictability of every def statement.
func (t *Trace) ValueInvariance(minExecs uint64) ([]Invariance, error) {
	return query.ValueInvariance(t.w, t.tier, minExecs)
}

// StrideProfiles classifies every load/store's address stream.
func (t *Trace) StrideProfiles(minAccesses int) ([]StrideProfile, error) {
	return query.StrideProfiles(t.w, t.tier, minAccesses)
}

// Races runs happens-before and lockset race detection over the trace's
// concurrency streams at the handle's tier (see internal racecheck rules
// RC001–RC003). A single-threaded trace — or one loaded from a
// pre-concurrency file — yields a report with Concurrent == false and no
// findings.
func (t *Trace) Races() (*RaceReport, error) {
	return racecheck.Check(t.w, t.tier)
}

// RaceReport is the result of Races.
type RaceReport = racecheck.Report

// DataRace is one finding of a RaceReport.
type DataRace = racecheck.Race

// RangeError reports an inverted timestamp range handed to ExtractCFRange.
type RangeError = query.RangeError
