// Package wet is the public API of the Whole Execution Traces library — a
// reproduction of "Whole Execution Traces" (Zhang & Gupta, MICRO 2004).
//
// A WET is a unified, compressed representation of every kind of dynamic
// profile a program run produces: control flow, values, addresses, and
// data/control dependences. It is organized as a static program graph whose
// nodes are Ball–Larus paths labeled with dynamic profile sequences, and it
// is compressed in two tiers — customized per-label-kind compression
// followed by generic bidirectional stream compression — while remaining
// directly traversable in both directions.
//
// Typical use:
//
//	prog := wet.NewProgram(1 << 14)
//	fb := prog.NewFunc("main", 0)
//	... build IR with fb ...
//	prog.MustFinalize()
//
//	tr, _, err := wet.Run(prog, wet.WithInputs(7))
//	fmt.Println(tr.Report())        // sizes at each compression tier
//
//	n := tr.ExtractControlFlow(true, nil)
//	sl, err := tr.Backward(criterion, 0)
//
// Run accepts functional options mirroring Open: WithEpochTS streams the
// build in bounded-memory epochs, WithByteBudget lands the serialized
// container under a hard size ceiling (trading query capabilities in a
// fixed order and reporting exactly what it shed in Trace.Fidelity), and
// the shared knobs WithWorkers, WithContext, and WithMemBudget mean the
// same thing on both paths. Saved traces come back through Open:
//
//	tr2, rep, err := wet.Open(f, wet.WithTier1())
//
// The heavy lifting lives in internal packages; this package re-exports the
// stable surface: the IR builder (internal/ir), the simulator entry points
// (internal/interp), the WET core (internal/core), the queries
// (internal/query), and the benchmark workloads (internal/workload).
package wet

import (
	"context"
	"io"

	"wet/internal/asm"
	"wet/internal/core"
	"wet/internal/interp"
	"wet/internal/ir"
	"wet/internal/query"
	"wet/internal/stream"
	"wet/internal/trace"
	"wet/internal/wetio"
	"wet/internal/workload"
)

// --- IR construction ---

// Program is an IR program under construction or finalized.
type Program = ir.Program

// FuncBuilder builds one function with structured control flow.
type FuncBuilder = ir.FuncBuilder

// Reg is a virtual register; Operand is a register or immediate.
type (
	Reg     = ir.Reg
	Operand = ir.Operand
	Stmt    = ir.Stmt
	Op      = ir.Op
)

// NoReg marks "no destination register".
const NoReg = ir.NoReg

// NewProgram returns an empty program with the given memory size in 64-bit
// words (rounded up to a power of two).
func NewProgram(memWords int64) *Program { return ir.NewProgram(memWords) }

// R returns a register operand; Imm an immediate operand.
func R(r Reg) Operand     { return ir.R(r) }
func Imm(v int64) Operand { return ir.Imm(v) }

// --- running programs and building WETs ---

// RunOptions configures a profiled run.
type RunOptions struct {
	// Ctx cancels the run cooperatively: the interpreter polls it every
	// 4096 steps, the streaming freeze pipeline between seal jobs. A
	// cancelled run returns context.Cause(Ctx) with all partially built
	// state released. Nil means context.Background().
	Ctx context.Context
	// Inputs is the tape consumed by input statements.
	Inputs []int64
	// MaxSteps bounds the run (0 = a large default).
	MaxSteps uint64
	// CheckDeterminism re-verifies the tier-1 value-grouping invariant on
	// every node execution (slower; useful in tests).
	CheckDeterminism bool
	// Arch optionally receives branch/memory outcomes (see ArchRecorder).
	Arch interp.ArchSink
	// Seed drives the deterministic thread scheduler of concurrent
	// programs (see interp.Options.Seed); single-threaded runs ignore it.
	Seed uint64
}

// RunResult summarizes the program run that produced a WET.
type RunResult = interp.Result

// WET is a whole execution trace.
type WET = core.WET

// SizeReport holds per-component sizes at each compression level.
type SizeReport = core.SizeReport

// FreezeOptions tunes WET.Freeze.
type FreezeOptions = core.FreezeOptions

// Tier selects the representation a query reads.
type Tier = core.Tier

// Query tiers: Tier1 = customized compression only, Tier2 = fully
// compressed (bidirectional streams).
const (
	Tier1 = core.Tier1
	Tier2 = core.Tier2
)

// BuildWET executes the (finalized) program and constructs its WET. Call
// Freeze on the result to apply tier-2 compression and obtain sizes.
//
// Deprecated: use Run, which builds, freezes, and returns a query handle
// in one call (and supports epoch-segmented streaming via
// FreezeOptions.EpochTS).
func BuildWET(p *Program, opts RunOptions) (*WET, *RunResult, error) {
	st, err := interp.Analyze(p)
	if err != nil {
		return nil, nil, err
	}
	if opts.CheckDeterminism {
		b := core.NewBuilder(st)
		b.CheckDeterminism = true
		cnt := trace.NewCounting(b)
		res, err := interp.Run(st, interp.Options{
			Ctx: opts.Ctx, Inputs: opts.Inputs, MaxSteps: opts.MaxSteps, Sink: cnt, Arch: opts.Arch, Seed: opts.Seed,
		})
		if err != nil {
			return nil, res, err
		}
		w, err := b.Finish()
		if err != nil {
			return nil, res, err
		}
		w.Raw = cnt.RawStats
		return w, res, nil
	}
	return core.Build(st, interp.Options{
		Ctx: opts.Ctx, Inputs: opts.Inputs, MaxSteps: opts.MaxSteps, Arch: opts.Arch, Seed: opts.Seed,
	})
}

// RunProgram executes a finalized program without building a WET and
// returns its outputs (a convenience for testing generated IR).
func RunProgram(p *Program, inputs []int64) ([]int64, error) {
	st, err := interp.Analyze(p)
	if err != nil {
		return nil, err
	}
	res, err := interp.Run(st, interp.Options{Inputs: inputs, CollectOutput: true})
	if err != nil {
		return nil, err
	}
	return res.Outputs, nil
}

// --- queries ---

// Walker reconstructs the control-flow trace step by step in either
// direction.
type Walker = query.Walker

// NewWalker returns a walker over w at the given tier.
//
// Deprecated: use (*Trace).Walker.
func NewWalker(w *WET, tier Tier) *Walker { return query.NewWalker(w, tier) }

// ExtractControlFlow walks the entire control-flow trace (forward or
// backward), calling emit per executed statement; it returns the statement
// count.
//
// Deprecated: use (*Trace).ExtractControlFlow.
func ExtractControlFlow(w *WET, tier Tier, forward bool, emit func(stmtID int)) uint64 {
	return query.ExtractCF(w, tier, forward, emit)
}

// Sample is one (timestamp, value) element of an extracted trace.
type Sample = query.Sample

// ValueTrace extracts the per-instruction value trace of one statement.
//
// Deprecated: use (*Trace).ValueTrace.
func ValueTrace(w *WET, tier Tier, stmtID int, emit func(Sample)) (uint64, error) {
	return query.ValueTrace(w, tier, stmtID, emit)
}

// AddressTrace extracts the per-instruction address trace of a load/store.
//
// Deprecated: use (*Trace).AddressTrace.
func AddressTrace(w *WET, tier Tier, stmtID int, emit func(Sample)) (uint64, error) {
	return query.AddressTrace(w, tier, stmtID, emit)
}

// Instance names a dynamic statement instance in WET coordinates.
type Instance = query.Instance

// SliceResult is a WET slice.
type SliceResult = query.SliceResult

// Backward computes the backward WET slice of an instance.
//
// Deprecated: use (*Trace).Backward.
func Backward(w *WET, tier Tier, from Instance, maxInstances int) (*SliceResult, error) {
	return query.BackwardSlice(w, tier, from, maxInstances)
}

// Forward computes the forward WET slice of an instance.
//
// Deprecated: use (*Trace).Forward.
func Forward(w *WET, tier Tier, from Instance, maxInstances int) (*SliceResult, error) {
	return query.ForwardSlice(w, tier, from, maxInstances)
}

// InstanceOfTS locates a statement's instance at a given timestamp.
//
// Deprecated: use (*Trace).InstanceOfTS.
func InstanceOfTS(w *WET, tier Tier, stmtID int, ts uint32) (Instance, error) {
	return query.InstanceOfTS(w, tier, stmtID, ts)
}

// --- streams (tier-2 compression, reusable standalone) ---

// Stream is an immutable compressed value sequence. Traversal happens
// through detached cursors: NewCursor spawns any number of independent
// readers over one stream, each safe in its own goroutine.
type Stream = stream.Stream

// Cursor is a detached bidirectional reader over one Stream, with
// checkpointed Seek (cost bounded by the stream's checkpoint spacing
// rather than the distance travelled).
type Cursor = stream.Cursor

// SeekStats is a snapshot of cursor seek counters (seeks issued, checkpoint
// restores used, steps walked); see Trace.SeekStats and ReadSeekStats.
type SeekStats = stream.SeekStats

// SeekCounters is a per-trace seek-cost counter set; every trace returned
// by Open carries one (Trace.SeekStats reads it).
type SeekCounters = stream.SeekCounters

// ReadSeekStats returns cumulative cursor seek statistics across all
// streams of the whole process.
//
// Deprecated: the process-wide aggregate conflates every open trace — in a
// multi-trace process use Trace.SeekStats, which reads the per-trace
// counter set. Kept as a shim for single-trace CLI consumers.
func ReadSeekStats() SeekStats { return stream.ReadSeekStats() }

// CompressBest compresses vals with the best of the predictor pool
// (bidirectional FCM / dFCM / last-n / last-n stride / packed / verbatim).
func CompressBest(vals []uint32) Stream { return stream.CompressBest(vals) }

// --- parallel queries ---

// Batch runs n independent query jobs over one shared frozen WET from
// `workers` goroutines (0 = GOMAXPROCS) and blocks until all complete.
// Queries need no caller synchronization: the access layer gives every
// query its own detached cursors.
func Batch(workers, n int, job func(i int)) { query.Batch(workers, n, job) }

// BatchCtx is Batch with cooperative cancellation and error collection:
// workers stop claiming jobs once ctx dies or any job fails, and the first
// error — context.Cause on cancellation — is returned after in-flight jobs
// finish. A job panicking with a *DecodeError (a lazily opened stream
// failing its deferred decode) fails the batch with that typed error
// instead of crashing the process.
func BatchCtx(ctx context.Context, workers, n int, job func(i int) error) error {
	return query.BatchCtx(ctx, workers, n, job)
}

// --- workloads ---

// Workload is one of the nine SpecInt-like benchmark programs.
type Workload = workload.Workload

// Workloads returns the nine benchmarks in the paper's order.
func Workloads() []Workload { return workload.All() }

// WorkloadByName returns one benchmark by name.
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// Opcode constants re-exported for inspecting statements.
const (
	OpConst  = ir.OpConst
	OpAdd    = ir.OpAdd
	OpSub    = ir.OpSub
	OpMul    = ir.OpMul
	OpDiv    = ir.OpDiv
	OpMod    = ir.OpMod
	OpAnd    = ir.OpAnd
	OpOr     = ir.OpOr
	OpXor    = ir.OpXor
	OpShl    = ir.OpShl
	OpShr    = ir.OpShr
	OpNeg    = ir.OpNeg
	OpNot    = ir.OpNot
	OpEq     = ir.OpEq
	OpNe     = ir.OpNe
	OpLt     = ir.OpLt
	OpLe     = ir.OpLe
	OpGt     = ir.OpGt
	OpGe     = ir.OpGe
	OpLoad   = ir.OpLoad
	OpStore  = ir.OpStore
	OpInput  = ir.OpInput
	OpOutput = ir.OpOutput
	OpJmp    = ir.OpJmp
	OpBr     = ir.OpBr
	OpCall   = ir.OpCall
	OpRet    = ir.OpRet
	OpHalt   = ir.OpHalt
)

// --- persistence ---

// Save writes a frozen WET to w, preserving the compressed stream states:
// format v3 for single-epoch WETs (byte-identical to earlier releases),
// v4 for epoch-segmented ones. Every section is framed with its length and
// a CRC32-C.
func Save(w io.Writer, t *WET) error { return wetio.Save(w, t) }

// SaveFile writes a frozen WET to path atomically: through a temp file in
// the same directory, fsynced, and renamed over the target only once every
// section is durable. A crash, disk-full error, or cancellation mid-save
// leaves any previous file intact; the new file appears all-or-nothing.
func SaveFile(path string, t *WET) error { return wetio.SaveFile(path, t) }

// SaveFileCtx is SaveFile with cooperative cancellation: the writer stops
// at a section boundary and returns context.Cause, and the temp file is
// removed — the destination never observes the tear.
func SaveFileCtx(ctx context.Context, path string, t *WET) error {
	return wetio.SaveFileCtx(ctx, path, t)
}

// DegradationReport lists what a memory budget (WithMemBudget,
// FreezeOptions.MemBudget) forced a pipeline stage to shed, machine-readable
// (JSON tags) for tooling.
type DegradationReport = core.DegradationReport

// DegradationAction is one rung of a DegradationReport.
type DegradationAction = core.DegradationAction

// FidelityReport is the machine-readable account of a byte-budgeted freeze
// (WithByteBudget): budget, lossless floor, achieved container size, which
// streams were kept, degraded, or dropped, and the query capabilities that
// cost. See Trace.Fidelity.
type FidelityReport = core.FidelityReport

// DroppedGroup and DroppedEdge are FidelityReport entries: one value group
// or dependence edge whose streams a byte-budgeted freeze dropped.
type (
	DroppedGroup = core.DroppedGroup
	DroppedEdge  = core.DroppedEdge
)

// CapabilityError is the typed refusal of a query that needs data a
// byte-budgeted freeze discarded: a degraded trace answers what it still
// can and refuses — typed, never wrong — what it cannot. The Capability
// field holds the stable identifier (CapValues, CapDependences,
// CapExactTS) that was lost.
type CapabilityError = query.CapabilityError

// Capability identifiers a byte-budgeted freeze can trade away; they
// appear in FidelityReport.LostCapabilities and CapabilityError.
const (
	CapValues      = core.CapValues
	CapDependences = core.CapDependences
	CapExactTS     = core.CapExactTS
)

// BudgetError reports a WithByteBudget ceiling no degradation ladder can
// reach: even with every droppable stream shed and timestamps at the
// widest stride, the container still exceeds the budget.
type BudgetError = core.BudgetError

// DecodeError reports a lazily opened stream whose deferred decode failed
// at first touch (possible only on a forged store that passed its CRC).
// Queries return it as an error; raw cursor stepping panics with it — use
// Force/TryNewCursor from the stream layer, or eager loads, for untrusted
// files.
type DecodeError = stream.DecodeError

// Load reads a WET written by Save. With restoreTier1, the tier-1 label
// arrays are rehydrated so tier-1 queries work too. Structural or checksum
// failures are reported as *FormatError.
//
// Deprecated: use Open (Load(r, false) ≡ Open(r); Load(r, true) ≡
// Open(r, WithTier1())).
func Load(r io.Reader, restoreTier1 bool) (*WET, error) {
	return wetio.Load(r, wetio.LoadOptions{RestoreTier1: restoreTier1})
}

// FormatError locates a structural or integrity failure in a WET file: the
// section containing it, the file offset, and the underlying cause.
type FormatError = wetio.FormatError

// SalvageReport describes what a salvage load recovered and what it lost.
type SalvageReport = wetio.SalvageReport

// VerifyResult summarizes a section-by-section integrity walk.
type VerifyResult = wetio.VerifyResult

// SectionStatus is one line of a VerifyResult.
type SectionStatus = wetio.SectionStatus

// LoadSalvage reads as much of a damaged WET file as remains loadable:
// damaged node records truncate the node list, damaged edge records are
// dropped individually, and cross references are repaired. The report
// details every loss; its Clean method distinguishes intact from lossy
// loads. Files missing their header or program section return an error.
//
// Deprecated: use Open with WithSalvage (and WithTier1 for restoreTier1).
func LoadSalvage(r io.Reader, restoreTier1 bool) (*WET, *SalvageReport, error) {
	return wetio.LoadWithReport(r, wetio.LoadOptions{RestoreTier1: restoreTier1, Salvage: true})
}

// Verify walks a v3/v4 WET file's sections, checking each checksum without
// parsing any payload. v2 files carry no checksums and return an error.
//
// Deprecated: use Open with WithVerifyOnly.
func Verify(r io.Reader) (*VerifyResult, error) { return wetio.Verify(r) }

// ParseProgram compiles the textual IR format (see internal/asm) into a
// finalized program:
//
//	func main() {
//	    x = const 41
//	    y = add x, 1
//	    output y
//	    halt
//	}
func ParseProgram(src string) (*Program, error) { return asm.Parse(src) }

// Chop computes the slice intersection: the instances through which `from`
// influenced `to`.
//
// Deprecated: use (*Trace).Chop.
func Chop(w *WET, tier Tier, from, to Instance, maxInstances int) (*SliceResult, error) {
	return query.Chop(w, tier, from, to, maxInstances)
}

// DependenceChain follows one backward data-dependence chain from an
// instance, up to maxLen links.
//
// Deprecated: use (*Trace).DependenceChain.
func DependenceChain(w *WET, tier Tier, from Instance, opIdx, maxLen int) ([]Instance, error) {
	return query.DependenceChain(w, tier, from, opIdx, maxLen)
}

// HotPath summarizes a Ball–Larus path's execution frequency.
type HotPath = query.HotPath

// HotPaths ranks path nodes by dynamic statement coverage.
//
// Deprecated: use (*Trace).HotPaths.
func HotPaths(w *WET, n int) []HotPath { return query.HotPaths(w, n) }

// WriteDOT renders a slice as a Graphviz digraph of dynamic instances and
// their dependences.
//
// Deprecated: use (*Trace).WriteDOT.
func WriteDOT(w *WET, tier Tier, res *SliceResult, out io.Writer) error {
	return query.WriteDOT(w, tier, res, out)
}

// Invariance summarizes a statement's value predictability.
type Invariance = query.Invariance

// ValueInvariance profiles value predictability of every def statement.
//
// Deprecated: use (*Trace).ValueInvariance.
func ValueInvariance(w *WET, tier Tier, minExecs uint64) ([]Invariance, error) {
	return query.ValueInvariance(w, tier, minExecs)
}

// StrideProfile classifies one memory instruction's reference pattern.
type StrideProfile = query.StrideProfile

// StrideProfiles classifies every load/store's address stream.
//
// Deprecated: use (*Trace).StrideProfiles.
func StrideProfiles(w *WET, tier Tier, minAccesses int) ([]StrideProfile, error) {
	return query.StrideProfiles(w, tier, minAccesses)
}

// ExtractCFRange walks the control-flow trace between two timestamps
// (inclusive). An inverted range (fromTS > toTS) returns a *RangeError.
//
// Deprecated: use (*Trace).ExtractCFRange.
func ExtractCFRange(w *WET, tier Tier, fromTS, toTS uint32, emit func(stmtID int)) (uint64, error) {
	return query.ExtractCFRange(w, tier, fromTS, toTS, emit)
}

// Reference pattern classes for StrideProfiles.
const (
	RefConstant  = query.RefConstant
	RefStrided   = query.RefStrided
	RefIrregular = query.RefIrregular
)
