package wet_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices called out in DESIGN.md.
// `go test -bench=. -benchmem` regenerates every measurement; cmd/wetbench
// prints the same data as paper-style tables.

import (
	"fmt"
	"sync"
	"testing"

	"wet/internal/arch"
	"wet/internal/core"
	"wet/internal/exp"
	"wet/internal/interp"
	"wet/internal/query"
	"wet/internal/sequitur"
	"wet/internal/stream"
	"wet/internal/workload"
)

// benchTarget keeps each workload run small enough that the full bench
// suite finishes quickly; wetbench -stmts scales the real tables up.
const benchTarget = 60_000

var (
	runsOnce sync.Once
	runsAll  []*exp.Run
	runsErr  error
)

// benchRuns builds all nine workload WETs once and caches them.
func benchRuns(b *testing.B) []*exp.Run {
	b.Helper()
	runsOnce.Do(func() {
		runsAll, runsErr = exp.RunAll(exp.Config{TargetStmts: benchTarget}, nil)
	})
	if runsErr != nil {
		b.Fatal(runsErr)
	}
	return runsAll
}

// BenchmarkTable1WETSizes measures end-to-end WET construction plus
// two-tier compression (the producer of Table 1) and reports the achieved
// compression factor.
func BenchmarkTable1WETSizes(b *testing.B) {
	wls := workload.All()
	var ratio float64
	for i := 0; i < b.N; i++ {
		wl := wls[i%len(wls)]
		r, err := exp.BuildRun(wl, benchTarget, 0)
		if err != nil {
			b.Fatal(err)
		}
		ratio = core.Ratio(r.Rep.OrigTotal(), r.Rep.T2Total())
	}
	b.ReportMetric(ratio, "orig/comp")
}

// BenchmarkTable2NodeLabels measures tier-2 compression of the node labels
// (timestamp and value streams) of prebuilt WETs.
func BenchmarkTable2NodeLabels(b *testing.B) {
	runs := benchRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := runs[i%len(runs)]
		for _, n := range r.W.Nodes {
			stream.CompressBest(n.TS)
			for _, g := range n.Groups {
				stream.CompressBest(g.Pattern)
				for _, uv := range g.UVals {
					stream.CompressBest(uv)
				}
			}
		}
	}
}

// BenchmarkTable3EdgeLabels measures tier-2 compression of the dependence
// edge label streams.
func BenchmarkTable3EdgeLabels(b *testing.B) {
	runs := benchRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := runs[i%len(runs)]
		for _, e := range r.W.Edges {
			if e.Inferable || e.SharedWith >= 0 {
				continue
			}
			stream.CompressBest(e.DstOrd)
			stream.CompressBest(e.SrcOrd)
		}
	}
}

// BenchmarkTable4ArchBits measures the architecture-profile generation
// (gshare + cache simulation during a run).
func BenchmarkTable4ArchBits(b *testing.B) {
	wl, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	prog, in := wl.Build(1)
	st, err := interp.Analyze(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := newArchRecorder()
		if _, err := interp.Run(st, interp.Options{Inputs: in, Arch: rec}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Construction measures WET construction alone (no tier-2
// compression), the paper's Table 5.
func BenchmarkTable5Construction(b *testing.B) {
	wl, err := workload.ByName("li")
	if err != nil {
		b.Fatal(err)
	}
	scale, err := workload.ScaleFor(wl, benchTarget)
	if err != nil {
		b.Fatal(err)
	}
	prog, in := wl.Build(scale)
	st, err := interp.Analyze(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Build(st, interp.Options{Inputs: in}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCF(b *testing.B, tier core.Tier, forward bool) {
	runs := benchRuns(b)
	var total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := runs[i%len(runs)]
		total += query.ExtractCF(r.W, tier, forward, nil)
	}
	b.ReportMetric(float64(total)/float64(b.N), "stmts/op")
}

// BenchmarkTable6CFTrace measures control-flow trace extraction in all four
// paper configurations.
func BenchmarkTable6CFTrace(b *testing.B) {
	b.Run("fwd-tier1", func(b *testing.B) { benchCF(b, core.Tier1, true) })
	b.Run("fwd-tier2", func(b *testing.B) { benchCF(b, core.Tier2, true) })
	b.Run("bwd-tier1", func(b *testing.B) { benchCF(b, core.Tier1, false) })
	b.Run("bwd-tier2", func(b *testing.B) { benchCF(b, core.Tier2, false) })
}

// BenchmarkTable7LoadValues measures per-instruction load value trace
// extraction.
func BenchmarkTable7LoadValues(b *testing.B) {
	runs := benchRuns(b)
	for _, tier := range []core.Tier{core.Tier1, core.Tier2} {
		tier := tier
		b.Run(tier.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runs[i%len(runs)]
				if _, err := query.LoadValueTraces(r.W, tier, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable8Addresses measures per-instruction address trace
// extraction.
func BenchmarkTable8Addresses(b *testing.B) {
	runs := benchRuns(b)
	for _, tier := range []core.Tier{core.Tier1, core.Tier2} {
		tier := tier
		b.Run(tier.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runs[i%len(runs)]
				if _, err := query.AddressTraces(r.W, tier, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable9Slices measures backward WET slices (the paper averages
// over 25 criteria per benchmark).
func BenchmarkTable9Slices(b *testing.B) {
	runs := benchRuns(b)
	crit := make(map[string][]query.Instance)
	for _, r := range runs {
		crit[r.Name] = exp.SliceCriteria(r.W, 25)
	}
	for _, tier := range []core.Tier{core.Tier1, core.Tier2} {
		tier := tier
		b.Run(tier.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runs[i%len(runs)]
				cs := crit[r.Name]
				c := cs[i%len(cs)]
				if _, err := query.BackwardSlice(r.W, tier, c, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure8Components measures the full Freeze (tier-1 reductions +
// tier-2 compression of every component), whose output Figure 8 plots.
func BenchmarkFigure8Components(b *testing.B) {
	wl, err := workload.ByName("parser")
	if err != nil {
		b.Fatal(err)
	}
	prog, in := wl.Build(1)
	st, err := interp.Analyze(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w, _, err := core.Build(st, interp.Options{Inputs: in})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		w.Freeze(core.FreezeOptions{})
	}
}

// BenchmarkFreezeParallel sweeps the tier-2 freeze worker pool over worker
// counts on the BenchmarkTable5Construction workload. Output is
// byte-identical at every worker count (TestFreezeParallelDeterminism), so
// the sweep isolates pure wall-clock scaling of the freeze pipeline.
func BenchmarkFreezeParallel(b *testing.B) {
	wl, err := workload.ByName("li")
	if err != nil {
		b.Fatal(err)
	}
	scale, err := workload.ScaleFor(wl, benchTarget)
	if err != nil {
		b.Fatal(err)
	}
	prog, in := wl.Build(scale)
	st, err := interp.Analyze(prog)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var t2 uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w, _, err := core.Build(st, interp.Options{Inputs: in})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				rep := w.Freeze(core.FreezeOptions{Workers: workers})
				t2 = rep.T2Total()
			}
			b.ReportMetric(float64(t2), "t2bytes")
		})
	}
}

// BenchmarkQueryParallel sweeps query.Batch over worker counts, replaying a
// fixed mixed query batch (backward slices at both tiers plus whole-trace
// extractions) against ONE shared frozen WET. Detached cursors make the
// queries embarrassingly parallel; this tracks the wall-clock scaling.
func BenchmarkQueryParallel(b *testing.B) {
	runs := benchRuns(b)
	r := runs[0]
	crit := exp.SliceCriteria(r.W, 16)
	var jobs []func()
	for _, tier := range []core.Tier{core.Tier1, core.Tier2} {
		tier := tier
		for _, c := range crit {
			c := c
			jobs = append(jobs, func() { _, _ = query.BackwardSlice(r.W, tier, c, 0) })
		}
		jobs = append(jobs,
			func() { query.ExtractCF(r.W, tier, true, nil) },
			func() { _, _ = query.LoadValueTraces(r.W, tier, nil) },
			func() { _, _ = query.AddressTraces(r.W, tier, nil) },
		)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				query.Batch(workers, len(jobs), func(j int) { jobs[j]() })
			}
			b.ReportMetric(float64(len(jobs)), "queries/op")
		})
	}
}

// BenchmarkFigure9Scalability measures construction+compression at growing
// run lengths (Figure 9's x axis).
func BenchmarkFigure9Scalability(b *testing.B) {
	wl, err := workload.ByName("bzip2")
	if err != nil {
		b.Fatal(err)
	}
	for _, mult := range []uint64{1, 2, 4} {
		target := benchTarget * mult
		b.Run(sizeName(target), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				r, err := exp.BuildRun(wl, target, 0)
				if err != nil {
					b.Fatal(err)
				}
				ratio = core.Ratio(r.Rep.OrigTotal(), r.Rep.T2Total())
			}
			b.ReportMetric(ratio, "orig/comp")
		})
	}
}

// --- ablation benches (design choices from DESIGN.md §5) ---

// BenchmarkAblationBLvsBB compares Ball–Larus path nodes with basic-block
// nodes (paper §3.1): the per-block mode emits far more timestamps.
func BenchmarkAblationBLvsBB(b *testing.B) {
	wl, err := workload.ByName("go")
	if err != nil {
		b.Fatal(err)
	}
	prog, in := wl.Build(1)
	for _, perBlock := range []bool{false, true} {
		name := "ballarus"
		if perBlock {
			name = "perblock"
		}
		st, err := interp.AnalyzeOpt(prog, perBlock)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var ts uint64
			for i := 0; i < b.N; i++ {
				w, _, err := core.Build(st, interp.Options{Inputs: in})
				if err != nil {
					b.Fatal(err)
				}
				ts = w.Raw.PathExecs
			}
			b.ReportMetric(float64(ts), "timestamps")
		})
	}
}

// BenchmarkAblationStreamMethods compares the bidirectional predictor pool
// with Sequitur on the node timestamp streams (paper §4's argument).
func BenchmarkAblationStreamMethods(b *testing.B) {
	runs := benchRuns(b)
	var streams [][]uint32
	for _, n := range runs[0].W.Nodes {
		streams = append(streams, n.TS)
	}
	b.Run("predictor-pool", func(b *testing.B) {
		var bits uint64
		for i := 0; i < b.N; i++ {
			bits = 0
			for _, vals := range streams {
				bits += stream.CompressBest(vals).SizeBits()
			}
		}
		b.ReportMetric(float64(bits/8), "bytes")
	})
	b.Run("sequitur", func(b *testing.B) {
		var bits uint64
		for i := 0; i < b.N; i++ {
			bits = 0
			for _, vals := range streams {
				bits += sequitur.Build(vals).SizeBits()
			}
		}
		b.ReportMetric(float64(bits/8), "bytes")
	})
}

// BenchmarkAblationValueGrouping compares freezing with and without the
// tier-1 value grouping (paper §3.2).
func BenchmarkAblationValueGrouping(b *testing.B) {
	wl, err := workload.ByName("li")
	if err != nil {
		b.Fatal(err)
	}
	prog, in := wl.Build(1)
	st, err := interp.Analyze(prog)
	if err != nil {
		b.Fatal(err)
	}
	for _, off := range []bool{false, true} {
		name := "grouped"
		if off {
			name = "ungrouped"
		}
		off := off
		b.Run(name, func(b *testing.B) {
			var bytes uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w, _, err := core.Build(st, interp.Options{Inputs: in})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				rep := w.Freeze(core.FreezeOptions{NoGrouping: off})
				bytes = rep.T2Vals
			}
			b.ReportMetric(float64(bytes), "valbytes")
		})
	}
}

// BenchmarkAblationLocalTS compares local vs global timestamps on edge
// labels (the paper's §5 implementation choice).
func BenchmarkAblationLocalTS(b *testing.B) {
	runs := benchRuns(b)
	r := runs[0]
	b.Run("local", func(b *testing.B) {
		var bits uint64
		for i := 0; i < b.N; i++ {
			bits = 0
			for _, e := range r.W.Edges {
				if e.Inferable || e.SharedWith >= 0 {
					continue
				}
				bits += stream.CompressBest(e.DstOrd).SizeBits()
				bits += stream.CompressBest(e.SrcOrd).SizeBits()
			}
		}
		b.ReportMetric(float64(bits/8), "bytes")
	})
	b.Run("global", func(b *testing.B) {
		var bits uint64
		for i := 0; i < b.N; i++ {
			bits = 0
			for _, e := range r.W.Edges {
				if e.Inferable || e.SharedWith >= 0 {
					continue
				}
				dn, sn := r.W.Nodes[e.DstNode], r.W.Nodes[e.SrcNode]
				dstG := make([]uint32, len(e.DstOrd))
				srcG := make([]uint32, len(e.SrcOrd))
				for k := range e.DstOrd {
					dstG[k] = dn.TS[e.DstOrd[k]]
					srcG[k] = sn.TS[e.SrcOrd[k]]
				}
				bits += stream.CompressBest(dstG).SizeBits()
				bits += stream.CompressBest(srcG).SizeBits()
			}
		}
		b.ReportMetric(float64(bits/8), "bytes")
	})
}

// BenchmarkAblationSelection compares the adaptive method selection with a
// single fixed method.
func BenchmarkAblationSelection(b *testing.B) {
	runs := benchRuns(b)
	var streams [][]uint32
	for _, n := range runs[0].W.Nodes {
		streams = append(streams, n.TS)
	}
	b.Run("adaptive", func(b *testing.B) {
		var bits uint64
		for i := 0; i < b.N; i++ {
			bits = 0
			for _, vals := range streams {
				bits += stream.CompressBest(vals).SizeBits()
			}
		}
		b.ReportMetric(float64(bits/8), "bytes")
	})
	b.Run("fixed-fcm2", func(b *testing.B) {
		var bits uint64
		for i := 0; i < b.N; i++ {
			bits = 0
			for _, vals := range streams {
				bits += stream.Compress(vals, stream.Spec{Kind: stream.KindFCM, Order: 2}).SizeBits()
			}
		}
		b.ReportMetric(float64(bits/8), "bytes")
	})
}

func sizeName(n uint64) string {
	return fmt.Sprintf("%dK", n/1000)
}

// newArchRecorder builds the Table 4 recorder.
func newArchRecorder() interp.ArchSink { return arch.NewRecorder() }
