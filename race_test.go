package wet_test

// Cross-representation property test for the race detector: the report is a
// function of the trace, not of how the trace is held. Every concurrent
// workload variant must yield identical findings from tier-1 raw slices,
// tier-2 compressed cursors, an eager re-open, and a lazy re-open — and the
// seeded ground truth must hold throughout (racy flavours report definite
// races, clean flavours report nothing). CI runs this under -race.

import (
	"bytes"
	"reflect"
	"testing"

	"wet"
	"wet/internal/workload"
)

func TestRaceReportCrossTierAndOpenPath(t *testing.T) {
	for _, wl := range workload.ConcAll() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			prog, in := wl.Build(1)
			tr, _, err := wet.Run(prog, wet.WithInputs(in...), wet.WithSeed(11))
			if err != nil {
				t.Fatal(err)
			}
			ref, err := tr.Races() // tier 2, in-memory build
			if err != nil {
				t.Fatal(err)
			}
			if wl.Racy != ref.Racy() {
				t.Fatalf("racy=%v but report.Racy()=%v: %+v", wl.Racy, ref.Racy(), ref.Races)
			}
			if !wl.Racy && len(ref.Races) != 0 {
				t.Fatalf("clean variant reported findings: %v", ref.Races)
			}
			t1, err := tr.AtTier(wet.Tier1).Races()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref.Races, t1.Races) {
				t.Fatalf("tier-1 and tier-2 reports differ:\n%v\n%v", t1.Races, ref.Races)
			}

			var buf bytes.Buffer
			if err := tr.Save(&buf); err != nil {
				t.Fatal(err)
			}
			eager, _, err := wet.Open(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			re, err := eager.Races()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref.Races, re.Races) {
				t.Fatalf("eager re-open report differs:\n%v\n%v", re.Races, ref.Races)
			}
			lazy, _, err := wet.Open(bytes.NewReader(buf.Bytes()), wet.WithLazy())
			if err != nil {
				t.Fatal(err)
			}
			rl, err := lazy.Races()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref.Races, rl.Races) {
				t.Fatalf("lazy re-open report differs:\n%v\n%v", rl.Races, ref.Races)
			}
		})
	}
}
