package wet

import (
	"context"

	"wet/internal/interp"
)

// RunOption configures Run. Options shared with Open (WithWorkers,
// WithContext, WithMemBudget) satisfy both interfaces.
type RunOption interface{ applyRun(*runConfig) }

// OpenOption configures Open.
type OpenOption interface{ applyOpen(*openConfig) }

// Option is accepted by both Run and Open: the shared resource knobs
// (worker pool, cancellation context, memory budget) mean the same thing
// on both paths.
type Option interface {
	RunOption
	OpenOption
}

// runConfig is the struct-form pair the functional options compile down
// to; RunWithOptions takes it directly.
type runConfig struct {
	run RunOptions
	frz FreezeOptions
}

type runOptionFunc func(*runConfig)

func (f runOptionFunc) applyRun(c *runConfig) { f(c) }

type openOptionFunc func(*openConfig)

func (f openOptionFunc) applyOpen(c *openConfig) { f(c) }

// dualOption is a shared knob with a meaning on each path.
type dualOption struct {
	run  func(*runConfig)
	open func(*openConfig)
}

func (o dualOption) applyRun(c *runConfig)   { o.run(c) }
func (o dualOption) applyOpen(c *openConfig) { o.open(c) }

// --- options shared by Run and Open ---

// WithWorkers bounds the parallel stage of either path: for Run, the
// tier-2 compression worker pool; for Open, the goroutines decoding node
// and edge sections. 0 means GOMAXPROCS, 1 forces the serial path. Both
// stages are deterministic — results are bit-identical at every width.
func WithWorkers(n int) Option {
	return dualOption{
		run:  func(c *runConfig) { c.frz.Workers = n },
		open: func(c *openConfig) { c.workers = n },
	}
}

// WithContext makes the run or open cancellable: the interpreter polls the
// context every 4096 steps and the freeze pipeline between jobs; the
// streaming read aborts within one buffer refill and section decode between
// sections. A cancelled call returns the context's cancellation cause.
func WithContext(ctx context.Context) Option {
	return dualOption{
		run:  func(c *runConfig) { c.run.Ctx = ctx; c.frz.Ctx = ctx },
		open: func(c *openConfig) { c.ctx = ctx },
	}
}

// WithMemBudget sets a soft ceiling, in bytes, on the working set of the
// run's freeze pipeline or of the open. When the requested configuration
// would exceed it, the path degrades gracefully instead of failing —
// parallel stages fall back to serial, a streaming build's epoch shrinks,
// tier-1 rehydration is dropped — and the rungs taken are recorded in the
// trace's Report (Degradation). Zero means unlimited.
func WithMemBudget(bytes uint64) Option {
	return dualOption{
		run:  func(c *runConfig) { c.frz.MemBudget = bytes },
		open: func(c *openConfig) { c.memBudget = bytes },
	}
}

// --- Run-only options ---

// WithInputs sets the input tape consumed by the program's input
// statements.
func WithInputs(inputs ...int64) RunOption {
	return runOptionFunc(func(c *runConfig) { c.run.Inputs = inputs })
}

// WithMaxSteps bounds the interpreted run (0 = a large default).
func WithMaxSteps(n uint64) RunOption {
	return runOptionFunc(func(c *runConfig) { c.run.MaxSteps = n })
}

// WithSeed drives the deterministic thread scheduler of concurrent
// programs; single-threaded runs ignore it.
func WithSeed(seed uint64) RunOption {
	return runOptionFunc(func(c *runConfig) { c.run.Seed = seed })
}

// WithArch attaches a sink receiving branch/memory outcomes (see
// ArchRecorder in internal/interp).
func WithArch(sink interp.ArchSink) RunOption {
	return runOptionFunc(func(c *runConfig) { c.run.Arch = sink })
}

// WithCheckDeterminism re-verifies the tier-1 value-grouping invariant on
// every node execution (slower; useful in tests).
func WithCheckDeterminism() RunOption {
	return runOptionFunc(func(c *runConfig) { c.run.CheckDeterminism = true })
}

// WithEpochTS selects the epoch-segmented streaming pipeline: the dynamic
// profile is sealed and tier-2 compressed in epochs of n timestamps while
// the interpreter runs, bounding peak memory by the epoch size. 0 (the
// default) builds fully and then freezes, producing output byte-identical
// to the pre-streaming pipeline.
func WithEpochTS(n uint32) RunOption {
	return runOptionFunc(func(c *runConfig) { c.frz.EpochTS = n })
}

// WithByteBudget sets a hard ceiling, in bytes, on the serialized container
// size of the frozen trace. A budget at or above the lossless floor changes
// nothing — the container stays byte-identical to an unbudgeted run. Below
// the floor, the freeze descends an ordered lossy ladder — uncompressed-
// value group streams first, then dependence-edge labels, then widening
// node timestamps to a sampled stride — until the projected size fits, and
// records exactly what it shed in the trace's FidelityReport
// (Trace.Fidelity, serialized with the container). Queries over kept
// streams stay exact; queries needing dropped data fail with a typed
// *CapabilityError, never wrong results. A budget no ladder can reach
// fails the run with a *BudgetError.
func WithByteBudget(bytes uint64) RunOption {
	return runOptionFunc(func(c *runConfig) { c.frz.ByteBudget = bytes })
}
