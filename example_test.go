package wet_test

import (
	"fmt"

	"wet"
)

// ExampleBuildWET builds a tiny program, compresses its whole execution
// trace, and reads a value back through the compressed representation.
func ExampleBuildWET() {
	prog, err := wet.ParseProgram(`
func main() {
    x = const 6
    y = mul x, 7
    output y
    halt
}
`)
	if err != nil {
		panic(err)
	}
	w, res, err := wet.BuildWET(prog, wet.RunOptions{})
	if err != nil {
		panic(err)
	}
	w.Freeze(wet.FreezeOptions{})

	fmt.Println("statements:", res.Steps)
	// Read the mul's value from the WET.
	for _, s := range prog.Stmts {
		if s.Op == wet.OpMul {
			v, _ := w.Value(w.Nodes[w.StmtOcc[s.ID][0].Node], w.StmtOcc[s.ID][0].Pos, 0, wet.Tier2)
			fmt.Println("mul produced:", v)
		}
	}
	// Output:
	// statements: 4
	// mul produced: 42
}

// ExampleExtractControlFlow reconstructs the exact statement-level control
// flow trace from the compressed WET, in both directions.
func ExampleExtractControlFlow() {
	prog, err := wet.ParseProgram(`
func main() {
    i = const 2
loop:
    c = gt i, 0
    br c, body, done
body:
    i = sub i, 1
    jmp loop
done:
    halt
}
`)
	if err != nil {
		panic(err)
	}
	w, _, err := wet.BuildWET(prog, wet.RunOptions{})
	if err != nil {
		panic(err)
	}
	w.Freeze(wet.FreezeOptions{})
	fwd := wet.ExtractControlFlow(w, wet.Tier2, true, nil)
	bwd := wet.ExtractControlFlow(w, wet.Tier2, false, nil)
	fmt.Println("forward:", fwd, "backward:", bwd)
	// Output:
	// forward: 13 backward: 13
}

// ExampleBackward slices backward from a program's output: the slice holds
// every dynamic instance that contributed to it.
func ExampleBackward() {
	prog, err := wet.ParseProgram(`
func main() {
    a = input
    b = mul a, 3
    dead = const 99
    output b
    halt
}
`)
	if err != nil {
		panic(err)
	}
	w, _, err := wet.BuildWET(prog, wet.RunOptions{Inputs: []int64{5}})
	if err != nil {
		panic(err)
	}
	w.Freeze(wet.FreezeOptions{})
	var outID int
	for _, s := range prog.Stmts {
		if s.Op == wet.OpOutput {
			outID = s.ID
		}
	}
	ref := w.StmtOcc[outID][0]
	sl, err := wet.Backward(w, wet.Tier2, wet.Instance{Node: ref.Node, Pos: ref.Pos, Ord: 0}, 0)
	if err != nil {
		panic(err)
	}
	// output <- mul <- input; the dead const is not in the slice.
	fmt.Println("slice size:", len(sl.Instances))
	// Output:
	// slice size: 3
}

// ExampleCompressBest shows the tier-2 compressor standalone: a strided
// sequence collapses to almost nothing yet steps bidirectionally.
func ExampleCompressBest() {
	vals := make([]uint32, 10000)
	for i := range vals {
		vals[i] = uint32(1000 + 4*i)
	}
	s := wet.CompressBest(vals)
	fmt.Println("method:", s.Name())
	fmt.Println("compressed bits per value:", s.SizeBits()/uint64(len(vals)))
	c := s.NewCursor()
	fmt.Println("first:", c.Next())
	for c.Pos() < c.Len() {
		c.Next()
	}
	fmt.Println("last:", c.Prev())
	// Output:
	// method: lastS2
	// compressed bits per value: 2
	// first: 1000
	// last: 40996
}
