package wet_test

import (
	"bytes"
	"errors"
	"fmt"

	"wet"
)

// ExampleBuildWET builds a tiny program, compresses its whole execution
// trace, and reads a value back through the compressed representation.
func ExampleBuildWET() {
	prog, err := wet.ParseProgram(`
func main() {
    x = const 6
    y = mul x, 7
    output y
    halt
}
`)
	if err != nil {
		panic(err)
	}
	w, res, err := wet.BuildWET(prog, wet.RunOptions{})
	if err != nil {
		panic(err)
	}
	w.Freeze(wet.FreezeOptions{})

	fmt.Println("statements:", res.Steps)
	// Read the mul's value from the WET.
	for _, s := range prog.Stmts {
		if s.Op == wet.OpMul {
			v, _ := w.Value(w.Nodes[w.StmtOcc[s.ID][0].Node], w.StmtOcc[s.ID][0].Pos, 0, wet.Tier2)
			fmt.Println("mul produced:", v)
		}
	}
	// Output:
	// statements: 4
	// mul produced: 42
}

// ExampleExtractControlFlow reconstructs the exact statement-level control
// flow trace from the compressed WET, in both directions.
func ExampleExtractControlFlow() {
	prog, err := wet.ParseProgram(`
func main() {
    i = const 2
loop:
    c = gt i, 0
    br c, body, done
body:
    i = sub i, 1
    jmp loop
done:
    halt
}
`)
	if err != nil {
		panic(err)
	}
	w, _, err := wet.BuildWET(prog, wet.RunOptions{})
	if err != nil {
		panic(err)
	}
	w.Freeze(wet.FreezeOptions{})
	fwd := wet.ExtractControlFlow(w, wet.Tier2, true, nil)
	bwd := wet.ExtractControlFlow(w, wet.Tier2, false, nil)
	fmt.Println("forward:", fwd, "backward:", bwd)
	// Output:
	// forward: 13 backward: 13
}

// ExampleBackward slices backward from a program's output: the slice holds
// every dynamic instance that contributed to it.
func ExampleBackward() {
	prog, err := wet.ParseProgram(`
func main() {
    a = input
    b = mul a, 3
    dead = const 99
    output b
    halt
}
`)
	if err != nil {
		panic(err)
	}
	w, _, err := wet.BuildWET(prog, wet.RunOptions{Inputs: []int64{5}})
	if err != nil {
		panic(err)
	}
	w.Freeze(wet.FreezeOptions{})
	var outID int
	for _, s := range prog.Stmts {
		if s.Op == wet.OpOutput {
			outID = s.ID
		}
	}
	ref := w.StmtOcc[outID][0]
	sl, err := wet.Backward(w, wet.Tier2, wet.Instance{Node: ref.Node, Pos: ref.Pos, Ord: 0}, 0)
	if err != nil {
		panic(err)
	}
	// output <- mul <- input; the dead const is not in the slice.
	fmt.Println("slice size:", len(sl.Instances))
	// Output:
	// slice size: 3
}

// ExampleCompressBest shows the tier-2 compressor standalone: a strided
// sequence collapses to almost nothing yet steps bidirectionally.
func ExampleCompressBest() {
	vals := make([]uint32, 10000)
	for i := range vals {
		vals[i] = uint32(1000 + 4*i)
	}
	s := wet.CompressBest(vals)
	fmt.Println("method:", s.Name())
	fmt.Println("compressed bits per value:", s.SizeBits()/uint64(len(vals)))
	c := s.NewCursor()
	fmt.Println("first:", c.Next())
	for c.Pos() < c.Len() {
		c.Next()
	}
	fmt.Println("last:", c.Prev())
	// Output:
	// method: lastS2
	// compressed bits per value: 2
	// first: 1000
	// last: 40996
}

// ExampleRun is the handle-based quick start: build, freeze, and query a
// program's whole execution trace through one wet.Trace value. EpochTS
// selects the epoch-segmented streaming pipeline — the profile is tier-2
// compressed in fixed-size timestamp epochs while the program runs.
func ExampleRun() {
	prog, err := wet.ParseProgram(`
func main() {
    i = const 300
    acc = const 0
loop:
    acc = add acc, i
    i = sub i, 1
    c = gt i, 0
    br c, loop, done
done:
    output acc
    halt
}
`)
	if err != nil {
		panic(err)
	}
	t, res, err := wet.Run(prog, wet.WithEpochTS(64))
	if err != nil {
		panic(err)
	}
	fmt.Println("steps:", res.Steps)
	fmt.Println("segmented:", t.Segmented(), "epochs:", t.Epochs())
	fmt.Println("forward:", t.ExtractControlFlow(true, nil))
	fmt.Println("backward:", t.ExtractControlFlow(false, nil))

	// Trace the accumulator's values across the run.
	var accID int
	for _, s := range prog.Stmts {
		if s.Op == wet.OpAdd {
			accID = s.ID
		}
	}
	var last int64
	n, err := t.ValueTrace(accID, func(s wet.Sample) { last = s.Value })
	if err != nil {
		panic(err)
	}
	fmt.Println("adds:", n, "final acc:", last)

	// Slice backward from the output through the dependence edges.
	var outID int
	for _, s := range prog.Stmts {
		if s.Op == wet.OpOutput {
			outID = s.ID
		}
	}
	inst, err := t.InstanceOfTS(outID, t.Time())
	if err != nil {
		panic(err)
	}
	sl, err := t.Backward(inst, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("slice instances:", len(sl.Instances))
	// Output:
	// steps: 1205
	// segmented: true epochs: 5
	// forward: 1205
	// backward: 1205
	// adds: 300 final acc: 45150
	// slice instances: 1200
}

// ExampleOpen round-trips a trace through the file format and back via the
// unified Open entry point, covering the strict, tier-1, and verify-only
// paths.
func ExampleOpen() {
	prog, err := wet.ParseProgram(`
func main() {
    i = const 10
loop:
    i = sub i, 1
    c = gt i, 0
    br c, loop, done
done:
    halt
}
`)
	if err != nil {
		panic(err)
	}
	t, _, err := wet.Run(prog, wet.WithEpochTS(8))
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := t.Save(&buf); err != nil {
		panic(err)
	}

	// Verify-only: a checksum walk, no trace constructed.
	_, rep, err := wet.Open(bytes.NewReader(buf.Bytes()), wet.WithVerifyOnly())
	if err != nil {
		panic(err)
	}
	fmt.Println("version:", rep.Version, "intact:", rep.Verify.OK())

	// Strict load with tier-1 rehydration; tier-1 and tier-2 views agree.
	got, _, err := wet.Open(bytes.NewReader(buf.Bytes()), wet.WithTier1())
	if err != nil {
		panic(err)
	}
	fmt.Println("tier2:", got.ExtractControlFlow(true, nil),
		"tier1:", got.AtTier(wet.Tier1).ExtractControlFlow(true, nil))
	// Output:
	// version: 4 intact: true
	// tier2: 33 tier1: 33
}

// ExampleTrace_ExtractCFRange extracts a window of the control-flow trace;
// an inverted window is a typed error, not a silent empty result.
func ExampleTrace_ExtractCFRange() {
	prog, err := wet.ParseProgram(`
func main() {
    i = const 5
loop:
    i = sub i, 1
    c = gt i, 0
    br c, loop, done
done:
    halt
}
`)
	if err != nil {
		panic(err)
	}
	t, _, err := wet.Run(prog)
	if err != nil {
		panic(err)
	}
	n, err := t.ExtractCFRange(2, 7, nil)
	fmt.Println("window:", n, err)
	var re *wet.RangeError
	if _, err := t.ExtractCFRange(7, 2, nil); errors.As(err, &re) {
		fmt.Println("inverted:", re)
	}
	// Output:
	// window: 13 <nil>
	// inverted: query: inverted timestamp range [7, 2]
}
