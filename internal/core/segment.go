package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"wet/internal/faultpoint"
	"wet/internal/interp"
	"wet/internal/stream"
	"wet/internal/trace"
)

// fpSealEpoch injects faults at the moment an epoch closes — the natural
// place for a deadline to expire mid-build or a sealer bug to surface.
var fpSealEpoch = faultpoint.New("core.seal.epoch")

// The epoch-segmented streaming pipeline: instead of holding the whole
// uncompressed tier-1 trace until the run ends, the builder seals the
// dynamic profile into fixed-size timestamp epochs (FreezeOptions.EpochTS
// timestamps each). Epoch e covers global timestamps (e*E, (e+1)*E]; as the
// interpreter crosses an epoch boundary the epoch's label slices are handed
// to a bounded worker pool and tier-2 compressed while execution continues,
// so peak memory is bounded by one epoch of tier-1 labels plus the in-flight
// compression jobs — not by trace length.
//
// Segment storage keeps every cross-segment invariant the single-epoch
// representation has:
//
//   - Node timestamps are stored LOCAL to the epoch (global = epoch base +
//     local, base = epoch*EpochTS); everything else stays GLOBAL.
//   - Pattern entries index the run-global unique-value table (the key map
//     lives for the whole run), and each unique-value segment holds the
//     values first observed in its epoch, so concatenating segments
//     reproduces the run-global discovery order exactly.
//   - Edge labels live in the segment of their use-side (destination)
//     timestamp — a cross-epoch dependence is recorded where it is consumed,
//     and its source ordinal (a run-global execution ordinal) may point into
//     any earlier epoch.
//
// Because concatenation reproduces the exact single-epoch sequences, the
// federated cursors (fedseq.go) make every query return identical results on
// a segmented and a single-epoch WET of the same run.

// LabelSeg is one epoch's frozen slice of a label sequence (timestamps,
// group pattern, or unique values).
type LabelSeg struct {
	Epoch int
	N     int
	S     stream.Stream
}

// EdgeSeg is one epoch's slice of a dependence edge's label pairs, carrying
// the per-epoch forms of the §3.3 reductions: Inferable segments cover every
// node execution of their epoch with <k,k> pairs starting at RampBase and
// store nothing; shared segments reuse the identical labels of
// Edges[SharedWith].Segs[SharedSeg] (the representative always has a smaller
// edge index); Diagonal segments store only the destination ordinals.
type EdgeSeg struct {
	Epoch int
	N     int

	Inferable bool
	RampBase  uint32
	Diagonal  bool

	SharedWith int // owning edge index, or -1
	SharedSeg  int // segment index within the owner, or -1

	DstS, SrcS stream.Stream
}

// freezePool is the bounded asynchronous compression pool the sealer hands
// epoch slices to. The jobs channel is small on purpose: a submit blocks
// once workers fall behind, so un-compressed sealed epochs cannot pile up
// and the streaming memory bound holds under any workload.
//
// Failure discipline: a cancelled context or a failed job flips the pool
// into drain-only mode — workers keep consuming the queue (so submits
// never deadlock) but stop running jobs, and drain reports the first
// failure (or the cancellation cause) after every goroutine has joined.
type freezePool struct {
	ctx  context.Context
	jobs chan func(*stream.Scratch)
	wg   sync.WaitGroup
	bad  atomic.Bool
	mu   sync.Mutex
	err  error
}

func newFreezePool(ctx context.Context, workers int) *freezePool {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &freezePool{ctx: ctx, jobs: make(chan func(*stream.Scratch), workers*2)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		// wetlint:bounded — one worker per pool slot, capped at GOMAXPROCS.
		go func() {
			defer p.wg.Done()
			sc := stream.NewScratch()
			defer sc.Release()
			for job := range p.jobs {
				if p.bad.Load() || p.ctx.Err() != nil {
					continue // drain-only: the build is aborting
				}
				p.run(job, sc)
			}
		}()
	}
	return p
}

func (p *freezePool) run(job func(*stream.Scratch), sc *stream.Scratch) {
	var err error
	func() {
		defer recoverJob("seal", &err)
		if err = fpFreezeJob.Hit(); err != nil {
			return
		}
		job(sc)
	}()
	if err != nil {
		p.setErr(err)
	}
}

func (p *freezePool) setErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
	p.bad.Store(true)
}

func (p *freezePool) firstErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// submit blocks while workers are behind (that is the memory bound), but
// gives up on cancellation: the dropped job is moot because the aborted
// build discards the WET.
func (p *freezePool) submit(job func(*stream.Scratch)) {
	select {
	case p.jobs <- job:
	case <-p.ctx.Done():
	}
}

func (p *freezePool) drain() error {
	close(p.jobs)
	p.wg.Wait()
	if err := p.firstErr(); err != nil {
		return err
	}
	if p.ctx.Err() != nil {
		return context.Cause(p.ctx)
	}
	return nil
}

// sealEpoch freezes every label appended during the epoch that just closed:
// it moves the tier-1 slices out of the live builder state (appends restart
// empty for the next epoch), decides the per-segment edge reductions while
// the uncompressed labels are still at hand, and submits one compression job
// per surviving stream. Runs on the interpreter goroutine; only the
// compression itself is concurrent. Segment lists hold pointers so later
// appends never move a segment a worker is still writing.
func (b *Builder) sealEpoch(epoch int) {
	if err := fpSealEpoch.Hit(); err != nil {
		b.fail(err)
		return
	}
	base := uint32(epoch) * b.epochTS
	ck := b.fopts.CheckpointK

	for _, n := range b.w.Nodes {
		if len(n.TS) > 0 {
			ts := n.TS
			n.TS = nil
			for i := range ts {
				ts[i] -= base
			}
			seg := &LabelSeg{Epoch: epoch, N: len(ts)}
			n.TSSegs = append(n.TSSegs, seg)
			b.pipe.submit(func(sc *stream.Scratch) { seg.S = stream.CompressBestScratchK(ts, sc, ck) })
		}
		for _, g := range n.Groups {
			if len(g.Pattern) > 0 {
				pat := g.Pattern
				g.Pattern = nil
				seg := &LabelSeg{Epoch: epoch, N: len(pat)}
				g.PatSegs = append(g.PatSegs, seg)
				b.pipe.submit(func(sc *stream.Scratch) { seg.S = stream.CompressBestScratchK(pat, sc, ck) })
			}
			if g.UValSegs == nil && len(g.ValMembers) > 0 {
				g.UValSegs = make([][]*LabelSeg, len(g.ValMembers))
			}
			for mi := range g.UVals {
				if len(g.UVals[mi]) == 0 {
					continue
				}
				uv := g.UVals[mi]
				g.UVals[mi] = nil
				seg := &LabelSeg{Epoch: epoch, N: len(uv)}
				g.UValSegs[mi] = append(g.UValSegs[mi], seg)
				b.pipe.submit(func(sc *stream.Scratch) { seg.S = stream.CompressBestScratchK(uv, sc, ck) })
			}
		}
	}

	b.sealEpochEdges(epoch)

	// Advance the per-node sealed-execution watermark only after the edge
	// pass: segment inference needs the epoch's starting ordinal.
	for _, n := range b.w.Nodes {
		n.sealedExecs = n.Execs
	}
}

// sealEpochEdges applies the per-segment §3.3 reductions to every edge that
// fired during the epoch and submits the surviving label streams for
// compression. Sharing is per-epoch and per (src node, dst node, kind):
// identical uncompressed label slices are detected in edge-index order, so a
// representative always has a smaller index than its sharers.
func (b *Builder) sealEpochEdges(epoch int) {
	ck := b.fopts.CheckpointK
	type shareKey struct {
		srcNode, dstNode int
		kind             EdgeKind
		h                uint64
	}
	type owner struct {
		edgeIdx, segIdx int
		seg             *EdgeSeg
		dst, src        []uint32
	}
	var reps map[shareKey][]owner
	if !b.fopts.NoShare {
		reps = map[shareKey][]owner{}
	}

	for ei, e := range b.w.Edges {
		if len(e.DstOrd) == 0 {
			continue
		}
		dst, src := e.DstOrd, e.SrcOrd
		e.DstOrd, e.SrcOrd = nil, nil
		seg := &EdgeSeg{Epoch: epoch, N: len(dst), SharedWith: -1, SharedSeg: -1}
		e.Segs = append(e.Segs, seg)

		// Per-segment inference: the edge fired on every execution of its
		// node this epoch and every pair is <k,k> along the epoch's ordinal
		// ramp.
		if !b.fopts.NoInfer && e.SrcNode == e.DstNode {
			node := b.w.Nodes[e.DstNode]
			start := uint32(node.sealedExecs)
			if len(dst) == node.Execs-node.sealedExecs {
				ramp := true
				for k := range dst {
					if dst[k] != start+uint32(k) || src[k] != dst[k] {
						ramp = false
						break
					}
				}
				if ramp {
					seg.Inferable = true
					seg.RampBase = start
					continue
				}
			}
		}
		if b.fopts.AggressiveEdges {
			diag := true
			for k := range dst {
				if dst[k] != src[k] {
					diag = false
					break
				}
			}
			if diag {
				seg.Diagonal = true
				src = nil
			}
		}
		if reps != nil {
			k := shareKey{e.SrcNode, e.DstNode, e.Kind, segLabelHash(dst, src, seg.Diagonal)}
			found := false
			for _, o := range reps[k] {
				if segLabelsEqual(o.dst, o.src, o.seg.Diagonal, dst, src, seg.Diagonal) {
					seg.SharedWith = o.edgeIdx
					seg.SharedSeg = o.segIdx
					seg.Diagonal = false
					found = true
					break
				}
			}
			if found {
				continue
			}
			reps[k] = append(reps[k], owner{edgeIdx: ei, segIdx: len(e.Segs) - 1, seg: seg, dst: dst, src: src})
		}
		dstBuf, srcBuf, diag := dst, src, seg.Diagonal
		b.pipe.submit(func(sc *stream.Scratch) {
			seg.DstS = stream.CompressBestScratchK(dstBuf, sc, ck)
			if !diag {
				seg.SrcS = stream.CompressBestScratchK(srcBuf, sc, ck)
			}
		})
	}
}

// segLabelHash mirrors labelHash over raw slices (diagonal segments hash the
// destination ordinals on both sides, like diagonal edges do).
func segLabelHash(dst, src []uint32, diag bool) uint64 {
	if diag {
		return labelHashRaw(dst, dst)
	}
	return labelHashRaw(dst, src)
}

// segLabelsEqual mirrors labelsEqual over raw slices.
func segLabelsEqual(aDst, aSrc []uint32, aDiag bool, bDst, bSrc []uint32, bDiag bool) bool {
	if len(aDst) != len(bDst) || aDiag != bDiag {
		return false
	}
	for i := range aDst {
		if aDst[i] != bDst[i] {
			return false
		}
		if !aDiag && aSrc[i] != bSrc[i] {
			return false
		}
	}
	return true
}

// finishStreaming completes a streaming build after the interpreter stops:
// seals the trailing partial epoch, waits for the compression pool, promotes
// whole-run inferable edges, and assembles the size report.
func (b *Builder) finishStreaming() error {
	e := b.epochTS
	if b.time > 0 && b.time%e != 0 {
		b.sealEpoch(int(b.time / e))
	}
	if err := b.pipe.drain(); err != nil {
		return err
	}
	if b.err != nil {
		return b.err
	}
	w := b.w
	w.EpochTS = e
	w.Epochs = int((uint64(b.time) + uint64(e) - 1) / uint64(e))

	// Concurrency streams are whole-run (not epoch-segmented; see conc.go),
	// so they compress here, after the per-epoch pool has drained. Streaming
	// implies DropTier1, and that applies to them too.
	if w.Conc != nil {
		ctx := b.fopts.Ctx
		if ctx == nil {
			ctx = context.Background()
		}
		var jobs []func(sc *stream.Scratch)
		concFreezeJobs(w.Conc, b.fopts.CheckpointK, &jobs)
		if err := runJobsCtx(ctx, jobs, b.fopts.Workers); err != nil {
			return err
		}
		w.Conc.dropTier1()
	}

	// Whole-run inference: an edge whose every segment is inferable and
	// that fired on every node execution carries exactly the labels the
	// single-epoch Freeze drops — promote it so the edge-level fast paths
	// (queries, semantic verifier) apply unchanged.
	for _, ed := range w.Edges {
		if ed.SrcNode != ed.DstNode || ed.Count != w.Nodes[ed.DstNode].Execs || len(ed.Segs) == 0 {
			continue
		}
		all := true
		for _, sg := range ed.Segs {
			if !sg.Inferable {
				all = false
				break
			}
		}
		if all {
			ed.Inferable = true
			ed.Segs = nil
		}
	}
	return nil
}

// streamingReport assembles the SizeReport of a streamed WET. Tier-1 costs
// are charged per segment (an epoch-local inference or share drops only its
// own epoch's labels), so tier-1 edge bytes can differ from a single-epoch
// freeze of the same run; tier-2 sizes are the measured stream bits either
// way. Deterministic: nodes, groups, and edges are walked in index order
// after the pool has drained.
func (w *WET) streamingReport(opts FreezeOptions) *SizeReport {
	r := &SizeReport{Methods: map[string]int{}}
	r.OrigTS = w.Raw.OrigNodeTSBytes()
	r.OrigVals = w.Raw.OrigNodeValBytes()
	r.OrigEdges = w.Raw.OrigEdgeBytes()

	addSeg := func(sg *LabelSeg) {
		r.Methods[sg.S.Name()]++
	}
	for _, n := range w.Nodes {
		r.T1TS += uint64(n.Execs) * trace.TSBytes
		var bits uint64
		for _, sg := range n.TSSegs {
			addSeg(sg)
			bits += sg.S.SizeBits()
		}
		r.T2TS += (bits + 7) / 8

		for _, g := range n.Groups {
			if len(g.ValMembers) == 0 && len(g.PatSegs) == 0 {
				continue
			}
			uniq := uint64(g.UniqueKeys())
			var patBits uint64
			if uniq > 1 {
				patBits = uint64(n.Execs) * uint64(bitsFor(uniq-1))
			}
			if len(g.ValMembers) > 0 {
				r.T1Vals += uniq*uint64(len(g.ValMembers))*trace.ValBytes + (patBits+7)/8
			}
			var t2 uint64
			for _, segs := range g.UValSegs {
				for _, sg := range segs {
					addSeg(sg)
					t2 += sg.S.SizeBits()
				}
			}
			if len(g.ValMembers) > 0 {
				for _, sg := range g.PatSegs {
					addSeg(sg)
					t2 += sg.S.SizeBits()
				}
				r.T2Vals += (t2 + 7) / 8
			}
		}
	}

	for _, e := range w.Edges {
		if e.Inferable {
			r.InferableEdges++
			continue
		}
		ownedSegs, sharedSegs := 0, 0
		var t1 uint64
		var t2bits uint64
		for _, sg := range e.Segs {
			switch {
			case sg.Inferable:
			case sg.SharedWith >= 0:
				sharedSegs++
			default:
				ownedSegs++
				if sg.Diagonal {
					t1 += uint64(sg.N) * trace.TSBytes
					r.Methods[sg.DstS.Name()]++
					t2bits += sg.DstS.SizeBits()
				} else {
					t1 += uint64(sg.N) * trace.PairBytes
					r.Methods[sg.DstS.Name()]++
					r.Methods[sg.SrcS.Name()]++
					t2bits += sg.DstS.SizeBits() + sg.SrcS.SizeBits()
				}
				if sg.Diagonal {
					r.DiagonalEdges++
				}
			}
		}
		r.T1Edges += t1
		if e.Kind == DD {
			r.T1EdgesDD += t1
		} else {
			r.T1EdgesCD += t1
		}
		r.T2Edges += (t2bits + 7) / 8
		if ownedSegs == 0 && sharedSegs > 0 {
			r.SharedEdges++
		} else {
			r.OwnedEdges++
		}
	}
	r.CheckpointBytes = w.checkpointBytes()
	return r
}

// NewStreamingBuilder returns a builder that seals and tier-2 compresses
// the profile in epochs of opts.EpochTS timestamps while events arrive (see
// the package comment above). The returned builder implements trace.Sink
// like NewBuilder; FinishStreaming must be called instead of Finish.
// Streaming implies DropTier1: the per-epoch tier-1 slices are released as
// each epoch seals. The value-grouping ablations (NoGrouping,
// SkipFullSizing) are incompatible with streaming.
func NewStreamingBuilder(st *interp.Static, opts FreezeOptions) (*Builder, error) {
	if opts.EpochTS == 0 {
		return nil, fmt.Errorf("core: streaming builder requires EpochTS > 0")
	}
	if opts.NoGrouping || opts.SkipFullSizing {
		return nil, fmt.Errorf("core: NoGrouping/SkipFullSizing are single-epoch ablations; not available when streaming")
	}
	b := NewBuilder(st)
	b.epochTS = opts.EpochTS
	b.fopts = opts
	b.pipe = newFreezePool(opts.Ctx, opts.Workers)
	return b, nil
}

// FinishStreaming validates and returns the streamed WET: frozen, segmented,
// with the size report attached. The WET's Raw stats must be set by the
// caller before the report is meaningful only for Orig* lines; Raw is
// assigned here from the counting sink when built via BuildStreaming.
func (b *Builder) FinishStreaming() (*WET, error) {
	if b.pipe == nil {
		return nil, fmt.Errorf("core: FinishStreaming on a non-streaming builder")
	}
	if b.err != nil {
		b.pipe.drain()
		return nil, b.err
	}
	if len(b.pending) != 0 {
		b.pipe.drain()
		return nil, fmt.Errorf("core: %d statement events not covered by a path", len(b.pending))
	}
	w := b.w
	w.Time = b.time
	if err := b.finishStreaming(); err != nil {
		return nil, err
	}
	for i, e := range w.Edges {
		dst := w.Nodes[e.DstNode]
		dst.InEdges[e.DstPos] = append(dst.InEdges[e.DstPos], i)
		src := w.Nodes[e.SrcNode]
		src.OutEdges[e.SrcPos] = append(src.OutEdges[e.SrcPos], i)
	}
	b.instLoc = nil
	return w, nil
}

// BuildStreaming runs the program and constructs its epoch-segmented,
// frozen WET in one call (the streaming counterpart of Build + Freeze).
// When opts.EpochTS is 0 it falls back to exactly the single-epoch path, so
// its output — including Save bytes — is identical to the pre-streaming
// pipeline.
func BuildStreaming(st *interp.Static, ropts interp.Options, opts FreezeOptions) (*WET, *SizeReport, *interp.Result, error) {
	return buildStreaming(st, ropts, opts, false)
}

// BuildStreamingChecked is BuildStreaming with the tier-1 value-grouping
// determinism re-verification enabled on every node execution (the
// streaming counterpart of setting Builder.CheckDeterminism; slower).
func BuildStreamingChecked(st *interp.Static, ropts interp.Options, opts FreezeOptions) (*WET, *SizeReport, *interp.Result, error) {
	return buildStreaming(st, ropts, opts, true)
}

func buildStreaming(st *interp.Static, ropts interp.Options, opts FreezeOptions, check bool) (*WET, *SizeReport, *interp.Result, error) {
	// One cancellable context spans the whole pipeline: the caller's
	// deadline (ropts.Ctx / opts.Ctx) cancels it from outside, and a
	// builder or pool failure cancels it from inside so the interpreter
	// aborts within one ctx-check window instead of running to completion
	// against a dead build.
	parent := ropts.Ctx
	if parent == nil {
		parent = opts.Ctx
	}
	if parent == nil {
		parent = context.Background()
	}
	bctx, cancel := context.WithCancelCause(parent)
	defer cancel(nil)
	ropts.Ctx = bctx

	var deg *DegradationReport
	var b *Builder
	if opts.EpochTS == 0 {
		b = NewBuilder(st)
	} else {
		sopts := opts
		sopts.Ctx = bctx
		sopts, deg = planFreezeBudget(sopts)
		var err error
		b, err = NewStreamingBuilder(st, sopts)
		if err != nil {
			return nil, nil, nil, err
		}
		opts = sopts
	}
	b.CheckDeterminism = check
	b.abort = cancel
	cnt := trace.NewCounting(b)
	ropts.Sink = cnt
	res, err := runInterp(st, ropts)
	if b.err != nil {
		// The builder aborted the run; its error is the root cause, not
		// the cancellation the interpreter observed.
		err = b.err
	}
	if err != nil {
		if b.pipe != nil {
			// Drain the pool so worker goroutines never outlive a failed
			// build.
			b.pipe.drain()
		}
		return nil, nil, res, err
	}
	if opts.EpochTS == 0 {
		w, err := b.Finish()
		if err != nil {
			return nil, nil, res, err
		}
		w.Raw = cnt.RawStats
		fopts := opts
		fopts.Ctx = parent
		rep, err := w.FreezeErr(fopts)
		if err != nil {
			return nil, nil, res, err
		}
		return w, rep, res, nil
	}
	w, err := b.FinishStreaming()
	if err != nil {
		return nil, nil, res, err
	}
	w.Raw = cnt.RawStats
	rep := w.streamingReport(opts)
	rep.Degradation = deg
	w.frozen = true
	w.report = rep
	// Byte budget on the segmented container: same ladder as the
	// single-epoch freeze minus the timestamp-widening rung (v4 segments
	// store epoch-local timestamps; see budget.go). The failed-build WET is
	// discarded by the caller, so only the frozen flag needs restoring.
	if err := w.applyByteBudget(opts); err != nil {
		w.frozen, w.report = false, nil
		return nil, nil, res, err
	}
	return w, rep, res, nil
}

// runInterp runs the interpreter with a recover boundary that converts an
// armed-failpoint panic escaping the sink (e.g. a panic-action
// core.seal.epoch) into its typed error; any other panic is a real bug
// and propagates.
func runInterp(st *interp.Static, ropts interp.Options) (res *interp.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			fe, ok := p.(*faultpoint.Error)
			if !ok {
				panic(p)
			}
			err = fe
		}
	}()
	return interp.Run(st, ropts)
}
