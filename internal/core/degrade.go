package core

import (
	"fmt"
	"runtime"
)

// Degradation points: where a memory budget changed the plan. The names
// are stable machine-readable identifiers (they appear in JSON reports and
// CI logs), not prose.
const (
	// DegradeSerialDecode: parallel section decode fell back to serial.
	DegradeSerialDecode = "load.parallel-decode"
	// DegradeLazyStreams: eager stream materialization fell back to lazy
	// first-touch decode.
	DegradeLazyStreams = "load.eager-streams"
	// DegradeDropTier1Restore: tier-1 rehydration was skipped; the trace
	// opens tier-2 only.
	DegradeDropTier1Restore = "load.tier1-restore"
	// DegradeSerialFreeze: the tier-2 compression pool fell back to serial.
	DegradeSerialFreeze = "freeze.parallel-workers"
	// DegradeShrinkEpoch: the streaming epoch size was shrunk so one
	// epoch's tier-1 buffers fit the budget.
	DegradeShrinkEpoch = "freeze.epoch-ts"
)

// DegradationAction is one rung of the ladder that was actually taken.
type DegradationAction struct {
	// Point names what was degraded (Degrade* constants).
	Point string `json:"point"`
	// From and To describe the change in that point's units (worker
	// counts, modes, epoch sizes) as strings so the report is uniform.
	From string `json:"from"`
	To   string `json:"to"`
	// SavedBytes is the planner's estimate of working-set bytes shed.
	SavedBytes uint64 `json:"saved_bytes"`
	Reason     string `json:"reason"`
}

// DegradationReport is the machine-readable account of what a MemBudget
// traded away. A nil report means no budget was set or nothing had to
// degrade; an empty Actions list never happens (the report exists only
// when at least one rung was taken).
type DegradationReport struct {
	// BudgetBytes is the soft ceiling that was requested.
	BudgetBytes uint64 `json:"budget_bytes"`
	// EstimateBytes is the planner's working-set estimate before degrading.
	EstimateBytes uint64 `json:"estimate_bytes"`
	// FinalBytes is the estimate after every action was applied. It can
	// still exceed the budget: the ladder has a floor (serial, lazy,
	// minimum epoch) and the budget is soft — the pipeline degrades as far
	// as it can and reports honestly rather than failing.
	FinalBytes uint64              `json:"final_bytes"`
	Actions    []DegradationAction `json:"actions"`
}

func (r *DegradationReport) String() string {
	if r == nil {
		return "no degradation"
	}
	s := fmt.Sprintf("budget %d B, estimated %d B, degraded to %d B:", r.BudgetBytes, r.EstimateBytes, r.FinalBytes)
	for _, a := range r.Actions {
		s += fmt.Sprintf("\n  %s: %s -> %s (saves ~%d B): %s", a.Point, a.From, a.To, a.SavedBytes, a.Reason)
	}
	return s
}

// add records one rung, allocating the report on first use.
func (r *DegradationReport) add(a DegradationAction) *DegradationReport {
	if r == nil {
		r = &DegradationReport{}
	}
	r.Actions = append(r.Actions, a)
	return r
}

// Freeze working-set model. The planner needs only order-of-magnitude
// estimates: the budget is a soft ceiling steering coarse mode choices
// (parallel vs serial, epoch size), not an allocator limit.
const (
	// scratchBytesPerWorker approximates one stream.Scratch: the pooled
	// FCM/dFCM/last-n predictor tables a freeze worker owns for the
	// selection dry-runs.
	scratchBytesPerWorker = 4 << 20
	// bytesPerEpochTS approximates the tier-1 bytes one timestamp of a
	// sealed epoch holds across node TS, group pattern/unique-value, and
	// edge label slices (measured on the paper workloads: tens of bytes
	// per dynamic path; 64 is the conservative round number).
	bytesPerEpochTS = 64
	// minEpochTS is the floor of the epoch-shrinking rung: below 4096
	// timestamps per epoch the per-segment overheads (stream headers,
	// cursor state, segment bookkeeping) dominate what shrinking saves.
	minEpochTS = 1 << 12
)

// planFreezeBudget applies FreezeOptions.MemBudget to the freeze plan
// before any work starts: parallel workers fall back to serial, then a
// streaming build's epoch is shrunk (power-of-two steps, floored at
// minEpochTS). Returns the adjusted options and a report of the rungs
// taken (nil when nothing degraded).
func planFreezeBudget(opts FreezeOptions) (FreezeOptions, *DegradationReport) {
	if opts.MemBudget == 0 {
		return opts, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	estimate := uint64(workers)*scratchBytesPerWorker + uint64(opts.EpochTS)*bytesPerEpochTS
	var rep *DegradationReport
	final := estimate
	if workers > 1 && final > opts.MemBudget {
		saved := uint64(workers-1) * scratchBytesPerWorker
		rep = rep.add(DegradationAction{
			Point: DegradeSerialFreeze,
			From:  fmt.Sprintf("%d workers", workers), To: "serial",
			SavedBytes: saved,
			Reason:     "per-worker predictor scratch exceeds the budget",
		})
		final -= saved
		opts.Workers = 1
	}
	if opts.EpochTS > minEpochTS {
		e := opts.EpochTS
		for e/2 >= minEpochTS && final > opts.MemBudget {
			final -= uint64(e/2) * bytesPerEpochTS // halving sheds half the epoch buffer
			e /= 2
		}
		if e != opts.EpochTS {
			rep = rep.add(DegradationAction{
				Point: DegradeShrinkEpoch,
				From:  fmt.Sprintf("%d", opts.EpochTS), To: fmt.Sprintf("%d", e),
				SavedBytes: uint64(opts.EpochTS-e) * bytesPerEpochTS,
				Reason:     "one epoch of tier-1 label buffers exceeds the budget",
			})
			opts.EpochTS = e
		}
	}
	if rep != nil {
		rep.BudgetBytes = opts.MemBudget
		rep.EstimateBytes = estimate
		rep.FinalBytes = final
	}
	return opts, rep
}
