package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"

	"wet/internal/faultpoint"
	"wet/internal/stream"
	"wet/internal/trace"
)

// fpFreezeJob injects worker faults (typically panics) into the tier-2
// compression pool, rehearsing a buggy compression job.
var fpFreezeJob = faultpoint.New("core.freeze.job")

// SizeReport gives the storage cost of each WET component (bytes) at each
// compression level, in the units of the paper's Tables 1–3: 4 bytes per
// timestamp or value, 8 bytes per dependence label pair at tiers 0/1, and
// measured bits at tier 2.
type SizeReport struct {
	OrigTS    uint64 `json:"orig_ts"`
	OrigVals  uint64 `json:"orig_vals"`
	OrigEdges uint64 `json:"orig_edges"`
	T1TS      uint64 `json:"t1_ts"`
	T1Vals    uint64 `json:"t1_vals"`
	T1Edges   uint64 `json:"t1_edges"`
	T2TS      uint64 `json:"t2_ts"`
	T2Vals    uint64 `json:"t2_vals"`
	T2Edges   uint64 `json:"t2_edges"`

	// T1EdgesDD/T1EdgesCD split the tier-1 edge label bytes by dependence
	// kind (the paper lumps them; the split shows CD labels are the bulk
	// before inference and nearly free after).
	T1EdgesDD uint64 `json:"t1_edges_dd"`
	T1EdgesCD uint64 `json:"t1_edges_cd"`

	// InferableEdges / SharedEdges count tier-1 label eliminations;
	// DiagonalEdges counts the AggressiveEdges reduction.
	InferableEdges int `json:"inferable_edges"`
	SharedEdges    int `json:"shared_edges"`
	OwnedEdges     int `json:"owned_edges"`
	DiagonalEdges  int `json:"diagonal_edges"`
	// Methods counts tier-2 method selections by name.
	Methods map[string]int `json:"methods,omitempty"`

	// CheckpointBytes is the in-memory cost of the tier-2 cursor checkpoint
	// indexes (seek accelerators). It is reported separately and NOT added
	// to T2Total: checkpoints are derived access structures, rebuilt on
	// Load, never serialized, and not part of the paper's compressed-size
	// metric. Recomputed by RestoreIndexes for deserialized WETs.
	CheckpointBytes uint64 `json:"checkpoint_bytes"`

	// Degradation records what FreezeOptions.MemBudget traded away (nil
	// when no budget was set or nothing degraded). In-memory only: it
	// describes how this freeze ran, not the frozen bytes, so wetio does
	// not serialize it.
	Degradation *DegradationReport `json:"degradation,omitempty"`
}

// OrigTotal is the uncompressed WET size in bytes.
func (r *SizeReport) OrigTotal() uint64 { return r.OrigTS + r.OrigVals + r.OrigEdges }

// T1Total is the size after tier-1 (customized) compression.
func (r *SizeReport) T1Total() uint64 { return r.T1TS + r.T1Vals + r.T1Edges }

// T2Total is the fully compressed size.
func (r *SizeReport) T2Total() uint64 { return r.T2TS + r.T2Vals + r.T2Edges }

// Ratio returns a/b as a float (0 when b is 0).
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// FreezeOptions tunes Freeze.
type FreezeOptions struct {
	// DropTier1 releases the tier-1 slices after building the tier-2
	// streams, halving memory; tier-1 queries become unavailable.
	DropTier1 bool
	// NoShare disables non-local label sharing (ablation).
	NoShare bool
	// NoInfer disables local label inference (ablation).
	NoInfer bool
	// AggressiveEdges enables the [25]-style diagonal-edge reduction: edges
	// whose label pairs always have equal ordinals (but that fire on only
	// some executions, so full inference does not apply) store a single
	// ordinal stream instead of a pair. Off by default to keep the paper's
	// tier-1 exactly; the ablation bench quantifies the extra gain.
	AggressiveEdges bool
	// NoGrouping disables the tier-1 value grouping for size accounting
	// (ablation): tier-1 value labels are charged at the raw per-def-
	// execution cost, and tier-2 sizes each statement's full value
	// sequence (materialized from the groups) instead of UVals + Pattern.
	// The grouped streams are still built, once each, for queries.
	NoGrouping bool
	// SkipFullSizing, with NoGrouping, skips the sizing-only pass over the
	// materialized full value sequences (T2Vals and the value Methods
	// entries are then omitted from the report). Use it when the ablation
	// caller only needs a queryable ungrouped WET, not its size.
	SkipFullSizing bool
	// Workers bounds the tier-2 compression worker pool: 0 means
	// GOMAXPROCS, 1 forces the serial path. Every stream is an independent
	// compression job and the report is reduced in job order after the
	// pool drains, so the frozen WET — stream bytes, Methods census, and
	// every SizeReport counter — is byte-identical at any worker count.
	Workers int
	// CheckpointK sets the cursor checkpoint spacing of the tier-2 streams:
	// a cursor Seek costs O(CheckpointK) steps instead of O(distance).
	// 0 means automatic (stream.DefaultCheckpointK, widened so checkpoint
	// state stays under 25% of a stream's payload); negative disables
	// interior checkpoints (seeks fall back to stepping from an endpoint).
	// Checkpoints never change stream bytes or SizeBits — only the
	// CheckpointBytes line of the report and seek latency.
	CheckpointK int
	// EpochTS selects the epoch-segmented streaming pipeline (segment.go):
	// the dynamic profile is sealed and tier-2 compressed in epochs of
	// EpochTS timestamps while the interpreter runs, bounding peak memory
	// by the epoch size instead of the trace length. 0 (the default) keeps
	// the single-epoch behavior — build fully, then Freeze — whose output
	// is byte-identical to the pre-streaming pipeline. Only consulted by
	// BuildStreaming/NewStreamingBuilder; Freeze itself ignores it.
	EpochTS uint32
	// Ctx cancels the freeze (and, through BuildStreaming, the whole
	// build) cooperatively: worker pools stop claiming jobs, the
	// interpreter's step loop aborts, and the context cause is returned.
	// Nil means never cancelled.
	Ctx context.Context
	// MemBudget is a soft ceiling, in bytes, on the freeze's working set.
	// When the planned configuration would exceed it the pipeline degrades
	// instead of failing — parallel workers fall back to serial, a
	// streaming build's epoch shrinks toward minEpochTS — and the rungs
	// taken are reported in SizeReport.Degradation. 0 means unlimited.
	MemBudget uint64
	// ByteBudget is a hard ceiling, in bytes, on the serialized container
	// size. A budget at or above the lossless floor changes nothing (the
	// output stays byte-identical to an unbudgeted freeze); below it the
	// freeze descends an ordered lossy ladder — drop uncompressed-value
	// group streams, then dependence-edge label streams, then widen node
	// timestamps to a sampled stride — until the measured size fits,
	// recording every rung in the WET's FidelityReport (budget.go). A
	// budget even the full ladder cannot reach fails the freeze with
	// *BudgetError. 0 means unlimited.
	ByteBudget uint64
}

// Freeze applies the tier-1 edge label reductions (paper §3.3), compresses
// every remaining stream with the tier-2 selector (paper §4), and computes
// the size report. Tier-2 compression fans out over a worker pool (see
// FreezeOptions.Workers); the result does not depend on the worker count.
// Freeze is idempotent. It panics on a worker fault or cancellation —
// callers holding a context or armed failpoints should use FreezeErr.
func (w *WET) Freeze(opts FreezeOptions) *SizeReport {
	r, err := w.FreezeErr(opts)
	if err != nil {
		panic(fmt.Sprintf("core: Freeze: %v (use FreezeErr for a returned error)", err))
	}
	return r
}

// FreezeErr is Freeze with cancellation (FreezeOptions.Ctx), budget
// degradation (FreezeOptions.MemBudget), and worker faults surfaced as
// returned errors. On error the WET is left unfrozen and every partially
// built tier-2 stream is released — no half-frozen hybrid survives the
// failure.
func (w *WET) FreezeErr(opts FreezeOptions) (*SizeReport, error) {
	if w.frozen {
		return w.report, nil
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	var deg *DegradationReport
	opts, deg = planFreezeBudget(opts)
	r := &SizeReport{Methods: map[string]int{}, Degradation: deg}
	r.OrigTS = w.Raw.OrigNodeTSBytes()
	r.OrigVals = w.Raw.OrigNodeValBytes()
	r.OrigEdges = w.Raw.OrigEdgeBytes()

	// --- Edges: tier-1 label elimination and sharing.
	type shareKey struct {
		srcNode, dstNode int
		kind             EdgeKind
		h                uint64
	}
	reps := map[shareKey][]int{}
	for i, e := range w.Edges {
		if !opts.NoInfer && e.SrcNode == e.DstNode && e.Count == w.Nodes[e.DstNode].Execs {
			same := true
			for k := range e.DstOrd {
				if e.DstOrd[k] != e.SrcOrd[k] || e.DstOrd[k] != uint32(k) {
					same = false
					break
				}
			}
			if same {
				e.Inferable = true
				e.DstOrd, e.SrcOrd = nil, nil
				r.InferableEdges++
				continue
			}
		}
		if opts.AggressiveEdges && !e.Diagonal {
			diag := true
			for k := range e.DstOrd {
				if e.DstOrd[k] != e.SrcOrd[k] {
					diag = false
					break
				}
			}
			if diag {
				e.Diagonal = true
				e.SrcOrd = nil
				r.DiagonalEdges++
			}
		}
		if opts.NoShare {
			r.OwnedEdges++
			continue
		}
		k := shareKey{e.SrcNode, e.DstNode, e.Kind, labelHash(e)}
		found := false
		for _, ri := range reps[k] {
			if labelsEqual(w.Edges[ri], e) {
				e.SharedWith = ri
				e.DstOrd, e.SrcOrd = nil, nil
				r.SharedEdges++
				found = true
				break
			}
		}
		if !found {
			reps[k] = append(reps[k], i)
			r.OwnedEdges++
		}
	}

	// --- Tier 2: every remaining stream is an independent compression job.
	// Jobs fan out over a bounded worker pool; each job writes only its own
	// stream slots. Accounting (Methods census, T2* counters) happens in
	// the applies list, run serially in job order after the pool drains, so
	// the report never depends on completion order.
	var jobs []func(sc *stream.Scratch)
	var applies []func()
	ck := opts.CheckpointK

	// --- Sizes: timestamps.
	for _, n := range w.Nodes {
		n := n
		r.T1TS += uint64(n.Execs) * trace.TSBytes
		jobs = append(jobs, func(sc *stream.Scratch) {
			n.TSS = stream.CompressBestScratchK(n.TS, sc, ck)
		})
		applies = append(applies, func() {
			r.Methods[n.TSS.Name()]++
			r.T2TS += (n.TSS.SizeBits() + 7) / 8
		})
	}

	// --- Sizes: values (groups).
	if opts.NoGrouping {
		// Ablation: no customized value compression. Tier-1 stores every
		// def-port execution's value verbatim; tier-2 is charged for the
		// full per-statement-occurrence sequences, sized without building
		// throwaway streams. Queries still need the grouped streams, each
		// compressed exactly once.
		r.T1Vals = w.Raw.OrigNodeValBytes()
		for _, n := range w.Nodes {
			for _, g := range n.Groups {
				g := g
				jobs = append(jobs, func(sc *stream.Scratch) {
					g.PatternS = stream.CompressBestScratchK(g.Pattern, sc, ck)
				})
				g.UValS = make([]stream.Stream, len(g.UVals))
				for mi := range g.UVals {
					mi := mi
					jobs = append(jobs, func(sc *stream.Scratch) {
						g.UValS[mi] = stream.CompressBestScratchK(g.UVals[mi], sc, ck)
					})
					if opts.SkipFullSizing {
						continue
					}
					res := &struct {
						bits uint64
						name string
					}{}
					jobs = append(jobs, func(sc *stream.Scratch) {
						full := make([]uint32, len(g.Pattern))
						for k, idx := range g.Pattern {
							full[k] = g.UVals[mi][idx]
						}
						res.bits, res.name = stream.SizeBest(full, sc)
					})
					applies = append(applies, func() {
						r.Methods[res.name]++
						r.T2Vals += (res.bits + 7) / 8
					})
				}
			}
		}
	}
	for _, n := range w.Nodes {
		if opts.NoGrouping {
			break
		}
		for _, g := range n.Groups {
			g := g
			if len(g.ValMembers) == 0 && len(g.Pattern) == 0 {
				continue
			}
			uniq := uint64(g.UniqueKeys())
			var patBits uint64
			if uniq > 1 {
				patBits = uint64(len(g.Pattern)) * uint64(bitsFor(uniq-1))
			}
			var uvalBytes uint64
			for _, uv := range g.UVals {
				uvalBytes += uint64(len(uv)) * trace.ValBytes
			}
			if len(g.ValMembers) > 0 {
				r.T1Vals += uvalBytes + (patBits+7)/8
			}
			// Tier 2: compress the pattern and each unique-value array.
			jobs = append(jobs, func(sc *stream.Scratch) {
				g.PatternS = stream.CompressBestScratchK(g.Pattern, sc, ck)
			})
			g.UValS = make([]stream.Stream, len(g.UVals))
			for i := range g.UVals {
				i := i
				jobs = append(jobs, func(sc *stream.Scratch) {
					g.UValS[i] = stream.CompressBestScratchK(g.UVals[i], sc, ck)
				})
			}
			applies = append(applies, func() {
				var t2 uint64
				for i := range g.UValS {
					r.Methods[g.UValS[i].Name()]++
					t2 += g.UValS[i].SizeBits()
				}
				if len(g.ValMembers) > 0 {
					r.Methods[g.PatternS.Name()]++
					t2 += g.PatternS.SizeBits()
					r.T2Vals += (t2 + 7) / 8
				}
			})
		}
	}

	// --- Sizes: edges.
	for _, e := range w.Edges {
		e := e
		if e.Inferable || e.SharedWith >= 0 {
			continue
		}
		labelBytes := uint64(e.Count) * trace.PairBytes
		if e.Diagonal {
			labelBytes = uint64(e.Count) * trace.TSBytes // one ordinal per pair
		}
		r.T1Edges += labelBytes
		if e.Kind == DD {
			r.T1EdgesDD += labelBytes
		} else {
			r.T1EdgesCD += labelBytes
		}
		jobs = append(jobs, func(sc *stream.Scratch) {
			e.DstS = stream.CompressBestScratchK(e.DstOrd, sc, ck)
			if !e.Diagonal {
				e.SrcS = stream.CompressBestScratchK(e.SrcOrd, sc, ck)
			}
		})
		applies = append(applies, func() {
			r.Methods[e.DstS.Name()]++
			if e.Diagonal {
				r.T2Edges += (e.DstS.SizeBits() + 7) / 8
			} else {
				r.Methods[e.SrcS.Name()]++
				r.T2Edges += (e.DstS.SizeBits() + e.SrcS.SizeBits() + 15) / 8
			}
		})
	}

	// --- Concurrency streams (outside the paper's size tables; conc.go).
	if w.Conc != nil {
		concFreezeJobs(w.Conc, ck, &jobs)
	}

	if err := runJobsCtx(ctx, jobs, opts.Workers); err != nil {
		w.releasePartialTier2()
		return nil, err
	}
	for _, apply := range applies {
		apply()
	}
	r.CheckpointBytes = w.checkpointBytes()

	// Byte budget: the container measure needs a frozen WET, so freeze
	// first, then descend the degradation ladder; on failure restore the
	// unfrozen contract (budget.go).
	w.frozen = true
	w.report = r
	if err := w.applyByteBudget(opts); err != nil {
		w.frozen, w.report = false, nil
		w.Fidelity, w.TSStride = nil, 0
		w.releasePartialTier2()
		for _, n := range w.Nodes {
			for _, g := range n.Groups {
				g.Dropped = false
			}
		}
		for _, e := range w.Edges {
			e.Dropped = false
		}
		return nil, err
	}
	r.CheckpointBytes = w.checkpointBytes()

	if opts.DropTier1 {
		for _, n := range w.Nodes {
			n.TS = nil
			for _, g := range n.Groups {
				g.Pattern = nil
				g.UVals = nil
			}
		}
		for _, e := range w.Edges {
			e.DstOrd, e.SrcOrd = nil, nil
		}
		if w.Conc != nil {
			w.Conc.dropTier1()
		}
	}
	return r, nil
}

// releasePartialTier2 drops whatever tier-2 streams a failed freeze had
// already built, returning the WET to its pre-Freeze (tier-1 only) state
// so the failure neither leaks the partial streams nor leaves a
// half-frozen hybrid behind.
func (w *WET) releasePartialTier2() {
	for _, n := range w.Nodes {
		n.TSS = nil
		for _, g := range n.Groups {
			g.PatternS = nil
			g.UValS = nil
		}
	}
	for _, e := range w.Edges {
		e.DstS, e.SrcS = nil, nil
	}
	if w.Conc != nil {
		w.Conc.releaseTier2()
	}
}

// Report returns the size report (nil before Freeze).
func (w *WET) Report() *SizeReport { return w.report }

// checkpointBytes sums the cursor checkpoint index sizes over every tier-2
// stream. Checkpoints are derived (rebuilt on Load, never serialized), so
// this is recomputed rather than persisted.
func (w *WET) checkpointBytes() uint64 {
	var bits uint64
	add := func(s stream.Stream) {
		if s != nil {
			bits += s.CheckpointBits()
		}
	}
	addSegs := func(segs []*LabelSeg) {
		for _, sg := range segs {
			add(sg.S)
		}
	}
	for _, n := range w.Nodes {
		add(n.TSS)
		addSegs(n.TSSegs)
		for _, g := range n.Groups {
			add(g.PatternS)
			addSegs(g.PatSegs)
			for _, s := range g.UValS {
				add(s)
			}
			for _, segs := range g.UValSegs {
				addSegs(segs)
			}
		}
	}
	for _, e := range w.Edges {
		add(e.DstS)
		add(e.SrcS)
		for _, sg := range e.Segs {
			add(sg.DstS)
			add(sg.SrcS)
		}
	}
	if w.Conc != nil {
		bits += w.Conc.checkpointBits()
	}
	return (bits + 7) / 8
}

// PanicError is a panic recovered from a worker-pool job, surfaced as a
// typed error: the pool joins its goroutines and returns this instead of
// crashing the process. Value is the original panic value; when it is
// itself an error, Unwrap exposes it to errors.Is/As.
type PanicError struct {
	Op    string // which pool: "freeze", "seal", "materialize", "batch"
	Value any
}

func (e *PanicError) Error() string { return fmt.Sprintf("core: %s worker panic: %v", e.Op, e.Value) }

func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// recoverJob converts a job panic into a typed error slot assignment. A
// *stream.DecodeError travels as itself (it is a deferred Load failure
// that had to cross the no-error-return cursor API, not a bug), anything
// else as a *PanicError.
func recoverJob(op string, slot *error) {
	switch p := recover().(type) {
	case nil:
	case *stream.DecodeError:
		*slot = p
	default:
		*slot = &PanicError{Op: op, Value: p}
	}
}

// runJobsCtx drains the tier-2 job list over a bounded worker pool. Each
// worker owns one stream.Scratch, so the selection phase's predictor
// tables are borrowed from the size-keyed pools once per worker rather
// than once per candidate. workers <= 0 means GOMAXPROCS.
//
// Cancellation is checked between jobs: a cancelled context stops claims
// promptly, the pool joins every worker, and context.Cause is returned.
// A job panic (including an armed core.freeze.job failpoint) is recovered
// to a typed error — first failing job in claim order wins — never a
// crashed process or a leaked goroutine.
func runJobsCtx(ctx context.Context, jobs []func(sc *stream.Scratch), workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	errs := make([]error, len(jobs))
	run := func(j int, sc *stream.Scratch) {
		defer recoverJob("freeze", &errs[j])
		if err := fpFreezeJob.Hit(); err != nil {
			errs[j] = err
			return
		}
		jobs[j](sc)
	}
	done := ctx.Done()
	if workers <= 1 {
		sc := stream.NewScratch()
		defer sc.Release()
		for j := range jobs {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			run(j, sc)
			if errs[j] != nil {
				return errs[j]
			}
		}
		return nil
	}
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		// wetlint:bounded — one worker per pool slot, capped by the workers arg.
		go func() {
			defer wg.Done()
			sc := stream.NewScratch()
			defer sc.Release()
			for {
				if failed.Load() {
					return
				}
				select {
				case <-done:
					return
				default:
				}
				j := int(next.Add(1)) - 1
				if j >= len(jobs) {
					return
				}
				run(j, sc)
				if errs[j] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		return context.Cause(ctx)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// bitsFor returns the number of bits needed to represent v.
func bitsFor(v uint64) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	if n == 0 {
		n = 1
	}
	return n
}

func labelHash(e *Edge) uint64 {
	if e.Diagonal {
		return labelHashRaw(e.DstOrd, e.DstOrd)
	}
	return labelHashRaw(e.DstOrd, e.SrcOrd)
}

// labelHashRaw hashes a (dst, src) label pair sequence given as raw slices
// (the per-epoch sealer shares it with the whole-run path).
func labelHashRaw(dst, src []uint32) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := range dst {
		put32(buf[:4], dst[i])
		put32(buf[4:], src[i])
		h.Write(buf[:])
	}
	return h.Sum64()
}

func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func labelsEqual(a, b *Edge) bool {
	if len(a.DstOrd) != len(b.DstOrd) || a.Diagonal != b.Diagonal {
		return false
	}
	for i := range a.DstOrd {
		if a.DstOrd[i] != b.DstOrd[i] {
			return false
		}
		if !a.Diagonal && a.SrcOrd[i] != b.SrcOrd[i] {
			return false
		}
	}
	return true
}

// String renders the report as a small table.
func (r *SizeReport) String() string {
	line := func(name string, o, t1, t2 uint64) string {
		return fmt.Sprintf("%-8s orig=%d B  tier1=%d B (%.1fx)  tier2=%d B (%.1fx)\n",
			name, o, t1, Ratio(o, t1), t2, Ratio(o, t2))
	}
	s := line("ts", r.OrigTS, r.T1TS, r.T2TS)
	s += line("vals", r.OrigVals, r.T1Vals, r.T2Vals)
	s += line("edges", r.OrigEdges, r.T1Edges, r.T2Edges)
	s += line("total", r.OrigTotal(), r.T1Total(), r.T2Total())
	s += fmt.Sprintf("edges: %d owned, %d inferable, %d shared (tier-1 labels: %d B data, %d B control)\n",
		r.OwnedEdges, r.InferableEdges, r.SharedEdges, r.T1EdgesDD, r.T1EdgesCD)
	s += fmt.Sprintf("cursor checkpoints: %d B (in-memory seek index, excluded from tier-2 size)\n", r.CheckpointBytes)
	return s
}
