package core

import (
	"fmt"
	"hash/fnv"

	"wet/internal/stream"
	"wet/internal/trace"
)

// SizeReport gives the storage cost of each WET component (bytes) at each
// compression level, in the units of the paper's Tables 1–3: 4 bytes per
// timestamp or value, 8 bytes per dependence label pair at tiers 0/1, and
// measured bits at tier 2.
type SizeReport struct {
	OrigTS, OrigVals, OrigEdges uint64
	T1TS, T1Vals, T1Edges       uint64
	T2TS, T2Vals, T2Edges       uint64

	// T1EdgesDD/T1EdgesCD split the tier-1 edge label bytes by dependence
	// kind (the paper lumps them; the split shows CD labels are the bulk
	// before inference and nearly free after).
	T1EdgesDD, T1EdgesCD uint64

	// InferableEdges / SharedEdges count tier-1 label eliminations;
	// DiagonalEdges counts the AggressiveEdges reduction.
	InferableEdges, SharedEdges, OwnedEdges, DiagonalEdges int
	// Methods counts tier-2 method selections by name.
	Methods map[string]int
}

// OrigTotal is the uncompressed WET size in bytes.
func (r *SizeReport) OrigTotal() uint64 { return r.OrigTS + r.OrigVals + r.OrigEdges }

// T1Total is the size after tier-1 (customized) compression.
func (r *SizeReport) T1Total() uint64 { return r.T1TS + r.T1Vals + r.T1Edges }

// T2Total is the fully compressed size.
func (r *SizeReport) T2Total() uint64 { return r.T2TS + r.T2Vals + r.T2Edges }

// Ratio returns a/b as a float (0 when b is 0).
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// FreezeOptions tunes Freeze.
type FreezeOptions struct {
	// DropTier1 releases the tier-1 slices after building the tier-2
	// streams, halving memory; tier-1 queries become unavailable.
	DropTier1 bool
	// NoShare disables non-local label sharing (ablation).
	NoShare bool
	// NoInfer disables local label inference (ablation).
	NoInfer bool
	// AggressiveEdges enables the [25]-style diagonal-edge reduction: edges
	// whose label pairs always have equal ordinals (but that fire on only
	// some executions, so full inference does not apply) store a single
	// ordinal stream instead of a pair. Off by default to keep the paper's
	// tier-1 exactly; the ablation bench quantifies the extra gain.
	AggressiveEdges bool
	// NoGrouping disables the tier-1 value grouping for size accounting
	// (ablation): tier-1 value labels are charged at the raw per-def-
	// execution cost, and tier-2 compresses each statement's full value
	// sequence (materialized from the groups) instead of UVals + Pattern.
	NoGrouping bool
}

// Freeze applies the tier-1 edge label reductions (paper §3.3), compresses
// every remaining stream with the tier-2 selector (paper §4), and computes
// the size report. It is idempotent.
func (w *WET) Freeze(opts FreezeOptions) *SizeReport {
	if w.frozen {
		return w.report
	}
	r := &SizeReport{Methods: map[string]int{}}
	r.OrigTS = w.Raw.OrigNodeTSBytes()
	r.OrigVals = w.Raw.OrigNodeValBytes()
	r.OrigEdges = w.Raw.OrigEdgeBytes()

	// --- Edges: tier-1 label elimination and sharing.
	type shareKey struct {
		srcNode, dstNode int
		kind             EdgeKind
		h                uint64
	}
	reps := map[shareKey][]int{}
	for i, e := range w.Edges {
		if !opts.NoInfer && e.SrcNode == e.DstNode && e.Count == w.Nodes[e.DstNode].Execs {
			same := true
			for k := range e.DstOrd {
				if e.DstOrd[k] != e.SrcOrd[k] || e.DstOrd[k] != uint32(k) {
					same = false
					break
				}
			}
			if same {
				e.Inferable = true
				e.DstOrd, e.SrcOrd = nil, nil
				r.InferableEdges++
				continue
			}
		}
		if opts.AggressiveEdges && !e.Diagonal {
			diag := true
			for k := range e.DstOrd {
				if e.DstOrd[k] != e.SrcOrd[k] {
					diag = false
					break
				}
			}
			if diag {
				e.Diagonal = true
				e.SrcOrd = nil
				r.DiagonalEdges++
			}
		}
		if opts.NoShare {
			r.OwnedEdges++
			continue
		}
		k := shareKey{e.SrcNode, e.DstNode, e.Kind, labelHash(e)}
		found := false
		for _, ri := range reps[k] {
			if labelsEqual(w.Edges[ri], e) {
				e.SharedWith = ri
				e.DstOrd, e.SrcOrd = nil, nil
				r.SharedEdges++
				found = true
				break
			}
		}
		if !found {
			reps[k] = append(reps[k], i)
			r.OwnedEdges++
		}
	}

	// --- Sizes: timestamps.
	for _, n := range w.Nodes {
		r.T1TS += uint64(n.Execs) * trace.TSBytes
		n.TSS = stream.CompressBest(n.TS)
		r.Methods[n.TSS.Name()]++
		r.T2TS += (n.TSS.SizeBits() + 7) / 8
	}

	// --- Sizes: values (groups).
	if opts.NoGrouping {
		// Ablation: no customized value compression. Tier-1 stores every
		// def-port execution's value verbatim; tier-2 compresses the full
		// per-statement-occurrence sequences.
		r.T1Vals = w.Raw.OrigNodeValBytes()
		for _, n := range w.Nodes {
			for _, g := range n.Groups {
				g.PatternS = stream.CompressBest(g.Pattern)
				g.UValS = make([]stream.Stream, len(g.UVals))
				for mi := range g.UVals {
					full := make([]uint32, len(g.Pattern))
					for k, idx := range g.Pattern {
						full[k] = g.UVals[mi][idx]
					}
					s := stream.CompressBest(full)
					r.Methods[s.Name()]++
					r.T2Vals += (s.SizeBits() + 7) / 8
					// Queries still need the grouped streams.
					g.UValS[mi] = stream.CompressBest(g.UVals[mi])
				}
			}
		}
	}
	for _, n := range w.Nodes {
		if opts.NoGrouping {
			break
		}
		for _, g := range n.Groups {
			if len(g.ValMembers) == 0 && len(g.Pattern) == 0 {
				continue
			}
			uniq := uint64(g.UniqueKeys())
			var patBits uint64
			if uniq > 1 {
				patBits = uint64(len(g.Pattern)) * uint64(bitsFor(uniq-1))
			}
			var uvalBytes uint64
			for _, uv := range g.UVals {
				uvalBytes += uint64(len(uv)) * trace.ValBytes
			}
			if len(g.ValMembers) > 0 {
				r.T1Vals += uvalBytes + (patBits+7)/8
			}
			// Tier 2: compress the pattern and each unique-value array.
			g.PatternS = stream.CompressBest(g.Pattern)
			g.UValS = make([]stream.Stream, len(g.UVals))
			var t2 uint64
			for i, uv := range g.UVals {
				g.UValS[i] = stream.CompressBest(uv)
				r.Methods[g.UValS[i].Name()]++
				t2 += g.UValS[i].SizeBits()
			}
			if len(g.ValMembers) > 0 {
				r.Methods[g.PatternS.Name()]++
				t2 += g.PatternS.SizeBits()
				r.T2Vals += (t2 + 7) / 8
			}
		}
	}

	// --- Sizes: edges.
	for _, e := range w.Edges {
		if e.Inferable || e.SharedWith >= 0 {
			continue
		}
		labelBytes := uint64(e.Count) * trace.PairBytes
		if e.Diagonal {
			labelBytes = uint64(e.Count) * trace.TSBytes // one ordinal per pair
		}
		r.T1Edges += labelBytes
		if e.Kind == DD {
			r.T1EdgesDD += labelBytes
		} else {
			r.T1EdgesCD += labelBytes
		}
		e.DstS = stream.CompressBest(e.DstOrd)
		r.Methods[e.DstS.Name()]++
		if e.Diagonal {
			r.T2Edges += (e.DstS.SizeBits() + 7) / 8
		} else {
			e.SrcS = stream.CompressBest(e.SrcOrd)
			r.Methods[e.SrcS.Name()]++
			r.T2Edges += (e.DstS.SizeBits() + e.SrcS.SizeBits() + 15) / 8
		}
	}

	if opts.DropTier1 {
		for _, n := range w.Nodes {
			n.TS = nil
			for _, g := range n.Groups {
				g.Pattern = nil
				g.UVals = nil
			}
		}
		for _, e := range w.Edges {
			e.DstOrd, e.SrcOrd = nil, nil
		}
	}
	w.frozen = true
	w.report = r
	return r
}

// Report returns the size report (nil before Freeze).
func (w *WET) Report() *SizeReport { return w.report }

// bitsFor returns the number of bits needed to represent v.
func bitsFor(v uint64) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	if n == 0 {
		n = 1
	}
	return n
}

func labelHash(e *Edge) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := range e.DstOrd {
		put32(buf[:4], e.DstOrd[i])
		if e.Diagonal {
			put32(buf[4:], e.DstOrd[i])
		} else {
			put32(buf[4:], e.SrcOrd[i])
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func labelsEqual(a, b *Edge) bool {
	if len(a.DstOrd) != len(b.DstOrd) || a.Diagonal != b.Diagonal {
		return false
	}
	for i := range a.DstOrd {
		if a.DstOrd[i] != b.DstOrd[i] {
			return false
		}
		if !a.Diagonal && a.SrcOrd[i] != b.SrcOrd[i] {
			return false
		}
	}
	return true
}

// String renders the report as a small table.
func (r *SizeReport) String() string {
	line := func(name string, o, t1, t2 uint64) string {
		return fmt.Sprintf("%-8s orig=%d B  tier1=%d B (%.1fx)  tier2=%d B (%.1fx)\n",
			name, o, t1, Ratio(o, t1), t2, Ratio(o, t2))
	}
	s := line("ts", r.OrigTS, r.T1TS, r.T2TS)
	s += line("vals", r.OrigVals, r.T1Vals, r.T2Vals)
	s += line("edges", r.OrigEdges, r.T1Edges, r.T2Edges)
	s += line("total", r.OrigTotal(), r.T1Total(), r.T2Total())
	s += fmt.Sprintf("edges: %d owned, %d inferable, %d shared (tier-1 labels: %d B data, %d B control)\n",
		r.OwnedEdges, r.InferableEdges, r.SharedEdges, r.T1EdgesDD, r.T1EdgesCD)
	return s
}
