package core

import (
	"fmt"
	"sort"
	"sync"

	"wet/internal/faultpoint"
	"wet/internal/stream"
)

// fpBudgetPlan injects faults into the byte-budget planner, rehearsing a
// failed container measurement or degradation pass.
var fpBudgetPlan = faultpoint.New("core.budget.plan")

// containerMeasure serializes a frozen WET against a counting writer and
// returns the exact container size in bytes. It is registered by the wetio
// package's init (core cannot import wetio), so a ByteBudget freeze
// requires wetio to be linked in — every real entry point (the wet facade,
// the cmds) imports it.
var containerMeasure func(w *WET) (uint64, error)

// RegisterContainerMeasure installs the container-size oracle used by
// FreezeOptions.ByteBudget. wetio calls it from init.
func RegisterContainerMeasure(fn func(w *WET) (uint64, error)) { containerMeasure = fn }

// Query capabilities a byte-budgeted freeze can trade away, as stable
// machine-readable identifiers (they appear in FidelityReport JSON and in
// *CapabilityError).
const (
	// CapValues: value queries on a dropped group (ValueTrace, Value,
	// invariance/stride profiles over its statements).
	CapValues = "values"
	// CapDependences: dependence traversals over a dropped edge (slicing,
	// chops, dependence chains that cross it).
	CapDependences = "dependence-labels"
	// CapExactTS: exact-timestamp queries (InstanceOfTS, slicing at a
	// timestamp) once node timestamps are widened to a sampled stride.
	CapExactTS = "exact-timestamps"
)

// CapabilityError reports a query that needs data a byte-budgeted freeze
// discarded. It is panicked by the core cursor factories (TSSeq,
// PatternSeq, UValSeq, EdgeLabels) and recovered into a returned error at
// the query-package entry points: a degraded trace answers what it still
// can and refuses — typed, never wrong — what it cannot.
type CapabilityError struct {
	// Capability is the Cap* identifier that was lost.
	Capability string `json:"capability"`
	Detail     string `json:"detail"`
}

func (e *CapabilityError) Error() string {
	return fmt.Sprintf("core: query needs %s, dropped by the byte-budgeted freeze (%s)", e.Capability, e.Detail)
}

// BudgetError reports a ByteBudget no degradation ladder can reach: even
// with every value group and dependence edge dropped and timestamps at the
// widest stride, the container still exceeds the budget.
type BudgetError struct {
	// Budget is the requested ceiling, Floor the lossless container size,
	// Best the smallest size the full ladder reached.
	Budget, Floor, Best uint64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("core: byte budget %d B unreachable: lossless floor %d B, full degradation ladder still %d B", e.Budget, e.Floor, e.Best)
}

// DroppedGroup is one value group a budgeted freeze dropped.
type DroppedGroup struct {
	Node  int `json:"node"`
	Group int `json:"group"`
	// SavedBytes is the exact container bytes the drop shed.
	SavedBytes uint64 `json:"saved_bytes"`
}

// DroppedEdge is one dependence edge whose labels a budgeted freeze
// dropped (directly, or by cascade when its shared representative was).
type DroppedEdge struct {
	Edge       int    `json:"edge"`
	SavedBytes uint64 `json:"saved_bytes"`
}

// FidelityReport is the machine-readable account of a byte-budgeted
// freeze: what the budget was, where the lossless floor sat, what was
// kept, degraded, and dropped, and which query capabilities that cost.
// A budget at or above the floor yields a report with nothing degraded —
// and a container byte-identical to an unbudgeted freeze (the report is
// only serialized when Degraded).
type FidelityReport struct {
	// BudgetBytes is the requested ceiling, FloorBytes the lossless
	// container size, AchievedBytes the final container size.
	BudgetBytes   uint64 `json:"budget_bytes"`
	FloorBytes    uint64 `json:"floor_bytes"`
	AchievedBytes uint64 `json:"achieved_bytes"`

	// TSStride > 0 means node timestamps were widened to multiples of it.
	TSStride uint32 `json:"ts_stride,omitempty"`

	// GroupsKept / EdgesKept count the streams still answering exactly
	// (inferable edges, whose labels are implied, count as kept).
	GroupsKept int `json:"groups_kept"`
	EdgesKept  int `json:"edges_kept"`

	DroppedGroups []DroppedGroup `json:"dropped_groups,omitempty"`
	DroppedEdges  []DroppedEdge  `json:"dropped_edges,omitempty"`

	// LostCapabilities lists the Cap* identifiers no longer answerable.
	LostCapabilities []string `json:"lost_capabilities,omitempty"`

	idxOnce   sync.Once
	groupIdx  map[[2]int]bool
	edgeIdx   map[int]bool
}

// Degraded reports whether the freeze had to shed anything: false means
// the container is byte-identical to an unbudgeted freeze.
func (f *FidelityReport) Degraded() bool {
	return f != nil && (f.TSStride > 0 || len(f.DroppedGroups) > 0 || len(f.DroppedEdges) > 0)
}

func (f *FidelityReport) buildIndex() {
	f.idxOnce.Do(func() {
		f.groupIdx = make(map[[2]int]bool, len(f.DroppedGroups))
		for _, d := range f.DroppedGroups {
			f.groupIdx[[2]int{d.Node, d.Group}] = true
		}
		f.edgeIdx = make(map[int]bool, len(f.DroppedEdges))
		for _, d := range f.DroppedEdges {
			f.edgeIdx[d.Edge] = true
		}
	})
}

// GroupDropped reports whether node n's group g was dropped. Safe for
// concurrent use (the wetio loaders consult it from parallel section
// parsers).
func (f *FidelityReport) GroupDropped(n, g int) bool {
	if f == nil {
		return false
	}
	f.buildIndex()
	return f.groupIdx[[2]int{n, g}]
}

// EdgeDropped reports whether edge e was dropped.
func (f *FidelityReport) EdgeDropped(e int) bool {
	if f == nil {
		return false
	}
	f.buildIndex()
	return f.edgeIdx[e]
}

// Finish derives the summary fields (kept counts, lost capabilities) from
// the drop lists; the optimizer and the wetio loader both call it once the
// lists are final.
func (f *FidelityReport) Finish(totalGroups, totalEdges int) {
	f.GroupsKept = totalGroups - len(f.DroppedGroups)
	f.EdgesKept = totalEdges - len(f.DroppedEdges)
	f.LostCapabilities = nil
	if len(f.DroppedGroups) > 0 {
		f.LostCapabilities = append(f.LostCapabilities, CapValues)
	}
	if len(f.DroppedEdges) > 0 {
		f.LostCapabilities = append(f.LostCapabilities, CapDependences)
	}
	if f.TSStride > 0 {
		f.LostCapabilities = append(f.LostCapabilities, CapExactTS)
	}
}

func (f *FidelityReport) String() string {
	if f == nil {
		return "no byte budget"
	}
	s := fmt.Sprintf("byte budget %d B: lossless floor %d B, achieved %d B", f.BudgetBytes, f.FloorBytes, f.AchievedBytes)
	if !f.Degraded() {
		return s + " (lossless: nothing degraded)"
	}
	s += fmt.Sprintf("\n  kept: %d value groups, %d edges", f.GroupsKept, f.EdgesKept)
	if len(f.DroppedGroups) > 0 {
		s += fmt.Sprintf("\n  dropped: %d value groups", len(f.DroppedGroups))
	}
	if len(f.DroppedEdges) > 0 {
		s += fmt.Sprintf("\n  dropped: %d dependence edges", len(f.DroppedEdges))
	}
	if f.TSStride > 0 {
		s += fmt.Sprintf("\n  degraded: timestamps widened to stride %d", f.TSStride)
	}
	for _, c := range f.LostCapabilities {
		s += fmt.Sprintf("\n  lost: %s", c)
	}
	return s
}

// Serialized cost of the fidelity bookkeeping itself, which the projection
// must charge: the one-time section cost (9-byte frame + fixed fields) and
// the per-entry record sizes (wetio's fidelity section layout).
const (
	fidSectionBytes    = 9 + 8 + 8 + 8 + 4 + 4 + 4 + 4 + 4
	fidGroupEntryBytes = 4 + 4 + 8
	fidEdgeEntryBytes  = 4 + 8
	emptyStreamBytes   = 9 // Save size of stream.Empty()
)

// maxTSStride bounds the timestamp-widening rung: past 64Ki-timestamp
// quantization the sampled sequence carries no useful order anyway.
const maxTSStride = 1 << 16

// budgetCandidate is one unit the ladder can shed: a value group, or a
// dependence edge together with its share-closure (dropping an owner
// drops every edge reading its labels).
type budgetCandidate struct {
	node, group int   // group candidates
	edges       []int // edge candidates: the full share closure
	saved       uint64
	cost        uint64 // fidelity-entry bytes the drop adds
}

// applyByteBudget lands the frozen container under opts.ByteBudget. The
// WET must already be frozen (the measure oracle serializes it). Past the
// lossless floor it descends the ordered lossy ladder — uncompressed-value
// group streams (largest first), then dependence-edge label streams
// (largest share-closure first), then timestamp widening to sampled
// strides (single-epoch containers only) — mutating the WET in place and
// recording every rung in w.Fidelity. Savings are computed exactly
// (stream.SaveSize of what each drop removes, minus the placeholder and
// report-entry bytes it adds), so one projection pass per rung suffices;
// the final size is re-measured and recorded as AchievedBytes.
//
// A nil error with opts.ByteBudget == 0 is the no-op fast path. On error
// the caller unfreezes and releases per the FreezeErr contract.
func (w *WET) applyByteBudget(opts FreezeOptions) error {
	if opts.ByteBudget == 0 {
		return nil
	}
	if err := fpBudgetPlan.Hit(); err != nil {
		return err
	}
	if containerMeasure == nil {
		return fmt.Errorf("core: FreezeOptions.ByteBudget needs a container measure; import wet/internal/wetio")
	}
	budget := opts.ByteBudget
	floor, err := containerMeasure(w)
	if err != nil {
		return fmt.Errorf("core: budget planning: measuring the lossless floor: %w", err)
	}
	totalGroups := 0
	for _, n := range w.Nodes {
		totalGroups += len(n.Groups)
	}
	fid := &FidelityReport{BudgetBytes: budget, FloorBytes: floor, AchievedBytes: floor}
	fid.Finish(totalGroups, len(w.Edges))
	w.Fidelity = fid
	if floor <= budget {
		return nil // lossless: container byte-identical to an unbudgeted freeze
	}

	// The projection tracks the exact container size as drops apply; the
	// first drop also pays for the fidelity section's fixed fields.
	projected := floor + fidSectionBytes

	// Rung 1: drop value group streams, largest exact savings first.
	projected, err = w.dropGroups(projected, budget, fid)
	if err != nil {
		return err
	}
	// Rung 2: drop dependence edge label streams.
	if projected > budget {
		projected, err = w.dropEdges(projected, budget, fid)
		if err != nil {
			return err
		}
	}
	// Rung 3: widen node timestamps to a sampled stride (single-epoch
	// containers only: v4 segments store epoch-local timestamps whose
	// re-based quantization would not round-trip).
	if projected > budget && !w.Segmented() {
		projected, err = w.widenTS(budget, fid, opts.CheckpointK)
		if err != nil {
			return err
		}
	}

	fid.Finish(totalGroups, len(w.Edges))
	achieved, err := containerMeasure(w)
	if err != nil {
		return fmt.Errorf("core: budget planning: measuring the degraded container: %w", err)
	}
	fid.AchievedBytes = achieved
	if achieved > budget {
		return &BudgetError{Budget: budget, Floor: floor, Best: achieved}
	}
	return nil
}

// groupDropSavings returns the exact container bytes dropping (n, g)
// sheds, already net of the placeholder streams left behind.
func groupDropSavings(w *WET, g *Group) (uint64, error) {
	var saved uint64
	if w.Segmented() {
		// v4: every segment's 8-byte header and stream payload vanish (the
		// zero segment count is self-describing).
		for _, sg := range g.PatSegs {
			n, err := stream.SaveSize(sg.S)
			if err != nil {
				return 0, err
			}
			saved += 8 + n
		}
		for _, segs := range g.UValSegs {
			for _, sg := range segs {
				n, err := stream.SaveSize(sg.S)
				if err != nil {
					return 0, err
				}
				saved += 8 + n
			}
		}
		return saved, nil
	}
	// v3: each stream is replaced by the 9-byte empty placeholder so the
	// payload shape is unchanged.
	if g.PatternS != nil {
		n, err := stream.SaveSize(g.PatternS)
		if err != nil {
			return 0, err
		}
		saved += n - emptyStreamBytes
	}
	for _, s := range g.UValS {
		n, err := stream.SaveSize(s)
		if err != nil {
			return 0, err
		}
		saved += n - emptyStreamBytes
	}
	return saved, nil
}

// dropGroups descends rung 1 until the projection fits or candidates run
// out, mutating dropped groups to their placeholder form.
func (w *WET) dropGroups(projected, budget uint64, fid *FidelityReport) (uint64, error) {
	var cands []budgetCandidate
	for ni, n := range w.Nodes {
		for gi, g := range n.Groups {
			saved, err := groupDropSavings(w, g)
			if err != nil {
				return 0, fmt.Errorf("core: budget planning: sizing node %d group %d: %w", ni, gi, err)
			}
			if saved <= fidGroupEntryBytes {
				continue // the report entry would cost more than the drop saves
			}
			cands = append(cands, budgetCandidate{node: ni, group: gi, saved: saved, cost: fidGroupEntryBytes})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].saved != cands[j].saved {
			return cands[i].saved > cands[j].saved
		}
		if cands[i].node != cands[j].node {
			return cands[i].node < cands[j].node
		}
		return cands[i].group < cands[j].group
	})
	for _, c := range cands {
		if projected <= budget {
			break
		}
		g := w.Nodes[c.node].Groups[c.group]
		g.Dropped = true
		if w.Segmented() {
			g.PatSegs, g.UValSegs = nil, nil
		} else {
			g.PatternS = stream.Empty()
			for i := range g.UValS {
				g.UValS[i] = stream.Empty()
			}
		}
		projected -= c.saved - c.cost
		fid.DroppedGroups = append(fid.DroppedGroups, DroppedGroup{Node: c.node, Group: c.group, SavedBytes: c.saved})
	}
	return projected, nil
}

// edgeDropSavings returns the exact container bytes dropping edge e sheds
// (e's own stored labels; shared and inferable forms store little or
// nothing).
func edgeDropSavings(e *Edge) (uint64, error) {
	var saved uint64
	if e.Segs != nil {
		// v4: each segment's 9-byte header and payload vanish.
		for _, sg := range e.Segs {
			saved += 9
			switch {
			case sg.Inferable:
				saved += 4
			case sg.SharedWith >= 0:
				saved += 8
			default:
				n, err := stream.SaveSize(sg.DstS)
				if err != nil {
					return 0, err
				}
				saved += n
				if !sg.Diagonal {
					n, err = stream.SaveSize(sg.SrcS)
					if err != nil {
						return 0, err
					}
					saved += n
				}
			}
		}
		return saved, nil
	}
	// v3: streams are stored only on owners; they shrink to placeholders.
	if e.Inferable || e.SharedWith >= 0 || e.DstS == nil {
		return 0, nil
	}
	n, err := stream.SaveSize(e.DstS)
	if err != nil {
		return 0, err
	}
	saved += n - emptyStreamBytes
	if !e.Diagonal {
		n, err = stream.SaveSize(e.SrcS)
		if err != nil {
			return 0, err
		}
		saved += n - emptyStreamBytes
	}
	return saved, nil
}

// edgeClosure returns every edge that must drop together with owner i:
// v3 sharers redirect whole label sequences, v4 segments share
// per-segment, and a cascaded edge's own segments can be shared further.
func (w *WET) edgeClosure(i int, dependents map[int][]int) []int {
	closure := []int{i}
	seen := map[int]bool{i: true}
	for qi := 0; qi < len(closure); qi++ {
		for _, d := range dependents[closure[qi]] {
			if !seen[d] {
				seen[d] = true
				closure = append(closure, d)
			}
		}
	}
	sort.Ints(closure)
	return closure
}

// dropEdges descends rung 2: owners with the largest exact savings first,
// each dragging its full share closure.
func (w *WET) dropEdges(projected, budget uint64, fid *FidelityReport) (uint64, error) {
	dependents := map[int][]int{}
	for i, e := range w.Edges {
		if e.SharedWith >= 0 {
			dependents[e.SharedWith] = append(dependents[e.SharedWith], i)
		}
		for _, sg := range e.Segs {
			if sg.SharedWith >= 0 && sg.SharedWith != i {
				dependents[sg.SharedWith] = append(dependents[sg.SharedWith], i)
			}
		}
	}
	perEdge := make([]uint64, len(w.Edges))
	for i, e := range w.Edges {
		if e.Inferable {
			continue
		}
		saved, err := edgeDropSavings(e)
		if err != nil {
			return 0, fmt.Errorf("core: budget planning: sizing edge %d: %w", i, err)
		}
		perEdge[i] = saved
	}
	var cands []budgetCandidate
	for i, e := range w.Edges {
		if e.Inferable || e.SharedWith >= 0 {
			continue // sharers only drop by cascade
		}
		closure := w.edgeClosure(i, dependents)
		var saved uint64
		for _, ci := range closure {
			saved += perEdge[ci]
		}
		cost := uint64(len(closure)) * fidEdgeEntryBytes
		if saved <= cost {
			continue
		}
		cands = append(cands, budgetCandidate{edges: closure, saved: saved, cost: cost})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].saved != cands[j].saved {
			return cands[i].saved > cands[j].saved
		}
		return cands[i].edges[0] < cands[j].edges[0]
	})
	for _, c := range cands {
		if projected <= budget {
			break
		}
		var saved, cost uint64
		for _, ci := range c.edges {
			e := w.Edges[ci]
			if e.Dropped {
				continue // an earlier closure already took it
			}
			e.Dropped = true
			if e.Segs != nil {
				e.Segs = nil
			} else if !e.Inferable && e.SharedWith < 0 && e.DstS != nil {
				e.DstS = stream.Empty()
				if !e.Diagonal {
					e.SrcS = stream.Empty()
				}
			}
			saved += perEdge[ci]
			cost += fidEdgeEntryBytes
			fid.DroppedEdges = append(fid.DroppedEdges, DroppedEdge{Edge: ci, SavedBytes: perEdge[ci]})
		}
		if saved > cost {
			projected -= saved - cost
		}
	}
	return projected, nil
}

// widenTS descends rung 3: recompress every node's timestamp stream at
// successively coarser strides until the measured container fits. The
// sequence keeps its length — only resolution is lost — so loaders and
// per-node Execs bookkeeping are untouched.
func (w *WET) widenTS(budget uint64, fid *FidelityReport, ck int) (uint64, error) {
	orig := make([][]uint32, len(w.Nodes))
	for i, n := range w.Nodes {
		if n.TS != nil {
			orig[i] = n.TS
		} else {
			orig[i] = stream.Drain(n.TSS)
		}
	}
	sc := stream.NewScratch()
	defer sc.Release()
	var size uint64
	for stride := uint32(2); stride <= maxTSStride; stride *= 2 {
		for i, n := range w.Nodes {
			sampled := stream.SampleStride(orig[i], stride)
			n.TSS = stream.CompressBestScratchK(sampled, sc, ck)
			if n.TS != nil {
				n.TS = sampled
			}
		}
		w.TSStride = stride
		fid.TSStride = stride
		var err error
		size, err = containerMeasure(w)
		if err != nil {
			return 0, fmt.Errorf("core: budget planning: measuring at ts stride %d: %w", stride, err)
		}
		if size <= budget {
			return size, nil
		}
	}
	return size, nil
}
