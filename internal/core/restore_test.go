package core

import "testing"

// TestSanitizeSalvaged checks the post-salvage repairs: control-flow lists
// clamped to the surviving node prefix and first/last pointers remapped,
// with each repair reported.
func TestSanitizeSalvaged(t *testing.T) {
	w := &WET{
		Nodes: []*Node{
			{ID: 0, CFNext: []int{1, 7, 0}, CFPrev: []int{-1, 1}},
			{ID: 1, CFNext: []int{5}, CFPrev: []int{0}},
		},
		FirstNode: 0,
		LastNode:  9, // points past the surviving prefix
	}
	adj := w.SanitizeSalvaged()
	if got := w.Nodes[0].CFNext; len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Fatalf("CFNext not clamped: %v", got)
	}
	if got := w.Nodes[0].CFPrev; len(got) != 1 || got[0] != 1 {
		t.Fatalf("CFPrev not clamped: %v", got)
	}
	if len(w.Nodes[1].CFNext) != 0 {
		t.Fatalf("dangling CFNext survived: %v", w.Nodes[1].CFNext)
	}
	if w.FirstNode != 0 || w.LastNode != 1 {
		t.Fatalf("first/last = %d/%d, want 0/1", w.FirstNode, w.LastNode)
	}
	if len(adj) != 1 {
		t.Fatalf("adjustments = %v, want exactly the last-node repair", adj)
	}
}

// TestSanitizeSalvagedNoop checks an intact WET passes through unchanged.
func TestSanitizeSalvagedNoop(t *testing.T) {
	w := &WET{
		Nodes:     []*Node{{ID: 0, CFNext: []int{1}}, {ID: 1, CFPrev: []int{0}}},
		FirstNode: 0,
		LastNode:  1,
	}
	if adj := w.SanitizeSalvaged(); len(adj) != 0 {
		t.Fatalf("intact WET adjusted: %v", adj)
	}
	if len(w.Nodes[0].CFNext) != 1 || w.Nodes[0].CFNext[0] != 1 {
		t.Fatal("intact CFNext modified")
	}
}
