package core

import (
	"fmt"
)

// Validate checks a frozen WET's internal consistency: node timestamps are
// strictly increasing and partition 1..Time exactly, group patterns index
// inside their unique-value arrays, edges reference real statement
// positions with labels of matching lengths, and adjacency lists agree with
// the edge table. On segmented WETs it additionally checks the segment
// structure (epoch ranges, per-epoch execution tiling, share and ramp
// references) and then reads the label sequences through the same federated
// cursors queries use. It reads tier-2 streams (the representation of
// record) through throwaway cursors, and is intended for use after
// deserialization or in tests; cost is O(size of the WET).
func (w *WET) Validate() error {
	if !w.frozen {
		return fmt.Errorf("core: Validate requires a frozen WET")
	}
	if w.Segmented() {
		if err := w.validateSegments(); err != nil {
			return err
		}
	}
	if w.Conc != nil {
		if err := w.validateConc(); err != nil {
			return err
		}
	}
	// A budget-degraded WET relaxes the timestamp invariants: widened
	// (stride-sampled) timestamps are non-decreasing per node, repeat
	// across nodes, and no longer partition 1..Time, so only the range is
	// checked. Dropped groups and edges carry placeholder (or no) streams
	// and are skipped entirely — their capability checks live in the
	// cursor factories.
	sampled := w.TSStride > 0
	seen := make(map[uint32]bool, w.Time)
	for _, n := range w.Nodes {
		if !w.Segmented() && (n.TSS == nil || n.TSS.Len() != n.Execs) {
			return fmt.Errorf("core: node %d ts stream has %d entries, executed %d times", n.ID, seqLenOrZero(n), n.Execs)
		}
		tsc := w.ApproxTSSeq(n, Tier2)
		if tsc.Len() != n.Execs {
			return fmt.Errorf("core: node %d ts sequence has %d entries, executed %d times", n.ID, tsc.Len(), n.Execs)
		}
		last := uint32(0)
		for i := 0; i < n.Execs; i++ {
			ts := tsc.Next()
			if sampled {
				if ts < last || ts == 0 || ts > w.Time {
					return fmt.Errorf("core: node %d sampled timestamp %d out of order or range", n.ID, ts)
				}
				last = ts
				continue
			}
			if ts <= last || ts > w.Time {
				return fmt.Errorf("core: node %d timestamp %d out of order or range", n.ID, ts)
			}
			if seen[ts] {
				return fmt.Errorf("core: timestamp %d appears twice", ts)
			}
			seen[ts] = true
			last = ts
		}
		for gi, g := range n.Groups {
			if g.Dropped {
				continue
			}
			if !w.Segmented() && g.PatternS == nil {
				return fmt.Errorf("core: node %d group %d has no pattern stream", n.ID, gi)
			}
			pc := w.PatternSeq(g, Tier2)
			if pc.Len() != n.Execs {
				return fmt.Errorf("core: node %d group %d pattern has %d entries, want %d", n.ID, gi, pc.Len(), n.Execs)
			}
			uniq := -1
			for mi := range g.ValMembers {
				l := w.UValSeq(g, mi, Tier2).Len()
				if uniq >= 0 && l != uniq {
					return fmt.Errorf("core: node %d group %d unique-value arrays disagree", n.ID, gi)
				}
				uniq = l
			}
			if uniq >= 0 {
				for i := 0; i < pc.Len(); i++ {
					if idx := pc.Next(); int(idx) >= uniq {
						return fmt.Errorf("core: node %d group %d pattern index %d out of %d", n.ID, gi, idx, uniq)
					}
				}
			}
		}
	}
	if !sampled && uint32(len(seen)) != w.Time {
		return fmt.Errorf("core: %d timestamps present, want %d", len(seen), w.Time)
	}

	for ei, e := range w.Edges {
		if e.SrcNode < 0 || e.SrcNode >= len(w.Nodes) || e.DstNode < 0 || e.DstNode >= len(w.Nodes) {
			return fmt.Errorf("core: edge %d node out of range", ei)
		}
		src, dst := w.Nodes[e.SrcNode], w.Nodes[e.DstNode]
		if e.SrcPos < 0 || e.SrcPos >= len(src.Stmts) || e.DstPos < 0 || e.DstPos >= len(dst.Stmts) {
			return fmt.Errorf("core: edge %d position out of range", ei)
		}
		switch {
		case e.Dropped:
			// Labels discarded by a byte-budgeted freeze: only the static
			// endpoints (checked above) and adjacency (below) remain.
		case e.Inferable:
			if e.SrcNode != e.DstNode {
				return fmt.Errorf("core: edge %d inferable but not local", ei)
			}
		case e.SharedWith >= 0:
			if e.SharedWith >= len(w.Edges) || w.Edges[e.SharedWith].SharedWith >= 0 || w.Edges[e.SharedWith].Inferable {
				return fmt.Errorf("core: edge %d has bad share representative %d", ei, e.SharedWith)
			}
		default:
			if !w.Segmented() {
				if e.DstS == nil || (!e.Diagonal && e.SrcS == nil) {
					return fmt.Errorf("core: edge %d lacks label streams", ei)
				}
			}
			dc, sc := w.EdgeLabels(e, Tier2)
			if dc.Len() != e.Count || sc.Len() != e.Count {
				return fmt.Errorf("core: edge %d label lengths, count %d", ei, e.Count)
			}
			lastD := int64(-1)
			for i := 0; i < e.Count; i++ {
				d := int64(dc.Next())
				s := int64(sc.Next())
				if d <= lastD {
					return fmt.Errorf("core: edge %d destination ordinals not increasing", ei)
				}
				lastD = d
				if d >= int64(dst.Execs) || s >= int64(src.Execs) {
					return fmt.Errorf("core: edge %d ordinal out of range", ei)
				}
			}
		}
		// Adjacency must reference this edge.
		foundIn := false
		for _, idx := range dst.InEdges[e.DstPos] {
			if idx == ei {
				foundIn = true
			}
		}
		foundOut := false
		for _, idx := range src.OutEdges[e.SrcPos] {
			if idx == ei {
				foundOut = true
			}
		}
		if !foundIn || !foundOut {
			return fmt.Errorf("core: edge %d missing from adjacency lists", ei)
		}
	}
	return nil
}

func seqLenOrZero(n *Node) int {
	if n.TSS == nil {
		return 0
	}
	return n.TSS.Len()
}

// validateSegments checks the segment structure of a streamed WET: every
// label segment carries a stream of the recorded length, epochs are in
// range and strictly increasing per sequence, the per-node segments tile
// the execution count, per-segment share references point to an earlier
// owning edge's materialized segment, and inferable edge segments match the
// destination node's per-epoch execution window exactly.
func (w *WET) validateSegments() error {
	if w.Epochs < 0 || (w.Time > 0 && w.Epochs != int((uint64(w.Time)+uint64(w.EpochTS)-1)/uint64(w.EpochTS))) {
		return fmt.Errorf("core: %d epochs inconsistent with time %d at epoch size %d", w.Epochs, w.Time, w.EpochTS)
	}
	checkSegs := func(what string, segs []*LabelSeg, wantTotal int) error {
		total, lastEpoch := 0, -1
		for _, sg := range segs {
			if sg.Epoch <= lastEpoch || sg.Epoch >= w.Epochs {
				return fmt.Errorf("core: %s segment epoch %d out of order or range", what, sg.Epoch)
			}
			lastEpoch = sg.Epoch
			if sg.S == nil || sg.S.Len() != sg.N || sg.N <= 0 {
				return fmt.Errorf("core: %s segment (epoch %d) stream/length mismatch", what, sg.Epoch)
			}
			total += sg.N
		}
		if wantTotal >= 0 && total != wantTotal {
			return fmt.Errorf("core: %s segments hold %d entries, want %d", what, total, wantTotal)
		}
		return nil
	}

	// nodeEpochWindow[node][epoch] = (starting ordinal, executions) —
	// derived from the timestamp segments, used to pin inferable edge
	// segment ramps.
	type window struct{ start, n int }
	windows := make([]map[int]window, len(w.Nodes))
	for _, n := range w.Nodes {
		if err := checkSegs(fmt.Sprintf("node %d ts", n.ID), n.TSSegs, n.Execs); err != nil {
			return err
		}
		wm := make(map[int]window, len(n.TSSegs))
		start := 0
		for _, sg := range n.TSSegs {
			if uint64(sg.N) > uint64(w.EpochTS) {
				return fmt.Errorf("core: node %d ts segment (epoch %d) holds %d executions, epoch has %d timestamps", n.ID, sg.Epoch, sg.N, w.EpochTS)
			}
			wm[sg.Epoch] = window{start: start, n: sg.N}
			start += sg.N
		}
		windows[n.ID] = wm
		for gi, g := range n.Groups {
			if g.Dropped {
				continue
			}
			if err := checkSegs(fmt.Sprintf("node %d group %d pattern", n.ID, gi), g.PatSegs, n.Execs); err != nil {
				return err
			}
			for mi := range g.UValSegs {
				if err := checkSegs(fmt.Sprintf("node %d group %d uvals[%d]", n.ID, gi, mi), g.UValSegs[mi], -1); err != nil {
					return err
				}
			}
		}
	}

	for ei, e := range w.Edges {
		if e.Inferable || e.Dropped {
			continue
		}
		if e.DstNode < 0 || e.DstNode >= len(w.Nodes) {
			return fmt.Errorf("core: edge %d node out of range", ei)
		}
		total, lastEpoch := 0, -1
		for si, sg := range e.Segs {
			if sg.Epoch <= lastEpoch || sg.Epoch >= w.Epochs {
				return fmt.Errorf("core: edge %d segment %d epoch %d out of order or range", ei, si, sg.Epoch)
			}
			lastEpoch = sg.Epoch
			if sg.N <= 0 {
				return fmt.Errorf("core: edge %d segment %d empty", ei, si)
			}
			total += sg.N
			wn, ok := windows[e.DstNode][sg.Epoch]
			if !ok {
				return fmt.Errorf("core: edge %d segment %d: destination node %d did not execute in epoch %d", ei, si, e.DstNode, sg.Epoch)
			}
			switch {
			case sg.Inferable:
				if sg.N != wn.n || int(sg.RampBase) != wn.start {
					return fmt.Errorf("core: edge %d segment %d: inferable ramp [%d,+%d) does not match node window [%d,+%d)", ei, si, sg.RampBase, sg.N, wn.start, wn.n)
				}
			case sg.SharedWith >= 0:
				if sg.SharedWith >= ei || sg.SharedWith < 0 {
					return fmt.Errorf("core: edge %d segment %d shares with non-earlier edge %d", ei, si, sg.SharedWith)
				}
				rep := w.Edges[sg.SharedWith]
				if sg.SharedSeg < 0 || sg.SharedSeg >= len(rep.Segs) {
					return fmt.Errorf("core: edge %d segment %d share reference out of range", ei, si)
				}
				rs := rep.Segs[sg.SharedSeg]
				if rs.Inferable || rs.SharedWith >= 0 || rs.DstS == nil || rs.Epoch != sg.Epoch || rs.N != sg.N {
					return fmt.Errorf("core: edge %d segment %d has bad share representative", ei, si)
				}
			default:
				if sg.DstS == nil || sg.DstS.Len() != sg.N || (!sg.Diagonal && (sg.SrcS == nil || sg.SrcS.Len() != sg.N)) {
					return fmt.Errorf("core: edge %d segment %d stream/length mismatch", ei, si)
				}
			}
			if sg.N > wn.n {
				return fmt.Errorf("core: edge %d segment %d holds %d labels, node executed %d times in epoch %d", ei, si, sg.N, wn.n, sg.Epoch)
			}
		}
		if total != e.Count {
			return fmt.Errorf("core: edge %d segments hold %d labels, count is %d", ei, total, e.Count)
		}
	}
	return nil
}
