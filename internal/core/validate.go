package core

import (
	"fmt"

	"wet/internal/stream"
)

// Validate checks a frozen WET's internal consistency: node timestamps are
// strictly increasing and partition 1..Time exactly, group patterns index
// inside their unique-value arrays, edges reference real statement
// positions with labels of matching lengths, and adjacency lists agree with
// the edge table. It reads tier-2 streams (the representation of record)
// through throwaway cursors, and is intended for use after deserialization
// or in tests; cost is O(size of the WET).
func (w *WET) Validate() error {
	if !w.frozen {
		return fmt.Errorf("core: Validate requires a frozen WET")
	}
	seen := make(map[uint32]bool, w.Time)
	for _, n := range w.Nodes {
		if n.TSS == nil || n.TSS.Len() != n.Execs {
			return fmt.Errorf("core: node %d ts stream has %d entries, executed %d times", n.ID, n.TSS.Len(), n.Execs)
		}
		last := uint32(0)
		tsc := n.TSS.NewCursor()
		for i := 0; i < n.Execs; i++ {
			ts := tsc.Next()
			if ts <= last || ts > w.Time {
				return fmt.Errorf("core: node %d timestamp %d out of order or range", n.ID, ts)
			}
			if seen[ts] {
				return fmt.Errorf("core: timestamp %d appears twice", ts)
			}
			seen[ts] = true
			last = ts
		}
		for gi, g := range n.Groups {
			if g.PatternS == nil {
				return fmt.Errorf("core: node %d group %d has no pattern stream", n.ID, gi)
			}
			if g.PatternS.Len() != n.Execs {
				return fmt.Errorf("core: node %d group %d pattern has %d entries, want %d", n.ID, gi, g.PatternS.Len(), n.Execs)
			}
			uniq := -1
			for mi := range g.UValS {
				if uniq >= 0 && g.UValS[mi].Len() != uniq {
					return fmt.Errorf("core: node %d group %d unique-value arrays disagree", n.ID, gi)
				}
				uniq = g.UValS[mi].Len()
			}
			if uniq >= 0 {
				pc := g.PatternS.NewCursor()
				for i := 0; i < g.PatternS.Len(); i++ {
					if idx := pc.Next(); int(idx) >= uniq {
						return fmt.Errorf("core: node %d group %d pattern index %d out of %d", n.ID, gi, idx, uniq)
					}
				}
			}
		}
	}
	if uint32(len(seen)) != w.Time {
		return fmt.Errorf("core: %d timestamps present, want %d", len(seen), w.Time)
	}

	for ei, e := range w.Edges {
		if e.SrcNode < 0 || e.SrcNode >= len(w.Nodes) || e.DstNode < 0 || e.DstNode >= len(w.Nodes) {
			return fmt.Errorf("core: edge %d node out of range", ei)
		}
		src, dst := w.Nodes[e.SrcNode], w.Nodes[e.DstNode]
		if e.SrcPos < 0 || e.SrcPos >= len(src.Stmts) || e.DstPos < 0 || e.DstPos >= len(dst.Stmts) {
			return fmt.Errorf("core: edge %d position out of range", ei)
		}
		switch {
		case e.Inferable:
			if e.SrcNode != e.DstNode {
				return fmt.Errorf("core: edge %d inferable but not local", ei)
			}
		case e.SharedWith >= 0:
			if e.SharedWith >= len(w.Edges) || w.Edges[e.SharedWith].SharedWith >= 0 || w.Edges[e.SharedWith].Inferable {
				return fmt.Errorf("core: edge %d has bad share representative %d", ei, e.SharedWith)
			}
		default:
			if e.DstS == nil || (!e.Diagonal && e.SrcS == nil) {
				return fmt.Errorf("core: edge %d lacks label streams", ei)
			}
			if e.DstS.Len() != e.Count || (!e.Diagonal && e.SrcS.Len() != e.Count) {
				return fmt.Errorf("core: edge %d label lengths, count %d", ei, e.Count)
			}
			dc := e.DstS.NewCursor()
			var sc stream.Cursor
			if !e.Diagonal {
				sc = e.SrcS.NewCursor()
			}
			lastD := int64(-1)
			for i := 0; i < e.Count; i++ {
				d := int64(dc.Next())
				s := d
				if !e.Diagonal {
					s = int64(sc.Next())
				}
				if d <= lastD {
					return fmt.Errorf("core: edge %d destination ordinals not increasing", ei)
				}
				lastD = d
				if d >= int64(dst.Execs) || s >= int64(src.Execs) {
					return fmt.Errorf("core: edge %d ordinal out of range", ei)
				}
			}
		}
		// Adjacency must reference this edge.
		foundIn := false
		for _, idx := range dst.InEdges[e.DstPos] {
			if idx == ei {
				foundIn = true
			}
		}
		foundOut := false
		for _, idx := range src.OutEdges[e.SrcPos] {
			if idx == ei {
				foundOut = true
			}
		}
		if !foundIn || !foundOut {
			return fmt.Errorf("core: edge %d missing from adjacency lists", ei)
		}
	}
	return nil
}
