package core

import (
	"fmt"
	"math"

	"wet/internal/stream"
	"wet/internal/trace"
)

// Concurrency streams (DESIGN.md §9). A concurrent run extends the WET with
// three whole-run labeled stream families:
//
//   - per-thread timestamp streams: the global path timestamps each thread
//     issued, in ascending order. Together they partition 1..Time, so the
//     owning thread of any timestamp is recoverable by cursor walks alone.
//   - the sync-event stream family: one (ts, kind, thread, obj) record per
//     spawn / join / acquire / release, in timestamp order. Acquire and join
//     events carry the timestamp of the path that STARTS at the event (the
//     happens-before edge points at everything that path does); release and
//     spawn events carry the timestamp of the path that ENDS at the event.
//   - the shared-access stream family: one (ts, thread, addr, kind, stmt)
//     record per executed OpLoadSh/OpStoreSh, in timestamp order.
//
// Unlike the node/edge labels, concurrency streams are not epoch-segmented:
// they are tiny relative to the profile (one record per sync op or annotated
// access, not per statement) and the race checker walks them monotonically,
// so whole-run streams keep the cursor logic simple without disturbing the
// streaming pipeline's memory bound in practice.
//
// Single-threaded runs never activate any of this: WET.Conc stays nil and
// the serialized bytes are identical to a build that predates the feature.

// ConcStream is one concurrency label sequence in both representations:
// tier-1 raw values (nil after DropTier1) and the tier-2 compressed stream
// (nil before Freeze).
type ConcStream struct {
	Raw []uint32
	S   stream.Stream
}

// Len returns the sequence length from whichever representation is present.
func (cs *ConcStream) Len() int {
	if cs.Raw != nil {
		return len(cs.Raw)
	}
	if cs.S != nil {
		return cs.S.Len()
	}
	return 0
}

// AccKind values (ConcStream Conc.AccKind).
const (
	// AccRead marks a shared read (OpLoadSh).
	AccRead = uint32(0)
	// AccWrite marks a shared write (OpStoreSh).
	AccWrite = uint32(1)
)

// Conc holds the concurrency streams of one run; nil on single-threaded
// WETs. The parallel Sync*/Acc* sequences are the same length and aligned
// record-wise (index i of each describes the same event).
type Conc struct {
	// ThreadTS[tid] is thread tid's ascending global-timestamp sequence.
	ThreadTS []*ConcStream

	// Sync event records, in timestamp order.
	SyncTS, SyncKind, SyncThread, SyncObj ConcStream

	// Shared-access records, in timestamp order.
	AccTS, AccThread, AccAddr, AccKind, AccStmt ConcStream
}

// NumThreads returns the number of threads observed (thread ids are dense
// from 0).
func (c *Conc) NumThreads() int { return len(c.ThreadTS) }

// SyncEvents returns the number of synchronization events recorded.
func (c *Conc) SyncEvents() int { return c.SyncTS.Len() }

// SharedAccesses returns the number of shared-memory access records.
func (c *Conc) SharedAccesses() int { return c.AccTS.Len() }

// fixed returns the non-per-thread streams in serialization order.
func (c *Conc) fixed() []*ConcStream {
	return []*ConcStream{
		&c.SyncTS, &c.SyncKind, &c.SyncThread, &c.SyncObj,
		&c.AccTS, &c.AccThread, &c.AccAddr, &c.AccKind, &c.AccStmt,
	}
}

// Streams enumerates every concurrency stream (per-thread timestamp streams
// first, then the sync and access families) for freeze, seek-counter, and
// serialization walks.
func (c *Conc) Streams() []*ConcStream {
	out := make([]*ConcStream, 0, len(c.ThreadTS)+9)
	out = append(out, c.ThreadTS...)
	return append(out, c.fixed()...)
}

// NamedConcStream pairs a concurrency stream with its display name.
type NamedConcStream struct {
	Name string
	CS   *ConcStream
}

var concFixedNames = []string{
	"sync.ts", "sync.kind", "sync.thread", "sync.obj",
	"acc.ts", "acc.thread", "acc.addr", "acc.kind", "acc.stmt",
}

// Named enumerates every concurrency stream with a display name, in the
// Streams order (wetdump and the verifier report these).
func (c *Conc) Named() []NamedConcStream {
	out := make([]NamedConcStream, 0, len(c.ThreadTS)+9)
	for tid, cs := range c.ThreadTS {
		out = append(out, NamedConcStream{Name: fmt.Sprintf("thread%d.ts", tid), CS: cs})
	}
	for i, cs := range c.fixed() {
		out = append(out, NamedConcStream{Name: concFixedNames[i], CS: cs})
	}
	return out
}

// ConcSeq returns a fresh detached cursor over one concurrency stream at the
// given tier, with the same concurrency contract as the other factories
// (fresh private state per call).
func (w *WET) ConcSeq(cs *ConcStream, tier Tier) Seq {
	if tier == Tier2 && cs.S == nil && cs.Raw == nil {
		// An empty stream of an unfrozen-but-restored WET: synthesize an
		// empty cursor rather than tripping the newSeq nil checks.
		return &sliceSeq{}
	}
	return newSeq(cs.Raw, cs.S, tier)
}

// ---------------------------------------------------------------------------
// Builder side (trace.ConcSink).

type pendSyncEvent struct {
	k   trace.SyncKind
	tid int32
	obj int64
}

type pendAccEvent struct {
	tid   int32
	addr  int64
	write bool
	stmt  int
}

// PathOwner implements trace.ConcSink: it names the thread owning the path
// whose PathDone follows. Called for every path of a run whose sink chain is
// concurrency-aware, including single-threaded runs — recording the id is
// unconditional, but no stream activates until a sync or shared-access event
// arrives.
func (b *Builder) PathOwner(tid int32) { b.concTid = tid }

// SyncEvent implements trace.ConcSink, buffering the event until the
// covering PathDone stamps it.
func (b *Builder) SyncEvent(k trace.SyncKind, tid int32, obj int64) {
	if b.err != nil {
		return
	}
	b.activateConc()
	b.pendSync = append(b.pendSync, pendSyncEvent{k: k, tid: tid, obj: obj})
}

// SharedAccess implements trace.ConcSink.
func (b *Builder) SharedAccess(tid int32, addr int64, isWrite bool, stmtID int) {
	if b.err != nil {
		return
	}
	b.activateConc()
	b.pendAcc = append(b.pendAcc, pendAccEvent{tid: tid, addr: addr, write: isWrite, stmt: stmtID})
}

// activateConc attaches the concurrency streams on the first sync or shared
// event. Every path sealed before activation belonged to thread 0 (no other
// thread can exist before the first spawn), so thread 0's timestamp stream
// is backfilled with the full ramp 1..time.
func (b *Builder) activateConc() {
	if b.w.Conc != nil {
		return
	}
	t0 := &ConcStream{}
	if b.time > 0 {
		t0.Raw = make([]uint32, b.time, b.time+16)
		for i := range t0.Raw {
			t0.Raw[i] = uint32(i) + 1
		}
	}
	b.w.Conc = &Conc{ThreadTS: []*ConcStream{t0}}
}

// concFlush stamps the buffered concurrency events with the timestamp just
// issued and appends it to the owning thread's timestamp stream. Called from
// flushPath after b.time has advanced; a no-op until activation.
func (b *Builder) concFlush() error {
	c := b.w.Conc
	if c == nil {
		return nil
	}
	tid := int(b.concTid)
	if tid < 0 {
		return fmt.Errorf("core: path owner thread id %d is negative", tid)
	}
	for tid >= len(c.ThreadTS) {
		c.ThreadTS = append(c.ThreadTS, &ConcStream{Raw: []uint32{}})
	}
	c.ThreadTS[tid].Raw = append(c.ThreadTS[tid].Raw, b.time)
	for i := range b.pendSync {
		ev := &b.pendSync[i]
		if ev.obj < 0 || ev.obj > math.MaxUint32 {
			return fmt.Errorf("core: sync %s object id %d outside uint32 range", ev.k, ev.obj)
		}
		c.SyncTS.Raw = append(c.SyncTS.Raw, b.time)
		c.SyncKind.Raw = append(c.SyncKind.Raw, uint32(ev.k))
		c.SyncThread.Raw = append(c.SyncThread.Raw, uint32(ev.tid))
		c.SyncObj.Raw = append(c.SyncObj.Raw, uint32(ev.obj))
	}
	b.pendSync = b.pendSync[:0]
	for i := range b.pendAcc {
		ev := &b.pendAcc[i]
		if ev.addr < 0 || ev.addr > math.MaxUint32 {
			return fmt.Errorf("core: shared access address %d outside uint32 range", ev.addr)
		}
		kind := AccRead
		if ev.write {
			kind = AccWrite
		}
		c.AccTS.Raw = append(c.AccTS.Raw, b.time)
		c.AccThread.Raw = append(c.AccThread.Raw, uint32(ev.tid))
		c.AccAddr.Raw = append(c.AccAddr.Raw, uint32(ev.addr))
		c.AccKind.Raw = append(c.AccKind.Raw, kind)
		c.AccStmt.Raw = append(c.AccStmt.Raw, uint32(ev.stmt))
	}
	b.pendAcc = b.pendAcc[:0]
	return nil
}

// ---------------------------------------------------------------------------
// Freeze / restore integration.

// concFreezeJobs submits one tier-2 compression job per concurrency stream
// (appended to the freeze job list; no report accounting — the concurrency
// streams are outside the paper's size tables, and the race bench reports
// their bytes separately).
func concFreezeJobs(c *Conc, ck int, jobs *[]func(sc *stream.Scratch)) {
	for _, cs := range c.Streams() {
		cs := cs
		*jobs = append(*jobs, func(sc *stream.Scratch) {
			cs.S = stream.CompressBestScratchK(cs.Raw, sc, ck)
		})
	}
}

// dropTier1 releases the raw concurrency slices (FreezeOptions.DropTier1 and
// the streaming pipeline).
func (c *Conc) dropTier1() {
	for _, cs := range c.Streams() {
		cs.Raw = nil
	}
}

// releaseTier2 drops partially built tier-2 concurrency streams after a
// failed freeze.
func (c *Conc) releaseTier2() {
	for _, cs := range c.Streams() {
		cs.S = nil
	}
}

// checkpointBits sums the seek-checkpoint storage of the tier-2 concurrency
// streams.
func (c *Conc) checkpointBits() uint64 {
	var bits uint64
	for _, cs := range c.Streams() {
		if cs.S != nil {
			bits += cs.S.CheckpointBits()
		}
	}
	return bits
}

// attach points the tier-2 concurrency streams at a seek-counter set.
func (c *Conc) attach(f func(stream.Stream)) {
	for _, cs := range c.Streams() {
		f(cs.S)
	}
}

// SizeBits sums the tier-2 compressed size of every concurrency stream (the
// denominator of the race bench's bytes-scanned ratio); 0 before Freeze.
func (c *Conc) SizeBits() uint64 {
	var bits uint64
	for _, cs := range c.Streams() {
		if cs.S != nil {
			bits += cs.S.SizeBits()
		}
	}
	return bits
}

// materializeTier1 rehydrates the raw concurrency slices from the tier-2
// streams (LoadOptions.RestoreTier1 and MaterializeTier1).
func (c *Conc) materializeTier1() {
	for _, cs := range c.Streams() {
		if cs.Raw != nil || cs.S == nil {
			continue
		}
		out := make([]uint32, cs.S.Len())
		cur := cs.S.NewCursor()
		cur.NextN(out)
		cs.Raw = out
	}
}

// validateConc checks the concurrency stream invariants of a frozen WET:
// per-thread timestamp streams are strictly increasing and together
// partition 1..Time exactly; the sync record streams are aligned, timestamp-
// ordered, and reference known kinds and threads; the access record streams
// are aligned, timestamp-ordered, reference known threads and statements,
// and carry read/write kinds only.
func (w *WET) validateConc() error {
	c := w.Conc
	nThreads := c.NumThreads()
	if nThreads == 0 {
		return fmt.Errorf("core: conc present but holds no threads")
	}
	seen := make(map[uint32]bool, w.Time)
	for tid, cs := range c.ThreadTS {
		sq := w.ConcSeq(cs, Tier2)
		last := uint32(0)
		for i := 0; i < sq.Len(); i++ {
			ts := sq.Next()
			if ts <= last || ts > w.Time {
				return fmt.Errorf("core: thread %d timestamp %d out of order or range", tid, ts)
			}
			if seen[ts] {
				return fmt.Errorf("core: timestamp %d owned by two threads", ts)
			}
			seen[ts] = true
			last = ts
		}
	}
	if uint32(len(seen)) != w.Time {
		return fmt.Errorf("core: thread timestamp streams cover %d of %d timestamps", len(seen), w.Time)
	}

	checkAligned := func(what string, n int, streams []*ConcStream) error {
		for _, cs := range streams {
			if cs.Len() != n {
				return fmt.Errorf("core: %s record streams are misaligned (%d vs %d)", what, cs.Len(), n)
			}
		}
		return nil
	}
	nSync := c.SyncTS.Len()
	if err := checkAligned("sync", nSync, []*ConcStream{&c.SyncKind, &c.SyncThread, &c.SyncObj}); err != nil {
		return err
	}
	tsq := w.ConcSeq(&c.SyncTS, Tier2)
	kq := w.ConcSeq(&c.SyncKind, Tier2)
	thq := w.ConcSeq(&c.SyncThread, Tier2)
	last := uint32(0)
	for i := 0; i < nSync; i++ {
		ts, k, th := tsq.Next(), kq.Next(), thq.Next()
		if ts < last || ts == 0 || ts > w.Time {
			return fmt.Errorf("core: sync record %d timestamp %d out of order or range", i, ts)
		}
		last = ts
		if k > uint32(trace.SyncRelease) {
			return fmt.Errorf("core: sync record %d has unknown kind %d", i, k)
		}
		if int(th) >= nThreads {
			return fmt.Errorf("core: sync record %d names thread %d of %d", i, th, nThreads)
		}
	}
	nAcc := c.AccTS.Len()
	if err := checkAligned("access", nAcc, []*ConcStream{&c.AccThread, &c.AccAddr, &c.AccKind, &c.AccStmt}); err != nil {
		return err
	}
	tsq = w.ConcSeq(&c.AccTS, Tier2)
	thq = w.ConcSeq(&c.AccThread, Tier2)
	kq = w.ConcSeq(&c.AccKind, Tier2)
	sq := w.ConcSeq(&c.AccStmt, Tier2)
	last = 0
	for i := 0; i < nAcc; i++ {
		ts, th, k, st := tsq.Next(), thq.Next(), kq.Next(), sq.Next()
		if ts < last || ts == 0 || ts > w.Time {
			return fmt.Errorf("core: access record %d timestamp %d out of order or range", i, ts)
		}
		last = ts
		if int(th) >= nThreads {
			return fmt.Errorf("core: access record %d names thread %d of %d", i, th, nThreads)
		}
		if k != AccRead && k != AccWrite {
			return fmt.Errorf("core: access record %d has unknown kind %d", i, k)
		}
		if int(st) >= len(w.Prog.Stmts) {
			return fmt.Errorf("core: access record %d names statement %d of %d", i, st, len(w.Prog.Stmts))
		}
	}
	return nil
}
