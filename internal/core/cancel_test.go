package core_test

// Cancellation and fault-injection coverage for the build/freeze pipeline:
// prompt cooperative cancellation mid-build and mid-freeze, typed worker
// faults, retryability after a failed freeze, and budget degradation.

import (
	"context"
	"errors"
	"testing"
	"time"

	"wet/internal/core"
	"wet/internal/faultpoint"
	"wet/internal/interp"
	"wet/internal/leakcheck"
	"wet/internal/workload"
)

// analyzed builds a workload's static analysis at a scale targeting
// roughly targetStmts dynamic statements.
func analyzed(t *testing.T, name string, targetStmts uint64) (*interp.Static, []int64) {
	t.Helper()
	wl, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	scale, err := workload.ScaleFor(wl, targetStmts)
	if err != nil {
		t.Fatal(err)
	}
	prog, in := wl.Build(scale)
	st, err := interp.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	return st, in
}

// unfrozen builds a raw WET ready to freeze.
func unfrozen(t *testing.T, name string) *core.WET {
	t.Helper()
	st, in := analyzed(t, name, 200_000)
	w, _, err := core.Build(st, interp.Options{Inputs: in})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestBuildStreamingCancelledPromptly cancels a streaming build mid-run
// and requires the cancellation cause back within 100ms, with every
// interpreter and pool goroutine gone.
func TestBuildStreamingCancelledPromptly(t *testing.T) {
	defer leakcheck.Check(t)()
	st, in := analyzed(t, "li", 8_000_000)
	cause := errors.New("operator abort")
	ctx, cancel := context.WithCancelCause(context.Background())
	type result struct {
		err error
		at  time.Time
	}
	done := make(chan result, 1)
	go func() {
		_, _, _, err := core.BuildStreaming(st, interp.Options{Ctx: ctx, Inputs: in},
			core.FreezeOptions{EpochTS: 1 << 14})
		done <- result{err, time.Now()}
	}()
	time.Sleep(30 * time.Millisecond)
	cancelled := time.Now()
	cancel(cause)
	res := <-done
	if !errors.Is(res.err, cause) {
		t.Fatalf("cancelled build returned %v, want the cancellation cause", res.err)
	}
	if lat := res.at.Sub(cancelled); lat > 100*time.Millisecond {
		t.Fatalf("cancelled build returned after %v, want <= 100ms", lat)
	}
}

// TestFreezeErrCancelledMidPool cancels a freeze whose workers are held on
// an injected stall: the pool must stop claiming jobs, return the cause
// within 100ms plus one stalled job, and leave the WET retryable.
func TestFreezeErrCancelledMidPool(t *testing.T) {
	defer leakcheck.Check(t)()
	w := unfrozen(t, "li")
	if err := faultpoint.Arm("core.freeze.job", faultpoint.Spec{Action: faultpoint.ActSleep, Detail: "10ms"}); err != nil {
		t.Fatal(err)
	}
	cause := errors.New("operator abort")
	ctx, cancel := context.WithCancelCause(context.Background())
	type result struct {
		err error
		at  time.Time
	}
	done := make(chan result, 1)
	go func() {
		_, err := w.FreezeErr(core.FreezeOptions{Ctx: ctx, Workers: 4})
		done <- result{err, time.Now()}
	}()
	time.Sleep(25 * time.Millisecond)
	cancelled := time.Now()
	cancel(cause)
	res := <-done
	faultpoint.DisarmAll()
	if !errors.Is(res.err, cause) {
		t.Fatalf("cancelled freeze returned %v, want the cancellation cause", res.err)
	}
	if lat := res.at.Sub(cancelled); lat > 100*time.Millisecond {
		t.Fatalf("cancelled freeze returned after %v, want <= 100ms", lat)
	}
	if w.Frozen() {
		t.Fatal("cancelled freeze left the WET frozen")
	}
	// The failed freeze released its partial state: a retry succeeds and
	// produces a complete report.
	rep, err := w.FreezeErr(core.FreezeOptions{})
	if err != nil || rep == nil {
		t.Fatalf("freeze retry after cancellation failed: %v", err)
	}
}

// TestFreezeErrInjectedFault: an injected worker error surfaces as the
// typed *faultpoint.Error, the WET stays unfrozen, and a retry succeeds.
func TestFreezeErrInjectedFault(t *testing.T) {
	w := unfrozen(t, "li")
	if err := faultpoint.Arm("core.freeze.job", faultpoint.Spec{Action: faultpoint.ActErr, After: 3}); err != nil {
		t.Fatal(err)
	}
	_, err := w.FreezeErr(core.FreezeOptions{Workers: 4})
	faultpoint.DisarmAll()
	var fe *faultpoint.Error
	if !errors.As(err, &fe) || fe.Point != "core.freeze.job" {
		t.Fatalf("injected freeze fault surfaced as %v, want *faultpoint.Error", err)
	}
	if w.Frozen() {
		t.Fatal("failed freeze left the WET frozen")
	}
	if _, err := w.FreezeErr(core.FreezeOptions{}); err != nil {
		t.Fatalf("freeze retry after injected fault failed: %v", err)
	}
}

// TestFreezeErrWorkerPanicTyped: a panicking worker surfaces as a typed
// *core.PanicError instead of crashing the process.
func TestFreezeErrWorkerPanicTyped(t *testing.T) {
	w := unfrozen(t, "li")
	if err := faultpoint.Arm("core.freeze.job", faultpoint.Spec{Action: faultpoint.ActPanic, After: 2}); err != nil {
		t.Fatal(err)
	}
	_, err := w.FreezeErr(core.FreezeOptions{Workers: 4})
	faultpoint.DisarmAll()
	if err == nil {
		t.Fatal("panicking freeze worker reported success")
	}
	var pe *core.PanicError
	var fe *faultpoint.Error
	if !errors.As(err, &pe) && !errors.As(err, &fe) {
		t.Fatalf("worker panic surfaced as %v, want *core.PanicError or *faultpoint.Error", err)
	}
	if _, err := w.FreezeErr(core.FreezeOptions{}); err != nil {
		t.Fatalf("freeze retry after worker panic failed: %v", err)
	}
}

// TestFreezePanicsWithoutErrPath pins Freeze's documented contract: the
// error-free wrapper panics on an injected fault so silent corruption is
// impossible, and FreezeErr is the escape hatch.
func TestFreezePanicsWithoutErrPath(t *testing.T) {
	w := unfrozen(t, "li")
	if err := faultpoint.Arm("core.freeze.job", faultpoint.Spec{Action: faultpoint.ActErr}); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.DisarmAll()
	defer func() {
		if recover() == nil {
			t.Fatal("Freeze did not panic on an injected worker fault")
		}
	}()
	w.Freeze(core.FreezeOptions{Workers: 2})
}

// TestSealEpochInjectedFault: a fault at epoch-seal time aborts the
// streaming build with the typed injected error — no hang, no partial WET.
func TestSealEpochInjectedFault(t *testing.T) {
	defer leakcheck.Check(t)()
	st, in := analyzed(t, "li", 200_000)
	if err := faultpoint.Arm("core.seal.epoch", faultpoint.Spec{Action: faultpoint.ActErr, After: 2}); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.DisarmAll()
	w, _, _, err := core.BuildStreaming(st, interp.Options{Inputs: in},
		core.FreezeOptions{EpochTS: 1 << 12})
	var fe *faultpoint.Error
	if !errors.As(err, &fe) || fe.Point != "core.seal.epoch" {
		t.Fatalf("injected seal fault surfaced as %v, want *faultpoint.Error", err)
	}
	if w != nil {
		t.Fatal("failed streaming build returned a partial WET")
	}
}

// TestFreezeMemBudgetDegrades: an impossible freeze budget falls back to
// the serial pool and reports the rung machine-readably; the frozen output
// is identical to an unbudgeted freeze.
func TestFreezeMemBudgetDegrades(t *testing.T) {
	w := unfrozen(t, "li")
	rep, err := w.FreezeErr(core.FreezeOptions{Workers: 4, MemBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degradation == nil {
		t.Fatal("budget of 1 byte produced no degradation report")
	}
	found := false
	for _, a := range rep.Degradation.Actions {
		if a.Point == core.DegradeSerialFreeze {
			found = true
			if a.Reason == "" || a.From == "" || a.To == "" {
				t.Fatalf("degradation action missing fields: %+v", a)
			}
		}
	}
	if !found {
		t.Fatalf("ladder skipped %s: %v", core.DegradeSerialFreeze, rep.Degradation.Actions)
	}
	base := unfrozen(t, "li")
	baseRep, err := base.FreezeErr(core.FreezeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.T2Total() != baseRep.T2Total() {
		t.Fatalf("degraded freeze produced %d tier-2 bytes, unbudgeted %d",
			rep.T2Total(), baseRep.T2Total())
	}
}

// TestStreamingMemBudgetShrinksEpoch: a streaming build under a tight
// budget shrinks its epoch toward the floor and says so in the report.
func TestStreamingMemBudgetShrinksEpoch(t *testing.T) {
	st, in := analyzed(t, "li", 200_000)
	w, rep, _, err := core.BuildStreaming(st, interp.Options{Inputs: in},
		core.FreezeOptions{EpochTS: 1 << 20, MemBudget: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degradation == nil {
		t.Fatal("tight streaming budget produced no degradation report")
	}
	found := false
	for _, a := range rep.Degradation.Actions {
		if a.Point == core.DegradeShrinkEpoch {
			found = true
		}
	}
	if !found {
		t.Fatalf("ladder skipped %s: %v", core.DegradeShrinkEpoch, rep.Degradation.Actions)
	}
	if w.EpochTS >= 1<<20 {
		t.Fatalf("epoch did not shrink: %d timestamps", w.EpochTS)
	}
}

// TestBuildCancelledBeforeStart: a context dead on entry returns its cause
// without running a single interpreter step.
func TestBuildCancelledBeforeStart(t *testing.T) {
	st, in := analyzed(t, "li", 200_000)
	cause := errors.New("operator abort")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	start := time.Now()
	_, _, _, err := core.BuildStreaming(st, interp.Options{Ctx: ctx, Inputs: in}, core.FreezeOptions{})
	if !errors.Is(err, cause) {
		t.Fatalf("pre-cancelled build returned %v, want the cause", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("pre-cancelled build ran for %v", d)
	}
}
