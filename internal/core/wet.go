// Package core implements the paper's primary contribution: the Whole
// Execution Trace (WET) — a static program representation (with Ball–Larus
// paths as nodes) labeled with the complete dynamic profile: timestamps,
// values, and data/control dependence instances — together with the two-tier
// compression strategy of §3 (customized) and §4 (generic bidirectional
// stream compression).
package core

import (
	"fmt"

	"wet/internal/interp"
	"wet/internal/ir"
	"wet/internal/stream"
	"wet/internal/trace"
)

// Tier selects which representation a query reads.
type Tier int

const (
	// Tier1 reads the customized-compressed (but not stream-compressed)
	// labels: plain slices.
	Tier1 Tier = 1
	// Tier2 reads the fully compressed labels through bidirectional streams.
	Tier2 Tier = 2
)

func (t Tier) String() string {
	if t == Tier1 {
		return "tier-1"
	}
	return "tier-2"
}

// StmtRef locates a statement occurrence inside a WET node: the Pos-th
// statement of node Node. A static statement can occur in several nodes
// (one per Ball–Larus path containing its block).
type StmtRef struct {
	Node int
	Pos  int
}

// EdgeKind distinguishes data and control dependence edges.
type EdgeKind uint8

const (
	// DD is a data dependence edge.
	DD EdgeKind = iota
	// CD is a control dependence edge.
	CD
)

func (k EdgeKind) String() string {
	if k == DD {
		return "DD"
	}
	return "CD"
}

// Edge is a dependence edge between statement occurrences, labeled with a
// sequence of <t_dst, t_src> pairs in *local* timestamps (the paper's
// space-saving choice): the ordinal of the node execution on each side.
type Edge struct {
	Kind            EdgeKind
	SrcNode, SrcPos int
	DstNode, DstPos int
	OpIdx           int // destination operand index (DD); -1 for CD

	// Tier-1 labels (nil when Inferable or shared).
	DstOrd, SrcOrd []uint32
	// Count is the number of dynamic instances of this edge.
	Count int

	// Inferable marks local edges whose labels were dropped because every
	// instance is <t,t> within one node execution and the edge fires on
	// every execution (paper §3.3): the labels are implied by the node.
	Inferable bool
	// Diagonal marks edges whose every label pair has equal ordinals but
	// which do not fire on every execution: only the destination ordinal
	// stream is stored (the paper defers such "more aggressive techniques"
	// to [25]; enabled by FreezeOptions.AggressiveEdges).
	Diagonal bool
	// SharedWith >= 0 names the edge whose identical label sequence this
	// edge reuses (paper §3.3, label sharing across edge groups).
	SharedWith int

	// Dropped marks an edge whose label streams were discarded by a
	// byte-budgeted freeze (directly, or because its shared representative
	// was). EdgeLabels on a dropped edge panics with *CapabilityError; the
	// drop is recorded in the WET's FidelityReport.
	Dropped bool

	// Tier-2 label streams (nil when Inferable or shared).
	DstS, SrcS stream.Stream

	// Segs holds the per-epoch label segments of a streamed (segmented)
	// WET; nil on single-epoch WETs and on whole-run Inferable edges.
	Segs []*EdgeSeg
}

// InputElem is one element of a group's input set: either a register value
// flowing into the node (Ext) or the result of an input-class statement
// (load / input) inside the node (Src, a node position).
type InputElem struct {
	Ext ir.Reg // valid when Src < 0
	Src int    // node position of the input statement, or -1
}

func (e InputElem) String() string {
	if e.Src >= 0 {
		return fmt.Sprintf("src@%d", e.Src)
	}
	return fmt.Sprintf("ext:r%d", e.Ext)
}

// keySource tells the builder where to pick up one input element's value at
// run time.
type keySource struct {
	pos   int // node position of the statement to read from
	ddIdx int // index into that statement's ddVals, or -1 to use its result
}

// Group is a tier-1 value-compression group (paper §3.2): statements that
// depend on the same set of inputs share one Pattern of indices into
// per-statement unique-value arrays (UVals).
type Group struct {
	Members []int       // node positions, ascending
	Inputs  []InputElem // canonical, sorted

	keyPlan []keySource

	// ValMembers are the members with a def port, in ascending position;
	// UVals[i] holds the unique values of ValMembers[i].
	ValMembers []int
	UVals      [][]uint32

	// Pattern[k] indexes UVals[*] for the node's k-th execution.
	Pattern []uint32
	keys    map[string]uint32
	// checkVals retains every unique value under Builder.CheckDeterminism:
	// the streaming pipeline seals UVals away per epoch, so the invariant
	// re-verification needs its own globally indexed copy. Nil otherwise.
	checkVals [][]uint32
	// restoredKeys carries the unique-key count for deserialized groups
	// whose keys map was not persisted.
	restoredKeys int

	// Tier-2 streams.
	PatternS stream.Stream
	UValS    []stream.Stream

	// Per-epoch segments of a streamed WET (see segment.go). Pattern
	// entries stay run-global indexes; UValSegs[i] concatenates to the
	// run-global discovery order of ValMembers[i]'s unique values.
	PatSegs  []*LabelSeg
	UValSegs [][]*LabelSeg

	// valIdx maps a node position to its ValMembers index (-1 when the
	// statement has no def port), making ValMemberIndex O(1). Built by
	// formGroups, so it exists on restored WETs too.
	valIdx []int32

	// Dropped marks a group whose value streams were discarded by a
	// byte-budgeted freeze. PatternSeq/UValSeq on a dropped group panic
	// with *CapabilityError; the drop is recorded in the WET's
	// FidelityReport.
	Dropped bool
}

// UniqueKeys returns the number of distinct input tuples observed.
func (g *Group) UniqueKeys() int {
	if g.keys == nil {
		return g.restoredKeys
	}
	return len(g.keys)
}

// Node is a WET node: one Ball–Larus path of one function, labeled with its
// execution timestamps and, through Groups, the values produced by its
// statements.
type Node struct {
	ID     int
	Fn     int
	PathID int64
	Blocks []int
	Stmts  []*ir.Stmt

	stmtPos map[int]int // static stmt ID -> position

	Execs int
	// TS holds the global timestamp of each execution (tier-1).
	TS []uint32
	// TSS is the tier-2 compressed timestamp stream.
	TSS stream.Stream
	// TSSegs holds the per-epoch timestamp segments of a streamed WET
	// (stored epoch-local; global = epoch*EpochTS + local).
	TSSegs []*LabelSeg
	// sealedExecs is the execution count already sealed into segments
	// (builder-only watermark for per-epoch edge inference).
	sealedExecs int

	Groups  []*Group
	GroupOf []int // per position

	// CFNext/CFPrev are the node-level control flow edges observed at run
	// time (which node executed at t+1 / t-1).
	CFNext, CFPrev []int

	// InEdges/OutEdges list indices into WET.Edges per position.
	InEdges, OutEdges [][]int
}

// PosOf returns the node position of static statement id, or -1.
func (n *Node) PosOf(stmtID int) int {
	if p, ok := n.stmtPos[stmtID]; ok {
		return p
	}
	return -1
}

// WET is the whole execution trace of one program run.
type WET struct {
	Prog   *ir.Program
	Static *interp.Static

	Nodes []*Node
	Edges []*Edge

	// StmtOcc maps a static statement id to its occurrences.
	StmtOcc [][]StmtRef

	// Raw holds the dynamic counts defining the original WET size.
	Raw trace.RawStats

	// Time is the number of timestamps issued (path executions); timestamps
	// run 1..Time.
	Time uint32
	// FirstNode/LastNode are the nodes holding timestamps 1 and Time.
	FirstNode, LastNode int

	// EpochTS is the epoch size (timestamps per epoch) of a streamed WET;
	// 0 means single-epoch. Epochs is the number of epochs sealed.
	EpochTS uint32
	Epochs  int

	// Conc holds the concurrency streams of a multi-threaded run (conc.go);
	// nil on single-threaded traces, whose representation and serialized
	// bytes are unchanged by the concurrency extension.
	Conc *Conc

	// TSStride > 0 means a byte-budgeted freeze widened the node timestamps
	// to multiples of TSStride: exact-timestamp queries are unavailable
	// (TSSeq panics with *CapabilityError; ApproxTSSeq reads the sampled
	// sequence explicitly).
	TSStride uint32
	// Fidelity records what a byte-budgeted freeze kept, degraded, and
	// dropped; nil when no ByteBudget was set.
	Fidelity *FidelityReport

	frozen bool
	report *SizeReport

	// seek aggregates cursor seek costs across all of this WET's streams
	// (AttachSeekCounters); nil until attached.
	seek *stream.SeekCounters
}

// Segmented reports whether the dynamic profile is stored in per-epoch
// segments (built by the streaming pipeline or loaded from a v4 file).
func (w *WET) Segmented() bool { return w.EpochTS > 0 }

// NodeOf returns the node for (fn, pathID), or nil.
func (w *WET) NodeOf(fn int, pathID int64) *Node {
	for _, n := range w.Nodes {
		if n.Fn == fn && n.PathID == pathID {
			return n
		}
	}
	return nil
}

// Frozen reports whether Freeze has run (tier-2 streams are available).
func (w *WET) Frozen() bool { return w.frozen }

// Seq is a detached bidirectional cursor over one label sequence; both
// tiers implement it (slice cursors at tier 1, stream cursors at tier 2).
//
// Concurrency contract: every factory call (TSSeq, PatternSeq, UValSeq,
// EdgeLabels) returns a FRESH cursor holding private traversal state —
// cursors over the same sequence share nothing mutable, so any number may
// traverse one frozen WET from concurrent goroutines without caller
// synchronization. A single cursor is not safe for concurrent use; confine
// each to one goroutine.
type Seq interface {
	Len() int
	Pos() int
	Next() uint32
	Prev() uint32
}

// RandomAccess is the O(1) fast path of a Seq: tier-1 label storage is
// plain arrays, so reads need not step a cursor. Tier-2 stream cursors do
// not implement it — they offer Seeker instead, whose checkpointed seeks
// cost O(K) steps rather than O(1) (that asymmetry is what the paper's
// tier-1-vs-tier-2 response time comparison measures).
type RandomAccess interface {
	At(i int) uint32
}

// Seeker is the repositioning fast path of a cursor: Seek(i) places the
// cursor so the next Next() returns element i. Tier-2 stream cursors
// implement it with checkpointed restores (cost bounded by the checkpoint
// spacing K instead of the distance from the current position); tier-1
// slice cursors implement it trivially.
type Seeker interface {
	Seek(i int)
}

// BulkSeq is the batched fast path of a Seq — stream.Cursor's NextN/PrevN
// contract lifted to the Seq level. NextN fills dst[i] with the value at
// Pos()+i and advances; PrevN fills dst in traversal order (dst[i] holds the
// value at Pos()-1-i) and retreats; both return the count read. Every
// sequence this package hands out implements it: tier-1 slice cursors copy,
// tier-2 stream cursors decode in a hoisted loop, and federated cursors
// shard the batch across segments so a long run pays one segment lookup and
// at most one cursor reposition per segment crossed instead of per element.
type BulkSeq interface {
	NextN(dst []uint32) int
	PrevN(dst []uint32) int
}

// SeqNextN reads a forward run from s into dst, batched when s implements
// BulkSeq and by per-element stepping otherwise.
func SeqNextN(s Seq, dst []uint32) int {
	if b, ok := s.(BulkSeq); ok {
		return b.NextN(dst)
	}
	n := s.Len() - s.Pos()
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = s.Next()
	}
	return n
}

// SeqPrevN reads a backward run from s into dst in traversal order, batched
// when s implements BulkSeq.
func SeqPrevN(s Seq, dst []uint32) int {
	if b, ok := s.(BulkSeq); ok {
		return b.PrevN(dst)
	}
	n := s.Pos()
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = s.Prev()
	}
	return n
}

// sliceSeq adapts a []uint32 to Seq.
type sliceSeq struct {
	v   []uint32
	pos int
}

// At implements RandomAccess without disturbing the cursor.
func (s *sliceSeq) At(i int) uint32 { return s.v[i] }

// Seek implements Seeker.
func (s *sliceSeq) Seek(i int) {
	if i < 0 || i > len(s.v) {
		panic(fmt.Sprintf("core: seek to %d outside [0,%d]", i, len(s.v)))
	}
	s.pos = i
}

func (s *sliceSeq) Len() int { return len(s.v) }
func (s *sliceSeq) Pos() int { return s.pos }

func (s *sliceSeq) Next() uint32 {
	if s.pos >= len(s.v) {
		panic("core: Seq Next past end")
	}
	x := s.v[s.pos]
	s.pos++
	return x
}

func (s *sliceSeq) Prev() uint32 {
	if s.pos == 0 {
		panic("core: Seq Prev past start")
	}
	s.pos--
	return s.v[s.pos]
}

func (s *sliceSeq) NextN(dst []uint32) int {
	n := copy(dst, s.v[s.pos:])
	s.pos += n
	return n
}

func (s *sliceSeq) PrevN(dst []uint32) int {
	n := s.pos
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = s.v[s.pos-1-i]
	}
	s.pos -= n
	return n
}

// newSeq builds one fresh detached cursor over either representation:
// tier-1 wraps the plain slice, tier-2 spawns a stream cursor carrying its
// own predictor tables. No state is shared with any previous cursor.
func newSeq(sl []uint32, st stream.Stream, tier Tier) Seq {
	if tier == Tier2 {
		if st == nil {
			panic("core: tier-2 requested before Freeze")
		}
		return st.NewCursor()
	}
	if sl == nil {
		panic("core: tier-1 labels were dropped (DropTier1)")
	}
	return &sliceSeq{v: sl}
}

// TSSeq returns a fresh cursor over the timestamp sequence of node n at the
// given tier. On a segmented WET the tier-2 cursor federates the per-epoch
// segments (re-based to global time); tier-1 reads the materialized slices
// when present (MaterializeTier1 / LoadOptions.RestoreTier1).
//
// On a budget-degraded WET whose timestamps were widened (TSStride > 0)
// TSSeq panics with *CapabilityError: the exact values are gone and
// answering from the sampled ones would silently be wrong. Callers that
// want the sampled sequence use ApproxTSSeq.
func (w *WET) TSSeq(n *Node, tier Tier) Seq {
	if w.TSStride > 0 {
		panic(&CapabilityError{Capability: CapExactTS,
			Detail: fmt.Sprintf("timestamps widened to stride %d by a byte-budgeted freeze", w.TSStride)})
	}
	return w.ApproxTSSeq(n, tier)
}

// ApproxTSSeq is TSSeq without the exact-timestamp capability check: on a
// budget-degraded WET it reads the stride-sampled sequence (each value
// quantized to a multiple of WET.TSStride), and on an undegraded WET it is
// identical to TSSeq. Callers own the approximation.
func (w *WET) ApproxTSSeq(n *Node, tier Tier) Seq {
	if tier == Tier2 && n.TSSegs != nil {
		return w.tsFed(n)
	}
	return newSeq(n.TS, n.TSS, tier)
}

// EdgeLabels returns fresh cursors over the (dst, src) local-timestamp
// label sequences of e. For shared edges the representative's labels are
// read; Inferable edges have implicit labels and return (nil, nil). For
// Diagonal edges dst and src are two independent cursors over the single
// stored ordinal stream (source ordinals equal destination ordinals). On a
// segmented WET the tier-2 cursors federate the per-epoch segments,
// synthesizing inferable segments and resolving per-segment sharing.
func (w *WET) EdgeLabels(e *Edge, tier Tier) (dst, src Seq) {
	if e.Inferable {
		return nil, nil
	}
	if e.Dropped {
		panic(&CapabilityError{Capability: CapDependences,
			Detail: fmt.Sprintf("labels of edge %s dropped by a byte-budgeted freeze", e.Kind)})
	}
	if tier == Tier2 && e.Segs != nil {
		return w.edgeFed(e)
	}
	if e.SharedWith >= 0 {
		e = w.Edges[e.SharedWith]
		if e.Dropped {
			panic(&CapabilityError{Capability: CapDependences,
				Detail: "shared label representative dropped by a byte-budgeted freeze"})
		}
	}
	if e.Diagonal {
		return newSeq(e.DstOrd, e.DstS, tier), newSeq(e.DstOrd, e.DstS, tier)
	}
	return newSeq(e.DstOrd, e.DstS, tier), newSeq(e.SrcOrd, e.SrcS, tier)
}

// PatternSeq returns a fresh cursor over group g's pattern sequence at the
// given tier. On a dropped group (byte-budgeted freeze) it panics with
// *CapabilityError.
func (w *WET) PatternSeq(g *Group, tier Tier) Seq {
	if g.Dropped {
		panic(&CapabilityError{Capability: CapValues,
			Detail: "value group streams dropped by a byte-budgeted freeze"})
	}
	if tier == Tier2 && g.PatSegs != nil {
		return w.patFed(g)
	}
	return newSeq(g.Pattern, g.PatternS, tier)
}

// UValSeq returns a fresh cursor over the unique-value sequence for
// g.ValMembers[i]. On a dropped group (byte-budgeted freeze) it panics
// with *CapabilityError.
func (w *WET) UValSeq(g *Group, i int, tier Tier) Seq {
	if g.Dropped {
		panic(&CapabilityError{Capability: CapValues,
			Detail: "value group streams dropped by a byte-budgeted freeze"})
	}
	if tier == Tier2 && g.UValSegs != nil {
		return w.uvalFed(g, i)
	}
	return newSeq(g.UVals[i], g.UValS[i], tier)
}

// ValMemberIndex returns the index of node position pos within g.ValMembers,
// or -1 when the statement at pos has no def port. O(1) via the position
// index formGroups precomputes.
func (g *Group) ValMemberIndex(pos int) int {
	if pos < 0 || pos >= len(g.valIdx) {
		return -1
	}
	return int(g.valIdx[pos])
}

// Value returns the value produced by the statement at (n, pos) during the
// node's ord-th execution, using the group pattern and unique values.
func (w *WET) Value(n *Node, pos, ord int, tier Tier) (int64, error) {
	g := n.Groups[n.GroupOf[pos]]
	mi := g.ValMemberIndex(pos)
	if mi < 0 {
		return 0, fmt.Errorf("core: statement %s has no def port", n.Stmts[pos])
	}
	if ord < 0 || ord >= n.Execs {
		return 0, fmt.Errorf("core: ordinal %d out of range [0,%d)", ord, n.Execs)
	}
	pat := w.PatternSeq(g, tier)
	idx := seqAt(pat, ord)
	uv := w.UValSeq(g, mi, tier)
	return int64(int32(seqAt(uv, int(idx)))), nil
}

// seqAt reads element i of s: directly for random-access (tier-1) storage,
// through a checkpointed seek for stream cursors, by stepping otherwise.
func seqAt(s Seq, i int) uint32 {
	if ra, ok := s.(RandomAccess); ok {
		return ra.At(i)
	}
	if sk, ok := s.(Seeker); ok {
		sk.Seek(i)
		return s.Next()
	}
	for s.Pos() > i {
		s.Prev()
	}
	for s.Pos() < i {
		s.Next()
	}
	return s.Next()
}

// SeqAt is the exported form of seqAt for query packages.
func SeqAt(s Seq, i int) uint32 { return seqAt(s, i) }
