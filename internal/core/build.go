package core

import (
	"fmt"
	"sort"
	"strings"

	"wet/internal/interp"
	"wet/internal/ir"
	"wet/internal/stream"
	"wet/internal/trace"
)

// Builder constructs a WET from the dynamic event stream. It implements
// trace.Sink: statement events are buffered until the covering PathDone
// event names the Ball–Larus path, at which point the node is labeled.
type Builder struct {
	prog   *ir.Program
	static *interp.Static

	w       *WET
	nodeIdx map[nodeKey]int

	// Per-instance location records (dropped after Finish): where each
	// dynamic statement instance landed, packed one word per instance as
	// node(16) | pos(12) | ord(32) — see packInstLoc. Indexed by instance
	// id; this table is the only builder structure that must grow with the
	// full trace even when streaming.
	instLoc []uint64

	// Pending events of the currently executing path.
	pending []pendingEvent

	edgeIdx map[edgeKey]int

	time     uint32
	prevNode int

	// Streaming (epoch-segmented) state; zero/nil on single-epoch builds.
	epochTS uint32
	fopts   FreezeOptions
	pipe    *freezePool

	// Concurrency capture (conc.go): the owning thread of the path being
	// built and the sync / shared-access events buffered since the last
	// PathDone. Inert (and the WET's Conc nil) until the first such event.
	concTid  int32
	pendSync []pendSyncEvent
	pendAcc  []pendAccEvent

	// CheckDeterminism re-verifies the tier-1 value-grouping invariant on
	// every execution: a repeated input tuple must reproduce the stored
	// values exactly.
	CheckDeterminism bool

	err error
	// abort, when set (buildStreaming wires it to a CancelCauseFunc),
	// propagates a builder failure to the interpreter's context so the
	// run stops within one ctx-check window instead of streaming events
	// into a dead build. Called only from the interpreter goroutine.
	abort func(error)
}

// fail records the first builder error and aborts the surrounding run.
func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
	if b.abort != nil {
		b.abort(b.err)
	}
}

type nodeKey struct {
	fn     int
	pathID int64
}

// edgeKey packs an edge identity into one word for fast map hashing:
// kind(1) | srcNode(16) | srcPos(12) | dstNode(16) | dstPos(12) | opIdx(4).
// The field widths comfortably exceed anything the workloads produce;
// packEdgeKey panics if a program outgrows them.
type edgeKey = uint64

func packEdgeKey(kind EdgeKind, srcNode, srcPos, dstNode, dstPos, opIdx int) edgeKey {
	if srcNode >= 1<<16 || dstNode >= 1<<16 || srcPos >= 1<<12 || dstPos >= 1<<12 || opIdx >= 14 {
		panic("core: edge key field overflow")
	}
	return uint64(kind)<<61 |
		uint64(srcNode)<<44 | uint64(srcPos)<<32 |
		uint64(dstNode)<<16 | uint64(dstPos)<<4 |
		uint64(opIdx+1) // -1 (CD) maps to 0
}

type pendingEvent struct {
	st    *ir.Stmt
	value int64
	dd    []trace.Inst
	dv    []int64
	cd    trace.Inst
}

// NewBuilder returns a builder for one run of the analyzed program.
func NewBuilder(st *interp.Static) *Builder {
	return &Builder{
		prog:     st.Prog,
		static:   st,
		w:        &WET{Prog: st.Prog, Static: st, StmtOcc: make([][]StmtRef, len(st.Prog.Stmts))},
		nodeIdx:  map[nodeKey]int{},
		edgeIdx:  map[edgeKey]int{},
		instLoc:  make([]uint64, 1, 1024), // instance ids start at 1
		prevNode: -1,
	}
}

// Stmt implements trace.Sink. Pending slots (and their operand slices) are
// recycled across paths to keep construction allocation-free in steady
// state.
func (b *Builder) Stmt(inst trace.Inst, st *ir.Stmt, value int64, ddSrcs []trace.Inst, ddVals []int64, cdSrc trace.Inst) {
	if b.err != nil {
		return
	}
	n := len(b.pending)
	if cap(b.pending) > n {
		b.pending = b.pending[:n+1]
	} else {
		b.pending = append(b.pending, pendingEvent{})
	}
	ev := &b.pending[n]
	ev.st, ev.value, ev.cd = st, value, cdSrc
	ev.dd = append(ev.dd[:0], ddSrcs...)
	ev.dv = append(ev.dv[:0], ddVals...)
	_ = inst // instance ids are dense; location records are appended in order
}

// PathDone implements trace.Sink.
func (b *Builder) PathDone(fn int, pathID int64) {
	if b.err != nil {
		return
	}
	if err := b.flushPath(fn, pathID); err != nil {
		b.fail(err)
		return
	}
	// A failed compression worker flips the pool's bad flag; surface it
	// here (the interpreter goroutine) so the run aborts promptly rather
	// than discovering the failure at drain time.
	if b.pipe != nil && b.pipe.bad.Load() {
		b.fail(b.pipe.firstErr())
	}
}

func (b *Builder) flushPath(fn int, pathID int64) error {
	node, err := b.node(fn, pathID)
	if err != nil {
		return err
	}
	if len(b.pending) != len(node.Stmts) {
		return fmt.Errorf("core: path (fn %d, id %d) delivered %d events, node has %d statements", fn, pathID, len(b.pending), len(node.Stmts))
	}
	b.time++
	ord := uint32(node.Execs)
	node.Execs++
	node.TS = append(node.TS, b.time)
	if b.prevNode >= 0 {
		addUniq(&b.w.Nodes[b.prevNode].CFNext, node.ID)
		addUniq(&node.CFPrev, b.prevNode)
	} else {
		b.w.FirstNode = node.ID
	}
	b.prevNode = node.ID
	b.w.LastNode = node.ID
	if err := b.concFlush(); err != nil {
		return err
	}

	// Record instance locations and dependence edge labels.
	for i := range b.pending {
		ev := &b.pending[i]
		if ev.st != node.Stmts[i] {
			return fmt.Errorf("core: path (fn %d, id %d) statement %d is [%d]%s, node expects [%d]%s",
				fn, pathID, i, ev.st.ID, ev.st, node.Stmts[i].ID, node.Stmts[i])
		}
		b.instLoc = append(b.instLoc, packInstLoc(node.ID, i, ord))

		for opIdx, src := range ev.dd {
			if src == 0 {
				continue
			}
			if src >= trace.Inst(len(b.instLoc)) {
				return fmt.Errorf("core: dependence source instance %d not yet recorded", src)
			}
			sn, sp, so := unpackInstLoc(b.instLoc[src])
			b.label(DD, sn, sp, node.ID, i, opIdx, ord, so)
		}
		if ev.cd != 0 {
			sn, sp, so := unpackInstLoc(b.instLoc[ev.cd])
			b.label(CD, sn, sp, node.ID, i, -1, ord, so)
		}
	}

	// Value grouping: extend each group's pattern and unique values.
	if err := b.labelValues(node); err != nil {
		return err
	}
	b.pending = b.pending[:0]

	// Streaming: the timestamp just issued closed its epoch — seal it and
	// hand the epoch's label slices to the compression pool. A path carries
	// exactly one timestamp, so a path never spans epochs.
	if b.epochTS > 0 && b.time%b.epochTS == 0 {
		b.sealEpoch(int(b.time/b.epochTS) - 1)
	}
	return nil
}

// packInstLoc packs an instance location into one word: node(16) | pos(12) |
// ord(32). The widths match packEdgeKey's; Builder.node rejects programs
// that outgrow them.
func packInstLoc(node, pos int, ord uint32) uint64 {
	return uint64(node)<<44 | uint64(pos)<<32 | uint64(ord)
}

func unpackInstLoc(l uint64) (node, pos int, ord uint32) {
	return int(l >> 44), int(l >> 32 & 0xfff), uint32(l)
}

// label appends a <dstOrd, srcOrd> pair to the dependence edge, creating the
// edge on first use.
func (b *Builder) label(kind EdgeKind, srcNode, srcPos, dstNode, dstPos, opIdx int, dstOrd, srcOrd uint32) {
	k := packEdgeKey(kind, srcNode, srcPos, dstNode, dstPos, opIdx)
	idx, ok := b.edgeIdx[k]
	if !ok {
		idx = len(b.w.Edges)
		e := &Edge{Kind: kind, SrcNode: srcNode, SrcPos: srcPos, DstNode: dstNode, DstPos: dstPos, OpIdx: opIdx, SharedWith: -1}
		b.w.Edges = append(b.w.Edges, e)
		b.edgeIdx[k] = idx
	}
	e := b.w.Edges[idx]
	e.DstOrd = append(e.DstOrd, dstOrd)
	e.SrcOrd = append(e.SrcOrd, srcOrd)
	e.Count++
}

// labelValues extends the node's groups with this execution's input tuple
// and produced values.
func (b *Builder) labelValues(node *Node) error {
	var keyBuf []byte
	for _, g := range node.Groups {
		keyBuf = keyBuf[:0]
		for _, ks := range g.keyPlan {
			var v int64
			if ks.ddIdx < 0 {
				v = b.pending[ks.pos].value
			} else {
				dv := b.pending[ks.pos].dv
				if ks.ddIdx >= len(dv) {
					return fmt.Errorf("core: key plan reads operand %d of %s, only %d recorded", ks.ddIdx, b.pending[ks.pos].st, len(dv))
				}
				v = dv[ks.ddIdx]
			}
			u := uint64(v)
			keyBuf = append(keyBuf, byte(u), byte(u>>8), byte(u>>16), byte(u>>24), byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
		}
		idx, seen := g.keys[string(keyBuf)]
		if !seen {
			idx = uint32(len(g.keys))
			g.keys[string(keyBuf)] = idx
			for mi, pos := range g.ValMembers {
				g.UVals[mi] = append(g.UVals[mi], uint32(b.pending[pos].value))
			}
			if b.CheckDeterminism && len(g.ValMembers) > 0 {
				if g.checkVals == nil {
					g.checkVals = make([][]uint32, len(g.ValMembers))
				}
				for mi, pos := range g.ValMembers {
					g.checkVals[mi] = append(g.checkVals[mi], uint32(b.pending[pos].value))
				}
			}
		} else if b.CheckDeterminism {
			// Compare against the retained copy, not UVals: the streaming
			// pipeline seals UVals away per epoch, leaving only the keys map
			// behind, while idx stays a run-global index.
			for mi, pos := range g.ValMembers {
				if got, want := uint32(b.pending[pos].value), g.checkVals[mi][idx]; got != want {
					return fmt.Errorf("core: determinism violation at %s: value %d, stored %d (inputs %v)",
						b.pending[pos].st, got, want, g.Inputs)
				}
			}
		}
		g.Pattern = append(g.Pattern, idx)
	}
	return nil
}

// node returns (creating on first execution) the WET node for a path.
func (b *Builder) node(fn int, pathID int64) (*Node, error) {
	k := nodeKey{fn, pathID}
	if idx, ok := b.nodeIdx[k]; ok {
		return b.w.Nodes[idx], nil
	}
	blocks, err := b.static.Paths[fn].Blocks(pathID)
	if err != nil {
		return nil, err
	}
	f := b.prog.Funcs[fn]
	n := &Node{ID: len(b.w.Nodes), Fn: fn, PathID: pathID, Blocks: blocks, stmtPos: map[int]int{}}
	for _, bid := range blocks {
		for _, s := range f.Blocks[bid].Stmts {
			n.stmtPos[s.ID] = len(n.Stmts)
			b.w.StmtOcc[s.ID] = append(b.w.StmtOcc[s.ID], StmtRef{Node: n.ID, Pos: len(n.Stmts)})
			n.Stmts = append(n.Stmts, s)
		}
	}
	if n.ID >= 1<<16 || len(n.Stmts) > 1<<12 {
		return nil, fmt.Errorf("core: node %d (%d statements) exceeds packed location widths", n.ID, len(n.Stmts))
	}
	n.InEdges = make([][]int, len(n.Stmts))
	n.OutEdges = make([][]int, len(n.Stmts))
	formGroups(n)
	b.w.Nodes = append(b.w.Nodes, n)
	b.nodeIdx[k] = n.ID
	return n, nil
}

// isInputClass reports whether a statement's result is an input to the node
// (the paper's "input statements": reads whose value cannot be derived from
// other inputs). Shared loads can observe other threads' stores and spawn
// results depend on global scheduling order, so both are inputs — otherwise
// the value-grouping determinism invariant would not hold for them.
func isInputClass(op ir.Op) bool {
	return op == ir.OpLoad || op == ir.OpInput || op == ir.OpLoadSh || op == ir.OpSpawn
}

// formGroups performs the paper's §3.2 static grouping for one node:
// compute each statement's transitive input set, group statements with
// identical sets, merge proper-subset groups into their (smallest)
// superset, and derive the runtime key-extraction plan.
func formGroups(n *Node) {
	type set = map[string]InputElem
	sets := make([]set, len(n.Stmts))
	lastDef := map[ir.Reg]int{}
	// extUser[r] remembers the first direct external use of register r:
	// (position, ddVals index), for the key plan.
	type use struct{ pos, ddIdx int }
	extUser := map[ir.Reg]use{}

	var uses []ir.Reg
	for p, s := range n.Stmts {
		sp := set{}
		if isInputClass(s.Op) {
			el := InputElem{Src: p}
			sp[el.String()] = el
		} else {
			uses = s.Uses(uses[:0])
			for ui, r := range uses {
				if q, ok := lastDef[r]; ok {
					for k, v := range sets[q] {
						sp[k] = v
					}
				} else {
					el := InputElem{Ext: r, Src: -1}
					sp[el.String()] = el
					if _, seen := extUser[r]; !seen {
						extUser[r] = use{pos: p, ddIdx: ui}
					}
				}
			}
		}
		sets[p] = sp
		if s.Op.HasDef() && s.Dest != ir.NoReg {
			lastDef[s.Dest] = p
		}
	}

	// Group by canonical set key.
	canon := func(sp set) string {
		ks := make([]string, 0, len(sp))
		for k := range sp {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		return strings.Join(ks, ",")
	}
	groupAt := map[string]*Group{}
	var order []string
	for p := range n.Stmts {
		key := canon(sets[p])
		g, ok := groupAt[key]
		if !ok {
			g = &Group{keys: map[string]uint32{}}
			for _, el := range sets[p] {
				g.Inputs = append(g.Inputs, el)
			}
			sort.Slice(g.Inputs, func(i, j int) bool { return g.Inputs[i].String() < g.Inputs[j].String() })
			groupAt[key] = g
			order = append(order, key)
		}
		g.Members = append(g.Members, p)
	}

	// Merge proper-subset groups into their smallest superset.
	subsetOf := func(a, b *Group) bool {
		if len(a.Inputs) >= len(b.Inputs) {
			return false
		}
		have := map[string]bool{}
		for _, el := range b.Inputs {
			have[el.String()] = true
		}
		for _, el := range a.Inputs {
			if !have[el.String()] {
				return false
			}
		}
		return true
	}
	merged := map[string]bool{}
	// Process in increasing input-set size so chains collapse upward.
	sort.SliceStable(order, func(i, j int) bool {
		return len(groupAt[order[i]].Inputs) < len(groupAt[order[j]].Inputs)
	})
	for _, key := range order {
		g := groupAt[key]
		if merged[key] {
			continue
		}
		var best *Group
		for _, key2 := range order {
			if key2 == key || merged[key2] {
				continue
			}
			h := groupAt[key2]
			if subsetOf(g, h) && (best == nil || len(h.Inputs) < len(best.Inputs)) {
				best = h
			}
		}
		if best != nil {
			best.Members = append(best.Members, g.Members...)
			merged[key] = true
		}
	}

	// Finalize groups: sort members, find def members, build key plans.
	n.GroupOf = make([]int, len(n.Stmts))
	for _, key := range order {
		if merged[key] {
			continue
		}
		g := groupAt[key]
		sort.Ints(g.Members)
		g.valIdx = make([]int32, len(n.Stmts))
		for i := range g.valIdx {
			g.valIdx[i] = -1
		}
		for _, pos := range g.Members {
			n.GroupOf[pos] = len(n.Groups)
			if n.Stmts[pos].Op.HasDef() && n.Stmts[pos].Dest != ir.NoReg {
				g.valIdx[pos] = int32(len(g.ValMembers))
				g.ValMembers = append(g.ValMembers, pos)
				g.UVals = append(g.UVals, nil)
			}
		}
		for _, el := range g.Inputs {
			if el.Src >= 0 {
				g.keyPlan = append(g.keyPlan, keySource{pos: el.Src, ddIdx: -1})
			} else {
				u, ok := extUser[el.Ext]
				if !ok {
					panic(fmt.Sprintf("core: no direct user for input %s in node", el))
				}
				g.keyPlan = append(g.keyPlan, keySource{pos: u.pos, ddIdx: u.ddIdx})
			}
		}
		n.Groups = append(n.Groups, g)
	}
}

// Finish validates and returns the built WET (tier-1 labeled, not frozen).
func (b *Builder) Finish() (*WET, error) {
	if b.pipe != nil {
		return nil, fmt.Errorf("core: streaming builder must finish via FinishStreaming")
	}
	if b.err != nil {
		return nil, b.err
	}
	if len(b.pending) != 0 {
		return nil, fmt.Errorf("core: %d statement events not covered by a path", len(b.pending))
	}
	w := b.w
	w.Time = b.time
	// Fill edge adjacency.
	for i, e := range w.Edges {
		dst := w.Nodes[e.DstNode]
		dst.InEdges[e.DstPos] = append(dst.InEdges[e.DstPos], i)
		src := w.Nodes[e.SrcNode]
		src.OutEdges[e.SrcPos] = append(src.OutEdges[e.SrcPos], i)
	}
	// Release instance records.
	b.instLoc = nil
	return w, nil
}

func addUniq(s *[]int, v int) {
	for _, x := range *s {
		if x == v {
			return
		}
	}
	*s = append(*s, v)
}

// Build runs the program and constructs its WET in one call. The returned
// WET is unfrozen (tier-1 labels only); call Freeze for tier-2 streams and
// the size report. opts.Sink is overridden.
func Build(st *interp.Static, opts interp.Options) (*WET, *interp.Result, error) {
	b := NewBuilder(st)
	cnt := trace.NewCounting(b)
	opts.Sink = cnt
	res, err := interp.Run(st, opts)
	if err != nil {
		return nil, res, err
	}
	w, err := b.Finish()
	if err != nil {
		return nil, res, err
	}
	w.Raw = cnt.RawStats
	return w, res, nil
}

// Ensure Builder satisfies trace.Sink and its concurrency extension.
var _ trace.Sink = (*Builder)(nil)
var _ trace.ConcSink = (*Builder)(nil)

// Ensure the slice cursor satisfies both fast paths like stream cursors
// satisfy Seq + Seeker.
var _ Seq = (*sliceSeq)(nil)
var _ RandomAccess = (*sliceSeq)(nil)
var _ Seeker = (*sliceSeq)(nil)
var _ Seq = (stream.Cursor)(nil)
var _ Seeker = (stream.Cursor)(nil)
