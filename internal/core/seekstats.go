package core

import "wet/internal/stream"

// seek is the per-WET cursor-cost counter set; see AttachSeekCounters.

// AttachSeekCounters points every tier-2 stream of the WET — node timestamp
// streams and segments, group pattern and unique-value streams and
// segments, edge label streams and segments — at the counter set c, so all
// cursor seeks over this trace aggregate there (as well as in the
// deprecated process-wide counters). Lazy and evictable streams forward the
// attachment to decodes that happen later. Call before the WET is shared
// across goroutines; attaching twice re-points the accounting.
func (w *WET) AttachSeekCounters(c *stream.SeekCounters) {
	w.seek = c
	attach := func(s stream.Stream) {
		if s != nil {
			stream.AttachStats(s, c)
		}
	}
	for _, n := range w.Nodes {
		attach(n.TSS)
		for _, sg := range n.TSSegs {
			attach(sg.S)
		}
		for _, g := range n.Groups {
			attach(g.PatternS)
			for _, uv := range g.UValS {
				attach(uv)
			}
			for _, sg := range g.PatSegs {
				attach(sg.S)
			}
			for _, segs := range g.UValSegs {
				for _, sg := range segs {
					attach(sg.S)
				}
			}
		}
	}
	for _, e := range w.Edges {
		attach(e.DstS)
		attach(e.SrcS)
		for _, sg := range e.Segs {
			attach(sg.DstS)
			attach(sg.SrcS)
		}
	}
	if w.Conc != nil {
		w.Conc.attach(attach)
	}
}

// SeekCounters returns the counter set attached to this WET, or nil when
// none has been attached.
func (w *WET) SeekCounters() *stream.SeekCounters { return w.seek }
