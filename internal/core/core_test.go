package core

import (
	"testing"

	"wet/internal/interp"
	"wet/internal/ir"
	"wet/internal/stream"
	"wet/internal/trace"
)

// traceSink aliases trace.Sink for test helpers.
type traceSink = trace.Sink

// tee fans one event stream out to several sinks.
type tee struct{ sinks []traceSink }

func (t *tee) Stmt(inst trace.Inst, st *ir.Stmt, value int64, ddSrcs []trace.Inst, ddVals []int64, cdSrc trace.Inst) {
	for _, s := range t.sinks {
		s.Stmt(inst, st, value, ddSrcs, ddVals, cdSrc)
	}
}

func (t *tee) PathDone(fn int, pathID int64) {
	for _, s := range t.sinks {
		s.PathDone(fn, pathID)
	}
}

// buildWET runs p and returns its WET plus the raw recording.
func buildWET(t *testing.T, p *ir.Program, inputs []int64) (*WET, *trace.Recording) {
	t.Helper()
	st, err := interp.Analyze(p)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	b := NewBuilder(st)
	b.CheckDeterminism = true
	rec := &trace.Recording{}
	cnt := trace.NewCounting(&tee{sinks: []trace.Sink{rec, b}})
	if _, err := interp.Run(st, interp.Options{Inputs: inputs, Sink: cnt, MaxSteps: 1 << 22}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	w, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	w.Raw = cnt.RawStats
	return w, rec
}

func sumLoop(t *testing.T, iters int64) *ir.Program {
	t.Helper()
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	s := fb.ConstReg(0)
	fb.For(ir.Imm(0), ir.Imm(iters), ir.Imm(1), func(i ir.Reg) {
		sq := fb.NewReg()
		fb.Mul(sq, ir.R(i), ir.R(i))
		fb.Add(s, ir.R(s), ir.R(sq))
		fb.Store(ir.R(i), 0, ir.R(s))
	})
	out := fb.NewReg()
	fb.Load(out, ir.Imm(iters-1), 0)
	fb.Output(ir.R(out))
	fb.Halt()
	p.MustFinalize()
	return p
}

func TestTimestampsPartitionTime(t *testing.T) {
	w, _ := buildWET(t, sumLoop(t, 20), nil)
	if w.Time != uint32(w.Raw.PathExecs) {
		t.Fatalf("Time = %d, PathExecs = %d", w.Time, w.Raw.PathExecs)
	}
	seen := map[uint32]int{}
	total := 0
	for _, n := range w.Nodes {
		if n.Execs != len(n.TS) {
			t.Fatalf("node %d Execs=%d len(TS)=%d", n.ID, n.Execs, len(n.TS))
		}
		last := uint32(0)
		for _, ts := range n.TS {
			if ts <= last {
				t.Fatalf("node %d TS not strictly increasing: %v", n.ID, n.TS)
			}
			last = ts
			if _, dup := seen[ts]; dup {
				t.Fatalf("timestamp %d appears in two nodes", ts)
			}
			seen[ts] = n.ID
			total++
		}
	}
	if uint32(total) != w.Time {
		t.Fatalf("%d timestamps across nodes, want %d", total, w.Time)
	}
	for ts := uint32(1); ts <= w.Time; ts++ {
		if _, ok := seen[ts]; !ok {
			t.Fatalf("timestamp %d missing", ts)
		}
	}
}

func TestValueReconstructionAgainstRecording(t *testing.T) {
	w, rec := buildWET(t, sumLoop(t, 15), nil)
	w.Freeze(FreezeOptions{})
	// Replay the recording path by path and check every def value via the
	// group/pattern machinery at both tiers.
	ordOf := map[int]int{} // node -> next ordinal
	start := 0
	for _, pe := range rec.Paths {
		n := w.NodeOf(pe.Fn, pe.PathID)
		if n == nil {
			t.Fatalf("no node for (fn %d, path %d)", pe.Fn, pe.PathID)
		}
		ord := ordOf[n.ID]
		ordOf[n.ID]++
		evs := rec.Events[start:pe.Upto]
		start = pe.Upto
		for pos, ev := range evs {
			if !ev.Stmt.Op.HasDef() || ev.Stmt.Dest == ir.NoReg {
				continue
			}
			for _, tier := range []Tier{Tier1, Tier2} {
				got, err := w.Value(n, pos, ord, tier)
				if err != nil {
					t.Fatalf("Value(%d,%d,%d,%s): %v", n.ID, pos, ord, tier, err)
				}
				if got != ev.Value {
					t.Fatalf("%s Value(node %d, pos %d (%s), ord %d) = %d, want %d",
						tier, n.ID, pos, ev.Stmt, ord, got, ev.Value)
				}
			}
		}
	}
}

func TestEdgeLabelsConsistent(t *testing.T) {
	w, _ := buildWET(t, sumLoop(t, 10), nil)
	rep := w.Freeze(FreezeOptions{})
	if rep.InferableEdges == 0 {
		t.Fatal("no local edges were inferable in a tight loop")
	}
	var totalPairs uint64
	for _, e := range w.Edges {
		if e.SharedWith >= 0 {
			rep := w.Edges[e.SharedWith]
			if rep.SharedWith >= 0 || rep.Inferable {
				t.Fatal("share representative is itself shared/inferable")
			}
			continue
		}
		if e.Inferable {
			totalPairs += uint64(e.Count)
			if e.DstOrd != nil {
				t.Fatal("inferable edge kept labels")
			}
			continue
		}
		if len(e.DstOrd) != e.Count || len(e.SrcOrd) != e.Count {
			t.Fatalf("edge label length %d/%d, count %d", len(e.DstOrd), len(e.SrcOrd), e.Count)
		}
		totalPairs += uint64(e.Count)
		// dst ordinals strictly increasing (each node execution fires an
		// edge at most once per operand).
		for i := 1; i < len(e.DstOrd); i++ {
			if e.DstOrd[i] <= e.DstOrd[i-1] {
				t.Fatalf("edge dst ordinals not increasing: %v", e.DstOrd)
			}
		}
	}
	// All dynamic dependences are accounted for across owned+inferable
	// edges plus the shared duplicates.
	var sharedPairs uint64
	for _, e := range w.Edges {
		if e.SharedWith >= 0 {
			sharedPairs += uint64(e.Count)
		}
	}
	if totalPairs+sharedPairs != w.Raw.DynDD+w.Raw.DynCD {
		t.Fatalf("edge pairs %d+%d shared, raw %d", totalPairs, sharedPairs, w.Raw.DynDD+w.Raw.DynCD)
	}
}

func TestTier2StreamsMatchTier1(t *testing.T) {
	w, _ := buildWET(t, sumLoop(t, 12), nil)
	w.Freeze(FreezeOptions{})
	for _, n := range w.Nodes {
		got := stream.Drain(n.TSS)
		for i, ts := range n.TS {
			if got[i] != ts {
				t.Fatalf("node %d tier-2 ts[%d] = %d, want %d", n.ID, i, got[i], ts)
			}
		}
		for gi, g := range n.Groups {
			pat := stream.Drain(g.PatternS)
			for i := range g.Pattern {
				if pat[i] != g.Pattern[i] {
					t.Fatalf("node %d group %d pattern mismatch at %d", n.ID, gi, i)
				}
			}
			for mi := range g.UVals {
				uv := stream.Drain(g.UValS[mi])
				for i := range g.UVals[mi] {
					if uv[i] != g.UVals[mi][i] {
						t.Fatalf("node %d group %d uvals[%d] mismatch", n.ID, gi, mi)
					}
				}
			}
		}
	}
	for ei, e := range w.Edges {
		if e.Inferable || e.SharedWith >= 0 {
			continue
		}
		d := stream.Drain(e.DstS)
		s := stream.Drain(e.SrcS)
		for i := range e.DstOrd {
			if d[i] != e.DstOrd[i] || s[i] != e.SrcOrd[i] {
				t.Fatalf("edge %d tier-2 labels mismatch at %d", ei, i)
			}
		}
	}
}

func TestSizeReportShape(t *testing.T) {
	w, _ := buildWET(t, sumLoop(t, 200), nil)
	rep := w.Freeze(FreezeOptions{})
	if rep.OrigTotal() == 0 {
		t.Fatal("empty orig size")
	}
	if rep.T1TS >= rep.OrigTS {
		t.Fatalf("tier-1 did not reduce timestamps: %d vs %d", rep.T1TS, rep.OrigTS)
	}
	if rep.T2TS > rep.T1TS {
		t.Fatalf("tier-2 grew timestamps: %d vs %d", rep.T2TS, rep.T1TS)
	}
	if rep.T1Total() >= rep.OrigTotal() {
		t.Fatalf("tier-1 total %d >= orig %d", rep.T1Total(), rep.OrigTotal())
	}
	if rep.T2Total() >= rep.T1Total() {
		t.Fatalf("tier-2 total %d >= tier-1 %d", rep.T2Total(), rep.T1Total())
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestGroupFormationExample(t *testing.T) {
	// Mirror of the paper's §3.2 example: x is read by an input statement
	// inside the node; y = f(x) and z = g(x, y) depend only on x, so they
	// share one group whose pattern follows x's repetition (here 0,1,0,1…).
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	x := fb.NewReg()
	y := fb.NewReg()
	z := fb.NewReg()
	c := fb.NewReg()
	fb.For(ir.Imm(0), ir.Imm(8), ir.Imm(1), func(i ir.Reg) {
		fb.Input(x) // input tape alternates 0,1
		fb.Add(y, ir.R(x), ir.Imm(10))
		fb.Mul(z, ir.R(x), ir.R(y))
		fb.Gt(c, ir.R(z), ir.Imm(100)) // also x-only
		fb.Output(ir.R(z))
	})
	fb.Halt()
	p.MustFinalize()
	w, _ := buildWET(t, p, []int64{0, 1, 0, 1, 0, 1, 0, 1})
	// Find the node containing the mul statement.
	var node *Node
	var mulPos int
	for _, n := range w.Nodes {
		for pos, s := range n.Stmts {
			if s.Op == ir.OpMul {
				node, mulPos = n, pos
			}
		}
	}
	if node == nil {
		t.Fatal("mul statement not in any node")
	}
	g := node.Groups[node.GroupOf[mulPos]]
	// x alternates between two values, so the group must have 2 unique keys
	// even though the node executed more often.
	if node.Execs < 4 {
		t.Fatalf("loop node executed %d times", node.Execs)
	}
	if g.UniqueKeys() != 2 {
		t.Fatalf("group unique keys = %d, want 2 (inputs %v, members %v)", g.UniqueKeys(), g.Inputs, g.Members)
	}
	// y and z (and the compare) must share the group (same input set {x}).
	found := map[ir.Op]bool{}
	for _, pos := range g.Members {
		found[node.Stmts[pos].Op] = true
	}
	if !found[ir.OpAdd] || !found[ir.OpMul] || !found[ir.OpGt] {
		t.Fatalf("group members %v do not cover add/mul/gt", found)
	}
}

func TestInputStatementsFormOwnInputs(t *testing.T) {
	// Loads are input statements: their values key the group.
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	// Memory holds a repeating pattern; the loop loads it and computes.
	fb.Store(ir.Imm(0), 0, ir.Imm(5))
	fb.Store(ir.Imm(1), 0, ir.Imm(9))
	v := fb.NewReg()
	d := fb.NewReg()
	a := fb.NewReg()
	fb.For(ir.Imm(0), ir.Imm(10), ir.Imm(1), func(i ir.Reg) {
		fb.Mod(a, ir.R(i), ir.Imm(2))
		fb.Load(v, ir.R(a), 0)
		fb.Mul(d, ir.R(v), ir.Imm(3))
		fb.Output(ir.R(d))
	})
	fb.Halt()
	p.MustFinalize()
	w, _ := buildWET(t, p, nil)
	var node *Node
	var mulPos int
	for _, n := range w.Nodes {
		for pos, s := range n.Stmts {
			if s.Op == ir.OpMul && n.Execs > 2 {
				node, mulPos = n, pos
			}
		}
	}
	if node == nil {
		t.Fatal("hot mul node not found")
	}
	g := node.Groups[node.GroupOf[mulPos]]
	hasSrc := false
	for _, el := range g.Inputs {
		if el.Src >= 0 && node.Stmts[el.Src].Op == ir.OpLoad {
			hasSrc = true
		}
	}
	if !hasSrc {
		t.Fatalf("mul group inputs %v do not include the load", g.Inputs)
	}
	// The load alternates 5/9 — pattern compresses to 2 unique keys for
	// the group keyed (at least partly) on the load.
	if g.UniqueKeys() > 4 {
		t.Fatalf("unique keys = %d for an alternating load", g.UniqueKeys())
	}
}

func TestFreezeIdempotentAndDropTier1(t *testing.T) {
	w, _ := buildWET(t, sumLoop(t, 10), nil)
	r1 := w.Freeze(FreezeOptions{})
	r2 := w.Freeze(FreezeOptions{})
	if r1 != r2 {
		t.Fatal("Freeze not idempotent")
	}

	w2, _ := buildWET(t, sumLoop(t, 10), nil)
	w2.Freeze(FreezeOptions{DropTier1: true})
	for _, n := range w2.Nodes {
		if n.TS != nil {
			t.Fatal("DropTier1 kept node TS")
		}
	}
	// Tier-2 reads still work.
	n := w2.Nodes[0]
	if got := stream.Drain(n.TSS); len(got) != n.Execs {
		t.Fatalf("tier-2 ts after drop: %d values, want %d", len(got), n.Execs)
	}
}

func TestCFEdgesObserved(t *testing.T) {
	w, _ := buildWET(t, sumLoop(t, 10), nil)
	// The loop node must have itself as a CF successor (repeating path).
	var hot *Node
	for _, n := range w.Nodes {
		if hot == nil || n.Execs > hot.Execs {
			hot = n
		}
	}
	self := false
	for _, nx := range hot.CFNext {
		if nx == hot.ID {
			self = true
		}
	}
	if !self {
		t.Fatalf("hot node %d CFNext %v lacks self loop", hot.ID, hot.CFNext)
	}
	if w.FirstNode < 0 || w.LastNode < 0 {
		t.Fatal("first/last nodes unset")
	}
}

func TestStmtOccurrences(t *testing.T) {
	w, _ := buildWET(t, sumLoop(t, 10), nil)
	for id, occs := range w.StmtOcc {
		for _, ref := range occs {
			n := w.Nodes[ref.Node]
			if n.Stmts[ref.Pos].ID != id {
				t.Fatalf("StmtOcc[%d] points at %d", id, n.Stmts[ref.Pos].ID)
			}
			if n.PosOf(id) != ref.Pos {
				t.Fatalf("PosOf mismatch for stmt %d", id)
			}
		}
	}
}

// --- direct unit tests of the §3.2 group formation rules ---

// nodeFor builds a single-path WET node for a straight-line function body.
func nodeFor(t *testing.T, build func(fb *ir.FuncBuilder)) *Node {
	t.Helper()
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	build(fb)
	fb.Halt()
	p.MustFinalize()
	st, err := interp.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	n, err := RestoreNode(st, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestGroupSubsetMerge(t *testing.T) {
	// y depends on {ext a}; z depends on {ext a, ext b}: the {a} group is a
	// proper subset and must merge into the {a,b} group (paper §3.2).
	n := nodeFor(t, func(fb *ir.FuncBuilder) {
		a := fb.NewReg() // r0: never written in the node -> external
		b := fb.NewReg() // r1: external
		y := fb.NewReg()
		z := fb.NewReg()
		_ = a
		_ = b
		fb.Add(y, ir.R(0), ir.Imm(1)) // uses ext r0
		fb.Add(z, ir.R(0), ir.R(1))   // uses ext r0 and ext r1
		fb.Output(ir.R(y))
		fb.Output(ir.R(z))
	})
	if got := len(n.Groups); got != 1 {
		for _, g := range n.Groups {
			t.Logf("group inputs=%v members=%v", g.Inputs, g.Members)
		}
		t.Fatalf("groups = %d, want 1 (subset merged)", got)
	}
	if len(n.Groups[0].Inputs) != 2 {
		t.Fatalf("merged group inputs = %v, want {r0, r1}", n.Groups[0].Inputs)
	}
}

func TestGroupDisjointInputsStaySeparate(t *testing.T) {
	// Mirrors the paper's Figure 3: {x,v}-dependent and {x,u}-dependent
	// statements form two groups (neither input set is a subset).
	n := nodeFor(t, func(fb *ir.FuncBuilder) {
		u := fb.NewReg() // r0 external
		v := fb.NewReg() // r1 external
		_ = u
		_ = v
		x := fb.NewReg()
		fb.Input(x) // input statement inside the node
		p1 := fb.NewReg()
		fb.Add(p1, ir.R(x), ir.R(0)) // {src x, ext u}
		p2 := fb.NewReg()
		fb.Mul(p2, ir.R(x), ir.R(1)) // {src x, ext v}
		fb.Output(ir.R(p1))
		fb.Output(ir.R(p2))
	})
	// The input statement is included in exactly one of the groups.
	if got := len(n.Groups); got != 2 {
		for _, g := range n.Groups {
			t.Logf("group inputs=%v members=%v", g.Inputs, g.Members)
		}
		t.Fatalf("groups = %d, want 2 (Figure 3 shape)", got)
	}
	inputGroups := 0
	for _, g := range n.Groups {
		for _, pos := range g.Members {
			if n.Stmts[pos].Op == ir.OpInput {
				inputGroups++
			}
		}
	}
	if inputGroups != 1 {
		t.Fatalf("the input statement belongs to %d groups, want exactly 1", inputGroups)
	}
}

func TestGroupConstantsMergeUpward(t *testing.T) {
	// A constant-only statement (empty input set) merges into some group
	// rather than keeping a pattern of its own.
	n := nodeFor(t, func(fb *ir.FuncBuilder) {
		ext := fb.NewReg() // r0 external
		_ = ext
		c := fb.NewReg()
		fb.Const(c, 42) // empty input set
		y := fb.NewReg()
		fb.Add(y, ir.R(0), ir.Imm(1)) // {ext r0}
		fb.Output(ir.R(y))
	})
	if got := len(n.Groups); got != 1 {
		t.Fatalf("groups = %d, want 1 (empty set merged)", got)
	}
}

func TestGroupOfCoversEveryStatement(t *testing.T) {
	n := nodeFor(t, func(fb *ir.FuncBuilder) {
		x := fb.NewReg()
		fb.Input(x)
		y := fb.NewReg()
		fb.Mul(y, ir.R(x), ir.Imm(3))
		fb.Store(ir.R(x), 0, ir.R(y))
		fb.Output(ir.R(y))
	})
	for pos := range n.Stmts {
		gi := n.GroupOf[pos]
		found := false
		for _, m := range n.Groups[gi].Members {
			if m == pos {
				found = true
			}
		}
		if !found {
			t.Fatalf("statement %d not a member of its group", pos)
		}
	}
}

func TestValidateFrozenWET(t *testing.T) {
	w, _ := buildWET(t, sumLoop(t, 40), nil)
	if err := w.Validate(); err == nil {
		t.Fatal("Validate accepted an unfrozen WET")
	}
	w.Freeze(FreezeOptions{})
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	w, _ := buildWET(t, sumLoop(t, 40), nil)
	w.Freeze(FreezeOptions{})
	// Corrupt an owned edge's count.
	for _, e := range w.Edges {
		if !e.Inferable && e.SharedWith < 0 {
			e.Count++
			break
		}
	}
	if err := w.Validate(); err == nil {
		t.Fatal("Validate missed a corrupted edge count")
	}
}
