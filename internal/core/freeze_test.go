package core

import (
	"testing"

	"wet/internal/interp"
	"wet/internal/ir"
)

// buildProgramWET builds the WET of an ad-hoc program with given freeze
// options.
func freezeWith(t *testing.T, opts FreezeOptions) (*WET, *SizeReport) {
	t.Helper()
	w, _ := buildWET(t, sumLoop(t, 50), nil)
	rep := w.Freeze(opts)
	return w, rep
}

func TestNoInferKeepsAllLabels(t *testing.T) {
	_, repDef := freezeWith(t, FreezeOptions{})
	_, repNoInfer := freezeWith(t, FreezeOptions{NoInfer: true})
	if repNoInfer.InferableEdges != 0 {
		t.Fatalf("NoInfer left %d inferable edges", repNoInfer.InferableEdges)
	}
	if repDef.InferableEdges == 0 {
		t.Fatal("default freeze inferred nothing")
	}
	if repNoInfer.T1Edges <= repDef.T1Edges {
		t.Fatalf("NoInfer tier-1 edges %d <= default %d", repNoInfer.T1Edges, repDef.T1Edges)
	}
}

func TestNoShareKeepsDuplicates(t *testing.T) {
	_, repDef := freezeWith(t, FreezeOptions{})
	_, repNoShare := freezeWith(t, FreezeOptions{NoShare: true})
	if repNoShare.SharedEdges != 0 {
		t.Fatalf("NoShare left %d shared edges", repNoShare.SharedEdges)
	}
	if repDef.SharedEdges == 0 {
		t.Fatal("default freeze shared nothing")
	}
	if repNoShare.T1Edges <= repDef.T1Edges {
		t.Fatalf("NoShare tier-1 edges %d <= default %d", repNoShare.T1Edges, repDef.T1Edges)
	}
}

// repetitiveProgram computes over an alternating input, so value grouping
// collapses each hot group to two unique tuples (the paper's §3.2 win).
// sumLoop, by contrast, keys its group on the induction variable and gains
// nothing — which is why the paper's value ratios are modest.
func repetitiveProgram(t *testing.T) (*ir.Program, []int64) {
	t.Helper()
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	x := fb.NewReg()
	y := fb.NewReg()
	z := fb.NewReg()
	iters := int64(120)
	in := make([]int64, iters)
	for i := range in {
		in[i] = int64(i % 2)
	}
	fb.For(ir.Imm(0), ir.Imm(iters), ir.Imm(1), func(i ir.Reg) {
		fb.Input(x)
		fb.Mul(y, ir.R(x), ir.Imm(17))
		fb.Add(z, ir.R(y), ir.R(x))
		fb.Output(ir.R(z))
	})
	fb.Halt()
	p.MustFinalize()
	return p, in
}

func TestNoGroupingSizes(t *testing.T) {
	pDef, inDef := repetitiveProgram(t)
	wDef, _ := buildWET(t, pDef, inDef)
	repDef := wDef.Freeze(FreezeOptions{})
	pOff, inOff := repetitiveProgram(t)
	wOff, _ := buildWET(t, pOff, inOff)
	repOff := wOff.Freeze(FreezeOptions{NoGrouping: true})
	if repOff.T1Vals != wOff.Raw.OrigNodeValBytes() {
		t.Fatalf("NoGrouping tier-1 vals %d, want raw %d", repOff.T1Vals, wOff.Raw.OrigNodeValBytes())
	}
	if repDef.T1Vals >= repOff.T1Vals {
		t.Fatalf("grouping did not reduce tier-1 values: %d vs %d", repDef.T1Vals, repOff.T1Vals)
	}
	// Tier-2 value queries still work after a NoGrouping freeze.
	for _, n := range wOff.Nodes {
		for pos, s := range n.Stmts {
			if s.Op.HasDef() && s.Dest != ir.NoReg && n.Execs > 0 {
				if _, err := wOff.Value(n, pos, 0, Tier2); err != nil {
					t.Fatalf("Value after NoGrouping freeze: %v", err)
				}
			}
		}
	}
}

func TestValueErrors(t *testing.T) {
	w, _ := buildWET(t, sumLoop(t, 5), nil)
	w.Freeze(FreezeOptions{})
	n := w.Nodes[0]
	// Out-of-range ordinal.
	pos := -1
	for i, s := range n.Stmts {
		if s.Op.HasDef() && s.Dest != ir.NoReg {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Skip("node has no def statements")
	}
	if _, err := w.Value(n, pos, n.Execs, Tier1); err == nil {
		t.Fatal("Value accepted out-of-range ordinal")
	}
	// No-def statement.
	for i, s := range n.Stmts {
		if !s.Op.HasDef() {
			if _, err := w.Value(n, i, 0, Tier1); err == nil {
				t.Fatal("Value accepted a statement without def port")
			}
			break
		}
	}
}

func TestPerBlockModeBuildsWET(t *testing.T) {
	p := sumLoop(t, 30)
	st, err := interp.AnalyzeOpt(p, true)
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := Build(st, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := w.Freeze(FreezeOptions{})
	// Per-block mode: every node is a single basic block.
	for _, n := range w.Nodes {
		if len(n.Blocks) != 1 {
			t.Fatalf("per-block node %d spans %d blocks", n.ID, len(n.Blocks))
		}
	}
	if w.Raw.PathExecs != w.Raw.BlockExecs {
		t.Fatalf("per-block paths %d != block execs %d", w.Raw.PathExecs, w.Raw.BlockExecs)
	}
	// And the Ball-Larus version must need strictly fewer timestamps.
	st2, err := interp.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	w2, _, err := Build(st2, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := w2.Freeze(FreezeOptions{})
	if w2.Raw.PathExecs >= w.Raw.PathExecs {
		t.Fatalf("BL paths %d >= blocks %d", w2.Raw.PathExecs, w.Raw.PathExecs)
	}
	if rep2.T1TS >= rep.T1TS {
		t.Fatalf("BL tier-1 ts %d >= per-block %d", rep2.T1TS, rep.T1TS)
	}
}

func TestPerBlockCFTraceStillReconstructs(t *testing.T) {
	p := sumLoop(t, 15)
	st, err := interp.AnalyzeOpt(p, true)
	if err != nil {
		t.Fatal(err)
	}
	rec := &countingRecorder{}
	b := NewBuilder(st)
	b.CheckDeterminism = true
	w, _, err := buildVia(st, b, rec)
	if err != nil {
		t.Fatal(err)
	}
	w.Freeze(FreezeOptions{})
	// Every timestamp appears exactly once.
	seen := map[uint32]bool{}
	for _, n := range w.Nodes {
		for _, ts := range n.TS {
			if seen[ts] {
				t.Fatalf("duplicate ts %d", ts)
			}
			seen[ts] = true
		}
	}
	if uint32(len(seen)) != w.Time {
		t.Fatalf("%d timestamps, want %d", len(seen), w.Time)
	}
}

// countingRecorder is a trivial extra sink for buildVia.
type countingRecorder struct{ stmts int }

func (c *countingRecorder) Stmt(inst uint64, st *ir.Stmt, value int64, ddSrcs []uint64, ddVals []int64, cdSrc uint64) {
	c.stmts++
}
func (c *countingRecorder) PathDone(fn int, pathID int64) {}

func buildVia(st *interp.Static, b *Builder, extra *countingRecorder) (*WET, *interp.Result, error) {
	res, err := interp.Run(st, interp.Options{Sink: &tee{sinks: []traceSink{extra, b}}})
	if err != nil {
		return nil, nil, err
	}
	w, err := b.Finish()
	if err != nil {
		return nil, nil, err
	}
	return w, res, nil
}

// TestAggressiveEdgesPreservesQueries freezes two WETs of the same run with
// and without the diagonal-edge reduction; every dependence resolution must
// agree, and the aggressive variant must be smaller.
func TestAggressiveEdgesPreservesQueries(t *testing.T) {
	wA, _ := buildWET(t, sumLoop(t, 60), nil)
	repA := wA.Freeze(FreezeOptions{})
	wB, _ := buildWET(t, sumLoop(t, 60), nil)
	repB := wB.Freeze(FreezeOptions{AggressiveEdges: true})
	if repB.DiagonalEdges == 0 {
		t.Skip("no diagonal edges in this program")
	}
	if repB.T1Edges >= repA.T1Edges || repB.T2Edges >= repA.T2Edges {
		t.Fatalf("aggressive edges not smaller: t1 %d vs %d, t2 %d vs %d",
			repB.T1Edges, repA.T1Edges, repB.T2Edges, repA.T2Edges)
	}
	// Edge labels must resolve identically (the graphs are built from the
	// same deterministic run, so edge order matches).
	if len(wA.Edges) != len(wB.Edges) {
		t.Fatalf("edge counts differ: %d vs %d", len(wA.Edges), len(wB.Edges))
	}
	for i := range wA.Edges {
		ea, eb := wA.Edges[i], wB.Edges[i]
		if ea.Inferable != eb.Inferable {
			t.Fatalf("edge %d inferable mismatch", i)
		}
		if ea.Inferable {
			continue
		}
		da, sa := wA.EdgeLabels(ea, Tier2)
		db, sb := wB.EdgeLabels(eb, Tier2)
		if da.Len() != db.Len() {
			t.Fatalf("edge %d label lengths differ", i)
		}
		for k := 0; k < da.Len(); k++ {
			if SeqAt(da, k) != SeqAt(db, k) || SeqAt(sa, k) != SeqAt(sb, k) {
				t.Fatalf("edge %d label %d differs between freezes", i, k)
			}
		}
	}
	if err := wB.Validate(); err != nil {
		t.Fatalf("aggressive WET fails validation: %v", err)
	}
}
