package core_test

// External test package: pulls in internal/wetio (which imports core) to
// assert that parallel freezing is bit-identical to serial freezing all the
// way down to the serialized file bytes.

import (
	"bytes"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"wet/internal/core"
	"wet/internal/interp"
	"wet/internal/progen"
	"wet/internal/wetio"
	"wet/internal/workload"
)

// genWET builds the WET of a random (but seed-deterministic) program.
func genWET(t testing.TB, seed int64) *core.WET {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	prog, in, err := progen.Gen(rng, progen.DefaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	st, err := interp.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := core.Build(st, interp.Options{Inputs: in})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// workloadWET builds the WET of one synthetic benchmark at scale 1.
func workloadWET(t testing.TB, name string) *core.WET {
	t.Helper()
	wl, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, in := wl.Build(1)
	st, err := interp.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := core.Build(st, interp.Options{Inputs: in})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func saveBytes(t *testing.T, w *core.WET) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := wetio.Save(&buf, w); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFreezeParallelDeterminism freezes the same deterministic build with
// Workers=1 and Workers=8 and requires identical SizeReport fields,
// identical Methods census, and identical wetio-serialized bytes.
func TestFreezeParallelDeterminism(t *testing.T) {
	builds := []struct {
		name  string
		build func(t testing.TB) *core.WET
	}{
		{"progen-1", func(t testing.TB) *core.WET { return genWET(t, 1) }},
		{"progen-2", func(t testing.TB) *core.WET { return genWET(t, 2) }},
		{"li", func(t testing.TB) *core.WET { return workloadWET(t, "li") }},
		{"gzip", func(t testing.TB) *core.WET { return workloadWET(t, "gzip") }},
	}
	for _, tc := range builds {
		t.Run(tc.name, func(t *testing.T) {
			serial := tc.build(t)
			repSerial := serial.Freeze(core.FreezeOptions{Workers: 1})
			parallel := tc.build(t)
			repParallel := parallel.Freeze(core.FreezeOptions{Workers: 8})
			if !reflect.DeepEqual(repSerial, repParallel) {
				t.Fatalf("reports differ:\nserial:   %+v\nparallel: %+v", repSerial, repParallel)
			}
			if !reflect.DeepEqual(repSerial.Methods, repParallel.Methods) {
				t.Fatalf("method census differs: %v vs %v", repSerial.Methods, repParallel.Methods)
			}
			b1, b8 := saveBytes(t, serial), saveBytes(t, parallel)
			if !bytes.Equal(b1, b8) {
				t.Fatalf("serialized WETs differ: %d vs %d bytes", len(b1), len(b8))
			}
		})
	}
}

// TestFreezeParallelDeterminismAblations covers the ablation freeze paths,
// whose job extraction differs from the default one.
func TestFreezeParallelDeterminismAblations(t *testing.T) {
	for _, opts := range []core.FreezeOptions{
		{NoGrouping: true},
		{AggressiveEdges: true},
		{NoShare: true, NoInfer: true},
	} {
		optsSerial, optsParallel := opts, opts
		optsSerial.Workers, optsParallel.Workers = 1, 8
		repSerial := genWET(t, 3).Freeze(optsSerial)
		repParallel := genWET(t, 3).Freeze(optsParallel)
		if !reflect.DeepEqual(repSerial, repParallel) {
			t.Fatalf("%+v: reports differ:\nserial:   %+v\nparallel: %+v", opts, repSerial, repParallel)
		}
	}
}

// TestFreezeSkipFullSizing checks that NoGrouping+SkipFullSizing skips the
// sizing-only pass (no T2Vals charge) but still yields a queryable WET.
func TestFreezeSkipFullSizing(t *testing.T) {
	w := genWET(t, 4)
	rep := w.Freeze(core.FreezeOptions{NoGrouping: true, SkipFullSizing: true, Workers: 4})
	if rep.T2Vals != 0 {
		t.Fatalf("SkipFullSizing left T2Vals=%d", rep.T2Vals)
	}
	full := genWET(t, 4).Freeze(core.FreezeOptions{NoGrouping: true, Workers: 4})
	if full.T2Vals == 0 {
		t.Fatal("sizing pass charged nothing; test program has no values")
	}
	// Grouped streams exist, so tier-2 value queries still resolve.
	for _, n := range w.Nodes {
		for pos := range n.Stmts {
			g := n.Groups[n.GroupOf[pos]]
			if g.ValMemberIndex(pos) < 0 || n.Execs == 0 {
				continue
			}
			if _, err := w.Value(n, pos, 0, core.Tier2); err != nil {
				t.Fatalf("Value at tier-2 after SkipFullSizing: %v", err)
			}
			return
		}
	}
}

// TestFreezeWorkerPoolStress exercises predictor-table pool reuse: several
// consecutive freezes on one goroutine, then independent WETs frozen
// concurrently. Run under -race (CI does) to check the worker pool.
func TestFreezeWorkerPoolStress(t *testing.T) {
	// Consecutive freezes reuse pooled tables across Freeze calls.
	for seed := int64(10); seed < 14; seed++ {
		w := genWET(t, seed)
		rep := w.Freeze(core.FreezeOptions{Workers: 4})
		if rep.T2Total() == 0 {
			t.Fatalf("seed %d: empty tier-2 report", seed)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	// Independent WETs frozen at the same time share the global pools.
	wets := make([]*core.WET, 4)
	for i := range wets {
		wets[i] = genWET(t, int64(20+i))
	}
	var wg sync.WaitGroup
	for _, w := range wets {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Freeze(core.FreezeOptions{Workers: 2})
		}()
	}
	wg.Wait()
	for i, w := range wets {
		want := genWET(t, int64(20+i)).Freeze(core.FreezeOptions{Workers: 1})
		if !reflect.DeepEqual(w.Report(), want) {
			t.Fatalf("wet %d: concurrent freeze report differs from serial", i)
		}
	}
}
