package core

import (
	"fmt"

	"wet/internal/stream"
)

// fedPart is one segment's contribution to a federated label sequence:
// either a tier-2 stream (with a lazily spawned private cursor) or a
// synthesized ramp for an inferable edge segment, whose k-th element is
// ramp+k and needs no storage at all. add is added to every value read from
// the part — it re-bases a segment's local timestamps to global time (zero
// for sequences whose stored values are already global: patterns, unique
// values, edge ordinals).
type fedPart struct {
	n    int
	add  uint32
	s    stream.Stream // nil for a synthesized ramp part
	ramp uint32        // first value of the ramp when s == nil
	cur  stream.Cursor // lazily spawned from s
}

// fedSeq federates per-epoch segment streams behind the Seq contract: one
// logical bidirectional cursor over the concatenation of all parts. Each
// fedSeq owns private per-part cursors, so the detached-cursor concurrency
// contract of the factory API carries over unchanged: any number of fedSeqs
// may traverse one frozen segmented WET concurrently. Sequential Next/Prev
// runs touch the underlying cursors without seeks; repositioning costs one
// checkpointed seek inside the target segment.
type fedSeq struct {
	parts  []fedPart
	starts []int // starts[i] = global index of parts[i]'s first element
	pos    int
}

// newFedSeq builds a federated sequence over parts (in segment order).
func newFedSeq(parts []fedPart) *fedSeq {
	starts := make([]int, len(parts)+1)
	for i := range parts {
		starts[i+1] = starts[i] + parts[i].n
	}
	return &fedSeq{parts: parts, starts: starts}
}

func (f *fedSeq) Len() int { return f.starts[len(f.parts)] }
func (f *fedSeq) Pos() int { return f.pos }

// Seek implements Seeker: it only moves the logical position; the segment
// cursor repositions (checkpointed) on the next read.
func (f *fedSeq) Seek(i int) {
	if i < 0 || i > f.Len() {
		panic(fmt.Sprintf("core: seek to %d outside [0,%d]", i, f.Len()))
	}
	f.pos = i
}

// partAt returns the index of the part containing global element i (i < Len).
func (f *fedSeq) partAt(i int) int {
	lo, hi := 0, len(f.parts)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if f.starts[mid+1] <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (f *fedSeq) Next() uint32 {
	if f.pos >= f.Len() {
		panic("core: Seq Next past end")
	}
	pi := f.partAt(f.pos)
	local := f.pos - f.starts[pi]
	f.pos++
	p := &f.parts[pi]
	if p.s == nil {
		return p.ramp + uint32(local)
	}
	if p.cur == nil {
		p.cur = p.s.NewCursor()
	}
	if p.cur.Pos() != local {
		p.cur.Seek(local)
	}
	return p.cur.Next() + p.add
}

func (f *fedSeq) Prev() uint32 {
	if f.pos == 0 {
		panic("core: Seq Prev past start")
	}
	f.pos--
	pi := f.partAt(f.pos)
	local := f.pos - f.starts[pi]
	p := &f.parts[pi]
	if p.s == nil {
		return p.ramp + uint32(local)
	}
	if p.cur == nil {
		p.cur = p.s.NewCursor()
	}
	// Position the segment cursor just past the element so its Prev yields
	// it; a sequential backward run then needs no further seeks.
	if p.cur.Pos() != local+1 {
		p.cur.Seek(local + 1)
	}
	return p.cur.Prev() + p.add
}

// NextN batches a forward run across segment boundaries: one part lookup
// and at most one (checkpointed) cursor reposition per segment crossed, with
// the inner decode delegated to the segment cursor's batched stepping.
func (f *fedSeq) NextN(dst []uint32) int {
	total := f.Len() - f.pos
	if total > len(dst) {
		total = len(dst)
	}
	if total <= 0 {
		return 0
	}
	for done := 0; done < total; {
		pi := f.partAt(f.pos)
		local := f.pos - f.starts[pi]
		p := &f.parts[pi]
		take := p.n - local
		if rem := total - done; take > rem {
			take = rem
		}
		out := dst[done : done+take]
		if p.s == nil {
			base := p.ramp + uint32(local)
			for i := range out {
				out[i] = base + uint32(i)
			}
		} else {
			if p.cur == nil {
				p.cur = p.s.NewCursor()
			}
			if p.cur.Pos() != local {
				p.cur.Seek(local)
			}
			p.cur.NextN(out)
			if p.add != 0 {
				for i := range out {
					out[i] += p.add
				}
			}
		}
		done += take
		f.pos += take
	}
	return total
}

// PrevN batches a backward run the same way (dst in traversal order): each
// segment is entered with a single checkpointed seek to its right edge
// instead of one per element, so Prev-heavy scans stop replaying from the
// segment start at every step.
func (f *fedSeq) PrevN(dst []uint32) int {
	total := f.pos
	if total > len(dst) {
		total = len(dst)
	}
	if total <= 0 {
		return 0
	}
	for done := 0; done < total; {
		pi := f.partAt(f.pos - 1)
		local := f.pos - f.starts[pi] // elements of this part below f.pos
		p := &f.parts[pi]
		take := local
		if rem := total - done; take > rem {
			take = rem
		}
		out := dst[done : done+take]
		if p.s == nil {
			base := p.ramp + uint32(local)
			for i := range out {
				out[i] = base - uint32(i+1)
			}
		} else {
			if p.cur == nil {
				p.cur = p.s.NewCursor()
			}
			if p.cur.Pos() != local {
				p.cur.Seek(local)
			}
			p.cur.PrevN(out)
			if p.add != 0 {
				for i := range out {
					out[i] += p.add
				}
			}
		}
		done += take
		f.pos -= take
	}
	return total
}

var (
	_ Seq     = (*fedSeq)(nil)
	_ Seeker  = (*fedSeq)(nil)
	_ BulkSeq = (*fedSeq)(nil)
)

// tsFed returns a federated cursor over n's timestamp segments, re-basing
// each segment's local timestamps by its epoch base.
func (w *WET) tsFed(n *Node) Seq {
	parts := make([]fedPart, len(n.TSSegs))
	for i, sg := range n.TSSegs {
		parts[i] = fedPart{n: sg.N, add: uint32(sg.Epoch) * w.EpochTS, s: sg.S}
	}
	return newFedSeq(parts)
}

// patFed returns a federated cursor over g's pattern segments. Pattern
// entries index the run-global unique-value table, so no re-basing applies.
func (w *WET) patFed(g *Group) Seq {
	parts := make([]fedPart, len(g.PatSegs))
	for i, sg := range g.PatSegs {
		parts[i] = fedPart{n: sg.N, s: sg.S}
	}
	return newFedSeq(parts)
}

// uvalFed returns a federated cursor over the unique values of
// g.ValMembers[mi]. Each segment holds the values first observed in its
// epoch, so the concatenation is the run-global discovery order.
func (w *WET) uvalFed(g *Group, mi int) Seq {
	segs := g.UValSegs[mi]
	parts := make([]fedPart, len(segs))
	for i, sg := range segs {
		parts[i] = fedPart{n: sg.N, s: sg.S}
	}
	return newFedSeq(parts)
}

// edgeFed returns federated (dst, src) cursors over e's label segments:
// inferable segments synthesize their ordinal ramp, shared segments read the
// representative edge's streams, and diagonal segments read the destination
// stream on both sides (through independent cursors).
func (w *WET) edgeFed(e *Edge) (dst, src Seq) {
	dp := make([]fedPart, len(e.Segs))
	sp := make([]fedPart, len(e.Segs))
	for i, sg := range e.Segs {
		if sg.Inferable {
			dp[i] = fedPart{n: sg.N, ramp: sg.RampBase}
			sp[i] = fedPart{n: sg.N, ramp: sg.RampBase}
			continue
		}
		ds, ss, diag := sg.DstS, sg.SrcS, sg.Diagonal
		if sg.SharedWith >= 0 {
			rs := w.Edges[sg.SharedWith].Segs[sg.SharedSeg]
			ds, ss, diag = rs.DstS, rs.SrcS, rs.Diagonal
		}
		dp[i] = fedPart{n: sg.N, s: ds}
		if diag {
			sp[i] = fedPart{n: sg.N, s: ds}
		} else {
			sp[i] = fedPart{n: sg.N, s: ss}
		}
	}
	return newFedSeq(dp), newFedSeq(sp)
}
