package core

import (
	"context"
	"fmt"

	"wet/internal/interp"
	"wet/internal/stream"
)

// RestoreNode rebuilds the static side of a WET node (statement list,
// positions, value groups) for a path, as deserializers need: the dynamic
// labels are attached afterwards. It mirrors Builder.node.
func RestoreNode(st *interp.Static, id, fn int, pathID int64) (*Node, error) {
	blocks, err := st.Paths[fn].Blocks(pathID)
	if err != nil {
		return nil, err
	}
	f := st.Prog.Funcs[fn]
	n := &Node{ID: id, Fn: fn, PathID: pathID, Blocks: blocks, stmtPos: map[int]int{}}
	for _, bid := range blocks {
		for _, s := range f.Blocks[bid].Stmts {
			n.stmtPos[s.ID] = len(n.Stmts)
			n.Stmts = append(n.Stmts, s)
		}
	}
	n.InEdges = make([][]int, len(n.Stmts))
	n.OutEdges = make([][]int, len(n.Stmts))
	formGroups(n)
	return n, nil
}

// RestoreUniqueKeys records the unique-input-tuple count of a deserialized
// group. The keys map itself is not persisted, and the empty map formGroups
// installed must not shadow the restored count (UniqueKeys prefers the map
// when present), so it is dropped here.
func (g *Group) RestoreUniqueKeys(n int) {
	g.keys = nil
	g.restoredKeys = n
}

// RestoreIndexes rebuilds the derived indexes (statement occurrences and
// edge adjacency) of a deserialized WET and marks it frozen.
func (w *WET) RestoreIndexes(rep *SizeReport) {
	w.StmtOcc = make([][]StmtRef, len(w.Prog.Stmts))
	for _, n := range w.Nodes {
		for pos, s := range n.Stmts {
			w.StmtOcc[s.ID] = append(w.StmtOcc[s.ID], StmtRef{Node: n.ID, Pos: pos})
		}
	}
	for i, e := range w.Edges {
		w.Nodes[e.DstNode].InEdges[e.DstPos] = append(w.Nodes[e.DstNode].InEdges[e.DstPos], i)
		w.Nodes[e.SrcNode].OutEdges[e.SrcPos] = append(w.Nodes[e.SrcNode].OutEdges[e.SrcPos], i)
	}
	w.frozen = true
	w.report = rep
	if rep != nil {
		// Checkpoint indexes are rebuilt by stream loading, not persisted;
		// refresh the report's view of their cost.
		rep.CheckpointBytes = w.checkpointBytes()
	}
}

// MaterializeTier1 rehydrates the tier-1 slices of a segmented WET by
// draining the federated tier-2 cursors once: global node timestamps,
// run-global patterns and unique values, and full edge label pairs (ramp
// and shared segments are materialized into plain labels). It is the
// segmented counterpart of LoadOptions.RestoreTier1's per-stream draining;
// wetio calls it after a v4 parse when tier-1 access was requested. A
// deferred-decode failure on a lazily opened stream surfaces as a
// *stream.DecodeError, not a panic.
func (w *WET) MaterializeTier1() error { return w.MaterializeTier1N(1) }

// MaterializeTier1N is MaterializeTier1 fanned over workers goroutines
// (<= 0: GOMAXPROCS). Each node's and each edge's drain is an independent
// job writing only that object's tier-1 fields, so the result is identical
// at any width; drains read batched (one segment-cursor reposition per
// segment instead of per element).
func (w *WET) MaterializeTier1N(workers int) error {
	return w.MaterializeTier1Ctx(context.Background(), workers)
}

// MaterializeTier1Ctx is MaterializeTier1N with cooperative cancellation
// between per-node/per-edge drain jobs; context.Cause is returned.
func (w *WET) MaterializeTier1Ctx(ctx context.Context, workers int) error {
	drain := func(s Seq) []uint32 {
		out := make([]uint32, s.Len())
		if sk, ok := s.(Seeker); ok {
			sk.Seek(0)
		}
		SeqNextN(s, out)
		return out
	}
	var jobs []func(sc *stream.Scratch)
	for _, n := range w.Nodes {
		if n.TSSegs == nil {
			continue
		}
		n := n
		jobs = append(jobs, func(*stream.Scratch) {
			n.TS = drain(w.ApproxTSSeq(n, Tier2))
			for _, g := range n.Groups {
				if g.Dropped {
					continue // budget-dropped: no streams to drain
				}
				g.Pattern = drain(w.PatternSeq(g, Tier2))
				g.UVals = make([][]uint32, len(g.ValMembers))
				for mi := range g.UVals {
					g.UVals[mi] = drain(w.UValSeq(g, mi, Tier2))
				}
			}
		})
	}
	for _, e := range w.Edges {
		if e.Inferable || e.Dropped || e.Segs == nil {
			continue
		}
		e := e
		jobs = append(jobs, func(*stream.Scratch) {
			d, s := w.EdgeLabels(e, Tier2)
			e.DstOrd = drain(d)
			e.SrcOrd = drain(s)
		})
	}
	if w.Conc != nil {
		jobs = append(jobs, func(*stream.Scratch) { w.Conc.materializeTier1() })
	}
	return runJobsCtx(ctx, jobs, workers)
}

// SanitizeSalvaged repairs the invariants RestoreIndexes and the query
// layer rely on after a salvage load dropped node records: control-flow
// successor/predecessor lists may point at nodes past the surviving prefix
// (the trace walker indexes w.Nodes by these entries directly), and the
// first/last node pointers may be gone. Call it on a WET holding the
// salvaged node/edge prefix, before RestoreIndexes. It returns a human
// readable line per repair applied.
func (w *WET) SanitizeSalvaged() []string {
	var adj []string
	n := len(w.Nodes)
	for _, node := range w.Nodes {
		node.CFNext = dropOutOfRange(node.CFNext, n)
		node.CFPrev = dropOutOfRange(node.CFPrev, n)
	}
	if w.FirstNode < 0 || w.FirstNode >= n {
		adj = append(adj, fmt.Sprintf("first node %d not recovered; reset to 0", w.FirstNode))
		w.FirstNode = 0
	}
	if w.LastNode < 0 || w.LastNode >= n {
		adj = append(adj, fmt.Sprintf("last node %d not recovered; reset to %d", w.LastNode, n-1))
		w.LastNode = n - 1
	}
	return adj
}

func dropOutOfRange(s []int, n int) []int {
	out := s[:0]
	for _, v := range s {
		if v >= 0 && v < n {
			out = append(out, v)
		}
	}
	return out
}
