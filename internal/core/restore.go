package core

import (
	"wet/internal/interp"
)

// RestoreNode rebuilds the static side of a WET node (statement list,
// positions, value groups) for a path, as deserializers need: the dynamic
// labels are attached afterwards. It mirrors Builder.node.
func RestoreNode(st *interp.Static, id, fn int, pathID int64) (*Node, error) {
	blocks, err := st.Paths[fn].Blocks(pathID)
	if err != nil {
		return nil, err
	}
	f := st.Prog.Funcs[fn]
	n := &Node{ID: id, Fn: fn, PathID: pathID, Blocks: blocks, stmtPos: map[int]int{}}
	for _, bid := range blocks {
		for _, s := range f.Blocks[bid].Stmts {
			n.stmtPos[s.ID] = len(n.Stmts)
			n.Stmts = append(n.Stmts, s)
		}
	}
	n.InEdges = make([][]int, len(n.Stmts))
	n.OutEdges = make([][]int, len(n.Stmts))
	formGroups(n)
	return n, nil
}

// RestoreUniqueKeys records the unique-input-tuple count of a deserialized
// group (the keys map itself is not persisted).
func (g *Group) RestoreUniqueKeys(n int) { g.restoredKeys = n }

// RestoreIndexes rebuilds the derived indexes (statement occurrences and
// edge adjacency) of a deserialized WET and marks it frozen.
func (w *WET) RestoreIndexes(rep *SizeReport) {
	w.StmtOcc = make([][]StmtRef, len(w.Prog.Stmts))
	for _, n := range w.Nodes {
		for pos, s := range n.Stmts {
			w.StmtOcc[s.ID] = append(w.StmtOcc[s.ID], StmtRef{Node: n.ID, Pos: pos})
		}
	}
	for i, e := range w.Edges {
		w.Nodes[e.DstNode].InEdges[e.DstPos] = append(w.Nodes[e.DstNode].InEdges[e.DstPos], i)
		w.Nodes[e.SrcNode].OutEdges[e.SrcPos] = append(w.Nodes[e.SrcNode].OutEdges[e.SrcPos], i)
	}
	w.frozen = true
	w.report = rep
}
