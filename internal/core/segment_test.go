package core_test

import (
	"hash/fnv"
	"testing"

	"wet/internal/core"
	"wet/internal/interp"
	"wet/internal/query"
	"wet/internal/workload"
)

// buildBoth constructs the single-epoch and streaming WETs of one workload
// run. The single-epoch build keeps tier-1 so it can double as the oracle.
func buildBoth(t *testing.T, name string, targetStmts uint64, epochTS uint32, workers int) (single, streamed *core.WET) {
	t.Helper()
	wl, err := workload.ByName(name)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	scale, err := workload.ScaleFor(wl, targetStmts)
	if err != nil {
		t.Fatalf("ScaleFor: %v", err)
	}
	build := func(opts core.FreezeOptions) *core.WET {
		prog, in := wl.Build(scale)
		st, err := interp.Analyze(prog)
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		w, _, _, err := core.BuildStreaming(st, interp.Options{Inputs: in}, opts)
		if err != nil {
			t.Fatalf("BuildStreaming(EpochTS=%d): %v", opts.EpochTS, err)
		}
		return w
	}
	single = build(core.FreezeOptions{Workers: workers})
	streamed = build(core.FreezeOptions{EpochTS: epochTS, Workers: workers})
	return single, streamed
}

func drainSeq(s core.Seq) []uint32 {
	out := make([]uint32, s.Len())
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

func eqU32(t *testing.T, what string, a, b []uint32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: element %d: %d vs %d", what, i, a[i], b[i])
		}
	}
}

// TestStreamingEquivalence is the property test of the epoch pipeline: a
// streamed WET and a single-epoch WET of the same run must agree on every
// label sequence and every query result. A small epoch size forces many
// epochs (including a trailing partial one).
func TestStreamingEquivalence(t *testing.T) {
	for _, name := range []string{"li", "gzip", "mcf"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			single, streamed := buildBoth(t, name, 30000, 1<<8, 0)

			if single.Time != streamed.Time {
				t.Fatalf("time: %d vs %d", single.Time, streamed.Time)
			}
			if !streamed.Segmented() || streamed.Epochs < 2 {
				t.Fatalf("streamed WET has %d epochs at size %d (time %d); want >= 2", streamed.Epochs, streamed.EpochTS, streamed.Time)
			}
			if len(single.Nodes) != len(streamed.Nodes) || len(single.Edges) != len(streamed.Edges) {
				t.Fatalf("shape: %d/%d nodes, %d/%d edges", len(single.Nodes), len(streamed.Nodes), len(single.Edges), len(streamed.Edges))
			}

			// Label sequences, via the same cursor factories queries use.
			for i, n1 := range single.Nodes {
				n2 := streamed.Nodes[i]
				if n1.Execs != n2.Execs {
					t.Fatalf("node %d execs %d vs %d", i, n1.Execs, n2.Execs)
				}
				eqU32(t, "node ts", drainSeq(single.TSSeq(n1, core.Tier2)), drainSeq(streamed.TSSeq(n2, core.Tier2)))
				for gi, g1 := range n1.Groups {
					g2 := n2.Groups[gi]
					if g1.UniqueKeys() != g2.UniqueKeys() {
						t.Fatalf("node %d group %d keys %d vs %d", i, gi, g1.UniqueKeys(), g2.UniqueKeys())
					}
					eqU32(t, "pattern", drainSeq(single.PatternSeq(g1, core.Tier2)), drainSeq(streamed.PatternSeq(g2, core.Tier2)))
					for mi := range g1.ValMembers {
						eqU32(t, "uvals", drainSeq(single.UValSeq(g1, mi, core.Tier2)), drainSeq(streamed.UValSeq(g2, mi, core.Tier2)))
					}
				}
			}
			for i, e1 := range single.Edges {
				e2 := streamed.Edges[i]
				if e1.Count != e2.Count || e1.Kind != e2.Kind || e1.SrcNode != e2.SrcNode || e1.DstNode != e2.DstNode {
					t.Fatalf("edge %d identity mismatch", i)
				}
				if e1.Inferable != e2.Inferable {
					t.Fatalf("edge %d inferable %v vs %v", i, e1.Inferable, e2.Inferable)
				}
				if e1.Inferable {
					continue
				}
				d1, s1 := single.EdgeLabels(e1, core.Tier2)
				d2, s2 := streamed.EdgeLabels(e2, core.Tier2)
				eqU32(t, "edge dst", drainSeq(d1), drainSeq(d2))
				eqU32(t, "edge src", drainSeq(s1), drainSeq(s2))
			}

			// Backward traversal through the federated cursor.
			n0 := streamed.Nodes[0]
			fwd := drainSeq(streamed.TSSeq(n0, core.Tier2))
			bs := streamed.TSSeq(n0, core.Tier2)
			if sk, ok := bs.(core.Seeker); ok {
				sk.Seek(bs.Len())
			} else {
				for bs.Pos() < bs.Len() {
					bs.Next()
				}
			}
			for i := len(fwd) - 1; i >= 0; i-- {
				if v := bs.Prev(); v != fwd[i] {
					t.Fatalf("backward ts walk: element %d: %d vs %d", i, v, fwd[i])
				}
			}

			// Structural consistency of the segmented representation.
			if err := streamed.Validate(); err != nil {
				t.Fatalf("Validate(streamed): %v", err)
			}

			// Query equivalence: control flow, values, addresses, slices.
			digest := func(w *core.WET) uint64 {
				h := fnv.New64a()
				var buf [4]byte
				emit := func(id int) {
					buf[0], buf[1], buf[2], buf[3] = byte(id), byte(id>>8), byte(id>>16), byte(id>>24)
					h.Write(buf[:])
				}
				query.ExtractCF(w, core.Tier2, true, emit)
				query.ExtractCF(w, core.Tier2, false, emit)
				for _, st := range w.Prog.Stmts {
					if st.Op.HasDef() && st.Dest >= 0 {
						if _, err := query.ValueTrace(w, core.Tier2, st.ID, func(s query.Sample) {
							emit(int(s.TS))
							emit(int(uint32(s.Value)))
						}); err != nil {
							t.Fatalf("ValueTrace(%d): %v", st.ID, err)
						}
					}
					if _, err := query.AddressTrace(w, core.Tier2, st.ID, func(s query.Sample) {
						emit(int(s.TS))
						emit(int(uint32(s.Value)))
					}); err == nil {
						emit(1)
					}
				}
				return h.Sum64()
			}
			if d1, d2 := digest(single), digest(streamed); d1 != d2 {
				t.Fatalf("query digest: %#x vs %#x", d1, d2)
			}

			sliceDigest := func(w *core.WET) (int, int) {
				in, err := query.InstanceOfTS(w, core.Tier2, w.Nodes[w.LastNode].Stmts[0].ID, w.Time)
				if err != nil {
					t.Fatalf("InstanceOfTS: %v", err)
				}
				bwd, err := query.BackwardSlice(w, core.Tier2, in, 500)
				if err != nil {
					t.Fatalf("BackwardSlice: %v", err)
				}
				fw, err := query.ForwardSlice(w, core.Tier2, query.Instance{Node: w.FirstNode}, 500)
				if err != nil {
					t.Fatalf("ForwardSlice: %v", err)
				}
				return len(bwd.Instances), len(fw.Instances)
			}
			b1, f1 := sliceDigest(single)
			b2, f2 := sliceDigest(streamed)
			if b1 != b2 || f1 != f2 {
				t.Fatalf("slices: backward %d vs %d, forward %d vs %d", b1, b2, f1, f2)
			}
		})
	}
}

// TestStreamingDeterminism: the streamed representation must not depend on
// the worker count — stream bytes, segment structure, and report all agree
// between a serial and a parallel build.
func TestStreamingDeterminism(t *testing.T) {
	_, w1 := buildBoth(t, "li", 20000, 1<<8, 1)
	_, w8 := buildBoth(t, "li", 20000, 1<<8, 8)
	r1, r8 := w1.Report(), w8.Report()
	if r1.T2TS != r8.T2TS || r1.T2Vals != r8.T2Vals || r1.T2Edges != r8.T2Edges ||
		r1.InferableEdges != r8.InferableEdges || r1.SharedEdges != r8.SharedEdges || r1.OwnedEdges != r8.OwnedEdges {
		t.Fatalf("reports differ between worker counts:\n%v\nvs\n%v", r1, r8)
	}
	for i, n1 := range w1.Nodes {
		n8 := w8.Nodes[i]
		if len(n1.TSSegs) != len(n8.TSSegs) {
			t.Fatalf("node %d segment count %d vs %d", i, len(n1.TSSegs), len(n8.TSSegs))
		}
		for si, sg := range n1.TSSegs {
			if sg.Epoch != n8.TSSegs[si].Epoch || sg.N != n8.TSSegs[si].N || sg.S.SizeBits() != n8.TSSegs[si].S.SizeBits() || sg.S.Name() != n8.TSSegs[si].S.Name() {
				t.Fatalf("node %d ts segment %d differs between worker counts", i, si)
			}
		}
	}
	for i, e1 := range w1.Edges {
		e8 := w8.Edges[i]
		if e1.Inferable != e8.Inferable || len(e1.Segs) != len(e8.Segs) {
			t.Fatalf("edge %d shape differs between worker counts", i)
		}
		for si, sg := range e1.Segs {
			s8 := e8.Segs[si]
			if sg.Inferable != s8.Inferable || sg.SharedWith != s8.SharedWith || sg.SharedSeg != s8.SharedSeg || sg.RampBase != s8.RampBase || sg.N != s8.N {
				t.Fatalf("edge %d segment %d differs between worker counts", i, si)
			}
		}
	}
}

// TestStreamingEpochZeroFallback: EpochTS=0 must take the exact single-epoch
// path — unsegmented output with a report identical to Build+Freeze.
func TestStreamingEpochZeroFallback(t *testing.T) {
	wl, err := workload.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	prog, in := wl.Build(3)
	st, err := interp.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	w, rep, _, err := core.BuildStreaming(st, interp.Options{Inputs: in}, core.FreezeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if w.Segmented() || w.EpochTS != 0 {
		t.Fatalf("EpochTS=0 build is segmented")
	}
	prog2, in2 := wl.Build(3)
	st2, err := interp.Analyze(prog2)
	if err != nil {
		t.Fatal(err)
	}
	w2, _, err := core.Build(st2, interp.Options{Inputs: in2})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := w2.Freeze(core.FreezeOptions{})
	if rep.T2Total() != rep2.T2Total() || rep.T1Total() != rep2.T1Total() || rep.OrigTotal() != rep2.OrigTotal() {
		t.Fatalf("EpochTS=0 report differs from Build+Freeze:\n%v\nvs\n%v", rep, rep2)
	}
}

// TestStreamingRejectsAblations: the value-grouping ablations are
// single-epoch only.
func TestStreamingRejectsAblations(t *testing.T) {
	wl, _ := workload.ByName("li")
	prog, _ := wl.Build(1)
	st, err := interp.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewStreamingBuilder(st, core.FreezeOptions{EpochTS: 64, NoGrouping: true}); err == nil {
		t.Fatal("NoGrouping accepted by streaming builder")
	}
	if _, err := core.NewStreamingBuilder(st, core.FreezeOptions{}); err == nil {
		t.Fatal("EpochTS=0 accepted by streaming builder")
	}
}
