package core

import "fmt"

// CertifyFunc is a semantic certifier for a WET: it checks the trace against
// the static semantics of its program and returns an error describing the
// first violations when the trace is not a possible execution.
//
// The concrete certifier lives in internal/sanalysis (which imports core, so
// core cannot call it directly); importing that package registers it here.
type CertifyFunc func(w *WET) error

var certifier CertifyFunc

// RegisterCertifier installs the semantic certifier. Called from an init in
// the package providing it; the last registration wins.
func RegisterCertifier(f CertifyFunc) { certifier = f }

// Certify runs the registered semantic certifier over the WET.
func (w *WET) Certify() error {
	if certifier == nil {
		return fmt.Errorf("core: no semantic certifier registered (import wet/internal/sanalysis)")
	}
	return certifier(w)
}

// FreezeCertified freezes the WET and then certifies it semantically,
// failing the build if the trace violates the static semantics of its
// program. It is the option-gated build-time hook for pipelines that save
// WETs for later consumption: a certified file needs no semantic re-check
// after a clean byte-level verify.
func (w *WET) FreezeCertified(opts FreezeOptions) (*SizeReport, error) {
	rep := w.Freeze(opts)
	if err := w.Certify(); err != nil {
		return rep, fmt.Errorf("core: post-freeze certification failed: %w", err)
	}
	return rep, nil
}
