// Package sequitur implements the Sequitur grammar-inference compressor
// (Nevill-Manning & Witten, reference [16] of the paper). Larus used it to
// compress whole-program paths [14] and Chilimbi for address traces [7].
// WET's §4 argues that, although Sequitur output can be traversed in both
// directions, value-predictor compressors beat it on value streams; this
// package exists as the baseline for that ablation.
package sequitur

import "fmt"

// symbol is a node in a rule's doubly linked symbol list. Exactly one of
// (guardOf, r, terminal) roles applies: guard nodes delimit a rule's
// circular list, r != nil marks a nonterminal reference, otherwise the node
// is a terminal carrying term.
type symbol struct {
	next, prev *symbol
	term       uint32
	r          *rule
	guardOf    *rule
}

func (s *symbol) isGuard() bool   { return s.guardOf != nil }
func (s *symbol) isNonTerm() bool { return s.r != nil }

type rule struct {
	guard *symbol
	refs  int
	id    int
}

func (r *rule) first() *symbol { return r.guard.next }
func (r *rule) last() *symbol  { return r.guard.prev }

// digram is a content key for two adjacent symbols.
type digram struct{ a, b uint64 }

func symKey(s *symbol) uint64 {
	if s.isNonTerm() {
		return 1<<32 | uint64(s.r.id)
	}
	return uint64(s.term)
}

// Grammar is a Sequitur grammar; rule 0 derives the whole input.
type Grammar struct {
	rules   []*rule
	digrams map[digram]*symbol
	nextID  int
	live    int // number of live rules (excluding inlined ones)
}

// Build infers the Sequitur grammar of vals.
func Build(vals []uint32) *Grammar {
	g := &Grammar{digrams: map[digram]*symbol{}}
	s := g.newRule()
	for _, v := range vals {
		g.insertAfter(s.last(), &symbol{term: v})
		if s.last().prev != s.guard {
			g.check(s.last().prev)
		}
	}
	return g
}

func (g *Grammar) newRule() *rule {
	r := &rule{id: g.nextID}
	g.nextID++
	guard := &symbol{guardOf: r}
	guard.next, guard.prev = guard, guard
	r.guard = guard
	g.rules = append(g.rules, r)
	g.live++
	return r
}

// join links left-right, dropping left's stale digram from the index.
func (g *Grammar) join(left, right *symbol) {
	if left.next != nil {
		g.deleteDigram(left)
	}
	left.next = right
	right.prev = left
}

// insertAfter places n after s.
func (g *Grammar) insertAfter(s *symbol, n *symbol) {
	g.join(n, s.next)
	g.join(s, n)
}

// deleteDigram removes the digram starting at s from the index if it is the
// indexed occurrence.
func (g *Grammar) deleteDigram(s *symbol) {
	if s.isGuard() || s.next == nil || s.next.isGuard() {
		return
	}
	k := digram{symKey(s), symKey(s.next)}
	if g.digrams[k] == s {
		delete(g.digrams, k)
	}
}

// remove unlinks s from its list, maintaining the digram index and rule
// reference counts.
func (g *Grammar) remove(s *symbol) {
	g.join(s.prev, s.next)
	if !s.isGuard() {
		g.deleteDigram(s)
		if s.isNonTerm() {
			s.r.refs--
		}
	}
}

// check enforces digram uniqueness for the digram starting at s.
func (g *Grammar) check(s *symbol) bool {
	if s.isGuard() || s.next.isGuard() {
		return false
	}
	k := digram{symKey(s), symKey(s.next)}
	found, ok := g.digrams[k]
	if !ok {
		g.digrams[k] = s
		return false
	}
	if found.next == s || s.next == found {
		return false // overlapping occurrence (e.g. aaa)
	}
	g.match(s, found)
	return true
}

// match handles a repeated digram: reuse an existing rule whose whole right
// side is the digram, or create a new rule and substitute both occurrences.
func (g *Grammar) match(s, found *symbol) {
	var r *rule
	if found.prev.isGuard() && found.next.next.isGuard() {
		r = found.prev.guardOf
		g.substitute(s, r)
	} else {
		r = g.newRule()
		g.insertAfter(r.last(), g.copySym(s))
		g.insertAfter(r.last(), g.copySym(s.next))
		g.substitute(found, r)
		g.substitute(s, r)
		if r.guard != nil {
			g.digrams[digram{symKey(r.first()), symKey(r.first().next)}] = r.first()
		}
	}
	// substitute can recurse into match for the digrams it creates, and that
	// recursion may leave r itself referenced once and inline it — in which
	// case r is dead (guard nil) and there is nothing left to maintain here.
	if r.guard == nil {
		return
	}
	// Rule utility: inline rules referenced once. Both digram symbols can
	// reference rules whose remaining occurrence is now inside r (the
	// substitution removed their occurrence without adding one in the reuse
	// branch), so the last symbol needs the same treatment as the first.
	if r.first().isNonTerm() && r.first().r.refs == 1 {
		g.expand(r.first())
	}
	if r.last().isNonTerm() && r.last().r.refs == 1 {
		g.expand(r.last())
	}
}

func (g *Grammar) copySym(s *symbol) *symbol {
	if s.isNonTerm() {
		s.r.refs++
		return &symbol{r: s.r}
	}
	return &symbol{term: s.term}
}

// substitute replaces the digram starting at s with a reference to r.
func (g *Grammar) substitute(s *symbol, r *rule) {
	q := s.prev
	g.remove(s)
	g.remove(q.next)
	r.refs++
	g.insertAfter(q, &symbol{r: r})
	if !g.check(q) {
		g.check(q.next)
	}
}

// expand inlines the once-referenced rule at occurrence s.
func (g *Grammar) expand(s *symbol) {
	left, right := s.prev, s.next
	r := s.r
	f, l := r.first(), r.last()
	g.deleteDigram(s)
	s.r.refs--
	g.join(left, f)
	g.join(l, right)
	g.digrams[digram{symKey(l), symKey(l.next)}] = l
	r.guard = nil // dead
	g.live--
}

// Symbols returns the total number of symbols on all live rule right sides.
func (g *Grammar) Symbols() int {
	n := 0
	for _, r := range g.rules {
		if r.guard == nil {
			continue
		}
		for s := r.first(); !s.isGuard(); s = s.next {
			n++
		}
	}
	return n
}

// Rules returns the number of live rules.
func (g *Grammar) Rules() int { return g.live }

// SizeBits charges 33 bits per grammar symbol (flag + 32-bit terminal or
// rule id), matching the per-entry accounting of the predictor streams.
func (g *Grammar) SizeBits() uint64 { return uint64(g.Symbols()) * 33 }

// Expand regenerates the original stream from rule 0.
func (g *Grammar) Expand() []uint32 {
	var out []uint32
	var walk func(r *rule)
	walk = func(r *rule) {
		for s := r.first(); !s.isGuard(); s = s.next {
			if s.isNonTerm() {
				walk(s.r)
			} else {
				out = append(out, s.term)
			}
		}
	}
	walk(g.rules[0])
	return out
}

// Validate checks grammar invariants (for tests): reference counts match
// actual occurrences and every live non-root rule is referenced at least
// twice.
func (g *Grammar) Validate() error {
	counts := map[int]int{}
	for _, r := range g.rules {
		if r.guard == nil {
			continue
		}
		for s := r.first(); !s.isGuard(); s = s.next {
			if s.isNonTerm() {
				counts[s.r.id]++
			}
		}
	}
	for _, r := range g.rules {
		if r.guard == nil {
			continue
		}
		if r.id == 0 {
			continue
		}
		if counts[r.id] != r.refs {
			return fmt.Errorf("sequitur: rule %d refs=%d actual=%d", r.id, r.refs, counts[r.id])
		}
		if counts[r.id] < 2 {
			return fmt.Errorf("sequitur: rule %d referenced %d times", r.id, counts[r.id])
		}
	}
	return nil
}
