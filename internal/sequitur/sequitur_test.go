package sequitur

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func expandEquals(t *testing.T, vals []uint32) *Grammar {
	t.Helper()
	g := Build(vals)
	got := g.Expand()
	if len(got) != len(vals) {
		t.Fatalf("Expand: %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("Expand[%d] = %d, want %d", i, got[i], vals[i])
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestClassicExample(t *testing.T) {
	// "abcabc" must produce a rule for "abc" (directly or via digram rules).
	vals := []uint32{'a', 'b', 'c', 'a', 'b', 'c'}
	g := expandEquals(t, vals)
	if g.Rules() < 2 {
		t.Fatalf("no rule inferred for repeated substring; rules=%d", g.Rules())
	}
	if g.Symbols() >= len(vals) {
		t.Fatalf("grammar has %d symbols, input %d — no compression", g.Symbols(), len(vals))
	}
}

func TestRepeatedSymbolRuns(t *testing.T) {
	vals := make([]uint32, 100)
	for i := range vals {
		vals[i] = 7
	}
	g := expandEquals(t, vals)
	if g.Symbols() > 20 {
		t.Fatalf("run of 100 identical symbols kept %d grammar symbols", g.Symbols())
	}
}

func TestPeriodicCompressesWell(t *testing.T) {
	pat := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	var vals []uint32
	for i := 0; i < 128; i++ {
		vals = append(vals, pat...)
	}
	g := expandEquals(t, vals)
	if g.SizeBits() > uint64(len(vals))*33/8 {
		t.Fatalf("periodic: %d bits for %d values", g.SizeBits(), len(vals))
	}
}

func TestRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]uint32, 2000)
	for i := range vals {
		vals[i] = uint32(rng.Intn(50))
	}
	expandEquals(t, vals)
}

// TestRuleUtilityBothSymbols pins a quick.Check-found input where the
// second symbol of a substituted digram referenced a rule whose count
// dropped to 1: the utility check used to inspect only the first symbol,
// leaving a once-referenced rule alive (and, via recursive matches, could
// even dereference a rule inlined out from under match).
func TestRuleUtilityBothSymbols(t *testing.T) {
	raw := []byte{
		0xad, 0x2a, 0xc6, 0x3f, 0x11, 0xe8, 0x70, 0xd0, 0x8d, 0xa9, 0xbd,
		0x65, 0xea, 0x17, 0x1e, 0xac, 0x06, 0xd2, 0x43, 0x07, 0x4e, 0xb2,
		0x90, 0x19, 0x18, 0x8f, 0x62, 0x5d, 0x40, 0xc8, 0xd5, 0xbb, 0xfe, 0x2c,
	}
	vals := make([]uint32, len(raw))
	for i, b := range raw {
		vals[i] = uint32(b % 8)
	}
	expandEquals(t, vals)
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		vals := make([]uint32, len(raw))
		for i, b := range raw {
			vals[i] = uint32(b % 8) // small alphabet stresses digram machinery
		}
		g := Build(vals)
		got := g.Expand()
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	expandEquals(t, nil)
	expandEquals(t, []uint32{9})
	expandEquals(t, []uint32{9, 9})
}
