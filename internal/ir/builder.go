package ir

import "fmt"

// FuncBuilder constructs one function with structured control flow. It keeps
// a "current block" cursor; plain emits append to it, and the structured
// combinators (If, While, For, Switch) create and wire blocks. Workloads use
// it as a tiny front end so programs read like source code.
type FuncBuilder struct {
	p   *Program
	f   *Func
	cur *Block
}

// NewFunc creates a function with the given parameter count and returns its
// builder positioned at the (empty) entry block. Parameters occupy registers
// 0..params-1.
func (p *Program) NewFunc(name string, params int) *FuncBuilder {
	if p.sealed {
		panic("ir: cannot add functions after Finalize")
	}
	if _, dup := p.byName[name]; dup {
		panic(fmt.Sprintf("ir: duplicate function %q", name))
	}
	f := &Func{Name: name, Params: params, NumRegs: params}
	p.addFunc(f)
	fb := &FuncBuilder{p: p, f: f}
	fb.cur = fb.newBlock()
	return fb
}

// Func returns the function under construction.
func (fb *FuncBuilder) Func() *Func { return fb.f }

// Param returns the register holding the i-th parameter.
func (fb *FuncBuilder) Param(i int) Reg {
	if i < 0 || i >= fb.f.Params {
		panic(fmt.Sprintf("ir: %s has no parameter %d", fb.f.Name, i))
	}
	return Reg(i)
}

// NewReg allocates a fresh virtual register.
func (fb *FuncBuilder) NewReg() Reg {
	r := Reg(fb.f.NumRegs)
	fb.f.NumRegs++
	return r
}

func (fb *FuncBuilder) newBlock() *Block {
	b := &Block{ID: len(fb.f.Blocks)}
	fb.f.Blocks = append(fb.f.Blocks, b)
	return b
}

func (fb *FuncBuilder) emit(s *Stmt) {
	if fb.cur == nil {
		panic(fmt.Sprintf("ir: %s: emit after terminator with no open block", fb.f.Name))
	}
	if len(fb.cur.Stmts) > 0 && fb.cur.Term().Op.IsTerminator() {
		panic(fmt.Sprintf("ir: %s block %d: emit after terminator", fb.f.Name, fb.cur.ID))
	}
	fb.cur.Stmts = append(fb.cur.Stmts, s)
}

// terminated reports whether the current block already has a terminator.
func (fb *FuncBuilder) terminated() bool {
	return fb.cur == nil || (len(fb.cur.Stmts) > 0 && fb.cur.Term().Op.IsTerminator())
}

// --- plain statement emitters ---

// Const emits dst = v and returns dst for chaining convenience.
func (fb *FuncBuilder) Const(dst Reg, v int64) Reg {
	fb.emit(&Stmt{Op: OpConst, Dest: dst, A: Imm(v)})
	return dst
}

// ConstReg allocates a register, sets it to v, and returns it.
func (fb *FuncBuilder) ConstReg(v int64) Reg { return fb.Const(fb.NewReg(), v) }

// Bin emits dst = a op b.
func (fb *FuncBuilder) Bin(op Op, dst Reg, a, b Operand) Reg {
	if !op.IsBinary() || op == OpStore {
		panic(fmt.Sprintf("ir: Bin called with %s", op))
	}
	fb.emit(&Stmt{Op: op, Dest: dst, A: a, B: b})
	return dst
}

// Arithmetic and comparison sugar; each returns the destination register.

func (fb *FuncBuilder) Add(dst Reg, a, b Operand) Reg { return fb.Bin(OpAdd, dst, a, b) }
func (fb *FuncBuilder) Sub(dst Reg, a, b Operand) Reg { return fb.Bin(OpSub, dst, a, b) }
func (fb *FuncBuilder) Mul(dst Reg, a, b Operand) Reg { return fb.Bin(OpMul, dst, a, b) }
func (fb *FuncBuilder) Div(dst Reg, a, b Operand) Reg { return fb.Bin(OpDiv, dst, a, b) }
func (fb *FuncBuilder) Mod(dst Reg, a, b Operand) Reg { return fb.Bin(OpMod, dst, a, b) }
func (fb *FuncBuilder) And(dst Reg, a, b Operand) Reg { return fb.Bin(OpAnd, dst, a, b) }
func (fb *FuncBuilder) Or(dst Reg, a, b Operand) Reg  { return fb.Bin(OpOr, dst, a, b) }
func (fb *FuncBuilder) Xor(dst Reg, a, b Operand) Reg { return fb.Bin(OpXor, dst, a, b) }
func (fb *FuncBuilder) Shl(dst Reg, a, b Operand) Reg { return fb.Bin(OpShl, dst, a, b) }
func (fb *FuncBuilder) Shr(dst Reg, a, b Operand) Reg { return fb.Bin(OpShr, dst, a, b) }
func (fb *FuncBuilder) Eq(dst Reg, a, b Operand) Reg  { return fb.Bin(OpEq, dst, a, b) }
func (fb *FuncBuilder) Ne(dst Reg, a, b Operand) Reg  { return fb.Bin(OpNe, dst, a, b) }
func (fb *FuncBuilder) Lt(dst Reg, a, b Operand) Reg  { return fb.Bin(OpLt, dst, a, b) }
func (fb *FuncBuilder) Le(dst Reg, a, b Operand) Reg  { return fb.Bin(OpLe, dst, a, b) }
func (fb *FuncBuilder) Gt(dst Reg, a, b Operand) Reg  { return fb.Bin(OpGt, dst, a, b) }
func (fb *FuncBuilder) Ge(dst Reg, a, b Operand) Reg  { return fb.Bin(OpGe, dst, a, b) }

// Neg emits dst = -a.
func (fb *FuncBuilder) Neg(dst Reg, a Operand) Reg {
	fb.emit(&Stmt{Op: OpNeg, Dest: dst, A: a})
	return dst
}

// Not emits dst = ^a.
func (fb *FuncBuilder) Not(dst Reg, a Operand) Reg {
	fb.emit(&Stmt{Op: OpNot, Dest: dst, A: a})
	return dst
}

// Mov emits dst = a (as an add with 0, keeping the op set minimal).
func (fb *FuncBuilder) Mov(dst Reg, a Operand) Reg { return fb.Bin(OpAdd, dst, a, Imm(0)) }

// Load emits dst = Mem[addr+off].
func (fb *FuncBuilder) Load(dst Reg, addr Operand, off int64) Reg {
	fb.emit(&Stmt{Op: OpLoad, Dest: dst, A: addr, Off: off})
	return dst
}

// Store emits Mem[addr+off] = val.
func (fb *FuncBuilder) Store(addr Operand, off int64, val Operand) {
	fb.emit(&Stmt{Op: OpStore, Dest: NoReg, A: addr, Off: off, B: val})
}

// Input emits dst = <next input tape value>.
func (fb *FuncBuilder) Input(dst Reg) Reg {
	fb.emit(&Stmt{Op: OpInput, Dest: dst})
	return dst
}

// Output emits the value of a to the output sink.
func (fb *FuncBuilder) Output(a Operand) {
	fb.emit(&Stmt{Op: OpOutput, Dest: NoReg, A: a})
}

// --- control flow ---

// Call emits dst = callee(args...). The call terminates the current block;
// building continues in the fall-through continuation block. Pass NoReg for
// a void call.
func (fb *FuncBuilder) Call(dst Reg, callee string, args ...Operand) Reg {
	fb.emit(&Stmt{Op: OpCall, Dest: dst, CalleeName: callee, Args: args})
	cont := fb.newBlock()
	fb.cur.Succs = []int{cont.ID}
	fb.cur = cont
	return dst
}

// Spawn emits dst = spawn callee(args...): the callee starts running as a
// new thread and dst receives its thread id. Like Call, the spawn
// terminates the current block and building continues in the continuation.
func (fb *FuncBuilder) Spawn(dst Reg, callee string, args ...Operand) Reg {
	fb.emit(&Stmt{Op: OpSpawn, Dest: dst, CalleeName: callee, Args: args})
	cont := fb.newBlock()
	fb.cur.Succs = []int{cont.ID}
	fb.cur = cont
	return dst
}

// Join emits dst = join(tid): block until the thread named by tid halts,
// then deliver its return value to dst (pass NoReg to discard it). The join
// must be the only statement of its block, so the builder closes the
// current block with a jump first.
func (fb *FuncBuilder) Join(dst Reg, tid Operand) Reg {
	fb.soleStmtBlock(&Stmt{Op: OpJoin, Dest: dst, A: tid})
	return dst
}

// LockAcq emits lock(id): block until the named lock is free, then acquire
// it. Sole statement of its block, like Join.
func (fb *FuncBuilder) LockAcq(id Operand) {
	fb.soleStmtBlock(&Stmt{Op: OpLock, Dest: NoReg, A: id})
}

// LockRel emits unlock(id). Releases never block but still terminate the
// block (sync effects sit at path boundaries).
func (fb *FuncBuilder) LockRel(id Operand) {
	fb.emit(&Stmt{Op: OpUnlock, Dest: NoReg, A: id})
	cont := fb.newBlock()
	fb.cur.Succs = []int{cont.ID}
	fb.cur = cont
}

// LoadShared emits dst = Mem[addr+off] annotated as a shared access.
func (fb *FuncBuilder) LoadShared(dst Reg, addr Operand, off int64) Reg {
	fb.emit(&Stmt{Op: OpLoadSh, Dest: dst, A: addr, Off: off})
	return dst
}

// StoreShared emits Mem[addr+off] = val annotated as a shared access.
func (fb *FuncBuilder) StoreShared(addr Operand, off int64, val Operand) {
	fb.emit(&Stmt{Op: OpStoreSh, Dest: NoReg, A: addr, Off: off, B: val})
}

// soleStmtBlock places s alone in a fresh block (closing the current block
// with a jump if it already holds statements) and continues building in the
// fall-through continuation.
func (fb *FuncBuilder) soleStmtBlock(s *Stmt) {
	if fb.cur == nil {
		panic(fmt.Sprintf("ir: %s: emit after terminator with no open block", fb.f.Name))
	}
	if len(fb.cur.Stmts) > 0 {
		own := fb.newBlock()
		fb.jumpTo(own)
		fb.cur = own
	}
	fb.emit(s)
	cont := fb.newBlock()
	fb.cur.Succs = []int{cont.ID}
	fb.cur = cont
}

// Ret terminates the function, returning a.
func (fb *FuncBuilder) Ret(a Operand) {
	fb.emit(&Stmt{Op: OpRet, Dest: NoReg, A: a})
	fb.cur = nil
}

// Halt terminates the whole program.
func (fb *FuncBuilder) Halt() {
	fb.emit(&Stmt{Op: OpHalt, Dest: NoReg})
	fb.cur = nil
}

// jumpTo terminates the current block with a jump to b (if it is still open).
func (fb *FuncBuilder) jumpTo(b *Block) {
	if fb.terminated() {
		return
	}
	fb.emit(&Stmt{Op: OpJmp, Dest: NoReg})
	fb.cur.Succs = []int{b.ID}
}

// If emits a two-way conditional. The then/else bodies run with the builder
// positioned in fresh blocks; both fall through to a join block. els may be
// nil for a one-armed if.
func (fb *FuncBuilder) If(cond Operand, then func(), els func()) {
	thenB := fb.newBlock()
	elseB := fb.newBlock()
	fb.emit(&Stmt{Op: OpBr, Dest: NoReg, A: cond})
	fb.cur.Succs = []int{thenB.ID, elseB.ID}

	joinB := fb.newBlock()
	fb.cur = thenB
	then()
	fb.jumpTo(joinB)
	fb.cur = elseB
	if els != nil {
		els()
	}
	fb.jumpTo(joinB)
	fb.cur = joinB
}

// While emits a loop. cond runs in the loop header and returns the operand
// tested; body runs in the loop body, which branches back to the header.
func (fb *FuncBuilder) While(cond func() Operand, body func()) {
	head := fb.newBlock()
	fb.jumpTo(head)
	fb.cur = head
	c := cond()
	bodyB := fb.newBlock()
	exitB := fb.newBlock()
	fb.emit(&Stmt{Op: OpBr, Dest: NoReg, A: c})
	fb.cur.Succs = []int{bodyB.ID, exitB.ID}
	fb.cur = bodyB
	body()
	fb.jumpTo(head)
	fb.cur = exitB
}

// For emits a counted loop: for i = from; i < to; i += step { body(i) }.
// It allocates and returns the induction register.
func (fb *FuncBuilder) For(from, to, step Operand, body func(i Reg)) Reg {
	i := fb.NewReg()
	fb.Mov(i, from)
	cmp := fb.NewReg()
	fb.While(func() Operand {
		fb.Lt(cmp, R(i), to)
		return R(cmp)
	}, func() {
		body(i)
		fb.Add(i, R(i), step)
	})
	return i
}

// Switch emits an if/else chain comparing sel against each case constant.
// def may be nil.
func (fb *FuncBuilder) Switch(sel Operand, cases []int64, arms []func(), def func()) {
	if len(cases) != len(arms) {
		panic("ir: Switch cases/arms length mismatch")
	}
	if len(cases) == 0 {
		if def != nil {
			def()
		}
		return
	}
	c := fb.NewReg()
	fb.Eq(c, sel, Imm(cases[0]))
	fb.If(R(c), arms[0], func() {
		fb.Switch(sel, cases[1:], arms[1:], def)
	})
}

// LastEmitted returns the most recently emitted statement of the block
// under construction. Its ID becomes valid after Program.Finalize; callers
// use it to name statements they later want to query in a WET.
func (fb *FuncBuilder) LastEmitted() *Stmt {
	if fb.cur == nil || len(fb.cur.Stmts) == 0 {
		panic("ir: LastEmitted with no open statement")
	}
	return fb.cur.Stmts[len(fb.cur.Stmts)-1]
}
