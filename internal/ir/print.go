package ir

import (
	"fmt"
	"strings"
)

// String renders the whole program as readable assembly-like text.
func (p *Program) String() string {
	var sb strings.Builder
	for _, f := range p.Funcs {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// String renders one function.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(params=%d regs=%d):\n", f.Name, f.Params, f.NumRegs)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "  b%d:", b.ID)
		if len(b.Succs) > 0 {
			fmt.Fprintf(&sb, " -> %v", b.Succs)
		}
		sb.WriteByte('\n')
		for _, s := range b.Stmts {
			fmt.Fprintf(&sb, "    [%d] %s\n", s.ID, s)
		}
	}
	return sb.String()
}

// Stats summarizes static program size.
type Stats struct {
	Funcs  int
	Blocks int
	Stmts  int
}

// Stats returns static counts for a finalized program.
func (p *Program) StatsOf() Stats {
	st := Stats{Funcs: len(p.Funcs), Stmts: len(p.Stmts)}
	for _, f := range p.Funcs {
		st.Blocks += len(f.Blocks)
	}
	return st
}
