// Package ir defines the intermediate representation executed by the
// simulator (internal/interp) and profiled into Whole Execution Traces.
//
// The IR plays the role of Trimaran's intermediate code in the paper: a
// program is a set of functions, each a control flow graph of basic blocks
// holding three-address statements over virtual registers and a flat,
// word-addressed memory. Every block ends in exactly one terminator
// (Jmp, Br, Call, Ret, or Halt); calls terminate blocks so that dynamic
// timestamps of Ball-Larus path executions are totally ordered by time.
package ir

import "fmt"

// Reg names a virtual register within a function. NoReg marks "no def port"
// (the paper does not keep result values for statements without one).
type Reg int32

// NoReg marks the absence of a destination register.
const NoReg Reg = -1

// Op enumerates statement opcodes.
type Op uint8

// Statement opcodes. Opcodes at OpJmp and beyond are block terminators.
const (
	OpConst  Op = iota // Dest = A.Imm
	OpAdd              // Dest = A + B
	OpSub              // Dest = A - B
	OpMul              // Dest = A * B
	OpDiv              // Dest = A / B (0 when B == 0)
	OpMod              // Dest = A % B (0 when B == 0)
	OpAnd              // Dest = A & B
	OpOr               // Dest = A | B
	OpXor              // Dest = A ^ B
	OpShl              // Dest = A << (B & 63)
	OpShr              // Dest = A >> (B & 63) (arithmetic)
	OpNeg              // Dest = -A
	OpNot              // Dest = ^A
	OpEq               // Dest = A == B ? 1 : 0
	OpNe               // Dest = A != B ? 1 : 0
	OpLt               // Dest = A < B ? 1 : 0
	OpLe               // Dest = A <= B ? 1 : 0
	OpGt               // Dest = A > B ? 1 : 0
	OpGe               // Dest = A >= B ? 1 : 0
	OpLoad             // Dest = Mem[A + Off]
	OpStore            // Mem[A + Off] = B (no def port)
	OpInput            // Dest = next value from the input tape
	OpOutput           // emit A to the output sink (no def port)

	OpJmp  // goto Succs[0]
	OpBr   // if A != 0 goto Succs[0] else Succs[1] (no def port)
	OpCall // Dest = Callee(Args...); continue at Succs[0]
	OpRet  // return A to the caller (no def port)
	OpHalt // stop the program (no def port)

	// Concurrency opcodes. They are appended after OpHalt so that every
	// pre-concurrency serialized program keeps its opcode bytes. The four
	// sync ops terminate their block (the scheduler may only switch threads
	// between Ball-Larus paths, so a sync effect must sit at a path
	// boundary); the shared-access ops are ordinary mid-block statements.
	OpSpawn   // Dest = spawn Callee(Args...) -> thread id; continue at Succs[0]
	OpJoin    // Dest = join A (thread id, blocks); continue at Succs[0]
	OpLock    // acquire lock A.Imm/A (blocks); continue at Succs[0]
	OpUnlock  // release lock A.Imm/A; continue at Succs[0]
	OpLoadSh  // Dest = Mem[A + Off], annotated shared (race-checked)
	OpStoreSh // Mem[A + Off] = B, annotated shared (race-checked, no def port)
)

var opNames = [...]string{
	OpConst: "const", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpMod: "mod", OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl",
	OpShr: "shr", OpNeg: "neg", OpNot: "not", OpEq: "eq", OpNe: "ne",
	OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge", OpLoad: "load",
	OpStore: "store", OpInput: "input", OpOutput: "output", OpJmp: "jmp",
	OpBr: "br", OpCall: "call", OpRet: "ret", OpHalt: "halt",
	OpSpawn: "spawn", OpJoin: "join", OpLock: "lock", OpUnlock: "unlock",
	OpLoadSh: "load.sh", OpStoreSh: "store.sh",
}

func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsTerminator reports whether op ends a basic block. The shared-access
// ops sit past OpHalt in the enum (opcode-byte stability) but are ordinary
// mid-block statements.
func (op Op) IsTerminator() bool {
	return op >= OpJmp && op <= OpUnlock
}

// IsSync reports whether op is a thread-synchronization operation
// (spawn/join/lock/unlock). All four terminate their block.
func (op Op) IsSync() bool {
	return op >= OpSpawn && op <= OpUnlock
}

// HasDef reports whether statements with this opcode produce a result value
// (have a "def port" in the paper's terms).
func (op Op) HasDef() bool {
	switch op {
	case OpStore, OpStoreSh, OpOutput, OpJmp, OpBr, OpCall, OpRet, OpHalt,
		OpJoin, OpLock, OpUnlock:
		// Calls deliver their result by writing Dest at return time, but the
		// call statement itself produces no value in the WET sense: the DD
		// edge runs from the producer inside the callee straight to the use.
		// Joins deliver the joined thread's return value the same way.
		return false
	default:
		return true
	}
}

// IsBinary reports whether op reads both A and B.
func (op Op) IsBinary() bool {
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpStore, OpStoreSh:
		return true
	}
	return false
}

// Operand is either a virtual register or an immediate constant.
type Operand struct {
	IsReg bool
	Reg   Reg
	Imm   int64
}

// R returns a register operand.
func R(r Reg) Operand { return Operand{IsReg: true, Reg: r} }

// Imm returns an immediate operand.
func Imm(v int64) Operand { return Operand{Imm: v} }

func (o Operand) String() string {
	if o.IsReg {
		return fmt.Sprintf("r%d", o.Reg)
	}
	return fmt.Sprintf("#%d", o.Imm)
}

// Stmt is a single intermediate-code statement. After Program.Finalize,
// ID is a program-wide unique identifier (dense, starting at 0) and the
// back-references Fn/Blk/Idx locate the statement.
type Stmt struct {
	Op   Op
	Dest Reg     // NoReg when the statement has no def port
	A, B Operand // operands (unary ops use A only)
	Off  int64   // displacement for OpLoad / OpStore

	Callee     int       // function index, OpCall only (patched by Finalize)
	CalleeName string    // unresolved callee name, OpCall only
	Args       []Operand // call arguments, OpCall only

	ID  int // program-wide statement id (set by Finalize)
	Fn  int // owning function index (set by Finalize)
	Blk int // owning block id (set by Finalize)
	Idx int // index within the owning block (set by Finalize)
}

func (s *Stmt) String() string {
	switch s.Op {
	case OpConst:
		return fmt.Sprintf("r%d = const %d", s.Dest, s.A.Imm)
	case OpLoad:
		return fmt.Sprintf("r%d = load %s+%d", s.Dest, s.A, s.Off)
	case OpStore:
		return fmt.Sprintf("store %s+%d, %s", s.A, s.Off, s.B)
	case OpInput:
		return fmt.Sprintf("r%d = input", s.Dest)
	case OpOutput:
		return fmt.Sprintf("output %s", s.A)
	case OpJmp:
		return "jmp"
	case OpBr:
		return fmt.Sprintf("br %s", s.A)
	case OpCall:
		if s.Dest == NoReg {
			return fmt.Sprintf("call %s%v", s.CalleeName, s.Args)
		}
		return fmt.Sprintf("r%d = call %s%v", s.Dest, s.CalleeName, s.Args)
	case OpRet:
		return fmt.Sprintf("ret %s", s.A)
	case OpHalt:
		return "halt"
	case OpSpawn:
		return fmt.Sprintf("r%d = spawn %s%v", s.Dest, s.CalleeName, s.Args)
	case OpJoin:
		if s.Dest == NoReg {
			return fmt.Sprintf("join %s", s.A)
		}
		return fmt.Sprintf("r%d = join %s", s.Dest, s.A)
	case OpLock:
		return fmt.Sprintf("lock %s", s.A)
	case OpUnlock:
		return fmt.Sprintf("unlock %s", s.A)
	case OpLoadSh:
		return fmt.Sprintf("r%d = load.sh %s+%d", s.Dest, s.A, s.Off)
	case OpStoreSh:
		return fmt.Sprintf("store.sh %s+%d, %s", s.A, s.Off, s.B)
	case OpNeg, OpNot:
		return fmt.Sprintf("r%d = %s %s", s.Dest, s.Op, s.A)
	default:
		return fmt.Sprintf("r%d = %s %s, %s", s.Dest, s.Op, s.A, s.B)
	}
}

// Uses appends the registers read by s to dst and returns it. The order is
// A, B, then call arguments.
func (s *Stmt) Uses(dst []Reg) []Reg {
	switch s.Op {
	case OpConst, OpInput, OpJmp, OpHalt:
		return dst
	case OpCall, OpSpawn:
		for _, a := range s.Args {
			if a.IsReg {
				dst = append(dst, a.Reg)
			}
		}
		return dst
	}
	if s.A.IsReg {
		dst = append(dst, s.A.Reg)
	}
	if s.Op.IsBinary() && s.B.IsReg {
		dst = append(dst, s.B.Reg)
	}
	return dst
}

// Block is a basic block: a non-empty statement list whose last statement is
// the unique terminator, plus successor block ids within the same function.
type Block struct {
	ID    int
	Stmts []*Stmt
	Succs []int
	Preds []int // computed by Finalize
}

// Term returns the block terminator.
func (b *Block) Term() *Stmt { return b.Stmts[len(b.Stmts)-1] }

// Func is a single function: an entry block (Blocks[0]), a register file of
// NumRegs registers of which the first Params hold incoming arguments.
type Func struct {
	Name    string
	Index   int
	Params  int
	NumRegs int
	Blocks  []*Block
}

// Program is a complete IR program. Memory is a flat array of MemWords
// 64-bit words; addresses are masked to the power-of-two size, so every
// access is in bounds and deterministic.
type Program struct {
	Funcs    []*Func
	Entry    int   // index of the entry function
	MemWords int64 // power of two

	Stmts   []*Stmt // dense, by ID (set by Finalize)
	byName  map[string]int
	sealed  bool
	numBlks int
}

// NewProgram returns an empty program with the given memory size in 64-bit
// words (rounded up to a power of two, minimum 1024).
func NewProgram(memWords int64) *Program {
	w := int64(1024)
	for w < memWords {
		w <<= 1
	}
	return &Program{MemWords: w, byName: map[string]int{}}
}

// FuncByName returns the function with the given name, or nil.
func (p *Program) FuncByName(name string) *Func {
	if i, ok := p.byName[name]; ok {
		return p.Funcs[i]
	}
	return nil
}

// NumBlocks returns the total static basic block count (after Finalize).
func (p *Program) NumBlocks() int { return p.numBlks }

// addFunc registers a new function (used by the builder).
func (p *Program) addFunc(f *Func) {
	f.Index = len(p.Funcs)
	p.byName[f.Name] = f.Index
	p.Funcs = append(p.Funcs, f)
}

// Finalize resolves call targets, assigns program-wide statement ids,
// fills predecessor lists and back-references, and validates the program.
// It must be called once, before execution or analysis.
func (p *Program) Finalize() error {
	if p.sealed {
		return fmt.Errorf("ir: program already finalized")
	}
	id := 0
	p.numBlks = 0
	for fi, f := range p.Funcs {
		for _, b := range f.Blocks {
			b.Preds = b.Preds[:0]
		}
		for bi, b := range f.Blocks {
			if b.ID != bi {
				return fmt.Errorf("ir: %s block %d has id %d", f.Name, bi, b.ID)
			}
			p.numBlks++
			for si, s := range b.Stmts {
				s.ID = id
				s.Fn = fi
				s.Blk = bi
				s.Idx = si
				id++
				p.Stmts = append(p.Stmts, s)
				if s.Op == OpCall || s.Op == OpSpawn {
					ci, ok := p.byName[s.CalleeName]
					if !ok {
						return fmt.Errorf("ir: %s calls unknown function %q", f.Name, s.CalleeName)
					}
					s.Callee = ci
				}
			}
			for _, succ := range b.Succs {
				if succ < 0 || succ >= len(f.Blocks) {
					return fmt.Errorf("ir: %s block %d has bad successor %d", f.Name, bi, succ)
				}
				f.Blocks[succ].Preds = append(f.Blocks[succ].Preds, bi)
			}
		}
	}
	p.sealed = true
	return p.validate()
}

// MustFinalize is Finalize that panics on error; for use by workload and
// test program constructors whose shape is fixed at compile time.
func (p *Program) MustFinalize() {
	if err := p.Finalize(); err != nil {
		panic(err)
	}
}

// AddRawFunc registers a hand-assembled function (used by deserializers
// that rebuild a program structurally rather than through FuncBuilder).
// The caller must still Finalize the program.
func (p *Program) AddRawFunc(f *Func) {
	if p.sealed {
		panic("ir: cannot add functions after Finalize")
	}
	p.addFunc(f)
}
