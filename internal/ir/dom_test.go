package ir

import (
	"strings"
	"testing"
)

// loopProg hand-builds: b0: br -> b1/b2; b1: jmp b0 (loop); b2: halt.
func loopProg(t *testing.T) *Program {
	t.Helper()
	p := NewProgram(1024)
	fb := p.NewFunc("main", 0)
	f := fb.Func()
	f.NumRegs = 1
	f.Blocks[0].Stmts = []*Stmt{
		{Op: OpConst, Dest: 0, A: Imm(1)},
		{Op: OpBr, Dest: NoReg, A: R(0)},
	}
	f.Blocks[0].Succs = []int{1, 2}
	f.Blocks = append(f.Blocks,
		&Block{ID: 1, Stmts: []*Stmt{{Op: OpJmp, Dest: NoReg}}, Succs: []int{0}},
		&Block{ID: 2, Stmts: []*Stmt{{Op: OpHalt, Dest: NoReg}}},
	)
	return p
}

func TestDominatorsLoop(t *testing.T) {
	p := loopProg(t)
	if err := p.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	f := p.Funcs[0]
	idom := Dominators(f)
	if idom[0] != 0 || idom[1] != 0 || idom[2] != 0 {
		t.Fatalf("idom = %v, want [0 0 0]", idom)
	}
	ipdom := PostDominators(f)
	exit := ExitBlock(f)
	// b0 is post-dominated by b2 (the only route to halt), b1 by b0.
	if ipdom[0] != 2 || ipdom[1] != 0 || ipdom[2] != exit || ipdom[exit] != exit {
		t.Fatalf("ipdom = %v (exit %d)", ipdom, exit)
	}
}

// TestValidateRejectsUnreachableBlock pins the Finalize-time rejection of a
// block that cannot be reached from the entry: before the dominator-based
// flow validation, such blocks silently produced degenerate dominance and
// control-dependence facts.
func TestValidateRejectsUnreachableBlock(t *testing.T) {
	p := NewProgram(1024)
	fb := p.NewFunc("main", 0)
	f := fb.Func()
	f.Blocks[0].Stmts = []*Stmt{{Op: OpHalt, Dest: NoReg}}
	// Block 1 is never a successor of anything.
	f.Blocks = append(f.Blocks, &Block{ID: 1, Stmts: []*Stmt{{Op: OpHalt, Dest: NoReg}}})
	err := p.Finalize()
	if err == nil {
		t.Fatal("Finalize accepted a CFG with an unreachable block")
	}
	if !strings.Contains(err.Error(), "unreachable from the entry block") {
		t.Fatalf("error = %v, want unreachable-from-entry rejection", err)
	}
}

// TestValidateRejectsNoExitPath pins the rejection of a block from which no
// Ret/Halt is reachable (its post-dominators are undefined).
func TestValidateRejectsNoExitPath(t *testing.T) {
	p := NewProgram(1024)
	fb := p.NewFunc("main", 0)
	f := fb.Func()
	f.NumRegs = 1
	f.Blocks[0].Stmts = []*Stmt{
		{Op: OpConst, Dest: 0, A: Imm(1)},
		{Op: OpBr, Dest: NoReg, A: R(0)},
	}
	f.Blocks[0].Succs = []int{1, 2}
	f.Blocks = append(f.Blocks,
		// b1 spins forever: reachable, but no path to exit.
		&Block{ID: 1, Stmts: []*Stmt{{Op: OpJmp, Dest: NoReg}}, Succs: []int{1}},
		&Block{ID: 2, Stmts: []*Stmt{{Op: OpHalt, Dest: NoReg}}},
	)
	err := p.Finalize()
	if err == nil {
		t.Fatal("Finalize accepted a block with no path to exit")
	}
	if !strings.Contains(err.Error(), "no path to a ret/halt exit") {
		t.Fatalf("error = %v, want no-path-to-exit rejection", err)
	}
}
