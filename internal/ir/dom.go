package ir

// Dominator analysis over a function's CFG, self-contained so that both
// program validation (this package) and the static semantic layer
// (internal/sanalysis) share one implementation. The algorithm is the
// iterative Cooper–Harvey–Kennedy scheme: compute a reverse post-order,
// then refine immediate dominators to a fixed point by intersecting
// predecessor dominators along the RPO.

// ExitBlock returns the index of the virtual exit node used by the
// post-dominator computation: one past the last real block. Every block
// terminated by Ret or Halt has an implicit edge to it.
func ExitBlock(f *Func) int { return len(f.Blocks) }

// domGraph is the minimal digraph shape the dominator solver needs.
type domGraph struct {
	n     int
	entry int
	succs [][]int
	preds [][]int
}

// forwardGraph builds the plain CFG of f (no virtual nodes, entry block 0).
func forwardGraph(f *Func) *domGraph {
	n := len(f.Blocks)
	g := &domGraph{n: n, entry: 0, succs: make([][]int, n), preds: make([][]int, n)}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			g.succs[b.ID] = append(g.succs[b.ID], s)
			g.preds[s] = append(g.preds[s], b.ID)
		}
	}
	return g
}

// reverseGraph builds the reversed CFG of f augmented with the virtual exit
// (index ExitBlock(f)) as entry, for post-dominator computation.
func reverseGraph(f *Func) *domGraph {
	n := len(f.Blocks)
	g := &domGraph{n: n + 1, entry: n, succs: make([][]int, n+1), preds: make([][]int, n+1)}
	edge := func(u, v int) { // reversed: v -> u in the original CFG
		g.succs[v] = append(g.succs[v], u)
		g.preds[u] = append(g.preds[u], v)
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			edge(b.ID, s)
		}
		switch b.Term().Op {
		case OpRet, OpHalt:
			edge(b.ID, n)
		}
	}
	return g
}

// rpo returns a reverse post-order over nodes reachable from g.entry and the
// node -> RPO index map (-1 for unreachable nodes).
func (g *domGraph) rpo() (order []int, index []int) {
	index = make([]int, g.n)
	for i := range index {
		index[i] = -1
	}
	seen := make([]bool, g.n)
	var post []int
	type frame struct{ node, next int }
	stack := []frame{{g.entry, 0}}
	seen[g.entry] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(g.succs[fr.node]) {
			v := g.succs[fr.node][fr.next]
			fr.next++
			if !seen[v] {
				seen[v] = true
				stack = append(stack, frame{v, 0})
			}
			continue
		}
		post = append(post, fr.node)
		stack = stack[:len(stack)-1]
	}
	order = make([]int, len(post))
	for i := range post {
		order[i] = post[len(post)-1-i]
	}
	for i, n := range order {
		index[n] = i
	}
	return order, index
}

// solveDominators runs the Cooper–Harvey–Kennedy fixed point on g. The
// entry's idom is itself; nodes unreachable from the entry get -1.
func solveDominators(g *domGraph) []int {
	order, idx := g.rpo()
	idom := make([]int, g.n)
	for i := range idom {
		idom[i] = -1
	}
	idom[g.entry] = g.entry
	intersect := func(a, b int) int {
		for a != b {
			for idx[a] > idx[b] {
				a = idom[a]
			}
			for idx[b] > idx[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, n := range order {
			if n == g.entry {
				continue
			}
			newIdom := -1
			for _, p := range g.preds[n] {
				if idx[p] < 0 || idom[p] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && idom[n] != newIdom {
				idom[n] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominators computes the immediate dominator of every block of f with
// respect to the entry block (block 0). The entry's idom is itself; blocks
// unreachable from the entry get -1.
func Dominators(f *Func) []int {
	return solveDominators(forwardGraph(f))
}

// PostDominators computes the immediate post-dominator of every block of f
// with respect to the virtual exit. The result has len(f.Blocks)+1 entries;
// entry ExitBlock(f) is the virtual exit itself (its own ipdom). Blocks from
// which no path reaches a Ret/Halt terminator (infinite loops) get -1.
func PostDominators(f *Func) []int {
	return solveDominators(reverseGraph(f))
}
