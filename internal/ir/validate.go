package ir

import "fmt"

// validate checks structural invariants of a finalized program:
// every block is non-empty and ends in its only terminator, successor counts
// match the terminator kind, register references are in range, call
// signatures match, and the entry function takes no parameters.
func (p *Program) validate() error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("ir: program has no functions")
	}
	if p.Entry < 0 || p.Entry >= len(p.Funcs) {
		return fmt.Errorf("ir: bad entry function index %d", p.Entry)
	}
	if p.Funcs[p.Entry].Params != 0 {
		return fmt.Errorf("ir: entry function %s must take no parameters", p.Funcs[p.Entry].Name)
	}
	for _, f := range p.Funcs {
		if err := p.validateFunc(f); err != nil {
			return err
		}
	}
	return nil
}

func (p *Program) validateFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: %s has no blocks", f.Name)
	}
	if f.Params > f.NumRegs {
		return fmt.Errorf("ir: %s has %d params but only %d registers", f.Name, f.Params, f.NumRegs)
	}
	checkReg := func(b *Block, s *Stmt, r Reg) error {
		if r < 0 || int(r) >= f.NumRegs {
			return fmt.Errorf("ir: %s block %d: %s references register %d outside [0,%d)", f.Name, b.ID, s, r, f.NumRegs)
		}
		return nil
	}
	var uses []Reg
	for _, b := range f.Blocks {
		if len(b.Stmts) == 0 {
			return fmt.Errorf("ir: %s block %d is empty", f.Name, b.ID)
		}
		for i, s := range b.Stmts {
			isLast := i == len(b.Stmts)-1
			if s.Op.IsTerminator() != isLast {
				return fmt.Errorf("ir: %s block %d stmt %d (%s): terminator placement", f.Name, b.ID, i, s)
			}
			if s.Op.HasDef() && s.Dest != NoReg {
				if err := checkReg(b, s, s.Dest); err != nil {
					return err
				}
			}
			if !s.Op.HasDef() && s.Dest != NoReg {
				// Calls and joins use Dest as return-value plumbing.
				if s.Op != OpCall && s.Op != OpJoin {
					return fmt.Errorf("ir: %s block %d: %s has a destination but no def port", f.Name, b.ID, s)
				}
				if err := checkReg(b, s, s.Dest); err != nil {
					return err
				}
			}
			uses = s.Uses(uses[:0])
			for _, r := range uses {
				if err := checkReg(b, s, r); err != nil {
					return err
				}
			}
			if s.Op == OpCall || s.Op == OpSpawn {
				callee := p.Funcs[s.Callee]
				if len(s.Args) != callee.Params {
					return fmt.Errorf("ir: %s calls %s with %d args, want %d", f.Name, callee.Name, len(s.Args), callee.Params)
				}
			}
			// Blocking sync ops must be the sole statement of their block: the
			// scheduler retries the whole path when the op would block, so the
			// path may carry no other effects.
			if (s.Op == OpJoin || s.Op == OpLock) && len(b.Stmts) != 1 {
				return fmt.Errorf("ir: %s block %d: %s must be the only statement of its block", f.Name, b.ID, s)
			}
		}
		want := -1
		switch b.Term().Op {
		case OpJmp, OpCall, OpSpawn, OpJoin, OpLock, OpUnlock:
			want = 1
		case OpBr:
			want = 2
		case OpRet, OpHalt:
			want = 0
		}
		if len(b.Succs) != want {
			return fmt.Errorf("ir: %s block %d: %s has %d successors, want %d", f.Name, b.ID, b.Term(), len(b.Succs), want)
		}
	}
	return p.validateFlow(f)
}

// validateFlow rejects degenerate control flow the dominator analyses would
// otherwise silently mishandle: blocks unreachable from the entry (their
// dominators are undefined) and blocks with no path to a Ret/Halt
// terminator (their post-dominators are undefined, which would make static
// control dependence degenerate).
func (p *Program) validateFlow(f *Func) error {
	idom := Dominators(f)
	for b, d := range idom {
		if d < 0 {
			return fmt.Errorf("ir: %s block %d is unreachable from the entry block", f.Name, b)
		}
	}
	ipdom := PostDominators(f)
	for b := 0; b < len(f.Blocks); b++ {
		if ipdom[b] < 0 {
			return fmt.Errorf("ir: %s block %d has no path to a ret/halt exit", f.Name, b)
		}
	}
	return nil
}
