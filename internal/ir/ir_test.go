package ir

import (
	"strings"
	"testing"
)

// buildCountdown builds: main { x = 10; while (x > 0) { x = x - 1; output x }; halt }
func buildCountdown(t *testing.T) *Program {
	t.Helper()
	p := NewProgram(1024)
	fb := p.NewFunc("main", 0)
	x := fb.ConstReg(10)
	c := fb.NewReg()
	fb.While(func() Operand {
		fb.Gt(c, R(x), Imm(0))
		return R(c)
	}, func() {
		fb.Sub(x, R(x), Imm(1))
		fb.Output(R(x))
	})
	fb.Halt()
	if err := p.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return p
}

func TestFinalizeAssignsDenseIDs(t *testing.T) {
	p := buildCountdown(t)
	for i, s := range p.Stmts {
		if s.ID != i {
			t.Fatalf("stmt %d has ID %d", i, s.ID)
		}
		f := p.Funcs[s.Fn]
		got := f.Blocks[s.Blk].Stmts[s.Idx]
		if got != s {
			t.Fatalf("back-reference of stmt %d does not resolve to itself", i)
		}
	}
}

func TestPredsComputed(t *testing.T) {
	p := buildCountdown(t)
	f := p.Funcs[0]
	// The while head must have two predecessors: entry and loop body.
	var head *Block
	for _, b := range f.Blocks {
		if b.Term().Op == OpBr {
			head = b
			break
		}
	}
	if head == nil {
		t.Fatal("no branch block found")
	}
	if len(head.Preds) != 2 {
		t.Fatalf("loop head preds = %v, want 2 entries", head.Preds)
	}
}

func TestValidateRejectsBadRegister(t *testing.T) {
	p := NewProgram(1024)
	fb := p.NewFunc("main", 0)
	fb.Add(0, R(99), Imm(1)) // register 99 never allocated... but 0 also isn't
	fb.Halt()
	if err := p.Finalize(); err == nil {
		t.Fatal("Finalize accepted out-of-range register")
	}
}

func TestValidateRejectsUnknownCallee(t *testing.T) {
	p := NewProgram(1024)
	fb := p.NewFunc("main", 0)
	fb.Call(NoReg, "nope")
	fb.Halt()
	if err := p.Finalize(); err == nil || !strings.Contains(err.Error(), "unknown function") {
		t.Fatalf("Finalize err = %v, want unknown function", err)
	}
}

func TestValidateRejectsArgCountMismatch(t *testing.T) {
	p := NewProgram(1024)
	g := p.NewFunc("g", 2)
	g.Ret(R(g.Param(0)))
	fb := p.NewFunc("main", 0)
	fb.Call(fb.NewReg(), "g", Imm(1)) // g wants 2 args
	fb.Halt()
	p.Entry = 1
	if err := p.Finalize(); err == nil || !strings.Contains(err.Error(), "args") {
		t.Fatalf("Finalize err = %v, want arg mismatch", err)
	}
}

func TestValidateRejectsEntryWithParams(t *testing.T) {
	p := NewProgram(1024)
	fb := p.NewFunc("main", 1)
	fb.Halt()
	if err := p.Finalize(); err == nil {
		t.Fatal("Finalize accepted entry function with parameters")
	}
}

func TestDoubleFinalizeFails(t *testing.T) {
	p := buildCountdown(t)
	if err := p.Finalize(); err == nil {
		t.Fatal("second Finalize succeeded")
	}
}

func TestIfWiring(t *testing.T) {
	p := NewProgram(1024)
	fb := p.NewFunc("main", 0)
	c := fb.ConstReg(1)
	x := fb.NewReg()
	fb.If(R(c), func() { fb.Const(x, 1) }, func() { fb.Const(x, 2) })
	fb.Output(R(x))
	fb.Halt()
	if err := p.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	f := p.Funcs[0]
	entry := f.Blocks[0]
	if entry.Term().Op != OpBr || len(entry.Succs) != 2 {
		t.Fatalf("entry terminator = %s succs %v", entry.Term(), entry.Succs)
	}
	thenB, elseB := f.Blocks[entry.Succs[0]], f.Blocks[entry.Succs[1]]
	if thenB.Succs[0] != elseB.Succs[0] {
		t.Fatalf("then and else do not join: %v vs %v", thenB.Succs, elseB.Succs)
	}
}

func TestCallSplitsBlock(t *testing.T) {
	p := NewProgram(1024)
	g := p.NewFunc("g", 1)
	r := g.NewReg()
	g.Add(r, R(g.Param(0)), Imm(1))
	g.Ret(R(r))
	fb := p.NewFunc("main", 0)
	d := fb.NewReg()
	fb.Call(d, "g", Imm(41))
	fb.Output(R(d))
	fb.Halt()
	p.Entry = 1
	if err := p.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	main := p.Funcs[1]
	if len(main.Blocks) != 2 {
		t.Fatalf("main has %d blocks, want 2 (call must end its block)", len(main.Blocks))
	}
	if main.Blocks[0].Term().Op != OpCall {
		t.Fatalf("first block terminator = %s, want call", main.Blocks[0].Term())
	}
}

func TestUses(t *testing.T) {
	s := &Stmt{Op: OpAdd, Dest: 2, A: R(0), B: R(1)}
	u := s.Uses(nil)
	if len(u) != 2 || u[0] != 0 || u[1] != 1 {
		t.Fatalf("Uses(add) = %v", u)
	}
	s = &Stmt{Op: OpStore, Dest: NoReg, A: R(3), B: Imm(7)}
	if u = s.Uses(nil); len(u) != 1 || u[0] != 3 {
		t.Fatalf("Uses(store) = %v", u)
	}
	s = &Stmt{Op: OpCall, Dest: 1, Args: []Operand{R(4), Imm(2), R(5)}}
	if u = s.Uses(nil); len(u) != 2 || u[0] != 4 || u[1] != 5 {
		t.Fatalf("Uses(call) = %v", u)
	}
	s = &Stmt{Op: OpConst, Dest: 0, A: Imm(1)}
	if u = s.Uses(nil); len(u) != 0 {
		t.Fatalf("Uses(const) = %v", u)
	}
}

func TestSwitchBuildsChain(t *testing.T) {
	p := NewProgram(1024)
	fb := p.NewFunc("main", 0)
	sel := fb.ConstReg(2)
	out := fb.NewReg()
	fb.Switch(R(sel), []int64{1, 2, 3}, []func(){
		func() { fb.Const(out, 10) },
		func() { fb.Const(out, 20) },
		func() { fb.Const(out, 30) },
	}, func() { fb.Const(out, 0) })
	fb.Output(R(out))
	fb.Halt()
	if err := p.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	// Three comparisons must exist.
	n := 0
	for _, s := range p.Stmts {
		if s.Op == OpEq {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("switch emitted %d eq statements, want 3", n)
	}
}

func TestProgramString(t *testing.T) {
	p := buildCountdown(t)
	s := p.String()
	for _, want := range []string{"func main", "halt", "br", "output"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestMemWordsRoundedToPowerOfTwo(t *testing.T) {
	p := NewProgram(3000)
	if p.MemWords != 4096 {
		t.Fatalf("MemWords = %d, want 4096", p.MemWords)
	}
	p = NewProgram(0)
	if p.MemWords != 1024 {
		t.Fatalf("MemWords = %d, want minimum 1024", p.MemWords)
	}
}

func TestOpPredicates(t *testing.T) {
	if OpStore.HasDef() || OpBr.HasDef() || OpOutput.HasDef() {
		t.Fatal("store/br/output must not have a def port")
	}
	if !OpLoad.HasDef() || !OpConst.HasDef() || !OpInput.HasDef() {
		t.Fatal("load/const/input must have a def port")
	}
	if !OpJmp.IsTerminator() || !OpHalt.IsTerminator() || OpAdd.IsTerminator() {
		t.Fatal("terminator classification wrong")
	}
}

func TestStringCoversAllOps(t *testing.T) {
	p := NewProgram(1024)
	g := p.NewFunc("callee", 1)
	g.Ret(R(g.Param(0)))
	fb := p.NewFunc("main", 0)
	a := fb.ConstReg(1)
	b := fb.NewReg()
	for _, op := range []Op{OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr,
		OpXor, OpShl, OpShr, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
		fb.Bin(op, b, R(a), Imm(2))
	}
	fb.Neg(b, R(a))
	fb.Not(b, R(a))
	fb.Load(b, R(a), 3)
	fb.Store(R(a), 4, R(b))
	fb.Input(b)
	fb.Output(R(b))
	fb.Call(b, "callee", R(a))
	fb.Call(NoReg, "callee", R(a))
	fb.If(R(a), func() { fb.Const(b, 1) }, nil)
	fb.Halt()
	p.Entry = 1
	p.MustFinalize()
	text := p.String()
	for _, want := range []string{"load", "store", "input", "output", "call",
		"ret", "halt", "br", "jmp", "neg", "not", "shl", "ge"} {
		if !strings.Contains(text, want) {
			t.Fatalf("String() missing %q", want)
		}
	}
	st := p.StatsOf()
	if st.Funcs != 2 || st.Stmts != len(p.Stmts) || st.Blocks == 0 {
		t.Fatalf("StatsOf = %+v", st)
	}
	if bad := Op(200).String(); !strings.Contains(bad, "op(") {
		t.Fatalf("unknown op prints %q", bad)
	}
}

func TestFuncByName(t *testing.T) {
	p := NewProgram(1024)
	fb := p.NewFunc("main", 0)
	fb.Halt()
	p.MustFinalize()
	if p.FuncByName("main") == nil || p.FuncByName("nope") != nil {
		t.Fatal("FuncByName lookup wrong")
	}
	if p.NumBlocks() == 0 {
		t.Fatal("NumBlocks zero")
	}
}
