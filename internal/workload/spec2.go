package workload

import "wet/internal/ir"

// buildGzip models 164.gzip: LZ77-style matching over a sliding window with
// a hash head table. Inner match loops have data-dependent trip counts and
// the reference stream revisits recent addresses, like a deflate inner
// loop.
func buildGzip(scale int) (*ir.Program, []int64) {
	const (
		buf    = 0 // input bytes
		heads  = 9000
		hashSz = 1024
		bufLen = 3000
		maxCmp = 16
	)
	p := ir.NewProgram(16384)
	fb := p.NewFunc("main", 0)
	seed := fb.ConstReg(987654)
	// Compressible input: small alphabet with long repeated stretches.
	v := fb.NewReg()
	r := fb.NewReg()
	fb.For(ir.Imm(0), ir.Imm(bufLen), ir.Imm(1), func(i ir.Reg) {
		lcg(fb, seed, r, 100)
		cold := fb.NewReg()
		fb.Lt(cold, ir.R(r), ir.Imm(15))
		fb.If(ir.R(cold), func() {
			lcg(fb, seed, v, 16) // fresh literal
		}, nil) // else keep previous v: runs of repeats
		fb.Store(ir.R(i), buf, ir.R(v))
	})

	lits := fb.ConstReg(0)
	matches := fb.ConstReg(0)
	totalLen := fb.ConstReg(0)
	h := fb.NewReg()
	c0 := fb.NewReg()
	c1 := fb.NewReg()
	c2 := fb.NewReg()
	cand := fb.NewReg()
	mlen := fb.NewReg()
	cc := fb.NewReg()
	a := fb.NewReg()
	b := fb.NewReg()

	passes := int64(scale)
	fb.For(ir.Imm(0), ir.Imm(passes), ir.Imm(1), func(pass ir.Reg) {
		fb.For(ir.Imm(0), ir.Imm(bufLen-maxCmp-3), ir.Imm(1), func(pos ir.Reg) {
			fb.Load(c0, ir.R(pos), buf)
			fb.Load(c1, ir.R(pos), buf+1)
			fb.Load(c2, ir.R(pos), buf+2)
			// h = (c0*33 + c1)*33 + c2 mod hashSz
			fb.Mul(h, ir.R(c0), ir.Imm(33))
			fb.Add(h, ir.R(h), ir.R(c1))
			fb.Mul(h, ir.R(h), ir.Imm(33))
			fb.Add(h, ir.R(h), ir.R(c2))
			fb.Mod(h, ir.R(h), ir.Imm(hashSz))
			stats(fb, totalLen, c0, c1, c2)
			fb.Load(cand, ir.R(h), heads)
			fb.Store(ir.R(h), heads, ir.R(pos))
			// Try to extend a match at cand (cand < pos required).
			fb.Lt(cc, ir.R(cand), ir.R(pos))
			fb.If(ir.R(cc), func() {
				fb.Const(mlen, 0)
				fb.While(func() ir.Operand {
					fb.Lt(cc, ir.R(mlen), ir.Imm(maxCmp))
					fb.If(ir.R(cc), func() {
						fb.Add(a, ir.R(pos), ir.R(mlen))
						fb.Load(a, ir.R(a), buf)
						fb.Add(b, ir.R(cand), ir.R(mlen))
						fb.Load(b, ir.R(b), buf)
						fb.Eq(cc, ir.R(a), ir.R(b))
					}, nil)
					return ir.R(cc)
				}, func() {
					fb.Add(mlen, ir.R(mlen), ir.Imm(1))
				})
				fb.Ge(cc, ir.R(mlen), ir.Imm(3))
				fb.If(ir.R(cc), func() {
					fb.Add(matches, ir.R(matches), ir.Imm(1))
					fb.Add(totalLen, ir.R(totalLen), ir.R(mlen))
				}, func() {
					fb.Add(lits, ir.R(lits), ir.Imm(1))
				})
			}, func() {
				fb.Add(lits, ir.R(lits), ir.Imm(1))
			})
		})
	})
	fb.Output(ir.R(matches))
	fb.Output(ir.R(lits))
	fb.Output(ir.R(totalLen))
	fb.Halt()
	p.MustFinalize()
	return p, nil
}

// buildMCF models 181.mcf: repeated relaxation sweeps over an arc array of
// a synthetic flow network — load-dominated with poor locality and highly
// data-dependent compare-and-update branches.
func buildMCF(scale int) (*ir.Program, []int64) {
	const (
		nodes   = 256
		arcs    = 1024
		dist    = 0    // [0, nodes)
		arcSrc  = 1000 // [0, arcs)
		arcDst  = 2100
		arcCost = 3200
	)
	p := ir.NewProgram(8192)
	fb := p.NewFunc("main", 0)
	seed := fb.ConstReg(555555)
	fillRegion(fb, seed, arcSrc, arcs, nodes)
	fillRegion(fb, seed, arcDst, arcs, nodes)
	fillRegion(fb, seed, arcCost, arcs, 50)
	// dist[i] = big, dist[0] = 0.
	fb.For(ir.Imm(0), ir.Imm(nodes), ir.Imm(1), func(i ir.Reg) {
		fb.Store(ir.R(i), dist, ir.Imm(1<<20))
	})
	fb.Store(ir.Imm(0), dist, ir.Imm(0))

	relaxed := fb.ConstReg(0)
	u := fb.NewReg()
	vv := fb.NewReg()
	w := fb.NewReg()
	du := fb.NewReg()
	dv := fb.NewReg()
	nd := fb.NewReg()
	c := fb.NewReg()
	sweeps := int64(scale) * 6
	fb.For(ir.Imm(0), ir.Imm(sweeps), ir.Imm(1), func(s ir.Reg) {
		fb.For(ir.Imm(0), ir.Imm(arcs), ir.Imm(1), func(ai ir.Reg) {
			fb.Load(u, ir.R(ai), arcSrc)
			fb.Load(vv, ir.R(ai), arcDst)
			fb.Load(w, ir.R(ai), arcCost)
			fb.Load(du, ir.R(u), dist)
			fb.Load(dv, ir.R(vv), dist)
			fb.Add(nd, ir.R(du), ir.R(w))
			stats(fb, relaxed, u, vv, w)
			fb.Lt(c, ir.R(nd), ir.R(dv))
			fb.If(ir.R(c), func() {
				fb.Store(ir.R(vv), dist, ir.R(nd))
				fb.Add(relaxed, ir.R(relaxed), ir.Imm(1))
			}, nil)
		})
	})
	fb.Output(ir.R(relaxed))
	fb.Halt()
	p.MustFinalize()
	return p, nil
}

// buildParser models 197.parser: tokenized "sentences" are looked up in a
// hashed dictionary with linear probing, driving a small grammatical state
// machine — pointer-ish probing plus table-driven branching.
func buildParser(scale int) (*ir.Program, []int64) {
	const (
		dict    = 0 // open-addressed table: key words
		dictSz  = 512
		sent    = 1000 // token stream
		sentLen = 600
		kinds   = 1700 // dict: word kind (1 noun, 2 verb, 3 other)
	)
	p := ir.NewProgram(4096)
	fb := p.NewFunc("main", 0)
	seed := fb.ConstReg(31415926)

	// Populate the dictionary with 300 words (values 1..600; tokens draw
	// from the same range so lookups hit about half the time).
	wv := fb.NewReg()
	slot := fb.NewReg()
	probe := fb.NewReg()
	c := fb.NewReg()
	fb.For(ir.Imm(0), ir.Imm(300), ir.Imm(1), func(i ir.Reg) {
		lcg(fb, seed, wv, 600)
		fb.Add(wv, ir.R(wv), ir.Imm(1))
		fb.Mod(slot, ir.R(wv), ir.Imm(dictSz))
		// Linear probe to a free slot.
		fb.While(func() ir.Operand {
			fb.Load(probe, ir.R(slot), dict)
			fb.Ne(c, ir.R(probe), ir.Imm(0))
			return ir.R(c)
		}, func() {
			fb.Add(slot, ir.R(slot), ir.Imm(1))
			fb.Mod(slot, ir.R(slot), ir.Imm(dictSz))
		})
		fb.Store(ir.R(slot), dict, ir.R(wv))
		k := fb.NewReg()
		fb.Mod(k, ir.R(wv), ir.Imm(3))
		fb.Add(k, ir.R(k), ir.Imm(1))
		fb.Store(ir.R(slot), kinds, ir.R(k))
	})
	// Sentence tokens reuse dictionary-like values (some miss).
	fillRegion(fb, seed, sent, sentLen, 600)

	found := fb.ConstReg(0)
	gramm := fb.ConstReg(0)
	state := fb.ConstReg(0)
	tok := fb.NewReg()
	kind := fb.NewReg()
	tries := fb.NewReg()
	passes := int64(scale) * 2
	fb.For(ir.Imm(0), ir.Imm(passes), ir.Imm(1), func(pass ir.Reg) {
		fb.For(ir.Imm(0), ir.Imm(sentLen), ir.Imm(1), func(ti ir.Reg) {
			fb.Load(tok, ir.R(ti), sent)
			fb.Add(tok, ir.R(tok), ir.Imm(1))
			fb.Mod(slot, ir.R(tok), ir.Imm(dictSz))
			fb.Const(kind, 0)
			fb.Const(tries, 0)
			// Probe until the word, an empty slot, or probe exhaustion.
			fb.While(func() ir.Operand {
				fb.Lt(c, ir.R(tries), ir.Imm(8))
				fb.If(ir.R(c), func() {
					fb.Load(probe, ir.R(slot), dict)
					fb.Ne(c, ir.R(probe), ir.Imm(0))
					fb.If(ir.R(c), func() {
						fb.Ne(c, ir.R(probe), ir.R(tok))
					}, nil)
				}, nil)
				return ir.R(c)
			}, func() {
				fb.Add(slot, ir.R(slot), ir.Imm(1))
				fb.Mod(slot, ir.R(slot), ir.Imm(dictSz))
				fb.Add(tries, ir.R(tries), ir.Imm(1))
			})
			fb.Load(probe, ir.R(slot), dict)
			stats(fb, gramm, tok, slot)
			fb.Eq(c, ir.R(probe), ir.R(tok))
			fb.If(ir.R(c), func() {
				fb.Load(kind, ir.R(slot), kinds)
				fb.Add(found, ir.R(found), ir.Imm(1))
			}, nil)
			// Grammar automaton: noun after verb scores; others reset.
			fb.Switch(ir.R(kind), []int64{1, 2}, []func(){
				func() { // noun
					fb.Eq(c, ir.R(state), ir.Imm(2))
					fb.If(ir.R(c), func() {
						fb.Add(gramm, ir.R(gramm), ir.Imm(1))
					}, nil)
					fb.Const(state, 1)
				},
				func() { // verb
					fb.Const(state, 2)
				},
			}, func() {
				fb.Const(state, 0)
			})
		})
	})
	fb.Output(ir.R(found))
	fb.Output(ir.R(gramm))
	fb.Halt()
	p.MustFinalize()
	return p, nil
}
