// Package workload provides the nine synthetic benchmark programs standing
// in for the paper's SpecInt 95/2000 runs (099.go, 126.gcc, 130.li,
// 164.gzip, 181.mcf, 197.parser, 255.vortex, 256.bzip2, 300.twolf). Each
// program is written in the repo's IR and mimics the dominant dynamic
// behaviour of its namesake — the control-flow irregularity, value
// repetitiveness, and memory reference pattern that determine WET stream
// compressibility. Run lengths scale linearly with the `scale` parameter.
package workload

import (
	"fmt"

	"wet/internal/interp"
	"wet/internal/ir"
)

// Workload names one benchmark and builds its program and input tape.
type Workload struct {
	Name string
	// Mimics documents which SPEC program the workload models.
	Mimics string
	// Build constructs the program and its input for a run of roughly
	// scale × StmtsPerScale dynamic statements.
	Build func(scale int) (*ir.Program, []int64)
}

// All returns the nine workloads in the paper's table order.
func All() []Workload {
	return []Workload{
		{"go", "099.go — game position evaluation, complex branching", buildGo},
		{"gcc", "126.gcc — scanning and table-driven token dispatch", buildGCC},
		{"li", "130.li — bytecode interpretation (lisp interpreter)", buildLi},
		{"gzip", "164.gzip — LZ77-style compression over a sliding window", buildGzip},
		{"mcf", "181.mcf — network-simplex-like arc relaxation, pointer chasing", buildMCF},
		{"parser", "197.parser — dictionary hashing and link-grammar-ish state", buildParser},
		{"vortex", "255.vortex — object database transactions (call heavy)", buildVortex},
		{"bzip2", "256.bzip2 — block sort + move-to-front + RLE", buildBzip2},
		{"twolf", "300.twolf — simulated annealing placement", buildTwolf},
	}
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown benchmark %q (have go gcc li gzip mcf parser vortex bzip2 twolf)", name)
}

// Steps runs the workload at the given scale counting dynamic statements
// (no sinks attached).
func Steps(w Workload, scale int) (uint64, error) {
	p, in := w.Build(scale)
	st, err := interp.Analyze(p)
	if err != nil {
		return 0, err
	}
	res, err := interp.Run(st, interp.Options{Inputs: in})
	if err != nil {
		return 0, err
	}
	return res.Steps, nil
}

// ScaleFor returns the scale at which the workload executes at least
// targetStmts dynamic statements. Two calibration runs separate the fixed
// setup cost from the per-scale increment.
func ScaleFor(w Workload, targetStmts uint64) (int, error) {
	s1, err := Steps(w, 1)
	if err != nil {
		return 0, err
	}
	s2, err := Steps(w, 2)
	if err != nil {
		return 0, err
	}
	if s2 <= s1 {
		return 0, fmt.Errorf("workload %s does not scale (%d vs %d steps)", w.Name, s1, s2)
	}
	perScale := s2 - s1
	if targetStmts <= s1 {
		return 1, nil
	}
	s := 1 + int((targetStmts-s1+perScale-1)/perScale)
	return s, nil
}

// --- shared IR idioms ---

// lcg emits dst = next LCG state from seed register (updates the register
// in place and leaves a bounded value in dst): seed = seed*1103515245 +
// 12345 mod 2^31; dst = seed % bound.
func lcg(fb *ir.FuncBuilder, seed, dst ir.Reg, bound int64) {
	fb.Mul(seed, ir.R(seed), ir.Imm(1103515245))
	fb.Add(seed, ir.R(seed), ir.Imm(12345))
	fb.And(seed, ir.R(seed), ir.Imm(0x7fffffff))
	// Use the high bits: the low bits of a power-of-two LCG are periodic.
	fb.Shr(dst, ir.R(seed), ir.Imm(16))
	fb.Mod(dst, ir.R(dst), ir.Imm(bound))
}

// fillRegion emits a loop storing an LCG sequence into mem[base..base+n).
func fillRegion(fb *ir.FuncBuilder, seed ir.Reg, base, n, bound int64) {
	v := fb.NewReg()
	fb.For(ir.Imm(0), ir.Imm(n), ir.Imm(1), func(i ir.Reg) {
		lcg(fb, seed, v, bound)
		addr := fb.NewReg()
		fb.Add(addr, ir.R(i), ir.Imm(base))
		fb.Store(ir.R(addr), 0, ir.R(v))
	})
}

// stats emits a small block of straight-line bookkeeping arithmetic mixing
// the given operands into an accumulator — the kind of address arithmetic
// and statistics code that pads real benchmarks' basic blocks. It exists to
// keep statements-per-Ball-Larus-path in a realistic range (Trimaran's
// SpecInt paths average tens of intermediate statements).
func stats(fb *ir.FuncBuilder, acc ir.Reg, vals ...ir.Reg) {
	t1 := fb.NewReg()
	t2 := fb.NewReg()
	t3 := fb.NewReg()
	for _, v := range vals {
		// Most of the block is a pure function of v, so its values repeat
		// whenever v does (realistic for address arithmetic); only the
		// final accumulation is loop carried.
		fb.Shl(t1, ir.R(v), ir.Imm(1))
		fb.Add(t1, ir.R(t1), ir.R(v))
		fb.Shr(t2, ir.R(t1), ir.Imm(2))
		fb.Xor(t3, ir.R(t1), ir.R(t2))
		fb.Add(acc, ir.R(acc), ir.R(t3))
		fb.And(acc, ir.R(acc), ir.Imm(0xffffff))
	}
}
