package workload

import "wet/internal/ir"

// buildVortex models 255.vortex: an in-memory object database processing a
// transaction mix (insert / lookup / update) through subroutines — the
// call-heavy benchmark (and the paper's best compression ratio).
func buildVortex(scale int) (*ir.Program, []int64) {
	const (
		index   = 0 // hash index: key -> record id + 1 (0 empty)
		idxSz   = 1024
		records = 2048 // records of 4 fields
		recFlds = 4
		nextID  = 8000 // allocation counter cell
	)
	p := ir.NewProgram(16384)

	// insert(key, f1, f2): allocates a record, fills fields, indexes it.
	ins := p.NewFunc("insert", 3)
	{
		key, f1, f2 := ins.Param(0), ins.Param(1), ins.Param(2)
		id := ins.NewReg()
		ins.Load(id, ir.Imm(nextID), 0)
		base := ins.NewReg()
		ins.Mul(base, ir.R(id), ir.Imm(recFlds))
		ins.Add(base, ir.R(base), ir.Imm(records))
		ins.Store(ir.R(base), 0, ir.R(key))
		ins.Store(ir.R(base), 1, ir.R(f1))
		ins.Store(ir.R(base), 2, ir.R(f2))
		ins.Store(ir.R(base), 3, ir.Imm(0)) // update counter
		slot := ins.NewReg()
		ins.Mod(slot, ir.R(key), ir.Imm(idxSz))
		c := ins.NewReg()
		probe := ins.NewReg()
		ins.While(func() ir.Operand {
			ins.Load(probe, ir.R(slot), index)
			ins.Ne(c, ir.R(probe), ir.Imm(0))
			return ir.R(c)
		}, func() {
			ins.Add(slot, ir.R(slot), ir.Imm(1))
			ins.Mod(slot, ir.R(slot), ir.Imm(idxSz))
		})
		idp := ins.NewReg()
		ins.Add(idp, ir.R(id), ir.Imm(1))
		ins.Store(ir.R(slot), index, ir.R(idp))
		ins.Add(id, ir.R(id), ir.Imm(1))
		ins.Store(ir.Imm(nextID), 0, ir.R(id))
		ins.Ret(ir.R(idp))
	}

	// lookup(key): returns record id + 1 or 0.
	lk := p.NewFunc("lookup", 1)
	{
		key := lk.Param(0)
		slot := lk.NewReg()
		lk.Mod(slot, ir.R(key), ir.Imm(idxSz))
		tries := lk.ConstReg(0)
		probe := lk.NewReg()
		c := lk.NewReg()
		base := lk.NewReg()
		rkey := lk.NewReg()
		lk.While(func() ir.Operand {
			lk.Lt(c, ir.R(tries), ir.Imm(12))
			lk.If(ir.R(c), func() {
				lk.Load(probe, ir.R(slot), index)
				lk.Ne(c, ir.R(probe), ir.Imm(0))
			}, nil)
			return ir.R(c)
		}, func() {
			// Does the indexed record hold our key?
			lk.Sub(base, ir.R(probe), ir.Imm(1))
			lk.Mul(base, ir.R(base), ir.Imm(recFlds))
			lk.Add(base, ir.R(base), ir.Imm(records))
			lk.Load(rkey, ir.R(base), 0)
			lk.Eq(c, ir.R(rkey), ir.R(key))
			lk.If(ir.R(c), func() {
				lk.Ret(ir.R(probe))
			}, nil)
			lk.Add(slot, ir.R(slot), ir.Imm(1))
			lk.Mod(slot, ir.R(slot), ir.Imm(idxSz))
			lk.Add(tries, ir.R(tries), ir.Imm(1))
		})
		lk.Ret(ir.Imm(0))
	}

	// update(id1): bumps a field of the record.
	up := p.NewFunc("update", 1)
	{
		idp := up.Param(0)
		base := up.NewReg()
		up.Sub(base, ir.R(idp), ir.Imm(1))
		up.Mul(base, ir.R(base), ir.Imm(recFlds))
		up.Add(base, ir.R(base), ir.Imm(records))
		cnt := up.NewReg()
		up.Load(cnt, ir.R(base), 3)
		up.Add(cnt, ir.R(cnt), ir.Imm(1))
		up.Store(ir.R(base), 3, ir.R(cnt))
		up.Ret(ir.R(cnt))
	}

	fb := p.NewFunc("main", 0)
	seed := fb.ConstReg(271828)
	fb.Store(ir.Imm(nextID), 0, ir.Imm(0))
	hits := fb.ConstReg(0)
	key := fb.NewReg()
	f1 := fb.NewReg()
	f2 := fb.NewReg()
	op := fb.NewReg()
	res := fb.NewReg()
	c := fb.NewReg()
	txns := int64(scale) * 500
	fb.For(ir.Imm(0), ir.Imm(txns), ir.Imm(1), func(i ir.Reg) {
		lcg(fb, seed, op, 10)
		lcg(fb, seed, key, 700)
		stats(fb, hits, op, key)
		fb.Lt(c, ir.R(op), ir.Imm(3)) // 30% inserts (capped by region)
		fb.If(ir.R(c), func() {
			nid := fb.NewReg()
			fb.Load(nid, ir.Imm(nextID), 0)
			fb.Lt(c, ir.R(nid), ir.Imm(900)) // stay inside the region
			fb.If(ir.R(c), func() {
				fb.Mul(f1, ir.R(key), ir.Imm(7))
				fb.Add(f2, ir.R(key), ir.Imm(100))
				fb.Call(res, "insert", ir.R(key), ir.R(f1), ir.R(f2))
			}, nil)
		}, func() {
			fb.Call(res, "lookup", ir.R(key))
			fb.Ne(c, ir.R(res), ir.Imm(0))
			fb.If(ir.R(c), func() {
				fb.Add(hits, ir.R(hits), ir.Imm(1))
				fb.Call(res, "update", ir.R(res))
			}, nil)
		})
	})
	fb.Output(ir.R(hits))
	fb.Halt()
	p.Entry = 3
	p.MustFinalize()
	return p, nil
}

// buildBzip2 models 256.bzip2: per block, an insertion sort (stand-in for
// the BWT sort), a move-to-front pass with a small table, and run-length
// counting — the paper's benchmark with the best timestamp compression.
func buildBzip2(scale int) (*ir.Program, []int64) {
	const (
		block    = 0
		mtf      = 500 // 16-entry MTF table
		blockLen = 96
	)
	p := ir.NewProgram(4096)
	fb := p.NewFunc("main", 0)
	seed := fb.ConstReg(112358)
	runs := fb.ConstReg(0)
	zeros := fb.ConstReg(0)
	a := fb.NewReg()
	b := fb.NewReg()
	c := fb.NewReg()
	j := fb.NewReg()
	sym := fb.NewReg()
	idx := fb.NewReg()
	prev := fb.NewReg()

	blocks := int64(scale) * 4
	fb.For(ir.Imm(0), ir.Imm(blocks), ir.Imm(1), func(blk ir.Reg) {
		fillRegion(fb, seed, block, blockLen, 16)
		// Insertion sort the block (data-dependent inner while).
		fb.For(ir.Imm(1), ir.Imm(blockLen), ir.Imm(1), func(i ir.Reg) {
			fb.Load(a, ir.R(i), block)
			fb.Mov(j, ir.R(i))
			fb.While(func() ir.Operand {
				fb.Gt(c, ir.R(j), ir.Imm(0))
				fb.If(ir.R(c), func() {
					fb.Load(b, ir.R(j), block-1)
					fb.Gt(c, ir.R(b), ir.R(a))
				}, nil)
				return ir.R(c)
			}, func() {
				fb.Store(ir.R(j), block, ir.R(b))
				fb.Sub(j, ir.R(j), ir.Imm(1))
			})
			fb.Store(ir.R(j), block, ir.R(a))
		})
		// MTF init: table[k] = k.
		fb.For(ir.Imm(0), ir.Imm(16), ir.Imm(1), func(k ir.Reg) {
			kv := fb.NewReg()
			fb.Mov(kv, ir.R(k))
			fb.Store(ir.R(k), mtf, ir.R(kv))
		})
		// MTF encode + RLE of zero runs.
		fb.Const(prev, -1)
		fb.For(ir.Imm(0), ir.Imm(blockLen), ir.Imm(1), func(i ir.Reg) {
			fb.Load(sym, ir.R(i), block)
			// Find sym's index in the MTF table.
			fb.Const(idx, 0)
			fb.While(func() ir.Operand {
				fb.Load(b, ir.R(idx), mtf)
				fb.Ne(c, ir.R(b), ir.R(sym))
				return ir.R(c)
			}, func() {
				fb.Add(idx, ir.R(idx), ir.Imm(1))
			})
			// Move to front: shift table[0..idx) up by one.
			fb.Mov(j, ir.R(idx))
			fb.While(func() ir.Operand {
				fb.Gt(c, ir.R(j), ir.Imm(0))
				return ir.R(c)
			}, func() {
				fb.Load(b, ir.R(j), mtf-1)
				fb.Store(ir.R(j), mtf, ir.R(b))
				fb.Sub(j, ir.R(j), ir.Imm(1))
			})
			fb.Store(ir.Imm(0), mtf, ir.R(sym))
			stats(fb, runs, sym, idx)
			// RLE over the MTF output.
			fb.Eq(c, ir.R(idx), ir.Imm(0))
			fb.If(ir.R(c), func() {
				fb.Add(zeros, ir.R(zeros), ir.Imm(1))
			}, func() {
				fb.Ne(c, ir.R(idx), ir.R(prev))
				fb.If(ir.R(c), func() {
					fb.Add(runs, ir.R(runs), ir.Imm(1))
				}, nil)
			})
			fb.Mov(prev, ir.R(idx))
		})
	})
	fb.Output(ir.R(runs))
	fb.Output(ir.R(zeros))
	fb.Halt()
	p.MustFinalize()
	return p, nil
}

// buildTwolf models 300.twolf: simulated-annealing standard-cell placement:
// propose a random cell swap, evaluate the wirelength delta (multiply
// heavy), accept or reject against a cooling threshold.
func buildTwolf(scale int) (*ir.Program, []int64) {
	const (
		cellX  = 0 // [0, nCells)
		cellY  = 300
		nets   = 600 // pairs (a, b) of connected cells
		nCells = 128
		nNets  = 256
	)
	p := ir.NewProgram(4096)

	// cost(a): wirelength of cell a against its net partner.
	cost := p.NewFunc("cost", 2) // (cellA, cellB)
	{
		ca, cb := cost.Param(0), cost.Param(1)
		xa := cost.NewReg()
		ya := cost.NewReg()
		xb := cost.NewReg()
		yb := cost.NewReg()
		cost.Load(xa, ir.R(ca), cellX)
		cost.Load(ya, ir.R(ca), cellY)
		cost.Load(xb, ir.R(cb), cellX)
		cost.Load(yb, ir.R(cb), cellY)
		dx := cost.NewReg()
		dy := cost.NewReg()
		cost.Sub(dx, ir.R(xa), ir.R(xb))
		cost.Sub(dy, ir.R(ya), ir.R(yb))
		// |dx| + |dy| via branches (annealing's abs computations).
		c := cost.NewReg()
		cost.Lt(c, ir.R(dx), ir.Imm(0))
		cost.If(ir.R(c), func() { cost.Neg(dx, ir.R(dx)) }, nil)
		cost.Lt(c, ir.R(dy), ir.Imm(0))
		cost.If(ir.R(c), func() { cost.Neg(dy, ir.R(dy)) }, nil)
		s := cost.NewReg()
		cost.Add(s, ir.R(dx), ir.R(dy))
		cost.Ret(ir.R(s))
	}

	fb := p.NewFunc("main", 0)
	seed := fb.ConstReg(424242)
	v := fb.NewReg()
	fb.For(ir.Imm(0), ir.Imm(nCells), ir.Imm(1), func(i ir.Reg) {
		lcg(fb, seed, v, 100)
		fb.Store(ir.R(i), cellX, ir.R(v))
		lcg(fb, seed, v, 100)
		fb.Store(ir.R(i), cellY, ir.R(v))
	})
	// Nets: random cell pairs.
	fb.For(ir.Imm(0), ir.Imm(nNets), ir.Imm(1), func(i ir.Reg) {
		ad := fb.NewReg()
		fb.Mul(ad, ir.R(i), ir.Imm(2))
		lcg(fb, seed, v, nCells)
		fb.Store(ir.R(ad), nets, ir.R(v))
		lcg(fb, seed, v, nCells)
		fb.Store(ir.R(ad), nets+1, ir.R(v))
	})

	accepts := fb.ConstReg(0)
	temp := fb.ConstReg(60)
	na := fb.NewReg()
	nb := fb.NewReg()
	before := fb.NewReg()
	after := fb.NewReg()
	xa := fb.NewReg()
	xb := fb.NewReg()
	ya := fb.NewReg()
	yb := fb.NewReg()
	delta := fb.NewReg()
	c := fb.NewReg()
	netI := fb.NewReg()
	ad := fb.NewReg()
	moves := int64(scale) * 300
	fb.For(ir.Imm(0), ir.Imm(moves), ir.Imm(1), func(mv ir.Reg) {
		// Cool every 64 moves.
		fb.Mod(c, ir.R(mv), ir.Imm(64))
		fb.Eq(c, ir.R(c), ir.Imm(0))
		fb.If(ir.R(c), func() {
			fb.Gt(c, ir.R(temp), ir.Imm(2))
			fb.If(ir.R(c), func() {
				fb.Sub(temp, ir.R(temp), ir.Imm(2))
			}, nil)
		}, nil)
		// Pick a net, evaluate its cost before and after swapping the
		// endpoints' positions.
		lcg(fb, seed, netI, nNets)
		fb.Mul(ad, ir.R(netI), ir.Imm(2))
		fb.Load(na, ir.R(ad), nets)
		fb.Load(nb, ir.R(ad), nets+1)
		fb.Call(before, "cost", ir.R(na), ir.R(nb))
		// Swap positions.
		fb.Load(xa, ir.R(na), cellX)
		fb.Load(ya, ir.R(na), cellY)
		fb.Load(xb, ir.R(nb), cellX)
		fb.Load(yb, ir.R(nb), cellY)
		fb.Store(ir.R(na), cellX, ir.R(xb))
		fb.Store(ir.R(na), cellY, ir.R(yb))
		fb.Store(ir.R(nb), cellX, ir.R(xa))
		fb.Store(ir.R(nb), cellY, ir.R(ya))
		fb.Call(after, "cost", ir.R(na), ir.R(nb))
		fb.Sub(delta, ir.R(after), ir.R(before))
		stats(fb, accepts, before, after, temp)
		// Accept if better or within temperature.
		fb.Le(c, ir.R(delta), ir.R(temp))
		fb.If(ir.R(c), func() {
			fb.Add(accepts, ir.R(accepts), ir.Imm(1))
		}, func() {
			// Reject: swap back.
			fb.Store(ir.R(na), cellX, ir.R(xa))
			fb.Store(ir.R(na), cellY, ir.R(ya))
			fb.Store(ir.R(nb), cellX, ir.R(xb))
			fb.Store(ir.R(nb), cellY, ir.R(yb))
		})
	})
	fb.Output(ir.R(accepts))
	fb.Halt()
	p.Entry = 1
	p.MustFinalize()
	return p, nil
}
