package workload

import "wet/internal/ir"

// buildGo models 099.go: sweeps over a 19×19 board with data-dependent
// branching on neighbour contents — the paper's benchmark with the most
// complex control flow (and its worst compression ratios).
func buildGo(scale int) (*ir.Program, []int64) {
	const (
		side  = 19
		board = 0 // words [0, 361)
		n     = side * side
	)
	p := ir.NewProgram(4096)
	fb := p.NewFunc("main", 0)
	seed := fb.ConstReg(1234567)
	// Board cells: 0 empty, 1 black, 2 white.
	fillRegion(fb, seed, board, n, 3)

	score := fb.ConstReg(0)
	cell := fb.NewReg()
	nb := fb.NewReg()
	same := fb.NewReg()
	c := fb.NewReg()
	tmp := fb.NewReg()

	sweeps := int64(scale) * 3
	fb.For(ir.Imm(0), ir.Imm(sweeps), ir.Imm(1), func(s ir.Reg) {
		// Interior positions only, so neighbour loads stay on the board.
		fb.For(ir.Imm(side+1), ir.Imm(n-side-1), ir.Imm(1), func(pos ir.Reg) {
			fb.Load(cell, ir.R(pos), board)
			fb.Ne(c, ir.R(cell), ir.Imm(0))
			fb.If(ir.R(c), func() {
				fb.Const(same, 0)
				// Four neighbour checks, each a data-dependent branch.
				for _, off := range []int64{-1, 1, -side, side} {
					fb.Load(nb, ir.R(pos), board+off)
					fb.Eq(c, ir.R(nb), ir.R(cell))
					fb.If(ir.R(c), func() {
						fb.Add(same, ir.R(same), ir.Imm(1))
					}, nil)
				}
				// Group strength heuristic: the if-chain mimics go's
				// irregular evaluation.
				stats(fb, score, same, cell, nb)
				fb.Eq(c, ir.R(same), ir.Imm(0))
				fb.If(ir.R(c), func() {
					// Lonely stone: capture it (mutates the board).
					fb.Store(ir.R(pos), board, ir.Imm(0))
					fb.Sub(score, ir.R(score), ir.Imm(5))
				}, func() {
					fb.Ge(c, ir.R(same), ir.Imm(3))
					fb.If(ir.R(c), func() {
						fb.Mul(tmp, ir.R(cell), ir.Imm(7))
						fb.Add(score, ir.R(score), ir.R(tmp))
					}, func() {
						fb.Add(score, ir.R(score), ir.R(same))
					})
				})
			}, nil)
		})
		fb.Output(ir.R(score))
	})
	fb.Halt()
	p.MustFinalize()
	return p, nil
}

// buildGCC models 126.gcc: a scanner over synthetic source text with
// table-driven character classification and per-token-kind handling,
// including symbol-table hashing.
func buildGCC(scale int) (*ir.Program, []int64) {
	const (
		text    = 0    // words [0, textLen)
		classTb = 3000 // 64 entries
		symtab  = 3100 // 512 buckets
		textLen = 2048
	)
	p := ir.NewProgram(8192)
	fb := p.NewFunc("main", 0)
	seed := fb.ConstReg(20260704)
	// Synthetic "source": bytes 0..63.
	fillRegion(fb, seed, text, textLen, 64)
	// Character class table: 0 space, 1 letter, 2 digit, 3 operator.
	cls := fb.NewReg()
	fb.For(ir.Imm(0), ir.Imm(64), ir.Imm(1), func(ch ir.Reg) {
		fb.Mod(cls, ir.R(ch), ir.Imm(8))
		// Classes skewed: 0-2 letters, 3-4 digits, 5-6 space, 7 operator.
		m := fb.NewReg()
		fb.Lt(m, ir.R(cls), ir.Imm(3))
		fb.If(ir.R(m), func() {
			addrStore(fb, ch, classTb, 1)
		}, func() {
			fb.Lt(m, ir.R(cls), ir.Imm(5))
			fb.If(ir.R(m), func() {
				addrStore(fb, ch, classTb, 2)
			}, func() {
				fb.Lt(m, ir.R(cls), ir.Imm(7))
				fb.If(ir.R(m), func() {
					addrStore(fb, ch, classTb, 0)
				}, func() {
					addrStore(fb, ch, classTb, 3)
				})
			})
		})
	})

	idents := fb.ConstReg(0)
	nums := fb.ConstReg(0)
	ops := fb.ConstReg(0)
	ch := fb.NewReg()
	kind := fb.NewReg()
	c := fb.NewReg()
	hash := fb.NewReg()
	acc := fb.NewReg()
	bucket := fb.NewReg()

	passes := int64(scale) * 2
	fb.For(ir.Imm(0), ir.Imm(passes), ir.Imm(1), func(pass ir.Reg) {
		pos := fb.NewReg()
		fb.Const(pos, 0)
		fb.While(func() ir.Operand {
			fb.Lt(c, ir.R(pos), ir.Imm(textLen))
			return ir.R(c)
		}, func() {
			fb.Load(ch, ir.R(pos), text)
			fb.Load(kind, ir.R(ch), classTb)
			fb.Add(pos, ir.R(pos), ir.Imm(1))
			stats(fb, ops, ch, kind)
			fb.Switch(ir.R(kind), []int64{1, 2, 3}, []func(){
				func() { // identifier: consume following letters, hash it
					fb.Mov(hash, ir.R(ch))
					fb.While(func() ir.Operand {
						fb.Lt(c, ir.R(pos), ir.Imm(textLen))
						fb.If(ir.R(c), func() {
							fb.Load(ch, ir.R(pos), text)
							fb.Load(kind, ir.R(ch), classTb)
							fb.Eq(c, ir.R(kind), ir.Imm(1))
						}, nil)
						return ir.R(c)
					}, func() {
						fb.Mul(hash, ir.R(hash), ir.Imm(31))
						fb.Add(hash, ir.R(hash), ir.R(ch))
						fb.And(hash, ir.R(hash), ir.Imm(0xffff))
						fb.Add(pos, ir.R(pos), ir.Imm(1))
					})
					fb.Mod(bucket, ir.R(hash), ir.Imm(512))
					fb.Load(acc, ir.R(bucket), symtab)
					fb.Add(acc, ir.R(acc), ir.Imm(1))
					fb.Store(ir.R(bucket), symtab, ir.R(acc))
					fb.Add(idents, ir.R(idents), ir.Imm(1))
				},
				func() { // number: accumulate digits
					fb.Mov(acc, ir.R(ch))
					fb.While(func() ir.Operand {
						fb.Lt(c, ir.R(pos), ir.Imm(textLen))
						fb.If(ir.R(c), func() {
							fb.Load(ch, ir.R(pos), text)
							fb.Load(kind, ir.R(ch), classTb)
							fb.Eq(c, ir.R(kind), ir.Imm(2))
						}, nil)
						return ir.R(c)
					}, func() {
						fb.Mul(acc, ir.R(acc), ir.Imm(10))
						fb.Add(acc, ir.R(acc), ir.R(ch))
						fb.And(acc, ir.R(acc), ir.Imm(0xfffff))
						fb.Add(pos, ir.R(pos), ir.Imm(1))
					})
					fb.Add(nums, ir.R(nums), ir.Imm(1))
				},
				func() { // operator
					fb.Add(ops, ir.R(ops), ir.Imm(1))
				},
			}, nil)
		})
	})
	fb.Output(ir.R(idents))
	fb.Output(ir.R(nums))
	fb.Output(ir.R(ops))
	fb.Halt()
	p.MustFinalize()
	return p, nil
}

// addrStore stores an immediate at mem[reg + base].
func addrStore(fb *ir.FuncBuilder, addr ir.Reg, base int64, v int64) {
	fb.Store(ir.R(addr), base, ir.Imm(v))
}

// Bytecode opcodes interpreted by buildLi.
const (
	bcPush = iota
	bcLoad
	bcStore
	bcAdd
	bcSub
	bcMul
	bcJnz
	bcHalt
)

// buildLi models 130.li: a bytecode interpreter (an interpreter being
// interpreted, like xlisp evaluating lisp). The hosted program sums a
// counted loop; the host's dispatch switch dominates the dynamic control
// flow.
func buildLi(scale int) (*ir.Program, []int64) {
	const (
		code   = 0
		stack  = 1024
		locals = 2048
	)
	// Hosted bytecode: acc=0; cnt=n; do { acc+=cnt*3; cnt-- } while cnt.
	prog := []int64{
		bcPush, int64(scale) * 400, // counter initial value
		bcStore, 0,
		bcPush, 0,
		bcStore, 1,
		// loop (pc=8):
		bcLoad, 1,
		bcLoad, 0,
		bcPush, 3,
		bcMul, 0,
		bcAdd, 0,
		bcStore, 1,
		bcLoad, 0,
		bcPush, 1,
		bcSub, 0,
		bcStore, 0,
		bcLoad, 0,
		bcJnz, 8,
		bcHalt, 0,
	}
	p := ir.NewProgram(4096)
	fb := p.NewFunc("main", 0)
	for i, w := range prog {
		fb.Store(ir.Imm(int64(i)), code, ir.Imm(w))
	}
	pc := fb.ConstReg(0)
	sp := fb.ConstReg(stack)
	running := fb.ConstReg(1)
	op := fb.NewReg()
	arg := fb.NewReg()
	a := fb.NewReg()
	b := fb.NewReg()
	c := fb.NewReg()
	cycles := fb.ConstReg(0)
	fb.While(func() ir.Operand { return ir.R(running) }, func() {
		fb.Load(op, ir.R(pc), code)
		fb.Load(arg, ir.R(pc), code+1)
		fb.Add(pc, ir.R(pc), ir.Imm(2))
		stats(fb, cycles, op, arg)
		fb.Switch(ir.R(op), []int64{bcPush, bcLoad, bcStore, bcAdd, bcSub, bcMul, bcJnz, bcHalt}, []func(){
			func() {
				fb.Store(ir.R(sp), 0, ir.R(arg))
				fb.Add(sp, ir.R(sp), ir.Imm(1))
			},
			func() {
				fb.Load(a, ir.R(arg), locals)
				fb.Store(ir.R(sp), 0, ir.R(a))
				fb.Add(sp, ir.R(sp), ir.Imm(1))
			},
			func() {
				fb.Sub(sp, ir.R(sp), ir.Imm(1))
				fb.Load(a, ir.R(sp), 0)
				fb.Store(ir.R(arg), locals, ir.R(a))
			},
			func() {
				fb.Sub(sp, ir.R(sp), ir.Imm(1))
				fb.Load(a, ir.R(sp), 0)
				fb.Load(b, ir.R(sp), -1)
				fb.Add(b, ir.R(b), ir.R(a))
				fb.Store(ir.R(sp), -1, ir.R(b))
			},
			func() {
				fb.Sub(sp, ir.R(sp), ir.Imm(1))
				fb.Load(a, ir.R(sp), 0)
				fb.Load(b, ir.R(sp), -1)
				fb.Sub(b, ir.R(b), ir.R(a))
				fb.Store(ir.R(sp), -1, ir.R(b))
			},
			func() {
				fb.Sub(sp, ir.R(sp), ir.Imm(1))
				fb.Load(a, ir.R(sp), 0)
				fb.Load(b, ir.R(sp), -1)
				fb.Mul(b, ir.R(b), ir.R(a))
				fb.Store(ir.R(sp), -1, ir.R(b))
			},
			func() {
				fb.Sub(sp, ir.R(sp), ir.Imm(1))
				fb.Load(a, ir.R(sp), 0)
				fb.Ne(c, ir.R(a), ir.Imm(0))
				fb.If(ir.R(c), func() {
					fb.Mov(pc, ir.R(arg))
				}, nil)
			},
			func() {
				fb.Const(running, 0)
			},
		}, nil)
	})
	out := fb.NewReg()
	fb.Load(out, ir.Imm(1), locals)
	fb.Output(ir.R(out))
	fb.Halt()
	p.MustFinalize()
	return p, nil
}
