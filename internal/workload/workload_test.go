package workload

import (
	"testing"

	"wet/internal/core"
	"wet/internal/interp"
	"wet/internal/query"
	"wet/internal/trace"
)

func TestAllWorkloadsRun(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, in := w.Build(1)
			st, err := interp.Analyze(p)
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			res, err := interp.Run(st, interp.Options{Inputs: in, CollectOutput: true, MaxSteps: 1 << 24})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Steps < 10000 {
				t.Fatalf("only %d dynamic statements at scale 1 — too small to be meaningful", res.Steps)
			}
			if len(res.Outputs) == 0 {
				t.Fatal("no outputs")
			}
			t.Logf("%s: %d stmts, outputs %v", w.Name, res.Steps, res.Outputs)
		})
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, w := range All() {
		p1, in1 := w.Build(1)
		p2, in2 := w.Build(1)
		st1, err := interp.Analyze(p1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		st2, err := interp.Analyze(p2)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		r1, err := interp.Run(st1, interp.Options{Inputs: in1, CollectOutput: true})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		r2, err := interp.Run(st2, interp.Options{Inputs: in2, CollectOutput: true})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if r1.Steps != r2.Steps || len(r1.Outputs) != len(r2.Outputs) {
			t.Fatalf("%s: nondeterministic (%d vs %d steps)", w.Name, r1.Steps, r2.Steps)
		}
		for i := range r1.Outputs {
			if r1.Outputs[i] != r2.Outputs[i] {
				t.Fatalf("%s: output %d differs", w.Name, i)
			}
		}
	}
}

func TestScaleRoughlyLinear(t *testing.T) {
	for _, w := range All() {
		s1, err := Steps(w, 1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		s3, err := Steps(w, 3)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if s3 < 2*s1 {
			t.Fatalf("%s: scale 3 ran %d steps vs %d at scale 1 — not scaling", w.Name, s3, s1)
		}
	}
}

func TestScaleFor(t *testing.T) {
	w, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	s, err := ScaleFor(w, 200000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Steps(w, s)
	if err != nil {
		t.Fatal(err)
	}
	if got < 200000 {
		t.Fatalf("ScaleFor(200k) = %d, but only %d steps", s, got)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted unknown name")
	}
}

// TestWETBuildsOnAllWorkloads is the key integration gate: the full WET
// pipeline (grouping determinism included) must hold on every benchmark.
func TestWETBuildsOnAllWorkloads(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, in := w.Build(1)
			st, err := interp.Analyze(p)
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			b := core.NewBuilder(st)
			b.CheckDeterminism = true
			wet, _, err := buildChecked(st, b, in)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			rep := wet.Freeze(core.FreezeOptions{})
			if rep.T2Total() >= rep.OrigTotal() {
				t.Fatalf("no compression: tier2 %d >= orig %d", rep.T2Total(), rep.OrigTotal())
			}
			ratio := core.Ratio(rep.OrigTotal(), rep.T2Total())
			t.Logf("%s: %d nodes, %d edges, orig %.1f KB -> t1 %.1f KB -> t2 %.1f KB (%.1fx)",
				w.Name, len(wet.Nodes), len(wet.Edges),
				float64(rep.OrigTotal())/1024, float64(rep.T1Total())/1024, float64(rep.T2Total())/1024, ratio)
			if ratio < 2 {
				t.Fatalf("%s: overall compression ratio %.2f is implausibly low", w.Name, ratio)
			}
		})
	}
}

func buildChecked(st *interp.Static, b *core.Builder, in []int64) (*core.WET, *interp.Result, error) {
	// Equivalent of core.Build but with the determinism check enabled.
	cnt := traceCounting(b)
	res, err := interp.Run(st, interp.Options{Inputs: in, Sink: cnt})
	if err != nil {
		return nil, nil, err
	}
	w, err := b.Finish()
	if err != nil {
		return nil, nil, err
	}
	w.Raw = cnt.RawStats
	return w, res, nil
}

func traceCounting(next trace.Sink) *trace.Counting { return trace.NewCounting(next) }

// TestSoakLargeRun builds a ~2M statement WET and cross-checks queries —
// a scaled-down version of the paper's long-run scenario.
func TestSoakLargeRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	w, err := ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	scale, err := ScaleFor(w, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	p, in := w.Build(scale)
	st, err := interp.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	wet, res, err := core.Build(st, interp.Options{Inputs: in})
	if err != nil {
		t.Fatal(err)
	}
	rep := wet.Freeze(core.FreezeOptions{})
	if res.Steps < 2_000_000 {
		t.Fatalf("soak ran only %d statements", res.Steps)
	}
	if err := wet.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	ratio := core.Ratio(rep.OrigTotal(), rep.T2Total())
	if ratio < 10 {
		t.Fatalf("soak compression ratio %.1f", ratio)
	}
	// The full control flow trace reconstructs at both tiers.
	n1 := query.ExtractCF(wet, core.Tier1, true, nil)
	n2 := query.ExtractCF(wet, core.Tier2, true, nil)
	if n1 != res.Steps || n2 != res.Steps {
		t.Fatalf("CF trace %d/%d stmts, ran %d", n1, n2, res.Steps)
	}
	t.Logf("soak: %d stmts, ratio %.1fx, %d nodes, %d edges",
		res.Steps, ratio, len(wet.Nodes), len(wet.Edges))
}

// TestStatementsPerPath documents the fidelity metric discussed in
// EXPERIMENTS.md: dynamic statements per Ball-Larus path execution should
// sit in a realistic band (Trimaran SpecInt averages ~38; single digits
// would mean toy blocks).
func TestStatementsPerPath(t *testing.T) {
	for _, w := range All() {
		p, in := w.Build(1)
		st, err := interp.Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		wet, res, err := core.Build(st, interp.Options{Inputs: in})
		if err != nil {
			t.Fatal(err)
		}
		spp := float64(res.Steps) / float64(wet.Raw.PathExecs)
		if spp < 6 {
			t.Fatalf("%s: %.1f statements per path execution — blocks too small", w.Name, spp)
		}
		t.Logf("%s: %.1f statements per path execution", w.Name, spp)
	}
}
