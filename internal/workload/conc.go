package workload

import (
	"fmt"

	"wet/internal/ir"
)

// Concurrent workload variants (DESIGN.md §9). Three of the nine benchmarks
// get a two-worker fork-join variant, each in a seeded racy and a race-free
// flavour. They live in their own registry — ConcAll / ConcByName — so the
// paper-table registry (All) keeps its pinned nine names.
//
// Every variant follows the same discipline: cross-thread-visible words are
// touched only through the annotated shared ops (LoadShared/StoreShared) at
// small fixed addresses, while the bulk of the benchmark-flavoured work runs
// on per-thread private regions with plain loads and stores. The clean
// flavours protect every shared word with one consistent lock (or touch it
// only before the spawns / after the joins); the racy flavours drop the lock
// on selected accesses — and mcf additionally seeds a lockset-only candidate
// (RC003): two writes to the same word under different locks, ordered only
// by a lock-timed flag handshake rather than by the fork-join structure.

// ConcWorkload names one concurrent benchmark variant.
type ConcWorkload struct {
	Name string
	// Base is the sequential benchmark this variant derives from.
	Base string
	// Racy marks the seeded-race flavour; the clean flavour of the same
	// base must report no races.
	Racy bool
	// Mimics documents the concurrency structure added to the base.
	Mimics string
	// Build constructs the program and its input tape.
	Build func(scale int) (*ir.Program, []int64)
}

// ConcAll returns the concurrent workload variants (racy and clean flavour
// per base benchmark).
func ConcAll() []ConcWorkload {
	return []ConcWorkload{
		{"li-conc-racy", "li", true,
			"two bytecode workers bump a shared allocation counter without a lock",
			func(s int) (*ir.Program, []int64) { return buildConcLi(s, true) }},
		{"li-conc-clean", "li", false,
			"two bytecode workers bump a shared allocation counter under one lock",
			func(s int) (*ir.Program, []int64) { return buildConcLi(s, false) }},
		{"gzip-conc-racy", "gzip", true,
			"two half-buffer compressors merge match stats without a lock",
			func(s int) (*ir.Program, []int64) { return buildConcGzip(s, true) }},
		{"gzip-conc-clean", "gzip", false,
			"two half-buffer compressors merge match stats under one lock",
			func(s int) (*ir.Program, []int64) { return buildConcGzip(s, false) }},
		{"mcf-conc-racy", "mcf", true,
			"relaxation workers race a potential word and seed a lockset candidate",
			func(s int) (*ir.Program, []int64) { return buildConcMCF(s, true) }},
		{"mcf-conc-clean", "mcf", false,
			"relaxation workers update the potential word under one lock",
			func(s int) (*ir.Program, []int64) { return buildConcMCF(s, false) }},
	}
}

// ConcByName returns the named concurrent variant.
func ConcByName(name string) (ConcWorkload, error) {
	for _, w := range ConcAll() {
		if w.Name == name {
			return w, nil
		}
	}
	return ConcWorkload{}, fmt.Errorf("workload: unknown concurrent variant %q (have li-conc-racy li-conc-clean gzip-conc-racy gzip-conc-clean mcf-conc-racy mcf-conc-clean)", name)
}

// Shared-word addresses and lock ids common to the concurrent variants.
// Shared words sit in the low memory words, below every private region.
const (
	cShCounter = 0 // shared counter / stats word
	cShExtra   = 1 // second shared word (mcf: the RC003 target)
	cShFlag    = 2 // mcf: handshake flag
	cLockMain  = 1 // the consistent lock of the clean flavours
	cLockFlag  = 2 // mcf: handshake lock
	cLockA     = 3 // mcf racy: worker A's lock for the RC003 word
	cLockB     = 4 // mcf racy: worker B's lock for the RC003 word
)

// sharedBump emits the worker-side counter update: counter += v, locked or
// bare depending on the flavour. The bare flavour is the seeded race — an
// unsynchronized read-modify-write gives both a write-write (RC001) and a
// read-write (RC002) pair against the sibling worker.
func sharedBump(fb *ir.FuncBuilder, word int64, v ir.Operand, locked bool) {
	if locked {
		fb.LockAcq(ir.Imm(cLockMain))
	}
	c := fb.NewReg()
	fb.LoadShared(c, ir.Imm(0), word)
	fb.Add(c, ir.R(c), v)
	fb.StoreShared(ir.Imm(0), word, ir.R(c))
	if locked {
		fb.LockRel(ir.Imm(cLockMain))
	}
}

// forkJoinMain emits the common main function: spawn worker(0, scale) and
// worker(1, scale), join both, and output the joined results plus the final
// shared counter (read after the joins: fork-join ordered, never a race).
func forkJoinMain(p *ir.Program, scale int) {
	fb := p.NewFunc("main", 0)
	p.Entry = len(p.Funcs) - 1
	t1 := fb.NewReg()
	t2 := fb.NewReg()
	fb.Spawn(t1, "worker", ir.Imm(0), ir.Imm(int64(scale)))
	fb.Spawn(t2, "worker", ir.Imm(1), ir.Imm(int64(scale)))
	r1 := fb.NewReg()
	r2 := fb.NewReg()
	fb.Join(r1, ir.R(t1))
	fb.Join(r2, ir.R(t2))
	fb.Output(ir.R(r1))
	fb.Output(ir.R(r2))
	fin := fb.NewReg()
	fb.LoadShared(fin, ir.Imm(0), cShCounter)
	fb.Output(ir.R(fin))
	fb.Halt()
}

// buildConcLi is the concurrent 130.li variant: each worker interprets a
// private bytecode tape (the sequential workload's dispatch structure) and
// counts "allocations" in the shared counter.
func buildConcLi(scale int, racy bool) (*ir.Program, []int64) {
	const (
		cells   = 64  // private cell heap per worker
		tape    = 48  // private bytecode tape length
		regionW = 256 // per-worker private region stride
		private = 16  // first private word
	)
	p := ir.NewProgram(4096)

	wk := p.NewFunc("worker", 2)
	{
		id := wk.Param(0)
		n := wk.Param(1)
		base := wk.NewReg()
		wk.Mul(base, ir.R(id), ir.Imm(regionW))
		wk.Add(base, ir.R(base), ir.Imm(private))
		seed := wk.NewReg()
		wk.Add(seed, ir.R(id), ir.Imm(77))
		// Private tape of bytecodes and a private cell heap.
		op := wk.NewReg()
		addr := wk.NewReg()
		wk.For(ir.Imm(0), ir.Imm(tape), ir.Imm(1), func(i ir.Reg) {
			lcg(wk, seed, op, 5)
			wk.Add(addr, ir.R(base), ir.R(i))
			wk.Store(ir.R(addr), 0, ir.R(op))
		})
		acc := wk.ConstReg(0)
		v := wk.NewReg()
		slot := wk.NewReg()
		cell := wk.NewReg()
		wk.For(ir.Imm(0), ir.R(n), ir.Imm(1), func(pass ir.Reg) {
			wk.For(ir.Imm(0), ir.Imm(tape), ir.Imm(1), func(pc ir.Reg) {
				wk.Add(addr, ir.R(base), ir.R(pc))
				wk.Load(op, ir.R(addr), 0)
				lcg(wk, seed, slot, cells)
				wk.Add(cell, ir.R(slot), ir.R(base))
				// Dispatch on the bytecode, like the sequential li's
				// eval loop: arithmetic ops on private cells, plus an
				// "allocate" op that bumps the shared counter.
				c := wk.NewReg()
				wk.Eq(c, ir.R(op), ir.Imm(0))
				wk.If(ir.R(c), func() {
					wk.Load(v, ir.R(cell), tape)
					wk.Add(v, ir.R(v), ir.Imm(1))
					wk.Store(ir.R(cell), tape, ir.R(v))
				}, func() {
					wk.Eq(c, ir.R(op), ir.Imm(1))
					wk.If(ir.R(c), func() {
						// Allocation: the cross-thread interaction.
						sharedBump(wk, cShCounter, ir.Imm(1), !racy)
						wk.Add(acc, ir.R(acc), ir.Imm(1))
					}, func() {
						wk.Load(v, ir.R(cell), tape)
						stats(wk, acc, v, op)
						wk.Store(ir.R(cell), tape, ir.R(acc))
					})
				})
			})
		})
		wk.Ret(ir.R(acc))
	}

	forkJoinMain(p, scale)
	p.MustFinalize()
	return p, nil
}

// buildConcGzip is the concurrent 164.gzip variant: each worker runs the
// LZ77-ish hash/match loop over its own half of the buffer and merges its
// match count into the shared stats word per pass.
func buildConcGzip(scale int, racy bool) (*ir.Program, []int64) {
	const (
		private = 16
		bufLen  = 300
		hashSz  = 64
		maxCmp  = 8
		regionW = 1024 // buffer + private hash heads per worker
	)
	p := ir.NewProgram(8192)

	wk := p.NewFunc("worker", 2)
	{
		id := wk.Param(0)
		n := wk.Param(1)
		buf := wk.NewReg()
		wk.Mul(buf, ir.R(id), ir.Imm(regionW))
		wk.Add(buf, ir.R(buf), ir.Imm(private))
		heads := wk.NewReg()
		wk.Add(heads, ir.R(buf), ir.Imm(bufLen))
		seed := wk.NewReg()
		wk.Add(seed, ir.R(id), ir.Imm(424242))
		// Compressible private input half.
		v := wk.ConstReg(0)
		r := wk.NewReg()
		addr := wk.NewReg()
		wk.For(ir.Imm(0), ir.Imm(bufLen), ir.Imm(1), func(i ir.Reg) {
			lcg(wk, seed, r, 100)
			c := wk.NewReg()
			wk.Lt(c, ir.R(r), ir.Imm(20))
			wk.If(ir.R(c), func() {
				lcg(wk, seed, v, 16)
			}, nil)
			wk.Add(addr, ir.R(buf), ir.R(i))
			wk.Store(ir.R(addr), 0, ir.R(v))
		})
		matches := wk.ConstReg(0)
		h := wk.NewReg()
		c0 := wk.NewReg()
		c1 := wk.NewReg()
		cand := wk.NewReg()
		mlen := wk.NewReg()
		cc := wk.NewReg()
		a := wk.NewReg()
		b := wk.NewReg()
		wk.For(ir.Imm(0), ir.R(n), ir.Imm(1), func(pass ir.Reg) {
			fromPrev := wk.ConstReg(0)
			wk.For(ir.Imm(0), ir.Imm(bufLen-maxCmp-2), ir.Imm(1), func(pos ir.Reg) {
				wk.Add(addr, ir.R(buf), ir.R(pos))
				wk.Load(c0, ir.R(addr), 0)
				wk.Load(c1, ir.R(addr), 1)
				wk.Mul(h, ir.R(c0), ir.Imm(33))
				wk.Add(h, ir.R(h), ir.R(c1))
				wk.Mod(h, ir.R(h), ir.Imm(hashSz))
				wk.Add(addr, ir.R(heads), ir.R(h))
				wk.Load(cand, ir.R(addr), 0)
				wk.Store(ir.R(addr), 0, ir.R(pos))
				wk.Lt(cc, ir.R(cand), ir.R(pos))
				wk.If(ir.R(cc), func() {
					wk.Const(mlen, 0)
					wk.While(func() ir.Operand {
						wk.Lt(cc, ir.R(mlen), ir.Imm(maxCmp))
						wk.If(ir.R(cc), func() {
							wk.Add(a, ir.R(buf), ir.R(pos))
							wk.Add(a, ir.R(a), ir.R(mlen))
							wk.Load(a, ir.R(a), 0)
							wk.Add(b, ir.R(buf), ir.R(cand))
							wk.Add(b, ir.R(b), ir.R(mlen))
							wk.Load(b, ir.R(b), 0)
							wk.Eq(cc, ir.R(a), ir.R(b))
						}, nil)
						return ir.R(cc)
					}, func() {
						wk.Add(mlen, ir.R(mlen), ir.Imm(1))
					})
					wk.Ge(cc, ir.R(mlen), ir.Imm(3))
					wk.If(ir.R(cc), func() {
						wk.Add(matches, ir.R(matches), ir.Imm(1))
						wk.Add(fromPrev, ir.R(fromPrev), ir.Imm(1))
					}, nil)
				}, nil)
			})
			// Merge this pass's match count into the shared stats word.
			sharedBump(wk, cShCounter, ir.R(fromPrev), !racy)
		})
		wk.Ret(ir.R(matches))
	}

	forkJoinMain(p, scale)
	p.MustFinalize()
	return p, nil
}

// buildConcMCF is the concurrent 181.mcf variant: each worker runs
// relaxation sweeps over a private arc array and folds its tally into the
// shared potential word. The racy flavour drops the lock on that word and
// additionally seeds the RC003 lockset-only candidate on a second word: the
// two workers write it under different locks, ordered only by a lock-timed
// flag handshake (not by the fork-join structure), so the pair is ordered
// in this schedule yet lockset-undisciplined.
func buildConcMCF(scale int, racy bool) (*ir.Program, []int64) {
	const (
		private = 16
		arcs    = 200
		regionW = 512
	)
	p := ir.NewProgram(4096)

	wk := p.NewFunc("worker", 2)
	{
		id := wk.Param(0)
		n := wk.Param(1)
		base := wk.NewReg()
		wk.Mul(base, ir.R(id), ir.Imm(regionW))
		wk.Add(base, ir.R(base), ir.Imm(private))
		seed := wk.NewReg()
		wk.Add(seed, ir.R(id), ir.Imm(1313))
		// Private arc costs.
		v := wk.NewReg()
		addr := wk.NewReg()
		wk.For(ir.Imm(0), ir.Imm(arcs), ir.Imm(1), func(i ir.Reg) {
			lcg(wk, seed, v, 1000)
			wk.Add(addr, ir.R(base), ir.R(i))
			wk.Store(ir.R(addr), 0, ir.R(v))
		})
		relaxed := wk.ConstReg(0)
		cost := wk.NewReg()
		best := wk.NewReg()
		cc := wk.NewReg()
		wk.For(ir.Imm(0), ir.R(n), ir.Imm(1), func(pass ir.Reg) {
			wk.Const(best, 1<<30)
			sweepRelaxed := wk.ConstReg(0)
			wk.For(ir.Imm(0), ir.Imm(arcs), ir.Imm(1), func(i ir.Reg) {
				wk.Add(addr, ir.R(base), ir.R(i))
				wk.Load(cost, ir.R(addr), 0)
				stats(wk, relaxed, cost)
				wk.Lt(cc, ir.R(cost), ir.R(best))
				wk.If(ir.R(cc), func() {
					wk.Add(best, ir.R(cost), ir.Imm(0))
					wk.Add(sweepRelaxed, ir.R(sweepRelaxed), ir.Imm(1))
					// Decay the arc so later sweeps relax different arcs.
					wk.Add(cost, ir.R(cost), ir.Imm(3))
					wk.Store(ir.R(addr), 0, ir.R(cost))
				}, nil)
			})
			// Fold the sweep tally into the shared potential word.
			sharedBump(wk, cShCounter, ir.R(sweepRelaxed), !racy)
		})

		if racy {
			// RC003 seed: worker 0 writes the extra word under lock A, then
			// raises the flag under the flag lock; worker 1 spins on the
			// flag (under the flag lock) and then writes the extra word
			// under lock B. The writes are ordered — through the lock-timed
			// handshake only — but hold no lock in common.
			isA := wk.NewReg()
			wk.Eq(isA, ir.R(id), ir.Imm(0))
			wk.If(ir.R(isA), func() {
				wk.LockAcq(ir.Imm(cLockA))
				wk.StoreShared(ir.Imm(0), cShExtra, ir.R(relaxed))
				wk.LockRel(ir.Imm(cLockA))
				wk.LockAcq(ir.Imm(cLockFlag))
				wk.StoreShared(ir.Imm(0), cShFlag, ir.Imm(1))
				wk.LockRel(ir.Imm(cLockFlag))
			}, func() {
				fv := wk.ConstReg(0)
				notDone := wk.NewReg()
				spin := wk.NewReg()
				wk.While(func() ir.Operand {
					wk.LockAcq(ir.Imm(cLockFlag))
					wk.LoadShared(fv, ir.Imm(0), cShFlag)
					wk.LockRel(ir.Imm(cLockFlag))
					wk.Eq(notDone, ir.R(fv), ir.Imm(0))
					return ir.R(notDone)
				}, func() {
					// Private busy work between polls.
					lcg(wk, seed, spin, 97)
				})
				wk.LockAcq(ir.Imm(cLockB))
				wk.StoreShared(ir.Imm(0), cShExtra, ir.R(relaxed))
				wk.LockRel(ir.Imm(cLockB))
			})
		}
		wk.Ret(ir.R(relaxed))
	}

	forkJoinMain(p, scale)
	p.MustFinalize()
	return p, nil
}
