package cliutil

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"time"
)

// ExitCancelled is returned when the command was cancelled (SIGINT) or ran
// past its -timeout deadline. Scripts can dispatch on it the same way they
// do on ExitIntegrity/ExitSalvaged.
const ExitCancelled = 5

// Context builds the root context of a command: cancelled on SIGINT (so ^C
// unwinds the pipeline cooperatively — partial state released, temp files
// cleaned — instead of killing the process mid-write), and additionally
// deadline-bounded when timeout > 0. The returned stop releases the signal
// registration; a second SIGINT while unwinding still kills the process via
// the default handler, so a wedged command stays interruptible.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	if timeout <= 0 {
		return ctx, stop
	}
	// The cause wraps DeadlineExceeded so IsCancelled/ExitCode recognize it
	// after it has propagated out as context.Cause.
	tctx, cancel := context.WithTimeoutCause(ctx, timeout,
		fmt.Errorf("cliutil: -timeout %v elapsed: %w", timeout, context.DeadlineExceeded))
	return tctx, func() { cancel(); stop() }
}

// IsCancelled reports whether err is (or wraps) a context cancellation or
// deadline expiry — the errors Context produces when ^C or -timeout fires.
func IsCancelled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ExitCode maps an error to the command exit code convention: nil is
// ExitOK, cancellation/deadline is ExitCancelled, everything else
// ExitError. Callers that distinguish integrity failures check those first.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case IsCancelled(err):
		return ExitCancelled
	default:
		return ExitError
	}
}
