package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseBytes reads a human-friendly byte size: "0", "4096", "64KiB",
// "32MiB", "1GiB" (and KB/MB/GB as the same power-of-two units). Shared by
// every command that takes a byte-budget flag (wetd -budget, wetrun
// -budget, wetbench -budgetjson sweeps).
func ParseBytes(s string) (uint64, error) {
	t := strings.TrimSpace(s)
	mult := uint64(1)
	for _, suf := range []struct {
		s string
		m uint64
	}{{"GiB", 1 << 30}, {"GB", 1 << 30}, {"MiB", 1 << 20}, {"MB", 1 << 20}, {"KiB", 1 << 10}, {"KB", 1 << 10}, {"B", 1}} {
		if strings.HasSuffix(t, suf.s) {
			t, mult = strings.TrimSuffix(t, suf.s), suf.m
			break
		}
	}
	n, err := strconv.ParseUint(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return n * mult, nil
}
