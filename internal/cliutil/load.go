// Package cliutil holds the file-opening conventions shared by the CLIs
// that read .wet files: the -salvage escape hatch and the typed exit codes
// scripts can dispatch on.
package cliutil

import (
	"errors"
	"fmt"
	"os"

	"wet/internal/core"
	"wet/internal/wetio"
)

// Typed exit codes for the .wet-reading commands.
const (
	ExitOK        = 0 // success
	ExitError     = 1 // any non-integrity failure
	ExitUsage     = 2 // bad command line
	ExitIntegrity = 3 // file failed structural/checksum validation
	ExitSalvaged  = 4 // loaded with data loss under -salvage
)

// LoadWET opens and loads one WET file. Integrity failures
// (*wetio.FormatError) exit with ExitIntegrity; with salvage enabled, a
// lossy load prints the salvage report to stderr and exits ExitSalvaged
// only after run() completes — the caller's queries still run on the
// recovered prefix. run is invoked with the loaded WET; its return value
// becomes the exit code unless salvage loss raises it.
func LoadWET(cmd, path string, opts wetio.LoadOptions, run func(*core.WET) int) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", cmd, err)
		return ExitError
	}
	w, rep, err := wetio.LoadWithReport(f, opts)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %s: %v\n", cmd, path, err)
		// A cancelled load (LoadOptions.Ctx) is reported as cancellation,
		// never as an integrity failure — the file may be fine.
		if IsCancelled(err) {
			return ExitCancelled
		}
		var fe *wetio.FormatError
		if errors.As(err, &fe) {
			return ExitIntegrity
		}
		return ExitError
	}
	lossy := rep != nil && !rep.Clean()
	if lossy {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", cmd, path, rep)
	}
	code := run(w)
	if code == ExitOK && lossy {
		return ExitSalvaged
	}
	return code
}
