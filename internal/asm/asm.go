// Package asm parses the textual IR format (".wir" files), a small
// assembly-like front end over internal/ir so programs can be written,
// saved, and profiled without Go code:
//
//	# comment
//	mem 4096
//
//	func main() {
//	    n = const 10
//	    acc = const 0
//	loop:
//	    c = gt n, 0
//	    br c, body, done
//	body:
//	    acc = add acc, n
//	    n = sub n, 1
//	    jmp loop
//	done:
//	    output acc
//	    halt
//	}
//
// Registers are named identifiers, allocated on first definition (reading
// an undefined name is an error). Labels introduce basic blocks; a block
// without an explicit terminator falls through to the next label via an
// inserted jmp. Statements:
//
//	d = const N            d = <binop> a, b       d = neg a | d = not a
//	d = load a, OFF        store a, OFF, v        d = input
//	output v               d = call f(a, b)       call f(a)
//	jmp L                  br c, L1, L2           ret v
//	halt
//
// A call may name its continuation explicitly (`d = call f(a) -> L`);
// otherwise control continues at the statement after the call.
//
// where <binop> is one of add sub mul div mod and or xor shl shr eq ne lt
// le gt ge. Operands are register names or integer immediates.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"wet/internal/ir"
)

// ParseError locates a syntax error.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...interface{}) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

var binOps = map[string]ir.Op{
	"add": ir.OpAdd, "sub": ir.OpSub, "mul": ir.OpMul, "div": ir.OpDiv,
	"mod": ir.OpMod, "and": ir.OpAnd, "or": ir.OpOr, "xor": ir.OpXor,
	"shl": ir.OpShl, "shr": ir.OpShr, "eq": ir.OpEq, "ne": ir.OpNe,
	"lt": ir.OpLt, "le": ir.OpLe, "gt": ir.OpGt, "ge": ir.OpGe,
}

type rawStmt struct {
	line  int
	label string // non-empty for label lines
	text  string
}

type rawFunc struct {
	line   int
	name   string
	params []string
	stmts  []rawStmt
}

// Parse compiles source text into a finalized program.
func Parse(src string) (*ir.Program, error) {
	mem := int64(1 << 12)
	var funcs []*rawFunc
	var cur *rawFunc
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		lineNo := i + 1
		line := raw
		if idx := strings.IndexAny(line, "#;"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "mem "):
			if cur != nil {
				return nil, errf(lineNo, "mem directive inside a function")
			}
			v, err := strconv.ParseInt(strings.TrimSpace(line[4:]), 0, 64)
			if err != nil {
				return nil, errf(lineNo, "bad mem size: %v", err)
			}
			mem = v
		case strings.HasPrefix(line, "func "):
			if cur != nil {
				return nil, errf(lineNo, "nested func")
			}
			name, params, err := parseFuncHeader(line)
			if err != nil {
				return nil, errf(lineNo, "%v", err)
			}
			cur = &rawFunc{line: lineNo, name: name, params: params}
		case line == "}":
			if cur == nil {
				return nil, errf(lineNo, "unmatched }")
			}
			funcs = append(funcs, cur)
			cur = nil
		case strings.HasSuffix(line, ":"):
			if cur == nil {
				return nil, errf(lineNo, "label outside function")
			}
			lbl := strings.TrimSuffix(line, ":")
			if !isIdent(lbl) {
				return nil, errf(lineNo, "bad label %q", lbl)
			}
			cur.stmts = append(cur.stmts, rawStmt{line: lineNo, label: lbl})
		default:
			if cur == nil {
				return nil, errf(lineNo, "statement outside function")
			}
			cur.stmts = append(cur.stmts, rawStmt{line: lineNo, text: line})
		}
	}
	if cur != nil {
		return nil, errf(len(lines), "missing } for func %s", cur.name)
	}
	if len(funcs) == 0 {
		return nil, errf(1, "no functions")
	}

	prog := ir.NewProgram(mem)
	entry := -1
	for idx, rf := range funcs {
		if rf.name == "main" {
			entry = idx
		}
		f, err := buildFunc(rf)
		if err != nil {
			return nil, err
		}
		prog.AddRawFunc(f)
	}
	if entry < 0 {
		return nil, errf(1, "no main function")
	}
	prog.Entry = entry
	if err := prog.Finalize(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return prog, nil
}

func parseFuncHeader(line string) (string, []string, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "func "))
	open := strings.Index(rest, "(")
	closeP := strings.Index(rest, ")")
	if open < 0 || closeP < open || strings.TrimSpace(rest[closeP+1:]) != "{" {
		return "", nil, fmt.Errorf("want `func name(params...) {`")
	}
	name := strings.TrimSpace(rest[:open])
	if !isIdent(name) {
		return "", nil, fmt.Errorf("bad function name %q", name)
	}
	var params []string
	inner := strings.TrimSpace(rest[open+1 : closeP])
	if inner != "" {
		for _, f := range strings.Split(inner, ",") {
			f = strings.TrimSpace(f)
			if !isIdent(f) {
				return "", nil, fmt.Errorf("bad parameter %q", f)
			}
			params = append(params, f)
		}
	}
	return name, params, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	// Integers must not be mistaken for identifiers (handled by the caller
	// ordering), and keywords cannot be registers or labels.
	switch s {
	case "const", "load", "store", "input", "output", "jmp", "br", "ret",
		"halt", "call", "func", "mem", "neg", "not":
		return false
	}
	if _, isOp := binOps[s]; isOp {
		return false
	}
	return true
}

// patch records a block whose successors are label names to resolve later.
type patch struct {
	line   int
	blk    *ir.Block
	labels []string
}

type fnBuilder struct {
	f       *ir.Func
	regs    map[string]ir.Reg
	labels  map[string]int
	patches []patch
	cur     *ir.Block
	rf      *rawFunc
}

func buildFunc(rf *rawFunc) (*ir.Func, error) {
	b := &fnBuilder{
		f:      &ir.Func{Name: rf.name, Params: len(rf.params), NumRegs: len(rf.params)},
		regs:   map[string]ir.Reg{},
		labels: map[string]int{},
		rf:     rf,
	}
	for i, p := range rf.params {
		if _, dup := b.regs[p]; dup {
			return nil, errf(rf.line, "duplicate parameter %q", p)
		}
		b.regs[p] = ir.Reg(i)
	}
	b.cur = b.newBlock()

	for _, rs := range rf.stmts {
		if rs.label != "" {
			if err := b.startLabel(rs); err != nil {
				return nil, err
			}
			continue
		}
		if b.cur == nil {
			return nil, errf(rs.line, "unreachable statement (previous block already terminated)")
		}
		if err := b.stmt(rs); err != nil {
			return nil, err
		}
	}
	if b.cur != nil {
		return nil, errf(rf.line, "func %s: final block lacks a terminator (ret/halt/jmp)", rf.name)
	}
	// Resolve label targets.
	for _, pt := range b.patches {
		for _, lbl := range pt.labels {
			id, ok := b.labels[lbl]
			if !ok {
				return nil, errf(pt.line, "undefined label %q", lbl)
			}
			pt.blk.Succs = append(pt.blk.Succs, id)
		}
	}
	return b.f, nil
}

func (b *fnBuilder) newBlock() *ir.Block {
	blk := &ir.Block{ID: len(b.f.Blocks)}
	b.f.Blocks = append(b.f.Blocks, blk)
	return blk
}

// startLabel opens the labeled block, inserting a fallthrough jmp if the
// previous block is still open.
func (b *fnBuilder) startLabel(rs rawStmt) error {
	if _, dup := b.labels[rs.label]; dup {
		return errf(rs.line, "duplicate label %q", rs.label)
	}
	var blk *ir.Block
	if b.cur != nil && len(b.cur.Stmts) == 0 {
		// The open block is empty (e.g. a label at function start, or two
		// consecutive labels): reuse it.
		blk = b.cur
	} else {
		blk = b.newBlock()
		if b.cur != nil {
			b.cur.Stmts = append(b.cur.Stmts, &ir.Stmt{Op: ir.OpJmp, Dest: ir.NoReg})
			b.cur.Succs = []int{blk.ID}
		}
	}
	b.labels[rs.label] = blk.ID
	b.cur = blk
	return nil
}

// reg resolves (or, when define is true, allocates) a named register.
func (b *fnBuilder) reg(line int, name string, define bool) (ir.Reg, error) {
	if r, ok := b.regs[name]; ok {
		return r, nil
	}
	if !define {
		return 0, errf(line, "register %q used before definition", name)
	}
	if !isIdent(name) {
		return 0, errf(line, "bad register name %q", name)
	}
	r := ir.Reg(b.f.NumRegs)
	b.f.NumRegs++
	b.regs[name] = r
	return r, nil
}

// operand parses a register name or an immediate.
func (b *fnBuilder) operand(line int, tok string) (ir.Operand, error) {
	tok = strings.TrimSpace(tok)
	if v, err := strconv.ParseInt(tok, 0, 64); err == nil {
		return ir.Imm(v), nil
	}
	r, err := b.reg(line, tok, false)
	if err != nil {
		return ir.Operand{}, err
	}
	return ir.R(r), nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func (b *fnBuilder) emit(s *ir.Stmt) { b.cur.Stmts = append(b.cur.Stmts, s) }

// stmt parses and emits one statement line.
func (b *fnBuilder) stmt(rs rawStmt) error {
	line, text := rs.line, rs.text
	if eq := strings.Index(text, "="); eq > 0 && !strings.ContainsAny(text[:eq], "(,") {
		lhs := strings.TrimSpace(text[:eq])
		rhs := strings.TrimSpace(text[eq+1:])
		return b.assign(line, lhs, rhs)
	}
	fields := strings.SplitN(text, " ", 2)
	op := fields[0]
	rest := ""
	if len(fields) > 1 {
		rest = strings.TrimSpace(fields[1])
	}
	switch op {
	case "store":
		args := splitArgs(rest)
		if len(args) != 3 {
			return errf(line, "want `store addr, off, value`")
		}
		addr, err := b.operand(line, args[0])
		if err != nil {
			return err
		}
		off, err := strconv.ParseInt(args[1], 0, 64)
		if err != nil {
			return errf(line, "bad store offset %q", args[1])
		}
		val, err := b.operand(line, args[2])
		if err != nil {
			return err
		}
		b.emit(&ir.Stmt{Op: ir.OpStore, Dest: ir.NoReg, A: addr, Off: off, B: val})
	case "output":
		v, err := b.operand(line, rest)
		if err != nil {
			return err
		}
		b.emit(&ir.Stmt{Op: ir.OpOutput, Dest: ir.NoReg, A: v})
	case "jmp":
		if !isIdent(rest) {
			return errf(line, "bad jmp target %q", rest)
		}
		b.emit(&ir.Stmt{Op: ir.OpJmp, Dest: ir.NoReg})
		b.patches = append(b.patches, patch{line: line, blk: b.cur, labels: []string{rest}})
		b.cur = nil
	case "br":
		args := splitArgs(rest)
		if len(args) != 3 {
			return errf(line, "want `br cond, thenLabel, elseLabel`")
		}
		cond, err := b.operand(line, args[0])
		if err != nil {
			return err
		}
		if !isIdent(args[1]) || !isIdent(args[2]) {
			return errf(line, "bad branch targets %q, %q", args[1], args[2])
		}
		b.emit(&ir.Stmt{Op: ir.OpBr, Dest: ir.NoReg, A: cond})
		b.patches = append(b.patches, patch{line: line, blk: b.cur, labels: []string{args[1], args[2]}})
		b.cur = nil
	case "ret":
		v, err := b.operand(line, rest)
		if err != nil {
			return err
		}
		b.emit(&ir.Stmt{Op: ir.OpRet, Dest: ir.NoReg, A: v})
		b.cur = nil
	case "halt":
		if rest != "" {
			return errf(line, "halt takes no operands")
		}
		b.emit(&ir.Stmt{Op: ir.OpHalt, Dest: ir.NoReg})
		b.cur = nil
	case "call":
		return b.call(line, "", rest)
	default:
		return errf(line, "unknown statement %q", text)
	}
	return nil
}

// assign handles `d = ...` forms.
func (b *fnBuilder) assign(line int, lhs, rhs string) error {
	fields := strings.SplitN(rhs, " ", 2)
	op := fields[0]
	rest := ""
	if len(fields) > 1 {
		rest = strings.TrimSpace(fields[1])
	}
	if op == "call" || strings.HasPrefix(rhs, "call") {
		return b.call(line, lhs, strings.TrimSpace(strings.TrimPrefix(rhs, "call")))
	}
	dst, err := b.reg(line, lhs, true)
	if err != nil {
		return err
	}
	switch {
	case op == "const":
		v, err := strconv.ParseInt(rest, 0, 64)
		if err != nil {
			return errf(line, "bad constant %q", rest)
		}
		b.emit(&ir.Stmt{Op: ir.OpConst, Dest: dst, A: ir.Imm(v)})
	case op == "input":
		if rest != "" {
			return errf(line, "input takes no operands")
		}
		b.emit(&ir.Stmt{Op: ir.OpInput, Dest: dst})
	case op == "load":
		args := splitArgs(rest)
		if len(args) != 2 {
			return errf(line, "want `d = load addr, off`")
		}
		addr, err := b.operand(line, args[0])
		if err != nil {
			return err
		}
		off, err := strconv.ParseInt(args[1], 0, 64)
		if err != nil {
			return errf(line, "bad load offset %q", args[1])
		}
		b.emit(&ir.Stmt{Op: ir.OpLoad, Dest: dst, A: addr, Off: off})
	case op == "neg" || op == "not":
		a, err := b.operand(line, rest)
		if err != nil {
			return err
		}
		o := ir.OpNeg
		if op == "not" {
			o = ir.OpNot
		}
		b.emit(&ir.Stmt{Op: o, Dest: dst, A: a})
	default:
		bop, ok := binOps[op]
		if !ok {
			// `d = x` move sugar.
			if rest == "" {
				a, err := b.operand(line, op)
				if err != nil {
					return errf(line, "unknown operation %q", op)
				}
				b.emit(&ir.Stmt{Op: ir.OpAdd, Dest: dst, A: a, B: ir.Imm(0)})
				return nil
			}
			return errf(line, "unknown operation %q", op)
		}
		args := splitArgs(rest)
		if len(args) != 2 {
			return errf(line, "want `d = %s a, b`", op)
		}
		a, err := b.operand(line, args[0])
		if err != nil {
			return err
		}
		c, err := b.operand(line, args[1])
		if err != nil {
			return err
		}
		b.emit(&ir.Stmt{Op: bop, Dest: dst, A: a, B: c})
	}
	return nil
}

// call parses `f(a, b) [-> label]` and emits the call, splitting the block.
func (b *fnBuilder) call(line int, dstName, rest string) error {
	contLabel := ""
	if arrow := strings.Index(rest, "->"); arrow >= 0 {
		contLabel = strings.TrimSpace(rest[arrow+2:])
		rest = strings.TrimSpace(rest[:arrow])
		if !isIdent(contLabel) {
			return errf(line, "bad call continuation label %q", contLabel)
		}
	}
	open := strings.Index(rest, "(")
	closeP := strings.LastIndex(rest, ")")
	if open < 0 || closeP < open || strings.TrimSpace(rest[closeP+1:]) != "" {
		return errf(line, "want `call f(args...)`")
	}
	callee := strings.TrimSpace(rest[:open])
	if !isIdent(callee) {
		return errf(line, "bad callee %q", callee)
	}
	var args []ir.Operand
	for _, tok := range splitArgs(rest[open+1 : closeP]) {
		a, err := b.operand(line, tok)
		if err != nil {
			return err
		}
		args = append(args, a)
	}
	dst := ir.NoReg
	if dstName != "" {
		r, err := b.reg(line, dstName, true)
		if err != nil {
			return err
		}
		dst = r
	}
	b.emit(&ir.Stmt{Op: ir.OpCall, Dest: dst, CalleeName: callee, Args: args})
	if contLabel != "" {
		b.patches = append(b.patches, patch{line: line, blk: b.cur, labels: []string{contLabel}})
		b.cur = nil
		return nil
	}
	cont := b.newBlock()
	b.cur.Succs = []int{cont.ID}
	b.cur = cont
	return nil
}
