package asm

import (
	"fmt"
	"strings"

	"wet/internal/ir"
)

// Format renders a finalized program in the textual IR syntax accepted by
// Parse. Registers are printed as r<N> and every block gets a label, so
// Parse(Format(p)) reproduces an equivalent program (same shape, possibly
// different block numbering for call continuations).
func Format(p *ir.Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "mem %d\n", p.MemWords)
	// The entry function must be named main for Parse; emit it under its
	// own name and rely on the convention that workload entries are main.
	for _, f := range p.Funcs {
		sb.WriteByte('\n')
		formatFunc(&sb, f)
	}
	return sb.String()
}

func formatFunc(sb *strings.Builder, f *ir.Func) {
	params := make([]string, f.Params)
	for i := range params {
		params[i] = fmt.Sprintf("r%d", i)
	}
	fmt.Fprintf(sb, "func %s(%s) {\n", f.Name, strings.Join(params, ", "))
	label := func(b int) string { return fmt.Sprintf("b%d", b) }
	for _, b := range f.Blocks {
		// Every block gets a label (the parser reuses the empty entry block
		// for a label at function start, so block 0's label is harmless and
		// keeps self-referencing entry blocks parseable).
		fmt.Fprintf(sb, "%s:\n", label(b.ID))
		for _, s := range b.Stmts {
			sb.WriteString("    ")
			sb.WriteString(formatStmt(s, b, label))
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("}\n")
}

func operand(o ir.Operand) string {
	if o.IsReg {
		return fmt.Sprintf("r%d", o.Reg)
	}
	return fmt.Sprintf("%d", o.Imm)
}

func formatStmt(s *ir.Stmt, b *ir.Block, label func(int) string) string {
	switch s.Op {
	case ir.OpConst:
		return fmt.Sprintf("r%d = const %d", s.Dest, s.A.Imm)
	case ir.OpLoad:
		return fmt.Sprintf("r%d = load %s, %d", s.Dest, operand(s.A), s.Off)
	case ir.OpStore:
		return fmt.Sprintf("store %s, %d, %s", operand(s.A), s.Off, operand(s.B))
	case ir.OpInput:
		return fmt.Sprintf("r%d = input", s.Dest)
	case ir.OpOutput:
		return fmt.Sprintf("output %s", operand(s.A))
	case ir.OpNeg:
		return fmt.Sprintf("r%d = neg %s", s.Dest, operand(s.A))
	case ir.OpNot:
		return fmt.Sprintf("r%d = not %s", s.Dest, operand(s.A))
	case ir.OpJmp:
		return fmt.Sprintf("jmp %s", label(b.Succs[0]))
	case ir.OpBr:
		return fmt.Sprintf("br %s, %s, %s", operand(s.A), label(b.Succs[0]), label(b.Succs[1]))
	case ir.OpRet:
		return fmt.Sprintf("ret %s", operand(s.A))
	case ir.OpHalt:
		return "halt"
	case ir.OpCall:
		args := make([]string, len(s.Args))
		for i, a := range s.Args {
			args[i] = operand(a)
		}
		callee := s.CalleeName
		cont := " -> " + label(b.Succs[0])
		if s.Dest == ir.NoReg {
			return fmt.Sprintf("call %s(%s)%s", callee, strings.Join(args, ", "), cont)
		}
		return fmt.Sprintf("r%d = call %s(%s)%s", s.Dest, callee, strings.Join(args, ", "), cont)
	default:
		for name, op := range binOps {
			if op == s.Op {
				return fmt.Sprintf("r%d = %s %s, %s", s.Dest, name, operand(s.A), operand(s.B))
			}
		}
		return fmt.Sprintf("# unknown op %s", s.Op)
	}
}
