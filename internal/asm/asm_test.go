package asm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wet/internal/interp"
	"wet/internal/ir"
	"wet/internal/workload"
)

func run(t *testing.T, src string, inputs []int64) []int64 {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	st, err := interp.Analyze(p)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := interp.Run(st, interp.Options{Inputs: inputs, CollectOutput: true, MaxSteps: 1 << 20})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res.Outputs
}

func TestLoopProgram(t *testing.T) {
	src := `
# sum 1..10
func main() {
    n = const 10
    acc = const 0
loop:
    c = gt n, 0
    br c, body, done
body:
    acc = add acc, n
    n = sub n, 1
    jmp loop
done:
    output acc
    halt
}
`
	outs := run(t, src, nil)
	if len(outs) != 1 || outs[0] != 55 {
		t.Fatalf("outputs = %v, want [55]", outs)
	}
}

func TestFunctionsAndCalls(t *testing.T) {
	src := `
mem 2048

func square(x) {
    y = mul x, x
    ret y
}

func main() {
    a = const 7
    b = call square(a)
    c = call square(3)
    d = add b, c
    output d
    halt
}
`
	outs := run(t, src, nil)
	if len(outs) != 1 || outs[0] != 58 {
		t.Fatalf("outputs = %v, want [58] (49+9)", outs)
	}
}

func TestMemoryAndInput(t *testing.T) {
	src := `
func main() {
    v = input
    store 100, 0, v
    w = load 99, 1
    output w
    x = v            ; move sugar
    output x
    halt
}
`
	outs := run(t, src, []int64{42})
	if len(outs) != 2 || outs[0] != 42 || outs[1] != 42 {
		t.Fatalf("outputs = %v", outs)
	}
}

func TestFallthrough(t *testing.T) {
	src := `
func main() {
    x = const 1
top:
    y = add x, 1
middle:
    z = add y, 1
    output z
    halt
}
`
	outs := run(t, src, nil)
	if len(outs) != 1 || outs[0] != 3 {
		t.Fatalf("outputs = %v, want [3]", outs)
	}
}

func TestNegNotAndHexImmediates(t *testing.T) {
	src := `
func main() {
    a = const 0x10
    b = neg a
    c = not 0
    output b
    output c
    halt
}
`
	outs := run(t, src, nil)
	if outs[0] != -16 || outs[1] != -1 {
		t.Fatalf("outputs = %v", outs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no main":         "func f(x) {\n ret x\n}\n",
		"undefined reg":   "func main() {\n output q\n halt\n}\n",
		"undefined label": "func main() {\n jmp nowhere\n}\n",
		"unterminated":    "func main() {\n x = const 1\n}\n",
		"dup label":       "func main() {\nl:\n jmp l\nl:\n halt\n}\n",
		"bad op":          "func main() {\n x = frob 1, 2\n halt\n}\n",
		"bad store":       "func main() {\n store 1\n halt\n}\n",
		"nested func":     "func main() {\nfunc g() {\n halt\n}\n}\n",
		"stmt outside":    "x = const 1\n",
		"unmatched brace": "}\n",
		"keyword reg":     "func main() {\n add = const 1\n halt\n}\n",
		"bad call":        "func main() {\n x = call 123(\n halt\n}\n",
		"unreachable":     "func main() {\n halt\n x = const 1\n}\n",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Fatalf("%s: Parse accepted bad program:\n%s", name, src)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := Parse("func main() {\n x = frob 1, 2\n halt\n}\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2", err)
	}
}

func TestCommentsBothStyles(t *testing.T) {
	src := `
# hash comment
func main() {
    x = const 5   ; semicolon comment
    output x      # trailing hash
    halt
}
`
	outs := run(t, src, nil)
	if outs[0] != 5 {
		t.Fatalf("outputs = %v", outs)
	}
}

func TestLabelAtFunctionStart(t *testing.T) {
	src := `
func main() {
entry:
    x = const 2
    c = gt x, 0
    br c, entry2, entry2
entry2:
    output x
    halt
}
`
	outs := run(t, src, nil)
	if outs[0] != 2 {
		t.Fatalf("outputs = %v", outs)
	}
}

func TestVoidCall(t *testing.T) {
	src := `
func noisy(x) {
    output x
    ret 0
}

func main() {
    call noisy(9)
    halt
}
`
	outs := run(t, src, nil)
	if len(outs) != 1 || outs[0] != 9 {
		t.Fatalf("outputs = %v", outs)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	// Round-trip every workload program through Format/Parse: the reparsed
	// program must produce identical outputs.
	for _, wl := range workload.All() {
		prog, in := wl.Build(1)
		text := Format(prog)
		prog2, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n--- formatted:\n%s", wl.Name, err, clip(text))
		}
		out1 := runProg(t, prog, in)
		out2 := runProg(t, prog2, in)
		if len(out1) != len(out2) {
			t.Fatalf("%s: outputs %d vs %d after round trip", wl.Name, len(out1), len(out2))
		}
		for i := range out1 {
			if out1[i] != out2[i] {
				t.Fatalf("%s: output %d = %d vs %d after round trip", wl.Name, i, out1[i], out2[i])
			}
		}
	}
}

func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "..."
	}
	return s
}

func runProg(t *testing.T, p *ir.Program, in []int64) []int64 {
	t.Helper()
	st, err := interp.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(st, interp.Options{Inputs: in, CollectOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Outputs
}

func TestExplicitContinuation(t *testing.T) {
	src := `
func id(x) {
    ret x
}

func main() {
    a = call id(5) -> after
after:
    output a
    halt
}
`
	outs := run(t, src, nil)
	if len(outs) != 1 || outs[0] != 5 {
		t.Fatalf("outputs = %v", outs)
	}
}

func FuzzParse(f *testing.F) {
	f.Add("func main() {\n x = const 1\n output x\n halt\n}\n")
	f.Add("func main() {\nl:\n jmp l\n}\n")
	f.Add("mem 64\nfunc f(a) {\n ret a\n}\nfunc main() {\n b = call f(1)\n halt\n}\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		// Anything that parses must re-parse after formatting.
		if _, err := Parse(Format(p)); err != nil {
			t.Fatalf("format of valid program does not reparse: %v", err)
		}
	})
}

func TestTestdataPrograms(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.wir")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		// Each must run to completion and round-trip through Format.
		outs := runProg(t, p, []int64{1, 2, 3})
		if len(outs) == 0 {
			t.Fatalf("%s produced no output", file)
		}
		p2, err := Parse(Format(p))
		if err != nil {
			t.Fatalf("%s: reparse: %v", file, err)
		}
		outs2 := runProg(t, p2, []int64{1, 2, 3})
		for i := range outs {
			if outs[i] != outs2[i] {
				t.Fatalf("%s: output %d differs after round trip", file, i)
			}
		}
	}
}
