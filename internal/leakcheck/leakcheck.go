// Package leakcheck asserts that a test leaves no goroutines behind. The
// cancellation paths promise "partial state released, workers gone"; this
// is the teeth behind that promise, with no dependency beyond the runtime.
//
// Usage, first line of the test:
//
//	defer leakcheck.Check(t)()
//
// The returned func polls until the goroutine count returns to the
// baseline taken at Check time. Pool workers exit asynchronously after a
// cancelled call returns, so a bounded settle window — not an instant
// snapshot — is the correct assertion.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// settle bounds how long workers may take to unwind after cancellation.
const settle = 5 * time.Second

// Check snapshots the current goroutine count and returns the assertion
// to defer. Tests using it must not call t.Parallel(): a sibling test's
// goroutines would show up as this test's leak.
func Check(t testing.TB) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(settle)
		for {
			n := runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				buf = buf[:runtime.Stack(buf, true)]
				t.Fatalf("goroutine leak: %d goroutines, baseline %d; stacks:\n%s", n, base, buf)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}
