package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"wet/internal/corpus"
)

// DefaultLoadMix is the query mix the load generator drives when none is
// given: metadata lookups (served from the registry) interleaved with
// range extractions and profiles that touch segment state, so a bounded
// cache shows both hits and evictions.
var DefaultLoadMix = []string{
	"info",
	"cfrange?from=1&to=128&limit=32",
	"seekstats",
	"cfrange?from=1024&to=1152&limit=32",
	"segments",
	"cfrange?from=4096&to=4224&limit=32",
	"hotpaths?n=5",
	"cf?limit=8",
	"time",
	"epochs",
}

// LoadOptions configures RunLoad.
type LoadOptions struct {
	// BaseURL is the daemon root, e.g. "http://localhost:9120".
	BaseURL string
	// Clients is the number of concurrent request loops (<=0: 4).
	Clients int
	// Duration bounds the run (<=0: 5s); ctx may end it earlier.
	Duration time.Duration
	// Mix is the rotation of "query[?params]" strings each client walks
	// (nil: DefaultLoadMix).
	Mix []string
}

// LoadResult is what the run measured. Latency quantiles are computed from
// every request's wall time; cache numbers are deltas of the daemon's own
// counters scraped from /v1/stats around the run.
type LoadResult struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	Shed     int     `json:"shed"`
	Seconds  float64 `json:"seconds"`
	QPS      float64 `json:"qps"`

	P50ms float64 `json:"p50_ms"`
	P90ms float64 `json:"p90_ms"`
	P99ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`

	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheEvictions uint64  `json:"cache_evictions"`
	HitRate        float64 `json:"cache_hit_rate"`
}

// statsPayload mirrors the /v1/stats response shape.
type statsPayload struct {
	Corpus corpus.Stats `json:"corpus"`
	Pool   PoolStats    `json:"pool"`
}

// RunLoad drives the daemon at BaseURL with Clients concurrent loops for
// Duration, each rotating through the query mix across every served trace.
// Responses are drained and checked: 2xx counts as success, 503 as shed,
// anything else as an error.
func RunLoad(ctx context.Context, opts LoadOptions) (*LoadResult, error) {
	if opts.Clients <= 0 {
		opts.Clients = 4
	}
	if opts.Duration <= 0 {
		opts.Duration = 5 * time.Second
	}
	if len(opts.Mix) == 0 {
		opts.Mix = DefaultLoadMix
	}
	client := &http.Client{Timeout: 30 * time.Second}

	keys, err := traceKeys(client, opts.BaseURL)
	if err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("loadgen: daemon serves no traces")
	}
	before, err := scrapeStats(client, opts.BaseURL)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithTimeout(ctx, opts.Duration)
	defer cancel()

	type clientResult struct {
		lat         []time.Duration
		errs, sheds int
	}
	results := make([]clientResult, opts.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < opts.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := &results[id]
			for n := 0; ctx.Err() == nil; n++ {
				key := keys[(id+n)%len(keys)]
				q := opts.Mix[(id*7+n)%len(opts.Mix)]
				url := fmt.Sprintf("%s/v1/traces/%s/%s", opts.BaseURL, key, q)
				t0 := time.Now()
				code, err := get(ctx, client, url)
				r.lat = append(r.lat, time.Since(t0))
				switch {
				case ctx.Err() != nil:
					// The run ending mid-request is not a server error.
					r.lat = r.lat[:len(r.lat)-1]
					return
				case err != nil || code/100 != 2:
					if code == http.StatusServiceUnavailable {
						r.sheds++
					} else {
						r.errs++
					}
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := scrapeStats(client, opts.BaseURL)
	if err != nil {
		return nil, err
	}

	var lats []time.Duration
	res := &LoadResult{Seconds: elapsed.Seconds()}
	for _, r := range results {
		lats = append(lats, r.lat...)
		res.Errors += r.errs
		res.Shed += r.sheds
	}
	res.Requests = len(lats)
	if res.Seconds > 0 {
		res.QPS = float64(res.Requests) / res.Seconds
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		q := func(p float64) float64 {
			return float64(lats[int(p*float64(len(lats)-1))]) / float64(time.Millisecond)
		}
		res.P50ms, res.P90ms, res.P99ms = q(0.50), q(0.90), q(0.99)
		res.MaxMs = float64(lats[len(lats)-1]) / float64(time.Millisecond)
	}
	res.CacheHits = after.Corpus.Hits - before.Corpus.Hits
	res.CacheMisses = after.Corpus.Misses - before.Corpus.Misses
	res.CacheEvictions = after.Corpus.Evictions - before.Corpus.Evictions
	if tot := res.CacheHits + res.CacheMisses; tot > 0 {
		res.HitRate = float64(res.CacheHits) / float64(tot)
	}
	return res, nil
}

// traceKeys lists the daemon's trace keys.
func traceKeys(client *http.Client, base string) ([]string, error) {
	resp, err := client.Get(base + "/v1/traces")
	if err != nil {
		return nil, fmt.Errorf("loadgen: list traces: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: list traces: status %d", resp.StatusCode)
	}
	var body struct {
		Traces []struct {
			Key string `json:"key"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("loadgen: list traces: %w", err)
	}
	keys := make([]string, len(body.Traces))
	for i, t := range body.Traces {
		keys[i] = t.Key
	}
	return keys, nil
}

// scrapeStats reads the daemon's /v1/stats counters.
func scrapeStats(client *http.Client, base string) (*statsPayload, error) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return nil, fmt.Errorf("loadgen: stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: stats: status %d", resp.StatusCode)
	}
	var st statsPayload
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("loadgen: stats: %w", err)
	}
	return &st, nil
}

// get issues one request, draining and discarding the body (keep-alive).
func get(ctx context.Context, client *http.Client, url string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}
