package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"wet/internal/faultpoint"
)

// fpAdmit fires at admission, before a request waits for a worker: an
// injected error sheds the request with a *ShedError, exactly as a full
// queue would.
var fpAdmit = faultpoint.New("wetd.admit")

// ErrQueueFull is the shed cause when the wait queue is at capacity.
var ErrQueueFull = errors.New("queue full")

// ShedError reports a request refused at admission — load shedding, not
// failure of the work itself. HTTP maps it to 503.
type ShedError struct {
	Cause error
}

func (e *ShedError) Error() string { return fmt.Sprintf("request shed: %v", e.Cause) }

func (e *ShedError) Unwrap() error { return e.Cause }

// pool is the admission-controlled worker pool every query runs through:
// at most workers requests execute at once, at most queue more wait, and
// anything beyond that is shed immediately rather than queued without
// bound. Waiters abandon the queue when their context dies, so a deadline
// bounds queue time as well as run time.
type pool struct {
	sem     chan struct{}
	queue   int64
	waiting atomic.Int64
	active  atomic.Int64
	shed    atomic.Uint64
	done    atomic.Uint64
}

func newPool(workers, queue int) *pool {
	if workers <= 0 {
		workers = 4
	}
	if queue <= 0 {
		queue = 4 * workers
	}
	return &pool{sem: make(chan struct{}, workers), queue: int64(queue)}
}

// Do admits fn, waits for a worker slot, and runs it. Shedding (queue full
// or injected via wetd.admit) returns *ShedError; a context that dies while
// queued returns its cause.
func (p *pool) Do(ctx context.Context, fn func() error) error {
	if err := fpAdmit.Hit(); err != nil {
		p.shed.Add(1)
		return &ShedError{Cause: err}
	}
	if p.waiting.Add(1) > p.queue {
		p.waiting.Add(-1)
		p.shed.Add(1)
		return &ShedError{Cause: ErrQueueFull}
	}
	select {
	case p.sem <- struct{}{}:
		p.waiting.Add(-1)
	case <-ctx.Done():
		p.waiting.Add(-1)
		return context.Cause(ctx)
	}
	p.active.Add(1)
	defer func() {
		p.active.Add(-1)
		p.done.Add(1)
		<-p.sem
	}()
	return fn()
}

// PoolStats snapshots the pool for /v1/stats.
type PoolStats struct {
	Workers  int    `json:"workers"`
	QueueCap int    `json:"queue_cap"`
	Waiting  int64  `json:"waiting"`
	Active   int64  `json:"active"`
	Done     uint64 `json:"done"`
	Shed     uint64 `json:"shed"`
}

func (p *pool) stats() PoolStats {
	return PoolStats{
		Workers:  cap(p.sem),
		QueueCap: int(p.queue),
		Waiting:  p.waiting.Load(),
		Active:   p.active.Load(),
		Done:     p.done.Load(),
		Shed:     p.shed.Load(),
	}
}
