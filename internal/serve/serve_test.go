package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"wet"
	"wet/internal/corpus"
	"wet/internal/faultpoint"
	"wet/internal/stream"
	"wet/internal/workload"
)

// testCorpus builds a corpus of the named workloads (epoch-segmented).
func testCorpus(tb testing.TB, budget uint64, names ...string) *corpus.Corpus {
	tb.Helper()
	c := corpus.New(budget)
	for _, n := range names {
		wl, err := workload.ByName(n)
		if err != nil {
			tb.Fatal(err)
		}
		prog, in := wl.Build(1)
		tr, _, err := wet.Run(prog, wet.WithInputs(in...), wet.WithEpochTS(1<<8))
		if err != nil {
			tb.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			tb.Fatal(err)
		}
		if _, err := c.Add(n, buf.Bytes()); err != nil {
			tb.Fatal(err)
		}
	}
	return c
}

func getJSON(tb testing.TB, url string) (int, map[string]any) {
	tb.Helper()
	resp, err := http.Get(url)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		tb.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode, body
}

func TestServerEndpoints(t *testing.T) {
	c := testCorpus(t, 0, "li")
	s := New(c, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Every query endpoint answers 200 on a valid trace.
	params := map[string]string{
		"cfrange":    "?from=1&to=64",
		"valuetrace": "?stmt=0&limit=4",
		"addrtrace":  "?stmt=0&limit=4",
		"instance":   "?stmt=0&ts=1",
		"backward":   "?stmt=0&ts=1&max=16",
		"forward":    "?stmt=0&ts=1&max=16",
		"chop":       "?from_stmt=0&from_ts=1&to_stmt=0&to_ts=1&max=16",
		"depchain":   "?stmt=0&ts=1",
		"dot":        "?stmt=0&ts=1&max=16",
	}
	for _, q := range Queries() {
		code, body := getJSON(t, ts.URL+"/v1/traces/li/"+q+params[q])
		// Parameterized queries may legitimately 400/500 on stmt 0 if it is
		// not a def; what they must never do is 404, shed, or crash.
		if code != 200 && code != 400 && code != 500 {
			t.Errorf("query %s: status %d body %v", q, code, body)
		}
		if q == "info" && code != 200 {
			t.Fatalf("info: status %d body %v", code, body)
		}
	}

	// Listing, stats, health, metrics.
	code, body := getJSON(t, ts.URL+"/v1/traces")
	if code != 200 || len(body["traces"].([]any)) != 1 {
		t.Fatalf("traces listing: %d %v", code, body)
	}
	key := body["traces"].([]any)[0].(map[string]any)["key"].(string)
	if code, _ := getJSON(t, ts.URL+"/v1/traces/"+key[:12]); code != 200 {
		t.Fatalf("key-prefix lookup failed: %d", code)
	}
	if code, _ := getJSON(t, ts.URL+"/v1/stats"); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := readAll(resp)
	if resp.StatusCode != 200 || !strings.Contains(raw, "wetd_cache_misses_total") ||
		!strings.Contains(raw, "wetd_request_seconds_bucket") {
		t.Fatalf("metrics exposition incomplete (status %d):\n%.500s", resp.StatusCode, raw)
	}

	// Error mapping.
	if code, body := getJSON(t, ts.URL+"/v1/traces/nope/info"); code != 404 || body["kind"] != "not_found" {
		t.Fatalf("unknown trace: %d %v", code, body)
	}
	if code, body := getJSON(t, ts.URL+"/v1/traces/li/bogus"); code != 400 || body["kind"] != "bad_request" {
		t.Fatalf("unknown query: %d %v", code, body)
	}
	if code, _ := getJSON(t, ts.URL+"/v1/traces/li/cfrange"); code != 400 {
		t.Fatalf("missing params: %d", code)
	}
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// TestQueryResults spot-checks real payloads: the cf count matches the
// trace's own walk, and hotpaths returns ranked rows.
func TestQueryResults(t *testing.T) {
	c := testCorpus(t, 0, "li")
	s := New(c, Options{})
	e := c.Entries()[0]
	want := e.Trace.ExtractControlFlow(true, nil)

	res, err := s.Query(context.Background(), "li", "cf", url.Values{"limit": {"8"}})
	if err != nil {
		t.Fatal(err)
	}
	m := res.(map[string]any)
	if m["count"].(uint64) != want {
		t.Fatalf("cf count %v != %d", m["count"], want)
	}
	if len(m["ids"].([]int)) != 8 || m["truncated"] != true {
		t.Fatalf("cf limit not applied: %v", m)
	}

	res, err = s.Query(context.Background(), "li", "hotpaths", url.Values{"n": {"3"}})
	if err != nil {
		t.Fatal(err)
	}
	if hp := res.([]wet.HotPath); len(hp) == 0 || hp[0].Execs == 0 {
		t.Fatalf("hotpaths empty: %v", res)
	}
}

func TestPoolShedding(t *testing.T) {
	p := newPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup

	// Occupy the worker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = p.Do(context.Background(), func() error {
			close(started)
			<-block
			return nil
		})
	}()
	<-started

	// Fill the queue with one waiter.
	waiting := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		waiting <- p.Do(context.Background(), func() error { return nil })
	}()
	for p.waiting.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Queue full: the next request sheds immediately.
	err := p.Do(context.Background(), func() error { return nil })
	var she *ShedError
	if !errors.As(err, &she) || !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overload returned %v, want ShedError(queue full)", err)
	}

	close(block)
	if err := <-waiting; err != nil {
		t.Fatalf("queued request failed: %v", err)
	}
	wg.Wait()
	if st := p.stats(); st.Shed != 1 || st.Done != 2 {
		t.Fatalf("pool stats %+v, want Shed=1 Done=2", st)
	}
}

// TestPoolQueueCancel: a waiter whose context dies while queued abandons
// the queue with the context's cause, not a shed.
func TestPoolQueueCancel(t *testing.T) {
	p := newPool(1, 4)
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = p.Do(context.Background(), func() error {
			close(started)
			<-block
			return nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		cancelled <- p.Do(ctx, func() error { return nil })
	}()
	for p.waiting.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-cancelled; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v", err)
	}
	close(block)
	wg.Wait()
	if st := p.stats(); st.Shed != 0 || st.Done != 1 || st.Waiting != 0 {
		t.Fatalf("pool stats %+v, want Shed=0 Done=1 Waiting=0", st)
	}
}

func TestAdmitFaultpoint(t *testing.T) {
	c := testCorpus(t, 0, "li")
	s := New(c, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := faultpoint.Arm("wetd.admit", faultpoint.Spec{Action: faultpoint.ActErr, Detail: "overload drill"}); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.DisarmAll()

	_, err := s.Query(context.Background(), "li", "info", nil)
	var she *ShedError
	if !errors.As(err, &she) {
		t.Fatalf("armed wetd.admit returned %v, want *ShedError", err)
	}
	var fe *faultpoint.Error
	if !errors.As(err, &fe) || fe.Point != "wetd.admit" {
		t.Fatalf("shed cause lost: %v", err)
	}
	if code, body := getJSON(t, ts.URL+"/v1/traces/li/info"); code != 503 || body["kind"] != "shed" {
		t.Fatalf("HTTP mapping of shed: %d %v", code, body)
	}

	faultpoint.DisarmAll()
	if _, err := s.Query(context.Background(), "li", "info", nil); err != nil {
		t.Fatalf("still failing after disarm: %v", err)
	}
	if s.PoolStats().Shed == 0 {
		t.Fatal("shed counter not incremented")
	}
}

func TestSegmentLoadFaultHTTP(t *testing.T) {
	c := testCorpus(t, 0, "li")
	s := New(c, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := faultpoint.Arm("corpus.segment.load", faultpoint.Spec{Action: faultpoint.ActErr}); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.DisarmAll()

	_, err := s.Query(context.Background(), "li", "cfrange",
		url.Values{"from": {"1"}, "to": {"64"}})
	var de *stream.DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("vetoed segment load returned %v, want *stream.DecodeError", err)
	}
	if code, body := getJSON(t, ts.URL+"/v1/traces/li/cfrange?from=1&to=64"); code != 502 || body["kind"] != "decode" {
		t.Fatalf("HTTP mapping of decode fault: %d %v", code, body)
	}
}

// TestServeConcurrentEviction drives the full stack — HTTP, admission,
// corpus, segment cache under a starvation budget — from 8 concurrent
// clients, then checks nothing was corrupted and the cache actually cycled.
func TestServeConcurrentEviction(t *testing.T) {
	c := testCorpus(t, 1<<13, "li", "gzip")
	s := New(c, Options{Workers: 4, Queue: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:  ts.URL,
		Clients:  8,
		Duration: 700 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("load generator issued no requests")
	}
	if res.Errors > 0 {
		t.Fatalf("%d/%d requests errored", res.Errors, res.Requests)
	}
	st := c.Stats()
	if st.Evictions == 0 || res.CacheMisses == 0 {
		t.Fatalf("cache never cycled under budget: %+v (load %+v)", st, res)
	}
	if res.P50ms <= 0 || res.QPS <= 0 {
		t.Fatalf("degenerate load result: %+v", res)
	}
	t.Logf("load: %+v", res)
}
