// Package serve implements wetd's query service: HTTP/JSON endpoints over a
// corpus of traces, with every query admitted through a bounded worker pool
// (overload sheds instead of queueing without bound), bounded by a
// per-request deadline, and instrumented into a metrics registry.
//
// The query surface is deliberately split from HTTP: Server.Query runs a
// named query with string parameters and returns a JSON-encodable result or
// a typed error (*ShedError, *ParamError, ErrUnknownTrace,
// *stream.DecodeError, context cancellation). The HTTP layer only routes,
// decodes parameters, and maps those errors to status codes — so harnesses
// (the failpoint sweep, the race tests) drive Query directly and see the
// same behavior clients do.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"wet"
	"wet/internal/corpus"
	"wet/internal/metrics"
	"wet/internal/query"
	"wet/internal/stream"
)

// ErrUnknownTrace reports a trace reference that resolves to nothing (or
// ambiguously). HTTP maps it to 404.
var ErrUnknownTrace = errors.New("unknown trace")

// ParamError reports an unusable query or parameter. HTTP maps it to 400.
type ParamError struct {
	Msg string
}

func (e *ParamError) Error() string { return "bad request: " + e.Msg }

// Options tunes the server.
type Options struct {
	// Workers bounds concurrently executing queries (<=0: 4).
	Workers int
	// Queue bounds queries waiting for a worker; beyond it requests are
	// shed with 503 (<=0: 4×Workers).
	Queue int
	// Deadline bounds each request, queue time included (<=0: 30s).
	Deadline time.Duration
	// MaxItems caps the elements any one response may carry (ids, samples,
	// instances); requests may lower it per call with ?limit= (<=0: 10000).
	MaxItems int
}

// Server serves queries over a corpus.
type Server struct {
	c    *corpus.Corpus
	opts Options
	pool *pool

	reg      *metrics.Registry
	tracer   *metrics.Tracer
	requests *metrics.CounterVec
}

// New builds a server over c. The registry is created internally and
// exposed via Registry (and /metrics).
func New(c *corpus.Corpus, opts Options) *Server {
	if opts.Deadline <= 0 {
		opts.Deadline = 30 * time.Second
	}
	if opts.MaxItems <= 0 {
		opts.MaxItems = 10000
	}
	s := &Server{c: c, opts: opts, pool: newPool(opts.Workers, opts.Queue)}

	r := metrics.NewRegistry()
	s.reg = r
	s.tracer = metrics.NewTracer(r, "wetd_request", "query latency by operation")
	s.requests = r.NewCounterVec("wetd_requests_total", "HTTP requests by endpoint and status", "endpoint", "code")
	r.NewCounterFunc("wetd_shed_total", "requests refused at admission", func() uint64 { return s.pool.shed.Load() })
	r.NewGaugeFunc("wetd_queue_depth", "queries waiting for a worker", func() float64 { return float64(s.pool.waiting.Load()) })
	r.NewGaugeFunc("wetd_active_queries", "queries executing", func() float64 { return float64(s.pool.active.Load()) })
	r.NewCounterFunc("wetd_cache_hits_total", "segment cache hits", c.Hits)
	r.NewCounterFunc("wetd_cache_misses_total", "segment cache misses (decodes)", c.Misses)
	r.NewCounterFunc("wetd_cache_evictions_total", "segments evicted by the byte budget", c.Evictions)
	r.NewCounterFunc("wetd_cache_load_vetoes_total", "segment loads refused by fault injection", c.Vetoes)
	r.NewGaugeFunc("wetd_cache_resident_bytes", "decoded segment bytes resident", func() float64 { return float64(c.ResidentBytes()) })
	r.NewGaugeFunc("wetd_cache_resident_segments", "segments resident", func() float64 { return float64(c.ResidentSegments()) })
	r.NewGaugeFunc("wetd_cache_budget_bytes", "configured decoded-byte budget", func() float64 { return float64(c.Budget()) })
	r.NewGaugeFunc("wetd_corpus_traces", "traces registered", func() float64 { return float64(len(c.Entries())) })
	return s
}

// Registry returns the server's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Corpus returns the corpus the server queries.
func (s *Server) Corpus() *corpus.Corpus { return s.c }

// PoolStats snapshots the admission pool.
func (s *Server) PoolStats() PoolStats { return s.pool.stats() }

// Queries lists the query names Query serves, in listing order.
func Queries() []string {
	return []string{
		"info", "report", "validate", "seekstats", "segments", "time",
		"epochs", "cf", "cfrange", "valuetrace", "addrtrace", "instance",
		"backward", "forward", "chop", "depchain", "hotpaths", "dot",
		"invariance", "strides",
	}
}

// Query admits, deadlines, and runs the named query against the trace ref
// resolves to. The result is JSON-encodable. Errors are typed: resolution
// failures return ErrUnknownTrace, parameter problems *ParamError, shedding
// *ShedError, deadline/cancel a context cause, and a segment whose decode
// was refused (fault injection, forged bytes) a *stream.DecodeError.
func (s *Server) Query(ctx context.Context, ref, q string, params url.Values) (result any, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeoutCause(ctx, s.opts.Deadline,
		fmt.Errorf("wetd: deadline %v exceeded: %w", s.opts.Deadline, context.DeadlineExceeded))
	defer cancel()

	sp := s.tracer.Start(q)
	defer sp.End()

	err = s.pool.Do(ctx, func() error {
		e, ok := s.c.Lookup(ref)
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownTrace, ref)
		}
		var qerr error
		result, qerr = s.run(ctx, e, q, params)
		return qerr
	})
	return result, err
}

// run executes one query on a resolved entry. It runs on a pool worker.
func (s *Server) run(ctx context.Context, e *corpus.Entry, q string, params url.Values) (any, error) {
	tr := e.Trace
	limit := s.opts.MaxItems
	if n, ok, err := optInt(params, "limit"); err != nil {
		return nil, err
	} else if ok && n >= 0 && n < limit {
		limit = n
	}

	switch q {
	case "info":
		return map[string]any{
			"key": e.Key, "name": e.Name, "size_bytes": e.Size,
			"version": e.Report.Version, "time": tr.Time(),
			"epoch_ts": tr.EpochTS(), "epochs": tr.Epochs(),
			"segmented": tr.Segmented(), "tier": int(tr.Tier()),
			"segments": e.Segs.Len(),
		}, nil
	case "report":
		return tr.Report(), nil
	case "validate":
		if err := tr.Validate(); err != nil {
			return map[string]any{"ok": false, "error": err.Error()}, nil
		}
		return map[string]any{"ok": true}, nil
	case "seekstats":
		return tr.SeekStats(), nil
	case "segments":
		return map[string]any{
			"total": e.Segs.Len(), "resident": e.Segs.ResidentCount(),
			"resident_bytes": e.Segs.ResidentBytes(), "raw_bytes": e.Segs.RawBytes(),
		}, nil
	case "time":
		return map[string]any{"time": tr.Time()}, nil
	case "epochs":
		return map[string]any{"epoch_ts": tr.EpochTS(), "epochs": tr.Epochs(), "segmented": tr.Segmented()}, nil
	case "cf":
		forward := params.Get("dir") != "backward"
		ids := make([]int, 0, min(limit, 1024))
		n, err := query.ExtractCFCtx(ctx, tr.WET(), tr.Tier(), forward, func(id int) {
			if len(ids) < limit {
				ids = append(ids, id)
			}
		})
		if err != nil {
			return nil, err
		}
		return map[string]any{"count": n, "ids": ids, "truncated": n > uint64(len(ids))}, nil
	case "cfrange":
		from, err := reqUint32(params, "from")
		if err != nil {
			return nil, err
		}
		to, err := reqUint32(params, "to")
		if err != nil {
			return nil, err
		}
		ids := make([]int, 0, min(limit, 1024))
		n, qerr := query.ExtractCFRangeCtx(ctx, tr.WET(), tr.Tier(), from, to, func(id int) {
			if len(ids) < limit {
				ids = append(ids, id)
			}
		})
		if qerr != nil {
			return nil, qerr
		}
		return map[string]any{"count": n, "ids": ids, "truncated": n > uint64(len(ids))}, nil
	case "valuetrace", "addrtrace":
		stmt, err := reqInt(params, "stmt")
		if err != nil {
			return nil, err
		}
		samples := make([]wet.Sample, 0, min(limit, 1024))
		emit := func(sm wet.Sample) {
			if len(samples) < limit {
				samples = append(samples, sm)
			}
		}
		var n uint64
		var qerr error
		if q == "valuetrace" {
			n, qerr = tr.ValueTrace(stmt, emit)
		} else {
			n, qerr = tr.AddressTrace(stmt, emit)
		}
		if qerr != nil {
			return nil, qerr
		}
		return map[string]any{"count": n, "samples": samples, "truncated": n > uint64(len(samples))}, nil
	case "instance":
		inst, err := instanceParam(tr, params)
		if err != nil {
			return nil, err
		}
		return inst, nil
	case "backward", "forward":
		inst, err := instanceParam(tr, params)
		if err != nil {
			return nil, err
		}
		maxI, _, err := optIntDefault(params, "max", 0)
		if err != nil {
			return nil, err
		}
		var res *wet.SliceResult
		if q == "backward" {
			res, err = tr.Backward(inst, maxI)
		} else {
			res, err = tr.Forward(inst, maxI)
		}
		if err != nil {
			return nil, err
		}
		return sliceJSON(res, limit), nil
	case "chop":
		from, err := instanceAt(tr, params, "from_stmt", "from_ts")
		if err != nil {
			return nil, err
		}
		to, err := instanceAt(tr, params, "to_stmt", "to_ts")
		if err != nil {
			return nil, err
		}
		maxI, _, err := optIntDefault(params, "max", 0)
		if err != nil {
			return nil, err
		}
		res, err := tr.Chop(from, to, maxI)
		if err != nil {
			return nil, err
		}
		return sliceJSON(res, limit), nil
	case "depchain":
		inst, err := instanceParam(tr, params)
		if err != nil {
			return nil, err
		}
		op, _, err := optIntDefault(params, "op", 0)
		if err != nil {
			return nil, err
		}
		maxLen, _, err := optIntDefault(params, "maxlen", 64)
		if err != nil {
			return nil, err
		}
		chain, err := tr.DependenceChain(inst, op, maxLen)
		if err != nil {
			return nil, err
		}
		return map[string]any{"chain": chain}, nil
	case "hotpaths":
		n, _, err := optIntDefault(params, "n", 10)
		if err != nil {
			return nil, err
		}
		return tr.HotPaths(n), nil
	case "dot":
		inst, err := instanceParam(tr, params)
		if err != nil {
			return nil, err
		}
		maxI, _, err := optIntDefault(params, "max", 256)
		if err != nil {
			return nil, err
		}
		res, err := tr.Backward(inst, maxI)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := tr.WriteDOT(res, &buf); err != nil {
			return nil, err
		}
		return map[string]any{"dot": buf.String()}, nil
	case "invariance":
		minE, _, err := optIntDefault(params, "minexecs", 2)
		if err != nil {
			return nil, err
		}
		return tr.ValueInvariance(uint64(minE))
	case "strides":
		minA, _, err := optIntDefault(params, "minaccesses", 2)
		if err != nil {
			return nil, err
		}
		return tr.StrideProfiles(minA)
	default:
		return nil, &ParamError{Msg: fmt.Sprintf("unknown query %q (have %v)", q, Queries())}
	}
}

// sliceJSON summarizes a slice result, bounding the instance list.
func sliceJSON(res *wet.SliceResult, limit int) map[string]any {
	insts := res.Instances
	trunc := false
	if len(insts) > limit {
		insts, trunc = insts[:limit], true
	}
	return map[string]any{
		"criterion": res.Criterion, "count": len(res.Instances),
		"edges": res.Edges, "pruned_cd": res.PrunedCD,
		"instances": insts, "truncated": trunc,
	}
}

// instanceParam resolves stmt= and ts= to the dynamic instance at that
// timestamp.
func instanceParam(tr *wet.Trace, params url.Values) (wet.Instance, error) {
	return instanceAt(tr, params, "stmt", "ts")
}

func instanceAt(tr *wet.Trace, params url.Values, stmtKey, tsKey string) (wet.Instance, error) {
	stmt, err := reqInt(params, stmtKey)
	if err != nil {
		return wet.Instance{}, err
	}
	ts, err := reqUint32(params, tsKey)
	if err != nil {
		return wet.Instance{}, err
	}
	return tr.InstanceOfTS(stmt, ts)
}

// --- parameter helpers ---

func reqInt(params url.Values, key string) (int, error) {
	v := params.Get(key)
	if v == "" {
		return 0, &ParamError{Msg: "missing required parameter " + key}
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, &ParamError{Msg: fmt.Sprintf("parameter %s=%q is not an integer", key, v)}
	}
	return n, nil
}

func reqUint32(params url.Values, key string) (uint32, error) {
	n, err := reqInt(params, key)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, &ParamError{Msg: fmt.Sprintf("parameter %s must be >= 0", key)}
	}
	return uint32(n), nil
}

func optInt(params url.Values, key string) (int, bool, error) {
	v := params.Get(key)
	if v == "" {
		return 0, false, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, false, &ParamError{Msg: fmt.Sprintf("parameter %s=%q is not an integer", key, v)}
	}
	return n, true, nil
}

func optIntDefault(params url.Values, key string, def int) (int, bool, error) {
	n, ok, err := optInt(params, key)
	if err != nil {
		return 0, false, err
	}
	if !ok {
		return def, false, nil
	}
	return n, true, nil
}

// --- HTTP layer ---

// Handler returns the daemon's routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		s.requests.With("healthz", "200").Inc()
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		s.requests.With("stats", "200").Inc()
		writeJSON(w, http.StatusOK, map[string]any{
			"corpus": s.c.Stats(),
			"pool":   s.pool.stats(),
		})
	})
	mux.HandleFunc("GET /v1/traces", func(w http.ResponseWriter, r *http.Request) {
		s.requests.With("traces", "200").Inc()
		type item struct {
			Key      string `json:"key"`
			Name     string `json:"name"`
			Size     int64  `json:"size_bytes"`
			Version  int    `json:"version"`
			Time     uint32 `json:"time"`
			Segments int    `json:"segments"`
		}
		items := []item{}
		for _, e := range s.c.Entries() {
			items = append(items, item{e.Key, e.Name, e.Size, e.Report.Version, e.Trace.Time(), e.Segs.Len()})
		}
		writeJSON(w, http.StatusOK, map[string]any{"traces": items, "queries": Queries()})
	})
	mux.HandleFunc("GET /v1/traces/{key}", func(w http.ResponseWriter, r *http.Request) {
		s.serveQuery(w, r, r.PathValue("key"), "info")
	})
	mux.HandleFunc("GET /v1/traces/{key}/{query}", func(w http.ResponseWriter, r *http.Request) {
		s.serveQuery(w, r, r.PathValue("key"), r.PathValue("query"))
	})
	return mux
}

func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, ref, q string) {
	result, err := s.Query(r.Context(), ref, q, r.URL.Query())
	code := statusFor(err)
	s.requests.With(q, strconv.Itoa(code)).Inc()
	if err != nil {
		writeJSON(w, code, map[string]any{"error": err.Error(), "kind": kindFor(err)})
		return
	}
	writeJSON(w, code, map[string]any{"trace": ref, "query": q, "result": result})
}

// statusFor maps a Query error to an HTTP status.
func statusFor(err error) int {
	var pe *ParamError
	var she *ShedError
	var de *stream.DecodeError
	switch {
	case err == nil:
		return http.StatusOK
	case errors.As(err, &pe):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownTrace):
		return http.StatusNotFound
	case errors.As(err, &she):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	case errors.As(err, &de):
		return http.StatusBadGateway
	default:
		return http.StatusInternalServerError
	}
}

// kindFor names the error class for clients that dispatch without parsing
// status codes.
func kindFor(err error) string {
	switch statusFor(err) {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusServiceUnavailable:
		return "shed"
	case http.StatusGatewayTimeout:
		return "deadline"
	case 499:
		return "cancelled"
	case http.StatusBadGateway:
		return "decode"
	default:
		return "internal"
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
