// Package trace defines the dynamic-event protocol between the simulator
// (internal/interp) and trace consumers such as the WET builder
// (internal/core), plus size accounting for the *uncompressed* ("original")
// Whole Execution Trace that the paper's Tables 1–3 use as the baseline.
package trace

import "wet/internal/ir"

// Inst identifies one dynamic statement instance. Instances are numbered
// densely from 1 in execution order; 0 means "no source" (immediates,
// inputs, program start).
type Inst = uint64

// Sink consumes the dynamic event stream of one program run.
//
// Statement events arrive in execution order. Path boundaries arrive as
// PathDone events: a PathDone(fn, pathID) covers every Stmt event since the
// previous PathDone — path executions never interleave because calls
// terminate Ball–Larus paths.
type Sink interface {
	// Stmt reports one executed statement instance.
	//   inst   – dense instance id (starting at 1)
	//   st     – the static statement
	//   value  – the produced value; meaningful only when st.Op.HasDef()
	//   ddSrcs – instance ids of the producers of each register operand, in
	//            st.Uses order, with the memory-carried producer appended
	//            for loads (0 = no producer); the slice is reused by the
	//            caller and must be copied if retained
	//   ddVals – the operand values carried by the corresponding ddSrcs
	//            entries (the register contents / loaded value)
	//   cdSrc  – instance id of the branch instance this statement's block
	//            execution is control dependent on (0 = none)
	Stmt(inst Inst, st *ir.Stmt, value int64, ddSrcs []Inst, ddVals []int64, cdSrc Inst)

	// PathDone reports that the Ball–Larus path pathID of function fn has
	// completed, closing the statement instances emitted since the previous
	// PathDone.
	PathDone(fn int, pathID int64)
}

// SyncKind classifies one thread-synchronization event.
type SyncKind uint8

const (
	// SyncSpawn: the thread created a child thread (obj = child thread id).
	// Stamped at the end of the spawning path: everything the parent did up
	// to and including that path happens-before the child.
	SyncSpawn SyncKind = iota
	// SyncJoin: the thread observed a child's completion (obj = joined
	// thread id). Stamped at the start of the path that resumes after the
	// join: everything the child did happens-before that path.
	SyncJoin
	// SyncAcquire: the thread acquired a lock (obj = lock id). Stamped at
	// the start of the path that runs under the lock.
	SyncAcquire
	// SyncRelease: the thread released a lock (obj = lock id). Stamped at
	// the end of the releasing path.
	SyncRelease
)

var syncKindNames = [...]string{"spawn", "join", "acquire", "release"}

func (k SyncKind) String() string {
	if int(k) < len(syncKindNames) {
		return syncKindNames[k]
	}
	return "sync?"
}

// ConcSink is the optional concurrency extension of Sink. A sink that
// implements it additionally receives, for concurrent runs, the owning
// thread of every path, the synchronization events, and the annotated
// shared-memory accesses. Sync and access events are attributed to the path
// whose PathDone follows them (the builder stamps them with that path's
// timestamp); intra-path ordering is by kind — acquire/join events precede
// the path's accesses, release/spawn events follow them.
type ConcSink interface {
	// PathOwner names the thread executing the path whose PathDone follows.
	PathOwner(tid int32)
	// SyncEvent reports one synchronization event by thread tid.
	SyncEvent(k SyncKind, tid int32, obj int64)
	// SharedAccess reports one annotated shared-memory access: thread tid
	// touched word addr via statement stmtID.
	SharedAccess(tid int32, addr int64, isWrite bool, stmtID int)
}

// Paper-accurate storage units: the evaluation counts 32-bit words for
// timestamps and values, so a timestamp pair is 8 bytes.
const (
	TSBytes   = 4 // one timestamp
	ValBytes  = 4 // one value
	PairBytes = 8 // one <ts,ts> dependence label
)

// RawStats accumulates the counts that determine the size of the
// uncompressed WET: one timestamp per statement execution, one value per
// def-port statement execution, one timestamp pair per dynamic dependence
// (data and control).
type RawStats struct {
	StmtExecs  uint64 // dynamic statements (intermediate-code statements executed)
	DefExecs   uint64 // dynamic statements with a def port
	DynDD      uint64 // dynamic data dependences (per operand with a producer)
	DynCD      uint64 // dynamic control dependences (statements with a controlling branch)
	BlockExecs uint64 // basic-block executions (one original-WET time tick each)
	PathExecs  uint64 // Ball–Larus path executions (one tier-1 time tick each)
	Loads      uint64 // dynamic loads
	Stores     uint64 // dynamic stores
	Branches   uint64 // dynamic conditional branches
	SyncOps    uint64 // dynamic sync statements (spawn/join/lock/unlock)
	SharedAcc  uint64 // dynamic shared-annotated loads and stores
}

// OrigNodeTSBytes is the original WET size of the node timestamp labels:
// every statement execution is labeled with its timestamp.
func (r *RawStats) OrigNodeTSBytes() uint64 { return r.StmtExecs * TSBytes }

// OrigNodeValBytes is the original WET size of the node value labels.
func (r *RawStats) OrigNodeValBytes() uint64 { return r.DefExecs * ValBytes }

// OrigEdgeBytes is the original WET size of the dependence edge labels.
func (r *RawStats) OrigEdgeBytes() uint64 { return (r.DynDD + r.DynCD) * PairBytes }

// OrigWETBytes is the total original WET size.
func (r *RawStats) OrigWETBytes() uint64 {
	return r.OrigNodeTSBytes() + r.OrigNodeValBytes() + r.OrigEdgeBytes()
}

// Counting is a Sink that only accumulates RawStats. It can wrap another
// sink, forwarding every event.
type Counting struct {
	RawStats
	Next Sink

	curBlk  int
	curFn   int
	haveBlk bool
}

// NewCounting returns a counting sink forwarding to next (next may be nil).
func NewCounting(next Sink) *Counting { return &Counting{Next: next} }

// Stmt implements Sink.
func (c *Counting) Stmt(inst Inst, st *ir.Stmt, value int64, ddSrcs []Inst, ddVals []int64, cdSrc Inst) {
	c.StmtExecs++
	if st.Op.HasDef() {
		c.DefExecs++
	}
	for _, s := range ddSrcs {
		if s != 0 {
			c.DynDD++
		}
	}
	if cdSrc != 0 {
		c.DynCD++
	}
	switch st.Op {
	case ir.OpLoad:
		c.Loads++
	case ir.OpStore:
		c.Stores++
	case ir.OpBr:
		c.Branches++
	case ir.OpLoadSh:
		c.Loads++
		c.SharedAcc++
	case ir.OpStoreSh:
		c.Stores++
		c.SharedAcc++
	case ir.OpSpawn, ir.OpJoin, ir.OpLock, ir.OpUnlock:
		c.SyncOps++
	}
	if !c.haveBlk || c.curFn != st.Fn || c.curBlk != st.Blk || st.Idx == 0 {
		c.BlockExecs++
		c.haveBlk = true
		c.curFn, c.curBlk = st.Fn, st.Blk
	}
	if c.Next != nil {
		c.Next.Stmt(inst, st, value, ddSrcs, ddVals, cdSrc)
	}
}

// PathDone implements Sink.
func (c *Counting) PathDone(fn int, pathID int64) {
	c.PathExecs++
	c.haveBlk = false
	if c.Next != nil {
		c.Next.PathDone(fn, pathID)
	}
}

// PathOwner implements ConcSink, forwarding when the wrapped sink cares.
func (c *Counting) PathOwner(tid int32) {
	if cs, ok := c.Next.(ConcSink); ok {
		cs.PathOwner(tid)
	}
}

// SyncEvent implements ConcSink.
func (c *Counting) SyncEvent(k SyncKind, tid int32, obj int64) {
	if cs, ok := c.Next.(ConcSink); ok {
		cs.SyncEvent(k, tid, obj)
	}
}

// SharedAccess implements ConcSink.
func (c *Counting) SharedAccess(tid int32, addr int64, isWrite bool, stmtID int) {
	if cs, ok := c.Next.(ConcSink); ok {
		cs.SharedAccess(tid, addr, isWrite, stmtID)
	}
}

// Event is a recorded statement event (for tests and small-scale debugging).
type Event struct {
	Inst   Inst
	Stmt   *ir.Stmt
	Value  int64
	DDSrcs []Inst
	DDVals []int64
	CDSrc  Inst
}

// PathEvent is a recorded path completion.
type PathEvent struct {
	Fn     int
	PathID int64
	// Upto is the number of statement events covered so far (prefix length
	// of Recording.Events belonging to this and earlier paths).
	Upto int
}

// Recording is a Sink that stores every event; test-sized runs only.
type Recording struct {
	Events []Event
	Paths  []PathEvent
}

// Stmt implements Sink.
func (r *Recording) Stmt(inst Inst, st *ir.Stmt, value int64, ddSrcs []Inst, ddVals []int64, cdSrc Inst) {
	cp := make([]Inst, len(ddSrcs))
	copy(cp, ddSrcs)
	vp := make([]int64, len(ddVals))
	copy(vp, ddVals)
	r.Events = append(r.Events, Event{Inst: inst, Stmt: st, Value: value, DDSrcs: cp, DDVals: vp, CDSrc: cdSrc})
}

// PathDone implements Sink.
func (r *Recording) PathDone(fn int, pathID int64) {
	r.Paths = append(r.Paths, PathEvent{Fn: fn, PathID: pathID, Upto: len(r.Events)})
}
