package trace

import (
	"testing"

	"wet/internal/ir"
)

func stmt(op ir.Op, idx int) *ir.Stmt {
	d := ir.Reg(0)
	if !op.HasDef() {
		d = ir.NoReg
	}
	return &ir.Stmt{Op: op, Dest: d, Idx: idx}
}

func TestCountingAccumulates(t *testing.T) {
	c := NewCounting(nil)
	// Block of three statements: add (def), store, br.
	c.Stmt(1, stmt(ir.OpAdd, 0), 5, []Inst{0, 3}, []int64{0, 9}, 0)
	c.Stmt(2, stmt(ir.OpStore, 1), 0, []Inst{1, 1}, []int64{4, 4}, 7)
	c.Stmt(3, stmt(ir.OpBr, 2), 0, []Inst{1}, []int64{4}, 7)
	c.PathDone(0, 0)

	if c.StmtExecs != 3 {
		t.Fatalf("StmtExecs = %d", c.StmtExecs)
	}
	if c.DefExecs != 1 {
		t.Fatalf("DefExecs = %d (only the add has a def port)", c.DefExecs)
	}
	if c.DynDD != 4 { // one from add (3), two from store, one from br
		t.Fatalf("DynDD = %d", c.DynDD)
	}
	if c.DynCD != 2 { // store and br carry cdSrc 7
		t.Fatalf("DynCD = %d", c.DynCD)
	}
	if c.BlockExecs != 1 {
		t.Fatalf("BlockExecs = %d", c.BlockExecs)
	}
	if c.PathExecs != 1 {
		t.Fatalf("PathExecs = %d", c.PathExecs)
	}
	if c.Stores != 1 || c.Branches != 1 || c.Loads != 0 {
		t.Fatalf("op counts: %d stores %d branches %d loads", c.Stores, c.Branches, c.Loads)
	}
}

func TestCountingSizeFormulas(t *testing.T) {
	r := RawStats{StmtExecs: 100, DefExecs: 60, DynDD: 120, DynCD: 90}
	if r.OrigNodeTSBytes() != 400 {
		t.Fatalf("ts bytes = %d", r.OrigNodeTSBytes())
	}
	if r.OrigNodeValBytes() != 240 {
		t.Fatalf("val bytes = %d", r.OrigNodeValBytes())
	}
	if r.OrigEdgeBytes() != (120+90)*8 {
		t.Fatalf("edge bytes = %d", r.OrigEdgeBytes())
	}
	if r.OrigWETBytes() != 400+240+1680 {
		t.Fatalf("total = %d", r.OrigWETBytes())
	}
}

func TestCountingForwards(t *testing.T) {
	rec := &Recording{}
	c := NewCounting(rec)
	c.Stmt(1, stmt(ir.OpConst, 0), 9, nil, nil, 0)
	c.PathDone(2, 17)
	if len(rec.Events) != 1 || rec.Events[0].Value != 9 {
		t.Fatalf("forwarded events: %+v", rec.Events)
	}
	if len(rec.Paths) != 1 || rec.Paths[0].Fn != 2 || rec.Paths[0].PathID != 17 {
		t.Fatalf("forwarded paths: %+v", rec.Paths)
	}
}

func TestRecordingCopiesSlices(t *testing.T) {
	rec := &Recording{}
	dd := []Inst{1, 2}
	dv := []int64{10, 20}
	rec.Stmt(1, stmt(ir.OpAdd, 0), 0, dd, dv, 0)
	dd[0] = 99
	dv[0] = 99
	if rec.Events[0].DDSrcs[0] != 1 || rec.Events[0].DDVals[0] != 10 {
		t.Fatal("Recording aliased the caller's slices")
	}
}

func TestBlockExecsCountsReentries(t *testing.T) {
	c := NewCounting(nil)
	// Same block executed twice (e.g. a loop): Idx 0 marks each entry.
	c.Stmt(1, stmt(ir.OpAdd, 0), 0, nil, nil, 0)
	c.Stmt(2, stmt(ir.OpBr, 1), 0, nil, nil, 0)
	c.Stmt(3, stmt(ir.OpAdd, 0), 0, nil, nil, 0)
	c.Stmt(4, stmt(ir.OpBr, 1), 0, nil, nil, 0)
	if c.BlockExecs != 2 {
		t.Fatalf("BlockExecs = %d, want 2", c.BlockExecs)
	}
}
