package corpus

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"wet"
	"wet/internal/faultpoint"
	"wet/internal/stream"
	"wet/internal/workload"
)

// container builds a workload, runs it through the epoch-segmented
// pipeline, and returns the saved v4 bytes.
func container(tb testing.TB, name string, epochTS uint32) []byte {
	tb.Helper()
	wl, err := workload.ByName(name)
	if err != nil {
		tb.Fatal(err)
	}
	prog, in := wl.Build(1)
	tr, _, err := wet.Run(prog, wet.WithInputs(in...), wet.WithEpochTS(epochTS))
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// cfDigest fingerprints a trace's forward control-flow walk.
func cfDigest(tb testing.TB, tr *wet.Trace) uint64 {
	tb.Helper()
	var h uint64 = 1469598103934665603
	tr.ExtractControlFlow(true, func(id int) {
		h = (h ^ uint64(id)) * 1099511628211
	})
	return h
}

func TestCorpusRegistry(t *testing.T) {
	li := container(t, "li", 1<<8)
	gz := container(t, "gzip", 1<<8)

	c := New(0)
	e1, err := c.Add("li", li)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add("gzip", gz); err != nil {
		t.Fatal(err)
	}
	if len(c.Entries()) != 2 {
		t.Fatalf("%d entries, want 2", len(c.Entries()))
	}
	if e1.Segs.Len() == 0 {
		t.Fatal("li registered no segments")
	}

	// Same content under another name dedupes to the existing entry.
	dup, err := c.Add("li-again", li)
	if err != nil || dup != e1 {
		t.Fatalf("duplicate content: entry=%p err=%v, want %p nil", dup, err, e1)
	}
	// A taken name with different content is an error.
	if _, err := c.Add("li", container(t, "mcf", 1<<8)); err == nil {
		t.Fatal("conflicting name accepted")
	}

	for _, ref := range []string{"li", e1.Key, e1.Key[:12]} {
		got, ok := c.Lookup(ref)
		if !ok || got != e1 {
			t.Fatalf("Lookup(%q) = %p %v, want %p", ref, got, ok, e1)
		}
	}
	if _, ok := c.Lookup("nope"); ok {
		t.Fatal("Lookup of unknown ref succeeded")
	}
	if _, ok := c.Lookup(e1.Key[:4]); ok {
		t.Fatal("Lookup accepted a 4-char prefix")
	}
}

func TestCorpusBudgetEviction(t *testing.T) {
	c := New(1 << 12) // 4 KiB of decoded state: far below one trace's total
	e, err := c.Add("li", container(t, "li", 1<<8))
	if err != nil {
		t.Fatal(err)
	}
	want := func() uint64 {
		tr, _, err := wet.Open(bytes.NewReader(container(t, "li", 1<<8)))
		if err != nil {
			t.Fatal(err)
		}
		return cfDigest(t, tr)
	}()

	for i := 0; i < 3; i++ {
		if got := cfDigest(t, e.Trace); got != want {
			t.Fatalf("pass %d digest %#x != uncached %#x", i, got, want)
		}
	}
	// A full forward scan under a tiny LRU is pure thrash (every touch a
	// miss); two identical point queries back to back must hit.
	tm := e.Trace.Time()
	for i := 0; i < 2; i++ {
		if _, err := e.Trace.ExtractCFRange(tm, tm, nil); err != nil {
			t.Fatal(err)
		}
	}
	// A backward walk repositions segment cursors against their read
	// direction, so it must register checkpoint seeks.
	e.Trace.ExtractControlFlow(false, nil)

	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget (resident %d of %d segs)",
			c.Budget(), st.ResidentBytes, st.Segments)
	}
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("miss/hit accounting dead: %+v", st)
	}
	if st.ResidentBytes > 0 && st.ResidentSegments == 0 {
		t.Fatalf("accounting skew: %d bytes over 0 segments", st.ResidentBytes)
	}
	if st.Seeks == 0 {
		t.Fatal("per-corpus seek accounting recorded nothing")
	}

	released := c.EvictAll()
	if released == 0 {
		t.Fatal("EvictAll released nothing with segments resident")
	}
	if got := c.ResidentBytes(); got != 0 {
		t.Fatalf("%d bytes resident after EvictAll", got)
	}
	if got := cfDigest(t, e.Trace); got != want {
		t.Fatalf("post-EvictAll digest %#x != %#x", got, want)
	}
}

// TestCorpusConcurrentEviction is the serving-path race rehearsal: eight
// clients hammer a three-trace corpus whose budget forces continuous
// eviction and reload, and every answer must match the uncached baseline.
// Run with -race.
func TestCorpusConcurrentEviction(t *testing.T) {
	names := []string{"li", "gzip", "mcf"}
	data := make(map[string][]byte, len(names))
	baseline := make(map[string]uint64, len(names))
	for _, n := range names {
		data[n] = container(t, n, 1<<8)
		tr, _, err := wet.Open(bytes.NewReader(data[n]))
		if err != nil {
			t.Fatal(err)
		}
		baseline[n] = cfDigest(t, tr)
	}

	c := New(1 << 13) // 8 KiB across three traces: nothing stays resident long
	entries := make(map[string]*Entry, len(names))
	for _, n := range names {
		e, err := c.Add(n, data[n])
		if err != nil {
			t.Fatal(err)
		}
		entries[n] = e
	}

	const clients = 8
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				n := names[(id+j)%len(names)]
				if got := cfDigest(t, entries[n].Trace); got != baseline[n] {
					errs <- fmt.Errorf("client %d iter %d: %s digest %#x != %#x", id, j, n, got, baseline[n])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("budget never evicted (resident %d / budget %d)", st.ResidentBytes, st.Budget)
	}
	t.Logf("stats: %+v", st)
}

func TestCorpusLoadVeto(t *testing.T) {
	c := New(0)
	e, err := c.Add("li", container(t, "li", 1<<8))
	if err != nil {
		t.Fatal(err)
	}
	if err := faultpoint.Arm("corpus.segment.load", faultpoint.Spec{Action: faultpoint.ActErr, Detail: "cold store offline"}); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.DisarmAll()

	_, qerr := e.Trace.ExtractCFRange(1, e.Trace.Time(), nil)
	var de *stream.DecodeError
	if !errors.As(qerr, &de) {
		t.Fatalf("vetoed load returned %v, want *stream.DecodeError", qerr)
	}
	var fe *faultpoint.Error
	if !errors.As(qerr, &fe) || fe.Point != "corpus.segment.load" {
		t.Fatalf("veto cause lost: %v", qerr)
	}
	if c.Vetoes() == 0 {
		t.Fatal("veto counter not incremented")
	}

	faultpoint.DisarmAll()
	if _, err := e.Trace.ExtractCFRange(1, e.Trace.Time(), nil); err != nil {
		t.Fatalf("query still failing after disarm: %v", err)
	}
}
