// Package corpus is the multi-trace registry behind the serving daemon: a
// set of opened traces keyed by content hash, sharing one byte-budgeted
// cache of decoded segment state.
//
// Each trace is opened with a segment index (wet.WithSegments), so its
// label streams load structurally — serialized bytes retained, decode
// deferred. The corpus installs itself as the residency hooks of every
// segment: a decode admits the segment's decoded weight into a global LRU,
// a cursor touch refreshes its recency, and whenever admissions push the
// decoded total over the budget the least-recently-used segments are
// evicted (their decoded state dropped, their bytes reclaimed) until the
// corpus fits again. Live cursors are unaffected by eviction — a cursor
// holds a reference to the decoded state it started on — and a later query
// on an evicted segment simply re-decodes it, single-flight, from the
// retained bytes.
//
// The corpus deliberately does not import the metrics package; it keeps
// plain atomic counters (hits, misses, evictions, vetoes) that the serving
// layer bridges into its registry with CounterFunc/GaugeFunc.
package corpus

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"wet"
	"wet/internal/faultpoint"
	"wet/internal/stream"
)

// fpSegLoad fires inside the residency hook that guards every segment
// decode; an injected error vetoes the load and surfaces to the query that
// needed the segment as a *stream.DecodeError.
var fpSegLoad = faultpoint.New("corpus.segment.load")

// Entry is one registered trace.
type Entry struct {
	// Key is the hex sha256 of the container bytes — the content-addressed
	// identity clients query by.
	Key string
	// Name is the human-readable label the trace was added under.
	Name string
	// Size is the container size in bytes.
	Size int64
	// Trace is the query handle; all its methods are safe for concurrent use.
	Trace *wet.Trace
	// Segs indexes the trace's evictable segments.
	Segs *wet.SegmentSource
	// Report is the open report (version, degradation).
	Report *wet.OpenReport
}

// Stats is a point-in-time snapshot of the corpus and its cache.
type Stats struct {
	Traces   int    `json:"traces"`
	Segments int    `json:"segments"`
	Budget   uint64 `json:"budget_bytes"`

	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Vetoes    uint64 `json:"load_vetoes"`

	ResidentBytes    uint64 `json:"resident_bytes"`
	ResidentSegments int    `json:"resident_segments"`
	RawBytes         uint64 `json:"raw_bytes"`

	// Aggregated cursor seek accounting across every trace in the corpus.
	Seeks    uint64 `json:"seeks"`
	Restores uint64 `json:"restores"`
	Steps    uint64 `json:"steps"`
}

// Corpus is a registry of traces sharing one segment-residency budget.
// Safe for concurrent use.
type Corpus struct {
	budget uint64 // decoded-byte ceiling; 0 = unlimited

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	vetoes    atomic.Uint64

	mu      sync.Mutex
	entries map[string]*Entry // by full key
	byName  map[string]*Entry
	order   []string // keys in add order

	// LRU of admitted (resident) segments; front = most recently used.
	lru      *list.List
	elem     map[*stream.Evictable]*list.Element
	weight   map[*stream.Evictable]uint64
	resident uint64
}

// New returns an empty corpus whose decoded segment state is bounded by
// byteBudget bytes (0: unlimited).
func New(byteBudget uint64) *Corpus {
	return &Corpus{
		budget:  byteBudget,
		entries: make(map[string]*Entry),
		byName:  make(map[string]*Entry),
		lru:     list.New(),
		elem:    make(map[*stream.Evictable]*list.Element),
		weight:  make(map[*stream.Evictable]uint64),
	}
}

// Add opens the container in data and registers it under name. The key is
// the sha256 of data; adding the same content twice returns the existing
// entry. Adding a different container under an existing name errors.
func (c *Corpus) Add(name string, data []byte) (*Entry, error) {
	sum := sha256.Sum256(data)
	key := hex.EncodeToString(sum[:])

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		return e, nil
	}
	if _, taken := c.byName[name]; taken {
		c.mu.Unlock()
		return nil, fmt.Errorf("corpus: name %q already registered with different content", name)
	}
	c.mu.Unlock()

	ss := wet.NewSegmentSource()
	tr, rep, err := wet.Open(bytes.NewReader(data), wet.WithSegments(ss))
	if err != nil {
		return nil, fmt.Errorf("corpus: open %q: %w", name, err)
	}
	ss.SetHooks(hooks{c})

	e := &Entry{Key: key, Name: name, Size: int64(len(data)), Trace: tr, Segs: ss, Report: rep}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.entries[key]; ok { // lost a concurrent Add of the same bytes
		return prev, nil
	}
	if _, taken := c.byName[name]; taken {
		return nil, fmt.Errorf("corpus: name %q already registered with different content", name)
	}
	c.entries[key] = e
	c.byName[name] = e
	c.order = append(c.order, key)
	return e, nil
}

// AddFile reads path and registers it under name (the file's base name when
// name is empty).
func (c *Corpus) AddFile(name, path string) (*Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	if name == "" {
		name = strings.TrimSuffix(filepathBase(path), ".wet")
	}
	return c.Add(name, data)
}

// filepathBase avoids importing path/filepath for one call.
func filepathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// Lookup resolves a client-supplied trace reference: a registered name, a
// full key, or an unambiguous key prefix of at least 6 hex digits.
func (c *Corpus) Lookup(ref string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byName[ref]; ok {
		return e, true
	}
	if e, ok := c.entries[ref]; ok {
		return e, true
	}
	if len(ref) >= 6 {
		var found *Entry
		for k, e := range c.entries {
			if strings.HasPrefix(k, ref) {
				if found != nil {
					return nil, false // ambiguous
				}
				found = e
			}
		}
		if found != nil {
			return found, true
		}
	}
	return nil, false
}

// Entries returns the registered traces in add order.
func (c *Corpus) Entries() []*Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Entry, 0, len(c.order))
	for _, k := range c.order {
		out = append(out, c.entries[k])
	}
	return out
}

// Hits returns cache hits: segment touches that found decoded state.
func (c *Corpus) Hits() uint64 { return c.hits.Load() }

// Misses returns cache misses: touches that had to decode.
func (c *Corpus) Misses() uint64 { return c.misses.Load() }

// Evictions returns how many segments the budget has evicted.
func (c *Corpus) Evictions() uint64 { return c.evictions.Load() }

// Vetoes returns loads refused by the corpus.segment.load faultpoint.
func (c *Corpus) Vetoes() uint64 { return c.vetoes.Load() }

// ResidentBytes returns the decoded bytes currently admitted.
func (c *Corpus) ResidentBytes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resident
}

// ResidentSegments returns how many segments are currently admitted.
func (c *Corpus) ResidentSegments() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Budget returns the configured decoded-byte ceiling (0: unlimited).
func (c *Corpus) Budget() uint64 { return c.budget }

// EvictAll drops every admitted segment, returning the bytes released.
func (c *Corpus) EvictAll() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var released uint64
	for c.lru.Len() > 0 {
		released += c.evictLocked(c.lru.Back())
	}
	return released
}

// Stats snapshots the corpus.
func (c *Corpus) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Vetoes:    c.vetoes.Load(),
		Budget:    c.budget,
	}
	c.mu.Lock()
	entries := make([]*Entry, 0, len(c.order))
	for _, k := range c.order {
		entries = append(entries, c.entries[k])
	}
	st.Traces = len(entries)
	st.ResidentBytes = c.resident
	st.ResidentSegments = c.lru.Len()
	c.mu.Unlock()

	for _, e := range entries {
		st.Segments += e.Segs.Len()
		st.RawBytes += e.Segs.RawBytes()
		ss := e.Trace.SeekStats()
		st.Seeks += ss.Seeks
		st.Restores += ss.Restores
		st.Steps += ss.Steps
	}
	return st
}

// --- residency hooks ---

// hooks adapts the corpus to stream.ResidencyHooks. BeforeLoad and
// AfterLoad run under the segment's load mutex; Touched runs lock-free on
// the cursor fast path. None of them may call back into the stream they are
// invoked for (Evict, being lock-free, is the one exception) — the lock
// order is always segment.loadMu → corpus.mu, never the reverse.
type hooks struct{ c *Corpus }

// BeforeLoad gates the decode: a veto (injected via corpus.segment.load)
// aborts the load and surfaces to the touching query as a *DecodeError.
func (h hooks) BeforeLoad(e *stream.Evictable) error {
	if err := fpSegLoad.Hit(); err != nil {
		h.c.vetoes.Add(1)
		return err
	}
	h.c.misses.Add(1)
	return nil
}

// AfterLoad admits the freshly decoded segment and evicts from the LRU
// tail until the corpus fits its budget again. The segment just loaded is
// never evicted here — evicting it would discard state its loader is about
// to use.
func (h hooks) AfterLoad(e *stream.Evictable, weight uint64) {
	c := h.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.elem[e]; ok {
		// Re-admission after an external evict the corpus didn't see
		// (EvictAll on the SegmentSource): refresh the weight in place.
		c.resident += weight - c.weight[e]
		c.weight[e] = weight
		c.lru.MoveToFront(el)
	} else {
		c.elem[e] = c.lru.PushFront(e)
		c.weight[e] = weight
		c.resident += weight
	}
	if c.budget == 0 {
		return
	}
	for c.resident > c.budget && c.lru.Len() > 1 {
		tail := c.lru.Back()
		if tail.Value.(*stream.Evictable) == e {
			break
		}
		c.evictLocked(tail)
	}
}

// Touched refreshes recency on a cache hit.
func (h hooks) Touched(e *stream.Evictable) {
	c := h.c
	c.hits.Add(1)
	c.mu.Lock()
	if el, ok := c.elem[e]; ok {
		c.lru.MoveToFront(el)
	}
	c.mu.Unlock()
}

// evictLocked removes one admitted segment (held as a *list.Element) and
// drops its decoded state. Caller holds c.mu. Returns the bytes released
// per the admission-time weight.
func (c *Corpus) evictLocked(el *list.Element) uint64 {
	e := el.Value.(*stream.Evictable)
	c.lru.Remove(el)
	delete(c.elem, e)
	w := c.weight[e]
	delete(c.weight, e)
	c.resident -= w
	e.Evict()
	c.evictions.Add(1)
	return w
}
