package sanalysis_test

import (
	"testing"

	"wet/internal/core"
	"wet/internal/interp"
	. "wet/internal/sanalysis"
	"wet/internal/workload"
)

// buildWET runs one workload and freezes its trace.
func buildWET(t *testing.T, name string, scale int) *core.WET {
	t.Helper()
	wl, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, in := wl.Build(scale)
	st, err := interp.Analyze(p)
	if err != nil {
		t.Fatalf("%s: Analyze: %v", name, err)
	}
	w, _, err := core.Build(st, interp.Options{Inputs: in, MaxSteps: 1 << 26})
	if err != nil {
		t.Fatalf("%s: Build: %v", name, err)
	}
	w.Freeze(core.FreezeOptions{CheckpointK: 64})
	return w
}

// TestVerifyWorkloadsClean certifies every workload WET at both tiers: the
// dynamic trace of a real run must be semantically consistent with the
// static analysis of its program.
func TestVerifyWorkloadsClean(t *testing.T) {
	for _, wl := range workload.All() {
		w := buildWET(t, wl.Name, 1)
		for _, tier := range []core.Tier{core.Tier1, core.Tier2} {
			rep, err := VerifyWET(w, VerifyOptions{Tier: tier})
			if err != nil {
				t.Fatalf("%s tier %v: VerifyWET: %v", wl.Name, tier, err)
			}
			if !rep.OK() {
				for _, f := range rep.Findings {
					t.Errorf("%s tier %v: %s", wl.Name, tier, f)
				}
				t.Fatalf("%s tier %v: %d semantic findings on a clean trace", wl.Name, tier, len(rep.Findings))
			}
			if rep.Transitions == 0 || rep.Edges == 0 {
				t.Fatalf("%s tier %v: empty verification (transitions=%d edges=%d)", wl.Name, tier, rep.Transitions, rep.Edges)
			}
		}
	}
}

// TestVerifySkipsConcurrent pins the concurrency gate: the sequential
// replay rules do not describe interleaved control flow, so a concurrent
// trace is skipped with a reason instead of drowning in false findings.
func TestVerifySkipsConcurrent(t *testing.T) {
	wl, err := workload.ConcByName("li-conc-clean")
	if err != nil {
		t.Fatal(err)
	}
	p, in := wl.Build(1)
	st, err := interp.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := core.Build(st, interp.Options{Inputs: in})
	if err != nil {
		t.Fatal(err)
	}
	w.Freeze(core.FreezeOptions{})
	rep, err := VerifyWET(w, VerifyOptions{Tier: core.Tier2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped == "" || !rep.OK() || len(rep.Findings) != 0 {
		t.Fatalf("concurrent trace not gated: %+v", rep)
	}
	if err := w.Certify(); err != nil {
		t.Fatalf("Certify on a concurrent trace must pass via the gate: %v", err)
	}
}
