package sanalysis_test

import (
	"bytes"
	"testing"

	"wet/internal/core"
	"wet/internal/interp"
	"wet/internal/ir"
	. "wet/internal/sanalysis"
	"wet/internal/stream"
	"wet/internal/wetio"
	"wet/internal/workload"
)

// buildRaw runs a workload without freezing, so tests can plant semantic
// corruptions in the tier-1 representation before compression.
func buildRaw(t *testing.T, name string, scale int) *core.WET {
	t.Helper()
	wl, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, in := wl.Build(scale)
	st, err := interp.Analyze(p)
	if err != nil {
		t.Fatalf("%s: Analyze: %v", name, err)
	}
	w, _, err := core.Build(st, interp.Options{Inputs: in, MaxSteps: 1 << 26})
	if err != nil {
		t.Fatalf("%s: Build: %v", name, err)
	}
	return w
}

// roundtrip freezes the (possibly corrupted) WET, saves it, demands that the
// byte-level CRC walk still passes — the corruptions are semantic, not
// bit rot — and loads it back for tier-2 verification.
func roundtrip(t *testing.T, w *core.WET) *core.WET {
	t.Helper()
	w.Freeze(core.FreezeOptions{CheckpointK: 64})
	var buf bytes.Buffer
	if err := wetio.Save(&buf, w); err != nil {
		t.Fatalf("Save: %v", err)
	}
	vr, err := wetio.Verify(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("byte-level Verify: %v", err)
	}
	if !vr.OK() {
		t.Fatalf("byte-level Verify rejected a semantically corrupted file; CRC must not see semantic faults: %+v", vr)
	}
	lw, err := wetio.Load(bytes.NewReader(buf.Bytes()), wetio.LoadOptions{})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return lw
}

// findRule returns the findings carrying the given rule.
func findRule(rep *Report, r Rule) []Finding {
	var out []Finding
	for _, f := range rep.Findings {
		if f.Rule == r {
			out = append(out, f)
		}
	}
	return out
}

// TestCorruptDDRetarget retargets a labeled DD edge's source to a definition
// that does not statically reach the use; the semantic verifier must report
// DD001 through cursor traversal alone while the CRC layer stays green.
func TestCorruptDDRetarget(t *testing.T) {
	w := buildRaw(t, "li", 1)
	a, err := AnalyzeWithPaths(w.Prog, w.Static.Paths)
	if err != nil {
		t.Fatal(err)
	}

	planted := false
	for ei, e := range w.Edges {
		if e.Kind != core.DD || len(e.SrcOrd) == 0 {
			continue
		}
		maxOrd := 0
		for _, o := range e.SrcOrd {
			if int(o) > maxOrd {
				maxOrd = int(o)
			}
		}
		dst := w.Nodes[e.DstNode].Stmts[e.DstPos]
		// Find a replacement definition that is NOT a static reaching def
		// of the use operand, on a node executed often enough to keep the
		// existing source ordinals structurally valid.
		for ni, nd := range w.Nodes {
			if planted || nd.Execs <= maxOrd {
				continue
			}
			for pi, s := range nd.Stmts {
				if !DefinesReg(s, s.Dest) || s.Dest < 0 {
					continue
				}
				if (ni == e.SrcNode && pi == e.SrcPos) || a.IsReachingDef(s.ID, dst.ID, e.OpIdx) {
					continue
				}
				// Rehome the edge in the adjacency lists, then retarget.
				old := w.Nodes[e.SrcNode].OutEdges[e.SrcPos]
				for k, idx := range old {
					if idx == ei {
						w.Nodes[e.SrcNode].OutEdges[e.SrcPos] = append(old[:k:k], old[k+1:]...)
						break
					}
				}
				e.SrcNode, e.SrcPos = ni, pi
				nd.OutEdges[pi] = append(nd.OutEdges[pi], ei)
				planted = true
				break
			}
		}
		if planted {
			break
		}
	}
	if !planted {
		t.Fatal("no DD edge admitted a non-reaching retarget")
	}

	lw := roundtrip(t, w)
	rep, err := VerifyWET(lw, VerifyOptions{Tier: core.Tier2})
	if err != nil {
		t.Fatal(err)
	}
	if fs := findRule(rep, RuleDDStatic); len(fs) == 0 {
		t.Fatalf("retargeted DD edge not reported as %s; findings: %v", RuleDDStatic, rep.Findings)
	}
}

// TestCorruptCDAcausal rewrites one CD label pair so the branch "fires"
// after the statement it controls; the verifier must report CD002.
func TestCorruptCDAcausal(t *testing.T) {
	w := buildRaw(t, "li", 1)

	planted := false
	for _, e := range w.Edges {
		if e.Kind != core.CD || len(e.SrcOrd) == 0 {
			continue
		}
		sn, dn := w.Nodes[e.SrcNode], w.Nodes[e.DstNode]
		for k := range e.SrcOrd {
			tsDst := dn.TS[e.DstOrd[k]]
			// Point the source ordinal at a later execution of the branch
			// node than the destination it supposedly controls.
			for j := sn.Execs - 1; j >= 0; j-- {
				if sn.TS[j] < tsDst {
					break
				}
				if e.SrcNode == e.DstNode && uint32(j) == e.DstOrd[k] {
					continue // same-execution pairs are judged by position
				}
				if uint32(j) != e.SrcOrd[k] {
					e.SrcOrd[k] = uint32(j)
					planted = true
					break
				}
			}
			if planted {
				break
			}
		}
		if planted {
			break
		}
	}
	if !planted {
		t.Fatal("no CD label admitted an acausal rewrite")
	}

	lw := roundtrip(t, w)
	rep, err := VerifyWET(lw, VerifyOptions{Tier: core.Tier2})
	if err != nil {
		t.Fatal(err)
	}
	if fs := findRule(rep, RuleCDOrder); len(fs) == 0 {
		t.Fatalf("acausal CD label not reported as %s; findings: %v", RuleCDOrder, rep.Findings)
	}
}

// TestCorruptCFSplice swaps timestamps between two nodes, splicing a control
// flow transition the static CFG cannot take: the execution right after a
// call is exchanged with one that is not the callee's entry path. The
// timestamps still form a dense total order, so only the transition replay
// (CF002/CF003) can see the fault.
func TestCorruptCFSplice(t *testing.T) {
	w := buildRaw(t, "vortex", 1)

	monotoneAfterSwap := func(ts []uint32, i int, v uint32) bool {
		if i > 0 && ts[i-1] >= v {
			return false
		}
		if i+1 < len(ts) && ts[i+1] <= v {
			return false
		}
		return true
	}
	endTerm := func(n *core.Node) *ir.Stmt {
		return w.Prog.Funcs[n.Fn].Blocks[n.Blocks[len(n.Blocks)-1]].Term()
	}

	// Index which node execution owns each timestamp.
	type occ struct{ node, ord int }
	at := make([]occ, w.Time+1)
	for _, n := range w.Nodes {
		for o, ts := range n.TS {
			at[ts] = occ{n.ID, o}
		}
	}

	planted := false
	for t0 := uint32(2); t0+1 < w.Time && !planted; t0++ {
		p := w.Nodes[at[t0].node]
		term := endTerm(p)
		if term.Op != ir.OpCall {
			continue
		}
		succ := w.Nodes[at[t0+1].node] // the callee's entry path execution
		j := at[t0+1].ord
		for _, c := range w.Nodes {
			if c.ID == succ.ID || (c.Fn == term.Callee && c.Blocks[0] == 0) {
				continue // still a plausible callee entry; pick a real impostor
			}
			for k, ts2 := range c.TS {
				if ts2 == 1 || ts2 == w.Time || ts2 == t0+1 {
					continue // keep the anchors intact: we want CF002/CF003, not CF001
				}
				if !monotoneAfterSwap(succ.TS, j, ts2) || !monotoneAfterSwap(c.TS, k, t0+1) {
					continue
				}
				succ.TS[j], c.TS[k] = ts2, t0+1
				planted = true
				break
			}
			if planted {
				break
			}
		}
	}
	if !planted {
		t.Fatal("no timestamp swap produced an impossible transition")
	}
	// The replay must already see the splice in the tier-1 representation.
	rep, err := VerifyWET(w, VerifyOptions{Tier: core.Tier1})
	if err != nil {
		t.Fatal(err)
	}
	if len(findRule(rep, RuleCFTransition))+len(findRule(rep, RuleCFCallStack)) == 0 {
		t.Fatalf("spliced transition not reported in memory; findings: %v", rep.Findings)
	}

	lw := roundtrip(t, w)
	rep, err = VerifyWET(lw, VerifyOptions{Tier: core.Tier2})
	if err != nil {
		t.Fatal(err)
	}
	if len(findRule(rep, RuleCFTransition))+len(findRule(rep, RuleCFCallStack)) == 0 {
		t.Fatalf("spliced transition not reported as %s/%s; findings: %v", RuleCFTransition, RuleCFCallStack, rep.Findings)
	}
}

// TestVerifyWalksStreams pins the streaming contract: tier-2 verification
// must traverse the compressed streams through checkpointed cursors — no
// materialized sequences — which ReadSeekStats makes observable.
func TestVerifyWalksStreams(t *testing.T) {
	w := buildWET(t, "gzip", 1)
	before := stream.ReadSeekStats()
	rep, err := VerifyWET(w, VerifyOptions{Tier: core.Tier2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean trace reported findings: %v", rep.Findings)
	}
	d := stream.ReadSeekStats().Sub(before)
	if d.Seeks == 0 {
		t.Fatal("tier-2 verification issued no cursor seeks; it is not walking the compressed streams")
	}
	// Ordinal->timestamp lookups go through checkpointed Seek (buildWET
	// freezes with CheckpointK=64, so each costs at most ~64 steps plus a
	// restore); a generous linear bound over all lookups catches any
	// fallback to full rescans.
	bound := uint64(rep.Labels+rep.Transitions+1) * 128
	if d.Steps > bound {
		t.Fatalf("tier-2 verification stepped %d cursor positions for %d labels (bound %d): seeks are degenerating to scans", d.Steps, rep.Labels, bound)
	}
}
