package sanalysis

import (
	"fmt"
	"sort"

	"wet/internal/ir"
)

// Static reaching definitions, mirroring exactly how the simulator
// propagates dependence tags (internal/interp):
//
//   - a register def (any statement with a def port and a destination)
//     reaches uses of that register along register-kill-free CFG paths
//     within the frame; call statements do not disturb caller registers
//     except the return destination, which they redefine;
//   - a callee's parameter register initially holds whatever definition
//     reached the corresponding argument at some call site (interprocedural,
//     resolved transitively);
//   - a call's return destination holds whatever definition reached the
//     returned operand at some Ret of the callee (interprocedural);
//   - the memory operand of a Load may be defined by any Store in the
//     program (the flat word memory is not statically resolvable).
//
// Definition sites are encoded as ints: id >= 0 is the program-wide
// statement id of a concrete def; id < 0 is -(symIdx+1), a symbolic site
// (function parameter or function return value) resolved to concrete
// statements by the call-graph fixpoint below.

type symKind uint8

const (
	symParam symKind = iota // value of parameter idx on entry to fn
	symRet                  // value returned by fn
)

type symbol struct {
	kind symKind
	fn   int
	idx  int // parameter index (symParam)
}

// siteSet is a small set of definition sites.
type siteSet map[int]struct{}

func (s siteSet) clone() siteSet {
	c := make(siteSet, len(s))
	for k := range s {
		c[k] = struct{}{}
	}
	return c
}

// reachDefs holds the solved program-wide def–use facts.
type reachDefs struct {
	prog *ir.Program
	syms []symbol

	// useDefs[stmtID][k] is the sorted set of concrete def statement ids
	// that may reach the k-th register use (ir.Stmt.Uses order) of the
	// statement. The memory operand of a Load is NOT included here; it is
	// index memOpIdx[stmtID] and its def set is "every Store".
	useDefs [][][]int

	// memOpIdx[stmtID] is the dependence-operand index of the statement's
	// memory operand (Loads only), or -1.
	memOpIdx []int

	// numRegUses[stmtID] caches len(Uses) per statement.
	numRegUses []int
}

// MemOperandIndex returns the dependence-operand index of the statement's
// memory operand, or -1 when the statement has none.
func (a *Analysis) MemOperandIndex(stmtID int) int { return a.rd.memOpIdx[stmtID] }

// NumDepOperands returns how many dependence operands the statement has:
// its register uses plus one memory operand for Loads.
func (a *Analysis) NumDepOperands(stmtID int) int {
	n := a.rd.numRegUses[stmtID]
	if a.rd.memOpIdx[stmtID] >= 0 {
		n++
	}
	return n
}

// ReachingDefs returns the sorted concrete def statement ids that may reach
// the opIdx-th dependence operand of statement use. For a Load's memory
// operand the set is implicit ("any Store") and nil is returned with
// mem=true. The returned slice is shared; callers must not modify it.
func (a *Analysis) ReachingDefs(useStmtID, opIdx int) (defs []int, mem bool) {
	rd := a.rd
	if useStmtID < 0 || useStmtID >= len(rd.useDefs) {
		return nil, false
	}
	if opIdx == rd.memOpIdx[useStmtID] && opIdx >= 0 {
		return nil, true
	}
	if opIdx < 0 || opIdx >= len(rd.useDefs[useStmtID]) {
		return nil, false
	}
	return rd.useDefs[useStmtID][opIdx], false
}

// IsReachingDef reports whether the definition at statement defID may
// statically reach the opIdx-th dependence operand of statement useID.
func (a *Analysis) IsReachingDef(defID, useID, opIdx int) bool {
	defs, mem := a.ReachingDefs(useID, opIdx)
	if mem {
		return defID >= 0 && defID < len(a.Prog.Stmts) && a.Prog.Stmts[defID].Op == ir.OpStore
	}
	i := sort.SearchInts(defs, defID)
	return i < len(defs) && defs[i] == defID
}

// solveReachingDefs computes the program-wide def–use relation.
func solveReachingDefs(p *ir.Program) (*reachDefs, error) {
	rd := &reachDefs{
		prog:       p,
		useDefs:    make([][][]int, len(p.Stmts)),
		memOpIdx:   make([]int, len(p.Stmts)),
		numRegUses: make([]int, len(p.Stmts)),
	}

	// Intern the symbolic sites: one Ret per function, one Param per
	// (function, parameter).
	retSym := make([]int, len(p.Funcs))
	paramSym := make([][]int, len(p.Funcs))
	for fi, f := range p.Funcs {
		retSym[fi] = len(rd.syms)
		rd.syms = append(rd.syms, symbol{kind: symRet, fn: fi})
		paramSym[fi] = make([]int, f.Params)
		for i := 0; i < f.Params; i++ {
			paramSym[fi][i] = len(rd.syms)
			rd.syms = append(rd.syms, symbol{kind: symParam, fn: fi, idx: i})
		}
	}
	enc := func(symIdx int) int { return -(symIdx + 1) }

	// rawUse[stmtID][k] collects per-use site sets (symbolic + concrete);
	// argSites[stmtID][i] the sites of call argument i (nil for immediates);
	// retSites[stmtID] the sites of a Ret's returned operand.
	rawUse := make([][]siteSet, len(p.Stmts))
	argSites := make([][]siteSet, len(p.Stmts))
	retSites := make([]siteSet, len(p.Stmts))

	var uses []ir.Reg
	for fi, f := range p.Funcs {
		// Per-block dataflow state: out[b][r] = sites reaching the block
		// exit for register r. Entry block seeds parameters.
		out := make([][]siteSet, len(f.Blocks))
		for b := range out {
			out[b] = make([]siteSet, f.NumRegs)
		}
		entryIn := make([]siteSet, f.NumRegs)
		for i := 0; i < f.Params; i++ {
			entryIn[i] = siteSet{enc(paramSym[fi][i]): {}}
		}

		// defSite returns the site a statement defines into its destination,
		// or (-1, NoReg) when it defines nothing.
		defOf := func(s *ir.Stmt) (int, ir.Reg) {
			if s.Op.HasDef() && s.Dest != ir.NoReg {
				return s.ID, s.Dest
			}
			if s.Op == ir.OpCall && s.Dest != ir.NoReg {
				return enc(retSym[s.Callee]), s.Dest
			}
			return 0, ir.NoReg
		}

		// transfer applies one block to a register state in place.
		transfer := func(b *ir.Block, state []siteSet) {
			for _, s := range b.Stmts {
				if site, r := defOf(s); r != ir.NoReg {
					state[r] = siteSet{site: {}}
				}
			}
		}

		// Iterate to fixpoint over blocks in layout order (programs are
		// small; plain rounds converge quickly).
		merged := make([]siteSet, f.NumRegs)
		for changed := true; changed; {
			changed = false
			for _, b := range f.Blocks {
				for r := range merged {
					merged[r] = nil
				}
				if b.ID == 0 {
					for r, s := range entryIn {
						if s != nil {
							merged[r] = s.clone()
						}
					}
				}
				for _, pred := range b.Preds {
					for r, s := range out[pred] {
						if len(s) == 0 {
							continue
						}
						if merged[r] == nil {
							merged[r] = siteSet{}
						}
						for k := range s {
							merged[r][k] = struct{}{}
						}
					}
				}
				transfer(b, merged)
				for r, s := range merged {
					old := out[b.ID][r]
					if len(s) != len(old) {
						out[b.ID][r] = s.clone()
						changed = true
						continue
					}
					for k := range s {
						if _, ok := old[k]; !ok {
							out[b.ID][r] = s.clone()
							changed = true
							break
						}
					}
				}
			}
		}

		// Per-statement use sites: re-walk each block from its IN state.
		state := make([]siteSet, f.NumRegs)
		for _, b := range f.Blocks {
			for r := range state {
				state[r] = nil
			}
			if b.ID == 0 {
				for r, s := range entryIn {
					if s != nil {
						state[r] = s.clone()
					}
				}
			}
			for _, pred := range b.Preds {
				for r, s := range out[pred] {
					if len(s) == 0 {
						continue
					}
					if state[r] == nil {
						state[r] = siteSet{}
					}
					for k := range s {
						state[r][k] = struct{}{}
					}
				}
			}
			for _, s := range b.Stmts {
				uses = s.Uses(uses[:0])
				rd.numRegUses[s.ID] = len(uses)
				rd.memOpIdx[s.ID] = -1
				if s.Op == ir.OpLoad {
					rd.memOpIdx[s.ID] = len(uses)
				}
				rawUse[s.ID] = make([]siteSet, len(uses))
				for k, r := range uses {
					if state[r] != nil {
						rawUse[s.ID][k] = state[r].clone()
					}
				}
				if s.Op == ir.OpCall {
					argSites[s.ID] = make([]siteSet, len(s.Args))
					for i, arg := range s.Args {
						if arg.IsReg && state[arg.Reg] != nil {
							argSites[s.ID][i] = state[arg.Reg].clone()
						}
					}
				}
				if s.Op == ir.OpRet && s.A.IsReg && state[s.A.Reg] != nil {
					retSites[s.ID] = state[s.A.Reg].clone()
				}
				if site, r := defOf(s); r != ir.NoReg {
					state[r] = siteSet{site: {}}
				}
			}
		}
	}

	// Interprocedural fixpoint: resolve each symbolic site to the concrete
	// statements that may feed it. expand folds the current values of
	// symbolic sites into a concrete set.
	val := make([]siteSet, len(rd.syms))
	for i := range val {
		val[i] = siteSet{}
	}
	expand := func(dst siteSet, src siteSet) bool {
		grew := false
		for k := range src {
			if k >= 0 {
				if _, ok := dst[k]; !ok {
					dst[k] = struct{}{}
					grew = true
				}
				continue
			}
			for c := range val[-k-1] {
				if _, ok := dst[c]; !ok {
					dst[c] = struct{}{}
					grew = true
				}
			}
		}
		return grew
	}
	for changed := true; changed; {
		changed = false
		for _, s := range p.Stmts {
			switch s.Op {
			case ir.OpCall:
				for i, sites := range argSites[s.ID] {
					if sites == nil || i >= len(paramSym[s.Callee]) {
						continue
					}
					if expand(val[paramSym[s.Callee][i]], sites) {
						changed = true
					}
				}
			case ir.OpRet:
				if retSites[s.ID] != nil {
					if expand(val[retSym[s.Fn]], retSites[s.ID]) {
						changed = true
					}
				}
			}
		}
	}

	// Materialize per-use concrete def sets, sorted.
	for id, opSets := range rawUse {
		if opSets == nil {
			continue
		}
		rd.useDefs[id] = make([][]int, len(opSets))
		for k, sites := range opSets {
			if sites == nil {
				continue
			}
			concrete := siteSet{}
			expand(concrete, sites)
			ds := make([]int, 0, len(concrete))
			for c := range concrete {
				ds = append(ds, c)
			}
			sort.Ints(ds)
			rd.useDefs[id][k] = ds
		}
	}
	if len(rd.useDefs) != len(p.Stmts) {
		return nil, fmt.Errorf("sanalysis: def–use table covers %d of %d statements", len(rd.useDefs), len(p.Stmts))
	}
	return rd, nil
}
