package sanalysis

// Rule identifies one class of semantic-verification finding. The semantic
// level sits above the byte level (PR 2's CRC frame walk) and the structure
// level (core.Validate): it certifies that every dynamic fact the WET
// records is an instance of a static fact of its program.
type Rule string

const (
	// RuleCFAnchor: the first/last timestamp is not anchored correctly —
	// timestamp 1 must live on FirstNode, which must be an entry-function
	// path starting at block 0; timestamp Time must live on LastNode, whose
	// path must end at a halt.
	RuleCFAnchor Rule = "CF001"
	// RuleCFTransition: two consecutive timestamps are connected by an
	// intra-function transition that is not a path-terminating static CF
	// edge, or execution continues past a halt.
	RuleCFTransition Rule = "CF002"
	// RuleCFCallStack: a call/return transition violates stack discipline —
	// a call does not enter the callee's entry path, a return does not
	// resume the caller at the call's continuation block, or a return fires
	// with an empty call stack.
	RuleCFCallStack Rule = "CF003"
	// RuleCFPath: a node's Ball–Larus path id is not statically enumerable
	// (out of range, undecodable, or its stored block sequence disagrees
	// with the static decode).
	RuleCFPath Rule = "CF004"
	// RuleTSOrder: the per-node timestamp sequences do not merge into the
	// dense total order 1..Time.
	RuleTSOrder Rule = "TS001"
	// RuleCDStatic: a CD edge is not an instance of a static control
	// dependence (source not a branch, cross-function, or the destination
	// block is not in the source block's postdominance frontier).
	RuleCDStatic Rule = "CD001"
	// RuleCDOrder: a CD label pair is acausal — the branch execution does
	// not precede the dependent execution.
	RuleCDOrder Rule = "CD002"
	// RuleDDStatic: a DD edge's definition is not a static reaching
	// definition of the use operand.
	RuleDDStatic Rule = "DD001"
	// RuleDDOrder: a DD label pair is acausal — the definition does not
	// precede the use.
	RuleDDOrder Rule = "DD002"
	// RuleLocalEdge: an edge marked inferable (labels dropped) is not
	// certified by static sole-source facts: it must be node-local,
	// definition before use, fire on every execution, and admit no
	// intervening kill (DD) or closer CD-parent branch (CD) on the path.
	RuleLocalEdge Rule = "LE001"

	// RuleSrcMapRange: wetlint -source — iteration over an unordered map in
	// a serialization or report path, an output-determinism hazard.
	RuleSrcMapRange Rule = "SRC001"
	// RuleSrcWallClock: wetlint -source — time.Now in trace construction or
	// stream code, which must be a pure function of the program and inputs.
	RuleSrcWallClock Rule = "SRC002"
	// RuleSrcRandom: wetlint -source — math/rand in trace construction or
	// stream code.
	RuleSrcRandom Rule = "SRC003"
	// RuleSrcBareGo: wetlint -source — a bare `go` statement in trace
	// construction or stream code that is not routed through the bounded
	// worker pool. Unbounded spawns break the pipeline's memory bound and
	// its cancellation discipline; the worker-loop spawns of a bounded pool
	// carry a `wetlint:bounded` comment naming the bound.
	RuleSrcBareGo Rule = "SRC004"
)

// RuleDescriptions maps every rule id to its one-line meaning (rendered by
// wetlint -json and the DESIGN.md verification-levels table).
var RuleDescriptions = map[Rule]string{
	RuleCFAnchor:     "first/last timestamp not anchored at entry path / halting path",
	RuleCFTransition: "consecutive timestamps not connected by a path-terminating static CF edge",
	RuleCFCallStack:  "call/return transition violates call-stack discipline",
	RuleCFPath:       "node path id not statically enumerable or block sequence mismatch",
	RuleTSOrder:      "node timestamps do not merge into a dense total order 1..Time",
	RuleCDStatic:     "CD edge is not an instance of a static control dependence",
	RuleCDOrder:      "CD label pair is acausal",
	RuleDDStatic:     "DD edge definition is not a static reaching definition of the use",
	RuleDDOrder:      "DD label pair is acausal",
	RuleLocalEdge:    "inferable local edge contradicts static sole-source facts",
	RuleSrcMapRange:  "map iteration order leaks into serialization or report output",
	RuleSrcWallClock: "wall-clock read in deterministic trace/stream code",
	RuleSrcRandom:    "math/rand in deterministic trace/stream code",
	RuleSrcBareGo:    "bare go statement in kernel code not routed through the bounded pool",
}
