package sanalysis_test

import (
	"strings"
	"testing"

	"wet/internal/core"
)

// TestFreezeCertified exercises the option-gated build hook: freezing with
// certification must pass on a clean build and walk the tier-2 streams.
func TestFreezeCertified(t *testing.T) {
	w := buildRaw(t, "li", 3)
	if _, err := w.FreezeCertified(core.FreezeOptions{CheckpointK: 64}); err != nil {
		t.Fatalf("FreezeCertified: %v", err)
	}
	if !w.Frozen() {
		t.Fatal("WET not frozen after FreezeCertified")
	}
}

// TestCertifyReportsFindings corrupts a frozen WET and checks the certifier
// renders the rule id into its error.
func TestCertifyReportsFindings(t *testing.T) {
	w := buildRaw(t, "li", 3)
	w.Freeze(core.FreezeOptions{CheckpointK: 64})
	// Repoint a labeled CD edge's source ordinal stream is invasive; the
	// cheap corruption with the same effect at tier-1 is retargeting an
	// unfrozen copy — so corrupt the static side instead: verify against an
	// analysis for a different path numbering is not possible here, so flip
	// the first labeled edge's kind, which breaks the static instance check.
	for _, e := range w.Edges {
		if e.Kind == core.CD && !e.Inferable && e.SharedWith < 0 {
			e.Kind = core.DD
			e.OpIdx = 0
			break
		}
	}
	err := w.Certify()
	if err == nil {
		t.Fatal("certifier passed a corrupted WET")
	}
	if !strings.Contains(err.Error(), "DD0") {
		t.Fatalf("certifier error lacks a DD rule id: %v", err)
	}
}
