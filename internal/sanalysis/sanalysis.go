// Package sanalysis is the static semantic-analysis layer over internal/ir
// programs: dominators and post-dominators (shared pass in internal/ir),
// control dependence computed from the postdominance frontier, inter- and
// intraprocedural static reaching definitions (def–use chains with
// parameter/return flow resolved by a call-graph fixpoint), and static
// Ball–Larus path enumeration.
//
// Every dynamic fact a WET records must be an instance of a static fact of
// its program: each dynamic control dependence an instance of a
// Ferrante–Ottenstein static control dependence, each dynamic data
// dependence an instance of a static reaching definition, each consecutive
// timestamp pair a static control-flow edge, and each node a statically
// enumerable Ball–Larus path. VerifyWET (verify.go) certifies a WET against
// exactly these facts, walking the compressed representation through
// detached stream cursors without materializing any sequence.
package sanalysis

import (
	"fmt"
	"sort"

	"wet/internal/ballarus"
	"wet/internal/ir"
)

// FuncAnalysis holds the per-function static control facts.
type FuncAnalysis struct {
	F *ir.Func

	// Idom[b] is the immediate dominator of block b (entry's is itself).
	Idom []int
	// Ipdom has len(Blocks)+1 entries; index ir.ExitBlock(F) is the virtual
	// exit. Finalized programs guarantee every entry is defined (>= 0).
	Ipdom []int

	// CDParents[b] lists, sorted ascending, the branch blocks that block b
	// is control dependent on: exactly the postdominance frontier of b.
	CDParents [][]int
}

// IsControlDep reports whether block blk is control dependent on branch
// block branchBlk.
func (fa *FuncAnalysis) IsControlDep(branchBlk, blk int) bool {
	if blk < 0 || blk >= len(fa.CDParents) {
		return false
	}
	ps := fa.CDParents[blk]
	i := sort.SearchInts(ps, branchBlk)
	return i < len(ps) && ps[i] == branchBlk
}

// Analysis bundles the static facts of one program: per-function control
// analyses, Ball–Larus path numbering, and program-wide reaching
// definitions.
type Analysis struct {
	Prog  *ir.Program
	Funcs []*FuncAnalysis
	// Paths holds the Ball–Larus numbering the analysis enumerates paths
	// with. By default it is built here (standard numbering); AnalyzeWithPaths
	// accepts the profiles a WET was actually built with (e.g. the per-block
	// ablation) so verification matches the trace's own numbering.
	Paths []*ballarus.Profile

	rd *reachDefs
}

// Analyze computes the full static-analysis layer for a finalized program.
func Analyze(p *ir.Program) (*Analysis, error) {
	profiles := make([]*ballarus.Profile, len(p.Funcs))
	for i, f := range p.Funcs {
		pp, err := ballarus.New(f)
		if err != nil {
			return nil, err
		}
		profiles[i] = pp
	}
	return AnalyzeWithPaths(p, profiles)
}

// AnalyzeWithPaths is Analyze with caller-provided Ball–Larus profiles (one
// per function, in function order).
func AnalyzeWithPaths(p *ir.Program, paths []*ballarus.Profile) (*Analysis, error) {
	if len(p.Funcs) == 0 {
		return nil, fmt.Errorf("sanalysis: empty program")
	}
	if len(paths) != len(p.Funcs) {
		return nil, fmt.Errorf("sanalysis: %d path profiles for %d functions", len(paths), len(p.Funcs))
	}
	a := &Analysis{Prog: p, Paths: paths}
	for _, f := range p.Funcs {
		fa, err := analyzeFunc(f)
		if err != nil {
			return nil, err
		}
		a.Funcs = append(a.Funcs, fa)
	}
	rd, err := solveReachingDefs(p)
	if err != nil {
		return nil, err
	}
	a.rd = rd
	return a, nil
}

// analyzeFunc computes dominators, post-dominators, and the
// postdominance-frontier control dependence of one function.
func analyzeFunc(f *ir.Func) (*FuncAnalysis, error) {
	fa := &FuncAnalysis{
		F:     f,
		Idom:  ir.Dominators(f),
		Ipdom: ir.PostDominators(f),
	}
	for b, d := range fa.Idom {
		if d < 0 {
			return nil, fmt.Errorf("sanalysis: %s block %d unreachable from entry", f.Name, b)
		}
	}
	for b := 0; b < len(f.Blocks); b++ {
		if fa.Ipdom[b] < 0 {
			return nil, fmt.Errorf("sanalysis: %s block %d cannot reach exit", f.Name, b)
		}
	}

	// Postdominance frontier via the Cytron run-up, on the reverse graph:
	// for every branch edge u->v, every block on the post-dominator tree
	// path from v up to (excluding) ipdom(u) has u in its frontier — i.e.
	// is control dependent on u.
	n := len(f.Blocks)
	sets := make([]map[int]bool, n)
	for _, b := range f.Blocks {
		if len(b.Succs) < 2 {
			continue
		}
		u := b.ID
		stop := fa.Ipdom[u]
		for _, v := range b.Succs {
			for w := v; w != stop; w = fa.Ipdom[w] {
				if w == ir.ExitBlock(f) {
					return nil, fmt.Errorf("sanalysis: %s: frontier walk from %d->%d escaped to exit", f.Name, u, v)
				}
				if sets[w] == nil {
					sets[w] = map[int]bool{}
				}
				sets[w][u] = true
				if fa.Ipdom[w] == w {
					break
				}
			}
		}
	}
	fa.CDParents = make([][]int, n)
	for b, s := range sets {
		for u := range s {
			fa.CDParents[b] = append(fa.CDParents[b], u)
		}
		sort.Ints(fa.CDParents[b])
	}
	return fa, nil
}

// IsControlDep reports whether, within function fn, block blk is control
// dependent on branch block branchBlk.
func (a *Analysis) IsControlDep(fn, branchBlk, blk int) bool {
	if fn < 0 || fn >= len(a.Funcs) {
		return false
	}
	return a.Funcs[fn].IsControlDep(branchBlk, blk)
}

// NumPaths returns the static Ball–Larus path count of function fn.
func (a *Analysis) NumPaths(fn int) int64 { return a.Paths[fn].NumPaths }

// PathBlocks enumerates the block sequence of one static Ball–Larus path.
func (a *Analysis) PathBlocks(fn int, pathID int64) ([]int, error) {
	return a.Paths[fn].Blocks(pathID)
}

// IsPathTerminatingEdge reports whether CFG edge (u, succIdx) of function fn
// ends a Ball–Larus path (a removed back edge or call-continuation edge):
// the only intra-function edges a node-level control-flow transition may
// take between two path executions of one frame.
func (a *Analysis) IsPathTerminatingEdge(fn, u, succIdx int) bool {
	es := a.Paths[fn].Edges[u]
	return succIdx >= 0 && succIdx < len(es) && es[succIdx].Removed
}
