package sanalysis_test

import (
	"fmt"
	"hash/fnv"
	"testing"

	"wet/internal/core"
	. "wet/internal/sanalysis"
	"wet/internal/workload"
)

// cdDigest canonically serializes the control-dependence relation (every
// block's sorted CD-parent list, in function and block order) and returns
// its FNV-1a digest plus the number of (block, parent) facts.
func cdDigest(a *Analysis) (uint64, int) {
	h := fnv.New64a()
	facts := 0
	for fi, fa := range a.Funcs {
		for b, ps := range fa.CDParents {
			for _, p := range ps {
				fmt.Fprintf(h, "%d:%d<-%d;", fi, b, p)
				facts++
			}
		}
	}
	return h.Sum64(), facts
}

// rdDigest canonically serializes the def–use relation (every statement's
// per-operand sorted reaching-definition list; the memory operand rendered
// as "mem") and returns its FNV-1a digest plus the number of def–use pairs.
func rdDigest(a *Analysis) (uint64, int) {
	h := fnv.New64a()
	pairs := 0
	for id := range a.Prog.Stmts {
		for op := 0; op < a.NumDepOperands(id); op++ {
			defs, mem := a.ReachingDefs(id, op)
			if mem {
				fmt.Fprintf(h, "%d.%d<-mem;", id, op)
				pairs++
				continue
			}
			for _, d := range defs {
				fmt.Fprintf(h, "%d.%d<-%d;", id, op, d)
				pairs++
			}
		}
	}
	return h.Sum64(), pairs
}

// golden pins the static-analysis results for three workload programs: any
// change to the IR builders, the CFG analyses, or the reaching-definition
// solver shows up as a digest mismatch here and must be reviewed.
var golden = map[string]struct {
	cdDigest uint64
	cdFacts  int
	rdDigest uint64
	rdPairs  int
}{
	"li":   {0x486f5ea0b7dcefff, 29, 0xa6b050536f9e89ca, 159},
	"gzip": {0xd945265aa980a0f, 25, 0xc0a9a8789996a1ed, 128},
	"mcf":  {0x6ba9f9295ce5b235, 17, 0x1ab50cfc716342b2, 118},
}

func TestGoldenStaticTables(t *testing.T) {
	for name, want := range golden {
		wl, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := wl.Build(1)
		a, err := Analyze(p)
		if err != nil {
			t.Fatalf("%s: Analyze: %v", name, err)
		}
		cdD, cdN := cdDigest(a)
		rdD, rdN := rdDigest(a)
		if cdD != want.cdDigest || cdN != want.cdFacts {
			t.Errorf("%s: control dependence digest %#x (%d facts), golden %#x (%d facts)", name, cdD, cdN, want.cdDigest, want.cdFacts)
		}
		if rdD != want.rdDigest || rdN != want.rdPairs {
			t.Errorf("%s: reaching-def digest %#x (%d pairs), golden %#x (%d pairs)", name, rdD, rdN, want.rdDigest, want.rdPairs)
		}
	}
}

// TestDynamicWithinStatic cross-checks the dynamic dependence edges of real
// runs against the static tables: every dynamic CD/DD edge must instantiate
// a static fact (dynamic ⊆ static), and the runs must exercise a non-zero
// fraction of the static facts (the static tables are not vacuously large).
func TestDynamicWithinStatic(t *testing.T) {
	for _, name := range []string{"li", "gzip", "mcf"} {
		w := buildRaw(t, name, 1)
		a, err := AnalyzeWithPaths(w.Prog, w.Static.Paths)
		if err != nil {
			t.Fatal(err)
		}
		cdSeen := map[[2]int]bool{} // (branch stmt, dst stmt)
		ddSeen := map[[3]int]bool{} // (def stmt, use stmt, operand)
		for _, e := range w.Edges {
			src := w.Nodes[e.SrcNode].Stmts[e.SrcPos]
			dst := w.Nodes[e.DstNode].Stmts[e.DstPos]
			switch e.Kind {
			case core.CD:
				if src.Fn != dst.Fn || !a.IsControlDep(src.Fn, src.Blk, dst.Blk) {
					t.Fatalf("%s: dynamic CD edge [%d]%s -> [%d]%s has no static counterpart", name, src.ID, src, dst.ID, dst)
				}
				cdSeen[[2]int{src.ID, dst.ID}] = true
			case core.DD:
				if !a.IsReachingDef(src.ID, dst.ID, e.OpIdx) {
					t.Fatalf("%s: dynamic DD edge [%d]%s -> [%d]%s op %d has no static counterpart", name, src.ID, src, dst.ID, dst, e.OpIdx)
				}
				ddSeen[[3]int{src.ID, dst.ID, e.OpIdx}] = true
			}
		}
		_, cdFacts := cdDigest(a)
		_, rdPairs := rdDigest(a)
		if len(cdSeen) == 0 || len(ddSeen) == 0 {
			t.Fatalf("%s: run exercised no dependences (cd=%d dd=%d)", name, len(cdSeen), len(ddSeen))
		}
		t.Logf("%s: dynamic CD pairs %d over %d static block facts; dynamic DD triples %d over %d static def–use pairs",
			name, len(cdSeen), cdFacts, len(ddSeen), rdPairs)
	}
}
