package sanalysis

import (
	"fmt"
	"strings"

	"wet/internal/core"
)

// init installs VerifyWET as core's semantic certifier, giving
// core.FreezeCertified / (*core.WET).Certify their implementation without a
// core -> sanalysis import cycle.
func init() {
	core.RegisterCertifier(Certify)
}

// Certify verifies the WET semantically and renders any findings as one
// error. Frozen WETs are certified through their tier-2 streams (always
// present after Freeze, even with DropTier1); unfrozen ones through the
// tier-1 slices.
func Certify(w *core.WET) error {
	tier := core.Tier1
	if w.Frozen() {
		tier = core.Tier2
	}
	rep, err := VerifyWET(w, VerifyOptions{Tier: tier, MaxFindings: 8})
	if err != nil {
		return err
	}
	if rep.OK() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d semantic findings", len(rep.Findings))
	if rep.Truncated {
		b.WriteString(" (truncated)")
	}
	for _, f := range rep.Findings {
		b.WriteString("; ")
		b.WriteString(f.String())
	}
	return fmt.Errorf("sanalysis: %s", b.String())
}
