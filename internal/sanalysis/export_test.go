package sanalysis

// DefinesReg exposes the local-edge def test to the external test package.
var DefinesReg = definesReg
