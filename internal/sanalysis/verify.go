package sanalysis

import (
	"container/heap"
	"fmt"

	"wet/internal/core"
	"wet/internal/ir"
)

// Finding is one semantic-verification violation.
type Finding struct {
	Rule Rule   `json:"rule"`
	Msg  string `json:"msg"`
	Node int    `json:"node,omitempty"` // node id, or -1
	Edge int    `json:"edge,omitempty"` // edge index, or -1
	TS   uint32 `json:"ts,omitempty"`   // global timestamp, or 0
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s", f.Rule, f.Msg)
	if f.Node >= 0 {
		s += fmt.Sprintf(" [node %d]", f.Node)
	}
	if f.Edge >= 0 {
		s += fmt.Sprintf(" [edge %d]", f.Edge)
	}
	return s
}

// Report is the result of one VerifyWET run.
type Report struct {
	Findings []Finding `json:"findings"`

	// Coverage counters: how much of the trace the pass certified.
	Nodes       int  `json:"nodes"`
	Edges       int  `json:"edges"`
	Labels      int  `json:"labels"`      // label pairs causality-checked
	Transitions int  `json:"transitions"` // consecutive-timestamp CF checks
	Truncated   bool `json:"truncated,omitempty"`

	// Skipped names the reason semantic verification did not run (set for
	// concurrent traces, whose interleaved control flow the sequential
	// replay rules do not describe). A skipped report has no findings, so
	// OK() holds; callers that print coverage should surface the reason.
	Skipped string `json:"skipped,omitempty"`
}

// OK reports whether the WET passed semantic verification.
func (r *Report) OK() bool { return len(r.Findings) == 0 }

// VerifyOptions configures VerifyWET.
type VerifyOptions struct {
	// Tier selects which representation the verifier walks: Tier1 slice
	// cursors or Tier2 compressed stream cursors. Zero means Tier1.
	Tier core.Tier
	// MaxFindings stops the pass once this many findings accumulate
	// (0 = 256). The report is marked Truncated when the cap is hit.
	MaxFindings int
	// Analysis supplies precomputed static facts; when nil VerifyWET builds
	// them from the WET's own path numbering (w.Static.Paths), so the
	// verification always matches the numbering the trace was built with.
	Analysis *Analysis
}

// verifier carries the walk state of one VerifyWET run.
type verifier struct {
	w    *core.WET
	a    *Analysis
	tier core.Tier
	max  int
	rep  *Report

	// tsAt caches one checkpointed cursor per node for ordinal->timestamp
	// lookups; the merge uses separate fresh cursors.
	tsAt map[int]core.Seq

	// Static path facts per node (from the Ball–Larus decode).
	startBlk, endBlk []int
	endOp            []ir.Op
	pathOK           []bool
}

// VerifyWET certifies a WET against the static semantics of its program:
// every CD edge an instance of a static control dependence with causally
// ordered timestamps, every DD edge's definition a static reaching
// definition of its use, the merged node-timestamp total order taking only
// path-terminating static CF edges and stack-disciplined calls/returns
// through statically enumerable Ball–Larus paths, and every inferable local
// edge certified by static sole-source facts.
//
// The walk touches the trace exclusively through detached sequence cursors
// (TSSeq / EdgeLabels / core.SeqAt) — no label sequence is materialized —
// so at Tier2 it runs directly over the compressed streams; the caller can
// assert that with stream.ReadSeekStats.
func VerifyWET(w *core.WET, opts VerifyOptions) (*Report, error) {
	if opts.Tier == 0 {
		opts.Tier = core.Tier1
	}
	if opts.Tier == core.Tier2 && !w.Frozen() {
		return nil, fmt.Errorf("sanalysis: tier-2 verification requires a frozen WET")
	}
	if w.Conc != nil {
		// A concurrent trace interleaves per-thread control flow in the
		// global timestamp order, so the sequential replay rules (stack
		// discipline, path-terminating CF edges between consecutive
		// timestamps, single-flow reaching definitions) do not apply;
		// running them would report false findings, not verify anything.
		// The concurrency streams have their own structural validator
		// (core.Validate) and semantic consumer (racecheck).
		return &Report{Skipped: "concurrent trace: sequential control-flow replay does not apply"}, nil
	}
	a := opts.Analysis
	if a == nil {
		var err error
		a, err = AnalyzeWithPaths(w.Prog, w.Static.Paths)
		if err != nil {
			return nil, err
		}
	}
	max := opts.MaxFindings
	if max <= 0 {
		max = 256
	}
	v := &verifier{
		w: w, a: a, tier: opts.Tier, max: max,
		rep:  &Report{},
		tsAt: make(map[int]core.Seq, len(w.Nodes)),
	}
	v.decodePaths()
	v.walkOrder()
	v.checkEdges()
	return v.rep, nil
}

func (v *verifier) add(f Finding) bool {
	if len(v.rep.Findings) >= v.max {
		v.rep.Truncated = true
		return false
	}
	v.rep.Findings = append(v.rep.Findings, f)
	return true
}

func (v *verifier) full() bool { return len(v.rep.Findings) >= v.max }

// ts returns the global timestamp of the ord-th execution of node id,
// through the node's cached checkpointed cursor.
func (v *verifier) ts(id int, ord int) uint32 {
	s, ok := v.tsAt[id]
	if !ok {
		s = v.w.TSSeq(v.w.Nodes[id], v.tier)
		v.tsAt[id] = s
	}
	return core.SeqAt(s, ord)
}

// decodePaths certifies every node's path id against the static Ball–Larus
// enumeration (CF004) and records start/end block facts for the CF walk.
func (v *verifier) decodePaths() {
	n := len(v.w.Nodes)
	v.startBlk = make([]int, n)
	v.endBlk = make([]int, n)
	v.endOp = make([]ir.Op, n)
	v.pathOK = make([]bool, n)
	for i, nd := range v.w.Nodes {
		v.rep.Nodes++
		blocks := nd.Blocks
		ok := true
		if nd.Fn < 0 || nd.Fn >= len(v.a.Funcs) {
			v.add(Finding{Rule: RuleCFPath, Node: nd.ID, Edge: -1,
				Msg: fmt.Sprintf("node function index %d out of range", nd.Fn)})
			ok = false
		} else if nd.PathID < 0 || nd.PathID >= v.a.NumPaths(nd.Fn) {
			v.add(Finding{Rule: RuleCFPath, Node: nd.ID, Edge: -1,
				Msg: fmt.Sprintf("path id %d outside the %d static paths of %s", nd.PathID, v.a.NumPaths(nd.Fn), v.fnName(nd.Fn))})
			ok = false
		} else if dec, err := v.a.PathBlocks(nd.Fn, nd.PathID); err != nil {
			v.add(Finding{Rule: RuleCFPath, Node: nd.ID, Edge: -1,
				Msg: fmt.Sprintf("path id %d of %s does not decode: %v", nd.PathID, v.fnName(nd.Fn), err)})
			ok = false
		} else if !intsEqual(dec, blocks) {
			v.add(Finding{Rule: RuleCFPath, Node: nd.ID, Edge: -1,
				Msg: fmt.Sprintf("stored blocks %v disagree with static decode %v of path %d", blocks, dec, nd.PathID)})
			blocks = dec // trust the static decode for the CF walk
		}
		if len(blocks) == 0 {
			ok = false
		}
		v.pathOK[i] = ok
		if ok {
			v.startBlk[i] = blocks[0]
			v.endBlk[i] = blocks[len(blocks)-1]
			v.endOp[i] = v.a.Prog.Funcs[nd.Fn].Blocks[v.endBlk[i]].Term().Op
		}
	}
}

func (v *verifier) fnName(fn int) string {
	if fn >= 0 && fn < len(v.a.Prog.Funcs) {
		return v.a.Prog.Funcs[fn].Name
	}
	return fmt.Sprintf("fn#%d", fn)
}

// tsHeap merges the per-node timestamp cursors into the global order.
type tsEntry struct {
	ts   uint32
	node int
	seq  core.Seq
}
type tsHeap []tsEntry

func (h tsHeap) Len() int            { return len(h) }
func (h tsHeap) Less(i, j int) bool  { return h[i].ts < h[j].ts }
func (h tsHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *tsHeap) Push(x interface{}) { *h = append(*h, x.(tsEntry)) }
func (h *tsHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// walkOrder replays the node-level control flow by k-way merging every
// node's timestamp sequence (fresh detached cursors) and checks that each
// consecutive pair of executions is connected by a statically possible
// transition, with call/return stack discipline.
func (v *verifier) walkOrder() {
	h := &tsHeap{}
	for _, nd := range v.w.Nodes {
		if nd.Execs == 0 {
			continue
		}
		s := v.w.TSSeq(nd, v.tier)
		*h = append(*h, tsEntry{ts: s.Next(), node: nd.ID, seq: s})
	}
	heap.Init(h)

	var stack []cfFrame
	prev := -1
	var expect uint32 = 1
	for h.Len() > 0 && !v.full() {
		e := heap.Pop(h).(tsEntry)
		if e.seq.Pos() < e.seq.Len() {
			heap.Push(h, tsEntry{ts: e.seq.Next(), node: e.node, seq: e.seq})
		}
		if e.ts != expect {
			if !v.add(Finding{Rule: RuleTSOrder, Node: e.node, Edge: -1, TS: e.ts,
				Msg: fmt.Sprintf("timestamp %d out of order: expected %d", e.ts, expect)}) {
				return
			}
			expect = e.ts // resynchronize on the observed clock
		}
		expect++
		cur := e.node

		if prev < 0 {
			// Anchor: timestamp 1 is the entry function's entry path.
			nd := v.w.Nodes[cur]
			if cur != v.w.FirstNode {
				v.add(Finding{Rule: RuleCFAnchor, Node: cur, Edge: -1, TS: e.ts,
					Msg: fmt.Sprintf("timestamp 1 lives on node %d, header says FirstNode %d", cur, v.w.FirstNode)})
			}
			if v.pathOK[cur] && (nd.Fn != v.a.Prog.Entry || v.startBlk[cur] != 0) {
				v.add(Finding{Rule: RuleCFAnchor, Node: cur, Edge: -1, TS: e.ts,
					Msg: fmt.Sprintf("first path starts at %s block %d, want entry %s block 0", v.fnName(nd.Fn), v.startBlk[cur], v.fnName(v.a.Prog.Entry))})
			}
			prev = cur
			continue
		}
		v.checkTransition(prev, cur, e.ts, &stack)
		prev = cur
	}
	if v.full() {
		return
	}
	if expect != v.w.Time+1 {
		v.add(Finding{Rule: RuleTSOrder, Node: -1, Edge: -1,
			Msg: fmt.Sprintf("merged %d timestamps, header says Time=%d", expect-1, v.w.Time)})
	}
	if prev >= 0 {
		if prev != v.w.LastNode {
			v.add(Finding{Rule: RuleCFAnchor, Node: prev, Edge: -1, TS: v.w.Time,
				Msg: fmt.Sprintf("final timestamp lives on node %d, header says LastNode %d", prev, v.w.LastNode)})
		}
		if v.pathOK[prev] && v.endOp[prev] != ir.OpHalt {
			v.add(Finding{Rule: RuleCFAnchor, Node: prev, Edge: -1, TS: v.w.Time,
				Msg: fmt.Sprintf("final path ends with %s, want halt", v.endOp[prev])})
		}
	}
}

// cfFrame is one call-stack entry of the node-level control-flow replay.
type cfFrame struct{ fn, callBlk int }

// checkTransition validates one consecutive-timestamp step prev -> cur.
func (v *verifier) checkTransition(prev, cur int, ts uint32, stack *[]cfFrame) {
	v.rep.Transitions++
	if !v.pathOK[prev] || !v.pathOK[cur] {
		return // already reported as CF004; no reliable facts to check against
	}
	pn, cn := v.w.Nodes[prev], v.w.Nodes[cur]
	u := v.endBlk[prev]
	switch v.endOp[prev] {
	case ir.OpJmp, ir.OpBr:
		// Intra-frame: the transition must take a path-terminating edge
		// u -> startBlk(cur) of the same function.
		if cn.Fn != pn.Fn {
			v.add(Finding{Rule: RuleCFTransition, Node: cur, Edge: -1, TS: ts,
				Msg: fmt.Sprintf("t=%d crosses from %s into %s without a call or return", ts, v.fnName(pn.Fn), v.fnName(cn.Fn))})
			return
		}
		succs := v.a.Prog.Funcs[pn.Fn].Blocks[u].Succs
		legal := false
		for i, s := range succs {
			if s == v.startBlk[cur] && v.a.IsPathTerminatingEdge(pn.Fn, u, i) {
				legal = true
				break
			}
		}
		if !legal {
			v.add(Finding{Rule: RuleCFTransition, Node: cur, Edge: -1, TS: ts,
				Msg: fmt.Sprintf("t=%d: %s block %d -> block %d is not a path-terminating static CF edge", ts, v.fnName(pn.Fn), u, v.startBlk[cur])})
		}
	case ir.OpCall:
		call := v.a.Prog.Funcs[pn.Fn].Blocks[u].Term()
		if cn.Fn != call.Callee || v.startBlk[cur] != 0 {
			v.add(Finding{Rule: RuleCFCallStack, Node: cur, Edge: -1, TS: ts,
				Msg: fmt.Sprintf("t=%d: call to %s enters %s block %d, want its entry block", ts, v.fnName(call.Callee), v.fnName(cn.Fn), v.startBlk[cur])})
		}
		*stack = append(*stack, cfFrame{pn.Fn, u})
	case ir.OpRet:
		if len(*stack) == 0 {
			v.add(Finding{Rule: RuleCFCallStack, Node: cur, Edge: -1, TS: ts,
				Msg: fmt.Sprintf("t=%d: return from %s with an empty call stack", ts, v.fnName(pn.Fn))})
			return
		}
		fr := (*stack)[len(*stack)-1]
		*stack = (*stack)[:len(*stack)-1]
		cont := v.a.Prog.Funcs[fr.fn].Blocks[fr.callBlk].Succs[0]
		if cn.Fn != fr.fn || v.startBlk[cur] != cont {
			v.add(Finding{Rule: RuleCFCallStack, Node: cur, Edge: -1, TS: ts,
				Msg: fmt.Sprintf("t=%d: return resumes %s block %d, want caller %s block %d", ts, v.fnName(cn.Fn), v.startBlk[cur], v.fnName(fr.fn), cont)})
		}
	case ir.OpHalt:
		v.add(Finding{Rule: RuleCFTransition, Node: cur, Edge: -1, TS: ts,
			Msg: fmt.Sprintf("t=%d executes after node %d halted", ts, prev)})
	}
}

// checkEdges certifies every dependence edge against the static facts.
func (v *verifier) checkEdges() {
	for i, e := range v.w.Edges {
		if v.full() {
			return
		}
		v.rep.Edges++
		v.checkEdge(i, e)
	}
}

func (v *verifier) checkEdge(idx int, e *core.Edge) {
	sn, dn := v.w.Nodes[e.SrcNode], v.w.Nodes[e.DstNode]
	if e.SrcPos < 0 || e.SrcPos >= len(sn.Stmts) || e.DstPos < 0 || e.DstPos >= len(dn.Stmts) {
		return // structural validation territory
	}
	src, dst := sn.Stmts[e.SrcPos], dn.Stmts[e.DstPos]

	// (a)/(b): the edge must be an instance of a static dependence.
	order := RuleDDOrder
	switch e.Kind {
	case core.CD:
		order = RuleCDOrder
		switch {
		case src.Op != ir.OpBr:
			v.add(Finding{Rule: RuleCDStatic, Node: e.DstNode, Edge: idx,
				Msg: fmt.Sprintf("CD source [%d]%s is not a branch", src.ID, src)})
		case src.Fn != dst.Fn:
			v.add(Finding{Rule: RuleCDStatic, Node: e.DstNode, Edge: idx,
				Msg: fmt.Sprintf("CD edge crosses from %s into %s; control dependence is intra-function", v.fnName(src.Fn), v.fnName(dst.Fn))})
		case !v.a.IsControlDep(src.Fn, src.Blk, dst.Blk):
			v.add(Finding{Rule: RuleCDStatic, Node: e.DstNode, Edge: idx,
				Msg: fmt.Sprintf("%s block %d is not control dependent on branch block %d", v.fnName(dst.Fn), dst.Blk, src.Blk)})
		}
	case core.DD:
		if e.OpIdx < 0 || e.OpIdx >= v.a.NumDepOperands(dst.ID) {
			v.add(Finding{Rule: RuleDDStatic, Node: e.DstNode, Edge: idx,
				Msg: fmt.Sprintf("operand index %d out of range for [%d]%s", e.OpIdx, dst.ID, dst)})
		} else if !v.a.IsReachingDef(src.ID, dst.ID, e.OpIdx) {
			v.add(Finding{Rule: RuleDDStatic, Node: e.DstNode, Edge: idx,
				Msg: fmt.Sprintf("[%d]%s is not a static reaching definition of operand %d of [%d]%s", src.ID, src, e.OpIdx, dst.ID, dst)})
		}
	}

	// (d): inferable edges carry no labels; certify them from static
	// sole-source facts instead.
	if e.Inferable {
		v.checkInferable(idx, e, src, dst)
		return
	}

	// (a)/(b) ordering: walk the label pairs through detached cursors and
	// check causality of every instance.
	dstSeq, srcSeq := v.w.EdgeLabels(e, v.tier)
	if dstSeq == nil || srcSeq == nil {
		return
	}
	n := dstSeq.Len()
	if srcSeq.Len() < n {
		n = srcSeq.Len()
	}
	for k := 0; k < n; k++ {
		if v.full() {
			return
		}
		dOrd, sOrd := int(dstSeq.Next()), int(srcSeq.Next())
		v.rep.Labels++
		if dOrd >= dn.Execs || sOrd >= sn.Execs {
			v.add(Finding{Rule: order, Node: e.DstNode, Edge: idx,
				Msg: fmt.Sprintf("label %d ordinal <%d,%d> outside execution counts (%d,%d)", k, dOrd, sOrd, dn.Execs, sn.Execs)})
			continue
		}
		// Same node, same execution: position order decides causality.
		if e.SrcNode == e.DstNode && sOrd == dOrd {
			if e.SrcPos >= e.DstPos {
				v.add(Finding{Rule: order, Node: e.DstNode, Edge: idx,
					Msg: fmt.Sprintf("label %d: local pair <%d,%d> with source position %d not before %d", k, dOrd, sOrd, e.SrcPos, e.DstPos)})
			}
			continue
		}
		tsSrc, tsDst := v.ts(e.SrcNode, sOrd), v.ts(e.DstNode, dOrd)
		if tsSrc >= tsDst {
			v.add(Finding{Rule: order, Node: e.DstNode, Edge: idx, TS: tsDst,
				Msg: fmt.Sprintf("label %d: source t=%d does not precede destination t=%d", k, tsSrc, tsDst)})
		}
	}
}

// checkInferable certifies a labels-dropped local edge: it is sound exactly
// when the node itself implies every <k,k> pair — same node, source
// statically before destination on the path, firing on every execution, and
// no intervening kill (DD) or closer CD-parent branch (CD) between them.
func (v *verifier) checkInferable(idx int, e *core.Edge, src, dst *ir.Stmt) {
	nd := v.w.Nodes[e.DstNode]
	bad := func(msg string) { v.add(Finding{Rule: RuleLocalEdge, Node: e.DstNode, Edge: idx, Msg: msg}) }
	if e.SrcNode != e.DstNode {
		bad(fmt.Sprintf("inferable edge spans nodes %d -> %d; inference is node-local", e.SrcNode, e.DstNode))
		return
	}
	if e.SrcPos >= e.DstPos {
		bad(fmt.Sprintf("inferable edge source position %d not before destination %d", e.SrcPos, e.DstPos))
		return
	}
	if e.Count != nd.Execs {
		bad(fmt.Sprintf("inferable edge fired %d of %d executions; labels are only implied when it fires on all", e.Count, nd.Execs))
	}
	switch e.Kind {
	case core.CD:
		// The branch must be the closest CD parent on the path: a later
		// CD-parent branch before the destination would take over.
		for p := e.SrcPos + 1; p < e.DstPos; p++ {
			s := nd.Stmts[p]
			if s.Op == ir.OpBr && v.a.IsControlDep(dst.Fn, s.Blk, dst.Blk) {
				bad(fmt.Sprintf("branch [%d]%s between source and destination is a closer CD parent", s.ID, s))
				return
			}
		}
	case core.DD:
		memIdx := v.a.MemOperandIndex(dst.ID)
		if e.OpIdx == memIdx && memIdx >= 0 {
			if src.Op != ir.OpStore {
				bad(fmt.Sprintf("memory operand sourced from [%d]%s, want a store", src.ID, src))
			}
			return // intervening stores may alias elsewhere; not refutable statically
		}
		var uses []ir.Reg
		uses = dst.Uses(uses)
		if e.OpIdx < 0 || e.OpIdx >= len(uses) {
			return // reported by the static check above
		}
		r := uses[e.OpIdx]
		if !definesReg(src, r) {
			bad(fmt.Sprintf("[%d]%s does not define r%d used by operand %d", src.ID, src, r, e.OpIdx))
			return
		}
		for p := e.SrcPos + 1; p < e.DstPos; p++ {
			if definesReg(nd.Stmts[p], r) {
				bad(fmt.Sprintf("[%d]%s kills r%d between source and destination", nd.Stmts[p].ID, nd.Stmts[p], r))
				return
			}
		}
	}
}

// definesReg reports whether s writes register r (including call return
// destinations, which the simulator retargets at return time).
func definesReg(s *ir.Stmt, r ir.Reg) bool {
	if s.Dest != r {
		return false
	}
	return s.Op.HasDef() || s.Op == ir.OpCall
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
