package cfg

import (
	"strings"
	"testing"

	"wet/internal/ir"
)

// diamond builds: b0: br -> b1/b2; b1,b2 -> b3; b3: halt.
func diamond(t *testing.T) *ir.Func {
	t.Helper()
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	c := fb.ConstReg(1)
	x := fb.NewReg()
	fb.If(ir.R(c), func() { fb.Const(x, 1) }, func() { fb.Const(x, 2) })
	fb.Output(ir.R(x))
	fb.Halt()
	p.MustFinalize()
	return p.Funcs[0]
}

func loopFunc(t *testing.T) *ir.Func {
	t.Helper()
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	x := fb.ConstReg(5)
	c := fb.NewReg()
	fb.While(func() ir.Operand {
		fb.Gt(c, ir.R(x), ir.Imm(0))
		return ir.R(c)
	}, func() {
		fb.Sub(x, ir.R(x), ir.Imm(1))
	})
	fb.Halt()
	p.MustFinalize()
	return p.Funcs[0]
}

func TestDominatorsDiamond(t *testing.T) {
	f := diamond(t)
	g := FromFunc(f)
	idom := Dominators(g)
	// Entry dominates everything; the join's idom is the entry (block 0).
	join := f.Blocks[f.Blocks[0].Succs[0]].Succs[0]
	if idom[join] != 0 {
		t.Fatalf("idom(join=%d) = %d, want 0", join, idom[join])
	}
	for _, s := range f.Blocks[0].Succs {
		if idom[s] != 0 {
			t.Fatalf("idom(arm %d) = %d, want 0", s, idom[s])
		}
	}
	if idom[0] != 0 {
		t.Fatalf("idom(entry) = %d, want itself", idom[0])
	}
}

func TestPostDominatorsDiamond(t *testing.T) {
	f := diamond(t)
	ipdom := PostDominators(f)
	join := f.Blocks[f.Blocks[0].Succs[0]].Succs[0]
	// Both arms and the entry are post-dominated by the join.
	if ipdom[0] != join {
		t.Fatalf("ipdom(entry) = %d, want join %d", ipdom[0], join)
	}
	for _, s := range f.Blocks[0].Succs {
		if ipdom[s] != join {
			t.Fatalf("ipdom(arm %d) = %d, want join %d", s, ipdom[s], join)
		}
	}
}

func TestControlDependenceDiamond(t *testing.T) {
	f := diamond(t)
	cd, err := ControlDependence(f)
	if err != nil {
		t.Fatalf("ControlDependence: %v", err)
	}
	thenB, elseB := f.Blocks[0].Succs[0], f.Blocks[0].Succs[1]
	join := f.Blocks[thenB].Succs[0]
	for _, arm := range []int{thenB, elseB} {
		if len(cd.Parents[arm]) != 1 || cd.Parents[arm][0] != 0 {
			t.Fatalf("CD parents of arm %d = %v, want [0]", arm, cd.Parents[arm])
		}
	}
	if len(cd.Parents[join]) != 0 {
		t.Fatalf("join %d should not be control dependent, got %v", join, cd.Parents[join])
	}
	if len(cd.Parents[0]) != 0 {
		t.Fatalf("entry should not be control dependent, got %v", cd.Parents[0])
	}
}

func TestControlDependenceLoop(t *testing.T) {
	f := loopFunc(t)
	cd, err := ControlDependence(f)
	if err != nil {
		t.Fatalf("ControlDependence: %v", err)
	}
	// Find the loop head (branch block) and body (block jumping back to head).
	var head, body = -1, -1
	for _, b := range f.Blocks {
		if b.Term().Op == ir.OpBr {
			head = b.ID
		}
	}
	for _, b := range f.Blocks {
		if b.Term().Op == ir.OpJmp && b.Succs[0] == head && b.ID > head {
			body = b.ID
		}
	}
	if head < 0 || body < 0 {
		t.Fatalf("could not locate loop head/body: head=%d body=%d\n%s", head, body, f)
	}
	// The body is control dependent on the head; the head is control
	// dependent on itself (executing it again depends on its own outcome).
	want := func(node int) {
		found := false
		for _, par := range cd.Parents[node] {
			if par == head {
				found = true
			}
		}
		if !found {
			t.Fatalf("block %d CD parents = %v, want to include head %d", node, cd.Parents[node], head)
		}
	}
	want(body)
	want(head)
}

func TestNestedLoopControlDependence(t *testing.T) {
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	s := fb.ConstReg(0)
	fb.For(ir.Imm(0), ir.Imm(3), ir.Imm(1), func(i ir.Reg) {
		fb.For(ir.Imm(0), ir.Imm(3), ir.Imm(1), func(j ir.Reg) {
			fb.Add(s, ir.R(s), ir.R(j))
		})
	})
	fb.Halt()
	p.MustFinalize()
	f := p.Funcs[0]
	cd, err := ControlDependence(f)
	if err != nil {
		t.Fatalf("ControlDependence: %v", err)
	}
	// The innermost add block must be (transitively) governed by two branch
	// blocks; directly by exactly the inner loop head.
	branches := 0
	for _, b := range f.Blocks {
		if len(b.Succs) == 2 {
			branches++
		}
	}
	if branches != 2 {
		t.Fatalf("program has %d branch blocks, want 2", branches)
	}
	// Every loop body block depends on some branch.
	dep := 0
	for _, b := range f.Blocks {
		if len(cd.Parents[b.ID]) > 0 {
			dep++
		}
	}
	if dep == 0 {
		t.Fatal("no block is control dependent on anything")
	}
}

func TestInfiniteLoopRejected(t *testing.T) {
	// Hand-build: b0: jmp b0 — cannot reach exit. Finalize now rejects such
	// CFGs outright (ir.validateFlow), so control dependence never sees a
	// block with undefined post-dominators.
	p := ir.NewProgram(1024)
	fb := p.NewFunc("spin", 0)
	fb.Func().Blocks[0].Stmts = []*ir.Stmt{{Op: ir.OpJmp, Dest: ir.NoReg}}
	fb.Func().Blocks[0].Succs = []int{0}
	fb2 := p.NewFunc("main", 0)
	fb2.Halt()
	p.Entry = 1
	err := p.Finalize()
	if err == nil {
		t.Fatal("Finalize accepted a function that cannot reach exit")
	}
	if !strings.Contains(err.Error(), "no path to a ret/halt exit") {
		t.Fatalf("Finalize error = %v, want a no-path-to-exit rejection", err)
	}
}

func TestReverseGraph(t *testing.T) {
	g := NewGraph(3, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	r := g.Reverse(2)
	if len(r.Succs[2]) != 1 || r.Succs[2][0] != 1 {
		t.Fatalf("reverse succs of 2 = %v", r.Succs[2])
	}
	if len(r.Succs[1]) != 1 || r.Succs[1][0] != 0 {
		t.Fatalf("reverse succs of 1 = %v", r.Succs[1])
	}
	if r.Entry != 2 {
		t.Fatalf("reverse entry = %d", r.Entry)
	}
}

func TestDominatorsUnreachable(t *testing.T) {
	g := NewGraph(3, 0)
	g.AddEdge(0, 1) // node 2 unreachable
	idom := Dominators(g)
	if idom[2] != -1 {
		t.Fatalf("idom(unreachable) = %d, want -1", idom[2])
	}
	if idom[1] != 0 {
		t.Fatalf("idom(1) = %d, want 0", idom[1])
	}
}

func TestDominatorsIrreducible(t *testing.T) {
	// Classic irreducible shape: entry branches to 1 and 2, which jump to
	// each other. idom(1) = idom(2) = 0; CHK must converge.
	g := NewGraph(3, 0)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	idom := Dominators(g)
	if idom[1] != 0 || idom[2] != 0 {
		t.Fatalf("idom = %v, want both dominated directly by entry", idom)
	}
}

func TestDominatorsDeepChain(t *testing.T) {
	const n = 500
	g := NewGraph(n, 0)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	idom := Dominators(g)
	for i := 1; i < n; i++ {
		if idom[i] != i-1 {
			t.Fatalf("idom[%d] = %d, want %d", i, idom[i], i-1)
		}
	}
}
