// Package cfg provides control-flow-graph analyses over ir functions:
// dominators, post-dominators, and static control dependence. Control
// dependence drives the CD edges of the Whole Execution Trace (the labeled
// edges from predicates to the statements whose execution they decide).
package cfg

import (
	"fmt"

	"wet/internal/ir"
)

// Graph is a small adjacency-list digraph with a designated entry node.
type Graph struct {
	N     int
	Entry int
	Succs [][]int
	Preds [][]int
}

// NewGraph returns an empty graph with n nodes.
func NewGraph(n, entry int) *Graph {
	return &Graph{N: n, Entry: entry, Succs: make([][]int, n), Preds: make([][]int, n)}
}

// AddEdge inserts a directed edge u->v.
func (g *Graph) AddEdge(u, v int) {
	g.Succs[u] = append(g.Succs[u], v)
	g.Preds[v] = append(g.Preds[v], u)
}

// Reverse returns the transposed graph with the given entry.
func (g *Graph) Reverse(entry int) *Graph {
	r := NewGraph(g.N, entry)
	for u, ss := range g.Succs {
		for _, v := range ss {
			r.AddEdge(v, u)
		}
	}
	return r
}

// FromFunc builds the CFG of f augmented with a virtual exit node (index
// len(f.Blocks)) that every Ret/Halt block feeds. The virtual exit gives the
// post-dominator computation a unique sink.
func FromFunc(f *ir.Func) *Graph {
	n := len(f.Blocks)
	g := NewGraph(n+1, 0)
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			g.AddEdge(b.ID, s)
		}
		switch b.Term().Op {
		case ir.OpRet, ir.OpHalt:
			g.AddEdge(b.ID, n)
		}
	}
	return g
}

// VirtualExit returns the index of the virtual exit node added by FromFunc.
func VirtualExit(f *ir.Func) int { return len(f.Blocks) }

// rpo computes a reverse post-order of nodes reachable from g.Entry and a
// map node -> RPO index (-1 for unreachable nodes).
func rpo(g *Graph) (order []int, index []int) {
	index = make([]int, g.N)
	for i := range index {
		index[i] = -1
	}
	seen := make([]bool, g.N)
	var post []int
	// Iterative DFS computing post-order.
	type frame struct{ node, next int }
	stack := []frame{{g.Entry, 0}}
	seen[g.Entry] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(g.Succs[f.node]) {
			v := g.Succs[f.node][f.next]
			f.next++
			if !seen[v] {
				seen[v] = true
				stack = append(stack, frame{v, 0})
			}
			continue
		}
		post = append(post, f.node)
		stack = stack[:len(stack)-1]
	}
	order = make([]int, len(post))
	for i := range post {
		order[i] = post[len(post)-1-i]
	}
	for i, n := range order {
		index[n] = i
	}
	return order, index
}

// Dominators computes the immediate dominator of every node reachable from
// g.Entry using the Cooper–Harvey–Kennedy iterative algorithm. The entry's
// idom is itself; unreachable nodes get -1.
func Dominators(g *Graph) []int {
	order, idx := rpo(g)
	idom := make([]int, g.N)
	for i := range idom {
		idom[i] = -1
	}
	idom[g.Entry] = g.Entry
	intersect := func(a, b int) int {
		for a != b {
			for idx[a] > idx[b] {
				a = idom[a]
			}
			for idx[b] > idx[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, n := range order {
			if n == g.Entry {
				continue
			}
			newIdom := -1
			for _, p := range g.Preds[n] {
				if idx[p] < 0 || idom[p] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && idom[n] != newIdom {
				idom[n] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// PostDominators computes the immediate post-dominator of every block of f
// with respect to the virtual exit. The result has len(f.Blocks)+1 entries;
// the last is the virtual exit itself. Blocks that cannot reach the exit
// (infinite loops) get -1. It delegates to the shared dominator pass in
// internal/ir (the same one Finalize's flow validation runs).
func PostDominators(f *ir.Func) []int {
	return ir.PostDominators(f)
}

// ControlDeps records static block-level control dependence for a function:
// Parents[b] lists the branch blocks that block b is control dependent on.
// The lists are deduplicated and in discovery order.
type ControlDeps struct {
	Parents [][]int
}

// ControlDependence computes control dependence for f via the standard
// post-dominance criterion (Ferrante–Ottenstein–Warren): for each CFG edge
// u->v where v does not post-dominate u, every node on the post-dominator
// tree path from v up to (but excluding) ipdom(u) is control dependent on u.
func ControlDependence(f *ir.Func) (*ControlDeps, error) {
	ipdom := ir.PostDominators(f)
	n := len(f.Blocks)
	cd := &ControlDeps{Parents: make([][]int, n)}
	have := make([]map[int]bool, n)
	add := func(node, parent int) {
		if have[node] == nil {
			have[node] = map[int]bool{}
		}
		if !have[node][parent] {
			have[node][parent] = true
			cd.Parents[node] = append(cd.Parents[node], parent)
		}
	}
	for _, b := range f.Blocks {
		if len(b.Succs) < 2 {
			continue // only branches create control dependence
		}
		u := b.ID
		if ipdom[u] < 0 {
			return nil, fmt.Errorf("cfg: %s block %d cannot reach exit", f.Name, u)
		}
		stop := ipdom[u]
		for _, v := range b.Succs {
			for w := v; w != stop; w = ipdom[w] {
				if w < 0 || w == VirtualExit(f) {
					return nil, fmt.Errorf("cfg: %s: post-dominator walk from edge %d->%d escaped", f.Name, u, v)
				}
				add(w, u)
				if ipdom[w] == w {
					break // reached the root of the post-dominator tree
				}
			}
		}
	}
	return cd, nil
}
