package query

// BatchCtx and ctx-aware extraction coverage: cooperative cancellation,
// typed errors out of injected faults and panicking jobs, and first-error
// selection in index order.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"wet/internal/core"
	"wet/internal/faultpoint"
	"wet/internal/stream"
)

func TestBatchCtxCoversAllJobs(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 57
		var done [n]atomic.Int32
		err := BatchCtx(context.Background(), workers, n, func(i int) error {
			done[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: BatchCtx: %v", workers, err)
		}
		for i := range done {
			if got := done[i].Load(); got != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, got)
			}
		}
	}
	err := BatchCtx(context.Background(), 4, 0, func(i int) error {
		t.Fatal("job invoked for n=0")
		return nil
	})
	if err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestBatchCtxNilContext(t *testing.T) {
	var ran atomic.Int32
	if err := BatchCtx(nil, 2, 4, func(i int) error { ran.Add(1); return nil }); err != nil {
		t.Fatalf("nil-ctx batch: %v", err)
	}
	if ran.Load() != 4 {
		t.Fatalf("nil-ctx batch ran %d of 4 jobs", ran.Load())
	}
}

func TestBatchCtxFirstErrorInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		errAt := func(i int) error { return errors.New("job " + string(rune('0'+i))) }
		err := BatchCtx(context.Background(), workers, 8, func(i int) error {
			if i == 2 || i == 5 {
				return errAt(i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 2" {
			t.Fatalf("workers=%d: BatchCtx returned %v, want the lowest-index error", workers, err)
		}
	}
}

func TestBatchCtxCancelStopsClaiming(t *testing.T) {
	cause := errors.New("operator abort")
	ctx, cancel := context.WithCancelCause(context.Background())
	var started atomic.Int32
	const n = 1000
	err := BatchCtx(ctx, 2, n, func(i int) error {
		if started.Add(1) == 4 {
			cancel(cause)
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, cause) {
		t.Fatalf("cancelled batch returned %v, want the cancellation cause", err)
	}
	if got := started.Load(); got >= n {
		t.Fatalf("cancelled batch still ran all %d jobs", n)
	}
}

func TestBatchCtxCancelBeatsJobError(t *testing.T) {
	// When the context dies, its cause wins over whatever partial job
	// errors the drain produced — cancellation is the caller's verdict.
	cause := errors.New("operator abort")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	err := BatchCtx(ctx, 4, 8, func(i int) error { return errors.New("job error") })
	if !errors.Is(err, cause) {
		t.Fatalf("dead-ctx batch returned %v, want the cause", err)
	}
}

func TestBatchCtxInjectedFault(t *testing.T) {
	if err := faultpoint.Arm("query.batch.job", faultpoint.Spec{Action: faultpoint.ActErr, After: 3}); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.DisarmAll()
	err := BatchCtx(context.Background(), 4, 16, func(i int) error { return nil })
	var fe *faultpoint.Error
	if !errors.As(err, &fe) || fe.Point != "query.batch.job" {
		t.Fatalf("injected batch fault surfaced as %v, want *faultpoint.Error", err)
	}
}

func TestBatchCtxJobPanicTyped(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := BatchCtx(context.Background(), workers, 8, func(i int) error {
			if i == 1 {
				panic("job blew up")
			}
			return nil
		})
		var pe *core.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: job panic surfaced as %v, want *core.PanicError", workers, err)
		}
	}
}

func TestBatchCtxDecodeErrorPassesThrough(t *testing.T) {
	de := &stream.DecodeError{Stream: "test", Cause: errors.New("forged")}
	err := BatchCtx(context.Background(), 1, 1, func(i int) error { panic(de) })
	var got *stream.DecodeError
	if !errors.As(err, &got) || got != de {
		t.Fatalf("DecodeError panic surfaced as %v, want the original *stream.DecodeError", err)
	}
}

// TestExtractCFCtxCancelled: the long scans poll their context and return
// its cause mid-walk instead of finishing the trace.
func TestExtractCFCtxCancelled(t *testing.T) {
	w, _ := buildWET(t, mixedProgram(t), nil)
	cause := errors.New("operator abort")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	if _, err := ExtractCFCtx(ctx, w, core.Tier2, true, nil); !errors.Is(err, cause) {
		t.Fatalf("cancelled ExtractCFCtx returned %v, want the cause", err)
	}
	if _, err := ExtractCFRangeCtx(ctx, w, core.Tier2, 1, w.Time, nil); !errors.Is(err, cause) {
		t.Fatalf("cancelled ExtractCFRangeCtx returned %v, want the cause", err)
	}
}

// TestExtractCFCtxMatchesPanicVariant: with a live context the ctx-aware
// walk is exactly ExtractCF.
func TestExtractCFCtxMatchesPanicVariant(t *testing.T) {
	w, _ := buildWET(t, mixedProgram(t), nil)
	var a, b []int
	want := ExtractCF(w, core.Tier2, true, func(id int) { a = append(a, id) })
	got, err := ExtractCFCtx(context.Background(), w, core.Tier2, true, func(id int) { b = append(b, id) })
	if err != nil || got != want || len(a) != len(b) {
		t.Fatalf("ExtractCFCtx = (%d, %v), ExtractCF = %d", got, err, want)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces differ at %d", i)
		}
	}
}
