package query

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Batch runs n independent query jobs against one shared frozen WET from a
// bounded pool of goroutines and blocks until all complete. job(i) is
// invoked exactly once for each i in [0, n), from whichever worker claims
// it; claiming order is the index order, completion order is not defined.
//
// This is safe with no caller synchronization because the access layer
// hands every query fresh detached cursors (core.Seq factories and the
// walker's private cursor table) and a frozen WET is never mutated by
// reads. Each job must still keep the cursors it creates to itself —
// that is, don't share a Walker or a Seq across jobs.
//
// workers <= 0 means runtime.GOMAXPROCS(0); workers == 1 runs the jobs
// serially on the calling goroutine (useful as a baseline).
func Batch(workers, n int, job func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}
