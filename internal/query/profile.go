package query

import (
	"fmt"
	"sort"

	"wet/internal/core"
	"wet/internal/ir"
)

// Invariance summarizes how predictable one statement's values are — the
// value-profiling metric of Calder et al. that the paper cites as a
// motivating consumer.
type Invariance struct {
	StmtID  int
	Execs   uint64
	Uniques int
	// TopValue is the most frequent value; TopFraction its share of all
	// executions (1.0 = fully invariant).
	TopValue    int64
	TopFraction float64
}

// ValueInvariance computes the invariance profile of every def-port
// statement executed at least minExecs times, sorted by descending
// TopFraction (most specializable first).
func ValueInvariance(w *core.WET, tier core.Tier, minExecs uint64) ([]Invariance, error) {
	var out []Invariance
	for _, st := range w.Prog.Stmts {
		if !st.Op.HasDef() || st.Dest < 0 {
			continue
		}
		counts := map[int64]uint64{}
		n, err := ValueTrace(w, tier, st.ID, func(s Sample) {
			counts[s.Value]++
		})
		if err != nil {
			return nil, err
		}
		if n < minExecs || n == 0 {
			continue
		}
		inv := Invariance{StmtID: st.ID, Execs: n, Uniques: len(counts)}
		var bestC uint64
		for v, c := range counts {
			// Ties break toward the smaller value so the result does not
			// depend on map iteration order.
			if c > bestC || (c == bestC && v < inv.TopValue) {
				bestC, inv.TopValue = c, v
			}
		}
		inv.TopFraction = float64(bestC) / float64(n)
		out = append(out, inv)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TopFraction != out[j].TopFraction {
			return out[i].TopFraction > out[j].TopFraction
		}
		return out[i].Execs > out[j].Execs
	})
	return out, nil
}

// RefPattern classifies a memory instruction's address stream.
type RefPattern int

const (
	// RefConstant: the instruction always touches one address.
	RefConstant RefPattern = iota
	// RefStrided: a dominant repeated stride (prefetchable stream).
	RefStrided
	// RefIrregular: no dominant stride (pointer chasing).
	RefIrregular
)

func (p RefPattern) String() string {
	switch p {
	case RefConstant:
		return "constant"
	case RefStrided:
		return "strided"
	default:
		return "irregular"
	}
}

// StrideProfile summarizes one load/store's reference behaviour — the hot
// data stream detection of Chilimbi / Joseph–Grunwald the paper cites.
type StrideProfile struct {
	StmtID     int
	Accesses   int
	Pattern    RefPattern
	Stride     int64
	Confidence float64 // fraction of consecutive pairs showing Stride
}

// StrideProfiles classifies every load/store with at least minAccesses
// dynamic accesses, hottest first.
func StrideProfiles(w *core.WET, tier core.Tier, minAccesses int) ([]StrideProfile, error) {
	var out []StrideProfile
	for _, st := range w.Prog.Stmts {
		if st.Op != ir.OpLoad && st.Op != ir.OpStore {
			continue
		}
		var addrs []int64
		if _, err := AddressTrace(w, tier, st.ID, func(s Sample) {
			addrs = append(addrs, s.Value)
		}); err != nil {
			return nil, err
		}
		if len(addrs) < minAccesses || len(addrs) < 2 {
			continue
		}
		strides := map[int64]int{}
		for i := 1; i < len(addrs); i++ {
			strides[addrs[i]-addrs[i-1]]++
		}
		var best int64
		bestN := 0
		for s, n := range strides {
			// Deterministic tie-break (smaller stride) — independent of map
			// iteration order.
			if n > bestN || (n == bestN && s < best) {
				best, bestN = s, n
			}
		}
		sp := StrideProfile{
			StmtID:     st.ID,
			Accesses:   len(addrs),
			Stride:     best,
			Confidence: float64(bestN) / float64(len(addrs)-1),
		}
		switch {
		case best == 0 && sp.Confidence > 0.95:
			sp.Pattern = RefConstant
		case sp.Confidence > 0.7:
			sp.Pattern = RefStrided
		default:
			sp.Pattern = RefIrregular
		}
		out = append(out, sp)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Accesses > out[j].Accesses })
	return out, nil
}

// RangeError reports an inverted timestamp range handed to ExtractCFRange:
// the caller asked for a window that ends before it starts. It used to be
// swallowed as an empty extraction, which made off-by-swap bugs in callers
// invisible.
type RangeError struct {
	From, To uint32
}

func (e *RangeError) Error() string {
	return fmt.Sprintf("query: inverted timestamp range [%d, %d]", e.From, e.To)
}

// ExtractCFRange walks the statement-level control flow trace between two
// timestamps (inclusive), the paper's "part of the program path starting at
// any execution point". It returns the number of statements emitted. An
// inverted range (fromTS > toTS) returns a *RangeError; a range merely
// clipped by the ends of the trace is extracted as far as it exists.
func ExtractCFRange(w *core.WET, tier core.Tier, fromTS, toTS uint32, emit func(stmtID int)) (n uint64, err error) {
	defer recoverTyped(&err)
	if fromTS > toTS {
		return 0, &RangeError{From: fromTS, To: toTS}
	}
	if fromTS < 1 {
		fromTS = 1
	}
	if toTS > w.Time {
		toTS = w.Time
	}
	if fromTS > toTS {
		// The whole window lies past the end of the trace.
		return 0, nil
	}
	wk := NewWalker(w, tier)
	if err := wk.StartAt(fromTS); err != nil {
		return 0, err
	}
	for {
		for _, s := range w.Nodes[wk.Node].Stmts {
			if emit != nil {
				emit(s.ID)
			}
			n++
		}
		if wk.TS() >= toTS || !wk.Forward() {
			return n, nil
		}
	}
}
