package query

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"wet/internal/core"
	"wet/internal/interp"
	"wet/internal/progen"
)

func TestBatchCoversAllJobs(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 57
		var done [n]atomic.Int32
		Batch(workers, n, func(i int) { done[i].Add(1) })
		for i := range done {
			if got := done[i].Load(); got != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, got)
			}
		}
	}
	Batch(4, 0, func(i int) { t.Fatal("job invoked for n=0") })
}

// sliceSummary runs a deterministic mixed query workload serially and
// returns a comparable digest: used as the golden for the parallel run.
func querySummary(w *core.WET, tier core.Tier, kind int, crit Instance) string {
	switch kind % 4 {
	case 0:
		res, err := BackwardSlice(w, tier, crit, 0)
		if err != nil {
			return "err:" + err.Error()
		}
		return fmt.Sprintf("bslice:%d:%d:%v", len(res.Instances), res.Edges, res.Instances[len(res.Instances)-1])
	case 1:
		res, err := ForwardSlice(w, tier, crit, 0)
		if err != nil {
			return "err:" + err.Error()
		}
		return fmt.Sprintf("fslice:%d:%d", len(res.Instances), res.Edges)
	case 2:
		invs, err := ValueInvariance(w, tier, 2)
		if err != nil {
			return "err:" + err.Error()
		}
		var sb strings.Builder
		for _, inv := range invs {
			fmt.Fprintf(&sb, "%d/%d/%d;", inv.StmtID, inv.Execs, inv.Uniques)
		}
		return "inv:" + sb.String()
	default:
		sps, err := StrideProfiles(w, tier, 2)
		if err != nil {
			return "err:" + err.Error()
		}
		var sb strings.Builder
		for _, sp := range sps {
			fmt.Fprintf(&sb, "%d/%d/%s/%d;", sp.StmtID, sp.Accesses, sp.Pattern, sp.Stride)
		}
		return "stride:" + sb.String()
	}
}

// TestParallelMixedQueries is the access layer's concurrency contract under
// -race: many goroutines issue slices and profiles, at both tiers, against
// ONE shared frozen WET with no synchronization of their own, and every
// result must match the serial golden.
func TestParallelMixedQueries(t *testing.T) {
	w, _ := buildWET(t, mixedProgram(t), nil)

	// Criteria: one instance per node (spread over ordinals).
	var crits []Instance
	for _, n := range w.Nodes {
		crits = append(crits, Instance{Node: n.ID, Pos: len(n.Stmts) - 1, Ord: n.Execs - 1})
		crits = append(crits, Instance{Node: n.ID, Pos: 0, Ord: 0})
	}

	// 2 tiers x 4 query kinds x criteria: well over the 8-concurrent-query
	// floor; workers=8 keeps at least 8 in flight.
	type job struct {
		tier core.Tier
		kind int
		crit Instance
	}
	var jobs []job
	for _, tier := range []core.Tier{core.Tier1, core.Tier2} {
		for kind := 0; kind < 4; kind++ {
			for _, crit := range crits {
				jobs = append(jobs, job{tier, kind, crit})
			}
		}
	}
	want := make([]string, len(jobs))
	for i, j := range jobs {
		want[i] = querySummary(w, j.tier, j.kind, j.crit)
	}
	got := make([]string, len(jobs))
	Batch(8, len(jobs), func(i int) {
		got[i] = querySummary(w, jobs[i].tier, jobs[i].kind, jobs[i].crit)
	})
	for i := range jobs {
		if got[i] != want[i] {
			t.Fatalf("job %d (%+v): parallel result %q, serial %q", i, jobs[i], got[i], want[i])
		}
	}

	// Concurrent whole-trace walks (walkers own private cursors).
	wantCF := make([]uint64, 2)
	wantCF[0] = ExtractCF(w, core.Tier1, true, nil)
	wantCF[1] = ExtractCF(w, core.Tier2, false, nil)
	gotCF := make([]uint64, 16)
	Batch(8, len(gotCF), func(i int) {
		if i%2 == 0 {
			gotCF[i] = ExtractCF(w, core.Tier1, true, nil)
		} else {
			gotCF[i] = ExtractCF(w, core.Tier2, false, nil)
		}
	})
	for i, g := range gotCF {
		if g != wantCF[i%2] {
			t.Fatalf("concurrent ExtractCF %d = %d, want %d", i, g, wantCF[i%2])
		}
	}
}

// TestCrossTierEquivalenceRandom drives every query family over randomized
// generated programs and demands identical answers from tier-1 arrays and
// tier-2 compressed streams.
func TestCrossTierEquivalenceRandom(t *testing.T) {
	opts := progen.DefaultOpts()
	opts.MaxStmts = 25
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		p, in, err := progen.Gen(rng, opts)
		if err != nil {
			t.Fatalf("trial %d: Gen: %v", trial, err)
		}
		st, err := interp.Analyze(p)
		if err != nil {
			t.Fatalf("trial %d: Analyze: %v", trial, err)
		}
		w, _, err := core.Build(st, interp.Options{Inputs: in, MaxSteps: 1 << 20})
		if err != nil {
			t.Fatalf("trial %d: Build: %v", trial, err)
		}
		w.Freeze(core.FreezeOptions{CheckpointK: 64})

		var cf1, cf2 []int
		ExtractCF(w, core.Tier1, true, func(id int) { cf1 = append(cf1, id) })
		ExtractCF(w, core.Tier2, true, func(id int) { cf2 = append(cf2, id) })
		if !reflect.DeepEqual(cf1, cf2) {
			t.Fatalf("trial %d: CF traces differ (%d vs %d stmts)", trial, len(cf1), len(cf2))
		}

		type keyed struct {
			ID int
			S  Sample
		}
		var lv1, lv2, at1, at2 []keyed
		if _, err := LoadValueTraces(w, core.Tier1, func(id int, s Sample) { lv1 = append(lv1, keyed{id, s}) }); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if _, err := LoadValueTraces(w, core.Tier2, func(id int, s Sample) { lv2 = append(lv2, keyed{id, s}) }); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(lv1, lv2) {
			t.Fatalf("trial %d: load value traces differ", trial)
		}
		if _, err := AddressTraces(w, core.Tier1, func(id int, s Sample) { at1 = append(at1, keyed{id, s}) }); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if _, err := AddressTraces(w, core.Tier2, func(id int, s Sample) { at2 = append(at2, keyed{id, s}) }); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(at1, at2) {
			t.Fatalf("trial %d: address traces differ", trial)
		}

		// Slices from randomized criteria must agree instance for instance.
		for k := 0; k < 8; k++ {
			n := w.Nodes[rng.Intn(len(w.Nodes))]
			crit := Instance{Node: n.ID, Pos: rng.Intn(len(n.Stmts)), Ord: rng.Intn(n.Execs)}
			b1, err1 := BackwardSlice(w, core.Tier1, crit, 0)
			b2, err2 := BackwardSlice(w, core.Tier2, crit, 0)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("trial %d: slice errors diverge: %v vs %v", trial, err1, err2)
			}
			if err1 == nil && !reflect.DeepEqual(b1, b2) {
				t.Fatalf("trial %d: backward slices of %+v differ: %d vs %d instances",
					trial, crit, len(b1.Instances), len(b2.Instances))
			}
			f1, err1 := ForwardSlice(w, core.Tier1, crit, 200)
			f2, err2 := ForwardSlice(w, core.Tier2, crit, 200)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("trial %d: forward slice errors diverge: %v vs %v", trial, err1, err2)
			}
			if err1 == nil && !reflect.DeepEqual(f1, f2) {
				t.Fatalf("trial %d: forward slices of %+v differ", trial, crit)
			}
		}

		inv1, err := ValueInvariance(w, core.Tier1, 2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		inv2, err := ValueInvariance(w, core.Tier2, 2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(inv1, inv2) {
			t.Fatalf("trial %d: invariance profiles differ", trial)
		}
		sp1, err := StrideProfiles(w, core.Tier1, 2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sp2, err := StrideProfiles(w, core.Tier2, 2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(sp1, sp2) {
			t.Fatalf("trial %d: stride profiles differ", trial)
		}
	}
}
