package query

import (
	"fmt"
	"sort"

	"wet/internal/core"
)

// StmtDelta compares one static statement's dynamic behaviour across two
// runs of the same program.
type StmtDelta struct {
	StmtID int
	// ExecsA/ExecsB are the statement's dynamic execution counts.
	ExecsA, ExecsB uint64
	// UniqueA/UniqueB count distinct values produced (def-port statements).
	UniqueA, UniqueB int
}

// Diff compares two WETs of the same program (e.g. two inputs): per
// statement execution counts and value diversity, plus the path-level
// control flow difference. It is input-sensitivity mining over the unified
// profile — both WETs answer every per-statement question directly.
type Diff struct {
	// Stmts holds one entry per static statement whose behaviour differs,
	// sorted by descending |ExecsA - ExecsB|.
	Stmts []StmtDelta
	// PathsOnlyA/PathsOnlyB count Ball–Larus paths exercised by exactly one
	// of the runs.
	PathsOnlyA, PathsOnlyB int
	// SharedPaths counts paths exercised by both.
	SharedPaths int
}

// execsOf sums a statement's execution count over its occurrences.
func execsOf(w *core.WET, stmtID int) uint64 {
	var n uint64
	for _, ref := range w.StmtOcc[stmtID] {
		n += uint64(w.Nodes[ref.Node].Execs)
	}
	return n
}

// uniqueValuesOf counts distinct values a def statement produced (0 for
// statements without a def port).
func uniqueValuesOf(w *core.WET, stmtID int) int {
	st := w.Prog.Stmts[stmtID]
	if !st.Op.HasDef() || st.Dest < 0 {
		return 0
	}
	seen := map[uint32]bool{}
	for _, ref := range w.StmtOcc[stmtID] {
		n := w.Nodes[ref.Node]
		g := n.Groups[n.GroupOf[ref.Pos]]
		mi := g.ValMemberIndex(ref.Pos)
		if mi < 0 {
			continue
		}
		for _, v := range g.UVals[mi] {
			seen[v] = true
		}
	}
	return len(seen)
}

// DiffWETs compares two WETs of the same program. Both must be built from
// a program with identical statement numbering (the same *ir.Program or a
// deserialized copy).
func DiffWETs(a, b *core.WET) (*Diff, error) {
	if len(a.Prog.Stmts) != len(b.Prog.Stmts) {
		return nil, fmt.Errorf("query: WETs are from different programs (%d vs %d statements)",
			len(a.Prog.Stmts), len(b.Prog.Stmts))
	}
	for i := range a.Prog.Stmts {
		if a.Prog.Stmts[i].String() != b.Prog.Stmts[i].String() {
			return nil, fmt.Errorf("query: statement %d differs between programs", i)
		}
	}
	d := &Diff{}
	for id := range a.Prog.Stmts {
		sd := StmtDelta{
			StmtID: id,
			ExecsA: execsOf(a, id), ExecsB: execsOf(b, id),
			UniqueA: uniqueValuesOf(a, id), UniqueB: uniqueValuesOf(b, id),
		}
		if sd.ExecsA != sd.ExecsB || sd.UniqueA != sd.UniqueB {
			d.Stmts = append(d.Stmts, sd)
		}
	}
	sort.Slice(d.Stmts, func(i, j int) bool {
		return absDiff(d.Stmts[i].ExecsA, d.Stmts[i].ExecsB) > absDiff(d.Stmts[j].ExecsA, d.Stmts[j].ExecsB)
	})

	pathsA := map[[2]int64]bool{}
	for _, n := range a.Nodes {
		pathsA[[2]int64{int64(n.Fn), n.PathID}] = true
	}
	for _, n := range b.Nodes {
		k := [2]int64{int64(n.Fn), n.PathID}
		if pathsA[k] {
			d.SharedPaths++
			delete(pathsA, k)
		} else {
			d.PathsOnlyB++
		}
	}
	d.PathsOnlyA = len(pathsA)
	return d, nil
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
