package query

import (
	"errors"
	"strings"
	"testing"

	"wet/internal/core"
	"wet/internal/interp"
	"wet/internal/ir"
	"wet/internal/trace"
)

type tee struct{ sinks []trace.Sink }

func (t *tee) Stmt(inst trace.Inst, st *ir.Stmt, value int64, ddSrcs []trace.Inst, ddVals []int64, cdSrc trace.Inst) {
	for _, s := range t.sinks {
		s.Stmt(inst, st, value, ddSrcs, ddVals, cdSrc)
	}
}

func (t *tee) PathDone(fn int, pathID int64) {
	for _, s := range t.sinks {
		s.PathDone(fn, pathID)
	}
}

func buildWET(t *testing.T, p *ir.Program, inputs []int64) (*core.WET, *trace.Recording) {
	t.Helper()
	st, err := interp.Analyze(p)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	b := core.NewBuilder(st)
	b.CheckDeterminism = true
	rec := &trace.Recording{}
	cnt := trace.NewCounting(&tee{sinks: []trace.Sink{rec, b}})
	if _, err := interp.Run(st, interp.Options{Inputs: inputs, Sink: cnt, MaxSteps: 1 << 22}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	w, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	w.Raw = cnt.RawStats
	w.Freeze(core.FreezeOptions{})
	return w, rec
}

// mixedProgram exercises loops, branches, memory, and calls.
func mixedProgram(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram(4096)
	g := p.NewFunc("weight", 1)
	r := g.NewReg()
	c := g.NewReg()
	g.Le(c, ir.R(g.Param(0)), ir.Imm(2))
	g.If(ir.R(c), func() { g.Ret(ir.Imm(1)) }, nil)
	g.Mul(r, ir.R(g.Param(0)), ir.Imm(3))
	g.Ret(ir.R(r))

	fb := p.NewFunc("main", 0)
	sum := fb.ConstReg(0)
	v := fb.NewReg()
	wv := fb.NewReg()
	par := fb.NewReg()
	fb.For(ir.Imm(0), ir.Imm(12), ir.Imm(1), func(i ir.Reg) {
		fb.Store(ir.R(i), 100, ir.R(i))
		fb.Load(v, ir.R(i), 100)
		fb.Mod(par, ir.R(v), ir.Imm(3))
		fb.If(ir.R(par), func() {
			fb.Call(wv, "weight", ir.R(v))
			fb.Add(sum, ir.R(sum), ir.R(wv))
		}, func() {
			fb.Add(sum, ir.R(sum), ir.Imm(1))
		})
	})
	fb.Output(ir.R(sum))
	fb.Halt()
	p.Entry = 1
	p.MustFinalize()
	return p
}

func TestExtractCFForwardMatchesRecording(t *testing.T) {
	w, rec := buildWET(t, mixedProgram(t), nil)
	want := make([]int, 0, len(rec.Events))
	for _, e := range rec.Events {
		want = append(want, e.Stmt.ID)
	}
	for _, tier := range []core.Tier{core.Tier1, core.Tier2} {
		var got []int
		n := ExtractCF(w, tier, true, func(id int) { got = append(got, id) })
		if n != uint64(len(want)) || len(got) != len(want) {
			t.Fatalf("%s: extracted %d stmts, want %d", tier, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: stmt %d = %d, want %d", tier, i, got[i], want[i])
			}
		}
	}
}

func TestExtractCFBackwardIsReverse(t *testing.T) {
	w, rec := buildWET(t, mixedProgram(t), nil)
	for _, tier := range []core.Tier{core.Tier1, core.Tier2} {
		var got []int
		ExtractCF(w, tier, false, func(id int) { got = append(got, id) })
		if len(got) != len(rec.Events) {
			t.Fatalf("%s: %d stmts backward, want %d", tier, len(got), len(rec.Events))
		}
		for i := range got {
			want := rec.Events[len(rec.Events)-1-i].Stmt.ID
			if got[i] != want {
				t.Fatalf("%s: backward stmt %d = %d, want %d", tier, i, got[i], want)
			}
		}
	}
}

func TestWalkerStartAtMidTrace(t *testing.T) {
	w, _ := buildWET(t, mixedProgram(t), nil)
	wk := NewWalker(w, core.Tier2)
	mid := w.Time / 2
	if err := wk.StartAt(mid); err != nil {
		t.Fatalf("StartAt: %v", err)
	}
	if wk.TS() != mid {
		t.Fatalf("TS = %d, want %d", wk.TS(), mid)
	}
	// Walk forward two steps and backward two steps; must return.
	n0 := wk.Node
	if !wk.Forward() || !wk.Forward() {
		t.Fatal("forward from mid failed")
	}
	if !wk.Backward() || !wk.Backward() {
		t.Fatal("backward to mid failed")
	}
	if wk.Node != n0 || wk.TS() != mid {
		t.Fatalf("did not return to mid: node %d ts %d", wk.Node, wk.TS())
	}
}

func TestLoadValueTraceMatchesRecording(t *testing.T) {
	p := mixedProgram(t)
	w, rec := buildWET(t, p, nil)
	// Expected: per load statement, values in execution order.
	want := map[int][]int64{}
	for _, e := range rec.Events {
		if e.Stmt.Op == ir.OpLoad {
			want[e.Stmt.ID] = append(want[e.Stmt.ID], e.Value)
		}
	}
	for _, tier := range []core.Tier{core.Tier1, core.Tier2} {
		got := map[int][]int64{}
		total, err := LoadValueTraces(w, tier, func(id int, s Sample) {
			got[id] = append(got[id], s.Value)
		})
		if err != nil {
			t.Fatalf("%s: %v", tier, err)
		}
		var wantTotal uint64
		for id, vals := range want {
			wantTotal += uint64(len(vals))
			if len(got[id]) != len(vals) {
				t.Fatalf("%s: load %d trace has %d samples, want %d", tier, id, len(got[id]), len(vals))
			}
			for i := range vals {
				if got[id][i] != vals[i] {
					t.Fatalf("%s: load %d sample %d = %d, want %d", tier, id, i, got[id][i], vals[i])
				}
			}
		}
		if total != wantTotal {
			t.Fatalf("%s: total %d, want %d", tier, total, wantTotal)
		}
	}
}

func TestAddressTraceMatchesRecording(t *testing.T) {
	p := mixedProgram(t)
	w, rec := buildWET(t, p, nil)
	mask := p.MemWords - 1
	want := map[int][]int64{}
	for _, e := range rec.Events {
		if e.Stmt.Op != ir.OpLoad && e.Stmt.Op != ir.OpStore {
			continue
		}
		var addr int64
		if e.Stmt.A.IsReg {
			addr = (e.DDVals[0] + e.Stmt.Off) & mask
		} else {
			addr = (e.Stmt.A.Imm + e.Stmt.Off) & mask
		}
		want[e.Stmt.ID] = append(want[e.Stmt.ID], addr)
	}
	for _, tier := range []core.Tier{core.Tier1, core.Tier2} {
		got := map[int][]int64{}
		_, err := AddressTraces(w, tier, func(id int, s Sample) {
			got[id] = append(got[id], s.Value)
		})
		if err != nil {
			t.Fatalf("%s: %v", tier, err)
		}
		for id, vals := range want {
			if len(got[id]) != len(vals) {
				t.Fatalf("%s: stmt %d address trace has %d samples, want %d", tier, id, len(got[id]), len(vals))
			}
			for i := range vals {
				if got[id][i] != vals[i] {
					t.Fatalf("%s: stmt %d address %d = %d, want %d", tier, id, i, got[id][i], vals[i])
				}
			}
		}
	}
}

// chainProgram: a = input; b = a*2; c = b+5; output c — with an if on a.
func chainProgram(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	a := fb.NewReg()
	b := fb.NewReg()
	c := fb.NewReg()
	cond := fb.NewReg()
	fb.Input(a)
	fb.Mul(b, ir.R(a), ir.Imm(2))
	fb.Gt(cond, ir.R(a), ir.Imm(0))
	fb.If(ir.R(cond), func() {
		fb.Add(c, ir.R(b), ir.Imm(5))
	}, func() {
		fb.Const(c, 0)
	})
	fb.Output(ir.R(c))
	fb.Halt()
	p.MustFinalize()
	return p
}

func TestBackwardSliceChain(t *testing.T) {
	w, rec := buildWET(t, chainProgram(t), []int64{7})
	// Criterion: the add (c = b+5) instance.
	var addID int
	for _, e := range rec.Events {
		if e.Stmt.Op == ir.OpAdd {
			addID = e.Stmt.ID
		}
	}
	ref := w.StmtOcc[addID][0]
	for _, tier := range []core.Tier{core.Tier1, core.Tier2} {
		res, err := BackwardSlice(w, tier, Instance{Node: ref.Node, Pos: ref.Pos, Ord: 0}, 0)
		if err != nil {
			t.Fatalf("%s: %v", tier, err)
		}
		ops := map[ir.Op]bool{}
		for _, in := range res.Instances {
			ops[w.Nodes[in.Node].Stmts[in.Pos].Op] = true
		}
		// The slice must include the data chain (input, mul, add) and the
		// controlling branch (br) plus its predicate (gt).
		for _, want := range []ir.Op{ir.OpAdd, ir.OpMul, ir.OpInput, ir.OpBr, ir.OpGt} {
			if !ops[want] {
				t.Fatalf("%s: backward slice misses %s (ops: %v)", tier, want, ops)
			}
		}
		// And must NOT include the untaken arm's const.
		if ops[ir.OpConst] {
			t.Fatalf("%s: slice includes the untaken arm", tier)
		}
	}
}

func TestForwardSliceInverse(t *testing.T) {
	w, rec := buildWET(t, chainProgram(t), []int64{7})
	var inputID int
	for _, e := range rec.Events {
		if e.Stmt.Op == ir.OpInput {
			inputID = e.Stmt.ID
		}
	}
	ref := w.StmtOcc[inputID][0]
	start := Instance{Node: ref.Node, Pos: ref.Pos, Ord: 0}
	res, err := ForwardSlice(w, core.Tier2, start, 0)
	if err != nil {
		t.Fatal(err)
	}
	ops := map[ir.Op]bool{}
	for _, in := range res.Instances {
		ops[w.Nodes[in.Node].Stmts[in.Pos].Op] = true
	}
	for _, want := range []ir.Op{ir.OpMul, ir.OpAdd, ir.OpOutput, ir.OpGt} {
		if !ops[want] {
			t.Fatalf("forward slice misses %s (ops %v)", want, ops)
		}
	}
	// Inverse check: everything in the forward slice has the input in its
	// backward slice.
	for _, in := range res.Instances[1:] {
		back, err := BackwardSlice(w, core.Tier2, in, 0)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, bi := range back.Instances {
			if bi == start {
				found = true
			}
		}
		if !found {
			t.Fatalf("instance %+v forward-reachable but input not in its backward slice", in)
		}
	}
}

func TestSliceOnLoop(t *testing.T) {
	// Slicing the final sum of a loop must pull in all iterations.
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	s := fb.ConstReg(0)
	fb.For(ir.Imm(0), ir.Imm(6), ir.Imm(1), func(i ir.Reg) {
		fb.Add(s, ir.R(s), ir.R(i))
	})
	fb.Output(ir.R(s))
	fb.Halt()
	p.MustFinalize()
	w, rec := buildWET(t, p, nil)
	var outID int
	for _, e := range rec.Events {
		if e.Stmt.Op == ir.OpOutput {
			outID = e.Stmt.ID
		}
	}
	ref := w.StmtOcc[outID][0]
	res, err := BackwardSlice(w, core.Tier2, Instance{Node: ref.Node, Pos: ref.Pos, Ord: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	adds := 0
	for _, in := range res.Instances {
		if w.Nodes[in.Node].Stmts[in.Pos].Op == ir.OpAdd &&
			w.Nodes[in.Node].Stmts[in.Pos].Dest == ir.Reg(s) {
			adds++
		}
	}
	if adds != 6 {
		t.Fatalf("slice contains %d sum-add instances, want 6", adds)
	}
}

func TestInstanceOfTS(t *testing.T) {
	w, rec := buildWET(t, mixedProgram(t), nil)
	// Find some load event and its covering path timestamp via replay.
	ordOf := map[int]int{}
	start := 0
	var ts uint32
	for pi, pe := range rec.Paths {
		n := w.NodeOf(pe.Fn, pe.PathID)
		ord := ordOf[n.ID]
		ordOf[n.ID]++
		evs := rec.Events[start:pe.Upto]
		start = pe.Upto
		_ = ord
		ts = uint32(pi + 1)
		for pos, e := range evs {
			if e.Stmt.Op == ir.OpLoad && pi > 3 {
				in, err := InstanceOfTS(w, core.Tier2, e.Stmt.ID, ts)
				if err != nil {
					t.Fatalf("InstanceOfTS: %v", err)
				}
				if in.Node != n.ID || in.Pos != pos {
					t.Fatalf("InstanceOfTS = %+v, want node %d pos %d", in, n.ID, pos)
				}
				return
			}
		}
	}
	t.Skip("no load found after path 3")
}

func TestChop(t *testing.T) {
	w, rec := buildWET(t, chainProgram(t), []int64{7})
	var inputID, outID int
	for _, e := range rec.Events {
		switch e.Stmt.Op {
		case ir.OpInput:
			inputID = e.Stmt.ID
		case ir.OpOutput:
			outID = e.Stmt.ID
		}
	}
	inRef := w.StmtOcc[inputID][0]
	outRef := w.StmtOcc[outID][0]
	from := Instance{Node: inRef.Node, Pos: inRef.Pos, Ord: 0}
	to := Instance{Node: outRef.Node, Pos: outRef.Pos, Ord: 0}
	res, err := Chop(w, core.Tier2, from, to, 0)
	if err != nil {
		t.Fatal(err)
	}
	ops := map[ir.Op]bool{}
	for _, in := range res.Instances {
		ops[w.Nodes[in.Node].Stmts[in.Pos].Op] = true
	}
	// The chop contains the data chain input->mul->add->output but not the
	// const in the untaken arm.
	for _, want := range []ir.Op{ir.OpInput, ir.OpMul, ir.OpAdd, ir.OpOutput} {
		if !ops[want] {
			t.Fatalf("chop misses %s (ops %v)", want, ops)
		}
	}
	if ops[ir.OpConst] {
		t.Fatal("chop includes the untaken arm")
	}
}

func TestDependenceChain(t *testing.T) {
	w, rec := buildWET(t, chainProgram(t), []int64{7})
	var outID int
	for _, e := range rec.Events {
		if e.Stmt.Op == ir.OpOutput {
			outID = e.Stmt.ID
		}
	}
	ref := w.StmtOcc[outID][0]
	chain, err := DependenceChain(w, core.Tier2, Instance{Node: ref.Node, Pos: ref.Pos, Ord: 0}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// output <- add <- mul <- input: a chain of at least 4.
	if len(chain) < 4 {
		t.Fatalf("chain has %d links: %v", len(chain), chain)
	}
	last := w.Nodes[chain[len(chain)-1].Node].Stmts[chain[len(chain)-1].Pos]
	if last.Op != ir.OpInput {
		t.Fatalf("chain ends at %s, want the input", last)
	}
}

func TestHotPaths(t *testing.T) {
	w, _ := buildWET(t, mixedProgram(t), nil)
	hps := HotPaths(w, 3)
	if len(hps) != 3 {
		t.Fatalf("got %d hot paths", len(hps))
	}
	if hps[0].Execs*hps[0].Stmts < hps[1].Execs*hps[1].Stmts {
		t.Fatal("hot paths not sorted by coverage")
	}
	var cov float64
	for _, hp := range HotPaths(w, 0) {
		cov += hp.Coverage
	}
	if cov < 0.999 || cov > 1.001 {
		t.Fatalf("coverage sums to %f", cov)
	}
}

func TestWriteDOT(t *testing.T) {
	w, rec := buildWET(t, chainProgram(t), []int64{7})
	var outID int
	for _, e := range rec.Events {
		if e.Stmt.Op == ir.OpOutput {
			outID = e.Stmt.ID
		}
	}
	ref := w.StmtOcc[outID][0]
	res, err := BackwardSlice(w, core.Tier2, Instance{Node: ref.Node, Pos: ref.Pos, Ord: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteDOT(w, core.Tier2, res, &buf); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	for _, want := range []string{"digraph wetslice", "->", "style=dashed", "fillcolor=lightgrey", "}"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Deterministic output.
	var buf2 strings.Builder
	if err := WriteDOT(w, core.Tier2, res, &buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("WriteDOT is not deterministic")
	}
}

func TestDiffWETs(t *testing.T) {
	// Same program, different inputs: the branch goes the other way.
	w1, _ := buildWET(t, chainProgram(t), []int64{7})
	w2, _ := buildWET(t, chainProgram(t), []int64{-7})
	d, err := DiffWETs(w1, w2)
	if err != nil {
		t.Fatal(err)
	}
	if d.PathsOnlyA == 0 || d.PathsOnlyB == 0 {
		t.Fatalf("expected divergent paths: %+v", d)
	}
	if len(d.Stmts) == 0 {
		t.Fatal("expected diverging statements (different arms executed)")
	}
	// Identical runs: no differences.
	w3, _ := buildWET(t, chainProgram(t), []int64{7})
	d2, err := DiffWETs(w1, w3)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Stmts) != 0 || d2.PathsOnlyA != 0 || d2.PathsOnlyB != 0 {
		t.Fatalf("identical runs reported differences: %+v", d2)
	}
	// Different programs: error.
	wx, _ := buildWET(t, mixedProgram(t), nil)
	if _, err := DiffWETs(w1, wx); err == nil {
		t.Fatal("DiffWETs accepted different programs")
	}
}

func TestValueInvariance(t *testing.T) {
	w, _ := buildWET(t, mixedProgram(t), nil)
	invs, err := ValueInvariance(w, core.Tier2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) == 0 {
		t.Fatal("no invariance entries")
	}
	for i := 1; i < len(invs); i++ {
		if invs[i].TopFraction > invs[i-1].TopFraction+1e-9 {
			t.Fatal("invariance not sorted")
		}
	}
	for _, inv := range invs {
		if inv.TopFraction <= 0 || inv.TopFraction > 1 {
			t.Fatalf("bad fraction %f", inv.TopFraction)
		}
		if inv.Uniques < 1 || uint64(inv.Uniques) > inv.Execs {
			t.Fatalf("bad uniques %d for %d execs", inv.Uniques, inv.Execs)
		}
	}
}

func TestStrideProfiles(t *testing.T) {
	// A program with one strided store and one constant-address load.
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	v := fb.NewReg()
	fb.For(ir.Imm(0), ir.Imm(50), ir.Imm(1), func(i ir.Reg) {
		fb.Store(ir.R(i), 100, ir.R(i)) // stride 1
		fb.Load(v, ir.Imm(7), 0)        // constant address
	})
	fb.Output(ir.R(v))
	fb.Halt()
	p.MustFinalize()
	w, _ := buildWET(t, p, nil)
	sps, err := StrideProfiles(w, core.Tier2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sps) != 2 {
		t.Fatalf("got %d profiles, want 2", len(sps))
	}
	byPattern := map[RefPattern]StrideProfile{}
	for _, sp := range sps {
		byPattern[sp.Pattern] = sp
	}
	if sp, ok := byPattern[RefStrided]; !ok || sp.Stride != 1 {
		t.Fatalf("no unit-stride profile: %+v", sps)
	}
	if _, ok := byPattern[RefConstant]; !ok {
		t.Fatalf("no constant profile: %+v", sps)
	}
}

func TestExtractCFRange(t *testing.T) {
	w, rec := buildWET(t, mixedProgram(t), nil)
	// Full range equals the full trace.
	var full []int
	query := func(from, to uint32) []int {
		var got []int
		if _, err := ExtractCFRange(w, core.Tier2, from, to, func(id int) { got = append(got, id) }); err != nil {
			t.Fatal(err)
		}
		return got
	}
	full = query(1, w.Time)
	if len(full) != len(rec.Events) {
		t.Fatalf("full range %d stmts, want %d", len(full), len(rec.Events))
	}
	// A middle window is a contiguous subsequence of the full trace.
	mid := query(w.Time/3, 2*w.Time/3)
	if len(mid) == 0 || len(mid) >= len(full) {
		t.Fatalf("mid window has %d stmts of %d", len(mid), len(full))
	}
	// Find mid inside full.
	found := false
	for off := 0; off+len(mid) <= len(full); off++ {
		match := true
		for i := range mid {
			if full[off+i] != mid[i] {
				match = false
				break
			}
		}
		if match {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("window trace is not a contiguous slice of the full trace")
	}
	// An inverted range is a caller bug and must surface as *RangeError,
	// not a silent empty extraction.
	n, err := ExtractCFRange(w, core.Tier2, 10, 5, nil)
	if n != 0 || err == nil {
		t.Fatalf("inverted range: n=%d err=%v, want typed error", n, err)
	}
	var re *RangeError
	if !errors.As(err, &re) || re.From != 10 || re.To != 5 {
		t.Fatalf("inverted range error is %#v, want *RangeError{10, 5}", err)
	}
	// A well-ordered window merely clipped by the trace ends is not an
	// error: clamping still applies.
	if n, err := ExtractCFRange(w, core.Tier2, 0, w.Time+100, nil); err != nil || n == 0 {
		t.Fatalf("clipped full range: n=%d err=%v", n, err)
	}
	if n, err := ExtractCFRange(w, core.Tier2, w.Time+1, w.Time+10, nil); err != nil || n != 0 {
		t.Fatalf("window past end of trace: n=%d err=%v", n, err)
	}
}
