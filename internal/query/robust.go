package query

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"wet/internal/core"
	"wet/internal/faultpoint"
	"wet/internal/stream"
)

// fpBatchJob fires once per BatchCtx job, before the job runs: the "err"
// action fails the batch with the injected error, "panic" exercises the
// recover boundary (the batch must report it as a *core.PanicError, never
// crash the process).
var fpBatchJob = faultpoint.New("query.batch.job")

// ctxCheckMask paces the cooperative cancellation checks of the long scans
// (ExtractCFCtx, ExtractCFRangeCtx): one context poll per 4096 node steps,
// the same cadence the interpreter uses.
const ctxCheckMask = 1<<12 - 1

// BatchCtx is Batch with cooperative cancellation and error collection:
// workers stop claiming jobs once the context dies or any job fails, and the
// first error (in claiming order for ties, context.Cause on cancellation)
// is returned after all in-flight jobs finish. A job that panics with a
// *stream.DecodeError — a lazily loaded stream whose deferred decode failed
// on first touch — fails the batch with that typed error; any other panic
// surfaces as a *core.PanicError. Jobs already running when one fails are
// not interrupted (they hold no cancellation hook), so cancellation latency
// is one job.
func BatchCtx(ctx context.Context, workers, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	run := func(i int) (err error) {
		defer recoverQueryPanic(&err)
		if err := fpBatchJob.Hit(); err != nil {
			return err
		}
		return job(i)
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := run(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		return context.Cause(ctx)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// recoverQueryPanic converts the panics a query can legitimately hit into
// returned errors: a lazily loaded stream failing its deferred decode
// (*stream.DecodeError, kept as-is — it names the failing stream), a
// cursor factory refusing budget-dropped data (*CapabilityError, also kept
// typed), and anything else a job does (wrapped as *core.PanicError). The
// query entry points use recoverTyped directly; BatchCtx uses this wider
// net because it runs arbitrary caller code.
func recoverQueryPanic(slot *error) {
	p := recover()
	if p == nil {
		return
	}
	switch t := p.(type) {
	case *stream.DecodeError:
		*slot = t
	case *CapabilityError:
		*slot = t
	default:
		*slot = &core.PanicError{Op: "query job", Value: p}
	}
}

// ExtractCFCtx is ExtractCF with cooperative cancellation (polled every 4096
// node steps) and with deferred-decode failures surfacing as a typed error
// instead of a panic. A cancelled extraction returns the statements emitted
// so far together with context.Cause.
func ExtractCFCtx(ctx context.Context, w *core.WET, tier core.Tier, forward bool, emit func(stmtID int)) (n uint64, err error) {
	defer recoverTyped(&err)
	if ctx == nil {
		ctx = context.Background()
	}
	// A context dead on entry returns immediately: short traces may never
	// reach the periodic poll.
	if ctx.Err() != nil {
		return 0, context.Cause(ctx)
	}
	wk := NewWalker(w, tier)
	var steps uint64
	check := func() bool {
		steps++
		return steps&ctxCheckMask == 0 && ctx.Err() != nil
	}
	if forward {
		wk.SeekStart()
		for wk.Forward() {
			for _, s := range w.Nodes[wk.Node].Stmts {
				if emit != nil {
					emit(s.ID)
				}
				n++
			}
			if check() {
				return n, context.Cause(ctx)
			}
		}
	} else {
		wk.SeekEnd()
		for wk.Backward() {
			stmts := w.Nodes[wk.Node].Stmts
			for i := len(stmts) - 1; i >= 0; i-- {
				if emit != nil {
					emit(stmts[i].ID)
				}
				n++
			}
			if check() {
				return n, context.Cause(ctx)
			}
		}
	}
	return n, nil
}

// ExtractCFRangeCtx is ExtractCFRange with cooperative cancellation, at the
// same 4096-node-step cadence as ExtractCFCtx.
func ExtractCFRangeCtx(ctx context.Context, w *core.WET, tier core.Tier, fromTS, toTS uint32, emit func(stmtID int)) (n uint64, err error) {
	defer recoverTyped(&err)
	if ctx == nil {
		ctx = context.Background()
	}
	if fromTS > toTS {
		return 0, &RangeError{From: fromTS, To: toTS}
	}
	if ctx.Err() != nil {
		return 0, context.Cause(ctx)
	}
	if fromTS < 1 {
		fromTS = 1
	}
	if toTS > w.Time {
		toTS = w.Time
	}
	if fromTS > toTS {
		return 0, nil
	}
	wk := NewWalker(w, tier)
	if err := wk.StartAt(fromTS); err != nil {
		return 0, err
	}
	var steps uint64
	for {
		for _, s := range w.Nodes[wk.Node].Stmts {
			if emit != nil {
				emit(s.ID)
			}
			n++
		}
		if steps++; steps&ctxCheckMask == 0 && ctx.Err() != nil {
			return n, context.Cause(ctx)
		}
		if wk.TS() >= toTS || !wk.Forward() {
			return n, nil
		}
	}
}
