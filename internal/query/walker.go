// Package query implements the paper's §2/§5.2 queries over a WET:
// control-flow trace extraction (forward and backward, from any point),
// per-instruction load value traces, per-instruction load/store address
// traces, and backward/forward WET slices. Every query runs against either
// tier-1 (customized-compressed) or tier-2 (fully compressed) labels.
package query

import (
	"fmt"

	"wet/internal/core"
)

// Walker reconstructs the control flow trace from node timestamps: the node
// executed at time t+1 is the CF successor whose timestamp sequence
// contains t+1 (paper §2, "Control flow path"). Walkers keep one private
// timestamp cursor per node (created lazily), so sequential walks advance
// each cursor monotonically.
type Walker struct {
	w    *core.WET
	tier core.Tier
	seqs []core.Seq
	buf  [walkChunk]uint32 // reusable batch buffer for findForward's scans

	// Node/Ord identify the current node execution; Node < 0 before the
	// first step.
	Node int
	Ord  int
	ts   uint32
}

// NewWalker returns a walker positioned before the start of the trace.
// Every cursor a walker steps is its own (spawned from the WET's immutable
// streams), so any number of walkers — and any other queries — may run
// over one frozen WET concurrently; a single walker is confined to one
// goroutine.
func NewWalker(w *core.WET, tier core.Tier) *Walker {
	return &Walker{w: w, tier: tier, seqs: make([]core.Seq, len(w.Nodes)), Node: -1}
}

func (wk *Walker) seq(node int) core.Seq {
	if wk.seqs[node] == nil {
		wk.seqs[node] = wk.w.TSSeq(wk.w.Nodes[node], wk.tier)
	}
	return wk.seqs[node]
}

// TS returns the timestamp of the current node execution (0 before start).
func (wk *Walker) TS() uint32 { return wk.ts }

// findForward scans node's timestamp cursor for target; it returns the
// ordinal or -1 (cursor is restored past-or-at larger values).
func (wk *Walker) findForward(node int, target uint32) int {
	return findOrdered(wk.seq(node), target, wk.buf[:])
}

// walkChunk is the batch width of findOrdered's long scans: one batched
// decode replaces walkChunk interface-dispatched single steps (and, on a
// segmented trace, walkChunk part lookups per federated cursor), while the
// overshoot a chunk can run past its target stays within one seek of the
// checkpoint spacing.
const walkChunk = 64

// findOrdered locates target in the strictly increasing sequence s, scanning
// from wherever the cursor sits, and returns the element's index or -1. The
// cursor ends exactly where a single-step scan would leave it: just past a
// match, or before the first value above the target — sequential walks then
// find the next target adjacent. Adjacent elements are probed singly (the
// hot case); longer scans decode in batches through buf.
func findOrdered(s core.Seq, target uint32, buf []uint32) int {
	if s.Pos() > 0 {
		// The cursor may sit beyond the target (e.g. after a backward walk).
		v := s.Prev()
		if v == target {
			s.Next()
			return s.Pos() - 1
		}
		if v > target {
			return rewindOrdered(s, target, buf)
		}
		s.Next()
	}
	if s.Pos() >= s.Len() {
		return -1
	}
	v := s.Next()
	if v == target {
		return s.Pos() - 1
	}
	if v > target {
		s.Prev()
		return -1
	}
	for s.Pos() < s.Len() {
		start := s.Pos()
		n := core.SeqNextN(s, buf)
		for i := 0; i < n; i++ {
			if v := buf[i]; v >= target {
				if v == target {
					seqSeek(s, start+i+1)
					return start + i
				}
				seqSeek(s, start+i)
				return -1
			}
		}
	}
	return -1
}

// rewindOrdered is findOrdered's backward half, entered with every value at
// or behind the cursor known to exceed the target: scan back in chunks until
// the target or the first smaller value. Strict monotonicity lets a smaller
// value conclude -1 outright — the element just above it was already seen to
// exceed the target.
func rewindOrdered(s core.Seq, target uint32, buf []uint32) int {
	for s.Pos() > 0 {
		start := s.Pos()
		n := core.SeqPrevN(s, buf)
		for i := 0; i < n; i++ {
			if v := buf[i]; v <= target {
				// buf[i] sits at start-1-i; leave the cursor just past it.
				if v == target {
					seqSeek(s, start-i)
					return start - 1 - i
				}
				seqSeek(s, start-i)
				return -1
			}
		}
	}
	return -1
}

// seqSeek repositions s so the next Next() reads element i, via the Seeker
// fast path when the sequence has one.
func seqSeek(s core.Seq, i int) {
	if sk, ok := s.(core.Seeker); ok {
		sk.Seek(i)
		return
	}
	for s.Pos() > i {
		s.Prev()
	}
	for s.Pos() < i {
		s.Next()
	}
}

// Forward advances to the node executed at ts+1. It returns false at the
// end of the trace.
func (wk *Walker) Forward() bool {
	target := wk.ts + 1
	if target > wk.w.Time {
		return false
	}
	var cands []int
	if wk.Node < 0 {
		cands = []int{wk.w.FirstNode}
	} else {
		cands = wk.w.Nodes[wk.Node].CFNext
	}
	for _, c := range cands {
		if ord := wk.findForward(c, target); ord >= 0 {
			wk.Node, wk.Ord, wk.ts = c, ord, target
			return true
		}
	}
	// Fall back to a global scan (starting mid-trace at an arbitrary point).
	for c := range wk.w.Nodes {
		if ord := wk.findForward(c, target); ord >= 0 {
			wk.Node, wk.Ord, wk.ts = c, ord, target
			return true
		}
	}
	return false
}

// Backward retreats to the node executed at ts-1. It returns false at the
// start of the trace.
func (wk *Walker) Backward() bool {
	if wk.ts <= 1 {
		return false
	}
	target := wk.ts - 1
	var cands []int
	if wk.Node < 0 {
		cands = []int{wk.w.LastNode}
	} else {
		cands = wk.w.Nodes[wk.Node].CFPrev
	}
	for _, c := range cands {
		if ord := wk.findForward(c, target); ord >= 0 {
			wk.Node, wk.Ord, wk.ts = c, ord, target
			return true
		}
	}
	for c := range wk.w.Nodes {
		if ord := wk.findForward(c, target); ord >= 0 {
			wk.Node, wk.Ord, wk.ts = c, ord, target
			return true
		}
	}
	return false
}

// SeekEnd positions the walker after the last execution, ready for a
// backward walk.
func (wk *Walker) SeekEnd() {
	wk.Node = -1
	wk.Ord = 0
	wk.ts = wk.w.Time + 1
}

// SeekStart positions the walker before the first execution.
func (wk *Walker) SeekStart() {
	wk.Node = -1
	wk.Ord = 0
	wk.ts = 0
}

// StartAt positions the walker on the node execution holding timestamp t.
// Deferred-decode failures surface as a *stream.DecodeError, not a panic.
func (wk *Walker) StartAt(t uint32) (err error) {
	defer recoverTyped(&err)
	if t < 1 || t > wk.w.Time {
		return fmt.Errorf("query: timestamp %d outside [1,%d]", t, wk.w.Time)
	}
	for c := range wk.w.Nodes {
		if ord := wk.findForward(c, t); ord >= 0 {
			wk.Node, wk.Ord, wk.ts = c, ord, t
			return nil
		}
	}
	return fmt.Errorf("query: timestamp %d not found", t)
}

// ExtractCF walks the whole control-flow trace in the given direction,
// invoking emit for every executed statement (in per-node static order; the
// node-level order is exact execution order). It returns the number of
// statements visited — times 4 bytes, the paper's CF trace size. On a
// lazily loaded WET a deferred-decode failure panics with a
// *stream.DecodeError (this signature has no error slot); use ExtractCFCtx
// to receive it as a typed error instead.
func ExtractCF(w *core.WET, tier core.Tier, forward bool, emit func(stmtID int)) uint64 {
	wk := NewWalker(w, tier)
	var n uint64
	if forward {
		wk.SeekStart()
		for wk.Forward() {
			for _, s := range w.Nodes[wk.Node].Stmts {
				if emit != nil {
					emit(s.ID)
				}
				n++
			}
		}
	} else {
		wk.SeekEnd()
		for wk.Backward() {
			stmts := w.Nodes[wk.Node].Stmts
			for i := len(stmts) - 1; i >= 0; i-- {
				if emit != nil {
					emit(stmts[i].ID)
				}
				n++
			}
		}
	}
	return n
}
