package query

import (
	"fmt"

	"wet/internal/core"
)

// Instance names one dynamic statement instance in WET coordinates: the
// Ord-th execution of node Node, statement position Pos.
type Instance struct {
	Node, Pos, Ord int
}

// SliceResult is the set of instances reachable along dependence edges from
// the criterion, i.e. the paper's WET slice: it carries control flow (via
// node identity), values (readable via WET.Value), and the dependence
// structure itself.
type SliceResult struct {
	Criterion Instance
	Instances []Instance
	// Edges counts dependence edge instances traversed.
	Edges int
	// PrunedCD counts CD edges skipped without label resolution because the
	// static oracle refuted them (see SliceOptions.CDOracle).
	PrunedCD int
}

// CDOracle answers whether block blk of function fn is statically control
// dependent on the branch ending block branchBlk. sanalysis.Analysis
// satisfies it; query takes the interface so the dependence stays one-way.
type CDOracle interface {
	IsControlDep(fn, branchBlk, blk int) bool
}

// SliceOptions tunes a slice traversal.
type SliceOptions struct {
	// MaxInstances bounds the work (0 = unbounded).
	MaxInstances int
	// CDOracle, when non-nil, prunes CD edges that no static control
	// dependence supports before their labels are resolved. On a certified
	// WET every CD edge is statically supported, so pruning only saves the
	// label-cursor work for cross-function edges (which static control
	// dependence never spans); on an uncertified or damaged WET it keeps
	// semantically impossible control edges out of the slice.
	CDOracle CDOracle
}

// cdPruned reports whether opts' oracle refutes CD edge e: the source must
// end a branch block in the same function as the destination, and that pair
// must be a static control dependence.
func (o SliceOptions) cdPruned(w *core.WET, e *core.Edge) bool {
	if o.CDOracle == nil || e.Kind != core.CD {
		return false
	}
	src := w.Nodes[e.SrcNode].Stmts[e.SrcPos]
	dst := w.Nodes[e.DstNode].Stmts[e.DstPos]
	return src.Fn != dst.Fn || !o.CDOracle.IsControlDep(src.Fn, src.Blk, dst.Blk)
}

// resolveSrc finds the source ordinal of edge e for destination ordinal
// dord, or -1 when the edge did not fire at that execution. It reads the
// edge's labels through q's cached cursor pair, so repeated resolutions of
// the same edge (slicing worklists) reuse one cursor.
func resolveSrc(q *qctx, e *core.Edge, dord int) int {
	w := q.w
	if e.Inferable {
		if dord < w.Nodes[e.DstNode].Execs {
			return dord
		}
		return -1
	}
	dseq, sseq := q.edgeLabels(e)
	target := uint32(dord)
	// Destination ordinals are strictly increasing. Tier-1 storage allows a
	// binary search; compressed streams are scanned from the cursor's
	// current position in the right direction.
	if dra, ok := dseq.(core.RandomAccess); ok {
		sra := sseq.(core.RandomAccess)
		lo, hi := 0, dseq.Len()
		for lo < hi {
			mid := (lo + hi) / 2
			if dra.At(mid) < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < dseq.Len() && dra.At(lo) == target {
			return int(sra.At(lo))
		}
		return -1
	}
	if i := findOrdered(dseq, target, q.buf[:]); i >= 0 {
		return int(core.SeqAt(sseq, i))
	}
	return -1
}

// BackwardSlice computes the backward WET slice of the given instance:
// every instance whose value or control outcome contributed (transitively)
// to it, via DD and CD edges. maxInstances bounds the work (0 = unbounded).
func BackwardSlice(w *core.WET, tier core.Tier, from Instance, maxInstances int) (*SliceResult, error) {
	return BackwardSliceOpts(w, tier, from, SliceOptions{MaxInstances: maxInstances})
}

// BackwardSliceOpts is BackwardSlice with full options, including the
// static-CD pruning oracle. Deferred-decode failures on a lazily loaded WET
// surface as a *stream.DecodeError, not a panic.
func BackwardSliceOpts(w *core.WET, tier core.Tier, from Instance, opts SliceOptions) (res *SliceResult, err error) {
	defer recoverTyped(&err)
	if err := checkInstance(w, from); err != nil {
		return nil, err
	}
	q := newCtx(w, tier)
	res = &SliceResult{Criterion: from}
	seen := map[uint64]bool{pack(from): true}
	work := []Instance{from}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		res.Instances = append(res.Instances, cur)
		if opts.MaxInstances > 0 && len(res.Instances) >= opts.MaxInstances {
			break
		}
		n := w.Nodes[cur.Node]
		for _, ei := range n.InEdges[cur.Pos] {
			e := w.Edges[ei]
			if opts.cdPruned(w, e) {
				res.PrunedCD++
				continue
			}
			sord := resolveSrc(q, e, cur.Ord)
			if sord < 0 {
				continue
			}
			res.Edges++
			src := Instance{Node: e.SrcNode, Pos: e.SrcPos, Ord: sord}
			if k := pack(src); !seen[k] {
				seen[k] = true
				work = append(work, src)
			}
		}
	}
	return res, nil
}

// pack encodes an instance as a map key (nodes < 2^16, positions < 2^16,
// ordinals < 2^32 — comfortably above anything a WET of this scale holds).
func pack(in Instance) uint64 {
	return uint64(in.Node)<<48 | uint64(in.Pos)<<32 | uint64(uint32(in.Ord))
}

// ForwardSlice computes the forward WET slice: every instance whose
// computation was influenced by the given instance. Deferred-decode
// failures surface as a *stream.DecodeError, not a panic.
func ForwardSlice(w *core.WET, tier core.Tier, from Instance, maxInstances int) (res *SliceResult, err error) {
	defer recoverTyped(&err)
	if err := checkInstance(w, from); err != nil {
		return nil, err
	}
	q := newCtx(w, tier)
	res = &SliceResult{Criterion: from}
	seen := map[uint64]bool{pack(from): true}
	work := []Instance{from}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		res.Instances = append(res.Instances, cur)
		if maxInstances > 0 && len(res.Instances) >= maxInstances {
			break
		}
		n := w.Nodes[cur.Node]
		for _, ei := range n.OutEdges[cur.Pos] {
			e := w.Edges[ei]
			// Find every destination execution fed by source ordinal
			// cur.Ord (a value can be used many times).
			if e.Inferable {
				if cur.Ord < w.Nodes[e.DstNode].Execs {
					res.Edges++
					dst := Instance{Node: e.DstNode, Pos: e.DstPos, Ord: cur.Ord}
					if k := pack(dst); !seen[k] {
						seen[k] = true
						work = append(work, dst)
					}
				}
				continue
			}
			// Source ordinals are unordered (a value can be used many times,
			// in any interleaving), so the whole label sequence is scanned —
			// batched, draining the cached cursor in chunks instead of one
			// checkpointed SeqAt per element.
			dseq, sseq := q.edgeLabels(e)
			seqSeek(sseq, 0)
			buf := q.buf[:]
			for base := 0; base < sseq.Len(); {
				got := core.SeqNextN(sseq, buf)
				for i := 0; i < got; i++ {
					if int(buf[i]) != cur.Ord {
						continue
					}
					res.Edges++
					dst := Instance{Node: e.DstNode, Pos: e.DstPos, Ord: int(core.SeqAt(dseq, base+i))}
					if k := pack(dst); !seen[k] {
						seen[k] = true
						work = append(work, dst)
					}
				}
				base += got
			}
		}
	}
	return res, nil
}

func checkInstance(w *core.WET, in Instance) error {
	if in.Node < 0 || in.Node >= len(w.Nodes) {
		return fmt.Errorf("query: node %d out of range", in.Node)
	}
	n := w.Nodes[in.Node]
	if in.Pos < 0 || in.Pos >= len(n.Stmts) {
		return fmt.Errorf("query: position %d out of range in node %d", in.Pos, in.Node)
	}
	if in.Ord < 0 || in.Ord >= n.Execs {
		return fmt.Errorf("query: ordinal %d out of range (node %d ran %d times)", in.Ord, in.Node, n.Execs)
	}
	return nil
}

// InstanceOfTS locates the instance of a static statement executed at the
// node execution holding timestamp ts (a convenience for picking slicing
// criteria from a point in time).
func InstanceOfTS(w *core.WET, tier core.Tier, stmtID int, ts uint32) (in Instance, err error) {
	defer recoverTyped(&err)
	for _, ref := range w.StmtOcc[stmtID] {
		n := w.Nodes[ref.Node]
		seq := w.TSSeq(n, tier)
		for ord := 0; ord < n.Execs; ord++ {
			if core.SeqAt(seq, ord) == ts {
				return Instance{Node: ref.Node, Pos: ref.Pos, Ord: ord}, nil
			}
		}
	}
	return Instance{}, fmt.Errorf("query: statement %d did not execute at ts %d", stmtID, ts)
}

// Chop computes the intersection of the forward slice of `from` and the
// backward slice of `to`: the dynamic instances through which `from`
// influenced `to`. It answers the classic debugging question "how did THIS
// value reach THAT one?" using only the WET's dependence labels.
func Chop(w *core.WET, tier core.Tier, from, to Instance, maxInstances int) (*SliceResult, error) {
	fwd, err := ForwardSlice(w, tier, from, maxInstances)
	if err != nil {
		return nil, err
	}
	inFwd := make(map[uint64]bool, len(fwd.Instances))
	for _, in := range fwd.Instances {
		inFwd[pack(in)] = true
	}
	bwd, err := BackwardSlice(w, tier, to, maxInstances)
	if err != nil {
		return nil, err
	}
	res := &SliceResult{Criterion: to}
	for _, in := range bwd.Instances {
		if inFwd[pack(in)] {
			res.Instances = append(res.Instances, in)
		}
	}
	res.Edges = fwd.Edges + bwd.Edges
	return res, nil
}

// DependenceChain walks a single dependence chain backwards from an
// instance, at each step following the data dependence of the given operand
// index (or the control dependence when opIdx < 0 yields no DD edge),
// recording up to maxLen instances. It is the paper's "chains of data
// dependences ... can all be easily found by traversing the WET" query.
func DependenceChain(w *core.WET, tier core.Tier, from Instance, opIdx, maxLen int) (chain []Instance, err error) {
	defer recoverTyped(&err)
	if err := checkInstance(w, from); err != nil {
		return nil, err
	}
	q := newCtx(w, tier)
	chain = []Instance{from}
	cur := from
	for len(chain) < maxLen {
		n := w.Nodes[cur.Node]
		next := Instance{Node: -1}
		for _, ei := range n.InEdges[cur.Pos] {
			e := w.Edges[ei]
			if e.Kind != core.DD || e.OpIdx != opIdx {
				continue
			}
			if sord := resolveSrc(q, e, cur.Ord); sord >= 0 {
				next = Instance{Node: e.SrcNode, Pos: e.SrcPos, Ord: sord}
				break
			}
		}
		if next.Node < 0 {
			break
		}
		chain = append(chain, next)
		cur = next
		opIdx = 0 // follow the first operand onward
	}
	return chain, nil
}
