package query

import (
	"fmt"
	"sort"

	"wet/internal/core"
	"wet/internal/ir"
)

// Sample is one element of a per-instruction trace: the global timestamp of
// the node execution that produced it and the value (or address).
type Sample struct {
	TS    uint32
	Value int64
}

// occCursor iterates one occurrence of an instruction: the node's timestamp
// sequence plus the group pattern resolve (ts, value) pairs in order.
type occCursor struct {
	w    *core.WET
	tier core.Tier
	node *core.Node
	pos  int
	ts   core.Seq
	pat  core.Seq
	uv   core.Seq
	ord  int
}

func newOccCursor(w *core.WET, tier core.Tier, ref core.StmtRef) (*occCursor, error) {
	n := w.Nodes[ref.Node]
	g := n.Groups[n.GroupOf[ref.Pos]]
	mi := g.ValMemberIndex(ref.Pos)
	if mi < 0 {
		return nil, fmt.Errorf("query: %s has no def port", n.Stmts[ref.Pos])
	}
	return &occCursor{
		w: w, tier: tier, node: n, pos: ref.Pos,
		ts:  w.TSSeq(n, tier),
		pat: w.PatternSeq(g, tier),
		uv:  w.UValSeq(g, mi, tier),
	}, nil
}

// next returns the next (ts, value) sample of this occurrence, or false.
func (c *occCursor) next() (Sample, bool) {
	if c.ord >= c.node.Execs {
		return Sample{}, false
	}
	ts := core.SeqAt(c.ts, c.ord)
	idx := core.SeqAt(c.pat, c.ord)
	v := int64(int32(core.SeqAt(c.uv, int(idx))))
	c.ord++
	return Sample{TS: ts, Value: v}, true
}

// ValueTrace extracts the complete value trace of one static statement in
// execution order, merging its occurrences across WET nodes by timestamp.
// This is the paper's "per instruction load value trace" when the statement
// is a load (Table 7). On a lazily loaded WET, a stream failing its deferred
// decode surfaces as a *stream.DecodeError, not a panic.
func ValueTrace(w *core.WET, tier core.Tier, stmtID int, emit func(Sample)) (count uint64, err error) {
	defer recoverTyped(&err)
	refs := w.StmtOcc[stmtID]
	cursors := make([]*occCursor, 0, len(refs))
	heads := make([]Sample, 0, len(refs))
	for _, ref := range refs {
		c, err := newOccCursor(w, tier, ref)
		if err != nil {
			return 0, err
		}
		if s, ok := c.next(); ok {
			cursors = append(cursors, c)
			heads = append(heads, s)
		}
	}
	for len(cursors) > 0 {
		// Pick the cursor with the smallest head timestamp (occurrence
		// counts are small: one per path containing the block).
		best := 0
		for i := 1; i < len(cursors); i++ {
			if heads[i].TS < heads[best].TS {
				best = i
			}
		}
		if emit != nil {
			emit(heads[best])
		}
		count++
		if s, ok := cursors[best].next(); ok {
			heads[best] = s
		} else {
			cursors[best] = cursors[len(cursors)-1]
			cursors = cursors[:len(cursors)-1]
			heads[best] = heads[len(heads)-1]
			heads = heads[:len(heads)-1]
		}
	}
	return count, nil
}

// LoadValueTraces extracts the value trace of every load instruction
// (Table 7). It returns the total number of samples (×4 bytes = the
// paper's load value trace size).
func LoadValueTraces(w *core.WET, tier core.Tier, emit func(stmtID int, s Sample)) (uint64, error) {
	var total uint64
	for _, st := range w.Prog.Stmts {
		if st.Op != ir.OpLoad {
			continue
		}
		n, err := ValueTrace(w, tier, st.ID, func(s Sample) {
			if emit != nil {
				emit(st.ID, s)
			}
		})
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// addrOperandIndex returns the dependence-operand index of the address
// operand of a load/store, or -1 when the address is an immediate.
func addrOperandIndex(st *ir.Stmt) int {
	if st.Op != ir.OpLoad && st.Op != ir.OpStore {
		return -1
	}
	if !st.A.IsReg {
		return -1
	}
	return 0 // the address register is always the first use
}

// AddressTrace extracts the address trace of one load/store: for every
// execution, the address operand's value (resolved through the DD edge to
// its producer, per the paper: "addresses ... can be obtained by examining
// the <t,v> sequences of statements that produce the operands") plus the
// static displacement. Deferred-decode failures surface as a
// *stream.DecodeError, not a panic.
func AddressTrace(w *core.WET, tier core.Tier, stmtID int, emit func(Sample)) (count uint64, err error) {
	defer recoverTyped(&err)
	st := w.Prog.Stmts[stmtID]
	if st.Op != ir.OpLoad && st.Op != ir.OpStore {
		return 0, fmt.Errorf("query: statement %s is not a memory access", st)
	}
	mask := w.Prog.MemWords - 1
	opIdx := addrOperandIndex(st)
	q := newCtx(w, tier)
	var samples []Sample
	for _, ref := range w.StmtOcc[stmtID] {
		n := w.Nodes[ref.Node]
		ts := w.TSSeq(n, tier)
		if opIdx < 0 {
			// Constant address: one sample per execution.
			for ord := 0; ord < n.Execs; ord++ {
				samples = append(samples, Sample{TS: core.SeqAt(ts, ord), Value: (st.A.Imm + st.Off) & mask})
			}
			continue
		}
		// Resolve through each incoming DD edge on the address operand; the
		// producer's value reader is hoisted out of the per-instance loop.
		for _, ei := range n.InEdges[ref.Pos] {
			e := w.Edges[ei]
			if e.Kind != core.DD || e.OpIdx != opIdx {
				continue
			}
			srcNode := w.Nodes[e.SrcNode]
			vr, err := q.valueReader(srcNode, e.SrcPos)
			if err != nil {
				return 0, err
			}
			if e.Inferable {
				for ord := 0; ord < n.Execs; ord++ {
					samples = append(samples, Sample{TS: core.SeqAt(ts, ord), Value: (vr.at(ord) + st.Off) & mask})
				}
				continue
			}
			dseq, sseq := q.edgeLabels(e)
			for i := 0; i < dseq.Len(); i++ {
				dord := core.SeqAt(dseq, i)
				sord := core.SeqAt(sseq, i)
				samples = append(samples, Sample{TS: core.SeqAt(ts, int(dord)), Value: (vr.at(int(sord)) + st.Off) & mask})
			}
		}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].TS < samples[j].TS })
	if emit != nil {
		for _, s := range samples {
			emit(s)
		}
	}
	return uint64(len(samples)), nil
}

// AddressTraces extracts the address trace of every load and store
// (Table 8). It returns the total number of samples.
func AddressTraces(w *core.WET, tier core.Tier, emit func(stmtID int, s Sample)) (uint64, error) {
	var total uint64
	for _, st := range w.Prog.Stmts {
		if st.Op != ir.OpLoad && st.Op != ir.OpStore {
			continue
		}
		n, err := AddressTrace(w, tier, st.ID, func(s Sample) {
			if emit != nil {
				emit(st.ID, s)
			}
		})
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}
