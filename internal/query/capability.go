package query

import (
	"wet/internal/core"
	"wet/internal/stream"
)

// CapabilityError is the typed refusal a query returns when it needs data a
// byte-budgeted freeze discarded (dropped value groups or dependence-edge
// labels, widened timestamps). A degraded trace answers what it still can;
// what it cannot, it refuses with this error — never with wrong data. Check
// with errors.As against *query.CapabilityError; the Capability field holds
// the stable core.Cap* identifier that was lost.
type CapabilityError = core.CapabilityError

// recoverTyped is the deferred guard of the query entry points: it converts
// the two typed panics a query can legitimately hit on a loaded trace — a
// lazily loaded stream failing its deferred decode (*stream.DecodeError)
// and a cursor factory refusing budget-dropped data (*CapabilityError) —
// into returned errors, re-raising anything else.
func recoverTyped(err *error) {
	switch p := recover().(type) {
	case nil:
	case *stream.DecodeError:
		if *err == nil {
			*err = p
		}
	case *CapabilityError:
		if *err == nil {
			*err = p
		}
	default:
		panic(p)
	}
}
