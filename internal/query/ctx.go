package query

import (
	"fmt"

	"wet/internal/core"
)

// qctx caches the detached cursors one logical query needs, so every label
// sequence it touches is materialized once per query rather than once per
// access. Spawning a tier-2 cursor copies the stream's predictor tables;
// queries that revisit the same edge or group (slicing worklists, DOT
// re-walks, address resolution) would otherwise pay that copy in their
// inner loop.
//
// A qctx is confined to one goroutine — the cursors it holds are. That is
// the whole concurrency story: independent queries against the same frozen
// WET each build a private qctx, and the WET itself is never mutated.
type qctx struct {
	w     *core.WET
	tier  core.Tier
	edges map[*core.Edge][2]core.Seq
	vals  map[uint64]*valReader
	buf   [walkChunk]uint32 // reusable batch buffer for ordered-label scans
}

func newCtx(w *core.WET, tier core.Tier) *qctx {
	return &qctx{w: w, tier: tier}
}

// edgeLabels is WET.EdgeLabels with per-query cursor reuse: the first call
// for an edge spawns the (dst, src) cursor pair, later calls return the
// same pair. Inferable edges return (nil, nil).
func (q *qctx) edgeLabels(e *core.Edge) (dst, src core.Seq) {
	if e.Inferable {
		return nil, nil
	}
	if p, ok := q.edges[e]; ok {
		return p[0], p[1]
	}
	d, s := q.w.EdgeLabels(e, q.tier)
	if q.edges == nil {
		q.edges = map[*core.Edge][2]core.Seq{}
	}
	q.edges[e] = [2]core.Seq{d, s}
	return d, s
}

// valReader resolves one statement occurrence's values through hoisted
// pattern and unique-value cursors (the two cursors WET.Value would spawn
// per call).
type valReader struct {
	pat, uv core.Seq
}

// valueReader returns this query's cached reader for the statement at
// (n, pos), or an error when the statement has no def port.
func (q *qctx) valueReader(n *core.Node, pos int) (*valReader, error) {
	key := uint64(n.ID)<<32 | uint64(uint32(pos))
	if r, ok := q.vals[key]; ok {
		return r, nil
	}
	g := n.Groups[n.GroupOf[pos]]
	mi := g.ValMemberIndex(pos)
	if mi < 0 {
		return nil, fmt.Errorf("query: %s has no def port", n.Stmts[pos])
	}
	r := &valReader{pat: q.w.PatternSeq(g, q.tier), uv: q.w.UValSeq(g, mi, q.tier)}
	if q.vals == nil {
		q.vals = map[uint64]*valReader{}
	}
	q.vals[key] = r
	return r, nil
}

// at returns the value produced at the occurrence's ord-th execution.
func (r *valReader) at(ord int) int64 {
	idx := core.SeqAt(r.pat, ord)
	return int64(int32(core.SeqAt(r.uv, int(idx))))
}
