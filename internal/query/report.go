package query

import (
	"fmt"
	"io"
	"sort"

	"wet/internal/core"
)

// HotPath summarizes one Ball–Larus path's execution frequency — the "hot
// program paths" analysis the paper cites as a primary consumer of control
// flow profiles (Larus/Ball-Larus; used for path-sensitive optimization).
type HotPath struct {
	Node     int
	Fn       int
	PathID   int64
	Execs    int
	Stmts    int     // statements per execution
	Coverage float64 // fraction of all dynamic statements spent in this path
}

// HotPaths ranks the WET's path nodes by the dynamic statements they cover
// and returns the top n (all when n <= 0).
func HotPaths(w *core.WET, n int) []HotPath {
	var out []HotPath
	var total uint64
	for _, node := range w.Nodes {
		total += uint64(node.Execs) * uint64(len(node.Stmts))
	}
	for _, node := range w.Nodes {
		hp := HotPath{
			Node: node.ID, Fn: node.Fn, PathID: node.PathID,
			Execs: node.Execs, Stmts: len(node.Stmts),
		}
		if total > 0 {
			hp.Coverage = float64(uint64(node.Execs)*uint64(len(node.Stmts))) / float64(total)
		}
		out = append(out, hp)
	}
	sort.Slice(out, func(i, j int) bool {
		return uint64(out[i].Execs)*uint64(out[i].Stmts) > uint64(out[j].Execs)*uint64(out[j].Stmts)
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// WriteDOT renders a slice result as a Graphviz digraph: one node per
// dynamic instance (labeled with its statement and, when available, its
// value) and one edge per dependence instance traversed during a re-walk of
// the slice. Output is deterministic. Deferred-decode failures surface as a
// *stream.DecodeError, not a panic.
func WriteDOT(w *core.WET, tier core.Tier, res *SliceResult, out io.Writer) (err error) {
	defer recoverTyped(&err)
	inSlice := map[uint64]bool{}
	for _, in := range res.Instances {
		inSlice[pack(in)] = true
	}
	name := func(in Instance) string {
		return fmt.Sprintf("i%d_%d_%d", in.Node, in.Pos, in.Ord)
	}
	if _, err := fmt.Fprintln(out, "digraph wetslice {"); err != nil {
		return err
	}
	fmt.Fprintln(out, `  rankdir=BT; node [shape=box, fontname="monospace"];`)

	q := newCtx(w, tier)
	insts := append([]Instance(nil), res.Instances...)
	sort.Slice(insts, func(i, j int) bool { return pack(insts[i]) < pack(insts[j]) })
	for _, in := range insts {
		n := w.Nodes[in.Node]
		s := n.Stmts[in.Pos]
		label := fmt.Sprintf("%s\\nord=%d", s, in.Ord)
		if s.Op.HasDef() && s.Dest >= 0 {
			if vr, err := q.valueReader(n, in.Pos); err == nil {
				label = fmt.Sprintf("%s = %d\\nord=%d", s, vr.at(in.Ord), in.Ord)
			}
		}
		style := ""
		if in == res.Criterion {
			style = ", style=filled, fillcolor=lightgrey"
		}
		fmt.Fprintf(out, "  %s [label=\"%s\"%s];\n", name(in), label, style)
	}
	// Re-resolve the dependence edges among slice members.
	for _, in := range insts {
		n := w.Nodes[in.Node]
		for _, ei := range n.InEdges[in.Pos] {
			e := w.Edges[ei]
			sord := resolveSrc(q, e, in.Ord)
			if sord < 0 {
				continue
			}
			src := Instance{Node: e.SrcNode, Pos: e.SrcPos, Ord: sord}
			if !inSlice[pack(src)] {
				continue
			}
			attr := ""
			if e.Kind == core.CD {
				attr = " [style=dashed, label=\"cd\"]"
			}
			fmt.Fprintf(out, "  %s -> %s%s;\n", name(src), name(in), attr)
		}
	}
	_, err = fmt.Fprintln(out, "}")
	return err
}
