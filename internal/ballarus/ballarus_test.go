package ballarus

import (
	"fmt"
	"testing"

	"wet/internal/ir"
)

func straightLine(t *testing.T) *ir.Func {
	t.Helper()
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	a := fb.ConstReg(1)
	b := fb.NewReg()
	fb.Add(b, ir.R(a), ir.Imm(2))
	fb.Output(ir.R(b))
	fb.Halt()
	p.MustFinalize()
	return p.Funcs[0]
}

func diamondFunc(t *testing.T) *ir.Func {
	t.Helper()
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	c := fb.ConstReg(1)
	x := fb.NewReg()
	fb.If(ir.R(c), func() { fb.Const(x, 1) }, func() { fb.Const(x, 2) })
	fb.Output(ir.R(x))
	fb.Halt()
	p.MustFinalize()
	return p.Funcs[0]
}

func loopFn(t *testing.T) *ir.Func {
	t.Helper()
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	x := fb.ConstReg(5)
	c := fb.NewReg()
	fb.While(func() ir.Operand {
		fb.Gt(c, ir.R(x), ir.Imm(0))
		return ir.R(c)
	}, func() {
		fb.Sub(x, ir.R(x), ir.Imm(1))
	})
	fb.Halt()
	p.MustFinalize()
	return p.Funcs[0]
}

func TestStraightLineSinglePath(t *testing.T) {
	f := straightLine(t)
	pp, err := New(f)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if pp.NumPaths != 1 {
		t.Fatalf("NumPaths = %d, want 1", pp.NumPaths)
	}
	seq, err := pp.Blocks(0)
	if err != nil {
		t.Fatalf("Blocks(0): %v", err)
	}
	if len(seq) != len(f.Blocks) {
		t.Fatalf("path 0 = %v, want all %d blocks", seq, len(f.Blocks))
	}
}

func TestDiamondTwoPaths(t *testing.T) {
	f := diamondFunc(t)
	pp, err := New(f)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if pp.NumPaths != 2 {
		t.Fatalf("NumPaths = %d, want 2", pp.NumPaths)
	}
	seen := map[string]bool{}
	for id := int64(0); id < pp.NumPaths; id++ {
		seq, err := pp.Blocks(id)
		if err != nil {
			t.Fatalf("Blocks(%d): %v", id, err)
		}
		seen[fmt.Sprint(seq)] = true
		if seq[0] != 0 {
			t.Fatalf("path %d does not start at entry: %v", id, seq)
		}
	}
	if len(seen) != 2 {
		t.Fatalf("paths not distinct: %v", seen)
	}
}

func TestAllPathIDsDecodeUniquely(t *testing.T) {
	for name, fn := range map[string]func(*testing.T) *ir.Func{
		"straight": straightLine, "diamond": diamondFunc, "loop": loopFn,
	} {
		f := fn(t)
		pp, err := New(f)
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		seen := map[string]int64{}
		for id := int64(0); id < pp.NumPaths; id++ {
			seq, err := pp.Blocks(id)
			if err != nil {
				t.Fatalf("%s: Blocks(%d): %v", name, id, err)
			}
			key := fmt.Sprint(seq)
			if prev, dup := seen[key]; dup {
				t.Fatalf("%s: paths %d and %d decode to same sequence %v", name, prev, id, seq)
			}
			seen[key] = id
		}
	}
}

// walk simulates an execution of f, driving the tracker, and returns both
// the executed block sequence and the concatenation of decoded paths.
// branchAt decides Br outcomes given (blockID, visitCount).
func walk(t *testing.T, f *ir.Func, pp *Profile, branchAt func(int, int) bool, maxSteps int) (executed []int, decoded []int) {
	t.Helper()
	tr := pp.NewTracker()
	visits := map[int]int{}
	cur := 0
	flush := func(id int64) {
		seq, err := pp.Blocks(id)
		if err != nil {
			t.Fatalf("decode path %d: %v", id, err)
		}
		decoded = append(decoded, seq...)
	}
	for steps := 0; ; steps++ {
		if steps > maxSteps {
			t.Fatalf("walk did not terminate in %d steps", maxSteps)
		}
		executed = append(executed, cur)
		b := f.Blocks[cur]
		switch b.Term().Op {
		case ir.OpHalt, ir.OpRet:
			flush(tr.Finish(cur))
			return executed, decoded
		case ir.OpJmp:
			if id, done := tr.Take(cur, 0); done {
				flush(id)
			}
			cur = b.Succs[0]
		case ir.OpBr:
			idx := 1
			if branchAt(cur, visits[cur]) {
				idx = 0
			}
			visits[cur]++
			if id, done := tr.Take(cur, idx); done {
				flush(id)
			}
			cur = b.Succs[idx]
		default:
			t.Fatalf("unexpected terminator %s", b.Term())
		}
	}
}

func TestTrackerReconstructsExecution(t *testing.T) {
	f := loopFn(t)
	pp, err := New(f)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Loop runs 5 times: branch taken (true) 5 times then false.
	executed, decoded := walk(t, f, pp, func(blk, visit int) bool { return visit < 5 }, 1000)
	if fmt.Sprint(executed) != fmt.Sprint(decoded) {
		t.Fatalf("decoded paths do not reconstruct execution:\nexec   %v\ndecode %v", executed, decoded)
	}
}

func TestTrackerPathCountLoop(t *testing.T) {
	f := loopFn(t)
	pp, err := New(f)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	completions := 0
	tr := pp.NewTracker()
	cur := 0
	visits := 0
	for {
		b := f.Blocks[cur]
		op := b.Term().Op
		if op == ir.OpHalt {
			tr.Finish(cur)
			completions++
			break
		}
		idx := 0
		if op == ir.OpBr {
			if visits < 5 {
				idx = 0
			} else {
				idx = 1
			}
			visits++
		}
		if _, done := tr.Take(cur, idx); done {
			completions++
		}
		cur = b.Succs[idx]
	}
	// 5 iterations: each back edge completes a path, plus the final path.
	if completions != 6 {
		t.Fatalf("completions = %d, want 6", completions)
	}
}

// TestPaperExampleReduction mirrors the paper's Figure 1/2 claim in spirit:
// executing a loop body k times yields k+1 path executions but ~k*m block
// executions, so Ball–Larus timestamps are ~m times fewer.
func TestPaperExampleReduction(t *testing.T) {
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	s := fb.ConstReg(0)
	parity := fb.NewReg()
	tmp := fb.NewReg()
	fb.For(ir.Imm(0), ir.Imm(50), ir.Imm(1), func(i ir.Reg) {
		fb.Mod(parity, ir.R(i), ir.Imm(2))
		fb.If(ir.R(parity), func() {
			fb.Add(s, ir.R(s), ir.R(i))
		}, func() {
			fb.Mul(tmp, ir.R(i), ir.Imm(3))
			fb.Add(s, ir.R(s), ir.R(tmp))
		})
	})
	fb.Output(ir.R(s))
	fb.Halt()
	p.MustFinalize()
	f := p.Funcs[0]
	pp, err := New(f)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	branch := func(blk, visit int) bool {
		b := f.Blocks[blk]
		// Loop header: continue while visit < 50. Parity branch: odd i.
		if b.Succs[1] == len(f.Blocks)-1 || visitIsLoopHead(f, blk) {
			return visit < 50
		}
		return visit%2 == 1 // parity of i
	}
	executed, decoded := walk(t, f, pp, branch, 100000)
	if fmt.Sprint(executed) != fmt.Sprint(decoded) {
		t.Fatalf("reconstruction mismatch (len %d vs %d)", len(executed), len(decoded))
	}
}

// visitIsLoopHead reports whether blk is the head of the For loop (the
// branch whose false edge leaves the loop toward the function exit).
func visitIsLoopHead(f *ir.Func, blk int) bool {
	b := f.Blocks[blk]
	if b.Term().Op != ir.OpBr {
		return false
	}
	// Heuristic for this test's shape: the loop head is the first branch.
	for _, other := range f.Blocks {
		if other.Term().Op == ir.OpBr {
			return other.ID == blk
		}
	}
	return false
}

func TestBlocksRejectsBadID(t *testing.T) {
	f := diamondFunc(t)
	pp, err := New(f)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := pp.Blocks(-1); err == nil {
		t.Fatal("Blocks(-1) succeeded")
	}
	if _, err := pp.Blocks(pp.NumPaths); err == nil {
		t.Fatal("Blocks(NumPaths) succeeded")
	}
}

func TestCallEdgeTerminatesPath(t *testing.T) {
	p := ir.NewProgram(1024)
	g := p.NewFunc("g", 1)
	r := g.NewReg()
	g.Add(r, ir.R(g.Param(0)), ir.Imm(1))
	g.Ret(ir.R(r))
	fb := p.NewFunc("main", 0)
	d := fb.NewReg()
	fb.Call(d, "g", ir.Imm(1))
	fb.Output(ir.R(d))
	fb.Halt()
	p.Entry = 1
	p.MustFinalize()
	main := p.Funcs[1]
	pp, err := New(main)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tr := pp.NewTracker()
	id1 := tr.CompleteAtCall(0)
	seq, err := pp.Blocks(id1)
	if err != nil {
		t.Fatalf("Blocks(%d): %v", id1, err)
	}
	if len(seq) != 1 || seq[0] != 0 {
		t.Fatalf("caller pre-call path = %v, want [0]", seq)
	}
	tr.ResumeAfterCall(0)
	id2 := tr.Finish(1)
	seq, err = pp.Blocks(id2)
	if err != nil {
		t.Fatalf("Blocks(%d): %v", id2, err)
	}
	if len(seq) != 1 || seq[0] != 1 {
		t.Fatalf("post-call path = %v, want [1]", seq)
	}
}

func TestPathExplosionRejected(t *testing.T) {
	// 40 sequential two-way branches => 2^40 paths > MaxPaths.
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	c := fb.ConstReg(1)
	x := fb.NewReg()
	for i := 0; i < 40; i++ {
		fb.If(ir.R(c), func() { fb.Const(x, 1) }, func() { fb.Const(x, 2) })
	}
	fb.Halt()
	p.MustFinalize()
	if _, err := New(p.Funcs[0]); err == nil {
		t.Fatal("New accepted a function with 2^40 paths")
	}
}

func TestPerBlockMode(t *testing.T) {
	f := loopFn(t)
	pp, err := NewOpt(f, true)
	if err != nil {
		t.Fatal(err)
	}
	// Every path is a single block.
	for id := int64(0); id < pp.NumPaths; id++ {
		seq, err := pp.Blocks(id)
		if err != nil {
			t.Fatalf("Blocks(%d): %v", id, err)
		}
		if len(seq) > 1 {
			t.Fatalf("per-block path %d spans %v", id, seq)
		}
	}
	// A tracker walk completes one path per block executed.
	tr := pp.NewTracker()
	completions := 0
	cur := 0
	visits := 0
	for {
		b := f.Blocks[cur]
		if b.Term().Op == ir.OpHalt {
			tr.Finish(cur)
			completions++
			break
		}
		idx := 0
		if b.Term().Op == ir.OpBr {
			if visits >= 5 {
				idx = 1
			}
			visits++
		}
		if _, done := tr.Take(cur, idx); done {
			completions++
		}
		cur = b.Succs[idx]
	}
	// Executed blocks: entry + 6*(head) + 5*(body) + exit-ish; just assert
	// completions equals the number of blocks executed.
	if completions < 10 {
		t.Fatalf("completions = %d, want one per executed block", completions)
	}
}

func TestBackEdgeBeyondCallContinuation(t *testing.T) {
	// A loop reachable only through a call continuation must still be
	// classified (regression for the full-graph DFS fix).
	p := ir.NewProgram(1024)
	g := p.NewFunc("g", 1)
	g.Ret(ir.R(g.Param(0)))
	fb := p.NewFunc("main", 0)
	d := fb.NewReg()
	fb.Call(d, "g", ir.Imm(3))
	c := fb.NewReg()
	fb.While(func() ir.Operand {
		fb.Gt(c, ir.R(d), ir.Imm(0))
		return ir.R(c)
	}, func() {
		fb.Sub(d, ir.R(d), ir.Imm(1))
	})
	fb.Halt()
	p.Entry = 1
	p.MustFinalize()
	if _, err := New(p.Funcs[1]); err != nil {
		t.Fatalf("New: %v", err)
	}
}
