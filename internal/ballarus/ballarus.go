// Package ballarus implements Ball–Larus efficient path profiling
// (Ball & Larus, MICRO 1996), which the WET representation uses to reduce
// the number of timestamps: a WET node is a Ball–Larus path, and a single
// timestamp is shared by every statement in one execution of the path.
//
// The classic construction: loop back edges (and, in this IR, the
// call-continuation edges, so that path executions are totally ordered in
// time) are removed from the CFG and replaced by surrogate edges from a
// virtual ENTRY and to a virtual EXIT. The resulting DAG's paths are
// numbered 0..NumPaths-1 by assigning each edge an increment such that
// summing increments along any ENTRY→EXIT path yields a unique, dense id.
package ballarus

import (
	"fmt"
	"sort"
	"sync"

	"wet/internal/ir"
)

// MaxPaths bounds the number of static Ball–Larus paths per function. The
// bound keeps path ids in int32 range; realistic IR functions stay far
// below it.
const MaxPaths = int64(1) << 31

// EdgeInfo classifies one CFG edge (u, succIdx) for the runtime tracker.
type EdgeInfo struct {
	Removed  bool  // true for back edges and call-continuation edges
	Val      int64 // DAG increment (Removed == false)
	ExitVal  int64 // increment of the surrogate u→EXIT edge (Removed == true)
	ResetVal int64 // increment of the surrogate ENTRY→v edge (Removed == true)
}

// dagEdge is an edge of the acyclic path-numbering graph.
type dagEdge struct {
	to  int
	val int64
}

// Profile holds the static path-numbering data for one function.
type Profile struct {
	F        *ir.Func
	NumPaths int64

	// Edges[u][i] classifies CFG edge u -> F.Blocks[u].Succs[i].
	Edges [][]EdgeInfo
	// EntryVal is the increment of the ENTRY -> entry-block edge (the path
	// register's initial value on function entry).
	EntryVal int64
	// FinalVal[u] is the increment of u's edge to EXIT for blocks ending in
	// ret/halt (-1 when u has no such edge).
	FinalVal []int64

	dagSuccs [][]dagEdge // by DAG node; blocks 0..n-1, EXIT=n, ENTRY=n+1
	exit     int
	entry    int

	mu      sync.Mutex      // guards decoded (Blocks may run concurrently)
	decoded map[int64][]int // path id -> executed block sequence (lazy)
}

// New numbers the Ball–Larus paths of f. It fails if the function's static
// path count exceeds MaxPaths.
func New(f *ir.Func) (*Profile, error) { return NewOpt(f, false) }

// NewOpt numbers paths with an option: perBlock treats every CFG edge as
// path-terminating, so each "path" is a single basic block. This recovers
// the paper's pre-optimization representation (one timestamp per basic
// block execution) and exists for the Ball–Larus-vs-basic-block ablation.
func NewOpt(f *ir.Func, perBlock bool) (*Profile, error) {
	n := len(f.Blocks)
	p := &Profile{
		F:        f,
		Edges:    make([][]EdgeInfo, n),
		FinalVal: make([]int64, n),
		exit:     n,
		entry:    n + 1,
		decoded:  map[int64][]int{},
	}
	for i := range p.FinalVal {
		p.FinalVal[i] = -1
	}

	removed := p.findRemovedEdges(perBlock)

	// Build the DAG successor lists. Per block: surviving CFG successors in
	// CFG order, then at most one surrogate edge to EXIT, or the real edge
	// to EXIT for ret/halt terminators.
	p.dagSuccs = make([][]dagEdge, n+2)
	entryTargets := map[int]bool{}
	for _, b := range f.Blocks {
		u := b.ID
		needExit := false
		for i, v := range b.Succs {
			if removed[edgeKey(u, i)] {
				needExit = true
				entryTargets[v] = true
				continue
			}
			p.dagSuccs[u] = append(p.dagSuccs[u], dagEdge{to: v})
		}
		switch b.Term().Op {
		case ir.OpRet, ir.OpHalt:
			needExit = true
		}
		if needExit {
			p.dagSuccs[u] = append(p.dagSuccs[u], dagEdge{to: p.exit})
		}
	}
	// ENTRY: the real start edge first, then surrogate starts in block order.
	p.dagSuccs[p.entry] = append(p.dagSuccs[p.entry], dagEdge{to: 0})
	var starts []int
	for v := range entryTargets {
		if v != 0 { // a surrogate to the entry block duplicates the start edge
			starts = append(starts, v)
		}
	}
	sort.Ints(starts)
	for _, v := range starts {
		p.dagSuccs[p.entry] = append(p.dagSuccs[p.entry], dagEdge{to: v})
	}

	if err := p.numberPaths(); err != nil {
		return nil, err
	}
	p.classifyEdges(removed)
	return p, nil
}

func edgeKey(u, succIdx int) int64 { return int64(u)<<32 | int64(succIdx) }

// findRemovedEdges marks back edges (DFS retreat edges to an on-stack node)
// and call-continuation edges for removal.
func (p *Profile) findRemovedEdges(perBlock bool) map[int64]bool {
	f := p.F
	removed := map[int64]bool{}
	if perBlock {
		for _, b := range f.Blocks {
			for i := range b.Succs {
				removed[edgeKey(b.ID, i)] = true
			}
		}
		return removed
	}
	for _, b := range f.Blocks {
		// Calls and sync operations terminate their Ball-Larus path: the
		// effect happens between the path that ends at the op and the path
		// that resumes at its continuation (for sync ops, possibly with
		// other threads' paths in between).
		if op := b.Term().Op; op == ir.OpCall || op.IsSync() {
			removed[edgeKey(b.ID, 0)] = true
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(f.Blocks))
	type frame struct{ node, next int }
	// A full-graph DFS: blocks reachable only through removed call edges
	// still carry classifiable loops, so every component must be walked
	// (starting at the entry first keeps the common case's tree shape).
	for start := 0; start < len(f.Blocks); start++ {
		if color[start] != white {
			continue
		}
		stack := []frame{{start, 0}}
		color[start] = gray
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			b := f.Blocks[fr.node]
			if fr.next < len(b.Succs) {
				i := fr.next
				v := b.Succs[i]
				fr.next++
				if removed[edgeKey(fr.node, i)] {
					continue
				}
				switch color[v] {
				case gray:
					removed[edgeKey(fr.node, i)] = true
				case white:
					color[v] = gray
					stack = append(stack, frame{v, 0})
				}
				continue
			}
			color[fr.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return removed
}

// numberPaths computes NumPaths per DAG node in reverse topological order
// and assigns cumulative edge increments.
func (p *Profile) numberPaths() error {
	num := make([]int64, len(p.dagSuccs))
	state := make([]int, len(p.dagSuccs)) // 0 unvisited, 1 in progress, 2 done
	var visit func(u int) error
	visit = func(u int) error {
		switch state[u] {
		case 1:
			return fmt.Errorf("ballarus: %s: cycle through DAG node %d", p.F.Name, u)
		case 2:
			return nil
		}
		state[u] = 1
		if u == p.exit {
			num[u] = 1
		} else {
			var total int64
			for i := range p.dagSuccs[u] {
				e := &p.dagSuccs[u][i]
				if err := visit(e.to); err != nil {
					return err
				}
				e.val = total
				total += num[e.to]
				if total > MaxPaths {
					return fmt.Errorf("ballarus: %s has more than %d paths", p.F.Name, MaxPaths)
				}
			}
			if total == 0 {
				// A node with no DAG successors that is not EXIT would make
				// paths through it unnumberable; it must be unreachable.
				total = 1
			}
			num[u] = total
		}
		state[u] = 2
		return nil
	}
	if err := visit(p.entry); err != nil {
		return err
	}
	p.NumPaths = num[p.entry]
	return nil
}

// classifyEdges fills the runtime EdgeInfo tables from the DAG values.
func (p *Profile) classifyEdges(removed map[int64]bool) {
	dagVal := func(u, v int) (int64, bool) {
		for _, e := range p.dagSuccs[u] {
			if e.to == v {
				return e.val, true
			}
		}
		return 0, false
	}
	exitVal := map[int]int64{}
	for _, b := range p.F.Blocks {
		if v, ok := dagVal(b.ID, p.exit); ok {
			exitVal[b.ID] = v
		}
	}
	resetVal := map[int]int64{}
	for _, e := range p.dagSuccs[p.entry] {
		resetVal[e.to] = e.val
	}
	p.EntryVal = resetVal[0]

	for _, b := range p.F.Blocks {
		u := b.ID
		infos := make([]EdgeInfo, len(b.Succs))
		for i, v := range b.Succs {
			if removed[edgeKey(u, i)] {
				infos[i] = EdgeInfo{Removed: true, ExitVal: exitVal[u], ResetVal: resetVal[v]}
			} else {
				val, ok := dagVal(u, v)
				if !ok {
					// Unreachable edge; it can never be taken at runtime.
					val = 0
				}
				infos[i] = EdgeInfo{Val: val}
			}
		}
		p.Edges[u] = infos
		switch b.Term().Op {
		case ir.OpRet, ir.OpHalt:
			p.FinalVal[u] = exitVal[u]
		}
	}
}

// Blocks decodes a path id into its executed basic-block sequence. Results
// are cached; the returned slice must not be modified. Blocks is safe for
// concurrent use (parallel section decode calls it from worker goroutines).
func (p *Profile) Blocks(pathID int64) ([]int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if seq, ok := p.decoded[pathID]; ok {
		return seq, nil
	}
	if pathID < 0 || pathID >= p.NumPaths {
		return nil, fmt.Errorf("ballarus: %s: path id %d out of range [0,%d)", p.F.Name, pathID, p.NumPaths)
	}
	r := pathID
	node := p.entry
	var seq []int
	for node != p.exit {
		succs := p.dagSuccs[node]
		if len(succs) == 0 {
			return nil, fmt.Errorf("ballarus: %s: decoding stuck at node %d (path %d)", p.F.Name, node, pathID)
		}
		// Choose the successor with the largest increment <= r.
		best := -1
		for i, e := range succs {
			if e.val <= r && (best < 0 || e.val > succs[best].val) {
				best = i
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("ballarus: %s: no edge from node %d fits remainder %d (path %d)", p.F.Name, node, r, pathID)
		}
		r -= succs[best].val
		node = succs[best].to
		if node != p.exit {
			seq = append(seq, node)
		}
	}
	p.decoded[pathID] = seq
	return seq, nil
}

// Tracker accumulates the runtime path register for one stack frame.
type Tracker struct {
	p *Profile
	r int64
}

// NewTracker returns a tracker positioned at function entry (the first path
// begins at the entry block).
func (p *Profile) NewTracker() Tracker { return Tracker{p: p, r: p.EntryVal} }

// Take processes CFG edge (u, succIdx). If the edge terminates a path (back
// edge), it returns the completed path id and true, and the tracker begins
// the next path. Call edges must use CompleteAtCall/ResumeAfterCall instead
// so the completion can be emitted before the callee runs.
func (t *Tracker) Take(u, succIdx int) (pathID int64, completed bool) {
	e := &t.p.Edges[u][succIdx]
	if e.Removed {
		id := t.r + e.ExitVal
		t.r = e.ResetVal
		return id, true
	}
	t.r += e.Val
	return 0, false
}

// CompleteAtCall completes the current path at call-terminated block u and
// returns its id. The caller must invoke ResumeAfterCall when control comes
// back.
func (t *Tracker) CompleteAtCall(u int) int64 {
	e := &t.p.Edges[u][0]
	return t.r + e.ExitVal
}

// ResumeAfterCall begins the path that starts at the continuation block of
// call-terminated block u.
func (t *Tracker) ResumeAfterCall(u int) {
	t.r = t.p.Edges[u][0].ResetVal
}

// Finish completes the final path of the frame at ret/halt block u.
func (t *Tracker) Finish(u int) int64 {
	return t.r + t.p.FinalVal[u]
}
