// Package racecheck detects data races directly on the compressed
// concurrency streams of a WET (DESIGN.md §9). It never rebuilds a
// per-event trace in memory: the sync-event and shared-access stream
// families are merge-walked once through detached cursors (core.WET.ConcSeq),
// so at tier 2 the working set is the cursor state plus per-address
// frontier summaries — the same access discipline the other queries use,
// provable with stream.ReadSeekStats.
//
// Three rules are reported:
//
//	RC001 — write-write race: two writes to the same shared word by
//	        different threads, unordered by happens-before.
//	RC002 — read-write race: a read and a write to the same shared word by
//	        different threads, unordered by happens-before.
//	RC003 — lockset-only candidate: the pair IS happens-before ordered, but
//	        only through lock release/acquire timing (not by the fork-join
//	        structure), and the two accesses hold no lock in common. The
//	        ordering is a property of this schedule, not of the program, so
//	        the pair is reported as a candidate rather than a definite race.
//
// Happens-before is computed with per-thread vector clocks indexed by the
// WET's global path timestamps: spawn edges carry the parent's clock into
// the child, join edges carry the child's final clock back, and lock
// release/acquire pairs transfer a per-lock clock. A second clock family
// tracks the fork-join edges alone, separating RC003 candidates from
// structurally ordered pairs.
package racecheck

import (
	"fmt"
	"sort"

	"wet/internal/core"
	"wet/internal/trace"
)

// Rule identifiers.
const (
	RuleWriteWrite = "RC001"
	RuleReadWrite  = "RC002"
	RuleLockset    = "RC003"
)

// RuleDoc maps each rule identifier to its one-line description (wetlint
// and the CI job print these).
var RuleDoc = map[string]string{
	RuleWriteWrite: "write-write race: concurrent unordered writes to one shared word",
	RuleReadWrite:  "read-write race: concurrent unordered read and write of one shared word",
	RuleLockset:    "lockset candidate: pair ordered only by lock timing and holds no common lock",
}

// Access is one endpoint of a reported race: the witness timestamp pins the
// exact path execution in the trace, so the access can be replayed with the
// ordinary time-travel queries.
type Access struct {
	Thread int32  // executing thread
	TS     uint32 // global path timestamp of the access
	Stmt   int    // program statement (index into Program.Stmts)
	Write  bool   // write access (else read)
}

// Race is one reported finding. First and Second are ordered by timestamp;
// on RC001/RC002 the two accesses are concurrent (the timestamps reflect
// this schedule only), on RC003 First happens-before Second through lock
// timing alone.
type Race struct {
	Rule          string
	Addr          uint32 // shared memory word
	First, Second Access
}

func (r Race) String() string {
	k1, k2 := "R", "R"
	if r.First.Write {
		k1 = "W"
	}
	if r.Second.Write {
		k2 = "W"
	}
	return fmt.Sprintf("%s addr=%d %s(t%d ts=%d stmt=%d) vs %s(t%d ts=%d stmt=%d)",
		r.Rule, r.Addr,
		k1, r.First.Thread, r.First.TS, r.First.Stmt,
		k2, r.Second.Thread, r.Second.TS, r.Second.Stmt)
}

// Report is the result of one race check.
type Report struct {
	// Concurrent is false when the trace has no concurrency streams
	// (single-threaded run or pre-concurrency file); every other field is
	// zero then.
	Concurrent     bool
	Threads        int
	SyncEvents     int
	SharedAccesses int
	// Races holds the deduplicated findings (one per rule, address and
	// statement pair), ordered by the second access's timestamp.
	Races []Race
	// CompressedBits is the tier-2 size of the concurrency streams the
	// check walked (the denominator of the bytes-scanned benchmark ratio);
	// 0 when the WET is not frozen.
	CompressedBits uint64
}

// Racy reports whether any definite race (RC001/RC002) was found.
func (r *Report) Racy() bool {
	for _, rc := range r.Races {
		if rc.Rule != RuleLockset {
			return true
		}
	}
	return false
}

// Count returns the number of findings for one rule.
func (r *Report) Count(rule string) int {
	n := 0
	for _, rc := range r.Races {
		if rc.Rule == rule {
			n++
		}
	}
	return n
}

// vc is a vector clock: vc[u] is the latest global timestamp of thread u
// known to happen-before the owner's current point.
type vc []uint32

func (a vc) join(b vc) {
	for i, v := range b {
		if v > a[i] {
			a[i] = v
		}
	}
}

func (a vc) clone() vc {
	out := make(vc, len(a))
	copy(out, a)
	return out
}

// accRec summarizes the latest access of one kind by one thread to one
// address: enough to detect and witness a race against any later access
// (earlier same-thread accesses are program-ordered before it, so any race
// they participate in is also a race of this one).
type accRec struct {
	ts      uint32
	stmt    int
	lockset []uint32 // sorted snapshot of locks held
}

// cell is the per-address frontier: latest write and latest read per thread.
type cell struct {
	lastW, lastR []accRec // indexed by thread; ts == 0 means none
}

// syncRec / accEvt are one decoded record of the respective stream family.
type syncRec struct {
	ts, obj uint32
	kind    trace.SyncKind
	tid     int32
}

type accEvt struct {
	ts, addr, stmt uint32
	tid            int32
	write          bool
}

// checker carries the walk state.
type checker struct {
	w        *core.WET
	nThreads int

	clocks []vc // full happens-before clocks, per thread
	fj     []vc // fork-join-only clocks, per thread

	lockClock map[uint32]vc       // per-lock release clock
	held      map[int32][]uint32  // per-thread sorted lockset
	cells     map[uint32]*cell    // per-address access frontier
	seen      map[raceKey]bool    // dedup
	races     []Race
}

type raceKey struct {
	rule         string
	addr         uint32
	stmt1, stmt2 int
}

// Check walks the concurrency streams of w at the given tier and returns
// the race report. A WET without concurrency streams yields a report with
// Concurrent == false and no findings. Tier 1 requires the raw slices
// (before DropTier1, or after MaterializeTier1); tier 2 walks the
// compressed streams through fresh detached cursors and is safe for
// concurrent use with other queries.
func Check(w *core.WET, tier core.Tier) (*Report, error) {
	c := w.Conc
	if c == nil {
		return &Report{}, nil
	}
	rep := &Report{
		Concurrent:     true,
		Threads:        c.NumThreads(),
		SyncEvents:     c.SyncEvents(),
		SharedAccesses: c.SharedAccesses(),
		CompressedBits: c.SizeBits(),
	}
	ck := &checker{
		w:         w,
		nThreads:  c.NumThreads(),
		clocks:    make([]vc, c.NumThreads()),
		fj:        make([]vc, c.NumThreads()),
		lockClock: map[uint32]vc{},
		held:      map[int32][]uint32{},
		cells:     map[uint32]*cell{},
		seen:      map[raceKey]bool{},
	}
	for i := range ck.clocks {
		ck.clocks[i] = make(vc, ck.nThreads)
		ck.fj[i] = make(vc, ck.nThreads)
	}

	// The two record families are each timestamp-ordered; merge them with
	// the intra-timestamp kind order the builder documents: acquire/join
	// events start the path (phase 0), its accesses follow (phase 1),
	// release/spawn events end it (phase 2).
	sync := newSyncReader(w, tier)
	acc := newAccReader(w, tier)
	for sync.ok || acc.ok {
		if sync.ok && (!acc.ok || less(sync.cur.ts, syncPhase(sync.cur.kind), acc.cur.ts, 1)) {
			if err := ck.applySync(sync.cur); err != nil {
				return nil, err
			}
			sync.advance()
		} else {
			if err := ck.applyAccess(acc.cur); err != nil {
				return nil, err
			}
			acc.advance()
		}
	}

	sort.Slice(ck.races, func(i, j int) bool {
		a, b := ck.races[i], ck.races[j]
		if a.Second.TS != b.Second.TS {
			return a.Second.TS < b.Second.TS
		}
		if a.First.TS != b.First.TS {
			return a.First.TS < b.First.TS
		}
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		return a.Rule < b.Rule
	})
	rep.Races = ck.races
	return rep, nil
}

func syncPhase(k trace.SyncKind) int {
	if k == trace.SyncAcquire || k == trace.SyncJoin {
		return 0
	}
	return 2
}

func less(ts1 uint32, ph1 int, ts2 uint32, ph2 int) bool {
	if ts1 != ts2 {
		return ts1 < ts2
	}
	return ph1 < ph2
}

func (ck *checker) tick(tid int32, ts uint32) error {
	if int(tid) < 0 || int(tid) >= ck.nThreads {
		return fmt.Errorf("racecheck: record names thread %d of %d", tid, ck.nThreads)
	}
	ck.clocks[tid][tid] = ts
	ck.fj[tid][tid] = ts
	return nil
}

func (ck *checker) applySync(ev syncRec) error {
	if err := ck.tick(ev.tid, ev.ts); err != nil {
		return err
	}
	switch ev.kind {
	case trace.SyncSpawn:
		child := int(ev.obj)
		if child < 0 || child >= ck.nThreads {
			return fmt.Errorf("racecheck: spawn names thread %d of %d", child, ck.nThreads)
		}
		ck.clocks[child].join(ck.clocks[ev.tid])
		ck.fj[child].join(ck.fj[ev.tid])
	case trace.SyncJoin:
		child := int(ev.obj)
		if child < 0 || child >= ck.nThreads {
			return fmt.Errorf("racecheck: join names thread %d of %d", child, ck.nThreads)
		}
		ck.clocks[ev.tid].join(ck.clocks[child])
		ck.fj[ev.tid].join(ck.fj[child])
	case trace.SyncAcquire:
		if lc, ok := ck.lockClock[ev.obj]; ok {
			ck.clocks[ev.tid].join(lc)
		}
		ck.held[ev.tid] = insertLock(ck.held[ev.tid], ev.obj)
	case trace.SyncRelease:
		ck.lockClock[ev.obj] = ck.clocks[ev.tid].clone()
		ck.held[ev.tid] = removeLock(ck.held[ev.tid], ev.obj)
	default:
		return fmt.Errorf("racecheck: unknown sync kind %d", ev.kind)
	}
	return nil
}

func (ck *checker) applyAccess(ev accEvt) error {
	if err := ck.tick(ev.tid, ev.ts); err != nil {
		return err
	}
	cl := ck.cells[ev.addr]
	if cl == nil {
		cl = &cell{lastW: make([]accRec, ck.nThreads), lastR: make([]accRec, ck.nThreads)}
		ck.cells[ev.addr] = cl
	}
	ls := ck.held[ev.tid]
	for u := 0; u < ck.nThreads; u++ {
		if int32(u) == ev.tid {
			continue
		}
		// A write conflicts with earlier writes and reads; a read only with
		// earlier writes.
		if prev := cl.lastW[u]; prev.ts != 0 {
			ck.checkPair(ev, int32(u), prev, true)
		}
		if ev.write {
			if prev := cl.lastR[u]; prev.ts != 0 {
				ck.checkPair(ev, int32(u), prev, false)
			}
		}
	}
	rec := accRec{ts: ev.ts, stmt: int(ev.stmt), lockset: ls}
	if ev.write {
		cl.lastW[ev.tid] = rec
	} else {
		cl.lastR[ev.tid] = rec
	}
	return nil
}

// checkPair classifies the (prev access by thread u, current access ev)
// pair: unordered → RC001/RC002; ordered only through lock timing with
// disjoint locksets → RC003.
func (ck *checker) checkPair(ev accEvt, u int32, prev accRec, prevWrite bool) {
	hb := ck.clocks[ev.tid][u] >= prev.ts
	if !hb {
		rule := RuleReadWrite
		if prevWrite && ev.write {
			rule = RuleWriteWrite
		}
		ck.report(rule, ev, u, prev, prevWrite)
		return
	}
	fjOrdered := ck.fj[ev.tid][u] >= prev.ts
	if !fjOrdered && !intersect(prev.lockset, ck.held[ev.tid]) {
		ck.report(RuleLockset, ev, u, prev, prevWrite)
	}
}

func (ck *checker) report(rule string, ev accEvt, u int32, prev accRec, prevWrite bool) {
	key := raceKey{rule: rule, addr: ev.addr, stmt1: prev.stmt, stmt2: int(ev.stmt)}
	if ck.seen[key] {
		return
	}
	ck.seen[key] = true
	ck.races = append(ck.races, Race{
		Rule: rule,
		Addr: ev.addr,
		First: Access{
			Thread: u, TS: prev.ts, Stmt: prev.stmt, Write: prevWrite,
		},
		Second: Access{
			Thread: ev.tid, TS: ev.ts, Stmt: int(ev.stmt), Write: ev.write,
		},
	})
}

// insertLock / removeLock keep per-thread locksets as sorted immutable
// slices: every mutation copies, so accRec snapshots stay valid without a
// per-access copy.
func insertLock(ls []uint32, l uint32) []uint32 {
	i := sort.Search(len(ls), func(i int) bool { return ls[i] >= l })
	if i < len(ls) && ls[i] == l {
		return ls
	}
	out := make([]uint32, 0, len(ls)+1)
	out = append(out, ls[:i]...)
	out = append(out, l)
	return append(out, ls[i:]...)
}

func removeLock(ls []uint32, l uint32) []uint32 {
	i := sort.Search(len(ls), func(i int) bool { return ls[i] >= l })
	if i >= len(ls) || ls[i] != l {
		return ls
	}
	out := make([]uint32, 0, len(ls)-1)
	out = append(out, ls[:i]...)
	return append(out, ls[i+1:]...)
}

func intersect(a, b []uint32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// syncReader decodes the sync-event record stream family through one
// detached cursor per component stream.
type syncReader struct {
	ts, kind, tid, obj core.Seq
	n, i               int
	cur                syncRec
	ok                 bool
}

func newSyncReader(w *core.WET, tier core.Tier) *syncReader {
	c := w.Conc
	r := &syncReader{
		ts:   w.ConcSeq(&c.SyncTS, tier),
		kind: w.ConcSeq(&c.SyncKind, tier),
		tid:  w.ConcSeq(&c.SyncThread, tier),
		obj:  w.ConcSeq(&c.SyncObj, tier),
		n:    c.SyncEvents(),
	}
	r.advance()
	return r
}

func (r *syncReader) advance() {
	if r.i >= r.n {
		r.ok = false
		return
	}
	r.i++
	r.cur = syncRec{
		ts:   r.ts.Next(),
		kind: trace.SyncKind(r.kind.Next()),
		tid:  int32(r.tid.Next()),
		obj:  r.obj.Next(),
	}
	r.ok = true
}

// accReader decodes the shared-access record stream family.
type accReader struct {
	ts, tid, addr, kind, stmt core.Seq
	n, i                      int
	cur                       accEvt
	ok                        bool
}

func newAccReader(w *core.WET, tier core.Tier) *accReader {
	c := w.Conc
	r := &accReader{
		ts:   w.ConcSeq(&c.AccTS, tier),
		tid:  w.ConcSeq(&c.AccThread, tier),
		addr: w.ConcSeq(&c.AccAddr, tier),
		kind: w.ConcSeq(&c.AccKind, tier),
		stmt: w.ConcSeq(&c.AccStmt, tier),
		n:    c.SharedAccesses(),
	}
	r.advance()
	return r
}

func (r *accReader) advance() {
	if r.i >= r.n {
		r.ok = false
		return
	}
	r.i++
	r.cur = accEvt{
		ts:   r.ts.Next(),
		tid:  int32(r.tid.Next()),
		addr: r.addr.Next(),
	}
	r.cur.write = r.kind.Next() == core.AccWrite
	r.cur.stmt = r.stmt.Next()
	r.ok = true
}
