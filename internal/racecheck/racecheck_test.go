package racecheck

import (
	"bytes"
	"reflect"
	"testing"

	"wet/internal/core"
	"wet/internal/interp"
	"wet/internal/stream"
	"wet/internal/wetio"
	"wet/internal/workload"
)

func buildConc(tb testing.TB, name string, seed uint64, fopts core.FreezeOptions) *core.WET {
	tb.Helper()
	wl, err := workload.ConcByName(name)
	if err != nil {
		tb.Fatal(err)
	}
	prog, in := wl.Build(1)
	st, err := interp.Analyze(prog)
	if err != nil {
		tb.Fatal(err)
	}
	w, _, err := core.Build(st, interp.Options{Inputs: in, Seed: seed})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := w.FreezeErr(fopts); err != nil {
		tb.Fatal(err)
	}
	return w
}

// TestRacyVariantsReport pins the seeded races: every racy variant reports
// definite races, the read-modify-write seeds show up as both RC001 and
// RC002, and the mcf handshake seeds the RC003 lockset candidate.
func TestRacyVariantsReport(t *testing.T) {
	for _, name := range []string{"li-conc-racy", "gzip-conc-racy", "mcf-conc-racy"} {
		w := buildConc(t, name, 0, core.FreezeOptions{})
		if err := w.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep, err := Check(w, core.Tier2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.Concurrent || rep.Threads != 3 {
			t.Fatalf("%s: concurrent=%v threads=%d, want 3-thread concurrent report", name, rep.Concurrent, rep.Threads)
		}
		if !rep.Racy() {
			t.Fatalf("%s: seeded racy workload reported no definite race", name)
		}
		if rep.Count(RuleWriteWrite) == 0 {
			t.Fatalf("%s: unsynchronized read-modify-write seeded no %s finding; races: %v", name, RuleWriteWrite, rep.Races)
		}
		if rep.Count(RuleReadWrite) == 0 {
			t.Fatalf("%s: unsynchronized read-modify-write seeded no %s finding; races: %v", name, RuleReadWrite, rep.Races)
		}
		if name == "mcf-conc-racy" && rep.Count(RuleLockset) == 0 {
			t.Fatalf("mcf handshake seeded no %s candidate; races: %v", RuleLockset, rep.Races)
		}
		for _, rc := range rep.Races {
			if rc.First.TS == 0 || rc.First.TS >= rc.Second.TS {
				t.Fatalf("%s: bad witness pair %v", name, rc)
			}
			if rc.First.Thread == rc.Second.Thread {
				t.Fatalf("%s: race within one thread: %v", name, rc)
			}
			if _, ok := RuleDoc[rc.Rule]; !ok {
				t.Fatalf("%s: unknown rule %q", name, rc.Rule)
			}
		}
	}
}

// TestCleanVariantsSilent pins zero false positives: the lock-disciplined
// flavours report nothing, not even lockset candidates.
func TestCleanVariantsSilent(t *testing.T) {
	for _, name := range []string{"li-conc-clean", "gzip-conc-clean", "mcf-conc-clean"} {
		w := buildConc(t, name, 0, core.FreezeOptions{})
		if err := w.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep, err := Check(w, core.Tier2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.Concurrent || rep.SharedAccesses == 0 || rep.SyncEvents == 0 {
			t.Fatalf("%s: expected a concurrent trace with sync and shared events, got %+v", name, rep)
		}
		if len(rep.Races) != 0 {
			t.Fatalf("%s: race-free workload reported: %v", name, rep.Races)
		}
	}
}

// TestCrossTierEquality pins that the race report is a property of the
// trace, not of the representation: tier 1 (raw slices), tier 2 (compressed
// cursors), and a save/load roundtrip all yield identical findings.
func TestCrossTierEquality(t *testing.T) {
	for _, wl := range workload.ConcAll() {
		w := buildConc(t, wl.Name, 7, core.FreezeOptions{})
		r1, err := Check(w, core.Tier1)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Check(w, core.Tier2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1.Races, r2.Races) {
			t.Fatalf("%s: tier-1 and tier-2 reports differ:\n%v\n%v", wl.Name, r1.Races, r2.Races)
		}
		var buf bytes.Buffer
		if err := wetio.Save(&buf, w); err != nil {
			t.Fatal(err)
		}
		lw, err := wetio.Load(bytes.NewReader(buf.Bytes()), wetio.LoadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		r3, err := Check(lw, core.Tier2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1.Races, r3.Races) {
			t.Fatalf("%s: loaded-trace report differs:\n%v\n%v", wl.Name, r1.Races, r3.Races)
		}
		if lw.Raw.SyncOps == 0 || lw.Raw.SyncOps != w.Raw.SyncOps || lw.Raw.SharedAcc != w.Raw.SharedAcc {
			t.Fatalf("%s: concurrency counters lost in roundtrip: %+v vs %+v", wl.Name, lw.Raw, w.Raw)
		}
	}
}

// TestTier2CursorOnly pins the access discipline: after DropTier1 the raw
// slices are gone, so a successful tier-2 check proves the walk runs on
// detached cursors alone; and the merge-walk is monotone, so it must not
// issue random-access seeks.
func TestTier2CursorOnly(t *testing.T) {
	w := buildConc(t, "mcf-conc-racy", 0, core.FreezeOptions{DropTier1: true})
	ref := buildConc(t, "mcf-conc-racy", 0, core.FreezeOptions{})
	want, err := Check(ref, core.Tier1)
	if err != nil {
		t.Fatal(err)
	}
	before := stream.ReadSeekStats()
	got, err := Check(w, core.Tier2)
	if err != nil {
		t.Fatal(err)
	}
	d := stream.ReadSeekStats().Sub(before)
	if d.Seeks != 0 {
		t.Fatalf("race check issued %d cursor seeks; the merge-walk must be a monotone forward pass", d.Seeks)
	}
	if got.CompressedBits == 0 {
		t.Fatal("frozen concurrency streams report zero compressed bits")
	}
	if !reflect.DeepEqual(want.Races, got.Races) {
		t.Fatalf("dropped-tier-1 report differs from raw report:\n%v\n%v", want.Races, got.Races)
	}
}

// TestSchedulerDeterminism pins the seeded scheduler: the same seed replays
// the same interleaving bit-for-bit (saved bytes identical), and the race
// report is identical run to run.
func TestSchedulerDeterminism(t *testing.T) {
	a := buildConc(t, "li-conc-racy", 3, core.FreezeOptions{})
	b := buildConc(t, "li-conc-racy", 3, core.FreezeOptions{})
	var ab, bb bytes.Buffer
	if err := wetio.Save(&ab, a); err != nil {
		t.Fatal(err)
	}
	if err := wetio.Save(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatal("two runs with the same seed serialized differently")
	}
	ra, err := Check(a, core.Tier2)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Check(b, core.Tier2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra.Races, rb.Races) {
		t.Fatal("two runs with the same seed reported different races")
	}
}

// TestSingleThreadedNoConc pins the gating: a sequential workload grows no
// concurrency streams and the checker degrades to an empty report.
func TestSingleThreadedNoConc(t *testing.T) {
	wl, err := workload.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	prog, in := wl.Build(1)
	st, err := interp.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := core.Build(st, interp.Options{Inputs: in})
	if err != nil {
		t.Fatal(err)
	}
	if w.Conc != nil {
		t.Fatal("single-threaded build grew concurrency streams")
	}
	w.Freeze(core.FreezeOptions{})
	rep, err := Check(w, core.Tier2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Concurrent || len(rep.Races) != 0 {
		t.Fatalf("single-threaded report not empty: %+v", rep)
	}
}

// TestStreamingBuildChecked pins the streaming pipeline and the value-
// grouping determinism invariant on concurrent traces: an epoch-segmented
// checked build succeeds and reports the same races as the plain build.
func TestStreamingBuildChecked(t *testing.T) {
	wl, err := workload.ConcByName("gzip-conc-racy")
	if err != nil {
		t.Fatal(err)
	}
	prog, in := wl.Build(1)
	st, err := interp.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	w, _, _, err := core.BuildStreamingChecked(st, interp.Options{Inputs: in, Seed: 0},
		core.FreezeOptions{EpochTS: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := Check(w, core.Tier2)
	if err != nil {
		t.Fatal(err)
	}
	ref := buildConc(t, "gzip-conc-racy", 0, core.FreezeOptions{})
	want, err := Check(ref, core.Tier2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Races, got.Races) {
		t.Fatalf("streaming build reports differ from plain build:\n%v\n%v", want.Races, got.Races)
	}
}
