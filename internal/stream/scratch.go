package stream

import (
	"fmt"
	"math/bits"
	"sync"
)

// The selection phase of CompressBest is the hot path of WET freezing: it
// sizes every candidate method on a stream prefix and discards all that
// work except one number. This file makes that phase allocation-free and
// safe to run from many workers at once:
//
//   - predictor tables and last-n rings are borrowed from sync.Pools keyed
//     by table size instead of allocated per candidate;
//   - candidates are *sized* by a dry-run that counts entry bits without
//     materializing bitstacks or Stream objects (the counts reproduce the
//     constructors' SizeBits exactly — TestSizeSpecMatchesConstruction
//     pins the equivalence);
//   - each worker owns one Scratch, so concurrent CompressBestScratch
//     calls never contend on table memory.

// maxPoolBits bounds the pooled table sizes: tableBits caps FCM tables at
// 16 bits and last-n rings use 1–3 bits, so one pool array serves both.
const maxPoolBits = 16

// tablePools[b] holds zeroed []uint32 of length 1<<b. Entries are stored
// as *[]uint32 to avoid boxing the slice header on every Put. The pool
// invariant — every pooled table is all-zero — is what keeps compression
// results independent of reuse history.
var tablePools [maxPoolBits + 1]sync.Pool

func grabTable(b uint) []uint32 {
	if t, ok := tablePools[b].Get().(*[]uint32); ok {
		return *t
	}
	return make([]uint32, 1<<b)
}

// Scratch is the per-worker reusable state for the selection phase. A
// Scratch keeps the tables it borrows until Release, so a worker draining
// a job queue touches the global pools only twice. A Scratch is not safe
// for concurrent use; zero value is ready.
type Scratch struct {
	tbl [maxPoolBits + 1][]uint32
}

// NewScratch returns an empty scratch; tables are borrowed lazily.
func NewScratch() *Scratch { return &Scratch{} }

// table returns a zeroed table of 1<<b entries. Sizers must re-zero it
// (clear) before returning, preserving the all-zero invariant.
func (sc *Scratch) table(b uint) []uint32 {
	if sc.tbl[b] == nil {
		sc.tbl[b] = grabTable(b)
	}
	return sc.tbl[b]
}

// Release returns all borrowed tables to the size-keyed pools. The scratch
// can be reused afterwards; it will re-borrow on demand.
func (sc *Scratch) Release() {
	for b := range sc.tbl {
		if sc.tbl[b] != nil {
			t := sc.tbl[b]
			sc.tbl[b] = nil
			tablePools[b].Put(&t)
		}
	}
}

// scratchPool backs the convenience CompressBest wrapper for callers that
// do not manage a per-worker Scratch themselves.
var scratchPool = sync.Pool{New: func() interface{} { return NewScratch() }}

// SizeSpec returns exactly Compress(vals, spec).SizeBits() without
// building the stream: no entry stores, no table allocation.
func SizeSpec(vals []uint32, spec Spec, sc *Scratch) uint64 {
	switch spec.Kind {
	case KindVerbatim:
		return uint64(len(vals))*32 + HeaderBits
	case KindPacked:
		return sizePacked(vals)
	case KindFCM:
		return sizeFCM(vals, spec.Order, false, sc)
	case KindDFCM:
		return sizeFCM(vals, spec.Order, true, sc)
	case KindLastN:
		return sizeLastN(vals, spec.Order, false, sc)
	case KindLastNStride:
		return sizeLastN(vals, spec.Order, true, sc)
	}
	panic(fmt.Sprintf("stream: unknown kind %d", spec.Kind))
}

// BestSpec runs the paper's Selection step — size every candidate on a
// prefix, keep the winner — without constructing any stream. It selects
// exactly the spec CompressBest would.
func BestSpec(vals []uint32, sc *Scratch) Spec {
	probe := vals
	if len(probe) > SelectionPrefix {
		probe = vals[:SelectionPrefix]
	}
	best := Candidates[0]
	var bestBits uint64
	for i, spec := range Candidates {
		b := SizeSpec(probe, spec, sc)
		if i == 0 || b < bestBits {
			best, bestBits = spec, b
		}
	}
	return best
}

// CompressBestScratch is CompressBest with caller-owned scratch state:
// the selection phase allocates nothing, and only the winning method's
// stream is materialized.
func CompressBestScratch(vals []uint32, sc *Scratch) Stream {
	return CompressBestScratchK(vals, sc, 0)
}

// CompressBestScratchK is CompressBestScratch with explicit checkpoint
// spacing (see CompressK).
func CompressBestScratchK(vals []uint32, sc *Scratch, k int) Stream {
	if len(vals) == 0 {
		return newVerbatim(nil)
	}
	return CompressK(vals, BestSpec(vals, sc), k)
}

// SizeBest runs selection and returns the winning method's exact full
// compressed size and stream name (as Stream.Name() would report it)
// without constructing the stream. Used for sizing-only accounting.
func SizeBest(vals []uint32, sc *Scratch) (sz uint64, name string) {
	if len(vals) == 0 {
		return HeaderBits, "verbatim"
	}
	spec := BestSpec(vals, sc)
	sz = SizeSpec(vals, spec, sc)
	if spec.Kind == KindPacked {
		var max uint32
		for _, v := range vals {
			if v > max {
				max = v
			}
		}
		return sz, fmt.Sprintf("packed%d", bits.Len32(max))
	}
	return sz, spec.String()
}

// --- dry-run sizers: must mirror the constructors bit for bit ---

func sizePacked(vals []uint32) uint64 {
	var max uint32
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	return uint64(len(vals))*uint64(bits.Len32(max)) + HeaderBits
}

// sizeFCM counts the FR entry bits of newFCM's construction pass: per
// value, 1 bit on a hit and 33 on a miss, plus the window, both tables,
// and the header. Only the forward (right-context) table is touched during
// construction, so one borrowed table suffices.
func sizeFCM(vals []uint32, order int, stride bool, sc *Scratch) uint64 {
	if order < 1 {
		panic("stream: fcm order must be >= 1")
	}
	wlen := order
	if stride {
		wlen = order + 1
	}
	var winBuf [4]uint32
	var win []uint32
	if wlen <= len(winBuf) {
		win = winBuf[:wlen]
	} else {
		win = make([]uint32, wlen)
	}
	tbBits := tableBits(len(vals))
	frtb := sc.table(tbBits)
	var frBits uint64
	for _, v := range vals {
		h := win[0]
		copy(win, win[1:])
		win[wlen-1] = v
		idx := fcmHash(win, stride, tbBits)
		var pred uint32
		if stride {
			pred = win[0] - frtb[idx]
		} else {
			pred = frtb[idx]
		}
		if pred == h {
			frBits++
		} else {
			frBits += 33
			if stride {
				frtb[idx] = win[0] - h
			} else {
				frtb[idx] = h
			}
		}
	}
	clear(frtb)
	tables := uint64(2) * uint64(len(frtb)) * 32
	return frBits + uint64(wlen)*32 + tables + HeaderBits
}

// sizeLastN counts the FR entry bits of newLastN's construction pass:
// idxBits+1 bits on a table hit, 33 on a miss, plus the ring and header.
func sizeLastN(vals []uint32, n int, stride bool, sc *Scratch) uint64 {
	if n < 2 || n&(n-1) != 0 {
		panic("stream: last-n table size must be a power of two >= 2")
	}
	idxBits := uint(bits.TrailingZeros(uint(n)))
	tb := sc.table(idxBits)
	var frBits uint64
	var lastVal uint32
	for _, v := range vals {
		x := v
		if stride {
			x = v - lastVal
		}
		hit := false
		for i, tv := range tb {
			if tv == x {
				copy(tb[1:i+1], tb[:i])
				tb[0] = x
				frBits += uint64(idxBits) + 1
				hit = true
				break
			}
		}
		if !hit {
			copy(tb[1:], tb[:n-1])
			tb[0] = x
			frBits += 33
		}
		if stride {
			lastVal = v
		}
	}
	clear(tb)
	sz := frBits + uint64(n)*32 + HeaderBits
	if stride {
		sz += 32
	}
	return sz
}
