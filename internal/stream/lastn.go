package stream

import (
	"fmt"
	"math/bits"
)

// lastNStream is the bidirectional last-n predictor stream (paper §4,
// Figure 7). A single move-to-front table of the n most recent distinct
// values (or strides) serves both directions. FR entries carry the
// move-to-front mutation (hit: the matching index; miss: the evicted
// value), which the backward step undoes exactly; BL entries are pure
// references against the current table (hit: index; miss: the literal
// value) and mutate nothing, so the cursor state stays path-independent.
type lastNStream struct {
	m       int
	n       int // table size (power of two)
	idxBits uint
	stride  bool
	tb      []uint32 // tb[0] is the most recent
	lastVal uint32   // previous value; stride mode only
	fr, bl  bitstack
	pos     int
	size    uint64
}

func newLastN(vals []uint32, n int, stride bool) *lastNStream {
	if n < 2 || n&(n-1) != 0 {
		panic("stream: last-n table size must be a power of two >= 2")
	}
	s := &lastNStream{
		m:       len(vals),
		n:       n,
		idxBits: uint(bits.TrailingZeros(uint(n))),
		stride:  stride,
		tb:      make([]uint32, n),
	}
	for _, v := range vals {
		s.stepForward(v, true)
	}
	s.size = s.fr.bits() + s.bl.bits() + uint64(n)*32 + HeaderBits
	if stride {
		s.size += 32 // lastVal
	}
	return s
}

func (s *lastNStream) Len() int         { return s.m }
func (s *lastNStream) Pos() int         { return s.pos }
func (s *lastNStream) SizeBits() uint64 { return s.size }

func (s *lastNStream) Name() string {
	if s.stride {
		return fmt.Sprintf("lastS%d", s.n)
	}
	return fmt.Sprintf("last%d", s.n)
}

// encode move-to-fronts x into the table and pushes the FR entry.
func (s *lastNStream) encode(x uint32) {
	for i, v := range s.tb {
		if v == x {
			// Hit: move to front; entry records the index for the undo.
			copy(s.tb[1:i+1], s.tb[:i])
			s.tb[0] = x
			s.fr.pushBits(uint32(i), s.idxBits)
			s.fr.pushBit(true)
			return
		}
	}
	evicted := s.tb[s.n-1]
	copy(s.tb[1:], s.tb[:s.n-1])
	s.tb[0] = x
	s.fr.pushBits(evicted, 32)
	s.fr.pushBit(false)
}

// decode pops an FR entry, undoes its table mutation, and returns the value.
func (s *lastNStream) decode() uint32 {
	x := s.tb[0]
	if s.fr.popBit() {
		i := int(s.fr.popBits(s.idxBits))
		copy(s.tb[:i], s.tb[1:i+1])
		s.tb[i] = x
	} else {
		evicted := s.fr.popBits(32)
		copy(s.tb[:s.n-1], s.tb[1:])
		s.tb[s.n-1] = evicted
	}
	return x
}

// pushRef pushes a BL reference to x against the current table.
func (s *lastNStream) pushRef(x uint32) {
	for i, v := range s.tb {
		if v == x {
			s.bl.pushBits(uint32(i), s.idxBits)
			s.bl.pushBit(true)
			return
		}
	}
	s.bl.pushBits(x, 32)
	s.bl.pushBit(false)
}

// popRef pops a BL reference and resolves it against the current table.
func (s *lastNStream) popRef() uint32 {
	if s.bl.popBit() {
		return s.tb[s.bl.popBits(s.idxBits)]
	}
	return s.bl.popBits(32)
}

func (s *lastNStream) stepForward(v uint32, construct bool) uint32 {
	var x uint32 // the symbol actually coded (value, or stride)
	if construct {
		x = v
		if s.stride {
			x = v - s.lastVal
		}
	} else {
		if s.pos >= s.m {
			panic("stream: Next past end")
		}
		x = s.popRef()
		if s.stride {
			v = s.lastVal + x
		} else {
			v = x
		}
	}
	s.encode(x)
	if s.stride {
		s.lastVal = v
	}
	s.pos++
	return v
}

func (s *lastNStream) Next() uint32 { return s.stepForward(0, false) }

// Clone implements Stream.
func (s *lastNStream) Clone() Stream {
	c := *s
	c.tb = append([]uint32(nil), s.tb...)
	c.fr = s.fr.clone()
	c.bl = s.bl.clone()
	return &c
}

func (s *lastNStream) Prev() uint32 {
	if s.pos == 0 {
		panic("stream: Prev past start")
	}
	x := s.decode()
	s.pushRef(x)
	s.pos--
	if s.stride {
		v := s.lastVal
		s.lastVal = v - x
		return v
	}
	return x
}

// verbatim stores the stream uncompressed; the selection fallback for
// streams no predictor helps with.
type verbatim struct {
	vals []uint32
	pos  int
}

func newVerbatim(vals []uint32) *verbatim {
	cp := make([]uint32, len(vals))
	copy(cp, vals)
	return &verbatim{vals: cp}
}

func (v *verbatim) Len() int     { return len(v.vals) }
func (v *verbatim) Pos() int     { return v.pos }
func (v *verbatim) Name() string { return "verbatim" }

func (v *verbatim) SizeBits() uint64 { return uint64(len(v.vals))*32 + HeaderBits }

// Clone implements Stream (the payload is immutable and shared).
func (v *verbatim) Clone() Stream {
	c := *v
	return &c
}

func (v *verbatim) Next() uint32 {
	if v.pos >= len(v.vals) {
		panic("stream: Next past end")
	}
	x := v.vals[v.pos]
	v.pos++
	return x
}

func (v *verbatim) Prev() uint32 {
	if v.pos == 0 {
		panic("stream: Prev past start")
	}
	v.pos--
	return v.vals[v.pos]
}
