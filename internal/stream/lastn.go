package stream

import (
	"fmt"
	"math/bits"
	"sort"
)

// The bidirectional last-n predictor (paper §4, Figure 7) follows the same
// encoder / immutable stream / detached cursor split as FCM. A single
// move-to-front table of the n most recent distinct values (or strides)
// serves both directions. FR entries carry the move-to-front mutation
// (hit: the matching index; miss: the evicted value), which the backward
// step undoes exactly; BL entries are pure references against the current
// table (hit: index; miss: the literal value) and mutate nothing. Undoing
// every mutation on the way back to position 0 returns the table to all
// zeros, so the canonical start state needs no stored table at all.

// --- encoder ---

type lastNEnc struct {
	m       int
	n       int // table size (power of two)
	idxBits uint
	stride  bool
	tb      []uint32 // tb[0] is the most recent
	lastVal uint32   // previous value; stride mode only
	fr, bl  bitstack
	pos     int
}

func newLastNEnc(vals []uint32, n int, stride bool) *lastNEnc {
	if n < 2 || n&(n-1) != 0 {
		panic("stream: last-n table size must be a power of two >= 2")
	}
	e := &lastNEnc{
		m:       len(vals),
		n:       n,
		idxBits: uint(bits.TrailingZeros(uint(n))),
		stride:  stride,
		tb:      make([]uint32, n),
	}
	for _, v := range vals {
		e.stepForward(v, true)
	}
	return e
}

// encode move-to-fronts x into the table and pushes the FR entry.
func (e *lastNEnc) encode(x uint32) {
	for i, v := range e.tb {
		if v == x {
			// Hit: move to front; entry records the index for the undo.
			copy(e.tb[1:i+1], e.tb[:i])
			e.tb[0] = x
			e.fr.pushBits(uint32(i), e.idxBits)
			e.fr.pushBit(true)
			return
		}
	}
	evicted := e.tb[e.n-1]
	copy(e.tb[1:], e.tb[:e.n-1])
	e.tb[0] = x
	e.fr.pushBits(evicted, 32)
	e.fr.pushBit(false)
}

// decode pops an FR entry, undoes its table mutation, and returns the value.
func (e *lastNEnc) decode() uint32 {
	x := e.tb[0]
	if e.fr.popBit() {
		i := int(e.fr.popBits(e.idxBits))
		copy(e.tb[:i], e.tb[1:i+1])
		e.tb[i] = x
	} else {
		evicted := e.fr.popBits(32)
		copy(e.tb[:e.n-1], e.tb[1:])
		e.tb[e.n-1] = evicted
	}
	return x
}

// pushRef pushes a BL reference to x against the current table.
func (e *lastNEnc) pushRef(x uint32) {
	for i, v := range e.tb {
		if v == x {
			e.bl.pushBits(uint32(i), e.idxBits)
			e.bl.pushBit(true)
			return
		}
	}
	e.bl.pushBits(x, 32)
	e.bl.pushBit(false)
}

// popRef pops a BL reference and resolves it against the current table.
func (e *lastNEnc) popRef() uint32 {
	if e.bl.popBit() {
		return e.tb[e.bl.popBits(e.idxBits)]
	}
	return e.bl.popBits(32)
}

func (e *lastNEnc) stepForward(v uint32, construct bool) uint32 {
	var x uint32 // the symbol actually coded (value, or stride)
	if construct {
		x = v
		if e.stride {
			x = v - e.lastVal
		}
	} else {
		if e.pos >= e.m {
			panic("stream: Next past end")
		}
		x = e.popRef()
		if e.stride {
			v = e.lastVal + x
		} else {
			v = x
		}
	}
	e.encode(x)
	if e.stride {
		e.lastVal = v
	}
	e.pos++
	return v
}

func (e *lastNEnc) next() uint32 { return e.stepForward(0, false) }

func (e *lastNEnc) prev() uint32 {
	if e.pos == 0 {
		panic("stream: Prev past start")
	}
	x := e.decode()
	e.pushRef(x)
	e.pos--
	if e.stride {
		v := e.lastVal
		e.lastVal = v - x
		return v
	}
	return x
}

// finish freezes the encoder (at position m, BL empty) into an immutable
// stream, rebuilding BL backward while capturing checkpoints (see
// fcmEnc.finish).
func (e *lastNEnc) finish(k int) *lastNStream {
	s := &lastNStream{m: e.m, n: e.n, idxBits: e.idxBits, stride: e.stride}
	s.size = e.fr.bits() + e.bl.bits() + uint64(e.n)*32 + HeaderBits
	if e.stride {
		s.size += 32 // lastVal
	}
	s.fr = e.fr.freeze()
	stateBits := uint64(e.n)*32 + 32 + 3*64
	sp := ckSpacing(k, e.m, stateBits)
	cks := []lastNCk{e.snapshot()}
	for e.pos > 0 {
		e.prev()
		if sp > 0 && e.pos > 0 && e.pos%sp == 0 {
			cks = append(cks, e.snapshot())
		}
	}
	s.bl = e.bl.freeze()
	cks = append(cks, lastNCk{pos: 0, frLen: 0, blLen: s.bl.n}) // all-zero start
	sort.Slice(cks, func(i, j int) bool { return cks[i].pos < cks[j].pos })
	s.cks = cks
	for i := 1; i < len(cks); i++ {
		s.ckBits += 3*64 + 32 + uint64(len(cks[i].tb))*32
	}
	return s
}

func (e *lastNEnc) snapshot() lastNCk {
	return lastNCk{
		pos: e.pos, frLen: e.fr.bits(), blLen: e.bl.bits(),
		tb: snapTable(e.tb), lastVal: e.lastVal,
	}
}

// --- immutable stream ---

// lastNCk is one seek checkpoint of a last-n stream.
type lastNCk struct {
	pos          int
	frLen, blLen uint64
	tb           []uint32 // nil = all zeros
	lastVal      uint32
}

type lastNStream struct {
	m       int
	n       int
	idxBits uint
	stride  bool
	fr      bitvec // full FR store (state at pos m)
	bl      bitvec // full BL store (state at pos 0)
	cks     []lastNCk
	size    uint64
	ckBits  uint64
	stats   *SeekCounters // per-trace seek accounting; nil = global only
}

func (s *lastNStream) Len() int               { return s.m }
func (s *lastNStream) SizeBits() uint64       { return s.size }
func (s *lastNStream) CheckpointBits() uint64 { return s.ckBits }

func (s *lastNStream) Name() string {
	if s.stride {
		return fmt.Sprintf("lastS%d", s.n)
	}
	return fmt.Sprintf("last%d", s.n)
}

func (s *lastNStream) NewCursor() Cursor {
	return &lastNCursor{s: s, blLen: s.bl.n, tb: make([]uint32, s.n)}
}

func (s *lastNStream) bestCk(i int) (*lastNCk, int) {
	lo, hi := 0, len(s.cks)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cks[mid].pos <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	rc := restoreCost(s.n/2 + 1)
	var best *lastNCk
	bestCost := int(^uint(0) >> 1)
	if lo > 0 {
		ck := &s.cks[lo-1]
		if c := i - ck.pos + rc; c < bestCost {
			best, bestCost = ck, c
		}
	}
	if lo < len(s.cks) {
		ck := &s.cks[lo]
		if c := ck.pos - i + rc; c < bestCost {
			best, bestCost = ck, c
		}
	}
	return best, bestCost
}

// --- cursor ---

type lastNCursor struct {
	s            *lastNStream
	pos          int
	frLen, blLen uint64
	tb           []uint32
	lastVal      uint32
}

func (c *lastNCursor) Len() int { return c.s.m }
func (c *lastNCursor) Pos() int { return c.pos }

func (c *lastNCursor) Clone() Cursor {
	cp := *c
	cp.tb = append([]uint32(nil), c.tb...)
	return &cp
}

func (c *lastNCursor) Next() uint32 {
	if c.pos >= c.s.m {
		panic("stream: Next past end")
	}
	// Consume the BL reference. Hit/miss of the reference equals hit/miss
	// of the FR entry at this position (both searched the same table
	// state), so frLen advances without reading the FR store.
	var x uint32
	if c.s.bl.top(c.blLen, 1) == 1 {
		c.blLen--
		i := int(c.s.bl.top(c.blLen, c.s.idxBits))
		c.blLen -= uint64(c.s.idxBits)
		x = c.tb[i]
		copy(c.tb[1:i+1], c.tb[:i])
		c.tb[0] = x
		c.frLen += uint64(c.s.idxBits) + 1
	} else {
		c.blLen--
		x = c.s.bl.top(c.blLen, 32)
		c.blLen -= 32
		copy(c.tb[1:], c.tb[:c.s.n-1])
		c.tb[0] = x
		c.frLen += 33
	}
	v := x
	if c.s.stride {
		v = c.lastVal + x
		c.lastVal = v
	}
	c.pos++
	return v
}

func (c *lastNCursor) Prev() uint32 {
	if c.pos == 0 {
		panic("stream: Prev past start")
	}
	// Pop the FR entry and undo its move-to-front mutation.
	x := c.tb[0]
	if c.s.fr.top(c.frLen, 1) == 1 {
		c.frLen--
		i := int(c.s.fr.top(c.frLen, c.s.idxBits))
		c.frLen -= uint64(c.s.idxBits)
		copy(c.tb[:i], c.tb[1:i+1])
		c.tb[i] = x
	} else {
		c.frLen--
		evicted := c.s.fr.top(c.frLen, 32)
		c.frLen -= 32
		copy(c.tb[:c.s.n-1], c.tb[1:])
		c.tb[c.s.n-1] = evicted
	}
	// Advance blLen by the size of the BL reference to x against the
	// restored table (what pushRef recorded on the way back).
	ref := uint64(33)
	for _, v := range c.tb {
		if v == x {
			ref = uint64(c.s.idxBits) + 1
			break
		}
	}
	c.blLen += ref
	c.pos--
	if c.s.stride {
		v := c.lastVal
		c.lastVal = v - x
		return v
	}
	return x
}

// NextN is Next unrolled over a batch with the table and store offsets held
// in locals; the step body must mirror Next exactly (pinned by the stream
// equivalence property tests).
func (c *lastNCursor) NextN(dst []uint32) int {
	n := c.s.m - c.pos
	if n > len(dst) {
		n = len(dst)
	}
	if n <= 0 {
		return 0
	}
	s := c.s
	idxBits := s.idxBits
	tb := c.tb
	frLen, blLen := c.frLen, c.blLen
	lastVal := c.lastVal
	for i := 0; i < n; i++ {
		var x uint32
		if s.bl.top(blLen, 1) == 1 {
			blLen--
			j := int(s.bl.top(blLen, idxBits))
			blLen -= uint64(idxBits)
			x = tb[j]
			copy(tb[1:j+1], tb[:j])
			tb[0] = x
			frLen += uint64(idxBits) + 1
		} else {
			blLen--
			x = s.bl.top(blLen, 32)
			blLen -= 32
			copy(tb[1:], tb[:s.n-1])
			tb[0] = x
			frLen += 33
		}
		v := x
		if s.stride {
			v = lastVal + x
			lastVal = v
		}
		dst[i] = v
	}
	c.frLen, c.blLen, c.lastVal = frLen, blLen, lastVal
	c.pos += n
	return n
}

// PrevN is Prev unrolled over a batch (see NextN); dst is filled in
// traversal order, dst[i] holding the value at the original Pos()-1-i.
func (c *lastNCursor) PrevN(dst []uint32) int {
	n := c.pos
	if n > len(dst) {
		n = len(dst)
	}
	if n <= 0 {
		return 0
	}
	s := c.s
	idxBits := s.idxBits
	tb := c.tb
	frLen, blLen := c.frLen, c.blLen
	lastVal := c.lastVal
	for i := 0; i < n; i++ {
		x := tb[0]
		if s.fr.top(frLen, 1) == 1 {
			frLen--
			j := int(s.fr.top(frLen, idxBits))
			frLen -= uint64(idxBits)
			copy(tb[:j], tb[1:j+1])
			tb[j] = x
		} else {
			frLen--
			evicted := s.fr.top(frLen, 32)
			frLen -= 32
			copy(tb[:s.n-1], tb[1:])
			tb[s.n-1] = evicted
		}
		ref := uint64(33)
		for _, v := range tb {
			if v == x {
				ref = uint64(idxBits) + 1
				break
			}
		}
		blLen += ref
		if s.stride {
			v := lastVal
			lastVal = v - x
			dst[i] = v
		} else {
			dst[i] = x
		}
	}
	c.frLen, c.blLen, c.lastVal = frLen, blLen, lastVal
	c.pos -= n
	return n
}

func (c *lastNCursor) restore(ck *lastNCk) {
	c.pos = ck.pos
	c.frLen = ck.frLen
	c.blLen = ck.blLen
	copyOrZero(c.tb, ck.tb)
	c.lastVal = ck.lastVal
}

func (c *lastNCursor) Seek(i int) {
	if i < 0 || i > c.s.m {
		panic(fmt.Sprintf("stream: seek to %d outside [0,%d]", i, c.s.m))
	}
	if i == c.pos {
		noteSeek(c.s.stats, false, 0)
		return
	}
	walk := i - c.pos
	if walk < 0 {
		walk = -walk
	}
	restored := false
	if ck, cost := c.s.bestCk(i); ck != nil && cost < walk {
		c.restore(ck)
		restored = true
	}
	steps := 0
	for c.pos < i {
		c.Next()
		steps++
	}
	for c.pos > i {
		c.Prev()
		steps++
	}
	noteSeek(c.s.stats, restored, steps)
}

// --- verbatim ---

// verbatim stores the stream uncompressed; the selection fallback for
// streams no predictor helps with. It is trivially immutable.
type verbatim struct {
	vals  []uint32
	stats *SeekCounters
}

func newVerbatim(vals []uint32) *verbatim {
	cp := make([]uint32, len(vals))
	copy(cp, vals)
	return &verbatim{vals: cp}
}

func (v *verbatim) Len() int               { return len(v.vals) }
func (v *verbatim) Name() string           { return "verbatim" }
func (v *verbatim) SizeBits() uint64       { return uint64(len(v.vals))*32 + HeaderBits }
func (v *verbatim) CheckpointBits() uint64 { return 0 }

func (v *verbatim) NewCursor() Cursor { return &verbatimCursor{v: v} }

type verbatimCursor struct {
	v   *verbatim
	pos int
}

func (c *verbatimCursor) Len() int { return len(c.v.vals) }
func (c *verbatimCursor) Pos() int { return c.pos }

func (c *verbatimCursor) Clone() Cursor {
	cp := *c
	return &cp
}

func (c *verbatimCursor) Next() uint32 {
	if c.pos >= len(c.v.vals) {
		panic("stream: Next past end")
	}
	x := c.v.vals[c.pos]
	c.pos++
	return x
}

func (c *verbatimCursor) Prev() uint32 {
	if c.pos == 0 {
		panic("stream: Prev past start")
	}
	c.pos--
	return c.v.vals[c.pos]
}

func (c *verbatimCursor) NextN(dst []uint32) int {
	n := copy(dst, c.v.vals[c.pos:])
	c.pos += n
	return n
}

func (c *verbatimCursor) PrevN(dst []uint32) int {
	n := c.pos
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = c.v.vals[c.pos-1-i]
	}
	c.pos -= n
	return n
}

func (c *verbatimCursor) Seek(i int) {
	if i < 0 || i > len(c.v.vals) {
		panic(fmt.Sprintf("stream: seek to %d outside [0,%d]", i, len(c.v.vals)))
	}
	c.pos = i
	noteSeek(c.v.stats, false, 0)
}
