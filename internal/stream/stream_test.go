package stream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// datasets returns named value streams with different predictability
// profiles, mirroring the stream shapes WET produces.
func datasets() map[string][]uint32 {
	rng := rand.New(rand.NewSource(7))
	d := map[string][]uint32{}

	constant := make([]uint32, 3000)
	for i := range constant {
		constant[i] = 42
	}
	d["constant"] = constant

	strided := make([]uint32, 3000)
	for i := range strided {
		strided[i] = uint32(100 + 7*i)
	}
	d["strided"] = strided

	periodic := make([]uint32, 3000)
	pat := []uint32{3, 1, 4, 1, 5, 9, 2, 6}
	for i := range periodic {
		periodic[i] = pat[i%len(pat)]
	}
	d["periodic"] = periodic

	random := make([]uint32, 3000)
	for i := range random {
		random[i] = rng.Uint32()
	}
	d["random"] = random

	fewvals := make([]uint32, 3000)
	for i := range fewvals {
		fewvals[i] = uint32(rng.Intn(3)) * 1000
	}
	d["fewvals"] = fewvals

	d["empty"] = nil
	d["single"] = []uint32{99}
	d["short"] = []uint32{5, 5, 5}
	return d
}

func allSpecs() []Spec { return Candidates }

func TestRoundTripAllMethodsAllDatasets(t *testing.T) {
	for name, vals := range datasets() {
		for _, spec := range allSpecs() {
			s := Compress(vals, spec)
			if s.Len() != len(vals) {
				t.Fatalf("%s/%s: Len = %d, want %d", name, spec, s.Len(), len(vals))
			}
			got := Drain(s)
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("%s/%s: value %d = %d, want %d", name, spec, i, got[i], vals[i])
				}
			}
		}
	}
}

func TestBackwardTraversalMatches(t *testing.T) {
	for name, vals := range datasets() {
		for _, spec := range allSpecs() {
			s := Compress(vals, spec)
			SeekEnd(s)
			for i := len(vals) - 1; i >= 0; i-- {
				got := s.Prev()
				if got != vals[i] {
					t.Fatalf("%s/%s: backward value %d = %d, want %d", name, spec, i, got, vals[i])
				}
			}
			if s.Pos() != 0 {
				t.Fatalf("%s/%s: Pos after full rewind = %d", name, spec, s.Pos())
			}
		}
	}
}

// TestRandomWalkStateIndependence drives the cursor in a random walk and
// checks every step's value against the raw stream — this exercises the
// paper's key claim that the sequence of states is direction independent.
func TestRandomWalkStateIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for name, vals := range datasets() {
		if len(vals) == 0 {
			continue
		}
		for _, spec := range allSpecs() {
			s := Compress(vals, spec)
			pos := 0
			for step := 0; step < 2000; step++ {
				fwd := rng.Intn(2) == 0
				if pos == 0 {
					fwd = true
				}
				if pos == len(vals) {
					fwd = false
				}
				if fwd {
					got := s.Next()
					if got != vals[pos] {
						t.Fatalf("%s/%s: step %d fwd at %d = %d, want %d", name, spec, step, pos, got, vals[pos])
					}
					pos++
				} else {
					got := s.Prev()
					pos--
					if got != vals[pos] {
						t.Fatalf("%s/%s: step %d bwd at %d = %d, want %d", name, spec, step, pos, got, vals[pos])
					}
				}
				if s.Pos() != pos {
					t.Fatalf("%s/%s: Pos = %d, want %d", name, spec, s.Pos(), pos)
				}
			}
		}
	}
}

// TestQuickRoundTrip property-tests round-tripping over random streams for
// every method.
func TestQuickRoundTrip(t *testing.T) {
	for _, spec := range allSpecs() {
		spec := spec
		f := func(vals []uint32) bool {
			if len(vals) > 500 {
				vals = vals[:500]
			}
			s := Compress(vals, spec)
			got := Drain(s)
			if len(got) != len(vals) {
				return false
			}
			for i := range vals {
				if got[i] != vals[i] {
					return false
				}
			}
			// And backward.
			for i := len(vals) - 1; i >= 0; i-- {
				if s.Prev() != vals[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
	}
}

func TestCompressionEffectiveness(t *testing.T) {
	d := datasets()
	raw := func(vals []uint32) uint64 { return uint64(len(vals)) * 32 }

	// FCM must crush a constant stream.
	s := Compress(d["constant"], Spec{KindFCM, 2})
	if s.SizeBits() > raw(d["constant"])/4 {
		t.Fatalf("fcm2 on constant: %d bits vs raw %d", s.SizeBits(), raw(d["constant"]))
	}
	// dFCM must crush a strided stream; plain FCM must not.
	sd := Compress(d["strided"], Spec{KindDFCM, 1})
	if sd.SizeBits() > raw(d["strided"])/4 {
		t.Fatalf("dfcm1 on strided: %d bits vs raw %d", sd.SizeBits(), raw(d["strided"]))
	}
	sf := Compress(d["strided"], Spec{KindFCM, 2})
	if sf.SizeBits() < sd.SizeBits() {
		t.Fatalf("fcm2 (%d bits) beat dfcm1 (%d bits) on a strided stream", sf.SizeBits(), sd.SizeBits())
	}
	// last-n must do well on a small working set of values.
	sl := Compress(d["fewvals"], Spec{KindLastN, 4})
	if sl.SizeBits() > raw(d["fewvals"])/3 {
		t.Fatalf("last4 on fewvals: %d bits vs raw %d", sl.SizeBits(), raw(d["fewvals"]))
	}
	// Periodic streams are FCM's home turf.
	sp := Compress(d["periodic"], Spec{KindFCM, 3})
	if sp.SizeBits() > raw(d["periodic"])/4 {
		t.Fatalf("fcm3 on periodic: %d bits vs raw %d", sp.SizeBits(), raw(d["periodic"]))
	}
}

func TestCompressBestPicksSensibly(t *testing.T) {
	d := datasets()
	for name, vals := range d {
		s := CompressBest(vals)
		got := Drain(s)
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("CompressBest(%s) corrupted value %d", name, i)
			}
		}
	}
	// On a strided stream the winner must be stride-aware or at least beat
	// verbatim decisively.
	s := CompressBest(d["strided"])
	if s.SizeBits() > uint64(len(d["strided"]))*32/2 {
		t.Fatalf("CompressBest(strided) picked %s with %d bits", s.Name(), s.SizeBits())
	}
	// On pure noise, selection must not blow up the stream badly: the pick
	// must stay within ~36/32 of raw (a 1-bit-per-value penalty plus tables).
	s = CompressBest(d["random"])
	if s.SizeBits() > uint64(len(d["random"]))*40 {
		t.Fatalf("CompressBest(random) = %s, %d bits for %d values", s.Name(), s.SizeBits(), len(d["random"]))
	}
}

func TestSeekToAndAt(t *testing.T) {
	vals := datasets()["periodic"]
	s := Compress(vals, Spec{KindFCM, 2})
	for _, i := range []int{0, 1, 17, 1000, 2999, 5, 2998} {
		if got := At(s, i); got != vals[i] {
			t.Fatalf("At(%d) = %d, want %d", i, got, vals[i])
		}
	}
	SeekTo(s, 100)
	if s.Pos() != 100 {
		t.Fatalf("Pos = %d, want 100", s.Pos())
	}
}

func TestEdgePanics(t *testing.T) {
	s := Compress([]uint32{1, 2}, Spec{KindFCM, 1})
	SeekStart(s)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Prev at start did not panic")
			}
		}()
		s.Prev()
	}()
	SeekEnd(s)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Next at end did not panic")
			}
		}()
		s.Next()
	}()
}

func TestBitstack(t *testing.T) {
	var b bitstack
	b.pushBits(0xDEADBEEF, 32)
	b.pushBit(true)
	b.pushBits(5, 3)
	b.pushBit(false)
	if b.popBit() {
		t.Fatal("top bit should be false")
	}
	if got := b.popBits(3); got != 5 {
		t.Fatalf("popBits(3) = %d, want 5", got)
	}
	if !b.popBit() {
		t.Fatal("next bit should be true")
	}
	if got := b.popBits(32); got != 0xDEADBEEF {
		t.Fatalf("popBits(32) = %#x", got)
	}
	if !b.empty() {
		t.Fatalf("stack not empty: %d bits", b.bits())
	}
}

func TestBitstackQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		var b bitstack
		type rec struct {
			v uint32
			k uint
		}
		var pushed []rec
		for _, op := range ops {
			k := uint(op%32) + 1
			v := uint32(op) & (1<<k - 1)
			b.pushBits(v, k)
			pushed = append(pushed, rec{v, k})
		}
		for i := len(pushed) - 1; i >= 0; i-- {
			if got := b.popBits(pushed[i].k); got != pushed[i].v {
				return false
			}
		}
		return b.empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVerbatimSize(t *testing.T) {
	s := Compress([]uint32{1, 2, 3}, Spec{KindVerbatim, 0})
	if s.SizeBits() != 3*32+HeaderBits {
		t.Fatalf("verbatim size = %d", s.SizeBits())
	}
}

func TestTableBitsScaling(t *testing.T) {
	if tableBits(10) != 4 {
		t.Fatalf("tableBits(10) = %d", tableBits(10))
	}
	if tableBits(1<<20) != 16 {
		t.Fatalf("tableBits(1M) = %d", tableBits(1<<20))
	}
	if b := tableBits(1000); b < 4 || b > 16 {
		t.Fatalf("tableBits(1000) = %d", b)
	}
}

func BenchmarkFCMForward(b *testing.B) {
	vals := make([]uint32, 1<<16)
	for i := range vals {
		vals[i] = uint32(i % 257)
	}
	s := Compress(vals, Spec{KindFCM, 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Pos() == s.Len() {
			SeekStart(s)
		}
		s.Next()
	}
}

func BenchmarkLastNForward(b *testing.B) {
	vals := make([]uint32, 1<<16)
	for i := range vals {
		vals[i] = uint32(i % 7)
	}
	s := Compress(vals, Spec{KindLastN, 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Pos() == s.Len() {
			SeekStart(s)
		}
		s.Next()
	}
}

func TestCloneIndependence(t *testing.T) {
	for name, vals := range datasets() {
		if len(vals) < 10 {
			continue
		}
		for _, spec := range allSpecs() {
			s := Compress(vals, spec)
			SeekTo(s, 5)
			c := s.Clone()
			if c.Pos() != 5 || c.Len() != s.Len() {
				t.Fatalf("%s/%s: clone pos/len mismatch", name, spec)
			}
			// Walk the clone to the end and back; the original must not move.
			SeekEnd(c)
			SeekStart(c)
			if s.Pos() != 5 {
				t.Fatalf("%s/%s: original cursor moved to %d", name, spec, s.Pos())
			}
			// Both must continue to decode correctly.
			if got := s.Next(); got != vals[5] {
				t.Fatalf("%s/%s: original decodes %d, want %d", name, spec, got, vals[5])
			}
			if got := c.Next(); got != vals[0] {
				t.Fatalf("%s/%s: clone decodes %d, want %d", name, spec, got, vals[0])
			}
		}
	}
}
