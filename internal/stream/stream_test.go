package stream

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// datasets returns named value streams with different predictability
// profiles, mirroring the stream shapes WET produces.
func datasets() map[string][]uint32 {
	rng := rand.New(rand.NewSource(7))
	d := map[string][]uint32{}

	constant := make([]uint32, 3000)
	for i := range constant {
		constant[i] = 42
	}
	d["constant"] = constant

	strided := make([]uint32, 3000)
	for i := range strided {
		strided[i] = uint32(100 + 7*i)
	}
	d["strided"] = strided

	periodic := make([]uint32, 3000)
	pat := []uint32{3, 1, 4, 1, 5, 9, 2, 6}
	for i := range periodic {
		periodic[i] = pat[i%len(pat)]
	}
	d["periodic"] = periodic

	random := make([]uint32, 3000)
	for i := range random {
		random[i] = rng.Uint32()
	}
	d["random"] = random

	fewvals := make([]uint32, 3000)
	for i := range fewvals {
		fewvals[i] = uint32(rng.Intn(3)) * 1000
	}
	d["fewvals"] = fewvals

	d["empty"] = nil
	d["single"] = []uint32{99}
	d["short"] = []uint32{5, 5, 5}
	return d
}

func allSpecs() []Spec { return Candidates }

func TestRoundTripAllMethodsAllDatasets(t *testing.T) {
	for name, vals := range datasets() {
		for _, spec := range allSpecs() {
			s := Compress(vals, spec)
			if s.Len() != len(vals) {
				t.Fatalf("%s/%s: Len = %d, want %d", name, spec, s.Len(), len(vals))
			}
			got := Drain(s)
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("%s/%s: value %d = %d, want %d", name, spec, i, got[i], vals[i])
				}
			}
		}
	}
}

func TestBackwardTraversalMatches(t *testing.T) {
	for name, vals := range datasets() {
		for _, spec := range allSpecs() {
			c := Compress(vals, spec).NewCursor()
			SeekEnd(c)
			for i := len(vals) - 1; i >= 0; i-- {
				got := c.Prev()
				if got != vals[i] {
					t.Fatalf("%s/%s: backward value %d = %d, want %d", name, spec, i, got, vals[i])
				}
			}
			if c.Pos() != 0 {
				t.Fatalf("%s/%s: Pos after full rewind = %d", name, spec, c.Pos())
			}
		}
	}
}

// TestRandomWalkStateIndependence drives a cursor in a random walk and
// checks every step's value against the raw stream — this exercises the
// paper's key claim that the sequence of states is direction independent.
func TestRandomWalkStateIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for name, vals := range datasets() {
		if len(vals) == 0 {
			continue
		}
		for _, spec := range allSpecs() {
			c := Compress(vals, spec).NewCursor()
			pos := 0
			for step := 0; step < 2000; step++ {
				fwd := rng.Intn(2) == 0
				if pos == 0 {
					fwd = true
				}
				if pos == len(vals) {
					fwd = false
				}
				if fwd {
					got := c.Next()
					if got != vals[pos] {
						t.Fatalf("%s/%s: step %d fwd at %d = %d, want %d", name, spec, step, pos, got, vals[pos])
					}
					pos++
				} else {
					got := c.Prev()
					pos--
					if got != vals[pos] {
						t.Fatalf("%s/%s: step %d bwd at %d = %d, want %d", name, spec, step, pos, got, vals[pos])
					}
				}
				if c.Pos() != pos {
					t.Fatalf("%s/%s: Pos = %d, want %d", name, spec, c.Pos(), pos)
				}
			}
		}
	}
}

// TestSeekMatchesLinearWalk is the checkpointed-access property test: for
// every method/spec combination and every checkpoint spacing mode, a
// cursor that Seeks to a random position must read exactly what a pure
// linear walk from position 0 reads — and a second untouched cursor must
// stay byte-identical in behaviour (seeking must not leak state between
// cursors).
func TestSeekMatchesLinearWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for name, vals := range datasets() {
		if len(vals) == 0 {
			continue
		}
		for _, spec := range allSpecs() {
			// k=61: odd spacing that exercises interior checkpoints on every
			// dataset; k=-1: no interior checkpoints (boundary states only);
			// k=0: the automatic policy.
			for _, k := range []int{61, -1, 0} {
				s := CompressK(vals, spec, k)
				seeker := s.NewCursor()
				linear := s.NewCursor()
				for trial := 0; trial < 40; trial++ {
					i := rng.Intn(len(vals))
					seeker.Seek(i)
					if seeker.Pos() != i {
						t.Fatalf("%s/%s/k=%d: Seek(%d) left Pos=%d", name, spec, k, i, seeker.Pos())
					}
					if got := seeker.Next(); got != vals[i] {
						t.Fatalf("%s/%s/k=%d: Seek(%d)+Next = %d, want %d", name, spec, k, i, got, vals[i])
					}
					// The linear cursor only ever steps.
					for linear.Pos() > i {
						linear.Prev()
					}
					for linear.Pos() < i {
						linear.Next()
					}
					if got := linear.Next(); got != vals[i] {
						t.Fatalf("%s/%s/k=%d: linear walk at %d = %d, want %d", name, spec, k, i, got, vals[i])
					}
				}
			}
		}
	}
}

// TestCursorsShareNothing runs many cursors over one stream concurrently
// under -race: an immutable stream plus detached cursors must be safe with
// zero synchronization.
func TestCursorsShareNothing(t *testing.T) {
	vals := datasets()["periodic"]
	for _, spec := range allSpecs() {
		s := Compress(vals, spec)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g)))
				c := s.NewCursor()
				for trial := 0; trial < 50; trial++ {
					i := rng.Intn(len(vals))
					c.Seek(i)
					if got := c.Next(); got != vals[i] {
						t.Errorf("%s: goroutine %d read %d at %d, want %d", spec, g, got, i, vals[i])
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}
}

func TestCheckpointAccounting(t *testing.T) {
	vals := datasets()["periodic"]
	s := CompressK(vals, Spec{KindLastN, 4}, 256)
	if s.CheckpointBits() == 0 {
		t.Fatal("explicit k=256 recorded no checkpoint bits")
	}
	none := CompressK(vals, Spec{KindLastN, 4}, -1)
	if none.CheckpointBits() >= s.CheckpointBits() {
		t.Fatalf("k=-1 checkpoint bits %d not below k=256's %d", none.CheckpointBits(), s.CheckpointBits())
	}
	// SizeBits is the paper's compressed-size metric and must not move with
	// the checkpoint policy.
	if s.SizeBits() != none.SizeBits() {
		t.Fatalf("SizeBits varies with checkpoint spacing: %d vs %d", s.SizeBits(), none.SizeBits())
	}
}

// TestQuickRoundTrip property-tests round-tripping over random streams for
// every method.
func TestQuickRoundTrip(t *testing.T) {
	for _, spec := range allSpecs() {
		spec := spec
		f := func(vals []uint32) bool {
			if len(vals) > 500 {
				vals = vals[:500]
			}
			s := Compress(vals, spec)
			got := Drain(s)
			if len(got) != len(vals) {
				return false
			}
			for i := range vals {
				if got[i] != vals[i] {
					return false
				}
			}
			// And backward.
			c := s.NewCursor()
			SeekEnd(c)
			for i := len(vals) - 1; i >= 0; i-- {
				if c.Prev() != vals[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
	}
}

func TestCompressionEffectiveness(t *testing.T) {
	d := datasets()
	raw := func(vals []uint32) uint64 { return uint64(len(vals)) * 32 }

	// FCM must crush a constant stream.
	s := Compress(d["constant"], Spec{KindFCM, 2})
	if s.SizeBits() > raw(d["constant"])/4 {
		t.Fatalf("fcm2 on constant: %d bits vs raw %d", s.SizeBits(), raw(d["constant"]))
	}
	// dFCM must crush a strided stream; plain FCM must not.
	sd := Compress(d["strided"], Spec{KindDFCM, 1})
	if sd.SizeBits() > raw(d["strided"])/4 {
		t.Fatalf("dfcm1 on strided: %d bits vs raw %d", sd.SizeBits(), raw(d["strided"]))
	}
	sf := Compress(d["strided"], Spec{KindFCM, 2})
	if sf.SizeBits() < sd.SizeBits() {
		t.Fatalf("fcm2 (%d bits) beat dfcm1 (%d bits) on a strided stream", sf.SizeBits(), sd.SizeBits())
	}
	// last-n must do well on a small working set of values.
	sl := Compress(d["fewvals"], Spec{KindLastN, 4})
	if sl.SizeBits() > raw(d["fewvals"])/3 {
		t.Fatalf("last4 on fewvals: %d bits vs raw %d", sl.SizeBits(), raw(d["fewvals"]))
	}
	// Periodic streams are FCM's home turf.
	sp := Compress(d["periodic"], Spec{KindFCM, 3})
	if sp.SizeBits() > raw(d["periodic"])/4 {
		t.Fatalf("fcm3 on periodic: %d bits vs raw %d", sp.SizeBits(), raw(d["periodic"]))
	}
}

func TestCompressBestPicksSensibly(t *testing.T) {
	d := datasets()
	for name, vals := range d {
		s := CompressBest(vals)
		got := Drain(s)
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("CompressBest(%s) corrupted value %d", name, i)
			}
		}
	}
	// On a strided stream the winner must be stride-aware or at least beat
	// verbatim decisively.
	s := CompressBest(d["strided"])
	if s.SizeBits() > uint64(len(d["strided"]))*32/2 {
		t.Fatalf("CompressBest(strided) picked %s with %d bits", s.Name(), s.SizeBits())
	}
	// On pure noise, selection must not blow up the stream badly: the pick
	// must stay within ~36/32 of raw (a 1-bit-per-value penalty plus tables).
	s = CompressBest(d["random"])
	if s.SizeBits() > uint64(len(d["random"]))*40 {
		t.Fatalf("CompressBest(random) = %s, %d bits for %d values", s.Name(), s.SizeBits(), len(d["random"]))
	}
}

func TestSeekToAndAt(t *testing.T) {
	vals := datasets()["periodic"]
	s := Compress(vals, Spec{KindFCM, 2})
	for _, i := range []int{0, 1, 17, 1000, 2999, 5, 2998} {
		if got := At(s, i); got != vals[i] {
			t.Fatalf("At(%d) = %d, want %d", i, got, vals[i])
		}
	}
	c := s.NewCursor()
	SeekTo(c, 100)
	if c.Pos() != 100 {
		t.Fatalf("Pos = %d, want 100", c.Pos())
	}
}

func TestEdgePanics(t *testing.T) {
	c := Compress([]uint32{1, 2}, Spec{KindFCM, 1}).NewCursor()
	SeekStart(c)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Prev at start did not panic")
			}
		}()
		c.Prev()
	}()
	SeekEnd(c)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Next at end did not panic")
			}
		}()
		c.Next()
	}()
}

func TestBitstack(t *testing.T) {
	var b bitstack
	b.pushBits(0xDEADBEEF, 32)
	b.pushBit(true)
	b.pushBits(5, 3)
	b.pushBit(false)
	if b.popBit() {
		t.Fatal("top bit should be false")
	}
	if got := b.popBits(3); got != 5 {
		t.Fatalf("popBits(3) = %d, want 5", got)
	}
	if !b.popBit() {
		t.Fatal("next bit should be true")
	}
	if got := b.popBits(32); got != 0xDEADBEEF {
		t.Fatalf("popBits(32) = %#x", got)
	}
	if !b.empty() {
		t.Fatalf("stack not empty: %d bits", b.bits())
	}
}

func TestBitstackQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		var b bitstack
		type rec struct {
			v uint32
			k uint
		}
		var pushed []rec
		for _, op := range ops {
			k := uint(op%32) + 1
			v := uint32(op) & (1<<k - 1)
			b.pushBits(v, k)
			pushed = append(pushed, rec{v, k})
		}
		for i := len(pushed) - 1; i >= 0; i-- {
			if got := b.popBits(pushed[i].k); got != pushed[i].v {
				return false
			}
		}
		return b.empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBitvecMatchesBitstack pins the read-only store to the mutable stack:
// freezing a stack and reading entries by absolute offset must reproduce
// what popping returns.
func TestBitvecMatchesBitstack(t *testing.T) {
	var b bitstack
	vals := []uint32{0xDEADBEEF, 5, 1, 0, 0xFFFFFFFF, 1234567}
	widths := []uint{32, 3, 1, 2, 32, 21}
	for i := range vals {
		b.pushBits(vals[i], widths[i])
	}
	v := b.freeze()
	end := v.n
	for i := len(vals) - 1; i >= 0; i-- {
		if got := v.top(end, widths[i]); got != vals[i] {
			t.Fatalf("top at %d = %#x, want %#x", i, got, vals[i])
		}
		end -= uint64(widths[i])
	}
	if end != 0 {
		t.Fatalf("residual bits: %d", end)
	}
}

func TestVerbatimSize(t *testing.T) {
	s := Compress([]uint32{1, 2, 3}, Spec{KindVerbatim, 0})
	if s.SizeBits() != 3*32+HeaderBits {
		t.Fatalf("verbatim size = %d", s.SizeBits())
	}
}

func TestTableBitsScaling(t *testing.T) {
	if tableBits(10) != 4 {
		t.Fatalf("tableBits(10) = %d", tableBits(10))
	}
	if tableBits(1<<20) != 16 {
		t.Fatalf("tableBits(1M) = %d", tableBits(1<<20))
	}
	if b := tableBits(1000); b < 4 || b > 16 {
		t.Fatalf("tableBits(1000) = %d", b)
	}
}

func BenchmarkFCMForward(b *testing.B) {
	vals := make([]uint32, 1<<16)
	for i := range vals {
		vals[i] = uint32(i % 257)
	}
	c := Compress(vals, Spec{KindFCM, 2}).NewCursor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Pos() == c.Len() {
			c.Seek(0)
		}
		c.Next()
	}
}

func BenchmarkLastNForward(b *testing.B) {
	vals := make([]uint32, 1<<16)
	for i := range vals {
		vals[i] = uint32(i % 7)
	}
	c := Compress(vals, Spec{KindLastN, 4}).NewCursor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Pos() == c.Len() {
			c.Seek(0)
		}
		c.Next()
	}
}

func BenchmarkSeekCheckpointed(b *testing.B) {
	vals := make([]uint32, 1<<16)
	for i := range vals {
		vals[i] = uint32(i % 257)
	}
	s := Compress(vals, Spec{KindFCM, 2})
	c := s.NewCursor()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Seek(rng.Intn(len(vals)))
	}
}

func TestCloneIndependence(t *testing.T) {
	for name, vals := range datasets() {
		if len(vals) < 10 {
			continue
		}
		for _, spec := range allSpecs() {
			s := Compress(vals, spec)
			cur := s.NewCursor()
			SeekTo(cur, 5)
			c := cur.Clone()
			if c.Pos() != 5 || c.Len() != cur.Len() {
				t.Fatalf("%s/%s: clone pos/len mismatch", name, spec)
			}
			// Walk the clone to the end and back; the original must not move.
			SeekEnd(c)
			SeekStart(c)
			if cur.Pos() != 5 {
				t.Fatalf("%s/%s: original cursor moved to %d", name, spec, cur.Pos())
			}
			// Both must continue to decode correctly.
			if got := cur.Next(); got != vals[5] {
				t.Fatalf("%s/%s: original decodes %d, want %d", name, spec, got, vals[5])
			}
			if got := c.Next(); got != vals[0] {
				t.Fatalf("%s/%s: clone decodes %d, want %d", name, spec, got, vals[0])
			}
		}
	}
}
