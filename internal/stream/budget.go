package stream

import "io"

// countWriter tallies bytes without retaining them.
type countWriter struct{ n uint64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += uint64(len(p))
	return len(p), nil
}

// SaveSize returns the exact number of bytes Save would write for s, by
// running the serializer against a counting writer. This is the byte-budget
// optimizer's per-stream cost oracle: unlike SizeBits it includes every
// framing field Save emits, so summing SaveSize over a container's streams
// plus the fixed section overhead reproduces the on-disk size exactly.
func SaveSize(s Stream) (uint64, error) {
	var cw countWriter
	if err := Save(&cw, s); err != nil {
		return 0, err
	}
	return cw.n, nil
}

// Empty returns the canonical zero-length stream (a verbatim with no
// values). Budgeted freezes substitute it for dropped value and dependence
// streams so the container keeps an identical payload shape — Save writes
// the 9-byte empty-verbatim form — while the data itself is gone.
func Empty() Stream { return newVerbatim(nil) }

// SampleStride quantizes vals to multiples of k (floored, with a minimum of
// 1 so timestamp streams stay within their 1..Time domain) and returns the
// widened sequence. Quantized runs are highly compressible, which is what
// makes timestamp widening a useful rung on the budgeted-freeze degradation
// ladder: positions are preserved (the result has the same length), only
// resolution is lost.
func SampleStride(vals []uint32, k uint32) []uint32 {
	out := make([]uint32, len(vals))
	for i, v := range vals {
		q := (v / k) * k
		if q == 0 {
			q = 1
		}
		out[i] = q
	}
	return out
}

var _ io.Writer = (*countWriter)(nil)
