package stream

import (
	"bytes"
	"sync"
	"sync/atomic"
)

// ResidencyHooks observes and gates the decode lifecycle of an Evictable
// stream, letting a cache own the residency policy without the stream
// knowing about it. Hooks are invoked from whatever goroutine touches the
// stream; BeforeLoad and AfterLoad run under the stream's load mutex (so at
// most one pair is in flight per stream), Touched runs lock-free on the hit
// path. A hook must not touch the stream it is called for (Evict excepted —
// Evict is lock-free and safe from anywhere).
type ResidencyHooks interface {
	// BeforeLoad gates a decode about to run (a cache miss). Returning an
	// error aborts the touch: the caller's cursor spawn panics with a
	// *DecodeError carrying it, which error-returning query entry points
	// recover into their error result.
	BeforeLoad(e *Evictable) error
	// AfterLoad reports a completed decode and the decoded state's resident
	// weight in bytes (payload plus rebuilt checkpoints).
	AfterLoad(e *Evictable, weight uint64)
	// Touched reports a cursor spawn served by an already-resident decode
	// (a cache hit).
	Touched(e *Evictable)
}

// Evictable is a stream that can drop its decoded state and rebuild it on
// demand: it retains the exact serialized bytes Save wrote and decodes them
// (Load — full normalization, checkpoint rebuild) on first cursor touch,
// single-flight. Evict releases the decoded state again; the next touch
// re-decodes. The serialized bytes are the permanent residency floor, the
// decoded state (tables, entry-store copies, checkpoints) is what a
// byte-budgeted cache reclaims.
//
// Eviction is safe against live cursors: a cursor holds a reference to the
// decoded inner stream it was spawned from, so evicting only unpins the
// stream — in-flight traversals keep their (immutable) stream alive until
// they drop it, and later touches decode a fresh copy.
type Evictable struct {
	raw  []byte
	name string
	m    int
	size uint64

	// hooks and stats are set before the stream is shared (SetHooks,
	// AttachStats); neither write is synchronized with cursor traffic.
	hooks ResidencyHooks
	stats *SeekCounters

	inner  atomic.Pointer[residentState]
	loadMu sync.Mutex // serializes the decode slow path
}

// residentState pairs a decoded stream with the weight it was admitted at,
// so eviction credits the cache exactly what loading debited.
type residentState struct {
	s      Stream
	weight uint64
}

// NewEvictableFromScan wraps a stream just returned by Scan together with
// the serialized bytes Scan consumed. Only streams with a deferred decode
// (the predictor families) benefit from eviction; for materialized streams
// (verbatim, packed — their decoded form is their payload) it returns nil
// and the caller keeps the stream as is. The raw bytes are copied, so the
// caller's buffer is not retained.
func NewEvictableFromScan(s Stream, raw []byte) *Evictable {
	l, ok := s.(*lazyStream)
	if !ok {
		return nil
	}
	cp := make([]byte, len(raw))
	copy(cp, raw)
	return &Evictable{raw: cp, name: l.name, m: l.m, size: l.size}
}

// SetHooks installs the residency observer. Call before the stream is
// shared across goroutines.
func (e *Evictable) SetHooks(h ResidencyHooks) { e.hooks = h }

// resident returns the decoded inner stream without loading, or nil.
func (e *Evictable) resident() Stream {
	if st := e.inner.Load(); st != nil {
		return st.s
	}
	return nil
}

// Resident reports whether the decoded state is currently held.
func (e *Evictable) Resident() bool { return e.inner.Load() != nil }

// ResidentBytes returns the decoded state's weight in bytes, or 0 when not
// resident.
func (e *Evictable) ResidentBytes() uint64 {
	if st := e.inner.Load(); st != nil {
		return st.weight
	}
	return 0
}

// RawBytes returns the size of the retained serialized form — the
// non-reclaimable floor of this stream.
func (e *Evictable) RawBytes() int { return len(e.raw) }

// acquire returns the decoded inner stream, decoding it if necessary. A
// decode failure — or a BeforeLoad veto — panics with a *DecodeError, the
// same contract as a lazy stream's first touch.
func (e *Evictable) acquire() Stream {
	if st := e.inner.Load(); st != nil {
		if e.hooks != nil {
			e.hooks.Touched(e)
		}
		return st.s
	}
	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	if st := e.inner.Load(); st != nil {
		// Lost the race to a concurrent first touch: that load already
		// charged the cache, this touch is a hit.
		if e.hooks != nil {
			e.hooks.Touched(e)
		}
		return st.s
	}
	if e.hooks != nil {
		if err := e.hooks.BeforeLoad(e); err != nil {
			panic(&DecodeError{Stream: e.name, Cause: err})
		}
	}
	s, err := Load(bytes.NewReader(e.raw))
	if err != nil {
		panic(&DecodeError{Stream: e.name, Cause: err})
	}
	AttachStats(s, e.stats)
	st := &residentState{s: s, weight: s.SizeBits()/8 + s.CheckpointBits()/8}
	e.inner.Store(st)
	if e.hooks != nil {
		e.hooks.AfterLoad(e, st.weight)
	}
	return s
}

// Evict drops the decoded state, returning the weight released (0 when it
// was not resident). Lock-free: safe to call from eviction paths that hold
// cache locks, concurrently with touches and live cursors. A touch racing
// the eviction either got the old state (its cursors stay valid) or will
// decode anew.
func (e *Evictable) Evict() uint64 {
	if st := e.inner.Swap(nil); st != nil {
		return st.weight
	}
	return 0
}

func (e *Evictable) Len() int         { return e.m }
func (e *Evictable) SizeBits() uint64 { return e.size }
func (e *Evictable) Name() string     { return e.name }

// CheckpointBits reports the decoded state's checkpoint overhead, 0 while
// evicted (checkpoints do not exist then — mirrors lazyStream).
func (e *Evictable) CheckpointBits() uint64 {
	if s := e.resident(); s != nil {
		return s.CheckpointBits()
	}
	return 0
}

func (e *Evictable) NewCursor() Cursor { return e.acquire().NewCursor() }
