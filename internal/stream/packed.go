package stream

import (
	"fmt"
	"math/bits"
)

// packed stores the stream with a fixed bit width — the smallest width that
// holds the stream's maximum value. It is trivially bidirectional with O(1)
// random access and is the natural encoding for tier-1 pattern index
// sequences, so it participates in method selection alongside the
// predictors. The payload is immutable; cursors carry only a position.
type packed struct {
	data  bitvec
	width uint
	m     int
	stats *SeekCounters
}

func newPacked(vals []uint32) *packed {
	var max uint32
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	width := uint(bits.Len32(max))
	p := &packed{width: width, m: len(vals)}
	var bs bitstack
	for _, v := range vals {
		bs.pushBits(v, width)
	}
	p.data = bs.freeze()
	return p
}

func (p *packed) Len() int               { return p.m }
func (p *packed) Name() string           { return fmt.Sprintf("packed%d", p.width) }
func (p *packed) CheckpointBits() uint64 { return 0 }

func (p *packed) SizeBits() uint64 {
	return uint64(p.m)*uint64(p.width) + HeaderBits
}

func (p *packed) NewCursor() Cursor { return &packedCursor{p: p} }

type packedCursor struct {
	p   *packed
	pos int
}

func (c *packedCursor) Len() int { return c.p.m }
func (c *packedCursor) Pos() int { return c.pos }

func (c *packedCursor) Clone() Cursor {
	cp := *c
	return &cp
}

func (c *packedCursor) Next() uint32 {
	if c.pos >= c.p.m {
		panic("stream: Next past end")
	}
	v := c.p.data.get(uint64(c.pos)*uint64(c.p.width), c.p.width)
	c.pos++
	return v
}

func (c *packedCursor) Prev() uint32 {
	if c.pos == 0 {
		panic("stream: Prev past start")
	}
	c.pos--
	return c.p.data.get(uint64(c.pos)*uint64(c.p.width), c.p.width)
}

func (c *packedCursor) NextN(dst []uint32) int {
	n := c.p.m - c.pos
	if n > len(dst) {
		n = len(dst)
	}
	if n <= 0 {
		return 0
	}
	width := c.p.width
	for i := 0; i < n; i++ {
		dst[i] = c.p.data.get(uint64(c.pos+i)*uint64(width), width)
	}
	c.pos += n
	return n
}

func (c *packedCursor) PrevN(dst []uint32) int {
	n := c.pos
	if n > len(dst) {
		n = len(dst)
	}
	if n <= 0 {
		return 0
	}
	width := c.p.width
	for i := 0; i < n; i++ {
		dst[i] = c.p.data.get(uint64(c.pos-1-i)*uint64(width), width)
	}
	c.pos -= n
	return n
}

func (c *packedCursor) Seek(i int) {
	if i < 0 || i > c.p.m {
		panic(fmt.Sprintf("stream: seek to %d outside [0,%d]", i, c.p.m))
	}
	c.pos = i
	noteSeek(c.p.stats, false, 0)
}
