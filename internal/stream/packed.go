package stream

import (
	"fmt"
	"math/bits"
)

// packed stores the stream with a fixed bit width — the smallest width that
// holds the stream's maximum value. It is trivially bidirectional and is the
// natural encoding for tier-1 pattern index sequences, so it participates in
// method selection alongside the predictors.
type packed struct {
	data  bitstackRO
	width uint
	m     int
	pos   int
}

// bitstackRO is a read-only bit vector with random access.
type bitstackRO struct {
	words []uint64
}

func (b *bitstackRO) get(start uint64, k uint) uint32 {
	if k == 0 {
		return 0
	}
	word := start >> 6
	off := start & 63
	v := b.words[word] >> off
	if off+uint64(k) > 64 && word+1 < uint64(len(b.words)) {
		v |= b.words[word+1] << (64 - off)
	}
	return uint32(v & (1<<k - 1))
}

func newPacked(vals []uint32) *packed {
	var max uint32
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	width := uint(bits.Len32(max))
	p := &packed{width: width, m: len(vals)}
	var bs bitstack
	for _, v := range vals {
		bs.pushBits(v, width)
	}
	p.data.words = bs.words
	return p
}

func (p *packed) Len() int     { return p.m }
func (p *packed) Pos() int     { return p.pos }
func (p *packed) Name() string { return fmt.Sprintf("packed%d", p.width) }

func (p *packed) SizeBits() uint64 {
	return uint64(p.m)*uint64(p.width) + HeaderBits
}

// Clone implements Stream (the packed payload is immutable and shared).
func (p *packed) Clone() Stream {
	c := *p
	return &c
}

func (p *packed) Next() uint32 {
	if p.pos >= p.m {
		panic("stream: Next past end")
	}
	v := p.data.get(uint64(p.pos)*uint64(p.width), p.width)
	p.pos++
	return v
}

func (p *packed) Prev() uint32 {
	if p.pos == 0 {
		panic("stream: Prev past start")
	}
	p.pos--
	return p.data.get(uint64(p.pos)*uint64(p.width), p.width)
}
