package stream

// bitstack is an append/pop-at-end bit vector. Compressed entries are laid
// out with their flag bit *last* so that popping from the end can first read
// the flag and then the (optional) payload — the property that makes the
// FR and BL entry stores of a bidirectional stream parse-able from the
// cursor side.
type bitstack struct {
	words []uint64
	n     uint64 // bit length
}

// pushBits appends the low k bits of v (k <= 32).
func (b *bitstack) pushBits(v uint32, k uint) {
	if k == 0 {
		return
	}
	word := b.n >> 6
	off := b.n & 63
	for uint64(len(b.words)) <= (b.n+uint64(k)-1)>>6 {
		b.words = append(b.words, 0)
	}
	mask := uint64(v) & ((1 << k) - 1)
	b.words[word] |= mask << off
	if off+uint64(k) > 64 {
		b.words[word+1] |= mask >> (64 - off)
	}
	b.n += uint64(k)
}

// popBits removes and returns the top k bits (k <= 32). The last-pushed bit
// is the most significant bit of the result.
func (b *bitstack) popBits(k uint) uint32 {
	if uint64(k) > b.n {
		panic("bitstack: underflow")
	}
	b.n -= uint64(k)
	start := b.n
	word := start >> 6
	off := start & 63
	v := b.words[word] >> off
	if off+uint64(k) > 64 && word+1 < uint64(len(b.words)) {
		v |= b.words[word+1] << (64 - off)
	}
	v &= (1 << k) - 1
	// Clear the vacated bits so future pushes OR cleanly.
	b.words[word] &^= ((uint64(1)<<k - 1) << off)
	if off+uint64(k) > 64 && word+1 < uint64(len(b.words)) {
		b.words[word+1] &^= (uint64(1)<<k - 1) >> (64 - off)
	}
	return uint32(v)
}

// pushBit appends one bit.
func (b *bitstack) pushBit(v bool) {
	if v {
		b.pushBits(1, 1)
	} else {
		b.pushBits(0, 1)
	}
}

// popBit removes and returns the top bit.
func (b *bitstack) popBit() bool { return b.popBits(1) == 1 }

// bits returns the current bit length.
func (b *bitstack) bits() uint64 { return b.n }

// empty reports whether the stack holds no bits.
func (b *bitstack) empty() bool { return b.n == 0 }

// clone deep-copies the stack.
func (b *bitstack) clone() bitstack {
	return bitstack{words: append([]uint64(nil), b.words...), n: b.n}
}

// bitvec is an immutable bit vector with random access, used as the shared
// read-only entry store behind detached cursors. A cursor addresses the
// store by its current bit length: because entries carry their flag bit
// *last*, the entry "on top" at length L has its flag at bit L-1 and its
// payload just below.
type bitvec struct {
	words []uint64
	n     uint64 // bit length
}

// freeze snapshots a bitstack into an immutable bitvec (the words are
// copied, trimmed to the used length).
func (b *bitstack) freeze() bitvec {
	nw := (b.n + 63) >> 6
	return bitvec{words: append([]uint64(nil), b.words[:nw]...), n: b.n}
}

// get reads k bits (k <= 32) starting at absolute bit position start.
func (b *bitvec) get(start uint64, k uint) uint32 {
	if k == 0 {
		return 0
	}
	word := start >> 6
	off := start & 63
	v := b.words[word] >> off
	if off+uint64(k) > 64 && word+1 < uint64(len(b.words)) {
		v |= b.words[word+1] << (64 - off)
	}
	return uint32(v & (1<<k - 1))
}

// top reads the k bits ending at absolute position end (the entry payload
// convention: last-pushed bit highest).
func (b *bitvec) top(end uint64, k uint) uint32 { return b.get(end-uint64(k), k) }

// sizeBits reports the storage the vector occupies.
func (b *bitvec) sizeBits() uint64 { return uint64(len(b.words)) * 64 }
