package stream

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// deferredKind reports whether Scan defers a kind's decode (the predictor
// methods, whose load cost is the normalization walk) or loads it eagerly
// (verbatim and packed, which are already position-free).
func deferredKind(k Kind) bool {
	switch k {
	case KindVerbatim, KindPacked:
		return false
	}
	return true
}

// TestScanMatchesLoad pins Scan's lazy streams to Load's eager ones: header
// facts available without decoding, identical values in both directions
// after the first touch, and a byte-identical re-Save.
func TestScanMatchesLoad(t *testing.T) {
	for name, vals := range datasets() {
		for _, spec := range allSpecs() {
			data := saveBytes(t, vals, spec)
			eager, err := Load(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("%s/%s: Load: %v", name, spec, err)
			}
			lazy, err := Scan(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("%s/%s: Scan: %v", name, spec, err)
			}
			if Materialized(lazy) != !deferredKind(spec.Kind) {
				t.Fatalf("%s/%s: Materialized = %v before first touch", name, spec, Materialized(lazy))
			}
			// Header facts must not force the decode.
			if lazy.Len() != eager.Len() {
				t.Fatalf("%s/%s: lazy Len %d != %d", name, spec, lazy.Len(), eager.Len())
			}
			if lazy.SizeBits() != eager.SizeBits() {
				t.Fatalf("%s/%s: lazy SizeBits %d != %d", name, spec, lazy.SizeBits(), eager.SizeBits())
			}
			if lazy.Name() != eager.Name() {
				t.Fatalf("%s/%s: lazy Name %q != %q", name, spec, lazy.Name(), eager.Name())
			}
			if deferredKind(spec.Kind) {
				if Materialized(lazy) {
					t.Fatalf("%s/%s: header reads forced the decode", name, spec)
				}
				if cb := lazy.CheckpointBits(); cb != 0 {
					t.Fatalf("%s/%s: CheckpointBits %d before decode, want 0", name, spec, cb)
				}
			}
			// First touch: traverse both directions and compare.
			c := lazy.NewCursor()
			if !Materialized(lazy) {
				t.Fatalf("%s/%s: NewCursor did not materialize", name, spec)
			}
			for i := 0; i < len(vals); i++ {
				if got := c.Next(); got != vals[i] {
					t.Fatalf("%s/%s: lazy fwd value %d = %d, want %d", name, spec, i, got, vals[i])
				}
			}
			for i := len(vals) - 1; i >= 0; i-- {
				if got := c.Prev(); got != vals[i] {
					t.Fatalf("%s/%s: lazy bwd value %d = %d, want %d", name, spec, i, got, vals[i])
				}
			}
			if lazy.CheckpointBits() != eager.CheckpointBits() {
				t.Fatalf("%s/%s: post-decode CheckpointBits %d != %d",
					name, spec, lazy.CheckpointBits(), eager.CheckpointBits())
			}
			// Save materializes and must reproduce the canonical bytes.
			var buf bytes.Buffer
			if err := Save(&buf, lazy); err != nil {
				t.Fatalf("%s/%s: Save of lazy stream: %v", name, spec, err)
			}
			if !bytes.Equal(buf.Bytes(), data) {
				t.Fatalf("%s/%s: Save of lazy stream not byte-identical", name, spec)
			}
		}
	}
}

// TestScanConcurrentFirstTouch races 8 goroutines into one deferred
// stream's first materialization (run under -race): decode must be
// single-flight and every cursor must read the true values.
func TestScanConcurrentFirstTouch(t *testing.T) {
	vals := make([]uint32, 4096)
	for i := range vals {
		vals[i] = uint32(i % 17 * 3)
	}
	for _, spec := range []Spec{{KindFCM, 2}, {KindDFCM, 1}, {KindLastN, 4}, {KindLastNStride, 2}} {
		s, err := Scan(bytes.NewReader(saveBytes(t, vals, spec)))
		if err != nil {
			t.Fatalf("%s: Scan: %v", spec, err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := s.NewCursor()
				for i := range vals {
					if got := c.Next(); got != vals[i] {
						t.Errorf("%s: concurrent value %d = %d, want %d", spec, i, got, vals[i])
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}

// TestScanRejectsStructuralGarbage: structural validation still happens at
// scan time, only the normalization walk is deferred.
func TestScanRejectsStructuralGarbage(t *testing.T) {
	if _, err := Scan(bytes.NewReader([]byte{250, 0, 0, 0, 0})); err == nil {
		t.Fatal("Scan accepted an unknown kind tag")
	}
	data := saveBytes(t, []uint32{1, 2, 3}, Spec{KindFCM, 1})
	if _, err := Scan(bytes.NewReader(data[:len(data)-2])); err == nil {
		t.Fatal("Scan accepted a truncated stream")
	}
}

// TestScanDeferredDecodeFailurePanics: a forged store that passes structural
// checks (so Scan accepts it) must fail loudly at first touch, not return
// wrong values. The bytes are the empty-entry-store forgery Load rejects
// eagerly.
func TestScanDeferredDecodeFailurePanics(t *testing.T) {
	var buf bytes.Buffer
	writeAll(&buf, uint8(KindFCM),
		uint32(2), // m: claims two values
		uint32(1), // order
		uint32(1), // tbBits
		uint32(0), // pos
		uint64(0)) // size
	writeU32s(&buf, []uint32{0, 0})      // frtb
	writeU32s(&buf, []uint32{0, 0})      // bltb
	writeU32s(&buf, []uint32{0})         // win
	writeAll(&buf, uint64(0), uint32(0)) // fr bitstack: empty
	writeAll(&buf, uint64(0), uint32(0)) // bl bitstack: empty
	s, err := Scan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Scan rejected structurally plausible bytes eagerly: %v", err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("first touch of a forged deferred stream did not panic")
		}
		if !strings.Contains(fmtPanic(r), "deferred decode") {
			t.Fatalf("panic %v does not name the deferred decode", r)
		}
	}()
	s.NewCursor()
}

func fmtPanic(r interface{}) string {
	if s, ok := r.(string); ok {
		return s
	}
	if e, ok := r.(error); ok {
		return e.Error()
	}
	return ""
}
