package stream

import "sync/atomic"

// Checkpoints trade space for seek time: a checkpoint snapshots the full
// cursor state (entry-store lengths plus predictor tables/window) at one
// position, so Seek(i) restores the nearest snapshot and steps at most the
// spacing instead of walking from the current position. Two states come for
// free and are always available: position 0 (tables are canonically
// all-zero there, except the BL table which the stream stores anyway) and
// position Len (the construction-end state, kept as the last checkpoint).

// DefaultCheckpointK is the minimum checkpoint spacing (in values) the
// automatic policy will use. With k == 0, the spacing is widened beyond
// this floor for methods with large predictor tables so that total
// checkpoint storage stays below ~25% of the raw (uncompressed) stream.
const DefaultCheckpointK = 1024

// ckSpacing resolves the checkpoint spacing for a stream of m values whose
// per-checkpoint state costs stateBits: k > 0 is honored verbatim, k < 0
// disables interior checkpoints, k == 0 applies the automatic budget.
func ckSpacing(k, m int, stateBits uint64) int {
	if k != 0 {
		if k < 0 {
			return 0
		}
		return k
	}
	if m == 0 || stateBits == 0 {
		return 0
	}
	// Budget: all interior checkpoints together may cost at most 25% of the
	// raw 32-bit stream (m*8 bits).
	maxCks := uint64(m) * 8 / stateBits
	if maxCks == 0 {
		return 0
	}
	sp := (m + int(maxCks) - 1) / int(maxCks)
	if sp < DefaultCheckpointK {
		sp = DefaultCheckpointK
	}
	return sp
}

// restoreCost converts a checkpoint restore (copying stateWords words of
// table state) into step-equivalents, so Seek can compare "jump to a
// checkpoint and walk" against "walk from where the cursor is". Copying is
// roughly 8 words per step-equivalent.
func restoreCost(stateWords int) int { return stateWords/8 + 1 }

// SeekStats is a snapshot of cumulative seek-cost counters.
// Counters are cumulative; CLI consumers print deltas around a query.
type SeekStats struct {
	// Seeks counts Seek invocations.
	Seeks uint64
	// Restores counts seeks served by restoring a checkpoint or a canonical
	// start/end state (as opposed to stepping from the current position).
	Restores uint64
	// Steps counts single-value cursor steps walked on behalf of seeks.
	Steps uint64
}

// Sub returns the counter deltas s - before, for bracketing a query with
// two ReadSeekStats calls.
func (s SeekStats) Sub(before SeekStats) SeekStats {
	return SeekStats{
		Seeks:    s.Seeks - before.Seeks,
		Restores: s.Restores - before.Restores,
		Steps:    s.Steps - before.Steps,
	}
}

// SeekCounters is an attachable per-stream seek-cost sink. A counter set is
// shared by every stream it is attached to (AttachStats), so one set per
// trace — or per corpus — aggregates exactly the seeks spent on that trace's
// cursors. All fields are atomics: cursors on many goroutines update one set
// without synchronization.
type SeekCounters struct {
	seeks    atomic.Uint64
	restores atomic.Uint64
	steps    atomic.Uint64
}

// Read returns a snapshot of the counters.
func (c *SeekCounters) Read() SeekStats {
	return SeekStats{
		Seeks:    c.seeks.Load(),
		Restores: c.restores.Load(),
		Steps:    c.steps.Load(),
	}
}

func (c *SeekCounters) note(restored bool, steps int) {
	c.seeks.Add(1)
	if restored {
		c.restores.Add(1)
	}
	if steps > 0 {
		c.steps.Add(uint64(steps))
	}
}

// AttachStats points s's seek accounting at c (nil detaches). Lazy and
// evictable streams forward the attachment to their decoded inner stream,
// including decodes that happen later. Attach before the stream is shared
// across goroutines: the attachment itself is not synchronized with
// concurrent cursor traffic.
func AttachStats(s Stream, c *SeekCounters) {
	switch t := s.(type) {
	case *verbatim:
		t.stats = c
	case *packed:
		t.stats = c
	case *fcmStream:
		t.stats = c
	case *lastNStream:
		t.stats = c
	case *lazyStream:
		t.stats = c
		if inner := t.peek(); inner != nil {
			AttachStats(inner, c)
		}
	case *Evictable:
		t.stats = c
		if inner := t.resident(); inner != nil {
			AttachStats(inner, c)
		}
	}
}

// StatsOf returns the counter set attached to s, or nil.
func StatsOf(s Stream) *SeekCounters {
	switch t := s.(type) {
	case *verbatim:
		return t.stats
	case *packed:
		return t.stats
	case *fcmStream:
		return t.stats
	case *lastNStream:
		return t.stats
	case *lazyStream:
		return t.stats
	case *Evictable:
		return t.stats
	}
	return nil
}

// The process-wide aggregate counters behind ReadSeekStats. Per-stream
// attachments update these too, so the deprecated global view stays a true
// superset of every per-trace set.
var globalSeekStats SeekCounters

// ReadSeekStats returns the cumulative process-wide seek statistics.
//
// Deprecated: the process-wide aggregate is meaningless when several traces
// are served from one process — attach a SeekCounters per trace
// (AttachStats) and read that instead. Kept as a shim for single-trace CLI
// consumers.
func ReadSeekStats() SeekStats {
	return globalSeekStats.Read()
}

func noteSeek(c *SeekCounters, restored bool, steps int) {
	globalSeekStats.note(restored, steps)
	if c != nil {
		c.note(restored, steps)
	}
}
