package stream

import "sync/atomic"

// Checkpoints trade space for seek time: a checkpoint snapshots the full
// cursor state (entry-store lengths plus predictor tables/window) at one
// position, so Seek(i) restores the nearest snapshot and steps at most the
// spacing instead of walking from the current position. Two states come for
// free and are always available: position 0 (tables are canonically
// all-zero there, except the BL table which the stream stores anyway) and
// position Len (the construction-end state, kept as the last checkpoint).

// DefaultCheckpointK is the minimum checkpoint spacing (in values) the
// automatic policy will use. With k == 0, the spacing is widened beyond
// this floor for methods with large predictor tables so that total
// checkpoint storage stays below ~25% of the raw (uncompressed) stream.
const DefaultCheckpointK = 1024

// ckSpacing resolves the checkpoint spacing for a stream of m values whose
// per-checkpoint state costs stateBits: k > 0 is honored verbatim, k < 0
// disables interior checkpoints, k == 0 applies the automatic budget.
func ckSpacing(k, m int, stateBits uint64) int {
	if k != 0 {
		if k < 0 {
			return 0
		}
		return k
	}
	if m == 0 || stateBits == 0 {
		return 0
	}
	// Budget: all interior checkpoints together may cost at most 25% of the
	// raw 32-bit stream (m*8 bits).
	maxCks := uint64(m) * 8 / stateBits
	if maxCks == 0 {
		return 0
	}
	sp := (m + int(maxCks) - 1) / int(maxCks)
	if sp < DefaultCheckpointK {
		sp = DefaultCheckpointK
	}
	return sp
}

// restoreCost converts a checkpoint restore (copying stateWords words of
// table state) into step-equivalents, so Seek can compare "jump to a
// checkpoint and walk" against "walk from where the cursor is". Copying is
// roughly 8 words per step-equivalent.
func restoreCost(stateWords int) int { return stateWords/8 + 1 }

// SeekStats aggregates the cost of all Cursor.Seek calls process-wide.
// Counters are cumulative; CLI consumers print deltas around a query.
type SeekStats struct {
	// Seeks counts Seek invocations.
	Seeks uint64
	// Restores counts seeks served by restoring a checkpoint or a canonical
	// start/end state (as opposed to stepping from the current position).
	Restores uint64
	// Steps counts single-value cursor steps walked on behalf of seeks.
	Steps uint64
}

// Sub returns the counter deltas s - before, for bracketing a query with
// two ReadSeekStats calls.
func (s SeekStats) Sub(before SeekStats) SeekStats {
	return SeekStats{
		Seeks:    s.Seeks - before.Seeks,
		Restores: s.Restores - before.Restores,
		Steps:    s.Steps - before.Steps,
	}
}

var (
	statSeeks    atomic.Uint64
	statRestores atomic.Uint64
	statSteps    atomic.Uint64
)

// ReadSeekStats returns the cumulative process-wide seek statistics.
func ReadSeekStats() SeekStats {
	return SeekStats{
		Seeks:    statSeeks.Load(),
		Restores: statRestores.Load(),
		Steps:    statSteps.Load(),
	}
}

func noteSeek(restored bool, steps int) {
	statSeeks.Add(1)
	if restored {
		statRestores.Add(1)
	}
	if steps > 0 {
		statSteps.Add(uint64(steps))
	}
}
