package stream

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Save writes the stream's complete compressed state to w, so a later Load
// resumes traversal without recompressing. The cursor position is part of
// the state. Callers that save many streams should pass a buffered writer.
func Save(w io.Writer, s Stream) error {
	switch t := s.(type) {
	case *verbatim:
		return t.save(w)
	case *packed:
		return t.save(w)
	case *fcmStream:
		return t.save(w)
	case *lastNStream:
		return t.save(w)
	}
	return fmt.Errorf("stream: cannot serialize %T", s)
}

// Load reads a stream previously written by Save. It consumes exactly the
// bytes Save wrote, so streams can be concatenated in one container.
func Load(r io.Reader) (Stream, error) {
	var tag uint8
	if err := binary.Read(r, binary.LittleEndian, &tag); err != nil {
		return nil, err
	}
	switch Kind(tag) {
	case KindVerbatim:
		return loadVerbatim(r)
	case KindPacked:
		return loadPacked(r)
	case KindFCM, KindDFCM:
		return loadFCM(r)
	case KindLastN, KindLastNStride:
		return loadLastN(r)
	}
	return nil, fmt.Errorf("stream: unknown stream tag %d", tag)
}

// --- encoding helpers ---

func writeAll(w io.Writer, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readAll(r io.Reader, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func writeU32s(w io.Writer, s []uint32) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, s)
}

func readU32s(r io.Reader) ([]uint32, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("stream: implausible sequence length %d", n)
	}
	s := make([]uint32, n)
	if err := binary.Read(r, binary.LittleEndian, s); err != nil {
		return nil, err
	}
	return s, nil
}

func writeBits(w io.Writer, b *bitstack) error {
	if err := binary.Write(w, binary.LittleEndian, b.n); err != nil {
		return err
	}
	words := b.words[:(b.n+63)>>6]
	if err := binary.Write(w, binary.LittleEndian, uint32(len(words))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, words)
}

func readBits(r io.Reader) (bitstack, error) {
	var b bitstack
	var nw uint32
	if err := readAll(r, &b.n, &nw); err != nil {
		return b, err
	}
	if nw > 1<<26 || b.n > uint64(nw)*64 {
		return b, fmt.Errorf("stream: inconsistent bit vector (%d bits, %d words)", b.n, nw)
	}
	b.words = make([]uint64, nw)
	if err := binary.Read(r, binary.LittleEndian, b.words); err != nil {
		return b, err
	}
	return b, nil
}

// --- per-type state ---

func (v *verbatim) save(w io.Writer) error {
	if err := writeAll(w, uint8(KindVerbatim)); err != nil {
		return err
	}
	if err := writeU32s(w, v.vals); err != nil {
		return err
	}
	return writeAll(w, uint32(v.pos))
}

func loadVerbatim(r io.Reader) (*verbatim, error) {
	vals, err := readU32s(r)
	if err != nil {
		return nil, err
	}
	var pos uint32
	if err := readAll(r, &pos); err != nil {
		return nil, err
	}
	return &verbatim{vals: vals, pos: int(pos)}, nil
}

func (p *packed) save(w io.Writer) error {
	if err := writeAll(w, uint8(KindPacked), uint32(p.width), uint32(p.m), uint32(p.pos)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(p.data.words))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, p.data.words)
}

func loadPacked(r io.Reader) (*packed, error) {
	var width, m, pos, nw uint32
	if err := readAll(r, &width, &m, &pos, &nw); err != nil {
		return nil, err
	}
	p := &packed{width: uint(width), m: int(m), pos: int(pos)}
	p.data.words = make([]uint64, nw)
	if err := binary.Read(r, binary.LittleEndian, p.data.words); err != nil {
		return nil, err
	}
	return p, nil
}

func (s *fcmStream) save(w io.Writer) error {
	kind := KindFCM
	if s.stride {
		kind = KindDFCM
	}
	if err := writeAll(w, uint8(kind), uint32(s.m), uint32(s.order),
		uint32(s.tbBits), uint32(s.pos), s.size); err != nil {
		return err
	}
	for _, tbl := range [][]uint32{s.frtb, s.bltb, s.win} {
		if err := writeU32s(w, tbl); err != nil {
			return err
		}
	}
	if err := writeBits(w, &s.fr); err != nil {
		return err
	}
	return writeBits(w, &s.bl)
}

func loadFCM(r io.Reader) (*fcmStream, error) {
	// The tag was already consumed; the stride flag is recoverable from it,
	// but we re-derive it below from the caller. To keep Load simple the
	// tag is re-passed via a sentinel: re-read fields and infer stride from
	// window length vs order.
	var m, order, tbBits, pos uint32
	var size uint64
	if err := readAll(r, &m, &order, &tbBits, &pos, &size); err != nil {
		return nil, err
	}
	s := &fcmStream{m: int(m), order: int(order), tbBits: uint(tbBits), pos: int(pos), size: size}
	var err error
	if s.frtb, err = readU32s(r); err != nil {
		return nil, err
	}
	if s.bltb, err = readU32s(r); err != nil {
		return nil, err
	}
	if s.win, err = readU32s(r); err != nil {
		return nil, err
	}
	s.stride = len(s.win) == s.order+1
	if s.fr, err = readBits(r); err != nil {
		return nil, err
	}
	if s.bl, err = readBits(r); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *lastNStream) save(w io.Writer) error {
	kind := KindLastN
	if s.stride {
		kind = KindLastNStride
	}
	if err := writeAll(w, uint8(kind), uint8(b2u8(s.stride)), uint32(s.m),
		uint32(s.n), uint32(s.idxBits), uint32(s.pos), s.lastVal, s.size); err != nil {
		return err
	}
	if err := writeU32s(w, s.tb); err != nil {
		return err
	}
	if err := writeBits(w, &s.fr); err != nil {
		return err
	}
	return writeBits(w, &s.bl)
}

func loadLastN(r io.Reader) (*lastNStream, error) {
	var strideB uint8
	var m, n, idxBits, pos uint32
	var lastVal uint32
	var size uint64
	if err := readAll(r, &strideB, &m, &n, &idxBits, &pos, &lastVal, &size); err != nil {
		return nil, err
	}
	s := &lastNStream{
		m: int(m), n: int(n), idxBits: uint(idxBits), pos: int(pos),
		lastVal: lastVal, size: size, stride: strideB == 1,
	}
	var err error
	if s.tb, err = readU32s(r); err != nil {
		return nil, err
	}
	if s.fr, err = readBits(r); err != nil {
		return nil, err
	}
	if s.bl, err = readBits(r); err != nil {
		return nil, err
	}
	return s, nil
}

func b2u8(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
