package stream

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
)

// Save writes the stream's complete compressed state to w, so a later Load
// resumes traversal without recompressing. The state written is the
// canonical position-0 form — FR empty, BL full, predictor tables as they
// stand at the stream start (all zeros except last-n-free BL table) — which
// is byte-identical to what earlier versions wrote for a freshly compressed
// stream, so the format is unchanged. Checkpoints are not serialized; Load
// rebuilds them. Callers that save many streams should pass a buffered
// writer.
func Save(w io.Writer, s Stream) error {
	switch t := s.(type) {
	case *verbatim:
		return t.save(w)
	case *packed:
		return t.save(w)
	case *fcmStream:
		return t.save(w)
	case *lastNStream:
		return t.save(w)
	case *lazyStream:
		return Save(w, t.materialize())
	case *Evictable:
		// The retained bytes ARE the serialized form; no decode needed.
		_, err := w.Write(t.raw)
		return err
	}
	return fmt.Errorf("stream: cannot serialize %T", s)
}

// Load reads a stream previously written by Save. It consumes exactly the
// bytes Save wrote, so streams can be concatenated in one container.
//
// Load is the package's error boundary for untrusted input: every length,
// count, and structural field is validated (and allocations are bounded by
// the bytes actually present), malformed input returns an error, and any
// residual decoder panic is converted to an error rather than escaping.
// After structural validation, Load normalizes the state by traversing the
// whole stream (to the start, to the end, and back) — rebuilding the seek
// checkpoints and certifying that both entry stores decode over the full
// length. Entry stores forged to pass structural validation therefore fail
// here, at Load, not in a later query. The panics that remain on Cursor
// itself — Next past the end, Prev past the start, Seek out of range — are
// programmer-error assertions on cursor discipline, not input validation.
func Load(r io.Reader) (s Stream, err error) {
	defer func() {
		if p := recover(); p != nil {
			s, err = nil, fmt.Errorf("stream: corrupt stream state: %v", p)
		}
	}()
	var tag uint8
	if err := binary.Read(r, binary.LittleEndian, &tag); err != nil {
		return nil, err
	}
	switch Kind(tag) {
	case KindVerbatim:
		return loadVerbatim(r)
	case KindPacked:
		return loadPacked(r)
	case KindFCM, KindDFCM:
		return loadFCM(r, Kind(tag))
	case KindLastN, KindLastNStride:
		return loadLastN(r, Kind(tag))
	}
	return nil, fmt.Errorf("stream: unknown stream tag %d", tag)
}

// Scan reads a stream previously written by Save, consuming exactly the
// bytes Load would, but defers the normalization traversal: predictor-backed
// streams (FCM, dFCM, last-n families) come back as lazy streams that run
// the decode and checkpoint rebuild on first NewCursor — single-flight, so
// concurrent first touches materialize once — while verbatim and packed
// streams, which have no normalization cost, are returned materialized.
//
// Scan performs the same structural validation as Load (every length,
// count, and table size is checked here), but the traversal certification
// Load performs eagerly is deferred with the decode: an entry store forged
// to pass structural checks surfaces as a panic at first touch rather than
// an error at load time. Callers wanting up-front certification of
// untrusted input should use Load.
func Scan(r io.Reader) (s Stream, err error) {
	defer func() {
		if p := recover(); p != nil {
			s, err = nil, fmt.Errorf("stream: corrupt stream state: %v", p)
		}
	}()
	var tag uint8
	if err := binary.Read(r, binary.LittleEndian, &tag); err != nil {
		return nil, err
	}
	switch kind := Kind(tag); kind {
	case KindVerbatim:
		return loadVerbatim(r)
	case KindPacked:
		return loadPacked(r)
	case KindFCM, KindDFCM:
		e, size, err := readFCMState(r, kind)
		if err != nil {
			return nil, err
		}
		name := Spec{kind, e.order}.String()
		return newLazyStream(name, e.m, size, func() (Stream, error) {
			return runNormalize(func() (Stream, error) {
				st, err := normalizeFCM(e)
				if err != nil {
					return nil, err
				}
				return st, nil
			})
		}), nil
	case KindLastN, KindLastNStride:
		e, size, err := readLastNState(r, kind)
		if err != nil {
			return nil, err
		}
		name := Spec{kind, e.n}.String()
		return newLazyStream(name, e.m, size, func() (Stream, error) {
			return runNormalize(func() (Stream, error) {
				st, err := normalizeLastN(e)
				if err != nil {
					return nil, err
				}
				return st, nil
			})
		}), nil
	}
	return nil, fmt.Errorf("stream: unknown stream tag %d", tag)
}

// runNormalize runs a deferred normalization under the same recover boundary
// Load gives the eager one, so a decoding panic on a forged store comes back
// as an error no matter when the decode happens.
func runNormalize(fn func() (Stream, error)) (s Stream, err error) {
	defer func() {
		if p := recover(); p != nil {
			s, err = nil, fmt.Errorf("stream: corrupt stream state: %v", p)
		}
	}()
	return fn()
}

// WalkCheck certifies that a stream can be traversed over its whole length
// in both directions without panicking: it walks a fresh cursor to the end
// and back under a recover boundary, so both entry stores are fully
// decoded. Load already performs this certification during normalization;
// WalkCheck remains for callers holding streams from other sources.
func WalkCheck(s Stream) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("stream: corrupt stream state: %v", p)
		}
	}()
	c := s.NewCursor()
	for c.Pos() < c.Len() {
		c.Next()
	}
	for c.Pos() > 0 {
		c.Prev()
	}
	return nil
}

// --- encoding helpers ---

func writeAll(w io.Writer, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readAll(r io.Reader, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func writeU32s(w io.Writer, s []uint32) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, s)
}

// writeZeroU32s writes a length-prefixed all-zero sequence (the canonical
// serialized form of a predictor table at position 0).
func writeZeroU32s(w io.Writer, n int) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(n)); err != nil {
		return err
	}
	zeros := make([]uint32, minInt(n, allocChunk))
	for n > 0 {
		c := minInt(n, allocChunk)
		if err := binary.Write(w, binary.LittleEndian, zeros[:c]); err != nil {
			return err
		}
		n -= c
	}
	return nil
}

// allocChunk bounds how many elements a single deserialization step
// allocates: a forged count costs at most one chunk before the short read
// surfaces, instead of a count-sized up-front allocation.
const allocChunk = 1 << 16

func readU32s(r io.Reader) ([]uint32, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("stream: implausible sequence length %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	s := make([]uint32, 0, minInt(int(n), allocChunk))
	for len(s) < int(n) {
		c := minInt(int(n)-len(s), allocChunk)
		old := len(s)
		s = append(s, make([]uint32, c)...)
		if err := binary.Read(r, binary.LittleEndian, s[old:]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func writeBits(w io.Writer, b *bitstack) error {
	if err := binary.Write(w, binary.LittleEndian, b.n); err != nil {
		return err
	}
	words := b.words[:(b.n+63)>>6]
	if err := binary.Write(w, binary.LittleEndian, uint32(len(words))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, words)
}

// writeBitvec writes an immutable bit vector in the bitstack wire form.
func writeBitvec(w io.Writer, v *bitvec) error {
	if err := binary.Write(w, binary.LittleEndian, v.n); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(v.words))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, v.words)
}

// writeEmptyBits writes a zero-length bit vector (the canonical FR store at
// position 0).
func writeEmptyBits(w io.Writer) error {
	return writeAll(w, uint64(0), uint32(0))
}

func readBits(r io.Reader) (bitstack, error) {
	var b bitstack
	var nw uint32
	if err := readAll(r, &b.n, &nw); err != nil {
		return b, err
	}
	if nw > 1<<26 || b.n > uint64(nw)*64 {
		return b, fmt.Errorf("stream: inconsistent bit vector (%d bits, %d words)", b.n, nw)
	}
	if nw == 0 {
		return b, nil
	}
	b.words = make([]uint64, 0, minInt(int(nw), allocChunk))
	for len(b.words) < int(nw) {
		c := minInt(int(nw)-len(b.words), allocChunk)
		old := len(b.words)
		b.words = append(b.words, make([]uint64, c)...)
		if err := binary.Read(r, binary.LittleEndian, b.words[old:]); err != nil {
			return b, err
		}
	}
	return b, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- per-type state ---

func (v *verbatim) save(w io.Writer) error {
	if err := writeAll(w, uint8(KindVerbatim)); err != nil {
		return err
	}
	if err := writeU32s(w, v.vals); err != nil {
		return err
	}
	return writeAll(w, uint32(0)) // canonical cursor-free position
}

func loadVerbatim(r io.Reader) (*verbatim, error) {
	vals, err := readU32s(r)
	if err != nil {
		return nil, err
	}
	var pos uint32
	if err := readAll(r, &pos); err != nil {
		return nil, err
	}
	if int(pos) > len(vals) {
		return nil, fmt.Errorf("stream: verbatim cursor %d outside [0,%d]", pos, len(vals))
	}
	return &verbatim{vals: vals}, nil
}

func (p *packed) save(w io.Writer) error {
	if err := writeAll(w, uint8(KindPacked), uint32(p.width), uint32(p.m), uint32(0)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(p.data.words))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, p.data.words)
}

func loadPacked(r io.Reader) (*packed, error) {
	var width, m, pos, nw uint32
	if err := readAll(r, &width, &m, &pos, &nw); err != nil {
		return nil, err
	}
	if width > 32 {
		return nil, fmt.Errorf("stream: packed width %d exceeds 32", width)
	}
	if m > 1<<28 || nw > 1<<26 {
		return nil, fmt.Errorf("stream: implausible packed dimensions (%d values, %d words)", m, nw)
	}
	if pos > m {
		return nil, fmt.Errorf("stream: packed cursor %d outside [0,%d]", pos, m)
	}
	if need := (uint64(m)*uint64(width) + 63) / 64; uint64(nw) < need {
		return nil, fmt.Errorf("stream: packed payload has %d words, %d values of width %d need %d", nw, m, width, need)
	}
	p := &packed{width: uint(width), m: int(m)}
	words := make([]uint64, 0, minInt(int(nw), allocChunk))
	for len(words) < int(nw) {
		c := minInt(int(nw)-len(words), allocChunk)
		old := len(words)
		words = append(words, make([]uint64, c)...)
		if err := binary.Read(r, binary.LittleEndian, words[old:]); err != nil {
			return nil, err
		}
	}
	p.data = bitvec{words: words, n: uint64(m) * uint64(width)}
	return p, nil
}

func (s *fcmStream) save(w io.Writer) error {
	kind := KindFCM
	if s.stride {
		kind = KindDFCM
	}
	if err := writeAll(w, uint8(kind), uint32(s.m), uint32(s.order),
		uint32(s.tbBits), uint32(0), s.size); err != nil {
		return err
	}
	// Position-0 state: FR table and window are canonically all zeros.
	if err := writeZeroU32s(w, 1<<s.tbBits); err != nil {
		return err
	}
	if err := writeU32s(w, s.bltb0); err != nil {
		return err
	}
	if err := writeZeroU32s(w, s.winLen()); err != nil {
		return err
	}
	if err := writeEmptyBits(w); err != nil {
		return err
	}
	return writeBitvec(w, &s.bl)
}

func loadFCM(r io.Reader, kind Kind) (*fcmStream, error) {
	e, _, err := readFCMState(r, kind)
	if err != nil {
		return nil, err
	}
	return normalizeFCM(e)
}

// readFCMState performs the structural half of loadFCM: it consumes exactly
// the serialized bytes, validates every length, count, and table size, and
// returns the still-unnormalized encoder plus the size the writer recorded.
func readFCMState(r io.Reader, kind Kind) (*fcmEnc, uint64, error) {
	var m, order, tbBits, pos uint32
	var size uint64
	if err := readAll(r, &m, &order, &tbBits, &pos, &size); err != nil {
		return nil, 0, err
	}
	if order < 1 || order > 64 {
		return nil, 0, fmt.Errorf("stream: fcm order %d outside [1,64]", order)
	}
	if tbBits > 26 {
		return nil, 0, fmt.Errorf("stream: fcm table bits %d exceed 26", tbBits)
	}
	if pos > m {
		return nil, 0, fmt.Errorf("stream: fcm cursor %d outside [0,%d]", pos, m)
	}
	e := &fcmEnc{m: int(m), order: int(order), tbBits: uint(tbBits), pos: int(pos)}
	var err error
	if e.frtb, err = readU32s(r); err != nil {
		return nil, 0, err
	}
	if e.bltb, err = readU32s(r); err != nil {
		return nil, 0, err
	}
	if e.win, err = readU32s(r); err != nil {
		return nil, 0, err
	}
	// The predictor tables are indexed by tbBits-masked hashes and the
	// window length encodes the stride flag; any mismatch would index out
	// of bounds when the stream is stepped.
	if len(e.frtb) != 1<<e.tbBits || len(e.bltb) != 1<<e.tbBits {
		return nil, 0, fmt.Errorf("stream: fcm tables sized %d/%d, want %d", len(e.frtb), len(e.bltb), 1<<e.tbBits)
	}
	wantWin := e.order
	if kind == KindDFCM {
		wantWin = e.order + 1
	}
	if len(e.win) != wantWin {
		return nil, 0, fmt.Errorf("stream: fcm window has %d values, %v of order %d needs %d",
			len(e.win), Spec{kind, e.order}, e.order, wantWin)
	}
	e.stride = kind == KindDFCM
	if e.fr, err = readBits(r); err != nil {
		return nil, 0, err
	}
	if e.bl, err = readBits(r); err != nil {
		return nil, 0, err
	}
	return e, size, nil
}

// normalizeFCM walks the loaded encoder to the start (FR must drain
// exactly), to the end (BL must drain exactly), then freezes — rebuilding
// the seek checkpoints and certifying full traversal. Decoding panics on
// forged stores are converted to errors by the Load/Scan recover boundary.
func normalizeFCM(e *fcmEnc) (*fcmStream, error) {
	for e.pos > 0 {
		e.prev()
	}
	if !e.fr.empty() {
		return nil, fmt.Errorf("stream: fcm FR store holds %d bits beyond the cursor", e.fr.bits())
	}
	for e.pos < e.m {
		e.next()
	}
	if !e.bl.empty() {
		return nil, fmt.Errorf("stream: fcm BL store holds %d bits beyond the stream", e.bl.bits())
	}
	return e.finish(0), nil
}

func (s *lastNStream) save(w io.Writer) error {
	kind := KindLastN
	if s.stride {
		kind = KindLastNStride
	}
	if err := writeAll(w, uint8(kind), uint8(b2u8(s.stride)), uint32(s.m),
		uint32(s.n), uint32(s.idxBits), uint32(0), uint32(0), s.size); err != nil {
		return err
	}
	// Position-0 state: the move-to-front table is canonically all zeros
	// and lastVal is 0 (written above).
	if err := writeZeroU32s(w, s.n); err != nil {
		return err
	}
	if err := writeEmptyBits(w); err != nil {
		return err
	}
	return writeBitvec(w, &s.bl)
}

func loadLastN(r io.Reader, kind Kind) (*lastNStream, error) {
	e, _, err := readLastNState(r, kind)
	if err != nil {
		return nil, err
	}
	return normalizeLastN(e)
}

// readLastNState is the structural half of loadLastN (see readFCMState).
func readLastNState(r io.Reader, kind Kind) (*lastNEnc, uint64, error) {
	var strideB uint8
	var m, n, idxBits, pos uint32
	var lastVal uint32
	var size uint64
	if err := readAll(r, &strideB, &m, &n, &idxBits, &pos, &lastVal, &size); err != nil {
		return nil, 0, err
	}
	if (strideB == 1) != (kind == KindLastNStride) {
		return nil, 0, fmt.Errorf("stream: last-n stride flag %d contradicts tag %v", strideB, kind)
	}
	if n < 2 || n > 1<<20 || n&(n-1) != 0 {
		return nil, 0, fmt.Errorf("stream: last-n table size %d not a power of two in [2,2^20]", n)
	}
	if idxBits != uint32(bits.TrailingZeros32(n)) {
		return nil, 0, fmt.Errorf("stream: last-n index width %d inconsistent with table size %d", idxBits, n)
	}
	if pos > m {
		return nil, 0, fmt.Errorf("stream: last-n cursor %d outside [0,%d]", pos, m)
	}
	e := &lastNEnc{
		m: int(m), n: int(n), idxBits: uint(idxBits), pos: int(pos),
		lastVal: lastVal, stride: strideB == 1,
	}
	var err error
	if e.tb, err = readU32s(r); err != nil {
		return nil, 0, err
	}
	// Hit entries index tb through idxBits-wide values; a short table would
	// index out of bounds when the stream is stepped.
	if len(e.tb) != int(n) {
		return nil, 0, fmt.Errorf("stream: last-n table has %d entries, want %d", len(e.tb), n)
	}
	if e.fr, err = readBits(r); err != nil {
		return nil, 0, err
	}
	if e.bl, err = readBits(r); err != nil {
		return nil, 0, err
	}
	return e, size, nil
}

// normalizeLastN normalizes exactly as normalizeFCM does.
func normalizeLastN(e *lastNEnc) (*lastNStream, error) {
	for e.pos > 0 {
		e.prev()
	}
	if !e.fr.empty() {
		return nil, fmt.Errorf("stream: last-n FR store holds %d bits beyond the cursor", e.fr.bits())
	}
	for e.pos < e.m {
		e.next()
	}
	if !e.bl.empty() {
		return nil, fmt.Errorf("stream: last-n BL store holds %d bits beyond the stream", e.bl.bits())
	}
	return e.finish(0), nil
}

func b2u8(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
