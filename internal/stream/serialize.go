package stream

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
)

// Save writes the stream's complete compressed state to w, so a later Load
// resumes traversal without recompressing. The cursor position is part of
// the state. Callers that save many streams should pass a buffered writer.
func Save(w io.Writer, s Stream) error {
	switch t := s.(type) {
	case *verbatim:
		return t.save(w)
	case *packed:
		return t.save(w)
	case *fcmStream:
		return t.save(w)
	case *lastNStream:
		return t.save(w)
	}
	return fmt.Errorf("stream: cannot serialize %T", s)
}

// Load reads a stream previously written by Save. It consumes exactly the
// bytes Save wrote, so streams can be concatenated in one container.
//
// Load is the package's error boundary for untrusted input: every length,
// count, and structural field is validated (and allocations are bounded by
// the bytes actually present), malformed input returns an error, and any
// residual decoder panic is converted to an error rather than escaping.
// The panics that remain on Stream itself — Next past the end, Prev past
// the start, SeekTo out of range — are programmer-error assertions on
// cursor discipline, not input validation, and are unchanged. A stream
// whose entry stores were forged to pass structural validation can still
// panic when stepped; callers loading from media without an outer
// integrity check can certify traversal first with WalkCheck.
func Load(r io.Reader) (s Stream, err error) {
	defer func() {
		if p := recover(); p != nil {
			s, err = nil, fmt.Errorf("stream: corrupt stream state: %v", p)
		}
	}()
	var tag uint8
	if err := binary.Read(r, binary.LittleEndian, &tag); err != nil {
		return nil, err
	}
	switch Kind(tag) {
	case KindVerbatim:
		return loadVerbatim(r)
	case KindPacked:
		return loadPacked(r)
	case KindFCM, KindDFCM:
		return loadFCM(r, Kind(tag))
	case KindLastN, KindLastNStride:
		return loadLastN(r, Kind(tag))
	}
	return nil, fmt.Errorf("stream: unknown stream tag %d", tag)
}

// WalkCheck certifies that a deserialized stream can be traversed over its
// whole length in both directions without panicking: it walks a clone from
// the restored cursor to the start and then to the end under a recover
// boundary, so both entry stores are fully decoded. Structurally valid but
// forged entry stores fail here instead of panicking in a later query.
// The original's cursor is untouched.
func WalkCheck(s Stream) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("stream: corrupt stream state: %v", p)
		}
	}()
	c := s.Clone()
	SeekStart(c)
	SeekEnd(c)
	return nil
}

// --- encoding helpers ---

func writeAll(w io.Writer, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readAll(r io.Reader, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func writeU32s(w io.Writer, s []uint32) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, s)
}

// allocChunk bounds how many elements a single deserialization step
// allocates: a forged count costs at most one chunk before the short read
// surfaces, instead of a count-sized up-front allocation.
const allocChunk = 1 << 16

func readU32s(r io.Reader) ([]uint32, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("stream: implausible sequence length %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	s := make([]uint32, 0, minInt(int(n), allocChunk))
	for len(s) < int(n) {
		c := minInt(int(n)-len(s), allocChunk)
		old := len(s)
		s = append(s, make([]uint32, c)...)
		if err := binary.Read(r, binary.LittleEndian, s[old:]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func writeBits(w io.Writer, b *bitstack) error {
	if err := binary.Write(w, binary.LittleEndian, b.n); err != nil {
		return err
	}
	words := b.words[:(b.n+63)>>6]
	if err := binary.Write(w, binary.LittleEndian, uint32(len(words))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, words)
}

func readBits(r io.Reader) (bitstack, error) {
	var b bitstack
	var nw uint32
	if err := readAll(r, &b.n, &nw); err != nil {
		return b, err
	}
	if nw > 1<<26 || b.n > uint64(nw)*64 {
		return b, fmt.Errorf("stream: inconsistent bit vector (%d bits, %d words)", b.n, nw)
	}
	if nw == 0 {
		return b, nil
	}
	b.words = make([]uint64, 0, minInt(int(nw), allocChunk))
	for len(b.words) < int(nw) {
		c := minInt(int(nw)-len(b.words), allocChunk)
		old := len(b.words)
		b.words = append(b.words, make([]uint64, c)...)
		if err := binary.Read(r, binary.LittleEndian, b.words[old:]); err != nil {
			return b, err
		}
	}
	return b, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- per-type state ---

func (v *verbatim) save(w io.Writer) error {
	if err := writeAll(w, uint8(KindVerbatim)); err != nil {
		return err
	}
	if err := writeU32s(w, v.vals); err != nil {
		return err
	}
	return writeAll(w, uint32(v.pos))
}

func loadVerbatim(r io.Reader) (*verbatim, error) {
	vals, err := readU32s(r)
	if err != nil {
		return nil, err
	}
	var pos uint32
	if err := readAll(r, &pos); err != nil {
		return nil, err
	}
	if int(pos) > len(vals) {
		return nil, fmt.Errorf("stream: verbatim cursor %d outside [0,%d]", pos, len(vals))
	}
	return &verbatim{vals: vals, pos: int(pos)}, nil
}

func (p *packed) save(w io.Writer) error {
	if err := writeAll(w, uint8(KindPacked), uint32(p.width), uint32(p.m), uint32(p.pos)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(p.data.words))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, p.data.words)
}

func loadPacked(r io.Reader) (*packed, error) {
	var width, m, pos, nw uint32
	if err := readAll(r, &width, &m, &pos, &nw); err != nil {
		return nil, err
	}
	if width > 32 {
		return nil, fmt.Errorf("stream: packed width %d exceeds 32", width)
	}
	if m > 1<<28 || nw > 1<<26 {
		return nil, fmt.Errorf("stream: implausible packed dimensions (%d values, %d words)", m, nw)
	}
	if pos > m {
		return nil, fmt.Errorf("stream: packed cursor %d outside [0,%d]", pos, m)
	}
	if need := (uint64(m)*uint64(width) + 63) / 64; uint64(nw) < need {
		return nil, fmt.Errorf("stream: packed payload has %d words, %d values of width %d need %d", nw, m, width, need)
	}
	p := &packed{width: uint(width), m: int(m), pos: int(pos)}
	p.data.words = make([]uint64, 0, minInt(int(nw), allocChunk))
	for len(p.data.words) < int(nw) {
		c := minInt(int(nw)-len(p.data.words), allocChunk)
		old := len(p.data.words)
		p.data.words = append(p.data.words, make([]uint64, c)...)
		if err := binary.Read(r, binary.LittleEndian, p.data.words[old:]); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (s *fcmStream) save(w io.Writer) error {
	kind := KindFCM
	if s.stride {
		kind = KindDFCM
	}
	if err := writeAll(w, uint8(kind), uint32(s.m), uint32(s.order),
		uint32(s.tbBits), uint32(s.pos), s.size); err != nil {
		return err
	}
	for _, tbl := range [][]uint32{s.frtb, s.bltb, s.win} {
		if err := writeU32s(w, tbl); err != nil {
			return err
		}
	}
	if err := writeBits(w, &s.fr); err != nil {
		return err
	}
	return writeBits(w, &s.bl)
}

func loadFCM(r io.Reader, kind Kind) (*fcmStream, error) {
	var m, order, tbBits, pos uint32
	var size uint64
	if err := readAll(r, &m, &order, &tbBits, &pos, &size); err != nil {
		return nil, err
	}
	if order < 1 || order > 64 {
		return nil, fmt.Errorf("stream: fcm order %d outside [1,64]", order)
	}
	if tbBits > 26 {
		return nil, fmt.Errorf("stream: fcm table bits %d exceed 26", tbBits)
	}
	if pos > m {
		return nil, fmt.Errorf("stream: fcm cursor %d outside [0,%d]", pos, m)
	}
	s := &fcmStream{m: int(m), order: int(order), tbBits: uint(tbBits), pos: int(pos), size: size}
	var err error
	if s.frtb, err = readU32s(r); err != nil {
		return nil, err
	}
	if s.bltb, err = readU32s(r); err != nil {
		return nil, err
	}
	if s.win, err = readU32s(r); err != nil {
		return nil, err
	}
	// The predictor tables are indexed by tbBits-masked hashes and the
	// window length encodes the stride flag; any mismatch would index out
	// of bounds when the stream is stepped.
	if len(s.frtb) != 1<<s.tbBits || len(s.bltb) != 1<<s.tbBits {
		return nil, fmt.Errorf("stream: fcm tables sized %d/%d, want %d", len(s.frtb), len(s.bltb), 1<<s.tbBits)
	}
	wantWin := s.order
	if kind == KindDFCM {
		wantWin = s.order + 1
	}
	if len(s.win) != wantWin {
		return nil, fmt.Errorf("stream: fcm window has %d values, %v of order %d needs %d",
			len(s.win), Spec{kind, s.order}, s.order, wantWin)
	}
	s.stride = kind == KindDFCM
	if s.fr, err = readBits(r); err != nil {
		return nil, err
	}
	if s.bl, err = readBits(r); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *lastNStream) save(w io.Writer) error {
	kind := KindLastN
	if s.stride {
		kind = KindLastNStride
	}
	if err := writeAll(w, uint8(kind), uint8(b2u8(s.stride)), uint32(s.m),
		uint32(s.n), uint32(s.idxBits), uint32(s.pos), s.lastVal, s.size); err != nil {
		return err
	}
	if err := writeU32s(w, s.tb); err != nil {
		return err
	}
	if err := writeBits(w, &s.fr); err != nil {
		return err
	}
	return writeBits(w, &s.bl)
}

func loadLastN(r io.Reader, kind Kind) (*lastNStream, error) {
	var strideB uint8
	var m, n, idxBits, pos uint32
	var lastVal uint32
	var size uint64
	if err := readAll(r, &strideB, &m, &n, &idxBits, &pos, &lastVal, &size); err != nil {
		return nil, err
	}
	if (strideB == 1) != (kind == KindLastNStride) {
		return nil, fmt.Errorf("stream: last-n stride flag %d contradicts tag %v", strideB, kind)
	}
	if n < 2 || n > 1<<20 || n&(n-1) != 0 {
		return nil, fmt.Errorf("stream: last-n table size %d not a power of two in [2,2^20]", n)
	}
	if idxBits != uint32(bits.TrailingZeros32(n)) {
		return nil, fmt.Errorf("stream: last-n index width %d inconsistent with table size %d", idxBits, n)
	}
	if pos > m {
		return nil, fmt.Errorf("stream: last-n cursor %d outside [0,%d]", pos, m)
	}
	s := &lastNStream{
		m: int(m), n: int(n), idxBits: uint(idxBits), pos: int(pos),
		lastVal: lastVal, size: size, stride: strideB == 1,
	}
	var err error
	if s.tb, err = readU32s(r); err != nil {
		return nil, err
	}
	// Hit entries index tb through idxBits-wide values; a short table would
	// index out of bounds when the stream is stepped.
	if len(s.tb) != int(n) {
		return nil, fmt.Errorf("stream: last-n table has %d entries, want %d", len(s.tb), n)
	}
	if s.fr, err = readBits(r); err != nil {
		return nil, err
	}
	if s.bl, err = readBits(r); err != nil {
		return nil, err
	}
	return s, nil
}

func b2u8(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
