package stream

import "fmt"

// fcmStream is the bidirectional FCM / differential-FCM compressed stream
// (paper §4, Figures 5–6). Two predictor tables are kept: FRTB predicts a
// value from its right context (used by the forward-compressed part) and
// BLTB from its left context (backward-compressed part). Miss entries store
// the table slot's *evicted* content while the slot keeps the actual value,
// so each step's table mutation is exactly undone by the reverse step.
//
// In stride (differential) mode the tables store strides rather than
// values: the prediction for an incoming value v after window w is
// w[n-1] + BLTB[hash(strides(w))], per Goeman et al.'s dFCM.
type fcmStream struct {
	m      int
	order  int // context length in values
	stride bool
	tbBits uint
	frtb   []uint32
	bltb   []uint32
	fr, bl bitstack
	win    []uint32 // win[0] is the oldest (leftmost) context value
	pos    int
	size   uint64
}

// tableBits picks a predictor table size proportional to the stream length
// (clamped) so that table storage — which is counted in SizeBits — does not
// dominate short streams.
func tableBits(m int) uint {
	b := uint(4)
	for (1<<(b+4)) < m && b < 16 {
		b++
	}
	return b
}

func newFCM(vals []uint32, order int, stride bool) *fcmStream {
	if order < 1 {
		panic("stream: fcm order must be >= 1")
	}
	win := order
	if stride {
		win = order + 1 // need order strides
	}
	s := &fcmStream{
		m:      len(vals),
		order:  order,
		stride: stride,
		tbBits: tableBits(len(vals)),
		win:    make([]uint32, win),
	}
	s.frtb = make([]uint32, 1<<s.tbBits)
	s.bltb = make([]uint32, 1<<s.tbBits)
	// Initial compression: a forward pass consuming raw values (the stream
	// is conceptually padded with a window of zeros on the left).
	for _, v := range vals {
		s.stepForward(v, true)
	}
	tables := uint64(2) * uint64(len(s.frtb)) * 32
	s.size = s.fr.bits() + s.bl.bits() + uint64(len(s.win))*32 + tables + HeaderBits
	if s.stride {
		s.size += 0 // window already carries the values needed for strides
	}
	return s
}

func (s *fcmStream) Len() int         { return s.m }
func (s *fcmStream) Pos() int         { return s.pos }
func (s *fcmStream) SizeBits() uint64 { return s.size }

func (s *fcmStream) Name() string {
	if s.stride {
		return fmt.Sprintf("dfcm%d", s.order)
	}
	return fmt.Sprintf("fcm%d", s.order)
}

func (s *fcmStream) hash() uint32 { return fcmHash(s.win, s.stride, s.tbBits) }

// fcmHash maps a context window (values, or strides of it) to a table
// slot. Shared by the stream constructor and the dry-run sizer so the two
// cannot diverge.
func fcmHash(win []uint32, stride bool, tbBits uint) uint32 {
	h := uint32(2166136261)
	mix := func(x uint32) {
		h = (h ^ x) * 16777619
	}
	if stride {
		for i := 0; i+1 < len(win); i++ {
			mix(win[i+1] - win[i])
		}
	} else {
		for _, v := range win {
			mix(v)
		}
	}
	return (h ^ h>>16) & (1<<tbBits - 1)
}

// predictIncoming reconstructs a value from the left-context table content.
func (s *fcmStream) predictIncoming(tbl uint32) uint32 {
	if s.stride {
		return s.win[len(s.win)-1] + tbl
	}
	return tbl
}

// encodeIncoming converts an actual incoming value to table content.
func (s *fcmStream) encodeIncoming(v uint32) uint32 {
	if s.stride {
		return v - s.win[len(s.win)-1]
	}
	return v
}

// predictHead reconstructs the value to the window's left from the
// right-context table content (after the window has shifted right).
func (s *fcmStream) predictHead(tbl uint32) uint32 {
	if s.stride {
		return s.win[0] - tbl // table stores padded[c] - padded[c-1]
	}
	return tbl
}

// encodeHead converts an actual head value to right-context table content.
func (s *fcmStream) encodeHead(h uint32) uint32 {
	if s.stride {
		return s.win[0] - h
	}
	return h
}

// stepForward advances the cursor by one. During initial construction
// (construct == true) the incoming value is supplied raw in v and the BL
// side is untouched; afterwards v is ignored and read from BL.
func (s *fcmStream) stepForward(v uint32, construct bool) uint32 {
	if !construct {
		if s.pos >= s.m {
			panic("stream: Next past end")
		}
		// Consume the BL entry for the incoming value using the left
		// context (current window).
		idx := s.hash()
		miss := !s.bl.popBit()
		var payload uint32
		if miss {
			payload = s.bl.popBits(32)
		}
		v = s.predictIncoming(s.bltb[idx])
		if miss {
			s.bltb[idx] = payload // restore the evicted content
		}
	}
	// Shift the window: the head h leaves to the FR side.
	h := s.win[0]
	copy(s.win, s.win[1:])
	s.win[len(s.win)-1] = v
	// Compress h with its right context (the new window).
	idx := s.hash()
	if s.predictHead(s.frtb[idx]) == h {
		s.fr.pushBit(true)
	} else {
		s.fr.pushBits(s.frtb[idx], 32) // evicted content
		s.fr.pushBit(false)
		s.frtb[idx] = s.encodeHead(h)
	}
	s.pos++
	return v
}

func (s *fcmStream) Next() uint32 { return s.stepForward(0, false) }

// Clone implements Stream.
func (s *fcmStream) Clone() Stream {
	c := *s
	c.frtb = append([]uint32(nil), s.frtb...)
	c.bltb = append([]uint32(nil), s.bltb...)
	c.win = append([]uint32(nil), s.win...)
	c.fr = s.fr.clone()
	c.bl = s.bl.clone()
	return &c
}

func (s *fcmStream) Prev() uint32 {
	if s.pos == 0 {
		panic("stream: Prev past start")
	}
	// Uncompress the FR entry for the value left of the window, using the
	// right context (current window).
	idx := s.hash()
	miss := !s.fr.popBit()
	var payload uint32
	if miss {
		payload = s.fr.popBits(32)
	}
	h := s.predictHead(s.frtb[idx])
	if miss {
		s.frtb[idx] = payload
	}
	// Shift the window right: the tail t leaves to the BL side.
	t := s.win[len(s.win)-1]
	copy(s.win[1:], s.win)
	s.win[0] = h
	// Compress t with its left context (the new window).
	idx = s.hash()
	if s.predictIncoming(s.bltb[idx]) == t {
		s.bl.pushBit(true)
	} else {
		s.bl.pushBits(s.bltb[idx], 32)
		s.bl.pushBit(false)
		s.bltb[idx] = s.encodeIncoming(t)
	}
	s.pos--
	return t
}
