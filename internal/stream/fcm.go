package stream

import (
	"fmt"
	"sort"
)

// The bidirectional FCM / differential-FCM method (paper §4, Figures 5–6)
// is split into three pieces:
//
//   - fcmEnc: the mutable encoder. It owns live bitstacks and predictor
//     tables and can step in both directions; construction and Load
//     normalization run it over the whole stream.
//   - fcmStream: the immutable artifact. It holds both entry stores in
//     full — FR as it stands at position m, BL as it stands at position 0 —
//     plus the canonical boundary states and interior checkpoints. It has
//     no cursor state and is safe to share.
//   - fcmCursor: a detached cursor. It reconstructs predictor-table
//     context privately; stepping reads the shared stores by bit offset
//     and never writes them.
//
// Two predictor tables are kept: FRTB predicts a value from its right
// context (used by the forward-compressed part) and BLTB from its left
// context (backward-compressed part). Miss entries store the table slot's
// *evicted* content while the slot keeps the actual value, so each step's
// table mutation is exactly undone by the reverse step — which also means
// the cursor state at position p is identical no matter how p was reached.
// At position 0 every table the forward pass touched is back to zero: the
// canonical start state is all-zeros plus the stored BL table.
//
// In stride (differential) mode the tables store strides rather than
// values: the prediction for an incoming value v after window w is
// w[n-1] + BLTB[hash(strides(w))], per Goeman et al.'s dFCM.

// tableBits picks a predictor table size proportional to the stream length
// (clamped) so that table storage — which is counted in SizeBits — does not
// dominate short streams.
func tableBits(m int) uint {
	b := uint(4)
	for (1<<(b+4)) < m && b < 16 {
		b++
	}
	return b
}

// fcmHash maps a context window (values, or strides of it) to a table
// slot. Shared by the encoder, the cursor, and the dry-run sizer so they
// cannot diverge.
func fcmHash(win []uint32, stride bool, tbBits uint) uint32 {
	h := uint32(2166136261)
	mix := func(x uint32) {
		h = (h ^ x) * 16777619
	}
	if stride {
		for i := 0; i+1 < len(win); i++ {
			mix(win[i+1] - win[i])
		}
	} else {
		for _, v := range win {
			mix(v)
		}
	}
	return (h ^ h>>16) & (1<<tbBits - 1)
}

// fcmPredictIncoming reconstructs a value from the left-context table
// content, given the current window.
func fcmPredictIncoming(win []uint32, stride bool, tbl uint32) uint32 {
	if stride {
		return win[len(win)-1] + tbl
	}
	return tbl
}

// fcmEncodeIncoming converts an actual incoming value to table content.
func fcmEncodeIncoming(win []uint32, stride bool, v uint32) uint32 {
	if stride {
		return v - win[len(win)-1]
	}
	return v
}

// fcmPredictHead reconstructs the value to the window's left from the
// right-context table content (after the window has shifted right).
func fcmPredictHead(win []uint32, stride bool, tbl uint32) uint32 {
	if stride {
		return win[0] - tbl // table stores padded[c] - padded[c-1]
	}
	return tbl
}

// fcmEncodeHead converts an actual head value to right-context table
// content.
func fcmEncodeHead(win []uint32, stride bool, h uint32) uint32 {
	if stride {
		return win[0] - h
	}
	return h
}

// --- encoder ---

type fcmEnc struct {
	m      int
	order  int // context length in values
	stride bool
	tbBits uint
	frtb   []uint32
	bltb   []uint32
	fr, bl bitstack
	win    []uint32 // win[0] is the oldest (leftmost) context value
	pos    int
}

func newFCMEnc(vals []uint32, order int, stride bool) *fcmEnc {
	if order < 1 {
		panic("stream: fcm order must be >= 1")
	}
	win := order
	if stride {
		win = order + 1 // need order strides
	}
	e := &fcmEnc{
		m:      len(vals),
		order:  order,
		stride: stride,
		tbBits: tableBits(len(vals)),
		win:    make([]uint32, win),
	}
	e.frtb = make([]uint32, 1<<e.tbBits)
	e.bltb = make([]uint32, 1<<e.tbBits)
	// Initial compression: a forward pass consuming raw values (the stream
	// is conceptually padded with a window of zeros on the left).
	for _, v := range vals {
		e.stepForward(v, true)
	}
	return e
}

func (e *fcmEnc) hash() uint32 { return fcmHash(e.win, e.stride, e.tbBits) }

// stepForward advances the encoder by one. During initial construction
// (construct == true) the incoming value is supplied raw in v and the BL
// side is untouched; afterwards v is ignored and read from BL.
func (e *fcmEnc) stepForward(v uint32, construct bool) uint32 {
	if !construct {
		if e.pos >= e.m {
			panic("stream: Next past end")
		}
		// Consume the BL entry for the incoming value using the left
		// context (current window).
		idx := e.hash()
		miss := !e.bl.popBit()
		var payload uint32
		if miss {
			payload = e.bl.popBits(32)
		}
		v = fcmPredictIncoming(e.win, e.stride, e.bltb[idx])
		if miss {
			e.bltb[idx] = payload // restore the evicted content
		}
	}
	// Shift the window: the head h leaves to the FR side.
	h := e.win[0]
	copy(e.win, e.win[1:])
	e.win[len(e.win)-1] = v
	// Compress h with its right context (the new window).
	idx := e.hash()
	if fcmPredictHead(e.win, e.stride, e.frtb[idx]) == h {
		e.fr.pushBit(true)
	} else {
		e.fr.pushBits(e.frtb[idx], 32) // evicted content
		e.fr.pushBit(false)
		e.frtb[idx] = fcmEncodeHead(e.win, e.stride, h)
	}
	e.pos++
	return v
}

func (e *fcmEnc) next() uint32 { return e.stepForward(0, false) }

func (e *fcmEnc) prev() uint32 {
	if e.pos == 0 {
		panic("stream: Prev past start")
	}
	// Uncompress the FR entry for the value left of the window, using the
	// right context (current window).
	idx := e.hash()
	miss := !e.fr.popBit()
	var payload uint32
	if miss {
		payload = e.fr.popBits(32)
	}
	h := fcmPredictHead(e.win, e.stride, e.frtb[idx])
	if miss {
		e.frtb[idx] = payload
	}
	// Shift the window right: the tail t leaves to the BL side.
	t := e.win[len(e.win)-1]
	copy(e.win[1:], e.win)
	e.win[0] = h
	// Compress t with its left context (the new window).
	idx = e.hash()
	if fcmPredictIncoming(e.win, e.stride, e.bltb[idx]) == t {
		e.bl.pushBit(true)
	} else {
		e.bl.pushBits(e.bltb[idx], 32)
		e.bl.pushBit(false)
		e.bltb[idx] = fcmEncodeIncoming(e.win, e.stride, t)
	}
	e.pos--
	return t
}

// finish freezes the encoder (which must be at position m with BL empty)
// into an immutable stream: the FR store is snapshotted, then one backward
// pass rebuilds the BL store while capturing checkpoints every k values
// (k == 0: automatic spacing; k < 0: none).
func (e *fcmEnc) finish(k int) *fcmStream {
	s := &fcmStream{
		m: e.m, order: e.order, stride: e.stride, tbBits: e.tbBits,
	}
	tables := uint64(2) * uint64(len(e.frtb)) * 32
	s.size = e.fr.bits() + e.bl.bits() + uint64(len(e.win))*32 + tables + HeaderBits
	s.fr = e.fr.freeze() // popBits clears bits, so copy before walking back
	stateBits := tables + uint64(len(e.win))*32 + 3*64
	sp := ckSpacing(k, e.m, stateBits)
	cks := []fcmCk{e.snapshot()} // construction-end state at pos m
	for e.pos > 0 {
		e.prev()
		if sp > 0 && e.pos > 0 && e.pos%sp == 0 {
			cks = append(cks, e.snapshot())
		}
	}
	s.bl = e.bl.freeze()
	s.bltb0 = append([]uint32(nil), e.bltb...)
	// The canonical start state: all predictor state zero except the stored
	// BL table (shared, so it costs nothing extra).
	cks = append(cks, fcmCk{pos: 0, frLen: 0, blLen: s.bl.n, bltb: s.bltb0})
	sort.Slice(cks, func(i, j int) bool { return cks[i].pos < cks[j].pos })
	s.cks = cks
	for i := 1; i < len(cks); i++ { // index 0 is the free start state
		s.ckBits += 3 * 64
		s.ckBits += uint64(len(cks[i].frtb)+len(cks[i].bltb)+len(cks[i].win)) * 32
	}
	return s
}

// snapshot captures the encoder's current state as a checkpoint. All-zero
// tables are stored as nil (restored by zero-filling).
func (e *fcmEnc) snapshot() fcmCk {
	return fcmCk{
		pos: e.pos, frLen: e.fr.bits(), blLen: e.bl.bits(),
		frtb: snapTable(e.frtb), bltb: snapTable(e.bltb), win: snapTable(e.win),
	}
}

// snapTable copies t, or returns nil when t is all zeros.
func snapTable(t []uint32) []uint32 {
	for _, v := range t {
		if v != 0 {
			return append([]uint32(nil), t...)
		}
	}
	return nil
}

// copyOrZero restores a snapshot into dst (nil snapshot = all zeros).
func copyOrZero(dst, src []uint32) {
	if src == nil {
		clear(dst)
	} else {
		copy(dst, src)
	}
}

// --- immutable stream ---

// fcmCk is one seek checkpoint: the complete cursor state at pos.
type fcmCk struct {
	pos          int
	frLen, blLen uint64
	frtb, bltb   []uint32 // nil = all zeros
	win          []uint32 // nil = all zeros
}

type fcmStream struct {
	m      int
	order  int
	stride bool
	tbBits uint
	fr     bitvec   // full FR store (state at pos m)
	bl     bitvec   // full BL store (state at pos 0)
	bltb0  []uint32 // BL predictor table at pos 0
	cks    []fcmCk  // ascending by pos; [0] is the start state, last is pos m
	size   uint64
	ckBits uint64
	stats  *SeekCounters // per-trace seek accounting; nil = global only
}

func (s *fcmStream) Len() int               { return s.m }
func (s *fcmStream) SizeBits() uint64       { return s.size }
func (s *fcmStream) CheckpointBits() uint64 { return s.ckBits }

func (s *fcmStream) Name() string {
	if s.stride {
		return fmt.Sprintf("dfcm%d", s.order)
	}
	return fmt.Sprintf("fcm%d", s.order)
}

func (s *fcmStream) winLen() int {
	if s.stride {
		return s.order + 1
	}
	return s.order
}

// stateWords is the 64-bit word count a checkpoint restore copies, for the
// seek cost model.
func (s *fcmStream) stateWords() int { return (2*(1<<s.tbBits) + s.winLen()) / 2 }

func (s *fcmStream) NewCursor() Cursor {
	c := &fcmCursor{
		s:     s,
		blLen: s.bl.n,
		frtb:  make([]uint32, 1<<s.tbBits),
		bltb:  make([]uint32, 1<<s.tbBits),
		win:   make([]uint32, s.winLen()),
	}
	copy(c.bltb, s.bltb0)
	return c
}

// bestCk returns the checkpoint whose restore-plus-walk cost to reach i is
// lowest, with that cost in step-equivalents.
func (s *fcmStream) bestCk(i int) (*fcmCk, int) {
	lo, hi := 0, len(s.cks)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cks[mid].pos <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	rc := restoreCost(s.stateWords())
	var best *fcmCk
	bestCost := int(^uint(0) >> 1)
	if lo > 0 {
		ck := &s.cks[lo-1]
		if c := i - ck.pos + rc; c < bestCost {
			best, bestCost = ck, c
		}
	}
	if lo < len(s.cks) {
		ck := &s.cks[lo]
		if c := ck.pos - i + rc; c < bestCost {
			best, bestCost = ck, c
		}
	}
	return best, bestCost
}

// --- cursor ---

type fcmCursor struct {
	s            *fcmStream
	pos          int
	frLen, blLen uint64
	frtb, bltb   []uint32
	win          []uint32
}

func (c *fcmCursor) Len() int { return c.s.m }
func (c *fcmCursor) Pos() int { return c.pos }

func (c *fcmCursor) Clone() Cursor {
	cp := *c
	cp.frtb = append([]uint32(nil), c.frtb...)
	cp.bltb = append([]uint32(nil), c.bltb...)
	cp.win = append([]uint32(nil), c.win...)
	return &cp
}

func (c *fcmCursor) Next() uint32 {
	if c.pos >= c.s.m {
		panic("stream: Next past end")
	}
	// Consume the BL entry for the incoming value using the left context.
	idx := fcmHash(c.win, c.s.stride, c.s.tbBits)
	hit := c.s.bl.top(c.blLen, 1) == 1
	c.blLen--
	var payload uint32
	if !hit {
		payload = c.s.bl.top(c.blLen, 32)
		c.blLen -= 32
	}
	v := fcmPredictIncoming(c.win, c.s.stride, c.bltb[idx])
	if !hit {
		c.bltb[idx] = payload // restore the evicted content
	}
	// Shift the window: the head h leaves to the FR side. The FR entry for
	// h is already in the store; recompute hit/miss to advance frLen and
	// apply the same table mutation the encoder did.
	h := c.win[0]
	copy(c.win, c.win[1:])
	c.win[len(c.win)-1] = v
	idx = fcmHash(c.win, c.s.stride, c.s.tbBits)
	if fcmPredictHead(c.win, c.s.stride, c.frtb[idx]) == h {
		c.frLen++
	} else {
		c.frLen += 33
		c.frtb[idx] = fcmEncodeHead(c.win, c.s.stride, h)
	}
	c.pos++
	return v
}

func (c *fcmCursor) Prev() uint32 {
	if c.pos == 0 {
		panic("stream: Prev past start")
	}
	// Uncompress the FR entry for the value left of the window.
	idx := fcmHash(c.win, c.s.stride, c.s.tbBits)
	hit := c.s.fr.top(c.frLen, 1) == 1
	c.frLen--
	var payload uint32
	if !hit {
		payload = c.s.fr.top(c.frLen, 32)
		c.frLen -= 32
	}
	h := fcmPredictHead(c.win, c.s.stride, c.frtb[idx])
	if !hit {
		c.frtb[idx] = payload
	}
	// Shift the window right: the tail t leaves to the BL side.
	t := c.win[len(c.win)-1]
	copy(c.win[1:], c.win)
	c.win[0] = h
	idx = fcmHash(c.win, c.s.stride, c.s.tbBits)
	if fcmPredictIncoming(c.win, c.s.stride, c.bltb[idx]) == t {
		c.blLen++
	} else {
		c.blLen += 33
		c.bltb[idx] = fcmEncodeIncoming(c.win, c.s.stride, t)
	}
	c.pos--
	return t
}

// NextN is Next unrolled over a batch: the stream reference, predictor
// tables, window, and store offsets are hoisted into locals for the whole
// run, so a long sequential decode pays the per-step bookkeeping once per
// batch instead of once per value. The step body must mirror Next exactly
// (pinned by the stream equivalence property tests).
func (c *fcmCursor) NextN(dst []uint32) int {
	n := c.s.m - c.pos
	if n > len(dst) {
		n = len(dst)
	}
	if n <= 0 {
		return 0
	}
	s := c.s
	stride, tbBits := s.stride, s.tbBits
	win, frtb, bltb := c.win, c.frtb, c.bltb
	frLen, blLen := c.frLen, c.blLen
	for i := 0; i < n; i++ {
		idx := fcmHash(win, stride, tbBits)
		hit := s.bl.top(blLen, 1) == 1
		blLen--
		var payload uint32
		if !hit {
			payload = s.bl.top(blLen, 32)
			blLen -= 32
		}
		v := fcmPredictIncoming(win, stride, bltb[idx])
		if !hit {
			bltb[idx] = payload
		}
		h := win[0]
		copy(win, win[1:])
		win[len(win)-1] = v
		idx = fcmHash(win, stride, tbBits)
		if fcmPredictHead(win, stride, frtb[idx]) == h {
			frLen++
		} else {
			frLen += 33
			frtb[idx] = fcmEncodeHead(win, stride, h)
		}
		dst[i] = v
	}
	c.frLen, c.blLen = frLen, blLen
	c.pos += n
	return n
}

// PrevN is Prev unrolled over a batch (see NextN); dst is filled in
// traversal order, dst[i] holding the value at the original Pos()-1-i.
func (c *fcmCursor) PrevN(dst []uint32) int {
	n := c.pos
	if n > len(dst) {
		n = len(dst)
	}
	if n <= 0 {
		return 0
	}
	s := c.s
	stride, tbBits := s.stride, s.tbBits
	win, frtb, bltb := c.win, c.frtb, c.bltb
	frLen, blLen := c.frLen, c.blLen
	for i := 0; i < n; i++ {
		idx := fcmHash(win, stride, tbBits)
		hit := s.fr.top(frLen, 1) == 1
		frLen--
		var payload uint32
		if !hit {
			payload = s.fr.top(frLen, 32)
			frLen -= 32
		}
		h := fcmPredictHead(win, stride, frtb[idx])
		if !hit {
			frtb[idx] = payload
		}
		t := win[len(win)-1]
		copy(win[1:], win)
		win[0] = h
		idx = fcmHash(win, stride, tbBits)
		if fcmPredictIncoming(win, stride, bltb[idx]) == t {
			blLen++
		} else {
			blLen += 33
			bltb[idx] = fcmEncodeIncoming(win, stride, t)
		}
		dst[i] = t
	}
	c.frLen, c.blLen = frLen, blLen
	c.pos -= n
	return n
}

func (c *fcmCursor) restore(ck *fcmCk) {
	c.pos = ck.pos
	c.frLen = ck.frLen
	c.blLen = ck.blLen
	copyOrZero(c.frtb, ck.frtb)
	copyOrZero(c.bltb, ck.bltb)
	copyOrZero(c.win, ck.win)
}

func (c *fcmCursor) Seek(i int) {
	if i < 0 || i > c.s.m {
		panic(fmt.Sprintf("stream: seek to %d outside [0,%d]", i, c.s.m))
	}
	if i == c.pos {
		noteSeek(c.s.stats, false, 0)
		return
	}
	walk := i - c.pos
	if walk < 0 {
		walk = -walk
	}
	restored := false
	if ck, cost := c.s.bestCk(i); ck != nil && cost < walk {
		c.restore(ck)
		restored = true
	}
	steps := 0
	for c.pos < i {
		c.Next()
		steps++
	}
	for c.pos > i {
		c.Prev()
		steps++
	}
	noteSeek(c.s.stats, restored, steps)
}
