package stream

import (
	"math/rand"
	"testing"
)

// TestNextNPrevNMatchSingleStep drives every spec over every dataset with a
// random walk of batched reads — random-size NextN/PrevN interleaved with
// seeks — and checks each batch against the known values, position by
// position. This pins the batched inner loops to the single-step contract
// the compressors define.
func TestNextNPrevNMatchSingleStep(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for name, vals := range datasets() {
		for _, spec := range allSpecs() {
			c := Compress(vals, spec).NewCursor()
			buf := make([]uint32, 97)
			for step := 0; step < 200; step++ {
				switch op := rng.Intn(5); {
				case op == 0:
					c.Seek(rng.Intn(len(vals) + 1))
				case op <= 2:
					n := rng.Intn(len(buf)) + 1
					pos := c.Pos()
					got := c.NextN(buf[:n])
					want := len(vals) - pos
					if want > n {
						want = n
					}
					if got != want {
						t.Fatalf("%s/%s: NextN(%d) at %d = %d, want %d", name, spec, n, pos, got, want)
					}
					for i := 0; i < got; i++ {
						if buf[i] != vals[pos+i] {
							t.Fatalf("%s/%s: NextN value %d = %d, want %d", name, spec, pos+i, buf[i], vals[pos+i])
						}
					}
					if c.Pos() != pos+got {
						t.Fatalf("%s/%s: NextN left pos %d, want %d", name, spec, c.Pos(), pos+got)
					}
				default:
					n := rng.Intn(len(buf)) + 1
					pos := c.Pos()
					got := c.PrevN(buf[:n])
					want := pos
					if want > n {
						want = n
					}
					if got != want {
						t.Fatalf("%s/%s: PrevN(%d) at %d = %d, want %d", name, spec, n, pos, got, want)
					}
					for i := 0; i < got; i++ {
						if buf[i] != vals[pos-1-i] {
							t.Fatalf("%s/%s: PrevN value %d = %d, want %d", name, spec, pos-1-i, buf[i], vals[pos-1-i])
						}
					}
					if c.Pos() != pos-got {
						t.Fatalf("%s/%s: PrevN left pos %d, want %d", name, spec, c.Pos(), pos-got)
					}
				}
			}
			// A batched walk must leave the cursor stepable: finish with a
			// single-step pass from wherever the walk ended.
			for c.Pos() > 0 {
				c.Prev()
			}
			for i := range vals {
				if got := c.Next(); got != vals[i] {
					t.Fatalf("%s/%s: post-walk single step %d = %d, want %d", name, spec, i, got, vals[i])
				}
			}
		}
	}
}

// TestNextNPrevNWholeStream checks the two full-length batch shapes Drain
// and the tier-1 materializer rely on: one NextN covering the whole stream,
// then one PrevN covering it back.
func TestNextNPrevNWholeStream(t *testing.T) {
	for name, vals := range datasets() {
		for _, spec := range allSpecs() {
			c := Compress(vals, spec).NewCursor()
			fwd := make([]uint32, len(vals))
			if got := c.NextN(fwd); got != len(vals) {
				t.Fatalf("%s/%s: whole-stream NextN = %d, want %d", name, spec, got, len(vals))
			}
			bwd := make([]uint32, len(vals))
			if got := c.PrevN(bwd); got != len(vals) {
				t.Fatalf("%s/%s: whole-stream PrevN = %d, want %d", name, spec, got, len(vals))
			}
			for i := range vals {
				if fwd[i] != vals[i] {
					t.Fatalf("%s/%s: forward value %d = %d, want %d", name, spec, i, fwd[i], vals[i])
				}
				if bwd[i] != vals[len(vals)-1-i] {
					t.Fatalf("%s/%s: backward value %d = %d, want %d", name, spec, i, bwd[i], vals[len(vals)-1-i])
				}
			}
		}
	}
}
