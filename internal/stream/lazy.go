package stream

import (
	"fmt"
	"sync"
	"sync/atomic"

	"wet/internal/faultpoint"
)

// fpDecode injects deferred-decode failures at first touch, standing in
// for a forged store that passed structural validation.
var fpDecode = faultpoint.New("stream.decode")

// DecodeError is the typed failure of a deferred stream decode: a store
// forged to pass structural validation whose normalization walk failed at
// first touch. It is the panic value raised by Cursor-producing methods on
// a lazy stream (the Stream interface has no error returns) and the error
// returned by Force and TryNewCursor, which recover it.
type DecodeError struct {
	Stream string // method name of the failed stream
	Cause  error
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("stream: deferred decode of %s: %v", e.Stream, e.Cause)
}

func (e *DecodeError) Unwrap() error { return e.Cause }

// lazyStream defers a predictor-backed stream's normalization traversal —
// the dominant cost of Load — until a cursor first touches it. The header
// facts a container parser needs up front (length, method name, serialized
// size) were read structurally by Scan and answer without decoding;
// NewCursor forces the decode exactly once (sync.Once single-flight), so
// any number of goroutines can race on the first touch and all observe the
// one materialized stream. CheckpointBits reports 0 until the decode has
// run: checkpoints do not exist yet, and size accounting over a lazily
// opened container must not itself force every segment.
type lazyStream struct {
	name string
	m    int
	size uint64

	once  sync.Once
	done  atomic.Bool
	force func() (Stream, error) // nil once materialized
	inner Stream
	err   *DecodeError

	// stats is forwarded to the inner stream when the decode runs; attach
	// (AttachStats) before the stream is shared across goroutines.
	stats *SeekCounters
}

func newLazyStream(name string, m int, size uint64, force func() (Stream, error)) *lazyStream {
	return &lazyStream{name: name, m: m, size: size, force: force}
}

// materialize runs the deferred decode (once) and returns the inner stream.
// A decode failure — a store forged to pass structural validation — panics
// with a *DecodeError; Force and TryNewCursor recover it into a returned
// error, and error-returning query entry points do the same.
func (l *lazyStream) materialize() Stream {
	l.once.Do(func() {
		if err := fpDecode.Hit(); err != nil {
			l.err = &DecodeError{Stream: l.name, Cause: err}
		} else if inner, err := l.force(); err != nil {
			l.err = &DecodeError{Stream: l.name, Cause: err}
		} else {
			AttachStats(inner, l.stats)
			l.inner = inner
		}
		l.force = nil
		l.done.Store(true)
	})
	if l.err != nil {
		panic(l.err)
	}
	return l.inner
}

// peek returns the materialized inner stream, or nil when the decode has
// not happened (or failed). It never forces, and is safe against a
// concurrent first touch: done is only stored after inner is written.
func (l *lazyStream) peek() Stream {
	if l.done.Load() && l.err == nil {
		return l.inner
	}
	return nil
}

func (l *lazyStream) Len() int         { return l.m }
func (l *lazyStream) SizeBits() uint64 { return l.size }
func (l *lazyStream) Name() string     { return l.name }

func (l *lazyStream) CheckpointBits() uint64 {
	if s := l.peek(); s != nil {
		return s.CheckpointBits()
	}
	return 0
}

func (l *lazyStream) NewCursor() Cursor { return l.materialize().NewCursor() }

// Materialized reports whether s is fully decoded: false for a stream
// returned by Scan whose first touch has not happened yet, and for an
// Evictable whose decoded state is dropped or was never built.
func Materialized(s Stream) bool {
	switch t := s.(type) {
	case *lazyStream:
		return t.peek() != nil
	case *Evictable:
		return t.Resident()
	}
	return true
}

// Force materializes a lazy or evictable stream now, converting a
// deferred-decode failure into its typed *DecodeError instead of the panic
// NewCursor raises. Other streams return nil immediately.
func Force(s Stream) (err error) {
	switch t := s.(type) {
	case *lazyStream:
		defer RecoverDecode(&err)
		t.materialize()
	case *Evictable:
		defer RecoverDecode(&err)
		t.acquire()
	}
	return nil
}

// TryNewCursor is NewCursor with the deferred-decode failure returned as a
// *DecodeError instead of panicking. Callers holding error returns should
// prefer it over Stream.NewCursor for streams that may be lazy.
func TryNewCursor(s Stream) (c Cursor, err error) {
	defer RecoverDecode(&err)
	return s.NewCursor(), nil
}

// RecoverDecode is a deferred helper that converts an in-flight
// *DecodeError panic into an assignment to *err, re-raising anything else.
// Error-returning entry points that walk possibly-lazy streams guard with
//
//	defer stream.RecoverDecode(&err)
func RecoverDecode(err *error) {
	switch p := recover().(type) {
	case nil:
	case *DecodeError:
		if *err == nil {
			*err = p
		}
	default:
		panic(p)
	}
}
