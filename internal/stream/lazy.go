package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// lazyStream defers a predictor-backed stream's normalization traversal —
// the dominant cost of Load — until a cursor first touches it. The header
// facts a container parser needs up front (length, method name, serialized
// size) were read structurally by Scan and answer without decoding;
// NewCursor forces the decode exactly once (sync.Once single-flight), so
// any number of goroutines can race on the first touch and all observe the
// one materialized stream. CheckpointBits reports 0 until the decode has
// run: checkpoints do not exist yet, and size accounting over a lazily
// opened container must not itself force every segment.
type lazyStream struct {
	name string
	m    int
	size uint64

	once  sync.Once
	done  atomic.Bool
	force func() (Stream, error) // nil once materialized
	inner Stream
	err   error
}

func newLazyStream(name string, m int, size uint64, force func() (Stream, error)) *lazyStream {
	return &lazyStream{name: name, m: m, size: size, force: force}
}

// materialize runs the deferred decode (once) and returns the inner stream.
// A decode failure — a store forged to pass structural validation — panics
// with the deferred Load error; Scan documents this trade.
func (l *lazyStream) materialize() Stream {
	l.once.Do(func() {
		l.inner, l.err = l.force()
		l.force = nil
		l.done.Store(true)
	})
	if l.err != nil {
		panic(fmt.Sprintf("stream: deferred decode: %v", l.err))
	}
	return l.inner
}

// peek returns the materialized inner stream, or nil when the decode has
// not happened (or failed). It never forces, and is safe against a
// concurrent first touch: done is only stored after inner is written.
func (l *lazyStream) peek() Stream {
	if l.done.Load() && l.err == nil {
		return l.inner
	}
	return nil
}

func (l *lazyStream) Len() int         { return l.m }
func (l *lazyStream) SizeBits() uint64 { return l.size }
func (l *lazyStream) Name() string     { return l.name }

func (l *lazyStream) CheckpointBits() uint64 {
	if s := l.peek(); s != nil {
		return s.CheckpointBits()
	}
	return 0
}

func (l *lazyStream) NewCursor() Cursor { return l.materialize().NewCursor() }

// Materialized reports whether s is fully decoded: false only for a stream
// returned by Scan whose first touch has not happened yet.
func Materialized(s Stream) bool {
	l, ok := s.(*lazyStream)
	return !ok || l.peek() != nil
}
