package stream

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// testShapes covers the stream shapes the freezer actually sees: empty,
// tiny, constant, strided, low-cardinality repeating, noisy, and longer
// than the selection prefix.
func testShapes() map[string][]uint32 {
	rng := rand.New(rand.NewSource(7))
	shapes := map[string][]uint32{
		"empty":  nil,
		"single": {42},
		"pair":   {7, 7},
	}
	constant := make([]uint32, 300)
	for i := range constant {
		constant[i] = 9
	}
	shapes["constant"] = constant
	stride := make([]uint32, 500)
	for i := range stride {
		stride[i] = uint32(100 + 3*i)
	}
	shapes["stride"] = stride
	repeating := make([]uint32, 700)
	for i := range repeating {
		repeating[i] = uint32(i % 5)
	}
	shapes["repeating"] = repeating
	noisy := make([]uint32, 400)
	for i := range noisy {
		noisy[i] = rng.Uint32()
	}
	shapes["noisy"] = noisy
	small := make([]uint32, 350)
	for i := range small {
		small[i] = uint32(rng.Intn(12))
	}
	shapes["small-random"] = small
	long := make([]uint32, SelectionPrefix+2000)
	for i := range long {
		long[i] = uint32(i%17) * 11
	}
	shapes["longer-than-prefix"] = long
	return shapes
}

// TestSizeSpecMatchesConstruction pins the dry-run sizers to the real
// constructors: SizeSpec must equal SizeBits of the built stream for every
// candidate on every shape. This is the invariant that makes the pooled
// selection phase byte-equivalent to the old build-and-discard one.
func TestSizeSpecMatchesConstruction(t *testing.T) {
	sc := NewScratch()
	defer sc.Release()
	for name, vals := range testShapes() {
		for _, spec := range Candidates {
			got := SizeSpec(vals, spec, sc)
			want := Compress(vals, spec).SizeBits()
			if got != want {
				t.Errorf("%s/%s: SizeSpec=%d, constructed SizeBits=%d", name, spec, got, want)
			}
			// Sizing twice must agree: the scratch tables were re-zeroed.
			if again := SizeSpec(vals, spec, sc); again != got {
				t.Errorf("%s/%s: SizeSpec not reproducible with reused scratch: %d then %d", name, spec, got, again)
			}
		}
	}
}

// referenceBestSpec is the pre-pooling selection: build every candidate on
// the prefix and keep the smallest.
func referenceBestSpec(vals []uint32) Spec {
	probe := vals
	if len(probe) > SelectionPrefix {
		probe = vals[:SelectionPrefix]
	}
	best := Candidates[0]
	var bestBits uint64
	for i, spec := range Candidates {
		s := Compress(probe, spec)
		if i == 0 || s.SizeBits() < bestBits {
			best, bestBits = spec, s.SizeBits()
		}
	}
	return best
}

func TestBestSpecMatchesReferenceSelection(t *testing.T) {
	sc := NewScratch()
	defer sc.Release()
	for name, vals := range testShapes() {
		if len(vals) == 0 {
			continue
		}
		got := BestSpec(vals, sc)
		want := referenceBestSpec(vals)
		if got != want {
			t.Errorf("%s: BestSpec=%v, reference=%v", name, got, want)
		}
	}
}

// TestSizeBestMatchesCompressBest checks the sizing-only path reports the
// same size and Methods key as actually compressing.
func TestSizeBestMatchesCompressBest(t *testing.T) {
	sc := NewScratch()
	defer sc.Release()
	for name, vals := range testShapes() {
		sz, method := SizeBest(vals, sc)
		s := CompressBest(vals)
		if sz != s.SizeBits() {
			t.Errorf("%s: SizeBest=%d bits, CompressBest=%d bits", name, sz, s.SizeBits())
		}
		if method != s.Name() {
			t.Errorf("%s: SizeBest name %q, CompressBest name %q", name, method, s.Name())
		}
	}
}

// TestCompressBestConcurrent hammers the pooled path from many goroutines:
// every result must match a serially computed baseline, proving reused
// tables come back zeroed.
func TestCompressBestConcurrent(t *testing.T) {
	shapes := testShapes()
	type want struct {
		bits uint64
		name string
	}
	baseline := map[string]want{}
	for name, vals := range shapes {
		s := CompressBest(vals)
		baseline[name] = want{s.SizeBits(), s.Name()}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := NewScratch()
			defer sc.Release()
			for round := 0; round < 5; round++ {
				for name, vals := range shapes {
					s := CompressBestScratch(vals, sc)
					w := baseline[name]
					if s.SizeBits() != w.bits || s.Name() != w.name {
						select {
						case errs <- fmt.Errorf("%s: got %s/%d bits, want %s/%d bits",
							name, s.Name(), s.SizeBits(), w.name, w.bits):
						default:
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
