package stream

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// buildPredictor returns a compressed predictor-backed stream over vals
// (an FCM-friendly sequence so selection picks a predictor, not verbatim).
func buildEvictable(t *testing.T, vals []uint32) (*Evictable, []uint32) {
	t.Helper()
	s := Compress(vals, Spec{KindFCM, 2})
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatalf("save: %v", err)
	}
	scanned, err := Scan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	ev := NewEvictableFromScan(scanned, buf.Bytes())
	if ev == nil {
		t.Skipf("selection chose %s (no deferred decode) for this sequence", scanned.Name())
	}
	return ev, vals
}

func repeatRamp(n int) []uint32 {
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i % 97)
	}
	return vals
}

func TestEvictableRoundTrip(t *testing.T) {
	ev, vals := buildEvictable(t, repeatRamp(4096))
	if ev.Resident() {
		t.Fatal("resident before first touch")
	}
	if ev.Len() != len(vals) {
		t.Fatalf("Len = %d, want %d", ev.Len(), len(vals))
	}
	got := Drain(ev)
	if !ev.Resident() || ev.ResidentBytes() == 0 {
		t.Fatal("not resident after touch")
	}
	for i, v := range vals {
		if got[i] != v {
			t.Fatalf("value %d: got %d want %d", i, got[i], v)
		}
	}
	w := ev.Evict()
	if w == 0 || ev.Resident() {
		t.Fatalf("evict released %d bytes, resident=%v", w, ev.Resident())
	}
	// Re-decode after eviction must yield identical values.
	got2 := Drain(ev)
	for i, v := range vals {
		if got2[i] != v {
			t.Fatalf("post-evict value %d: got %d want %d", i, got2[i], v)
		}
	}
}

// TestEvictableLiveCursor evicts while a cursor is mid-traversal: the cursor
// must keep reading the stream it was spawned from.
func TestEvictableLiveCursor(t *testing.T) {
	ev, vals := buildEvictable(t, repeatRamp(4096))
	c := ev.NewCursor()
	for i := 0; i < 100; i++ {
		c.Next()
	}
	ev.Evict()
	for i := 100; i < len(vals); i++ {
		if got := c.Next(); got != vals[i] {
			t.Fatalf("value %d after eviction: got %d want %d", i, got, vals[i])
		}
	}
}

// hookRecorder counts hook invocations and can veto loads.
type hookRecorder struct {
	mu                   sync.Mutex
	loads, hits          int
	weight               uint64
	veto                 error
}

func (h *hookRecorder) BeforeLoad(e *Evictable) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.veto
}
func (h *hookRecorder) AfterLoad(e *Evictable, w uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.loads++
	h.weight += w
}
func (h *hookRecorder) Touched(e *Evictable) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.hits++
}

func TestEvictableHooks(t *testing.T) {
	ev, _ := buildEvictable(t, repeatRamp(4096))
	h := &hookRecorder{}
	ev.SetHooks(h)
	ev.NewCursor()
	ev.NewCursor()
	ev.Evict()
	ev.NewCursor()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.loads != 2 || h.hits != 1 {
		t.Fatalf("loads=%d hits=%d, want 2 loads 1 hit", h.loads, h.hits)
	}
	if h.weight == 0 {
		t.Fatal("zero admitted weight")
	}
}

func TestEvictableVeto(t *testing.T) {
	ev, _ := buildEvictable(t, repeatRamp(4096))
	veto := fmt.Errorf("budget says no")
	ev.SetHooks(&hookRecorder{veto: veto})
	_, err := TryNewCursor(ev)
	var de *DecodeError
	if !errors.As(err, &de) || !errors.Is(err, veto) {
		t.Fatalf("vetoed touch returned %v, want *DecodeError wrapping the veto", err)
	}
	if ev.Resident() {
		t.Fatal("resident after vetoed load")
	}
}

// TestEvictableConcurrentTouchEvict hammers touches against evictions under
// the race detector: single-flight decode, no torn state.
func TestEvictableConcurrentTouchEvict(t *testing.T) {
	ev, vals := buildEvictable(t, repeatRamp(2048))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for it := 0; it < 30; it++ {
				c := ev.NewCursor()
				i := (seed*131 + it*37) % len(vals)
				c.Seek(i)
				if got := c.Next(); got != vals[i] {
					panic(fmt.Sprintf("value %d: got %d want %d", i, got, vals[i]))
				}
				if it%5 == seed%5 {
					ev.Evict()
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestEvictableSave pins that an Evictable serializes byte-identically to
// the stream it wraps, resident or not.
func TestEvictableSave(t *testing.T) {
	vals := repeatRamp(4096)
	s := Compress(vals, Spec{KindFCM, 2})
	var orig bytes.Buffer
	if err := Save(&orig, s); err != nil {
		t.Fatal(err)
	}
	scanned, err := Scan(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvictableFromScan(scanned, orig.Bytes())
	if ev == nil {
		t.Skipf("selection chose %s for this sequence", scanned.Name())
	}
	var got bytes.Buffer
	if err := Save(&got, ev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), orig.Bytes()) {
		t.Fatal("evictable Save differs from original serialized form")
	}
}

// TestSeekCountersAttach pins the per-stream counters AND the deprecated
// process-global aggregate: an attached stream's seeks land in both.
func TestSeekCountersAttach(t *testing.T) {
	vals := repeatRamp(8192)
	s := Compress(vals, Spec{KindFCM, 2})
	var c SeekCounters
	AttachStats(s, &c)
	if StatsOf(s) != &c {
		t.Fatal("StatsOf does not return the attached counters")
	}

	globalBefore := ReadSeekStats()
	cur := s.NewCursor()
	cur.Seek(len(vals) / 2)
	cur.Seek(7)
	cur.Seek(7) // no-op seek still counts

	per := c.Read()
	if per.Seeks != 3 {
		t.Fatalf("per-stream seeks = %d, want 3", per.Seeks)
	}
	gd := ReadSeekStats().Sub(globalBefore)
	if gd.Seeks < 3 || gd.Steps < per.Steps {
		t.Fatalf("deprecated global aggregate %+v did not absorb per-stream %+v", gd, per)
	}

	// A second, unattached stream must not leak into c.
	s2 := Compress(vals, Spec{KindFCM, 2})
	cur2 := s2.NewCursor()
	cur2.Seek(9)
	if got := c.Read().Seeks; got != 3 {
		t.Fatalf("unattached stream leaked into counters: %d seeks", got)
	}
}

// TestSeekCountersLazy pins that attaching to a lazy stream before its
// first touch forwards to the decoded inner stream.
func TestSeekCountersLazy(t *testing.T) {
	vals := repeatRamp(4096)
	s := Compress(vals, Spec{KindFCM, 2})
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	scanned, err := Scan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var c SeekCounters
	AttachStats(scanned, &c)
	cur := scanned.NewCursor()
	cur.Seek(123)
	if got := c.Read().Seeks; got != 1 {
		t.Fatalf("lazy stream seeks = %d, want 1", got)
	}
}
