package stream

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]uint32, 1000)
	for i := range vals {
		vals[i] = uint32(rng.Intn(64)) * 3
	}
	for _, spec := range Candidates {
		s := Compress(vals, spec)
		SeekTo(s, 400) // arbitrary mid-stream cursor
		var buf bytes.Buffer
		if err := Save(&buf, s); err != nil {
			t.Fatalf("%s: Save: %v", spec, err)
		}
		s2, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: Load: %v", spec, err)
		}
		if s2.Len() != len(vals) || s2.Pos() != 400 {
			t.Fatalf("%s: len/pos = %d/%d", spec, s2.Len(), s2.Pos())
		}
		if s2.Name() != s.Name() {
			t.Fatalf("%s: name %s != %s", spec, s2.Name(), s.Name())
		}
		if s2.SizeBits() != s.SizeBits() && spec.Kind != KindVerbatim && spec.Kind != KindPacked {
			t.Fatalf("%s: size %d != %d", spec, s2.SizeBits(), s.SizeBits())
		}
		// Traverse both directions from the restored cursor.
		for i := 400; i < len(vals); i++ {
			if got := s2.Next(); got != vals[i] {
				t.Fatalf("%s: fwd val %d = %d, want %d", spec, i, got, vals[i])
			}
		}
		for i := len(vals) - 1; i >= 0; i-- {
			if got := s2.Prev(); got != vals[i] {
				t.Fatalf("%s: bwd val %d = %d, want %d", spec, i, got, vals[i])
			}
		}
	}
}

func TestSaveLoadConcatenated(t *testing.T) {
	var buf bytes.Buffer
	a := Compress([]uint32{1, 2, 3}, Spec{KindFCM, 1})
	b := Compress([]uint32{9, 9, 9, 9}, Spec{KindLastN, 2})
	c := Compress([]uint32{7}, Spec{KindVerbatim, 0})
	for _, s := range []Stream{a, b, c} {
		if err := Save(&buf, s); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range [][]uint32{{1, 2, 3}, {9, 9, 9, 9}, {7}} {
		s, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got := Drain(s)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("concatenated load: got %v want %v", got, want)
			}
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes", buf.Len())
	}
}

func TestLoadBadTag(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte{0xFF})); err == nil {
		t.Fatal("Load accepted bad tag")
	}
}

// FuzzLoad ensures arbitrary bytes never panic the stream deserializer.
func FuzzLoad(f *testing.F) {
	vals := []uint32{1, 5, 5, 9, 1, 5}
	for _, spec := range Candidates {
		var buf bytes.Buffer
		if err := Save(&buf, Compress(vals, spec)); err == nil {
			f.Add(buf.Bytes())
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A stream that loads must traverse without panicking (walk a few
		// steps each way, guarding cursor bounds).
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("traversal of loaded stream panicked: %v", r)
			}
		}()
		for i := 0; i < 8 && s.Pos() < s.Len(); i++ {
			s.Next()
		}
		for i := 0; i < 8 && s.Pos() > 0; i++ {
			s.Prev()
		}
	})
}
