package stream

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]uint32, 1000)
	for i := range vals {
		vals[i] = uint32(rng.Intn(64)) * 3
	}
	for _, spec := range Candidates {
		s := Compress(vals, spec)
		var buf bytes.Buffer
		if err := Save(&buf, s); err != nil {
			t.Fatalf("%s: Save: %v", spec, err)
		}
		saved := append([]byte(nil), buf.Bytes()...)
		s2, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: Load: %v", spec, err)
		}
		if s2.Len() != len(vals) {
			t.Fatalf("%s: len = %d", spec, s2.Len())
		}
		if s2.Name() != s.Name() {
			t.Fatalf("%s: name %s != %s", spec, s2.Name(), s.Name())
		}
		if s2.SizeBits() != s.SizeBits() {
			t.Fatalf("%s: size %d != %d", spec, s2.SizeBits(), s.SizeBits())
		}
		// Full traversal in both directions through a cursor, plus a
		// checkpointed seek into the middle.
		c := s2.NewCursor()
		for i := 0; i < len(vals); i++ {
			if got := c.Next(); got != vals[i] {
				t.Fatalf("%s: fwd val %d = %d, want %d", spec, i, got, vals[i])
			}
		}
		for i := len(vals) - 1; i >= 0; i-- {
			if got := c.Prev(); got != vals[i] {
				t.Fatalf("%s: bwd val %d = %d, want %d", spec, i, got, vals[i])
			}
		}
		c.Seek(400)
		if got := c.Next(); got != vals[400] {
			t.Fatalf("%s: Seek(400)+Next = %d, want %d", spec, got, vals[400])
		}
		// Save is canonical: re-saving the loaded stream must reproduce the
		// bytes exactly (the fixed point the container format relies on).
		var buf2 bytes.Buffer
		if err := Save(&buf2, s2); err != nil {
			t.Fatalf("%s: re-Save: %v", spec, err)
		}
		if !bytes.Equal(saved, buf2.Bytes()) {
			t.Fatalf("%s: Save→Load→Save not a byte fixed point (%d vs %d bytes)", spec, len(saved), buf2.Len())
		}
	}
}

func TestSaveLoadConcatenated(t *testing.T) {
	var buf bytes.Buffer
	a := Compress([]uint32{1, 2, 3}, Spec{KindFCM, 1})
	b := Compress([]uint32{9, 9, 9, 9}, Spec{KindLastN, 2})
	c := Compress([]uint32{7}, Spec{KindVerbatim, 0})
	for _, s := range []Stream{a, b, c} {
		if err := Save(&buf, s); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range [][]uint32{{1, 2, 3}, {9, 9, 9, 9}, {7}} {
		s, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got := Drain(s)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("concatenated load: got %v want %v", got, want)
			}
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes", buf.Len())
	}
}

func TestLoadBadTag(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte{0xFF})); err == nil {
		t.Fatal("Load accepted bad tag")
	}
}

// FuzzLoad ensures arbitrary bytes never panic the stream deserializer, and
// that Load's normalization is sound: a stream it accepts traverses its
// whole length in both directions without panicking.
func FuzzLoad(f *testing.F) {
	vals := []uint32{1, 5, 5, 9, 1, 5}
	for _, spec := range Candidates {
		var buf bytes.Buffer
		if err := Save(&buf, Compress(vals, spec)); err == nil {
			f.Add(buf.Bytes())
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := WalkCheck(s); err != nil {
			t.Fatalf("Load accepted a stream WalkCheck rejects: %v", err)
		}
		// Accepted: traversal must now be panic-free over the full length.
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("traversal of loaded stream panicked: %v", r)
			}
		}()
		c := s.NewCursor()
		for c.Pos() < c.Len() {
			c.Next()
		}
		for c.Pos() > 0 {
			c.Prev()
		}
	})
}

// mutate returns a copy of b with the uint32 at off overwritten.
func mutate(b []byte, off int, v uint32) []byte {
	out := append([]byte(nil), b...)
	out[off] = byte(v)
	out[off+1] = byte(v >> 8)
	out[off+2] = byte(v >> 16)
	out[off+3] = byte(v >> 24)
	return out
}

func saveBytes(t *testing.T, vals []uint32, spec Spec) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, Compress(vals, spec)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func wantLoadErr(t *testing.T, data []byte, what string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: Load panicked instead of erroring: %v", what, r)
		}
	}()
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatalf("%s: Load accepted malformed input", what)
	}
}

// TestLoadErrVerbatim covers the converted verbatim paths: cursor out of
// range and truncated payload. Layout: tag(1) n(4) vals(4n) pos(4).
func TestLoadErrVerbatim(t *testing.T) {
	b := saveBytes(t, []uint32{7, 8, 9}, Spec{KindVerbatim, 0})
	wantLoadErr(t, mutate(b, len(b)-4, 99), "cursor past end")
	wantLoadErr(t, b[:len(b)-2], "truncated cursor")
	wantLoadErr(t, mutate(b, 1, 1<<29), "implausible length")
}

// TestLoadErrPacked covers the converted packed paths. Layout: tag(1)
// width(4) m(4) pos(4) nw(4) words(8nw).
func TestLoadErrPacked(t *testing.T) {
	b := saveBytes(t, []uint32{1, 2, 3, 1, 2, 3}, Spec{KindPacked, 0})
	wantLoadErr(t, mutate(b, 1, 40), "width over 32")
	wantLoadErr(t, mutate(b, 9, 1000), "cursor past end")
	wantLoadErr(t, mutate(b, 13, 0), "word count below need")
	wantLoadErr(t, mutate(b, 5, 1<<27), "value count without payload")
	wantLoadErr(t, b[:len(b)-3], "truncated words")
}

// TestLoadErrFCM covers the converted FCM/dFCM paths. Layout: tag(1) m(4)
// order(4) tbBits(4) pos(4) size(8) frtb bltb win frbits blbits.
func TestLoadErrFCM(t *testing.T) {
	vals := []uint32{1, 5, 5, 9, 1, 5, 2, 2}
	for _, spec := range []Spec{{KindFCM, 2}, {KindDFCM, 2}} {
		b := saveBytes(t, vals, spec)
		wantLoadErr(t, mutate(b, 5, 0), "order zero")
		wantLoadErr(t, mutate(b, 5, 100), "order over 64")
		wantLoadErr(t, mutate(b, 9, 27), "table bits over 26")
		wantLoadErr(t, mutate(b, 13, 1000), "cursor past end")
		// Shrinking the forward table's length prefix desynchronizes or
		// fails the table-size cross-check; either way it must error.
		wantLoadErr(t, mutate(b, 25, 1), "table shorter than 1<<tbBits")
		wantLoadErr(t, b[:len(b)/2], "truncated mid-state")
	}
}

// TestLoadErrLastN covers the converted last-n paths. Layout: tag(1)
// stride(1) m(4) n(4) idxBits(4) pos(4) lastVal(4) size(8) tb frbits blbits.
func TestLoadErrLastN(t *testing.T) {
	vals := []uint32{3, 3, 6, 3, 6, 6, 9, 3}
	for _, spec := range []Spec{{KindLastN, 4}, {KindLastNStride, 4}} {
		b := saveBytes(t, vals, spec)
		wantLoadErr(t, mutate(b, 6, 3), "table size not a power of two")
		wantLoadErr(t, mutate(b, 6, 1<<21), "table size over 2^20")
		wantLoadErr(t, mutate(b, 10, 7), "index width inconsistent")
		wantLoadErr(t, mutate(b, 14, 1000), "cursor past end")
		wantLoadErr(t, b[:len(b)-1], "truncated bit store")
		// Stride flag contradicting the kind tag.
		flip := append([]byte(nil), b...)
		flip[1] ^= 1
		wantLoadErr(t, flip, "stride flag contradicts tag")
	}
}

// TestLoadRejectsForgedEntries hand-crafts an FCM state that passes every
// structural check but whose entry stores are empty: Load's normalizing
// traversal must reject it outright (it used to be accepted, relying on a
// separate WalkCheck pass to catch the forgery before a query panicked).
func TestLoadRejectsForgedEntries(t *testing.T) {
	var buf bytes.Buffer
	writeAll(&buf, uint8(KindFCM),
		uint32(2), // m: claims two values
		uint32(1), // order
		uint32(1), // tbBits
		uint32(0), // pos
		uint64(0)) // size
	writeU32s(&buf, []uint32{0, 0})      // frtb (1<<tbBits)
	writeU32s(&buf, []uint32{0, 0})      // bltb
	writeU32s(&buf, []uint32{0})         // win (order entries)
	writeAll(&buf, uint64(0), uint32(0)) // fr bitstack: 0 bits, 0 words
	writeAll(&buf, uint64(0), uint32(0)) // bl bitstack: empty too
	if _, err := Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("Load accepted a stream with empty entry stores")
	}
}

// TestLoadNormalizesMidStreamCursor feeds Load a state saved at an interior
// position (as older writers could produce) and checks it is accepted and
// reads back the full sequence. The state is produced by running the
// encoder forward only part way.
func TestLoadNormalizesMidStreamCursor(t *testing.T) {
	vals := []uint32{4, 8, 15, 16, 23, 42, 4, 8}
	for _, spec := range []Spec{{KindFCM, 1}, {KindDFCM, 1}, {KindLastN, 2}, {KindLastNStride, 2}} {
		// Build an encoder, walk it to an interior position, and serialize
		// that state by hand in the wire layout.
		var buf bytes.Buffer
		switch spec.Kind {
		case KindFCM, KindDFCM:
			enc := newFCMEnc(vals, spec.Order, spec.Kind == KindDFCM)
			for enc.pos > 3 {
				enc.prev()
			}
			kind := KindFCM
			if enc.stride {
				kind = KindDFCM
			}
			writeAll(&buf, uint8(kind), uint32(enc.m), uint32(enc.order),
				uint32(enc.tbBits), uint32(enc.pos), uint64(0))
			writeU32s(&buf, enc.frtb)
			writeU32s(&buf, enc.bltb)
			writeU32s(&buf, enc.win)
			writeBits(&buf, &enc.fr)
			writeBits(&buf, &enc.bl)
		default:
			enc := newLastNEnc(vals, spec.Order, spec.Kind == KindLastNStride)
			for enc.pos > 3 {
				enc.prev()
			}
			kind := KindLastN
			if enc.stride {
				kind = KindLastNStride
			}
			writeAll(&buf, uint8(kind), uint8(b2u8(enc.stride)), uint32(enc.m),
				uint32(enc.n), uint32(enc.idxBits), uint32(enc.pos), enc.lastVal, uint64(0))
			writeU32s(&buf, enc.tb)
			writeBits(&buf, &enc.fr)
			writeBits(&buf, &enc.bl)
		}
		s, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: Load of mid-stream state: %v", spec, err)
		}
		got := Drain(s)
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("%s: normalized stream value %d = %d, want %d", spec, i, got[i], vals[i])
			}
		}
	}
}

// TestWalkCheckPassesValid certifies every candidate encoding of a real
// sequence.
func TestWalkCheckPassesValid(t *testing.T) {
	vals := []uint32{1, 5, 5, 9, 1, 5, 2, 2, 4, 4}
	for _, spec := range Candidates {
		s := Compress(vals, spec)
		if err := WalkCheck(s); err != nil {
			t.Fatalf("%s: WalkCheck rejected a valid stream: %v", spec, err)
		}
	}
}
