// Package stream implements the paper's tier-2 generic compression: every
// stream of 32-bit profile values (timestamps, values, dependence-label
// halves) is compressed with a *bidirectional* value-predictor compressor
// that can be traversed one step at a time in either direction without
// decompressing the whole stream.
//
// A compressed stream is conceptually split into three parts (paper §4):
//
//	[FR 1..c] [window] [BL c+1..m]
//
// FR holds entries forward-compressed with *right* context, BL entries
// compressed with *left* context, and the window holds n uncompressed
// values. Stepping a cursor converts one FR entry into a BL entry or vice
// versa. The crucial trick making this exactly reversible: a miss entry
// stores the predictor table's *evicted* content while the table keeps the
// actual value, so every table mutation carries its own undo record, and the
// cursor state at a given position is identical no matter how it was
// reached.
//
// That path independence is what makes the access layer concurrency-safe:
// a Stream is an immutable artifact holding both entry stores in full (the
// FR store as it stands at position Len, the BL store as it stands at
// position 0) plus periodic state checkpoints, and every traversal happens
// through a detached Cursor that owns private predictor-table state. Any
// number of cursors can read one stream from any number of goroutines.
//
// Methods (paper's Selection step): FCM, differential FCM, last-n, and
// last-n stride, each in three context/table sizes, plus packed and a
// verbatim fallback. CompressBest picks, per stream, the method that
// performs best on a prefix.
package stream

import "fmt"

// Stream is an immutable, bidirectionally traversable compressed sequence
// of 32-bit values. A Stream carries no cursor state of its own: all
// traversal happens through detached cursors obtained from NewCursor. A
// frozen Stream is safe for concurrent use by any number of cursors.
type Stream interface {
	// Len returns the number of values in the stream.
	Len() int
	// SizeBits returns the storage size of the compressed stream in bits,
	// including predictor tables, the uncompressed window, and a fixed
	// header, as of construction time. Checkpoints are excluded (see
	// CheckpointBits).
	SizeBits() uint64
	// CheckpointBits returns the extra storage spent on seek checkpoints
	// (position/state snapshots recorded every K values), reported
	// separately from SizeBits because checkpoints are an access-time
	// accelerator, not part of the paper's compressed representation.
	CheckpointBits() uint64
	// Name identifies the compression method.
	Name() string
	// NewCursor returns a fresh independent cursor positioned at 0. Cursors
	// from one stream never share mutable state.
	NewCursor() Cursor
}

// Cursor is a detached read cursor over a Stream. The cursor sits between
// elements: Pos()==p means Next() returns element p. A Cursor owns its
// predictor-table reconstruction and is not safe for concurrent use, but
// distinct cursors over one stream are fully independent.
type Cursor interface {
	// Len returns the underlying stream's length.
	Len() int
	// Pos returns the cursor position in [0, Len()].
	Pos() int
	// Next returns the value at Pos() and advances the cursor. It panics if
	// the cursor is at the end.
	Next() uint32
	// Prev retreats the cursor and returns the value at the new position.
	// It panics if the cursor is at the start.
	Prev() uint32
	// Seek positions the cursor at p, restoring predictor state from the
	// nearest checkpoint (or the canonical start/end state) and stepping
	// the remainder, so the cost is O(checkpoint spacing) rather than
	// O(|p - Pos()|). It panics if p is outside [0, Len()].
	Seek(p int)
	// NextN decodes up to len(dst) values forward in one call: dst[i]
	// receives the value at position Pos()+i. It returns the count decoded
	// — min(len(dst), Len()-Pos()) — and advances the cursor past them.
	// Batching amortizes per-step dispatch and table-state loads over the
	// whole run, so hot sequential walks should prefer NextN with a
	// reusable buffer over per-element Next.
	NextN(dst []uint32) int
	// PrevN decodes up to len(dst) values backward in one call, in
	// traversal order: dst[i] receives the value at position Pos()-1-i. It
	// returns the count decoded — min(len(dst), Pos()) — and retreats the
	// cursor past them.
	PrevN(dst []uint32) int
	// Clone returns an independent copy of this cursor at the same
	// position.
	Clone() Cursor
}

// HeaderBits is the fixed per-stream metadata charge (method id + length).
const HeaderBits = 64

// SeekStart rewinds c to position 0.
func SeekStart(c Cursor) { c.Seek(0) }

// SeekEnd advances c to position Len.
func SeekEnd(c Cursor) { c.Seek(c.Len()) }

// SeekTo positions the cursor at p.
func SeekTo(c Cursor, p int) { c.Seek(p) }

// At reads the value at index i through a throwaway cursor. Callers reading
// many positions should hold their own cursor and Seek it.
func At(s Stream, i int) uint32 {
	c := s.NewCursor()
	c.Seek(i)
	return c.Next()
}

// Drain returns all values of s in order.
func Drain(s Stream) []uint32 {
	out := make([]uint32, s.Len())
	s.NewCursor().NextN(out)
	return out
}

// Spec selects a compression method.
type Spec struct {
	Kind  Kind
	Order int // FCM/dFCM context length (values), or last-n table size
}

// Kind enumerates tier-2 methods.
type Kind uint8

const (
	// KindVerbatim stores the stream raw (selection fallback).
	KindVerbatim Kind = iota
	// KindFCM is the bidirectional finite context method predictor.
	KindFCM
	// KindDFCM is the bidirectional differential FCM (predicts strides).
	KindDFCM
	// KindLastN is the bidirectional last-n (move-to-front) predictor.
	KindLastN
	// KindLastNStride is last-n over strides.
	KindLastNStride
	// KindPacked stores values at the smallest fixed bit width.
	KindPacked
)

func (s Spec) String() string {
	switch s.Kind {
	case KindVerbatim:
		return "verbatim"
	case KindFCM:
		return fmt.Sprintf("fcm%d", s.Order)
	case KindDFCM:
		return fmt.Sprintf("dfcm%d", s.Order)
	case KindLastN:
		return fmt.Sprintf("last%d", s.Order)
	case KindLastNStride:
		return fmt.Sprintf("lastS%d", s.Order)
	case KindPacked:
		return "packed"
	}
	return "unknown"
}

// Compress builds an immutable compressed stream from vals with the given
// method, recording seek checkpoints at the default spacing policy.
func Compress(vals []uint32, spec Spec) Stream { return CompressK(vals, spec, 0) }

// CompressK is Compress with explicit checkpoint spacing k: k == 0 applies
// the automatic policy (see DefaultCheckpointK), k < 0 records no interior
// checkpoints, and k > 0 records one checkpoint every k values.
func CompressK(vals []uint32, spec Spec, k int) Stream {
	switch spec.Kind {
	case KindVerbatim:
		return newVerbatim(vals)
	case KindFCM:
		return newFCMEnc(vals, spec.Order, false).finish(k)
	case KindDFCM:
		return newFCMEnc(vals, spec.Order, true).finish(k)
	case KindLastN:
		return newLastNEnc(vals, spec.Order, false).finish(k)
	case KindLastNStride:
		return newLastNEnc(vals, spec.Order, true).finish(k)
	case KindPacked:
		return newPacked(vals)
	default:
		panic(fmt.Sprintf("stream: unknown kind %d", spec.Kind))
	}
}

// Candidates is the method pool used by CompressBest: the paper's four
// predictor families in three sizes each, plus the verbatim fallback.
var Candidates = []Spec{
	{KindVerbatim, 0},
	{KindPacked, 0},
	{KindFCM, 1}, {KindFCM, 2}, {KindFCM, 3},
	{KindDFCM, 1}, {KindDFCM, 2}, {KindDFCM, 3},
	{KindLastN, 2}, {KindLastN, 4}, {KindLastN, 8},
	{KindLastNStride, 2}, {KindLastNStride, 4}, {KindLastNStride, 8},
}

// SelectionPrefix is how many leading values each candidate compresses
// before the best method is chosen (the paper's "after a certain number of
// instances we pick the method that performs the best up to that point").
const SelectionPrefix = 4096

// CompressBest compresses vals with every candidate on a prefix, picks the
// method with the smallest compressed size, and compresses the full stream
// with it.
//
// The selection phase sizes candidates with pooled scratch state instead of
// building and discarding thirteen streams; callers running many
// compressions on one goroutine should hold their own Scratch and call
// CompressBestScratch directly.
func CompressBest(vals []uint32) Stream {
	sc := scratchPool.Get().(*Scratch)
	s := CompressBestScratch(vals, sc)
	scratchPool.Put(sc)
	return s
}
