// Package stream implements the paper's tier-2 generic compression: every
// stream of 32-bit profile values (timestamps, values, dependence-label
// halves) is compressed with a *bidirectional* value-predictor compressor
// that can be traversed one step at a time in either direction without
// decompressing the whole stream.
//
// A compressed stream is conceptually split into three parts (paper §4):
//
//	[FR 1..c] [window c..c+n-1] [BL c+n..m+n-1]
//
// FR holds entries forward-compressed with *right* context, BL entries
// compressed with *left* context, and the window holds n uncompressed
// values. Stepping the cursor converts one FR entry into a BL entry or vice
// versa. The crucial trick making this exactly reversible: a miss entry
// stores the predictor table's *evicted* content while the table keeps the
// actual value, so every table mutation carries its own undo record, and the
// state at a given cursor is identical no matter how it was reached.
//
// Methods (paper's Selection step): FCM, differential FCM, last-n, and
// last-n stride, each in three context/table sizes, plus a verbatim
// fallback. CompressBest picks, per stream, the method that performs best
// on a prefix.
package stream

import "fmt"

// Stream is a bidirectionally traversable compressed sequence of 32-bit
// values. The cursor sits between elements: Pos()==p means Next() returns
// element p. A Stream is not safe for concurrent use.
type Stream interface {
	// Len returns the number of values in the stream.
	Len() int
	// Pos returns the cursor position in [0, Len()].
	Pos() int
	// Next returns the value at Pos() and advances the cursor. It panics if
	// the cursor is at the end.
	Next() uint32
	// Prev retreats the cursor and returns the value at the new position.
	// It panics if the cursor is at the start.
	Prev() uint32
	// SizeBits returns the storage size of the compressed stream in bits,
	// including predictor tables, the uncompressed window, and a fixed
	// header, as of construction time.
	SizeBits() uint64
	// Name identifies the compression method.
	Name() string
	// Clone returns an independent cursor over the same stream: the copy
	// can be stepped without affecting the original (tables and entry
	// stores are duplicated; for packed/verbatim the payload is shared).
	Clone() Stream
}

// HeaderBits is the fixed per-stream metadata charge (method id + length).
const HeaderBits = 64

// SeekStart rewinds s to position 0 by stepping backward.
func SeekStart(s Stream) {
	for s.Pos() > 0 {
		s.Prev()
	}
}

// SeekEnd advances s to position Len by stepping forward.
func SeekEnd(s Stream) {
	for s.Pos() < s.Len() {
		s.Next()
	}
}

// SeekTo positions the cursor at p.
func SeekTo(s Stream, p int) {
	if p < 0 || p > s.Len() {
		panic(fmt.Sprintf("stream: seek to %d outside [0,%d]", p, s.Len()))
	}
	for s.Pos() > p {
		s.Prev()
	}
	for s.Pos() < p {
		s.Next()
	}
}

// At reads the value at index i (cursor ends at i+1).
func At(s Stream, i int) uint32 {
	SeekTo(s, i)
	return s.Next()
}

// Drain returns all values, leaving the cursor at the end.
func Drain(s Stream) []uint32 {
	SeekStart(s)
	out := make([]uint32, 0, s.Len())
	for s.Pos() < s.Len() {
		out = append(out, s.Next())
	}
	return out
}

// Spec selects a compression method.
type Spec struct {
	Kind  Kind
	Order int // FCM/dFCM context length (values), or last-n table size
}

// Kind enumerates tier-2 methods.
type Kind uint8

const (
	// KindVerbatim stores the stream raw (selection fallback).
	KindVerbatim Kind = iota
	// KindFCM is the bidirectional finite context method predictor.
	KindFCM
	// KindDFCM is the bidirectional differential FCM (predicts strides).
	KindDFCM
	// KindLastN is the bidirectional last-n (move-to-front) predictor.
	KindLastN
	// KindLastNStride is last-n over strides.
	KindLastNStride
	// KindPacked stores values at the smallest fixed bit width.
	KindPacked
)

func (s Spec) String() string {
	switch s.Kind {
	case KindVerbatim:
		return "verbatim"
	case KindFCM:
		return fmt.Sprintf("fcm%d", s.Order)
	case KindDFCM:
		return fmt.Sprintf("dfcm%d", s.Order)
	case KindLastN:
		return fmt.Sprintf("last%d", s.Order)
	case KindLastNStride:
		return fmt.Sprintf("lastS%d", s.Order)
	case KindPacked:
		return "packed"
	}
	return "unknown"
}

// Compress builds a compressed stream from vals with the given method.
// The cursor is left at position 0.
func Compress(vals []uint32, spec Spec) Stream {
	var s Stream
	switch spec.Kind {
	case KindVerbatim:
		s = newVerbatim(vals)
	case KindFCM:
		s = newFCM(vals, spec.Order, false)
	case KindDFCM:
		s = newFCM(vals, spec.Order, true)
	case KindLastN:
		s = newLastN(vals, spec.Order, false)
	case KindLastNStride:
		s = newLastN(vals, spec.Order, true)
	case KindPacked:
		s = newPacked(vals)
	default:
		panic(fmt.Sprintf("stream: unknown kind %d", spec.Kind))
	}
	SeekStart(s)
	return s
}

// Candidates is the method pool used by CompressBest: the paper's four
// predictor families in three sizes each, plus the verbatim fallback.
var Candidates = []Spec{
	{KindVerbatim, 0},
	{KindPacked, 0},
	{KindFCM, 1}, {KindFCM, 2}, {KindFCM, 3},
	{KindDFCM, 1}, {KindDFCM, 2}, {KindDFCM, 3},
	{KindLastN, 2}, {KindLastN, 4}, {KindLastN, 8},
	{KindLastNStride, 2}, {KindLastNStride, 4}, {KindLastNStride, 8},
}

// SelectionPrefix is how many leading values each candidate compresses
// before the best method is chosen (the paper's "after a certain number of
// instances we pick the method that performs the best up to that point").
const SelectionPrefix = 4096

// CompressBest compresses vals with every candidate on a prefix, picks the
// method with the smallest compressed size, and compresses the full stream
// with it. It returns the stream positioned at 0.
//
// The selection phase sizes candidates with pooled scratch state instead of
// building and discarding thirteen streams; callers running many
// compressions on one goroutine should hold their own Scratch and call
// CompressBestScratch directly.
func CompressBest(vals []uint32) Stream {
	sc := scratchPool.Get().(*Scratch)
	s := CompressBestScratch(vals, sc)
	scratchPool.Put(sc)
	return s
}
