package interp

import (
	"testing"

	"wet/internal/ir"
	"wet/internal/trace"
)

func run(t *testing.T, p *ir.Program, inputs []int64, sink trace.Sink) *Result {
	t.Helper()
	st, err := Analyze(p)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := Run(st, Options{Inputs: inputs, Sink: sink, CollectOutput: true, MaxSteps: 1 << 22})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestCountdownOutputs(t *testing.T) {
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	x := fb.ConstReg(3)
	c := fb.NewReg()
	fb.While(func() ir.Operand {
		fb.Gt(c, ir.R(x), ir.Imm(0))
		return ir.R(c)
	}, func() {
		fb.Sub(x, ir.R(x), ir.Imm(1))
		fb.Output(ir.R(x))
	})
	fb.Halt()
	p.MustFinalize()
	res := run(t, p, nil, nil)
	want := []int64{2, 1, 0}
	if len(res.Outputs) != len(want) {
		t.Fatalf("outputs = %v, want %v", res.Outputs, want)
	}
	for i := range want {
		if res.Outputs[i] != want[i] {
			t.Fatalf("outputs = %v, want %v", res.Outputs, want)
		}
	}
}

func TestArithmeticSemantics(t *testing.T) {
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	a := fb.ConstReg(7)
	bb := fb.ConstReg(-3)
	r := fb.NewReg()
	emit := func() { fb.Output(ir.R(r)) }
	fb.Add(r, ir.R(a), ir.R(bb))
	emit() // 4
	fb.Mul(r, ir.R(a), ir.R(bb))
	emit() // -21
	fb.Div(r, ir.R(a), ir.Imm(0))
	emit() // 0 (div by zero defined as 0)
	fb.Mod(r, ir.R(a), ir.Imm(0))
	emit() // 0
	fb.Div(r, ir.R(a), ir.Imm(2))
	emit() // 3
	fb.Shl(r, ir.Imm(1), ir.Imm(65))
	emit() // 1<<1 = 2 (shift count masked to 64)
	fb.Lt(r, ir.R(bb), ir.R(a))
	emit() // 1
	fb.Neg(r, ir.R(bb))
	emit() // 3
	fb.Not(r, ir.Imm(0))
	emit() // -1
	fb.Halt()
	p.MustFinalize()
	res := run(t, p, nil, nil)
	want := []int64{4, -21, 0, 0, 3, 2, 1, 3, -1}
	for i, w := range want {
		if res.Outputs[i] != w {
			t.Fatalf("output[%d] = %d, want %d (all: %v)", i, res.Outputs[i], w, res.Outputs)
		}
	}
}

func TestMemoryAndInput(t *testing.T) {
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	v := fb.NewReg()
	fb.Input(v)
	fb.Store(ir.Imm(100), 0, ir.R(v))
	w := fb.NewReg()
	fb.Load(w, ir.Imm(99), 1) // same address via offset
	fb.Output(ir.R(w))
	fb.Input(v) // second read
	fb.Output(ir.R(v))
	fb.Input(v) // tape exhausted -> 0
	fb.Output(ir.R(v))
	fb.Halt()
	p.MustFinalize()
	res := run(t, p, []int64{42, 7}, nil)
	want := []int64{42, 7, 0}
	for i, wv := range want {
		if res.Outputs[i] != wv {
			t.Fatalf("outputs = %v, want %v", res.Outputs, want)
		}
	}
}

func TestCallReturnValue(t *testing.T) {
	p := ir.NewProgram(1024)
	g := p.NewFunc("square", 1)
	r := g.NewReg()
	g.Mul(r, ir.R(g.Param(0)), ir.R(g.Param(0)))
	g.Ret(ir.R(r))
	fb := p.NewFunc("main", 0)
	d := fb.NewReg()
	fb.Call(d, "square", ir.Imm(9))
	fb.Output(ir.R(d))
	// Nested: square(square(2)) = 16
	e := fb.NewReg()
	fb.Call(e, "square", ir.Imm(2))
	fb.Call(e, "square", ir.R(e))
	fb.Output(ir.R(e))
	fb.Halt()
	p.Entry = 1
	p.MustFinalize()
	res := run(t, p, nil, nil)
	if res.Outputs[0] != 81 || res.Outputs[1] != 16 {
		t.Fatalf("outputs = %v, want [81 16]", res.Outputs)
	}
}

func TestRecursion(t *testing.T) {
	// fact(n) = n<=1 ? 1 : n*fact(n-1)
	p := ir.NewProgram(1024)
	g := p.NewFunc("fact", 1)
	n := g.Param(0)
	c := g.NewReg()
	g.Le(c, ir.R(n), ir.Imm(1))
	g.If(ir.R(c), func() {
		g.Ret(ir.Imm(1))
	}, nil)
	m := g.NewReg()
	g.Sub(m, ir.R(n), ir.Imm(1))
	sub := g.NewReg()
	g.Call(sub, "fact", ir.R(m))
	r := g.NewReg()
	g.Mul(r, ir.R(n), ir.R(sub))
	g.Ret(ir.R(r))
	fb := p.NewFunc("main", 0)
	d := fb.NewReg()
	fb.Call(d, "fact", ir.Imm(6))
	fb.Output(ir.R(d))
	fb.Halt()
	p.Entry = 1
	p.MustFinalize()
	res := run(t, p, nil, nil)
	if res.Outputs[0] != 720 {
		t.Fatalf("fact(6) = %v, want 720", res.Outputs)
	}
}

func TestDataDependenceThroughMemory(t *testing.T) {
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	v := fb.ConstReg(5) // inst 1
	fb.Store(ir.Imm(10), 0, ir.R(v))
	w := fb.NewReg()
	fb.Load(w, ir.Imm(10), 0)
	fb.Output(ir.R(w))
	fb.Halt()
	p.MustFinalize()
	rec := &trace.Recording{}
	run(t, p, nil, rec)

	var constInst, storeInst trace.Inst
	for _, e := range rec.Events {
		switch e.Stmt.Op {
		case ir.OpConst:
			constInst = e.Inst
		case ir.OpStore:
			storeInst = e.Inst
			if len(e.DDSrcs) != 1 || e.DDSrcs[0] != constInst {
				t.Fatalf("store DD = %v, want [%d]", e.DDSrcs, constInst)
			}
		case ir.OpLoad:
			// Load with immediate address: single DD from memory.
			if len(e.DDSrcs) != 1 || e.DDSrcs[0] != storeInst {
				t.Fatalf("load DD = %v, want [%d] (the store)", e.DDSrcs, storeInst)
			}
		case ir.OpOutput:
			if len(e.DDSrcs) != 1 || e.DDSrcs[0] == 0 {
				t.Fatalf("output DD = %v, want the load instance", e.DDSrcs)
			}
		}
	}
	if constInst == 0 || storeInst == 0 {
		t.Fatal("missing const/store events")
	}
}

func TestControlDependenceDynamic(t *testing.T) {
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	c := fb.NewReg()
	fb.Input(c)
	x := fb.NewReg()
	fb.If(ir.R(c), func() { fb.Const(x, 1) }, func() { fb.Const(x, 2) })
	fb.Output(ir.R(x))
	fb.Halt()
	p.MustFinalize()
	rec := &trace.Recording{}
	run(t, p, []int64{1}, rec)

	var brInst trace.Inst
	for _, e := range rec.Events {
		if e.Stmt.Op == ir.OpBr {
			brInst = e.Inst
		}
	}
	if brInst == 0 {
		t.Fatal("no branch executed")
	}
	sawArm := false
	for _, e := range rec.Events {
		if e.Stmt.Op == ir.OpConst && (e.Value == 1 || e.Value == 2) {
			sawArm = true
			if e.CDSrc != brInst {
				t.Fatalf("arm const CD = %d, want branch inst %d", e.CDSrc, brInst)
			}
		}
		if e.Stmt.Op == ir.OpInput && e.CDSrc != 0 {
			t.Fatalf("input before branch has CD %d, want 0", e.CDSrc)
		}
	}
	if !sawArm {
		t.Fatal("no arm executed")
	}
}

func TestLoopCarriedControlDependence(t *testing.T) {
	// Each iteration's body is control dependent on the loop-head branch
	// instance of the SAME iteration test.
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	x := fb.ConstReg(2)
	c := fb.NewReg()
	fb.While(func() ir.Operand {
		fb.Gt(c, ir.R(x), ir.Imm(0))
		return ir.R(c)
	}, func() {
		fb.Sub(x, ir.R(x), ir.Imm(1))
	})
	fb.Halt()
	p.MustFinalize()
	rec := &trace.Recording{}
	run(t, p, nil, rec)

	var brs []trace.Inst
	for _, e := range rec.Events {
		if e.Stmt.Op == ir.OpBr {
			brs = append(brs, e.Inst)
		}
	}
	if len(brs) != 3 {
		t.Fatalf("branch executed %d times, want 3", len(brs))
	}
	subIdx := 0
	for _, e := range rec.Events {
		if e.Stmt.Op == ir.OpSub {
			if e.CDSrc != brs[subIdx] {
				t.Fatalf("iteration %d sub CD = %d, want %d", subIdx, e.CDSrc, brs[subIdx])
			}
			subIdx++
		}
	}
	if subIdx != 2 {
		t.Fatalf("sub executed %d times, want 2", subIdx)
	}
}

func TestPathsPartitionStatementStream(t *testing.T) {
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	s := fb.ConstReg(0)
	fb.For(ir.Imm(0), ir.Imm(10), ir.Imm(1), func(i ir.Reg) {
		fb.Add(s, ir.R(s), ir.R(i))
	})
	fb.Output(ir.R(s))
	fb.Halt()
	p.MustFinalize()
	st, err := Analyze(p)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	rec := &trace.Recording{}
	if _, err := Run(st, Options{Sink: rec}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rec.Paths) == 0 {
		t.Fatal("no paths recorded")
	}
	if rec.Paths[len(rec.Paths)-1].Upto != len(rec.Events) {
		t.Fatalf("last path covers %d events, total %d", rec.Paths[len(rec.Paths)-1].Upto, len(rec.Events))
	}
	// Each path's events must exactly match its decoded block sequence.
	start := 0
	for _, pe := range rec.Paths {
		blocks, err := st.Paths[pe.Fn].Blocks(pe.PathID)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		var wantStmts []*ir.Stmt
		f := p.Funcs[pe.Fn]
		for _, bid := range blocks {
			wantStmts = append(wantStmts, f.Blocks[bid].Stmts...)
		}
		got := rec.Events[start:pe.Upto]
		if len(got) != len(wantStmts) {
			t.Fatalf("path (fn %d, id %d): %d events, want %d", pe.Fn, pe.PathID, len(got), len(wantStmts))
		}
		for i := range got {
			if got[i].Stmt != wantStmts[i] {
				t.Fatalf("path stmt mismatch at %d: got [%d]%s want [%d]%s", i, got[i].Stmt.ID, got[i].Stmt, wantStmts[i].ID, wantStmts[i])
			}
		}
		start = pe.Upto
	}
}

func TestCountingSinkStats(t *testing.T) {
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	s := fb.ConstReg(0)
	fb.For(ir.Imm(0), ir.Imm(5), ir.Imm(1), func(i ir.Reg) {
		fb.Add(s, ir.R(s), ir.R(i))
		fb.Store(ir.R(i), 0, ir.R(s))
	})
	fb.Halt()
	p.MustFinalize()
	cnt := trace.NewCounting(nil)
	res := run(t, p, nil, cnt)
	if cnt.StmtExecs != res.Steps {
		t.Fatalf("StmtExecs %d != Steps %d", cnt.StmtExecs, res.Steps)
	}
	if cnt.Stores != 5 {
		t.Fatalf("Stores = %d, want 5", cnt.Stores)
	}
	if cnt.Branches != 6 {
		t.Fatalf("Branches = %d, want 6", cnt.Branches)
	}
	if cnt.DefExecs == 0 || cnt.DefExecs >= cnt.StmtExecs {
		t.Fatalf("DefExecs = %d of %d", cnt.DefExecs, cnt.StmtExecs)
	}
	if cnt.PathExecs == 0 || cnt.BlockExecs < cnt.PathExecs {
		t.Fatalf("PathExecs=%d BlockExecs=%d", cnt.PathExecs, cnt.BlockExecs)
	}
	if cnt.OrigWETBytes() != cnt.OrigNodeTSBytes()+cnt.OrigNodeValBytes()+cnt.OrigEdgeBytes() {
		t.Fatal("OrigWETBytes inconsistent")
	}
}

func TestMaxStepsAborts(t *testing.T) {
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	s := fb.ConstReg(0)
	fb.For(ir.Imm(0), ir.Imm(1000000), ir.Imm(1), func(i ir.Reg) {
		fb.Add(s, ir.R(s), ir.R(i))
	})
	fb.Halt()
	p.MustFinalize()
	st, err := Analyze(p)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if _, err := Run(st, Options{MaxSteps: 100}); err == nil {
		t.Fatal("Run with MaxSteps=100 did not abort")
	}
}

func TestArgumentDependenceCrossesCall(t *testing.T) {
	p := ir.NewProgram(1024)
	g := p.NewFunc("id", 1)
	r := g.NewReg()
	g.Add(r, ir.R(g.Param(0)), ir.Imm(0))
	g.Ret(ir.R(r))
	fb := p.NewFunc("main", 0)
	v := fb.ConstReg(11)
	d := fb.NewReg()
	fb.Call(d, "id", ir.R(v))
	fb.Output(ir.R(d))
	fb.Halt()
	p.Entry = 1
	p.MustFinalize()
	rec := &trace.Recording{}
	res := run(t, p, nil, rec)
	if res.Outputs[0] != 11 {
		t.Fatalf("output = %v, want 11", res.Outputs)
	}
	var constInst, addInst trace.Inst
	for _, e := range rec.Events {
		switch e.Stmt.Op {
		case ir.OpConst:
			constInst = e.Inst
		case ir.OpAdd:
			addInst = e.Inst
			if len(e.DDSrcs) != 1 || e.DDSrcs[0] != constInst {
				t.Fatalf("callee add DD = %v, want [%d] (caller const)", e.DDSrcs, constInst)
			}
		case ir.OpOutput:
			if e.DDSrcs[0] != addInst {
				t.Fatalf("output DD = %v, want [%d] (callee add, through ret)", e.DDSrcs, addInst)
			}
		}
	}
}

func TestBranchOnNegativeIsTaken(t *testing.T) {
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	c := fb.ConstReg(-5)
	out := fb.NewReg()
	fb.If(ir.R(c), func() { fb.Const(out, 1) }, func() { fb.Const(out, 0) })
	fb.Output(ir.R(out))
	fb.Halt()
	p.MustFinalize()
	res := run(t, p, nil, nil)
	if res.Outputs[0] != 1 {
		t.Fatalf("negative condition not taken: %v", res.Outputs)
	}
}

func TestMemoryAddressMasking(t *testing.T) {
	p := ir.NewProgram(1024) // 1024 words; addresses wrap
	fb := p.NewFunc("main", 0)
	fb.Store(ir.Imm(1024+5), 0, ir.Imm(77)) // wraps to address 5
	v := fb.NewReg()
	fb.Load(v, ir.Imm(5), 0)
	fb.Output(ir.R(v))
	// Negative addresses also wrap deterministically.
	fb.Store(ir.Imm(-1), 0, ir.Imm(88)) // wraps to 1023
	w := fb.NewReg()
	fb.Load(w, ir.Imm(1023), 0)
	fb.Output(ir.R(w))
	fb.Halt()
	p.MustFinalize()
	res := run(t, p, nil, nil)
	if res.Outputs[0] != 77 || res.Outputs[1] != 88 {
		t.Fatalf("outputs = %v, want [77 88]", res.Outputs)
	}
}

func TestInputSharedAcrossCalls(t *testing.T) {
	p := ir.NewProgram(1024)
	g := p.NewFunc("readone", 0)
	r := g.NewReg()
	g.Input(r)
	g.Ret(ir.R(r))
	fb := p.NewFunc("main", 0)
	a := fb.NewReg()
	b := fb.NewReg()
	fb.Input(a)
	fb.Call(b, "readone")
	fb.Output(ir.R(a))
	fb.Output(ir.R(b))
	fb.Halt()
	p.Entry = 1
	p.MustFinalize()
	res := run(t, p, []int64{10, 20}, nil)
	if res.Outputs[0] != 10 || res.Outputs[1] != 20 {
		t.Fatalf("outputs = %v, want [10 20] (one shared tape)", res.Outputs)
	}
}

func TestDeepRecursion(t *testing.T) {
	// depth(n): n == 0 ? 0 : depth(n-1)+1, n = 300.
	p := ir.NewProgram(1024)
	g := p.NewFunc("depth", 1)
	n := g.Param(0)
	c := g.NewReg()
	g.Eq(c, ir.R(n), ir.Imm(0))
	g.If(ir.R(c), func() { g.Ret(ir.Imm(0)) }, nil)
	m := g.NewReg()
	g.Sub(m, ir.R(n), ir.Imm(1))
	sub := g.NewReg()
	g.Call(sub, "depth", ir.R(m))
	r := g.NewReg()
	g.Add(r, ir.R(sub), ir.Imm(1))
	g.Ret(ir.R(r))
	fb := p.NewFunc("main", 0)
	d := fb.NewReg()
	fb.Call(d, "depth", ir.Imm(300))
	fb.Output(ir.R(d))
	fb.Halt()
	p.Entry = 1
	p.MustFinalize()
	res := run(t, p, nil, nil)
	if res.Outputs[0] != 300 {
		t.Fatalf("depth(300) = %v", res.Outputs)
	}
}

type archCounter struct{ branches, loads, stores int }

func (a *archCounter) Branch(st *ir.Stmt, taken bool) { a.branches++ }
func (a *archCounter) Access(st *ir.Stmt, addr int64, isStore bool) {
	if isStore {
		a.stores++
	} else {
		a.loads++
	}
}

func TestArchHookCounts(t *testing.T) {
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	v := fb.NewReg()
	fb.For(ir.Imm(0), ir.Imm(5), ir.Imm(1), func(i ir.Reg) {
		fb.Store(ir.R(i), 0, ir.R(i))
		fb.Load(v, ir.R(i), 0)
	})
	fb.Halt()
	p.MustFinalize()
	st, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	ac := &archCounter{}
	if _, err := Run(st, Options{Arch: ac}); err != nil {
		t.Fatal(err)
	}
	if ac.branches != 6 || ac.loads != 5 || ac.stores != 5 {
		t.Fatalf("arch hooks: %d branches %d loads %d stores", ac.branches, ac.loads, ac.stores)
	}
}

func TestMinimalProgramHaltOnly(t *testing.T) {
	p := ir.NewProgram(1024)
	fb := p.NewFunc("main", 0)
	fb.Halt()
	p.MustFinalize()
	rec := &trace.Recording{}
	res := run(t, p, nil, rec)
	if res.Steps != 1 || len(rec.Events) != 1 || len(rec.Paths) != 1 {
		t.Fatalf("steps=%d events=%d paths=%d", res.Steps, len(rec.Events), len(rec.Paths))
	}
}
