// Package interp executes ir programs and emits the full dynamic event
// stream — statement instances with produced values, data-dependence
// sources, control-dependence sources, and Ball–Larus path completions.
// It plays the role of the Trimaran simulator in the paper: profiling by
// simulation, with no instrumentation intrusion.
package interp

import (
	"context"
	"fmt"

	"wet/internal/ballarus"
	"wet/internal/cfg"
	"wet/internal/ir"
	"wet/internal/trace"
)

// ArchSink receives the architecture-level outcomes used by the paper's
// Table 4 (branch misprediction and cache-miss one-bit histories). All
// methods are optional behaviour hooks; implementations decide the model.
type ArchSink interface {
	Branch(st *ir.Stmt, taken bool)
	Access(st *ir.Stmt, addr int64, isStore bool)
}

// Options configures a run.
type Options struct {
	Inputs   []int64 // input tape consumed by OpInput (0 after exhaustion)
	MaxSteps uint64  // abort bound on dynamic statements (0 = 1<<40)
	Sink     trace.Sink
	Arch     ArchSink
	// CollectOutput keeps values written by OpOutput (tests, examples).
	CollectOutput bool
	// Ctx cancels the run cooperatively: the step loop polls it every
	// ctxCheckMask+1 dynamic statements and returns context.Cause. Nil
	// means never cancelled.
	Ctx context.Context
}

// ctxCheckMask spaces cancellation polls: one ctx.Err() per 4096 dynamic
// statements keeps the check off the profile while bounding cancellation
// latency to microseconds at interpreter speeds.
const ctxCheckMask = 1<<12 - 1

// Result summarizes a completed run.
type Result struct {
	Steps   uint64  // dynamic statements executed
	Outputs []int64 // collected OpOutput values (if requested)
}

// Static holds per-program analysis shared across runs: Ball–Larus path
// profiles and block-level control dependence, per function.
type Static struct {
	Prog     *ir.Program
	Paths    []*ballarus.Profile
	CD       []*cfg.ControlDeps
	CDParent [][][]int // [fn][block] = static CD parent blocks
}

// Analyze computes the static side tables for p (finalized).
func Analyze(p *ir.Program) (*Static, error) { return AnalyzeOpt(p, false) }

// AnalyzeOpt is Analyze with the per-block node ablation: when perBlock is
// true every basic block is its own "path", recovering the paper's
// unoptimized timestamp scheme.
func AnalyzeOpt(p *ir.Program, perBlock bool) (*Static, error) {
	s := &Static{Prog: p}
	for _, f := range p.Funcs {
		pp, err := ballarus.NewOpt(f, perBlock)
		if err != nil {
			return nil, err
		}
		s.Paths = append(s.Paths, pp)
		cd, err := cfg.ControlDependence(f)
		if err != nil {
			return nil, err
		}
		s.CD = append(s.CD, cd)
		s.CDParent = append(s.CDParent, cd.Parents)
	}
	return s, nil
}

// brRec remembers the latest dynamic instance of a branch block's terminator
// within one frame.
type brRec struct {
	inst trace.Inst
	seq  uint64
}

type frame struct {
	f       *ir.Func
	regs    []int64
	regTag  []trace.Inst
	tracker ballarus.Tracker
	lastBr  []brRec
	cur     int    // current block id
	retDest ir.Reg // caller register receiving the return value
	retBlk  int    // caller block that issued the call
}

// Run executes the program under opts and streams events to opts.Sink.
func Run(st *Static, opts Options) (*Result, error) {
	p := st.Prog
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1 << 40
	}
	mem := make([]int64, p.MemWords)
	memTag := make([]trace.Inst, p.MemWords)
	mask := p.MemWords - 1

	res := &Result{}
	var inst trace.Inst // dense instance counter; first instance is 1
	var brSeq uint64
	inPos := 0
	ddBuf := make([]trace.Inst, 0, 8)
	dvBuf := make([]int64, 0, 8)
	useBuf := make([]ir.Reg, 0, 8)

	newFrame := func(fi int) *frame {
		f := p.Funcs[fi]
		return &frame{
			f:       f,
			regs:    make([]int64, f.NumRegs),
			regTag:  make([]trace.Inst, f.NumRegs),
			tracker: st.Paths[fi].NewTracker(),
			lastBr:  make([]brRec, len(f.Blocks)),
		}
	}

	stack := []*frame{newFrame(p.Entry)}
	emitPath := func(fr *frame, id int64) {
		if opts.Sink != nil {
			opts.Sink.PathDone(fr.f.Index, id)
		}
	}

	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		b := fr.f.Blocks[fr.cur]

		// Dynamic control dependence of this block execution: the most
		// recently executed static CD parent branch in this frame.
		var cdSrc trace.Inst
		var bestSeq uint64
		for _, par := range st.CDParent[fr.f.Index][fr.cur] {
			if r := fr.lastBr[par]; r.inst != 0 && r.seq >= bestSeq {
				cdSrc, bestSeq = r.inst, r.seq
			}
		}

		halted := false
		for _, s := range b.Stmts {
			if res.Steps >= maxSteps {
				return res, fmt.Errorf("interp: exceeded %d steps in %s", maxSteps, fr.f.Name)
			}
			if opts.Ctx != nil && res.Steps&ctxCheckMask == 0 && opts.Ctx.Err() != nil {
				return res, context.Cause(opts.Ctx)
			}
			res.Steps++
			inst++

			// Gather operand values and dependence sources.
			val := func(o ir.Operand) int64 {
				if o.IsReg {
					return fr.regs[o.Reg]
				}
				return o.Imm
			}
			useBuf = s.Uses(useBuf[:0])
			ddBuf = ddBuf[:0]
			dvBuf = dvBuf[:0]
			for _, r := range useBuf {
				ddBuf = append(ddBuf, fr.regTag[r])
				dvBuf = append(dvBuf, fr.regs[r])
			}

			var result int64
			var defTag = inst

			switch s.Op {
			case ir.OpConst:
				result = s.A.Imm
			case ir.OpAdd:
				result = val(s.A) + val(s.B)
			case ir.OpSub:
				result = val(s.A) - val(s.B)
			case ir.OpMul:
				result = val(s.A) * val(s.B)
			case ir.OpDiv:
				if d := val(s.B); d != 0 {
					result = val(s.A) / d
				}
			case ir.OpMod:
				if d := val(s.B); d != 0 {
					result = val(s.A) % d
				}
			case ir.OpAnd:
				result = val(s.A) & val(s.B)
			case ir.OpOr:
				result = val(s.A) | val(s.B)
			case ir.OpXor:
				result = val(s.A) ^ val(s.B)
			case ir.OpShl:
				result = val(s.A) << (uint64(val(s.B)) & 63)
			case ir.OpShr:
				result = val(s.A) >> (uint64(val(s.B)) & 63)
			case ir.OpNeg:
				result = -val(s.A)
			case ir.OpNot:
				result = ^val(s.A)
			case ir.OpEq:
				result = b2i(val(s.A) == val(s.B))
			case ir.OpNe:
				result = b2i(val(s.A) != val(s.B))
			case ir.OpLt:
				result = b2i(val(s.A) < val(s.B))
			case ir.OpLe:
				result = b2i(val(s.A) <= val(s.B))
			case ir.OpGt:
				result = b2i(val(s.A) > val(s.B))
			case ir.OpGe:
				result = b2i(val(s.A) >= val(s.B))
			case ir.OpLoad:
				addr := (val(s.A) + s.Off) & mask
				result = mem[addr]
				// The loaded value's producer is the store (or 0 if the
				// word was never written): a memory-carried dependence.
				ddBuf = append(ddBuf, memTag[addr])
				dvBuf = append(dvBuf, result)
				if opts.Arch != nil {
					opts.Arch.Access(s, addr, false)
				}
			case ir.OpStore:
				addr := (val(s.A) + s.Off) & mask
				mem[addr] = val(s.B)
				memTag[addr] = inst
				if opts.Arch != nil {
					opts.Arch.Access(s, addr, true)
				}
			case ir.OpInput:
				if inPos < len(opts.Inputs) {
					result = opts.Inputs[inPos]
					inPos++
				}
			case ir.OpOutput:
				if opts.CollectOutput {
					res.Outputs = append(res.Outputs, val(s.A))
				}
			case ir.OpJmp, ir.OpBr, ir.OpCall, ir.OpRet, ir.OpHalt:
				// handled below, after the event is emitted
			default:
				return res, fmt.Errorf("interp: unknown op %s", s.Op)
			}

			if opts.Sink != nil {
				opts.Sink.Stmt(inst, s, result, ddBuf, dvBuf, cdSrc)
			}
			if s.Op.HasDef() && s.Dest != ir.NoReg {
				fr.regs[s.Dest] = result
				fr.regTag[s.Dest] = defTag
			}

			// Terminators: control transfer, path bookkeeping.
			switch s.Op {
			case ir.OpJmp:
				if id, done := fr.tracker.Take(fr.cur, 0); done {
					emitPath(fr, id)
				}
				fr.cur = b.Succs[0]
			case ir.OpBr:
				taken := val(s.A) != 0
				if opts.Arch != nil {
					opts.Arch.Branch(s, taken)
				}
				brSeq++
				fr.lastBr[fr.cur] = brRec{inst: inst, seq: brSeq}
				idx := 1
				if taken {
					idx = 0
				}
				if id, done := fr.tracker.Take(fr.cur, idx); done {
					emitPath(fr, id)
				}
				fr.cur = b.Succs[idx]
			case ir.OpCall:
				emitPath(fr, fr.tracker.CompleteAtCall(fr.cur))
				callee := newFrame(s.Callee)
				for i, a := range s.Args {
					callee.regs[i] = val(a)
					if a.IsReg {
						callee.regTag[i] = fr.regTag[a.Reg]
					}
				}
				fr.retDest = s.Dest
				fr.retBlk = fr.cur
				fr.cur = b.Succs[0]
				stack = append(stack, callee)
			case ir.OpRet:
				emitPath(fr, fr.tracker.Finish(fr.cur))
				stack = stack[:len(stack)-1]
				if len(stack) == 0 {
					return res, fmt.Errorf("interp: ret from entry function %s", fr.f.Name)
				}
				caller := stack[len(stack)-1]
				if caller.retDest != ir.NoReg {
					caller.regs[caller.retDest] = val(s.A)
					if s.A.IsReg {
						caller.regTag[caller.retDest] = fr.regTag[s.A.Reg]
					} else {
						caller.regTag[caller.retDest] = 0
					}
				}
				caller.tracker.ResumeAfterCall(caller.retBlk)
			case ir.OpHalt:
				emitPath(fr, fr.tracker.Finish(fr.cur))
				return res, nil
			}
			if s.Op.IsTerminator() {
				halted = s.Op == ir.OpHalt
				break
			}
		}
		if halted {
			break
		}
	}
	return res, fmt.Errorf("interp: program ended without halt")
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
