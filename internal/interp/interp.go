// Package interp executes ir programs and emits the full dynamic event
// stream — statement instances with produced values, data-dependence
// sources, control-dependence sources, and Ball–Larus path completions.
// It plays the role of the Trimaran simulator in the paper: profiling by
// simulation, with no instrumentation intrusion.
package interp

import (
	"context"
	"fmt"

	"wet/internal/ballarus"
	"wet/internal/cfg"
	"wet/internal/ir"
	"wet/internal/trace"
)

// ArchSink receives the architecture-level outcomes used by the paper's
// Table 4 (branch misprediction and cache-miss one-bit histories). All
// methods are optional behaviour hooks; implementations decide the model.
type ArchSink interface {
	Branch(st *ir.Stmt, taken bool)
	Access(st *ir.Stmt, addr int64, isStore bool)
}

// Options configures a run.
type Options struct {
	Inputs   []int64 // input tape consumed by OpInput (0 after exhaustion)
	MaxSteps uint64  // abort bound on dynamic statements (0 = 1<<40)
	Sink     trace.Sink
	Arch     ArchSink
	// CollectOutput keeps values written by OpOutput (tests, examples).
	CollectOutput bool
	// Ctx cancels the run cooperatively: the step loop polls it every
	// ctxCheckMask+1 dynamic statements and returns context.Cause. Nil
	// means never cancelled.
	Ctx context.Context
	// Seed drives the deterministic thread scheduler of concurrent
	// programs: at every Ball–Larus path boundary the next runnable thread
	// is picked by a seeded xorshift generator, so the same program,
	// inputs, and seed replay the same interleaving (0 picks a fixed
	// default seed). Single-threaded programs are unaffected.
	Seed uint64
}

// ctxCheckMask spaces cancellation polls: one ctx.Err() per 4096 dynamic
// statements keeps the check off the profile while bounding cancellation
// latency to microseconds at interpreter speeds.
const ctxCheckMask = 1<<12 - 1

// Result summarizes a completed run.
type Result struct {
	Steps   uint64  // dynamic statements executed
	Outputs []int64 // collected OpOutput values (if requested)
}

// Static holds per-program analysis shared across runs: Ball–Larus path
// profiles and block-level control dependence, per function.
type Static struct {
	Prog     *ir.Program
	Paths    []*ballarus.Profile
	CD       []*cfg.ControlDeps
	CDParent [][][]int // [fn][block] = static CD parent blocks
}

// Analyze computes the static side tables for p (finalized).
func Analyze(p *ir.Program) (*Static, error) { return AnalyzeOpt(p, false) }

// AnalyzeOpt is Analyze with the per-block node ablation: when perBlock is
// true every basic block is its own "path", recovering the paper's
// unoptimized timestamp scheme.
func AnalyzeOpt(p *ir.Program, perBlock bool) (*Static, error) {
	s := &Static{Prog: p}
	for _, f := range p.Funcs {
		pp, err := ballarus.NewOpt(f, perBlock)
		if err != nil {
			return nil, err
		}
		s.Paths = append(s.Paths, pp)
		cd, err := cfg.ControlDependence(f)
		if err != nil {
			return nil, err
		}
		s.CD = append(s.CD, cd)
		s.CDParent = append(s.CDParent, cd.Parents)
	}
	return s, nil
}

// brRec remembers the latest dynamic instance of a branch block's terminator
// within one frame.
type brRec struct {
	inst trace.Inst
	seq  uint64
}

type frame struct {
	f       *ir.Func
	regs    []int64
	regTag  []trace.Inst
	tracker ballarus.Tracker
	lastBr  []brRec
	cur     int    // current block id
	retDest ir.Reg // caller register receiving the return value
	retBlk  int    // caller block that issued the call
}

// tstate is a thread's scheduler state.
type tstate uint8

const (
	tReady       tstate = iota
	tBlockedJoin        // waiting for thread `wait` to finish
	tBlockedLock        // waiting for lock `wait` to be released
	tDone               // root frame returned
)

// thread is one execution context: a call stack plus scheduler state. The
// entry function runs as thread 0; OpSpawn creates further threads with
// dense ids in creation order.
type thread struct {
	id       int32
	stack    []*frame
	state    tstate
	wait     int64  // tBlockedJoin: target thread id; tBlockedLock: lock id
	joinDest ir.Reg // register receiving the joined thread's return value
	retVal   int64  // root-frame return value, delivered at join
	retTag   trace.Inst
}

// runner holds the whole run state: memory, threads, locks, buffers, and
// the scheduler's RNG. Memory and its producer tags are shared across
// threads, so memory-carried DD edges cross threads for free.
type runner struct {
	st   *Static
	opts Options
	conc trace.ConcSink // opts.Sink's concurrency extension, or nil

	mem    []int64
	memTag []trace.Inst
	mask   int64

	threads  []*thread
	runnable []*thread
	locked   map[int64]bool
	rng      uint64

	res      *Result
	maxSteps uint64
	inst     trace.Inst // dense instance counter; first instance is 1
	brSeq    uint64
	inPos    int
	ddBuf    []trace.Inst
	dvBuf    []int64
	useBuf   []ir.Reg

	pathDone bool // one Ball–Larus path completed: yield to the scheduler
	halted   bool
}

// Run executes the program under opts and streams events to opts.Sink.
// Threads are interleaved at Ball–Larus path boundaries only (calls and
// sync operations terminate paths), so every path's statement events reach
// the sink contiguously, exactly as in a single-threaded run.
func Run(st *Static, opts Options) (*Result, error) {
	p := st.Prog
	r := &runner{
		st:       st,
		opts:     opts,
		mem:      make([]int64, p.MemWords),
		memTag:   make([]trace.Inst, p.MemWords),
		mask:     p.MemWords - 1,
		locked:   map[int64]bool{},
		rng:      opts.Seed,
		res:      &Result{},
		maxSteps: opts.MaxSteps,
		ddBuf:    make([]trace.Inst, 0, 8),
		dvBuf:    make([]int64, 0, 8),
		useBuf:   make([]ir.Reg, 0, 8),
	}
	if r.maxSteps == 0 {
		r.maxSteps = 1 << 40
	}
	if r.rng == 0 {
		r.rng = 0x9e3779b97f4a7c15
	}
	if cs, ok := opts.Sink.(trace.ConcSink); ok {
		r.conc = cs
	}
	r.threads = []*thread{{id: 0, stack: []*frame{r.newFrame(p.Entry)}}}
	return r.run()
}

// rand steps the scheduler's xorshift64 generator.
func (r *runner) rand() uint64 {
	x := r.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rng = x
	return x
}

func (r *runner) newFrame(fi int) *frame {
	f := r.st.Prog.Funcs[fi]
	return &frame{
		f:       f,
		regs:    make([]int64, f.NumRegs),
		regTag:  make([]trace.Inst, f.NumRegs),
		tracker: r.st.Paths[fi].NewTracker(),
		lastBr:  make([]brRec, len(f.Blocks)),
	}
}

// emitPath closes the current Ball–Larus path of thread t and yields to
// the scheduler.
func (r *runner) emitPath(t *thread, fr *frame, id int64) {
	if r.opts.Sink != nil {
		if r.conc != nil {
			r.conc.PathOwner(t.id)
		}
		r.opts.Sink.PathDone(fr.f.Index, id)
	}
	r.pathDone = true
}

// run is the scheduler loop: pick a runnable thread (seeded-random among
// the candidates), apply its pending wake effect, and execute one path.
func (r *runner) run() (*Result, error) {
	for !r.halted {
		r.runnable = r.runnable[:0]
		alive := false
		for _, t := range r.threads {
			switch t.state {
			case tReady:
				alive = true
				r.runnable = append(r.runnable, t)
			case tBlockedJoin:
				alive = true
				if r.threads[t.wait].state == tDone {
					r.runnable = append(r.runnable, t)
				}
			case tBlockedLock:
				alive = true
				if !r.locked[t.wait] {
					r.runnable = append(r.runnable, t)
				}
			}
		}
		if len(r.runnable) == 0 {
			if !alive {
				return r.res, fmt.Errorf("interp: program ended without halt")
			}
			return r.res, fmt.Errorf("interp: deadlock: all %d live threads blocked on joins/locks", len(r.threads))
		}
		t := r.runnable[0]
		if len(r.runnable) > 1 {
			t = r.runnable[int(r.rand()%uint64(len(r.runnable)))]
		}
		// Wake effects happen here, at the start of the thread's next path,
		// so their sync events are stamped with that path's timestamp: the
		// happens-before edge points at everything the path does.
		switch t.state {
		case tBlockedJoin:
			tgt := r.threads[t.wait]
			fr := t.stack[len(t.stack)-1]
			if t.joinDest != ir.NoReg {
				fr.regs[t.joinDest] = tgt.retVal
				fr.regTag[t.joinDest] = tgt.retTag
			}
			if r.conc != nil {
				r.conc.SyncEvent(trace.SyncJoin, t.id, t.wait)
			}
			t.state = tReady
		case tBlockedLock:
			r.locked[t.wait] = true
			if r.conc != nil {
				r.conc.SyncEvent(trace.SyncAcquire, t.id, t.wait)
			}
			t.state = tReady
		}
		if err := r.runPath(t); err != nil {
			return r.res, err
		}
	}
	return r.res, nil
}

// runPath executes thread t until one Ball–Larus path completes (or the
// program halts, or t's root frame returns).
func (r *runner) runPath(t *thread) error {
	st, opts, res := r.st, &r.opts, r.res
	mem, memTag, mask := r.mem, r.memTag, r.mask
	r.pathDone = false
	for !r.pathDone {
		fr := t.stack[len(t.stack)-1]
		b := fr.f.Blocks[fr.cur]

		// Dynamic control dependence of this block execution: the most
		// recently executed static CD parent branch in this frame.
		var cdSrc trace.Inst
		var bestSeq uint64
		for _, par := range st.CDParent[fr.f.Index][fr.cur] {
			if rec := fr.lastBr[par]; rec.inst != 0 && rec.seq >= bestSeq {
				cdSrc, bestSeq = rec.inst, rec.seq
			}
		}

		for _, s := range b.Stmts {
			if res.Steps >= r.maxSteps {
				return fmt.Errorf("interp: exceeded %d steps in %s", r.maxSteps, fr.f.Name)
			}
			if opts.Ctx != nil && res.Steps&ctxCheckMask == 0 && opts.Ctx.Err() != nil {
				return context.Cause(opts.Ctx)
			}
			res.Steps++
			r.inst++
			inst := r.inst

			// Gather operand values and dependence sources.
			val := func(o ir.Operand) int64 {
				if o.IsReg {
					return fr.regs[o.Reg]
				}
				return o.Imm
			}
			r.useBuf = s.Uses(r.useBuf[:0])
			ddBuf := r.ddBuf[:0]
			dvBuf := r.dvBuf[:0]
			for _, u := range r.useBuf {
				ddBuf = append(ddBuf, fr.regTag[u])
				dvBuf = append(dvBuf, fr.regs[u])
			}

			var result int64
			var defTag = inst

			switch s.Op {
			case ir.OpConst:
				result = s.A.Imm
			case ir.OpAdd:
				result = val(s.A) + val(s.B)
			case ir.OpSub:
				result = val(s.A) - val(s.B)
			case ir.OpMul:
				result = val(s.A) * val(s.B)
			case ir.OpDiv:
				if d := val(s.B); d != 0 {
					result = val(s.A) / d
				}
			case ir.OpMod:
				if d := val(s.B); d != 0 {
					result = val(s.A) % d
				}
			case ir.OpAnd:
				result = val(s.A) & val(s.B)
			case ir.OpOr:
				result = val(s.A) | val(s.B)
			case ir.OpXor:
				result = val(s.A) ^ val(s.B)
			case ir.OpShl:
				result = val(s.A) << (uint64(val(s.B)) & 63)
			case ir.OpShr:
				result = val(s.A) >> (uint64(val(s.B)) & 63)
			case ir.OpNeg:
				result = -val(s.A)
			case ir.OpNot:
				result = ^val(s.A)
			case ir.OpEq:
				result = b2i(val(s.A) == val(s.B))
			case ir.OpNe:
				result = b2i(val(s.A) != val(s.B))
			case ir.OpLt:
				result = b2i(val(s.A) < val(s.B))
			case ir.OpLe:
				result = b2i(val(s.A) <= val(s.B))
			case ir.OpGt:
				result = b2i(val(s.A) > val(s.B))
			case ir.OpGe:
				result = b2i(val(s.A) >= val(s.B))
			case ir.OpLoad:
				addr := (val(s.A) + s.Off) & mask
				result = mem[addr]
				// The loaded value's producer is the store (or 0 if the
				// word was never written): a memory-carried dependence.
				ddBuf = append(ddBuf, memTag[addr])
				dvBuf = append(dvBuf, result)
				if opts.Arch != nil {
					opts.Arch.Access(s, addr, false)
				}
			case ir.OpStore:
				addr := (val(s.A) + s.Off) & mask
				mem[addr] = val(s.B)
				memTag[addr] = inst
				if opts.Arch != nil {
					opts.Arch.Access(s, addr, true)
				}
			case ir.OpInput:
				if r.inPos < len(opts.Inputs) {
					result = opts.Inputs[r.inPos]
					r.inPos++
				}
			case ir.OpOutput:
				if opts.CollectOutput {
					res.Outputs = append(res.Outputs, val(s.A))
				}
			case ir.OpLoadSh:
				addr := (val(s.A) + s.Off) & mask
				result = mem[addr]
				ddBuf = append(ddBuf, memTag[addr])
				dvBuf = append(dvBuf, result)
				if opts.Arch != nil {
					opts.Arch.Access(s, addr, false)
				}
				if r.conc != nil {
					r.conc.SharedAccess(t.id, addr, false, s.ID)
				}
			case ir.OpStoreSh:
				addr := (val(s.A) + s.Off) & mask
				mem[addr] = val(s.B)
				memTag[addr] = inst
				if opts.Arch != nil {
					opts.Arch.Access(s, addr, true)
				}
				if r.conc != nil {
					r.conc.SharedAccess(t.id, addr, true, s.ID)
				}
			case ir.OpSpawn:
				// The child thread is created here so the spawn statement's
				// recorded value is the child's thread id.
				child := &thread{id: int32(len(r.threads)), stack: []*frame{r.newFrame(s.Callee)}}
				cf := child.stack[0]
				for i, a := range s.Args {
					cf.regs[i] = val(a)
					if a.IsReg {
						cf.regTag[i] = fr.regTag[a.Reg]
					}
				}
				r.threads = append(r.threads, child)
				result = int64(child.id)
			case ir.OpJmp, ir.OpBr, ir.OpCall, ir.OpRet, ir.OpHalt,
				ir.OpJoin, ir.OpLock, ir.OpUnlock:
				// handled below, after the event is emitted
			default:
				return fmt.Errorf("interp: unknown op %s", s.Op)
			}

			if opts.Sink != nil {
				opts.Sink.Stmt(inst, s, result, ddBuf, dvBuf, cdSrc)
			}
			r.ddBuf, r.dvBuf = ddBuf, dvBuf
			if s.Op.HasDef() && s.Dest != ir.NoReg {
				fr.regs[s.Dest] = result
				fr.regTag[s.Dest] = defTag
			}

			// Terminators: control transfer, path bookkeeping.
			switch s.Op {
			case ir.OpJmp:
				if id, done := fr.tracker.Take(fr.cur, 0); done {
					r.emitPath(t, fr, id)
				}
				fr.cur = b.Succs[0]
			case ir.OpBr:
				taken := val(s.A) != 0
				if opts.Arch != nil {
					opts.Arch.Branch(s, taken)
				}
				r.brSeq++
				fr.lastBr[fr.cur] = brRec{inst: inst, seq: r.brSeq}
				idx := 1
				if taken {
					idx = 0
				}
				if id, done := fr.tracker.Take(fr.cur, idx); done {
					r.emitPath(t, fr, id)
				}
				fr.cur = b.Succs[idx]
			case ir.OpCall:
				r.emitPath(t, fr, fr.tracker.CompleteAtCall(fr.cur))
				callee := r.newFrame(s.Callee)
				for i, a := range s.Args {
					callee.regs[i] = val(a)
					if a.IsReg {
						callee.regTag[i] = fr.regTag[a.Reg]
					}
				}
				fr.retDest = s.Dest
				fr.retBlk = fr.cur
				fr.cur = b.Succs[0]
				t.stack = append(t.stack, callee)
			case ir.OpRet:
				r.emitPath(t, fr, fr.tracker.Finish(fr.cur))
				t.stack = t.stack[:len(t.stack)-1]
				if len(t.stack) == 0 {
					if t.id == 0 {
						return fmt.Errorf("interp: ret from entry function %s", fr.f.Name)
					}
					// Thread completion: hold the return value (and its
					// producer tag) for delivery at a join.
					t.state = tDone
					t.retVal = val(s.A)
					if s.A.IsReg {
						t.retTag = fr.regTag[s.A.Reg]
					} else {
						t.retTag = 0
					}
					return nil
				}
				caller := t.stack[len(t.stack)-1]
				if caller.retDest != ir.NoReg {
					caller.regs[caller.retDest] = val(s.A)
					if s.A.IsReg {
						caller.regTag[caller.retDest] = fr.regTag[s.A.Reg]
					} else {
						caller.regTag[caller.retDest] = 0
					}
				}
				caller.tracker.ResumeAfterCall(caller.retBlk)
			case ir.OpHalt:
				r.emitPath(t, fr, fr.tracker.Finish(fr.cur))
				r.halted = true
				return nil
			case ir.OpSpawn:
				// The spawn's happens-before edge is stamped at the end of
				// this path: emit the sync event before closing it.
				if r.conc != nil {
					r.conc.SyncEvent(trace.SyncSpawn, t.id, result)
				}
				r.emitPath(t, fr, fr.tracker.CompleteAtCall(fr.cur))
				fr.tracker.ResumeAfterCall(fr.cur)
				fr.cur = b.Succs[0]
			case ir.OpJoin:
				tid := val(s.A)
				if tid < 0 || tid >= int64(len(r.threads)) || tid == int64(t.id) {
					return fmt.Errorf("interp: %s joins invalid thread id %d", fr.f.Name, tid)
				}
				r.emitPath(t, fr, fr.tracker.CompleteAtCall(fr.cur))
				fr.tracker.ResumeAfterCall(fr.cur)
				fr.cur = b.Succs[0]
				// Block; the scheduler delivers the value and emits the
				// SyncJoin event when the target is done.
				t.state = tBlockedJoin
				t.wait = tid
				t.joinDest = s.Dest
			case ir.OpLock:
				r.emitPath(t, fr, fr.tracker.CompleteAtCall(fr.cur))
				fr.tracker.ResumeAfterCall(fr.cur)
				fr.cur = b.Succs[0]
				// Block; the scheduler acquires the lock and emits the
				// SyncAcquire event when it is free.
				t.state = tBlockedLock
				t.wait = val(s.A)
			case ir.OpUnlock:
				id := val(s.A)
				if !r.locked[id] {
					return fmt.Errorf("interp: %s unlocks lock %d which is not held", fr.f.Name, id)
				}
				delete(r.locked, id)
				if r.conc != nil {
					r.conc.SyncEvent(trace.SyncRelease, t.id, id)
				}
				r.emitPath(t, fr, fr.tracker.CompleteAtCall(fr.cur))
				fr.tracker.ResumeAfterCall(fr.cur)
				fr.cur = b.Succs[0]
			}
			if s.Op.IsTerminator() {
				break
			}
		}
	}
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
