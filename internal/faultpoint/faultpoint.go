// Package faultpoint is a fault-injection registry for rehearsing failure
// modes that are hard to produce on demand: short reads, slow writers, full
// disks, worker panics, deadlines expiring mid-epoch. Code under test
// declares named injection sites at package init:
//
//	var fpWrite = faultpoint.New("wetio.save.write")
//
// and consults them on the hot path:
//
//	if err := fpWrite.Hit(); err != nil { return err }
//
// A disarmed point costs one atomic pointer load, so sites may sit on
// paths that run millions of times. Tests (or an operator, via the
// WET_FAILPOINTS environment variable) arm points by name:
//
//	faultpoint.Arm("wetio.save.write", faultpoint.Spec{Action: faultpoint.ActENOSPC})
//	defer faultpoint.DisarmAll()
//
// Every injected failure surfaces as a *faultpoint.Error so harnesses can
// tell an injected fault from an organic one with errors.As.
//
// The environment spec is a semicolon-separated list of
// name=action[:detail][@after][#times] entries, e.g.
//
//	WET_FAILPOINTS='wetio.save.write=enospc;stream.decode=err:boom@3'
//
// where after is the 1-based hit at which the point starts firing
// (default 1) and times bounds how many hits fire (default unlimited).
package faultpoint

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Actions a point can take when hit.
const (
	// ActErr returns a generic injected error (detail overrides the message).
	ActErr = "err"
	// ActENOSPC returns an error wrapping syscall.ENOSPC, as a full disk would.
	ActENOSPC = "enospc"
	// ActShort returns an error wrapping io.ErrUnexpectedEOF-like truncation;
	// sites interpret it as a short read or write.
	ActShort = "short"
	// ActPanic panics with a *Error value, as a buggy worker would.
	ActPanic = "panic"
	// ActSleep blocks for Delay (detail, e.g. "50ms") and then proceeds
	// normally — a slow writer or stalled decode, not a failure.
	ActSleep = "sleep"
)

// ErrInjected is the sentinel cause for ActErr with no detail message.
var ErrInjected = errors.New("injected fault")

// ErrShort is the sentinel cause for ActShort.
var ErrShort = errors.New("injected short read/write")

// Error is the typed error every armed faultpoint surfaces. Harnesses
// detect injection with errors.As(err, new(*faultpoint.Error)).
type Error struct {
	Point string // registered point name
	Cause error  // what was injected
}

func (e *Error) Error() string { return fmt.Sprintf("faultpoint %s: %v", e.Point, e.Cause) }

func (e *Error) Unwrap() error { return e.Cause }

// Spec describes what an armed point does.
type Spec struct {
	Action string        // ActErr, ActENOSPC, ActShort, ActPanic, ActSleep
	Detail string        // message for err/panic, duration for sleep
	After  int           // 1-based hit at which firing starts (<=1: first hit)
	Times  int           // number of hits that fire (<=0: unlimited)
	Delay  time.Duration // parsed sleep duration (set from Detail if empty)
}

type arming struct {
	spec Spec
	hits atomic.Int64 // total Hit calls while armed
	fire atomic.Int64 // hits that actually fired
}

// Point is a named injection site. Create with New at package init.
type Point struct {
	name string
	arm  atomic.Pointer[arming]
}

// Name returns the registered name.
func (p *Point) Name() string { return p.name }

// Enabled reports whether the point is currently armed. Sites can gate
// expensive setup (e.g. wrapping a writer) behind it.
func (p *Point) Enabled() bool { return p.arm.Load() != nil }

// Fired returns how many times the point has fired since it was armed.
func (p *Point) Fired() int64 {
	a := p.arm.Load()
	if a == nil {
		return 0
	}
	return a.fire.Load()
}

// Hit consults the point. Disarmed: returns nil at the cost of one atomic
// load. Armed: applies the spec — returning a *Error, panicking with one,
// or sleeping — once the configured hit window is reached.
func (p *Point) Hit() error {
	a := p.arm.Load()
	if a == nil {
		return nil
	}
	return p.slowHit(a)
}

func (p *Point) slowHit(a *arming) error {
	n := a.hits.Add(1)
	after := int64(a.spec.After)
	if after < 1 {
		after = 1
	}
	if n < after {
		return nil
	}
	if a.spec.Times > 0 && n >= after+int64(a.spec.Times) {
		return nil
	}
	a.fire.Add(1)
	switch a.spec.Action {
	case ActSleep:
		time.Sleep(a.spec.Delay)
		return nil
	case ActPanic:
		panic(&Error{Point: p.name, Cause: fmt.Errorf("injected panic: %s", detailOr(a.spec.Detail, "worker fault"))})
	case ActENOSPC:
		return &Error{Point: p.name, Cause: fmt.Errorf("write: %w", syscall.ENOSPC)}
	case ActShort:
		return &Error{Point: p.name, Cause: ErrShort}
	default: // ActErr
		if a.spec.Detail != "" {
			return &Error{Point: p.name, Cause: errors.New(a.spec.Detail)}
		}
		return &Error{Point: p.name, Cause: ErrInjected}
	}
}

func detailOr(d, def string) string {
	if d == "" {
		return def
	}
	return d
}

var (
	regMu  sync.Mutex
	points = map[string]*Point{}
)

// New registers a named point. It is meant to be called from var
// initializers; registering the same name twice panics.
func New(name string) *Point {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := points[name]; dup {
		panic("faultpoint: duplicate point " + name)
	}
	p := &Point{name: name}
	points[name] = p
	p.armFromEnv()
	return p
}

// Lookup returns the point registered under name, or nil.
func Lookup(name string) *Point {
	regMu.Lock()
	defer regMu.Unlock()
	return points[name]
}

// Names returns every registered point name, sorted. This is the sweep
// harness's registry: every name here must be rehearsed.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(points))
	for n := range points {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Arm activates the named point with spec. Unknown names error so typos in
// test setups fail loudly.
func Arm(name string, spec Spec) error {
	if err := normalize(&spec); err != nil {
		return fmt.Errorf("faultpoint %s: %w", name, err)
	}
	p := Lookup(name)
	if p == nil {
		return fmt.Errorf("faultpoint: unknown point %q", name)
	}
	p.arm.Store(&arming{spec: spec})
	return nil
}

// Disarm deactivates the named point (no-op when unknown or disarmed).
func Disarm(name string) {
	if p := Lookup(name); p != nil {
		p.arm.Store(nil)
	}
}

// DisarmAll deactivates every registered point. Deferred by tests so one
// case's arming never leaks into the next.
func DisarmAll() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, p := range points {
		p.arm.Store(nil)
	}
}

func normalize(spec *Spec) error {
	switch spec.Action {
	case "", ActErr:
		spec.Action = ActErr
	case ActENOSPC, ActShort, ActPanic:
	case ActSleep:
		if spec.Delay == 0 {
			d, err := time.ParseDuration(detailOr(spec.Detail, "10ms"))
			if err != nil {
				return fmt.Errorf("bad sleep duration %q: %w", spec.Detail, err)
			}
			spec.Delay = d
		}
	default:
		return fmt.Errorf("unknown action %q", spec.Action)
	}
	return nil
}

// ParseSpec parses one name=action[:detail][@after][#times] entry.
func ParseSpec(s string) (name string, spec Spec, err error) {
	name, rest, ok := strings.Cut(strings.TrimSpace(s), "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return "", Spec{}, fmt.Errorf("faultpoint: bad spec %q (want name=action[:detail][@after][#times])", s)
	}
	if i := strings.LastIndexByte(rest, '#'); i >= 0 {
		t, err := strconv.Atoi(rest[i+1:])
		if err != nil {
			return "", Spec{}, fmt.Errorf("faultpoint: bad times in %q: %w", s, err)
		}
		spec.Times, rest = t, rest[:i]
	}
	if i := strings.LastIndexByte(rest, '@'); i >= 0 {
		a, err := strconv.Atoi(rest[i+1:])
		if err != nil {
			return "", Spec{}, fmt.Errorf("faultpoint: bad after in %q: %w", s, err)
		}
		spec.After, rest = a, rest[:i]
	}
	spec.Action, spec.Detail, _ = strings.Cut(rest, ":")
	if err := normalize(&spec); err != nil {
		return "", Spec{}, fmt.Errorf("faultpoint: %q: %w", s, err)
	}
	return name, spec, nil
}

// envSpecs holds the parsed WET_FAILPOINTS entries; points registered
// after process start (all of them — registration happens at package
// init) arm themselves lazily as they appear.
var envSpecs = parseEnv(os.Getenv("WET_FAILPOINTS"))

func parseEnv(env string) map[string]Spec {
	if env == "" {
		return nil
	}
	out := map[string]Spec{}
	for _, entry := range strings.Split(env, ";") {
		if strings.TrimSpace(entry) == "" {
			continue
		}
		name, spec, err := ParseSpec(entry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultpoint: ignoring", err)
			continue
		}
		out[name] = spec
	}
	return out
}

// armFromEnv applies a WET_FAILPOINTS entry to a freshly registered point.
// Called under regMu from New.
func (p *Point) armFromEnv() {
	if spec, ok := envSpecs[p.name]; ok {
		p.arm.Store(&arming{spec: spec})
	}
}
