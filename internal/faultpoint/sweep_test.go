package faultpoint_test

// The failpoint sweep: every registered injection point, crossed with every
// action it can take, is armed against the full pipeline — build, streaming
// freeze, atomic save, load, queries, and the corpus-serving stack — and
// every injected fault must surface as a typed error. Never a panic, never a hang, never a corrupt
// file left behind. This is the harness that keeps the failpoint catalog
// honest: a point that stops being exercised by the pipeline fails the
// sweep, because an unrehearsed failure path is an untested one.
//
// WET_SWEEP_WORKLOADS widens the workload set (CI runs li,gzip,mcf); the
// default keeps the sweep to one workload so `go test ./...` stays fast.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wet/internal/core"
	"wet/internal/corpus"
	"wet/internal/faultpoint"
	"wet/internal/interp"
	"wet/internal/query"
	"wet/internal/serve"
	"wet/internal/stream"
	"wet/internal/wetio"
	"wet/internal/workload"
)

// watchdog bounds one sweep case; a case that outlives it is a hang, which
// the sweep treats as a first-class failure, not a slow test.
const watchdog = 90 * time.Second

// panicSafe are the points allowed the "panic" action: their sites sit
// under a recover boundary (worker pools, batch jobs) that must convert
// the panic into a typed error. Everywhere else an injected panic would
// legitimately crash the caller, so the sweep does not inject one.
var panicSafe = map[string]bool{
	"core.freeze.job": true,
	"core.seal.epoch": true,
	"query.batch.job": true,
}

// sweepActions returns the actions to rehearse at one point.
func sweepActions(point string) []string {
	acts := []string{faultpoint.ActErr, faultpoint.ActENOSPC, faultpoint.ActShort, faultpoint.ActSleep}
	if panicSafe[point] {
		acts = append(acts, faultpoint.ActPanic)
	}
	return acts
}

// sweepWorkloads returns the workloads to drive the pipeline with.
func sweepWorkloads() []string {
	if env := os.Getenv("WET_SWEEP_WORKLOADS"); env != "" {
		return strings.Split(env, ",")
	}
	return []string{"li"}
}

// typedFault reports whether err is one of the typed failures the pipeline
// is allowed to surface: the injected fault itself, a format/decode error
// the fault was translated into, a recovered pool panic, or a context
// verdict. Anything else is an untyped leak.
func typedFault(err error) bool {
	var (
		fpErr  *faultpoint.Error
		fmtErr *wetio.FormatError
		decErr *stream.DecodeError
		pErr   *core.PanicError
	)
	return errors.As(err, &fpErr) || errors.As(err, &fmtErr) ||
		errors.As(err, &decErr) || errors.As(err, &pErr) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// runPipeline drives the whole stack once: streaming build with epoch
// seals, atomic save, lazy load, ctx-aware scans, and a slice batch. Any
// panic that escapes a recover boundary is reported as an error with a
// recognizable prefix so the sweep can distinguish it from a typed fault.
func runPipeline(dir, bench string) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("ESCAPED PANIC: %v", p)
		}
	}()
	wl, err := workload.ByName(bench)
	if err != nil {
		return err
	}
	scale, err := workload.ScaleFor(wl, 60_000)
	if err != nil {
		return err
	}
	prog, in := wl.Build(scale)
	st, err := interp.Analyze(prog)
	if err != nil {
		return err
	}
	// The effectively-unbounded byte budget keeps the freeze lossless while
	// still routing it through the budget planner, so core.budget.plan is
	// rehearsed on every sweep case.
	w, _, _, err := core.BuildStreaming(st, interp.Options{Inputs: in},
		core.FreezeOptions{EpochTS: 1 << 12, Workers: 4, ByteBudget: 1 << 40})
	if err != nil {
		return err
	}
	path := filepath.Join(dir, bench+".wet")
	if err := wetio.SaveFile(path, w); err != nil {
		// An atomic save that failed must not have created the file.
		if _, serr := os.Stat(path); !errors.Is(serr, os.ErrNotExist) {
			return fmt.Errorf("CORRUPT FILE: failed save left %s behind (%w)", path, err)
		}
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	loaded, err := wetio.Load(bytes.NewReader(data), wetio.LoadOptions{Lazy: true})
	if err != nil {
		return err
	}
	if _, err := query.ExtractCFCtx(context.Background(), loaded, core.Tier2, true, nil); err != nil {
		return err
	}
	if _, err := query.ExtractCFRangeCtx(context.Background(), loaded, core.Tier2, 1, loaded.Time/2+1, nil); err != nil {
		return err
	}
	last := loaded.Nodes[loaded.LastNode]
	crit := query.Instance{Node: loaded.LastNode, Pos: 0, Ord: last.Execs - 1}
	if err := query.BatchCtx(context.Background(), 2, 4, func(i int) error {
		_, err := query.BackwardSlice(loaded, core.Tier2, crit, 0)
		return err
	}); err != nil {
		return err
	}

	// Serving stage: the same bytes through the corpus registry and the
	// admission-controlled query service, so corpus.segment.load and
	// wetd.admit are rehearsed too. The starved budget forces real segment
	// loads (and so real load vetoes) instead of warm metadata hits.
	c := corpus.New(1 << 12)
	if _, err := c.Add(bench, data); err != nil {
		return err
	}
	srv := serve.New(c, serve.Options{Workers: 2, Queue: 8})
	if _, err := srv.Query(context.Background(), bench, "info", nil); err != nil {
		return err
	}
	_, err = srv.Query(context.Background(), bench, "cfrange",
		url.Values{"from": {"1"}, "to": {"64"}})
	return err
}

// TestFailpointSweep is the registry-driven sweep. For every point ×
// action: the pipeline must finish inside the watchdog, a firing fault
// must surface as a typed error (sleep excepted — it only delays), and the
// pipeline must actually exercise the point (a dead point means the
// catalog and the code have drifted apart).
func TestFailpointSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs the full pipeline per case")
	}
	points := faultpoint.Names()
	if len(points) < 8 {
		t.Fatalf("registry holds %d points, expected the full catalog: %v", len(points), points)
	}
	for _, bench := range sweepWorkloads() {
		for _, point := range points {
			if strings.HasPrefix(point, "test.") {
				continue // unit-test scaffolding, not pipeline points
			}
			for _, action := range sweepActions(point) {
				name := fmt.Sprintf("%s/%s=%s", bench, point, action)
				t.Run(name, func(t *testing.T) {
					dir := t.TempDir()
					if err := faultpoint.Arm(point, faultpoint.Spec{Action: action}); err != nil {
						t.Fatal(err)
					}
					defer faultpoint.DisarmAll()
					done := make(chan error, 1)
					go func() { done <- runPipeline(dir, bench) }()
					var err error
					select {
					case err = <-done:
					case <-time.After(watchdog):
						t.Fatalf("HANG: pipeline did not return within %v", watchdog)
					}
					fired := faultpoint.Lookup(point).Fired()
					if fired == 0 {
						t.Fatalf("pipeline never hit %s: the catalog has drifted from the code", point)
					}
					if err != nil && strings.HasPrefix(err.Error(), "ESCAPED PANIC") {
						t.Fatalf("injected %s escaped every recover boundary: %v", action, err)
					}
					if err != nil && strings.HasPrefix(err.Error(), "CORRUPT FILE") {
						t.Fatal(err)
					}
					if action == faultpoint.ActSleep {
						if err != nil {
							t.Fatalf("sleep action must only delay, got %v", err)
						}
						return
					}
					if err == nil {
						t.Fatalf("%s fired %d times but the pipeline reported success", point, fired)
					}
					if !typedFault(err) {
						t.Fatalf("injected %s surfaced untyped: %v", action, err)
					}
				})
			}
		}
	}
}
