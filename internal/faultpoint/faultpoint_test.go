package faultpoint

import (
	"errors"
	"io"
	"syscall"
	"testing"
	"time"
)

// tp registers a uniquely named point for one test.
func tp(t *testing.T) *Point {
	t.Helper()
	p := New("test." + t.Name())
	t.Cleanup(func() { Disarm(p.Name()) })
	return p
}

func TestDisarmedHitIsFree(t *testing.T) {
	p := tp(t)
	for i := 0; i < 1000; i++ {
		if err := p.Hit(); err != nil {
			t.Fatalf("disarmed Hit returned %v", err)
		}
	}
	if p.Enabled() || p.Fired() != 0 {
		t.Fatalf("disarmed point reports Enabled=%v Fired=%d", p.Enabled(), p.Fired())
	}
}

func TestActionsSurfaceTypedErrors(t *testing.T) {
	p := tp(t)
	cases := []struct {
		spec Spec
		want error
	}{
		{Spec{Action: ActErr}, ErrInjected},
		{Spec{Action: ActShort}, ErrShort},
		{Spec{Action: ActENOSPC}, syscall.ENOSPC},
	}
	for _, c := range cases {
		if err := Arm(p.Name(), c.spec); err != nil {
			t.Fatal(err)
		}
		err := p.Hit()
		var fe *Error
		if !errors.As(err, &fe) {
			t.Fatalf("%s: Hit returned %T, want *faultpoint.Error", c.spec.Action, err)
		}
		if fe.Point != p.Name() {
			t.Fatalf("%s: error names point %q", c.spec.Action, fe.Point)
		}
		if !errors.Is(err, c.want) {
			t.Fatalf("%s: error %v does not wrap %v", c.spec.Action, err, c.want)
		}
	}
}

func TestErrDetailOverridesMessage(t *testing.T) {
	p := tp(t)
	if err := Arm(p.Name(), Spec{Action: ActErr, Detail: "boom"}); err != nil {
		t.Fatal(err)
	}
	err := p.Hit()
	if err == nil || !errors.As(err, new(*Error)) {
		t.Fatalf("Hit returned %v", err)
	}
	if got := err.Error(); got != "faultpoint "+p.Name()+": boom" {
		t.Fatalf("message %q", got)
	}
}

func TestPanicActionPanicsWithTypedValue(t *testing.T) {
	p := tp(t)
	if err := Arm(p.Name(), Spec{Action: ActPanic}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if _, ok := r.(*Error); !ok {
			t.Fatalf("panicked with %T (%v), want *faultpoint.Error", r, r)
		}
	}()
	p.Hit()
	t.Fatal("armed panic point did not panic")
}

func TestAfterAndTimesWindow(t *testing.T) {
	p := tp(t)
	// Fire on hits 3 and 4 only.
	if err := Arm(p.Name(), Spec{Action: ActErr, After: 3, Times: 2}); err != nil {
		t.Fatal(err)
	}
	var pattern []bool
	for i := 0; i < 6; i++ {
		pattern = append(pattern, p.Hit() != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("hit %d fired=%v, want %v (pattern %v)", i+1, pattern[i], want[i], pattern)
		}
	}
	if p.Fired() != 2 {
		t.Fatalf("Fired() = %d, want 2", p.Fired())
	}
}

func TestSleepActionDelaysThenProceeds(t *testing.T) {
	p := tp(t)
	if err := Arm(p.Name(), Spec{Action: ActSleep, Detail: "30ms"}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := p.Hit(); err != nil {
		t.Fatalf("sleep action returned error %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("sleep action returned after %v, want >= 30ms", d)
	}
}

func TestArmUnknownPointErrors(t *testing.T) {
	if err := Arm("no.such.point", Spec{}); err == nil {
		t.Fatal("arming an unregistered point succeeded")
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		name string
		spec Spec
	}{
		{"a.b=err", "a.b", Spec{Action: ActErr}},
		{"a.b=enospc", "a.b", Spec{Action: ActENOSPC}},
		{"a.b=err:boom@3#2", "a.b", Spec{Action: ActErr, Detail: "boom", After: 3, Times: 2}},
		{"a.b=short@5", "a.b", Spec{Action: ActShort, After: 5}},
		{"a.b=panic", "a.b", Spec{Action: ActPanic}},
	}
	for _, c := range cases {
		name, spec, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if name != c.name || spec.Action != c.spec.Action || spec.After != c.spec.After || spec.Times != c.spec.Times {
			t.Fatalf("ParseSpec(%q) = %q %+v, want %q %+v", c.in, name, spec, c.name, c.spec)
		}
	}
	for _, bad := range []string{"", "noequals", "a.b=warp", "a.b=err@x", "a.b=err#x", "a.b=sleep:fast"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted a bad spec", bad)
		}
	}
}

func TestParseEnvSkipsBadEntries(t *testing.T) {
	specs := parseEnv("a.b=err; ;bogus;c.d=short@2")
	if len(specs) != 2 {
		t.Fatalf("parseEnv kept %d entries, want 2: %v", len(specs), specs)
	}
	if specs["a.b"].Action != ActErr || specs["c.d"].After != 2 {
		t.Fatalf("parseEnv specs wrong: %v", specs)
	}
}

func TestNamesIncludesRegisteredPoints(t *testing.T) {
	p := tp(t)
	found := false
	for _, n := range Names() {
		if n == p.Name() {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() omits %q", p.Name())
	}
}

func TestDisarmAll(t *testing.T) {
	p := tp(t)
	if err := Arm(p.Name(), Spec{Action: ActErr}); err != nil {
		t.Fatal(err)
	}
	DisarmAll()
	if err := p.Hit(); err != nil {
		t.Fatalf("Hit after DisarmAll returned %v", err)
	}
}

// TestShortActionComposesWithIO pins the contract sites rely on: a short
// injection is distinguishable from the sentinel truncation errors the io
// package produces organically.
func TestShortActionComposesWithIO(t *testing.T) {
	p := tp(t)
	if err := Arm(p.Name(), Spec{Action: ActShort}); err != nil {
		t.Fatal(err)
	}
	err := p.Hit()
	if errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatal("injected short error must not alias io.ErrUnexpectedEOF; sites translate it themselves")
	}
	if !errors.Is(err, ErrShort) {
		t.Fatalf("short error %v does not wrap ErrShort", err)
	}
}
