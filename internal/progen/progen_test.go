package progen

import (
	"math/rand"
	"testing"

	"wet/internal/core"
	"wet/internal/interp"
	"wet/internal/ir"
	"wet/internal/query"
	"wet/internal/trace"
)

type tee struct{ sinks []trace.Sink }

func (t *tee) Stmt(inst trace.Inst, st *ir.Stmt, value int64, ddSrcs []trace.Inst, ddVals []int64, cdSrc trace.Inst) {
	for _, s := range t.sinks {
		s.Stmt(inst, st, value, ddSrcs, ddVals, cdSrc)
	}
}

func (t *tee) PathDone(fn int, pathID int64) {
	for _, s := range t.sinks {
		s.PathDone(fn, pathID)
	}
}

// TestPipelineDifferential generates random programs and checks that the
// fully compressed WET reproduces exactly what the simulator recorded:
// the statement-level control flow trace (both tiers, both directions),
// every produced value, and dependence resolution used by slicing.
func TestPipelineDifferential(t *testing.T) {
	const programs = 30
	for seed := int64(0); seed < programs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, in, err := Gen(rng, DefaultOpts())
		if err != nil {
			t.Fatalf("seed %d: Gen: %v", seed, err)
		}
		st, err := interp.Analyze(p)
		if err != nil {
			t.Fatalf("seed %d: Analyze: %v", seed, err)
		}
		// Calls nested inside loops can legitimately multiply into runs too
		// large to record; skip those seeds (deterministically).
		if _, err := interp.Run(st, interp.Options{Inputs: in, MaxSteps: 200_000}); err != nil {
			continue
		}
		b := core.NewBuilder(st)
		b.CheckDeterminism = true
		rec := &trace.Recording{}
		cnt := trace.NewCounting(&tee{sinks: []trace.Sink{rec, b}})
		if _, err := interp.Run(st, interp.Options{Inputs: in, Sink: cnt, MaxSteps: 1 << 22}); err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}
		w, err := b.Finish()
		if err != nil {
			t.Fatalf("seed %d: Finish: %v", seed, err)
		}
		w.Raw = cnt.RawStats
		w.Freeze(core.FreezeOptions{})

		checkCF(t, seed, w, rec)
		checkValues(t, seed, w, rec)
		checkSliceSources(t, seed, w, rec)
	}
}

func checkCF(t *testing.T, seed int64, w *core.WET, rec *trace.Recording) {
	t.Helper()
	want := make([]int, len(rec.Events))
	for i, e := range rec.Events {
		want[i] = e.Stmt.ID
	}
	for _, tier := range []core.Tier{core.Tier1, core.Tier2} {
		var got []int
		query.ExtractCF(w, tier, true, func(id int) { got = append(got, id) })
		if len(got) != len(want) {
			t.Fatalf("seed %d %s: CF trace %d stmts, want %d", seed, tier, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d %s: CF stmt %d = %d, want %d", seed, tier, i, got[i], want[i])
			}
		}
		var rev []int
		query.ExtractCF(w, tier, false, func(id int) { rev = append(rev, id) })
		for i := range want {
			if rev[len(rev)-1-i] != want[i] {
				t.Fatalf("seed %d %s: backward CF diverges at %d", seed, tier, i)
			}
		}
	}
}

// checkValues replays the recording path by path and verifies every value
// via the compressed representation.
func checkValues(t *testing.T, seed int64, w *core.WET, rec *trace.Recording) {
	t.Helper()
	ordOf := map[int]int{}
	start := 0
	for _, pe := range rec.Paths {
		n := w.NodeOf(pe.Fn, pe.PathID)
		if n == nil {
			t.Fatalf("seed %d: missing node (fn %d, path %d)", seed, pe.Fn, pe.PathID)
		}
		ord := ordOf[n.ID]
		ordOf[n.ID]++
		for pos, ev := range rec.Events[start:pe.Upto] {
			if !ev.Stmt.Op.HasDef() || ev.Stmt.Dest == ir.NoReg {
				continue
			}
			got, err := w.Value(n, pos, ord, core.Tier2)
			if err != nil {
				t.Fatalf("seed %d: Value: %v", seed, err)
			}
			if uint32(got) != uint32(ev.Value) { // values stored as 32-bit
				t.Fatalf("seed %d: node %d pos %d ord %d = %d, want %d (stmt %s)",
					seed, n.ID, pos, ord, got, ev.Value, ev.Stmt)
			}
		}
		start = pe.Upto
	}
}

// checkSliceSources samples recorded events and verifies the backward
// slice of each contains its direct dependence sources.
func checkSliceSources(t *testing.T, seed int64, w *core.WET, rec *trace.Recording) {
	t.Helper()
	// Locate each instance's (node, pos, ord) by replay.
	type loc struct{ node, pos, ord int }
	locs := make([]loc, len(rec.Events)+1)
	ordOf := map[int]int{}
	start := 0
	for _, pe := range rec.Paths {
		n := w.NodeOf(pe.Fn, pe.PathID)
		ord := ordOf[n.ID]
		ordOf[n.ID]++
		for pos := range rec.Events[start:pe.Upto] {
			locs[rec.Events[start+pos].Inst] = loc{n.ID, pos, ord}
		}
		start = pe.Upto
	}
	step := len(rec.Events)/17 + 1
	for i := 0; i < len(rec.Events); i += step {
		ev := rec.Events[i]
		l := locs[ev.Inst]
		res, err := query.BackwardSlice(w, core.Tier2, query.Instance{Node: l.node, Pos: l.pos, Ord: l.ord}, 0)
		if err != nil {
			t.Fatalf("seed %d: slice: %v", seed, err)
		}
		inSlice := map[query.Instance]bool{}
		for _, in := range res.Instances {
			inSlice[in] = true
		}
		for _, src := range ev.DDSrcs {
			if src == 0 {
				continue
			}
			sl := locs[src]
			if !inSlice[query.Instance{Node: sl.node, Pos: sl.pos, Ord: sl.ord}] {
				t.Fatalf("seed %d: slice of inst %d misses DD source inst %d", seed, ev.Inst, src)
			}
		}
		if ev.CDSrc != 0 {
			sl := locs[ev.CDSrc]
			if !inSlice[query.Instance{Node: sl.node, Pos: sl.pos, Ord: sl.ord}] {
				t.Fatalf("seed %d: slice of inst %d misses CD source inst %d", seed, ev.Inst, ev.CDSrc)
			}
		}
	}
}

func TestGenTerminates(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, in, err := Gen(rng, DefaultOpts())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		st, err := interp.Analyze(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Loops are bounded, so every program terminates; calls nested in
		// loops can make runs long, hence the generous step budget.
		res, err := interp.Run(st, interp.Options{Inputs: in, MaxSteps: 1 << 27})
		if err != nil {
			t.Fatalf("seed %d: did not terminate cleanly: %v", seed, err)
		}
		if res.Steps == 0 {
			t.Fatalf("seed %d: empty run", seed)
		}
	}
}

func TestGenDeterministic(t *testing.T) {
	a, inA, err := Gen(rand.New(rand.NewSource(7)), DefaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, inB, err := Gen(rand.New(rand.NewSource(7)), DefaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different programs")
	}
	if len(inA) != len(inB) {
		t.Fatal("same seed produced different inputs")
	}
}
