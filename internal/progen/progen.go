// Package progen generates random, terminating IR programs for
// differential testing: the WET pipeline must reconstruct exactly what the
// simulator recorded, for any program shape — nested loops, branches,
// memory traffic, input, and calls.
package progen

import (
	"fmt"
	"math/rand"

	"wet/internal/ir"
)

// Opts bounds the generated program.
type Opts struct {
	MaxDepth    int // control-structure nesting
	MaxStmts    int // rough statement budget per function
	MaxLoopIter int // max trip count of generated loops
	Funcs       int // callee functions to generate (0..n)
	Inputs      int // length of the input tape
	MemWords    int64
}

// DefaultOpts returns moderate bounds.
func DefaultOpts() Opts {
	return Opts{MaxDepth: 3, MaxStmts: 40, MaxLoopIter: 8, Funcs: 2, Inputs: 64, MemWords: 1 << 12}
}

type gen struct {
	rng  *rand.Rand
	opts Opts
	p    *ir.Program
	fns  []string // callable (already generated) functions
}

// Gen builds a random finalized program and its input tape.
func Gen(rng *rand.Rand, opts Opts) (*ir.Program, []int64, error) {
	g := &gen{rng: rng, opts: opts, p: ir.NewProgram(opts.MemWords)}

	for i := 0; i < opts.Funcs; i++ {
		name := fmt.Sprintf("f%d", i)
		params := 1 + rng.Intn(2)
		fb := g.p.NewFunc(name, params)
		regs := g.seedRegs(fb, params)
		g.body(fb, regs, nil, opts.MaxDepth-1, opts.MaxStmts/2)
		fb.Ret(ir.R(regs[rng.Intn(len(regs))]))
		g.fns = append(g.fns, name) // callable by later functions only
	}

	fb := g.p.NewFunc("main", 0)
	regs := g.seedRegs(fb, 0)
	g.body(fb, regs, nil, opts.MaxDepth, opts.MaxStmts)
	fb.Output(ir.R(regs[rng.Intn(len(regs))]))
	fb.Halt()
	g.p.Entry = len(g.p.Funcs) - 1

	if err := g.p.Finalize(); err != nil {
		return nil, nil, err
	}
	in := make([]int64, opts.Inputs)
	for i := range in {
		in[i] = int64(rng.Intn(1000) - 500)
	}
	return g.p, in, nil
}

// seedRegs allocates a working register pool, initialized from params,
// constants, and input.
func (g *gen) seedRegs(fb *ir.FuncBuilder, params int) []ir.Reg {
	var regs []ir.Reg
	for i := 0; i < params; i++ {
		regs = append(regs, fb.Param(i))
	}
	n := 3 + g.rng.Intn(4)
	for i := 0; i < n; i++ {
		r := fb.NewReg()
		switch g.rng.Intn(3) {
		case 0:
			fb.Const(r, int64(g.rng.Intn(200)-100))
		case 1:
			fb.Input(r)
		default:
			fb.Const(r, int64(i))
		}
		regs = append(regs, r)
	}
	return regs
}

// pick chooses a random operand from the writable pool, the read-only pool
// (loop induction variables), or an immediate.
func (g *gen) pick(regs, ro []ir.Reg) ir.Operand {
	if g.rng.Intn(4) == 0 {
		return ir.Imm(int64(g.rng.Intn(64) - 32))
	}
	all := len(regs) + len(ro)
	i := g.rng.Intn(all)
	if i < len(regs) {
		return ir.R(regs[i])
	}
	return ir.R(ro[i-len(regs)])
}

// body emits a random statement sequence with nested control flow. regs are
// writable; ro (induction variables) are read-only so loops always
// terminate.
func (g *gen) body(fb *ir.FuncBuilder, regs, ro []ir.Reg, depth, budget int) {
	nStmts := 2 + g.rng.Intn(budget/2+2)
	for i := 0; i < nStmts; i++ {
		switch k := g.rng.Intn(20); {
		case k < 8: // arithmetic
			ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod,
				ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpEq, ir.OpLt, ir.OpGt}
			dst := regs[g.rng.Intn(len(regs))]
			fb.Bin(ops[g.rng.Intn(len(ops))], dst, g.pick(regs, ro), g.pick(regs, ro))
		case k < 10: // store
			fb.Store(g.pick(regs, ro), int64(g.rng.Intn(64)), g.pick(regs, ro))
		case k < 12: // load
			dst := regs[g.rng.Intn(len(regs))]
			fb.Load(dst, g.pick(regs, ro), int64(g.rng.Intn(64)))
		case k < 13: // input
			fb.Input(regs[g.rng.Intn(len(regs))])
		case k < 14: // output
			fb.Output(g.pick(regs, ro))
		case k < 16 && depth > 0: // if
			cond := regs[g.rng.Intn(len(regs))]
			hasElse := g.rng.Intn(2) == 0
			var els func()
			if hasElse {
				els = func() { g.body(fb, regs, ro, depth-1, budget/2) }
			}
			fb.If(ir.R(cond), func() { g.body(fb, regs, ro, depth-1, budget/2) }, els)
		case k < 18 && depth > 0: // bounded counted loop
			iters := 1 + g.rng.Intn(g.opts.MaxLoopIter)
			fb.For(ir.Imm(0), ir.Imm(int64(iters)), ir.Imm(1), func(i ir.Reg) {
				inner := append(append([]ir.Reg{}, ro...), i)
				g.body(fb, regs, inner, depth-1, budget/2)
			})
		case k < 19 && len(g.fns) > 0: // call
			callee := g.fns[g.rng.Intn(len(g.fns))]
			f := g.p.FuncByName(callee)
			args := make([]ir.Operand, f.Params)
			for j := range args {
				args[j] = g.pick(regs, ro)
			}
			dst := regs[g.rng.Intn(len(regs))]
			fb.Call(dst, callee, args...)
		default: // mov
			fb.Mov(regs[g.rng.Intn(len(regs))], g.pick(regs, ro))
		}
	}
}
