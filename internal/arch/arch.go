// Package arch models the architecture-specific profile information of the
// paper's Table 4: per-execution one-bit histories of branch misprediction
// and load/store cache misses. A gshare branch predictor and a
// set-associative LRU cache generate the outcomes; a Recorder attaches to
// the simulator (interp.ArchSink) and keeps the bit histories per static
// statement.
package arch

import (
	"wet/internal/ir"
)

// Gshare is a global-history two-bit-counter branch predictor.
type Gshare struct {
	history uint32
	mask    uint32
	table   []uint8 // 2-bit saturating counters, initialized weakly not-taken
}

// NewGshare returns a predictor with 2^bits counters.
func NewGshare(bits uint) *Gshare {
	g := &Gshare{mask: 1<<bits - 1, table: make([]uint8, 1<<bits)}
	for i := range g.table {
		g.table[i] = 1 // weakly not taken
	}
	return g
}

// Branch predicts the branch at pc, updates the predictor with the actual
// outcome, and reports whether the prediction was correct.
func (g *Gshare) Branch(pc int, taken bool) (correct bool) {
	idx := (uint32(pc) ^ g.history) & g.mask
	ctr := g.table[idx]
	pred := ctr >= 2
	if taken && ctr < 3 {
		g.table[idx] = ctr + 1
	}
	if !taken && ctr > 0 {
		g.table[idx] = ctr - 1
	}
	g.history = ((g.history << 1) | b2u(taken)) & g.mask
	return pred == taken
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Cache is a set-associative cache with LRU replacement over word
// addresses.
type Cache struct {
	setMask    int64
	blockShift uint
	ways       int
	tags       [][]int64 // per set, MRU first; -1 = invalid
}

// NewCache builds a cache of `sets` sets × `ways` ways with blocks of
// 2^blockShift words. sets must be a power of two.
func NewCache(sets, ways int, blockShift uint) *Cache {
	c := &Cache{setMask: int64(sets - 1), blockShift: blockShift, ways: ways}
	c.tags = make([][]int64, sets)
	for i := range c.tags {
		row := make([]int64, ways)
		for j := range row {
			row[j] = -1
		}
		c.tags[i] = row
	}
	return c
}

// Access touches the word address and reports whether it hit.
func (c *Cache) Access(addr int64) (hit bool) {
	blk := addr >> c.blockShift
	set := c.tags[blk&c.setMask]
	for i, tag := range set {
		if tag == blk {
			// Move to front (LRU update).
			copy(set[1:i+1], set[:i])
			set[0] = blk
			return true
		}
	}
	copy(set[1:], set[:c.ways-1])
	set[0] = blk
	return false
}

// BitHistory is an append-only bit vector: one bit per execution.
type BitHistory struct {
	words []uint64
	n     uint64
}

// Append adds one outcome bit.
func (h *BitHistory) Append(v bool) {
	if h.n>>6 >= uint64(len(h.words)) {
		h.words = append(h.words, 0)
	}
	if v {
		h.words[h.n>>6] |= 1 << (h.n & 63)
	}
	h.n++
}

// Len returns the number of recorded bits.
func (h *BitHistory) Len() uint64 { return h.n }

// Get returns bit i.
func (h *BitHistory) Get(i uint64) bool { return h.words[i>>6]>>(i&63)&1 == 1 }

// Ones counts set bits.
func (h *BitHistory) Ones() uint64 {
	var n uint64
	for i := uint64(0); i < h.n; i++ {
		if h.Get(i) {
			n++
		}
	}
	return n
}

// Recorder implements interp.ArchSink, producing the Table 4 histories:
// a misprediction bit per branch execution and a miss bit per load/store
// execution. Histories are kept per static statement so they can label the
// WET (the paper's augmentation).
type Recorder struct {
	BP     *Gshare
	DCache *Cache

	// Per static statement id.
	BranchHist map[int]*BitHistory
	LoadHist   map[int]*BitHistory
	StoreHist  map[int]*BitHistory

	Branches, Mispredicts uint64
	Loads, LoadMisses     uint64
	Stores, StoreMisses   uint64
}

// NewRecorder returns a recorder with a 4K-entry gshare and a 32KB-ish
// (1024 sets × 4 ways × 8-word blocks) data cache.
func NewRecorder() *Recorder {
	return &Recorder{
		BP:         NewGshare(12),
		DCache:     NewCache(1024, 4, 3),
		BranchHist: map[int]*BitHistory{},
		LoadHist:   map[int]*BitHistory{},
		StoreHist:  map[int]*BitHistory{},
	}
}

func hist(m map[int]*BitHistory, id int) *BitHistory {
	h := m[id]
	if h == nil {
		h = &BitHistory{}
		m[id] = h
	}
	return h
}

// Branch implements interp.ArchSink.
func (r *Recorder) Branch(st *ir.Stmt, taken bool) {
	correct := r.BP.Branch(st.ID, taken)
	r.Branches++
	if !correct {
		r.Mispredicts++
	}
	hist(r.BranchHist, st.ID).Append(!correct)
}

// Access implements interp.ArchSink.
func (r *Recorder) Access(st *ir.Stmt, addr int64, isStore bool) {
	hit := r.DCache.Access(addr)
	if isStore {
		r.Stores++
		if !hit {
			r.StoreMisses++
		}
		hist(r.StoreHist, st.ID).Append(!hit)
	} else {
		r.Loads++
		if !hit {
			r.LoadMisses++
		}
		hist(r.LoadHist, st.ID).Append(!hit)
	}
}

// Bytes returns the Table 4 storage costs: one bit per execution, in bytes.
func (r *Recorder) Bytes() (branch, load, store uint64) {
	return (r.Branches + 7) / 8, (r.Loads + 7) / 8, (r.Stores + 7) / 8
}

// CompressedBytes compresses each bit history with the tier-2 stream pool
// (32 history bits per stream value) and returns total compressed bytes per
// class. This extends the paper's Table 4: the histories are already small
// uncompressed, and the biased miss/misprediction bits compress further.
func (r *Recorder) CompressedBytes(compress func([]uint32) uint64) (branch, load, store uint64) {
	sum := func(m map[int]*BitHistory) uint64 {
		var total uint64
		for _, h := range m {
			words := make([]uint32, 0, len(h.words)*2)
			for _, w := range h.words {
				words = append(words, uint32(w), uint32(w>>32))
			}
			total += (compress(words) + 7) / 8
		}
		return total
	}
	return sum(r.BranchHist), sum(r.LoadHist), sum(r.StoreHist)
}
