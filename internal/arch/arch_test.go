package arch

import (
	"testing"

	"wet/internal/ir"
)

func TestGshareLearnsLoop(t *testing.T) {
	g := NewGshare(10)
	// A branch taken 999 times then not taken: after warmup, predictions
	// must be overwhelmingly correct.
	correct := 0
	for i := 0; i < 1000; i++ {
		if g.Branch(42, i < 999) {
			correct++
		}
	}
	if correct < 950 {
		t.Fatalf("gshare correct %d/1000 on a biased branch", correct)
	}
}

func TestGshareAlternating(t *testing.T) {
	g := NewGshare(10)
	correct := 0
	for i := 0; i < 1000; i++ {
		if g.Branch(7, i%2 == 0) {
			correct++
		}
	}
	// With global history, an alternating pattern becomes predictable.
	if correct < 900 {
		t.Fatalf("gshare correct %d/1000 on alternating branch", correct)
	}
}

func TestCacheBasics(t *testing.T) {
	c := NewCache(4, 2, 0) // 4 sets, 2 ways, 1-word blocks
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("repeat access missed")
	}
	// Fill set 0 beyond associativity: addresses 0, 4, 8 map to set 0.
	c.Access(4)
	c.Access(8) // evicts 0 (LRU)
	if !c.Access(8) || !c.Access(4) {
		t.Fatal("recently used lines evicted")
	}
	if c.Access(0) {
		t.Fatal("evicted line still hit")
	}
}

func TestCacheBlockGranularity(t *testing.T) {
	c := NewCache(16, 2, 3) // 8-word blocks
	c.Access(0)
	for w := int64(1); w < 8; w++ {
		if !c.Access(w) {
			t.Fatalf("word %d of cached block missed", w)
		}
	}
	if c.Access(8) {
		t.Fatal("next block hit cold")
	}
}

func TestBitHistory(t *testing.T) {
	var h BitHistory
	pattern := []bool{true, false, true, true, false}
	for i := 0; i < 40; i++ {
		h.Append(pattern[i%5])
	}
	if h.Len() != 40 {
		t.Fatalf("Len = %d", h.Len())
	}
	for i := uint64(0); i < 40; i++ {
		if h.Get(i) != pattern[i%5] {
			t.Fatalf("bit %d wrong", i)
		}
	}
	if h.Ones() != 24 {
		t.Fatalf("Ones = %d, want 24", h.Ones())
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	br := &ir.Stmt{Op: ir.OpBr, ID: 1}
	ld := &ir.Stmt{Op: ir.OpLoad, ID: 2}
	st := &ir.Stmt{Op: ir.OpStore, ID: 3}
	for i := 0; i < 100; i++ {
		r.Branch(br, true)
		r.Access(ld, int64(i), false)
		r.Access(st, int64(i), true)
	}
	if r.Branches != 100 || r.Loads != 100 || r.Stores != 100 {
		t.Fatalf("counts %d/%d/%d", r.Branches, r.Loads, r.Stores)
	}
	b, l, s := r.Bytes()
	if b != 13 || l != 13 || s != 13 {
		t.Fatalf("Bytes = %d/%d/%d, want 13 each", b, l, s)
	}
	if r.BranchHist[1].Len() != 100 || r.LoadHist[2].Len() != 100 || r.StoreHist[3].Len() != 100 {
		t.Fatal("per-statement histories incomplete")
	}
	// Sequential loads after the store of the same block: the load should
	// mostly hit (store warmed the line). Here loads go first, so loads
	// miss once per block (8 words): 13 misses over 100 accesses.
	if r.LoadMisses != 13 {
		t.Fatalf("load misses = %d, want 13", r.LoadMisses)
	}
	if r.StoreMisses != 0 {
		t.Fatalf("store misses = %d, want 0 (loads warm the lines)", r.StoreMisses)
	}
}

func TestCompressedBytes(t *testing.T) {
	r := NewRecorder()
	br := &ir.Stmt{Op: ir.OpBr, ID: 1}
	// A heavily biased branch: the misprediction history is nearly all
	// zeros and must compress far below its raw size.
	for i := 0; i < 10000; i++ {
		r.Branch(br, true)
	}
	raw, _, _ := r.Bytes()
	comp, _, _ := r.CompressedBytes(func(vals []uint32) uint64 {
		// Mock compressor: count distinct-from-previous transitions.
		bits := uint64(64)
		for i, v := range vals {
			if i > 0 && v == vals[i-1] {
				bits++
			} else {
				bits += 33
			}
		}
		return bits
	})
	if comp == 0 || raw == 0 {
		t.Fatalf("raw %d comp %d", raw, comp)
	}
	if comp > raw {
		t.Fatalf("biased history did not compress: %d > %d", comp, raw)
	}
}
