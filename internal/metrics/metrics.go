// Package metrics is a dependency-free instrumentation kit for the serving
// path: counters, gauges, and histograms registered in a Registry that
// renders the Prometheus text exposition format, plus span-style tracing
// hooks (see trace.go) that record operation durations into histograms.
//
// The package deliberately implements the subset the daemon needs — no
// label cardinality policing, no metric families beyond counter / gauge /
// histogram — with all hot-path operations lock-free (atomics), so query
// handlers can Observe on every request without contention.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an arbitrarily settable int64 metric.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into cumulative buckets, Prometheus-style:
// bucket i counts observations <= Buckets[i], with an implicit +Inf bucket,
// a running sum, and a total count.
type Histogram struct {
	uppers []float64
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomicFloat
}

// atomicFloat is a float64 accumulated through CAS on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func newHistogram(buckets []float64) *Histogram {
	ups := append([]float64(nil), buckets...)
	sort.Float64s(ups)
	return &Histogram{uppers: ups, counts: make([]atomic.Uint64, len(ups))}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	for i, up := range h.uppers {
		if v <= up {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// DefBuckets is the default latency ladder in seconds: 100µs to ~10s,
// roughly trebling.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metric is one registered family.
type metric struct {
	name, help, typ string
	// render appends exposition lines for every child (or the single
	// unlabeled instance).
	render func(w io.Writer) error

	// vec state (nil for unlabeled metrics)
	labels   []string
	mu       sync.Mutex
	children map[string]any // label-values key -> *Counter/*Gauge/*Histogram
	order    []string       // keys in first-use order
	make     func() any
}

// Registry holds the registered metrics and renders them. Registration is
// not idempotent: registering a name twice panics (a programming error).
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{names: make(map[string]bool)} }

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.name] {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", m.name))
	}
	r.names[m.name] = true
	r.metrics = append(r.metrics, m)
}

// NewCounter registers and returns an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, typ: "counter", render: func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %d\n", name, c.Value())
		return err
	}})
	return c
}

// NewCounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for counters owned by another layer (e.g. cache hit
// counts kept as plain atomics in the corpus). fn must be monotonic.
func (r *Registry) NewCounterFunc(name, help string, fn func() uint64) {
	r.register(&metric{name: name, help: help, typ: "counter", render: func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %d\n", name, fn())
		return err
	}})
}

// NewGauge registers and returns an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, typ: "gauge", render: func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %d\n", name, g.Value())
		return err
	}})
	return g
}

// NewGaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: "gauge", render: func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %s\n", name, fmtFloat(fn()))
		return err
	}})
}

// NewHistogram registers and returns an unlabeled histogram with the given
// bucket upper bounds (nil: DefBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	h := newHistogram(buckets)
	r.register(&metric{name: name, help: help, typ: "histogram", render: func(w io.Writer) error {
		return renderHistogram(w, name, "", h)
	}})
	return h
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ m *metric }

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	m := &metric{name: name, help: help, typ: "counter", labels: labels,
		children: make(map[string]any), make: func() any { return &Counter{} }}
	m.render = func(w io.Writer) error {
		return renderChildren(w, m, func(w io.Writer, lbl string, child any) error {
			_, err := fmt.Fprintf(w, "%s{%s} %d\n", name, lbl, child.(*Counter).Value())
			return err
		})
	}
	r.register(m)
	return &CounterVec{m: m}
}

// With returns the child counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.m.child(values).(*Counter)
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ m *metric }

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	m := &metric{name: name, help: help, typ: "gauge", labels: labels,
		children: make(map[string]any), make: func() any { return &Gauge{} }}
	m.render = func(w io.Writer) error {
		return renderChildren(w, m, func(w io.Writer, lbl string, child any) error {
			_, err := fmt.Fprintf(w, "%s{%s} %d\n", name, lbl, child.(*Gauge).Value())
			return err
		})
	}
	r.register(m)
	return &GaugeVec{m: m}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.m.child(values).(*Gauge)
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ m *metric }

// NewHistogramVec registers a labeled histogram family (nil buckets:
// DefBuckets).
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	m := &metric{name: name, help: help, typ: "histogram", labels: labels,
		children: make(map[string]any), make: func() any { return newHistogram(buckets) }}
	m.render = func(w io.Writer) error {
		return renderChildren(w, m, func(w io.Writer, lbl string, child any) error {
			return renderHistogram(w, name, lbl, child.(*Histogram))
		})
	}
	r.register(m)
	return &HistogramVec{m: m}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.m.child(values).(*Histogram)
}

// child resolves (creating on first use) the child for the label values.
func (m *metric) child(values []string) any {
	if len(values) != len(m.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", m.name, len(m.labels), len(values)))
	}
	key := labelKey(m.labels, values)
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.children[key]; ok {
		return c
	}
	c := m.make()
	m.children[key] = c
	m.order = append(m.order, key)
	return c
}

func labelKey(labels, values []string) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l, escapeLabel(values[i]))
	}
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func renderChildren(w io.Writer, m *metric, one func(io.Writer, string, any) error) error {
	m.mu.Lock()
	keys := append([]string(nil), m.order...)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = m.children[k]
	}
	m.mu.Unlock()
	for i, k := range keys {
		if err := one(w, k, children[i]); err != nil {
			return err
		}
	}
	return nil
}

// renderHistogram writes cumulative buckets, then sum and count. lbl is the
// pre-rendered label pairs ("" for unlabeled histograms).
func renderHistogram(w io.Writer, name, lbl string, h *Histogram) error {
	sep := ""
	if lbl != "" {
		sep = ","
	}
	var cum uint64
	for i, up := range h.uppers {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, lbl, sep, fmtFloat(up), cum); err != nil {
			return err
		}
	}
	total := h.Count()
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, lbl, sep, total); err != nil {
		return err
	}
	suffix := ""
	if lbl != "" {
		suffix = "{" + lbl + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, fmtFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, total)
	return err
}

func fmtFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

// WriteText renders every registered metric in the Prometheus text
// exposition format (families in registration order, children in first-use
// order).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	ms := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range ms {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ); err != nil {
			return err
		}
		if err := m.render(w); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
