package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("reqs_total", "requests")
	g := r.NewGauge("depth", "queue depth")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 || g.Value() != 5 {
		t.Fatalf("counter=%d gauge=%d, want 5/5", c.Value(), g.Value())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP reqs_total requests",
		"# TYPE reqs_total counter",
		"reqs_total 5",
		"# TYPE depth gauge",
		"depth 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := uint64(0)
	r.NewCounterFunc("bridged_total", "", func() uint64 { return n })
	r.NewGaugeFunc("ratio", "", func() float64 { return 0.25 })
	n = 42
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "bridged_total 42") {
		t.Fatalf("counter func not scraped live:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "ratio 0.25") {
		t.Fatalf("gauge func missing:\n%s", b.String())
	}
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("hits_total", "", "method", "code")
	v.With("GET", "200").Add(3)
	v.With("GET", "500").Inc()
	if v.With("GET", "200") != v.With("GET", "200") {
		t.Fatal("same label values returned distinct children")
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `hits_total{method="GET",code="200"} 3`) ||
		!strings.Contains(out, `hits_total{method="GET",code="500"} 1`) {
		t.Fatalf("labeled exposition wrong:\n%s", out)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Buckets must be cumulative: 1, 3, 4, then +Inf = 5.
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 106.05`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("op_seconds", "", []float64{1}, "op")
	v.With("slice").Observe(0.5)
	v.With("slice").Observe(2)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`op_seconds_bucket{op="slice",le="1"} 1`,
		`op_seconds_bucket{op="slice",le="+Inf"} 2`,
		`op_seconds_sum{op="slice"} 2.5`,
		`op_seconds_count{op="slice"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("x", "")
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("up", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "up 1") {
		t.Fatalf("body:\n%s", rec.Body.String())
	}
}

func TestTracerSpans(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, "wetd_query", "query latency")
	var endedOps []string
	tr.OnEnd = func(op string, _ time.Duration) { endedOps = append(endedOps, op) }

	sp := tr.Start("slice")
	if tr.InFlight() != 1 {
		t.Fatalf("inflight %d, want 1", tr.InFlight())
	}
	sp.End()
	sp.End() // idempotent
	if tr.InFlight() != 0 {
		t.Fatalf("inflight %d after End, want 0", tr.InFlight())
	}
	if len(endedOps) != 1 || endedOps[0] != "slice" {
		t.Fatalf("OnEnd hook saw %v, want [slice]", endedOps)
	}

	var nilTr *Tracer
	nilTr.Start("x").End() // nil tracer and nil span are no-ops

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `wetd_query_seconds_count{op="slice"} 1`) {
		t.Fatalf("span duration not recorded:\n%s", b.String())
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "", []float64{0.5})
	c := r.NewCounter("c", "")
	v := r.NewCounterVec("v", "", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.1)
				c.Inc()
				v.With("a").Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 || v.With("a").Value() != 8000 {
		t.Fatalf("lost updates: h=%d c=%d v=%d", h.Count(), c.Value(), v.With("a").Value())
	}
}
