package metrics

import (
	"sync/atomic"
	"time"
)

// Tracer hands out spans: lightweight scoped timers that record their
// duration into a per-operation latency histogram and count in-flight
// operations. A nil *Tracer is valid and records nothing, so callers can
// thread one through unconditionally.
type Tracer struct {
	lat      *HistogramVec
	inflight atomic.Int64
	// OnEnd, when set, observes every finished span (op, duration) — the
	// hook point for logging or test assertions.
	OnEnd func(op string, d time.Duration)
}

// NewTracer registers the tracer's instruments in r under the given metric
// name prefix (e.g. "wetd_query"): <prefix>_seconds{op=...} histogram and
// <prefix>_inflight gauge.
func NewTracer(r *Registry, prefix, help string) *Tracer {
	t := &Tracer{}
	t.lat = r.NewHistogramVec(prefix+"_seconds", help, nil, "op")
	r.NewGaugeFunc(prefix+"_inflight", "operations currently in flight",
		func() float64 { return float64(t.inflight.Load()) })
	return t
}

// Span is one timed operation; finish it with End (idempotent).
type Span struct {
	t     *Tracer
	op    string
	start time.Time
	done  atomic.Bool
}

// Start opens a span for the named operation.
func (t *Tracer) Start(op string) *Span {
	if t == nil {
		return nil
	}
	t.inflight.Add(1)
	return &Span{t: t, op: op, start: time.Now()}
}

// InFlight returns the number of spans started but not yet ended.
func (t *Tracer) InFlight() int64 {
	if t == nil {
		return 0
	}
	return t.inflight.Load()
}

// End closes the span, recording its duration. Safe on a nil span and safe
// to call more than once (later calls are no-ops).
func (s *Span) End() {
	if s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	d := time.Since(s.start)
	s.t.inflight.Add(-1)
	s.t.lat.With(s.op).Observe(d.Seconds())
	if s.t.OnEnd != nil {
		s.t.OnEnd(s.op, d)
	}
}
