package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"wet/internal/core"
	"wet/internal/query"
	"wet/internal/stream"
)

// QueryBenchTiming is one worker-count sample of the parallel query sweep.
type QueryBenchTiming struct {
	Workers int     `json:"workers"`
	MS      float64 `json:"ms"`
	// Speedup is serial time over this configuration's time.
	Speedup float64 `json:"speedup"`
}

// QueryBenchRow is one workload's parallel-query scaling record.
type QueryBenchRow struct {
	Name    string             `json:"name"`
	Stmts   uint64             `json:"stmts"`
	Queries int                `json:"queries"`
	Sweep   []QueryBenchTiming `json:"sweep"`
	// Identical records that every parallel run produced exactly the
	// serial run's per-query results — the detached-cursor correctness
	// guarantee, re-checked on every bench run.
	Identical bool `json:"identical_results"`
	// Seeks/CheckpointRestores/StepsPerSeek summarize cursor seek traffic
	// during the serial pass (checkpoint effectiveness).
	Seeks              uint64  `json:"seeks"`
	CheckpointRestores uint64  `json:"checkpoint_restores"`
	StepsPerSeek       float64 `json:"steps_per_seek"`
}

// QueryBenchResult is the machine-readable parallel query performance
// record the CI smoke run archives (BENCH_query.json), alongside
// BENCH_freeze.json.
type QueryBenchResult struct {
	TargetStmts uint64          `json:"target_stmts"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	Workloads   []QueryBenchRow `json:"workloads"`
}

// queryJobSet assembles the mixed query workload the sweep replays at each
// worker count: backward slices over evenly spread criteria plus the
// whole-trace extractions, at both tiers. Each job returns a digest so
// parallel runs can be checked against the serial golden.
func queryJobSet(w *core.WET, slices int) []func() string {
	crit := SliceCriteria(w, slices)
	var jobs []func() string
	for _, tier := range []core.Tier{core.Tier1, core.Tier2} {
		tier := tier
		for _, c := range crit {
			c := c
			jobs = append(jobs, func() string {
				res, err := query.BackwardSlice(w, tier, c, 0)
				if err != nil {
					return "err:" + err.Error()
				}
				return fmt.Sprintf("bs:%d:%d", len(res.Instances), res.Edges)
			})
		}
		jobs = append(jobs,
			func() string { return fmt.Sprintf("cf:%d", query.ExtractCF(w, tier, true, nil)) },
			func() string {
				n, err := query.LoadValueTraces(w, tier, nil)
				if err != nil {
					return "err:" + err.Error()
				}
				return fmt.Sprintf("lv:%d", n)
			},
			func() string {
				n, err := query.AddressTraces(w, tier, nil)
				if err != nil {
					return "err:" + err.Error()
				}
				return fmt.Sprintf("at:%d", n)
			},
		)
	}
	return jobs
}

// QueryBench builds each configured workload's frozen WET and times the
// mixed query job set (cfg.Slices criteria per tier plus the trace
// extractions) through query.Batch at 1, 2, 4, and 8 workers, verifying
// that every configuration reproduces the serial results.
func QueryBench(cfg Config, progress io.Writer) (*QueryBenchResult, error) {
	ws, err := cfg.workloads()
	if err != nil {
		return nil, err
	}
	res := &QueryBenchResult{
		TargetStmts: cfg.targets(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	for _, wl := range ws {
		if progress != nil {
			fmt.Fprintf(progress, "query bench: %s (target %d stmts)...\n", wl.Name, cfg.targets())
		}
		r, err := BuildRun(wl, cfg.targets(), cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", wl.Name, err)
		}
		jobs := queryJobSet(r.W, cfg.slices())
		row := QueryBenchRow{Name: wl.Name, Stmts: r.Stmts, Queries: len(jobs), Identical: true}

		golden := make([]string, len(jobs))
		var serialMS float64
		for _, workers := range []int{1, 2, 4, 8} {
			got := make([]string, len(jobs))
			var before stream.SeekStats
			if workers == 1 {
				before = stream.ReadSeekStats()
			}
			workers := workers
			d := timeIt(func() {
				query.Batch(workers, len(jobs), func(i int) { got[i] = jobs[i]() })
			})
			if workers == 1 {
				copy(golden, got)
				serialMS = ms(d)
				delta := stream.ReadSeekStats().Sub(before)
				row.Seeks = delta.Seeks
				row.CheckpointRestores = delta.Restores
				if delta.Seeks > 0 {
					row.StepsPerSeek = float64(delta.Steps) / float64(delta.Seeks)
				}
			} else {
				for i := range got {
					if got[i] != golden[i] {
						row.Identical = false
					}
				}
			}
			t := QueryBenchTiming{Workers: workers, MS: ms(d)}
			if t.MS > 0 {
				t.Speedup = serialMS / t.MS
			}
			row.Sweep = append(row.Sweep, t)
		}
		res.Workloads = append(res.Workloads, row)
	}
	return res, nil
}

// WriteQueryBenchJSON runs QueryBench and writes the result as indented
// JSON (the CI artifact format).
func WriteQueryBenchJSON(cfg Config, out io.Writer, progress io.Writer) error {
	res, err := QueryBench(cfg, progress)
	if err != nil {
		return err
	}
	for _, row := range res.Workloads {
		if !row.Identical {
			return fmt.Errorf("exp: %s: parallel query results differ from serial", row.Name)
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
