// Package exp is the experiment harness: it rebuilds every table and figure
// of the paper's evaluation (§5) on the nine synthetic workloads. Absolute
// numbers differ from the paper (different substrate, scaled-down runs);
// the harness reports the same rows so shapes can be compared directly.
package exp

import (
	"fmt"
	"io"
	"time"

	"wet/internal/arch"
	"wet/internal/core"
	"wet/internal/interp"
	"wet/internal/stream"
	"wet/internal/workload"
)

// Config controls run lengths and selection.
type Config struct {
	// TargetStmts sizes each workload run (dynamic statements). 0 means
	// DefaultTargetStmts.
	TargetStmts uint64
	// Workloads optionally restricts the set (names); empty = all nine.
	Workloads []string
	// Slices is the number of slicing criteria for Table 9 (default 25,
	// like the paper).
	Slices int
	// Workers bounds the tier-2 freeze worker pool (0 = GOMAXPROCS, 1 =
	// serial). Results are identical at any worker count.
	Workers int
}

// DefaultTargetStmts keeps the full suite comfortably fast while large
// enough for the compressors to reach steady state.
const DefaultTargetStmts = 400_000

// Run is one workload's built artifacts, shared by all tables.
type Run struct {
	Name      string
	Stmts     uint64
	Scale     int
	W         *core.WET
	Rep       *core.SizeReport
	Arch      *arch.Recorder
	BuildTime time.Duration
}

func (c Config) targets() uint64 {
	if c.TargetStmts == 0 {
		return DefaultTargetStmts
	}
	return c.TargetStmts
}

func (c Config) slices() int {
	if c.Slices == 0 {
		return 25
	}
	return c.Slices
}

func (c Config) workloads() ([]workload.Workload, error) {
	if len(c.Workloads) == 0 {
		return workload.All(), nil
	}
	var out []workload.Workload
	for _, name := range c.Workloads {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// BuildRun executes one workload at the target length and constructs its
// frozen WET with the architecture recorder attached. workers bounds the
// freeze pool (0 = GOMAXPROCS).
func BuildRun(w workload.Workload, targetStmts uint64, workers int) (*Run, error) {
	scale, err := workload.ScaleFor(w, targetStmts)
	if err != nil {
		return nil, err
	}
	prog, in := w.Build(scale)
	st, err := interp.Analyze(prog)
	if err != nil {
		return nil, err
	}
	rec := arch.NewRecorder()
	start := time.Now()
	wet, res, err := core.Build(st, interp.Options{Inputs: in, Arch: rec})
	if err != nil {
		return nil, err
	}
	rep := wet.Freeze(core.FreezeOptions{Workers: workers})
	return &Run{
		Name:      w.Name,
		Stmts:     res.Steps,
		Scale:     scale,
		W:         wet,
		Rep:       rep,
		Arch:      rec,
		BuildTime: time.Since(start),
	}, nil
}

// RunAll builds every configured workload.
func RunAll(cfg Config, progress io.Writer) ([]*Run, error) {
	ws, err := cfg.workloads()
	if err != nil {
		return nil, err
	}
	var runs []*Run
	for _, w := range ws {
		if progress != nil {
			fmt.Fprintf(progress, "building %s (target %d stmts)...\n", w.Name, cfg.targets())
		}
		r, err := BuildRun(w, cfg.targets(), cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", w.Name, err)
		}
		runs = append(runs, r)
	}
	return runs, nil
}

func mb(b uint64) float64 { return float64(b) / (1024 * 1024) }
func kb(b uint64) float64 { return float64(b) / 1024 }

// Table1 prints WET sizes: statements executed, original WET, compressed
// WET, and the compression factor (paper Table 1).
func Table1(runs []*Run, w io.Writer) {
	fmt.Fprintf(w, "Table 1. WET sizes.\n")
	fmt.Fprintf(w, "%-10s %14s %14s %14s %10s\n", "Benchmark", "Stmts (K)", "Orig WET (KB)", "Comp WET (KB)", "Orig/Comp")
	var sStmts, sOrig, sComp uint64
	for _, r := range runs {
		fmt.Fprintf(w, "%-10s %14.2f %14.2f %14.2f %10.2f\n",
			r.Name, float64(r.Stmts)/1e3, kb(r.Rep.OrigTotal()), kb(r.Rep.T2Total()),
			core.Ratio(r.Rep.OrigTotal(), r.Rep.T2Total()))
		sStmts += r.Stmts
		sOrig += r.Rep.OrigTotal()
		sComp += r.Rep.T2Total()
	}
	n := uint64(len(runs))
	if n > 0 {
		fmt.Fprintf(w, "%-10s %14.2f %14.2f %14.2f %10.2f\n", "Avg.",
			float64(sStmts/n)/1e3, kb(sOrig/n), kb(sComp/n), core.Ratio(sOrig, sComp))
	}
}

// Table2 prints node label compression: timestamp and value labels at each
// tier (paper Table 2).
func Table2(runs []*Run, w io.Writer) {
	fmt.Fprintf(w, "Table 2. Effect of compression on node labels.\n")
	fmt.Fprintf(w, "%-10s | %12s %10s %10s | %12s %10s %10s\n",
		"Benchmark", "ts orig(KB)", "o/Tier-1", "o/Tier-2", "val orig(KB)", "o/Tier-1", "o/Tier-2")
	var oT, t1T, t2T, oV, t1V, t2V uint64
	for _, r := range runs {
		fmt.Fprintf(w, "%-10s | %12.2f %10.2f %10.2f | %12.2f %10.2f %10.2f\n",
			r.Name,
			kb(r.Rep.OrigTS), core.Ratio(r.Rep.OrigTS, r.Rep.T1TS), core.Ratio(r.Rep.OrigTS, r.Rep.T2TS),
			kb(r.Rep.OrigVals), core.Ratio(r.Rep.OrigVals, r.Rep.T1Vals), core.Ratio(r.Rep.OrigVals, r.Rep.T2Vals))
		oT += r.Rep.OrigTS
		t1T += r.Rep.T1TS
		t2T += r.Rep.T2TS
		oV += r.Rep.OrigVals
		t1V += r.Rep.T1Vals
		t2V += r.Rep.T2Vals
	}
	fmt.Fprintf(w, "%-10s | %12.2f %10.2f %10.2f | %12.2f %10.2f %10.2f\n", "Avg.",
		kb(oT/uint64(len(runs))), core.Ratio(oT, t1T), core.Ratio(oT, t2T),
		kb(oV/uint64(len(runs))), core.Ratio(oV, t1V), core.Ratio(oV, t2V))
}

// Table3 prints edge label compression (paper Table 3).
func Table3(runs []*Run, w io.Writer) {
	fmt.Fprintf(w, "Table 3. Effect of compression on edge labels.\n")
	fmt.Fprintf(w, "%-10s %14s %10s %10s\n", "Benchmark", "orig (KB)", "o/Tier-1", "o/Tier-2")
	var o, t1, t2 uint64
	for _, r := range runs {
		fmt.Fprintf(w, "%-10s %14.2f %10.2f %10.2f\n", r.Name,
			kb(r.Rep.OrigEdges), core.Ratio(r.Rep.OrigEdges, r.Rep.T1Edges), core.Ratio(r.Rep.OrigEdges, r.Rep.T2Edges))
		o += r.Rep.OrigEdges
		t1 += r.Rep.T1Edges
		t2 += r.Rep.T2Edges
	}
	fmt.Fprintf(w, "%-10s %14.2f %10.2f %10.2f\n", "Avg.",
		kb(o/uint64(len(runs))), core.Ratio(o, t1), core.Ratio(o, t2))
}

// Table4 prints the architecture-specific one-bit histories (paper Table 4),
// extended with a column showing the histories after tier-2 compression
// (the paper stores them uncompressed and notes they are already small).
func Table4(runs []*Run, w io.Writer) {
	fmt.Fprintf(w, "Table 4. Architecture specific information (1 bit per execution).\n")
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s %12s %13s\n",
		"Benchmark", "Branch (KB)", "Load (KB)", "Store (KB)", "mispred %", "miss %", "comp. (KB)")
	var b, l, s uint64
	pool := func(vals []uint32) uint64 { return stream.CompressBest(vals).SizeBits() }
	for _, r := range runs {
		bb, lb, sb := r.Arch.Bytes()
		cb, cl, cs := r.Arch.CompressedBytes(pool)
		mp := 100 * float64(r.Arch.Mispredicts) / float64(max64(r.Arch.Branches, 1))
		ms := 100 * float64(r.Arch.LoadMisses+r.Arch.StoreMisses) / float64(max64(r.Arch.Loads+r.Arch.Stores, 1))
		fmt.Fprintf(w, "%-10s %12.2f %12.2f %12.2f %12.2f %12.2f %13.2f\n",
			r.Name, kb(bb), kb(lb), kb(sb), mp, ms, kb(cb+cl+cs))
		b += bb
		l += lb
		s += sb
	}
	n := uint64(len(runs))
	fmt.Fprintf(w, "%-10s %12.2f %12.2f %12.2f\n", "Avg.", kb(b/n), kb(l/n), kb(s/n))
}

// Table5 prints WET construction times (paper Table 5).
func Table5(runs []*Run, w io.Writer) {
	fmt.Fprintf(w, "Table 5. WET construction times.\n")
	fmt.Fprintf(w, "%-10s %14s %18s %16s\n", "Benchmark", "Stmts (K)", "Construction (ms)", "Kstmts/sec")
	var tot time.Duration
	var stmts uint64
	for _, r := range runs {
		rate := float64(r.Stmts) / 1e3 / r.BuildTime.Seconds()
		fmt.Fprintf(w, "%-10s %14.2f %18.2f %16.1f\n", r.Name, float64(r.Stmts)/1e3,
			float64(r.BuildTime.Microseconds())/1e3, rate)
		tot += r.BuildTime
		stmts += r.Stmts
	}
	n := len(runs)
	fmt.Fprintf(w, "%-10s %14.2f %18.2f\n", "Avg.", float64(stmts/uint64(n))/1e3,
		float64(tot.Microseconds())/float64(n)/1e3)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
