package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// smallRuns builds a two-workload run set once for all harness tests.
func smallRuns(t *testing.T) []*Run {
	t.Helper()
	runs, err := RunAll(Config{TargetStmts: 30_000, Workloads: []string{"li", "twolf"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return runs
}

func TestTablesProduceRows(t *testing.T) {
	runs := smallRuns(t)
	var buf bytes.Buffer
	Table1(runs, &buf)
	Table2(runs, &buf)
	Table3(runs, &buf)
	Table4(runs, &buf)
	Table5(runs, &buf)
	Table6(runs, &buf)
	if err := Table7(runs, &buf); err != nil {
		t.Fatal(err)
	}
	if err := Table8(runs, &buf); err != nil {
		t.Fatal(err)
	}
	if err := Table9(runs, 5, &buf); err != nil {
		t.Fatal(err)
	}
	Figure8(runs, &buf)
	MethodCensus(runs, &buf)
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
		"Table 6", "Table 7", "Table 8", "Table 9", "Figure 8",
		"li", "twolf", "Avg.",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure9Rows(t *testing.T) {
	var buf bytes.Buffer
	err := Figure9(Config{TargetStmts: 40_000, Workloads: []string{"li"}}, &buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 9") || !strings.Contains(buf.String(), "li") {
		t.Fatalf("figure 9 output:\n%s", buf.String())
	}
	// Four ratio columns must be present and positive.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	last := lines[len(lines)-1]
	fields := strings.Fields(last)
	if len(fields) != 5 {
		t.Fatalf("figure 9 row has %d fields: %q", len(fields), last)
	}
}

func TestSliceCriteriaSpread(t *testing.T) {
	runs := smallRuns(t)
	crit := SliceCriteria(runs[0].W, 10)
	if len(crit) < 8 {
		t.Fatalf("only %d criteria found", len(crit))
	}
	seen := map[int]bool{}
	for _, c := range crit {
		seen[c.Node*1000000+c.Ord] = true
	}
	if len(seen) < len(crit)/2 {
		t.Fatalf("criteria not spread: %d unique of %d", len(seen), len(crit))
	}
}

func TestBuildRunMetadata(t *testing.T) {
	runs := smallRuns(t)
	for _, r := range runs {
		if r.Stmts < 30_000 {
			t.Fatalf("%s ran only %d statements", r.Name, r.Stmts)
		}
		if r.BuildTime <= 0 {
			t.Fatalf("%s has no build time", r.Name)
		}
		if r.Arch == nil || r.Arch.Branches == 0 {
			t.Fatalf("%s has no architecture profile", r.Name)
		}
		if r.Rep.T2Total() == 0 {
			t.Fatalf("%s has empty size report", r.Name)
		}
	}
}

func TestRunAllUnknownWorkload(t *testing.T) {
	if _, err := RunAll(Config{Workloads: []string{"nope"}}, nil); err == nil {
		t.Fatal("RunAll accepted unknown workload")
	}
}

func TestWriteQueryBenchJSON(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{TargetStmts: 20_000, Workloads: []string{"li"}, Slices: 4}
	if err := WriteQueryBenchJSON(cfg, &buf, nil); err != nil {
		t.Fatal(err)
	}
	var res QueryBenchResult
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(res.Workloads) != 1 {
		t.Fatalf("got %d workload rows", len(res.Workloads))
	}
	row := res.Workloads[0]
	if !row.Identical {
		t.Fatal("parallel results flagged as diverging")
	}
	if row.Queries == 0 || len(row.Sweep) != 4 {
		t.Fatalf("row = %+v", row)
	}
	for _, s := range row.Sweep {
		if s.MS <= 0 || s.Speedup <= 0 {
			t.Fatalf("degenerate timing %+v", s)
		}
	}
	if row.Seeks == 0 {
		t.Fatal("slice batch issued no cursor seeks")
	}
}

func TestAblations(t *testing.T) {
	runs := smallRuns(t)
	var buf bytes.Buffer
	if err := AblationBLvsBB("li", 20_000, &buf); err != nil {
		t.Fatal(err)
	}
	AblationStreamMethods(runs, &buf)
	if err := AblationValueGrouping("li", 20_000, &buf); err != nil {
		t.Fatal(err)
	}
	AblationLocalTS(runs, &buf)
	AblationSelection(runs, &buf)
	out := buf.String()
	for _, want := range []string{"Ball-Larus", "basic blocks", "sequitur", "grouping", "local", "adaptive"} {
		if !strings.Contains(strings.ToLower(out), strings.ToLower(want)) {
			t.Fatalf("ablation output missing %q:\n%s", want, out)
		}
	}
}
