package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"wet/internal/core"
	"wet/internal/interp"
	"wet/internal/workload"
)

// FreezeBenchRow is one workload's freeze timing in a FreezeBenchResult.
type FreezeBenchRow struct {
	Name             string  `json:"name"`
	Stmts            uint64  `json:"stmts"`
	BuildMS          float64 `json:"build_ms"`
	FreezeSerialMS   float64 `json:"freeze_serial_ms"`
	FreezeParallelMS float64 `json:"freeze_parallel_ms"`
	Speedup          float64 `json:"speedup"`
	T2TotalBytes     uint64  `json:"t2_total_bytes"`
	// Identical records that the serial and parallel SizeReports matched —
	// the determinism guarantee, re-checked on every bench run.
	Identical bool `json:"identical_reports"`
}

// FreezeBenchResult is the machine-readable freeze performance record the
// CI smoke run archives (BENCH_freeze.json), so the perf trajectory of the
// tier-2 pipeline is tracked across commits.
type FreezeBenchResult struct {
	TargetStmts uint64           `json:"target_stmts"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Workers     int              `json:"workers"`
	Workloads   []FreezeBenchRow `json:"workloads"`
}

// FreezeBench builds each configured workload's WET twice and times Freeze
// serially (Workers=1) and with the worker pool (cfg.Workers, 0 =
// GOMAXPROCS), verifying the two reports agree.
func FreezeBench(cfg Config, progress io.Writer) (*FreezeBenchResult, error) {
	ws, err := cfg.workloads()
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &FreezeBenchResult{
		TargetStmts: cfg.targets(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Workers:     workers,
	}
	for _, wl := range ws {
		if progress != nil {
			fmt.Fprintf(progress, "freeze bench: %s (target %d stmts)...\n", wl.Name, cfg.targets())
		}
		row, err := freezeBenchRow(wl, cfg.targets(), workers)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", wl.Name, err)
		}
		res.Workloads = append(res.Workloads, *row)
	}
	return res, nil
}

func freezeBenchRow(wl workload.Workload, targetStmts uint64, workers int) (*FreezeBenchRow, error) {
	build := func() (*core.WET, uint64, time.Duration, error) {
		scale, err := workload.ScaleFor(wl, targetStmts)
		if err != nil {
			return nil, 0, 0, err
		}
		prog, in := wl.Build(scale)
		st, err := interp.Analyze(prog)
		if err != nil {
			return nil, 0, 0, err
		}
		start := time.Now()
		w, r, err := core.Build(st, interp.Options{Inputs: in})
		if err != nil {
			return nil, 0, 0, err
		}
		return w, r.Steps, time.Since(start), nil
	}

	serial, stmts, buildTime, err := build()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	repSerial := serial.Freeze(core.FreezeOptions{Workers: 1})
	serialTime := time.Since(start)

	parallel, _, _, err := build()
	if err != nil {
		return nil, err
	}
	start = time.Now()
	repParallel := parallel.Freeze(core.FreezeOptions{Workers: workers})
	parallelTime := time.Since(start)

	return &FreezeBenchRow{
		Name:             wl.Name,
		Stmts:            stmts,
		BuildMS:          ms(buildTime),
		FreezeSerialMS:   ms(serialTime),
		FreezeParallelMS: ms(parallelTime),
		Speedup:          serialTime.Seconds() / parallelTime.Seconds(),
		T2TotalBytes:     repParallel.T2Total(),
		Identical:        reflect.DeepEqual(repSerial, repParallel),
	}, nil
}

// WriteFreezeBenchJSON runs FreezeBench and writes the result as indented
// JSON (the CI artifact format).
func WriteFreezeBenchJSON(cfg Config, out io.Writer, progress io.Writer) error {
	res, err := FreezeBench(cfg, progress)
	if err != nil {
		return err
	}
	for _, row := range res.Workloads {
		if !row.Identical {
			return fmt.Errorf("exp: %s: serial and parallel freeze reports differ", row.Name)
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
