package exp

import (
	"fmt"
	"io"

	"wet/internal/core"
	"wet/internal/interp"
	"wet/internal/sequitur"
	"wet/internal/stream"
	"wet/internal/workload"
)

// AblationBLvsBB quantifies the tier-1 timestamp optimization (paper §3.1 /
// Figure 2): WET nodes as Ball–Larus paths versus plain basic blocks. It
// rebuilds the workload in both modes and reports timestamp counts and
// sizes.
func AblationBLvsBB(name string, targetStmts uint64, w io.Writer) error {
	wl, err := workload.ByName(name)
	if err != nil {
		return err
	}
	scale, err := workload.ScaleFor(wl, targetStmts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Ablation: Ball-Larus path nodes vs basic block nodes (%s).\n", name)
	fmt.Fprintf(w, "%-12s %14s %12s %12s %12s\n", "node kind", "timestamps", "T1 ts (KB)", "T2 ts (KB)", "T2 total(KB)")
	for _, perBlock := range []bool{false, true} {
		prog, in := wl.Build(scale)
		st, err := interp.AnalyzeOpt(prog, perBlock)
		if err != nil {
			return err
		}
		wet, _, err := core.Build(st, interp.Options{Inputs: in})
		if err != nil {
			return err
		}
		rep := wet.Freeze(core.FreezeOptions{})
		kind := "BL paths"
		if perBlock {
			kind = "basic blocks"
		}
		fmt.Fprintf(w, "%-12s %14d %12.2f %12.2f %12.2f\n",
			kind, wet.Raw.PathExecs, kb(rep.T1TS), kb(rep.T2TS), kb(rep.T2Total()))
	}
	return nil
}

// fullValueSequences materializes every statement occurrence's complete
// value sequence from the grouped representation.
func fullValueSequences(w *core.WET) [][]uint32 {
	var out [][]uint32
	for _, n := range w.Nodes {
		for _, g := range n.Groups {
			for mi := range g.UVals {
				full := make([]uint32, len(g.Pattern))
				for k, idx := range g.Pattern {
					full[k] = g.UVals[mi][idx]
				}
				out = append(out, full)
			}
		}
	}
	return out
}

// nodeTSStreams collects every node's timestamp sequence.
func nodeTSStreams(w *core.WET) [][]uint32 {
	var out [][]uint32
	for _, n := range w.Nodes {
		out = append(out, n.TS)
	}
	return out
}

// AblationStreamMethods reproduces the paper's §4 method comparison: the
// bidirectional predictor pool vs Sequitur (bidirectional but weaker on
// value streams) on both timestamp and value streams.
func AblationStreamMethods(runs []*Run, w io.Writer) {
	fmt.Fprintf(w, "Ablation: stream compression methods (total KB over all streams).\n")
	fmt.Fprintf(w, "%-10s |%12s %12s %12s |%12s %12s %12s\n",
		"", "ts:pool", "ts:seqitur", "ts:raw", "val:pool", "val:seqitur", "val:raw")
	for _, r := range runs {
		sizes := func(streams [][]uint32) (pool, seq, raw uint64) {
			for _, vals := range streams {
				pool += stream.CompressBest(vals).SizeBits()
				seq += sequitur.Build(vals).SizeBits()
				raw += uint64(len(vals)) * 32
			}
			return pool / 8, seq / 8, raw / 8
		}
		tp, tsq, tr := sizes(nodeTSStreams(r.W))
		vp, vsq, vr := sizes(fullValueSequences(r.W))
		fmt.Fprintf(w, "%-10s |%12.1f %12.1f %12.1f |%12.1f %12.1f %12.1f\n",
			r.Name, kb(tp), kb(tsq), kb(tr), kb(vp), kb(vsq), kb(vr))
	}
	fmt.Fprintf(w, "(the pool should beat Sequitur decisively on value streams — the paper's §4 argument)\n")
}

// AblationValueGrouping quantifies the tier-1 value grouping (paper §3.2):
// grouped UVals+Pattern versus storing full value sequences.
func AblationValueGrouping(name string, targetStmts uint64, w io.Writer) error {
	wl, err := workload.ByName(name)
	if err != nil {
		return err
	}
	scale, err := workload.ScaleFor(wl, targetStmts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Ablation: tier-1 value grouping (%s).\n", name)
	fmt.Fprintf(w, "%-12s %14s %14s\n", "grouping", "T1 vals (KB)", "T2 vals (KB)")
	for _, off := range []bool{false, true} {
		prog, in := wl.Build(scale)
		st, err := interp.Analyze(prog)
		if err != nil {
			return err
		}
		wet, _, err := core.Build(st, interp.Options{Inputs: in})
		if err != nil {
			return err
		}
		rep := wet.Freeze(core.FreezeOptions{NoGrouping: off})
		kind := "on"
		if off {
			kind = "off"
		}
		fmt.Fprintf(w, "%-12s %14.2f %14.2f\n", kind, kb(rep.T1Vals), kb(rep.T2Vals))
	}
	return nil
}

// AblationLocalTS quantifies the choice of local (per-node ordinal) vs
// global timestamps on dependence edge labels (paper §5: "we use local
// timestamps for each statement because this approach yields greater
// levels of compression").
func AblationLocalTS(runs []*Run, w io.Writer) {
	fmt.Fprintf(w, "Ablation: local vs global timestamps on edge labels (tier-2 KB).\n")
	fmt.Fprintf(w, "%-10s %14s %14s\n", "Benchmark", "local (KB)", "global (KB)")
	for _, r := range runs {
		var localBits, globalBits uint64
		for _, e := range r.W.Edges {
			if e.Inferable || e.SharedWith >= 0 {
				continue
			}
			localBits += stream.CompressBest(e.DstOrd).SizeBits()
			localBits += stream.CompressBest(e.SrcOrd).SizeBits()
			dstG := make([]uint32, len(e.DstOrd))
			srcG := make([]uint32, len(e.SrcOrd))
			dn, sn := r.W.Nodes[e.DstNode], r.W.Nodes[e.SrcNode]
			for i := range e.DstOrd {
				dstG[i] = dn.TS[e.DstOrd[i]]
				srcG[i] = sn.TS[e.SrcOrd[i]]
			}
			globalBits += stream.CompressBest(dstG).SizeBits()
			globalBits += stream.CompressBest(srcG).SizeBits()
		}
		fmt.Fprintf(w, "%-10s %14.2f %14.2f\n", r.Name, kb(localBits/8), kb(globalBits/8))
	}
}

// AblationSelection compares the adaptive per-stream method selection with
// every fixed single method, over all node timestamp streams.
func AblationSelection(runs []*Run, w io.Writer) {
	fmt.Fprintf(w, "Ablation: adaptive selection vs fixed methods (node ts streams, total KB).\n")
	fmt.Fprintf(w, "%-10s %10s", "Benchmark", "adaptive")
	fixed := []stream.Spec{
		{Kind: stream.KindFCM, Order: 2},
		{Kind: stream.KindDFCM, Order: 1},
		{Kind: stream.KindLastN, Order: 4},
		{Kind: stream.KindLastNStride, Order: 4},
	}
	for _, s := range fixed {
		fmt.Fprintf(w, " %10s", s.String())
	}
	fmt.Fprintf(w, "\n")
	for _, r := range runs {
		streams := nodeTSStreams(r.W)
		var adaptive uint64
		for _, vals := range streams {
			adaptive += stream.CompressBest(vals).SizeBits()
		}
		fmt.Fprintf(w, "%-10s %10.1f", r.Name, kb(adaptive/8))
		for _, spec := range fixed {
			var tot uint64
			for _, vals := range streams {
				tot += stream.Compress(vals, spec).SizeBits()
			}
			fmt.Fprintf(w, " %10.1f", kb(tot/8))
		}
		fmt.Fprintf(w, "\n")
	}
}

// AblationAggressiveEdges quantifies the [25]-style diagonal-edge reduction
// (FreezeOptions.AggressiveEdges) that the paper's §3.3 defers to: edges
// whose label pairs always carry equal ordinals store one stream, not two.
func AblationAggressiveEdges(name string, targetStmts uint64, w io.Writer) error {
	wl, err := workload.ByName(name)
	if err != nil {
		return err
	}
	scale, err := workload.ScaleFor(wl, targetStmts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Ablation: aggressive (diagonal) edge labels, per [25] (%s).\n", name)
	fmt.Fprintf(w, "%-12s %12s %12s %12s\n", "mode", "T1 edges(KB)", "T2 edges(KB)", "diagonal")
	for _, aggr := range []bool{false, true} {
		prog, in := wl.Build(scale)
		st, err := interp.Analyze(prog)
		if err != nil {
			return err
		}
		wet, _, err := core.Build(st, interp.Options{Inputs: in})
		if err != nil {
			return err
		}
		rep := wet.Freeze(core.FreezeOptions{AggressiveEdges: aggr})
		kind := "paper tier-1"
		if aggr {
			kind = "aggressive"
		}
		fmt.Fprintf(w, "%-12s %12.2f %12.2f %12d\n", kind, kb(rep.T1Edges), kb(rep.T2Edges), rep.DiagonalEdges)
	}
	return nil
}
