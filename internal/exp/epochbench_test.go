package exp

import (
	"encoding/json"
	"testing"
)

func TestEpochBench(t *testing.T) {
	// Small epochs on a short run so the test stays fast while still
	// covering a multi-epoch streamed build against the baseline.
	cfg := Config{TargetStmts: 30_000, Workloads: []string{"li"}}
	res, err := EpochBench(cfg, []uint32{0, 1 << 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workloads) != 1 || len(res.Workloads[0].Rows) != 2 {
		t.Fatalf("unexpected shape: %+v", res)
	}
	wl := res.Workloads[0]
	if !wl.DigestsAgree {
		t.Fatalf("query digests differ across epoch sizes: %+v", wl.Rows)
	}
	if wl.Rows[0].Epochs != 0 {
		t.Fatalf("baseline row has %d epochs", wl.Rows[0].Epochs)
	}
	if wl.Rows[1].Epochs < 2 {
		t.Fatalf("streamed row sealed %d epochs, want >= 2", wl.Rows[1].Epochs)
	}
	for _, r := range wl.Rows {
		if r.PeakHeapBytes == 0 || r.T2TotalBytes == 0 || r.WallMS <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
	}
	if _, err := json.Marshal(res); err != nil {
		t.Fatal(err)
	}
}
