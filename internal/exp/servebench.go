package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"time"

	"wet/internal/core"
	"wet/internal/corpus"
	"wet/internal/interp"
	"wet/internal/serve"
	"wet/internal/wetio"
	"wet/internal/workload"
)

// DefaultServeBenchStmts sizes each served trace: long enough that the
// corpus holds thousands of epoch segments, small enough that CI builds the
// corpus in seconds.
const DefaultServeBenchStmts = 120_000

// DefaultServeBenchEpochTS seals the served traces into many small epochs —
// the residency grain the cache bench is about.
const DefaultServeBenchEpochTS = uint32(1 << 8)

// DefaultServeBenchBudget bounds decoded segment state below the hot
// working set of the load mix, so the bench exercises eviction and reload,
// not just warm hits.
const DefaultServeBenchBudget = uint64(8 << 10)

// ServeBenchConfig sizes the load run.
type ServeBenchConfig struct {
	Clients  int           // concurrent load clients (<=0: 8)
	Duration time.Duration // load duration (<=0: 8s)
}

// ServeBenchResult pins the serving path: corpus shape, load throughput,
// latency quantiles, and cache behavior under a starvation budget.
type ServeBenchResult struct {
	Workloads   []string `json:"workloads"`
	Stmts       uint64   `json:"stmts_per_workload"`
	Traces      int      `json:"traces"`
	Segments    int      `json:"segments"`
	RawBytes    uint64   `json:"raw_bytes"`
	BudgetBytes uint64   `json:"budget_bytes"`
	Clients     int      `json:"clients"`

	Load serve.LoadResult `json:"load"`

	// Evictions over the run (daemon-side): nonzero proves the budget
	// actually cycled segments while the answers stayed correct.
	Evictions uint64 `json:"evictions"`
	// Shed counts requests refused at admission over the run.
	Shed uint64 `json:"shed"`
	// CleanRun is true when every request answered 2xx.
	CleanRun bool `json:"clean_run"`
}

// ServeBench builds a corpus of the configured workloads (default li, gzip,
// mcf), serves it from an in-process daemon with a deliberately starved
// segment budget, drives the load generator against it, and reports the
// measured serving profile.
func ServeBench(cfg Config, scfg ServeBenchConfig, progress io.Writer) (*ServeBenchResult, error) {
	if scfg.Clients <= 0 {
		scfg.Clients = 8
	}
	if scfg.Duration <= 0 {
		scfg.Duration = 8 * time.Second
	}
	wls, err := cfg.workloads()
	if err != nil {
		return nil, err
	}
	if len(cfg.Workloads) == 0 {
		wls = wls[:0]
		for _, n := range []string{"li", "gzip", "mcf"} {
			wl, err := workload.ByName(n)
			if err != nil {
				return nil, err
			}
			wls = append(wls, wl)
		}
	}
	target := cfg.TargetStmts
	if target == 0 {
		target = DefaultServeBenchStmts
	}

	res := &ServeBenchResult{
		Stmts:       target,
		BudgetBytes: DefaultServeBenchBudget,
		Clients:     scfg.Clients,
	}
	c := corpus.New(DefaultServeBenchBudget)
	for _, wl := range wls {
		scale, err := workload.ScaleFor(wl, target)
		if err != nil {
			return nil, err
		}
		prog, in := wl.Build(scale)
		st, err := interp.Analyze(prog)
		if err != nil {
			return nil, fmt.Errorf("servebench %s: %w", wl.Name, err)
		}
		w, _, _, err := core.BuildStreaming(st, interp.Options{Inputs: in},
			core.FreezeOptions{EpochTS: DefaultServeBenchEpochTS})
		if err != nil {
			return nil, fmt.Errorf("servebench %s: %w", wl.Name, err)
		}
		var buf bytes.Buffer
		if err := wetio.Save(&buf, w); err != nil {
			return nil, fmt.Errorf("servebench %s: %w", wl.Name, err)
		}
		if _, err := c.Add(wl.Name, buf.Bytes()); err != nil {
			return nil, err
		}
		res.Workloads = append(res.Workloads, wl.Name)
		if progress != nil {
			fmt.Fprintf(progress, "servebench: built %s (%d bytes)\n", wl.Name, buf.Len())
		}
	}

	s := serve.New(c, serve.Options{Workers: scfg.Clients / 2, Queue: scfg.Clients * 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st0 := c.Stats()
	if progress != nil {
		fmt.Fprintf(progress, "servebench: driving %d clients for %v against %s\n",
			scfg.Clients, scfg.Duration, ts.URL)
	}
	load, err := serve.RunLoad(context.Background(), serve.LoadOptions{
		BaseURL:  ts.URL,
		Clients:  scfg.Clients,
		Duration: scfg.Duration,
	})
	if err != nil {
		return nil, err
	}
	st1 := c.Stats()

	res.Load = *load
	res.Traces = st1.Traces
	res.Segments = st1.Segments
	res.RawBytes = st1.RawBytes
	res.Evictions = st1.Evictions - st0.Evictions
	res.Shed = s.PoolStats().Shed
	res.CleanRun = load.Errors == 0
	return res, nil
}

// WriteServeBenchJSON runs ServeBench with defaults and writes the record.
func WriteServeBenchJSON(cfg Config, w io.Writer, progress io.Writer) error {
	res, err := ServeBench(cfg, ServeBenchConfig{}, progress)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
