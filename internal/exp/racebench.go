package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"wet/internal/core"
	"wet/internal/interp"
	"wet/internal/racecheck"
	"wet/internal/workload"
)

// DefaultRaceBenchStmts sizes the race bench workloads. The race checker is
// one monotone pass over the concurrency streams, so the bench does not need
// paper-table run lengths to measure its scan ratio; this keeps the full
// six-variant ladder (racy and clean flavour per base) inside a CI minute.
const DefaultRaceBenchStmts = 150_000

// RaceBenchRow is one concurrent workload variant: what the checker scanned,
// what it found, and whether the findings match the variant's seeded
// expectation (racy flavours must report definite races, clean flavours must
// report nothing at all).
type RaceBenchRow struct {
	Name  string `json:"name"`
	Base  string `json:"base"`
	Racy  bool   `json:"racy"`
	Stmts uint64 `json:"stmts"`

	Threads        int `json:"threads"`
	SyncEvents     int `json:"sync_events"`
	SharedAccesses int `json:"shared_accesses"`

	// RawEventBytes is the uncompressed size of the concurrency record
	// streams (u32 records: one per owned timestamp, four per sync event,
	// five per shared access) — what a checker without the tier-2 streams
	// would have to scan.
	RawEventBytes uint64 `json:"raw_event_bytes"`
	// CompressedBytes is the tier-2 compressed size of those same streams,
	// the bytes the cursor walk actually covers.
	CompressedBytes uint64 `json:"compressed_bytes"`
	// ScanRatio is CompressedBytes / RawEventBytes.
	ScanRatio float64 `json:"scan_ratio"`

	BuildMS float64 `json:"build_ms"`
	CheckMS float64 `json:"check_ms"`

	RC001 int `json:"rc001"`
	RC002 int `json:"rc002"`
	RC003 int `json:"rc003"`
	// Expected records whether the report matches the seeded ground truth.
	Expected bool `json:"expected"`
}

// RaceBenchResult is the BENCH_race.json record.
type RaceBenchResult struct {
	Stmts uint64         `json:"stmts"`
	Rows  []RaceBenchRow `json:"rows"`
	// AllExpected is the CI gate: every racy variant reported definite
	// races and every clean variant reported nothing.
	AllExpected bool `json:"all_expected"`
}

// concScaleFor calibrates a concurrent variant's scale for a statement
// target, separating fixed setup cost from the per-scale increment (the
// ConcWorkload twin of workload.ScaleFor).
func concScaleFor(wl workload.ConcWorkload, targetStmts uint64) (int, error) {
	steps := func(scale int) (uint64, error) {
		p, in := wl.Build(scale)
		st, err := interp.Analyze(p)
		if err != nil {
			return 0, err
		}
		res, err := interp.Run(st, interp.Options{Inputs: in})
		if err != nil {
			return 0, err
		}
		return res.Steps, nil
	}
	s1, err := steps(1)
	if err != nil {
		return 0, err
	}
	s2, err := steps(2)
	if err != nil {
		return 0, err
	}
	if s2 <= s1 {
		return 0, fmt.Errorf("conc workload %s does not scale (%d vs %d steps)", wl.Name, s1, s2)
	}
	if targetStmts <= s1 {
		return 1, nil
	}
	perScale := s2 - s1
	return 1 + int((targetStmts-s1+perScale-1)/perScale), nil
}

// BuildConcRun executes one concurrent workload variant at the target
// length and constructs its frozen WET (the wetrun -conc path). The seed
// drives the deterministic thread scheduler; the same seed replays the same
// interleaving bit-for-bit.
func BuildConcRun(wl workload.ConcWorkload, targetStmts uint64, workers int, seed uint64) (*Run, error) {
	scale, err := concScaleFor(wl, targetStmts)
	if err != nil {
		return nil, err
	}
	prog, in := wl.Build(scale)
	st, err := interp.Analyze(prog)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	wet, res, err := core.Build(st, interp.Options{Inputs: in, Seed: seed})
	if err != nil {
		return nil, err
	}
	rep := wet.Freeze(core.FreezeOptions{Workers: workers})
	return &Run{
		Name:      wl.Name,
		Stmts:     res.Steps,
		Scale:     scale,
		W:         wet,
		Rep:       rep,
		BuildTime: time.Since(start),
	}, nil
}

// RaceBench builds every concurrent workload variant, freezes it, runs the
// race checker over the tier-2 streams, and reports scan sizes, findings,
// and the seeded-expectation verdicts.
func RaceBench(cfg Config, progress io.Writer) (*RaceBenchResult, error) {
	target := cfg.TargetStmts
	if target == 0 {
		target = DefaultRaceBenchStmts
	}
	res := &RaceBenchResult{Stmts: target, AllExpected: true}
	for _, wl := range workload.ConcAll() {
		if progress != nil {
			fmt.Fprintf(progress, "racebench: %s\n", wl.Name)
		}
		scale, err := concScaleFor(wl, target)
		if err != nil {
			return nil, err
		}
		prog, in := wl.Build(scale)
		st, err := interp.Analyze(prog)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		w, ires, err := core.Build(st, interp.Options{Inputs: in})
		if err != nil {
			return nil, err
		}
		if _, err := w.FreezeErr(core.FreezeOptions{Workers: cfg.Workers}); err != nil {
			return nil, err
		}
		buildMS := float64(time.Since(t0).Microseconds()) / 1000
		t0 = time.Now()
		rep, err := racecheck.Check(w, core.Tier2)
		if err != nil {
			return nil, err
		}
		checkMS := float64(time.Since(t0).Microseconds()) / 1000
		row := RaceBenchRow{
			Name:           wl.Name,
			Base:           wl.Base,
			Racy:           wl.Racy,
			Stmts:          ires.Steps,
			Threads:        rep.Threads,
			SyncEvents:     rep.SyncEvents,
			SharedAccesses: rep.SharedAccesses,
			RawEventBytes: 4 * (uint64(w.Time) +
				4*uint64(rep.SyncEvents) + 5*uint64(rep.SharedAccesses)),
			CompressedBytes: (rep.CompressedBits + 7) / 8,
			BuildMS:         buildMS,
			CheckMS:         checkMS,
			RC001:           rep.Count(racecheck.RuleWriteWrite),
			RC002:           rep.Count(racecheck.RuleReadWrite),
			RC003:           rep.Count(racecheck.RuleLockset),
		}
		if row.RawEventBytes > 0 {
			row.ScanRatio = float64(row.CompressedBytes) / float64(row.RawEventBytes)
		}
		if wl.Racy {
			row.Expected = rep.Racy()
		} else {
			row.Expected = len(rep.Races) == 0
		}
		if !row.Expected {
			res.AllExpected = false
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteRaceBenchJSON runs RaceBench and writes its JSON record (the
// BENCH_race.json CI artifact).
func WriteRaceBenchJSON(cfg Config, w io.Writer, progress io.Writer) error {
	res, err := RaceBench(cfg, progress)
	if err != nil {
		return err
	}
	if !res.AllExpected {
		// Still write the record (the artifact shows which variant broke),
		// but fail the bench: the seeded ground truth is the race gate.
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
		return fmt.Errorf("racebench: race reports do not match the seeded ground truth")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
